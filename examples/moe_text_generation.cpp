// End-to-end sparse (MoE) text generation: a miniature GPT whose alternate
// FFNs are top-1-gated expert layers generates text from a byte prompt, with
// the expert-load diagnostics a serving operator would watch. Also compares
// the optimized table routing against the sparse-einsum baseline end to end
// (identical tokens, different cost — the paper's Sec. V.C point).
#include <iostream>

#include "core/inference_engine.h"  // byte_tokenize / byte_detokenize
#include "kernels/gemm.h"
#include "moe/moe_transformer.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace dsinfer;

  moe::MoeGptConfig cfg;
  cfg.hidden = 96;
  cfg.layers = 4;
  cfg.heads = 6;
  cfg.experts = 8;
  cfg.moe_every = 2;
  cfg.max_seq = 96;
  moe::MoeGptModel model(cfg, /*seed=*/404);

  std::cout << "Sparse GPT: " << cfg.layers << " blocks ("
            << model.moe_blocks() << " MoE with " << cfg.experts
            << " experts each), " << model.param_count() / 1000
            << "k total parameters\n\n";

  const std::vector<std::vector<std::int32_t>> prompts = {
      core::byte_tokenize("mixture of experts "),
      core::byte_tokenize("sparse transformer "),
  };

  auto opt = model.generate(prompts, 24, moe::MoeRouting::kOptimizedTables);
  auto base = model.generate(prompts, 24, moe::MoeRouting::kSparseEinsum);

  for (const auto& seq : opt.tokens) {
    std::cout << "  \"" << core::byte_detokenize(seq) << "\"\n";
  }
  std::cout << "\nIdentical tokens from both routing paths: "
            << (opt.tokens == base.tokens ? "yes" : "NO") << "\n";
  std::cout << "Capacity drops during generation: " << opt.dropped_tokens
            << " token-slots\n\n";

  // The routing-cost gap (S*E*M*c_e vs S*M*c_e) shows at prompt-processing
  // scale with many experts; during 1-token decode steps both are tiny.
  {
    const std::int64_t S = 128, E = 32, H = 128;
    Rng rng(9);
    moe::MoELayerWeights big;
    big.init_random(rng, H, 2 * H, E);
    std::vector<float> xs(static_cast<std::size_t>(S * H)), ys(xs.size());
    rng.fill_normal(xs);
    Stopwatch sw;
    for (int i = 0; i < 5; ++i) moe::forward_optimized(big, xs, ys, S);
    const double opt_ms = sw.elapsed_ms() / 5;
    sw.restart();
    for (int i = 0; i < 5; ++i) moe::forward_baseline(big, xs, ys, S);
    const double base_ms = sw.elapsed_ms() / 5;
    std::cout << "Prompt-scale MoE FFN (" << S << " tokens, " << E
              << " experts): table routing " << Table::num(opt_ms, 1)
              << " ms vs sparse-einsum " << Table::num(base_ms, 1) << " ms ("
              << Table::num(base_ms / opt_ms, 1) << "x)\n\n";
  }

  // Expert-load diagnostics over the prompt tokens of sequence 0.
  const std::int64_t S = 16;
  Rng rng(5);
  std::vector<float> x(static_cast<std::size_t>(S * cfg.hidden));
  rng.fill_normal(x);
  moe::MoELayerWeights layer;
  Rng wrng(404);
  layer.init_random(wrng, cfg.hidden, 4 * cfg.hidden, cfg.experts);
  std::vector<float> logits(static_cast<std::size_t>(S * cfg.experts));
  kernels::linear_blocked(x, layer.w_gate.span(), {}, logits, S, cfg.hidden,
                          cfg.experts);
  auto gating = moe::top1_gating(logits, S, cfg.experts);
  auto load = moe::expert_load_stats(gating, cfg.experts);
  std::cout << "Expert load over a " << S << "-token block: busiest expert "
            << load.busiest << " tokens, " << load.idle
            << " idle experts, imbalance coefficient "
            << Table::num(load.imbalance, 2) << "\n";
  return 0;
}
