// Deployment planner: the kind of tool a downstream user runs before
// renting GPUs. Given a model, it walks the same decision tree DeepSpeed
// Inference embodies — does it fit one GPU? a node with tensor slicing?
// does it need pipeline stages across nodes? or should it run on
// ZeRO-Inference with host/NVMe offload? — and prints the predicted
// latency/throughput of each feasible deployment.
#include <iostream>

#include "moe/moe_perf_model.h"
#include "parallel/pipeline_partition.h"
#include "parallel/pipeline_sim.h"
#include "perf/dense_model.h"
#include "util/table.h"
#include "zero/zero_perf_model.h"

int main() {
  using namespace dsinfer;
  const auto a100 = hw::dgx_a100_cluster(8);  // up to 64 GPUs to plan with
  const auto lambda = hw::lambda_a6000();
  const auto ds = perf::EngineModelConfig::deepspeed_fp16();

  std::cout << "=== Deployment plans (prompt 128, generate 8, batch 1; "
               "latency-oriented) ===\n\n";
  Table t({"model", "fp16 GB", "plan", "GPUs", "latency ms", "tok/s"});
  for (const char* name :
       {"GPT-J 6B", "GPT-NeoX 20B", "GPT-87B", "LM-175B", "LM-530B"}) {
    const auto& m = model::dense_model(name);
    const double gb = m.total_param_gb(model::Dtype::kFP16);

    // Smallest TP degree (within a node) whose aggregate memory fits the
    // model with headroom for KV cache and workspace.
    std::int64_t tp = 1;
    while (tp <= 8 && gb * 1.25 > 40.0 * static_cast<double>(tp)) tp *= 2;

    if (tp <= 8 && m.heads % tp == 0) {
      const auto g = perf::dense_generation_time(m, ds, a100, tp, 1, 128, 8);
      t.add_row({m.name, Table::num(gb, 0),
                 tp == 1 ? "single GPU" : "TP" + std::to_string(tp),
                 std::to_string(tp), Table::num(g.total_s * 1e3, 1),
                 Table::num(g.tokens_per_s, 1)});
    } else {
      // Needs pipeline stages across nodes.
      const std::int64_t stages =
          static_cast<std::int64_t>(gb * 1.25 / (40.0 * 8)) + 1;
      parallel::PipelineSimConfig cfg;
      cfg.stages = stages;
      cfg.tensor_parallel = 8;
      cfg.batch = std::max<std::int64_t>(1, stages);
      cfg.prompt_len = 128;
      cfg.gen_tokens = 8;
      cfg.prompt_microbatches = cfg.batch;
      cfg.gen_microbatches = cfg.batch;
      cfg.schedule = parallel::PipelineSchedule::kHybrid;
      const auto r = simulate_pipeline(m, ds, a100, cfg);
      t.add_row({m.name, Table::num(gb, 0),
                 "TP8 x PP" + std::to_string(stages),
                 std::to_string(8 * stages), Table::num(r.total_s * 1e3, 1),
                 Table::num(r.tokens_per_s, 1)});
    }
  }
  t.print(std::cout);

  std::cout << "\n=== Budget alternative: one A6000 workstation with "
               "ZeRO-Inference (throughput-oriented) ===\n\n";
  Table z({"model", "feasible", "TFLOPS", "max batch"});
  for (const char* name : {"GPT-NeoX 20B", "LM-175B", "LM-530B"}) {
    const auto& m = model::dense_model(name);
    zero::ZeroConfig cfg;
    cfg.home = m.total_param_gb(model::Dtype::kFP16) < 120
                   ? zero::WeightHome::kZeroDram
                   : zero::WeightHome::kZeroNvme;
    const auto r = zero_throughput(m, lambda, cfg);
    z.add_row({m.name, r.fits ? "yes" : "no",
               r.fits ? Table::num(r.tflops_per_gpu, 1) : "-",
               std::to_string(r.max_batch)});
  }
  z.print(std::cout);

  std::cout << "\n=== Sparse alternative: trillion-parameter MoE serving ===\n\n";
  {
    const auto c256 = hw::dgx_a100_cluster(32);
    const auto& m = model::moe_model("24B+MoE-128");
    const auto l = moe::moe_token_latency(m, moe::MoEEngineConfig::deepspeed(),
                                          c256, m.gpus, 8, 128);
    std::cout << m.name << " ("
              << Table::num(static_cast<double>(m.total_params()) / 1e9, 0)
              << "B params) on " << m.gpus
              << " GPUs: " << Table::num(l.total_s * 1e3, 1)
              << " ms/token — interactive serving of a ~1T model.\n";
  }
  return 0;
}
