// ZeRO-Inference in action (paper Sec. VI): the same model generates the
// same tokens with weights fully resident and with weights streamed through
// a 2-layer device window from a host-side store, and the transfer ledger
// shows exactly one model's worth of traffic per forward pass. The second
// half uses the calibrated throughput model to project what the same design
// achieves for real model sizes on the paper's A6000 workstation.
#include <iostream>

#include "core/inference_engine.h"
#include "util/table.h"
#include "zero/zero_perf_model.h"

int main() {
  using namespace dsinfer;

  model::DenseModelConfig cfg = model::tiny_gpt(128, 6, 8);
  const std::vector<std::vector<std::int32_t>> prompts = {
      core::byte_tokenize("offloaded weights "),
  };

  core::EngineOptions resident_opts;
  resident_opts.policy = kernels::KernelPolicy::optimized_large_batch();
  resident_opts.max_seq = 128;
  core::EngineOptions stream_opts = resident_opts;
  stream_opts.stream_weights = true;
  stream_opts.stream_window = 2;

  core::InferenceEngine resident(cfg, resident_opts, /*seed=*/11);
  core::InferenceEngine streamed(cfg, stream_opts, /*seed=*/11);

  auto r1 = resident.generate(prompts, 20);
  auto r2 = streamed.generate(prompts, 20);
  std::cout << "Resident output: \"" << core::byte_detokenize(r1.tokens[0])
            << "\"\n";
  std::cout << "Streamed output:  \"" << core::byte_detokenize(r2.tokens[0])
            << "\"\n";
  std::cout << "Outputs identical: " << (r1.tokens == r2.tokens ? "yes" : "NO")
            << "\n";
  std::cout << "Bytes streamed over the (simulated) PCIe boundary: "
            << streamed.streamed_bytes() / (1024.0 * 1024.0) << " MiB ("
            << cfg.layers << " layers x 21 forward passes)\n\n";

  // Projection: what the streaming design buys on the paper's hardware.
  std::cout << "Projected on the Lambda A6000 workstation (Fig. 9b):\n\n";
  const auto lambda = hw::lambda_a6000();
  Table t({"model", "fits GPU?", "ZeRO-Inference TFLOPS", "max batch"});
  for (const char* name : {"GPT-NeoX 20B", "GPT-87B", "LM-530B"}) {
    const auto& m = model::dense_model(name);
    zero::ZeroConfig gpu_only;
    gpu_only.home = zero::WeightHome::kGpuOnly;
    zero::ZeroConfig zi;
    zi.home = m.total_param_gb(model::Dtype::kFP16) < 120
                  ? zero::WeightHome::kZeroDram
                  : zero::WeightHome::kZeroNvme;
    const auto g = zero_throughput(m, lambda, gpu_only);
    const auto z = zero_throughput(m, lambda, zi);
    t.add_row({m.name, g.fits ? "yes" : "no",
               z.fits ? Table::num(z.tflops_per_gpu, 1) : "OOM",
               std::to_string(z.max_batch)});
  }
  t.print(std::cout);
  return 0;
}
