// Mixture-of-Experts routing walkthrough (paper Sec. V): top-1 gating, the
// table-based routing structure, expert load, the optimized vs sparse-einsum
// path timings, and expert parallelism across virtual devices.
#include <iostream>

#include "kernels/gemm.h"
#include "moe/expert_parallel.h"
#include "moe/moe_layer.h"
#include "parallel/device_group.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace dsinfer;

  const std::int64_t tokens = 64, experts = 8, hidden = 64, ffn = 128;
  Rng rng(33);
  moe::MoELayerWeights layer;
  layer.init_random(rng, hidden, ffn, experts);

  std::vector<float> x(static_cast<std::size_t>(tokens * hidden));
  rng.fill_normal(x);

  std::cout << "MoE layer: " << experts << " experts, "
            << layer.param_count() / 1000 << "k parameters, " << tokens
            << " tokens\n\n";

  // Route once and show the expert load distribution.
  std::vector<float> logits(static_cast<std::size_t>(tokens * experts));
  dsinfer::kernels::linear_blocked(x, layer.w_gate.span(), {}, logits, tokens, hidden,
                          experts);
  auto gating = moe::top1_gating(logits, tokens, experts);
  const std::int64_t cap = moe::expert_capacity(tokens, experts, 1.25);
  auto table = moe::build_routing_table(gating, experts, cap);

  Table load({"expert", "tokens routed", "capacity"});
  for (std::int64_t e = 0; e < experts; ++e) {
    std::int64_t n = 0;
    for (std::int64_t c = 0; c < cap; ++c) {
      n += table.expert_tokens[static_cast<std::size_t>(e * cap + c)] >= 0;
    }
    load.add_row({std::to_string(e), std::to_string(n), std::to_string(cap)});
  }
  load.print(std::cout);
  std::cout << "Dropped tokens (capacity overflow): "
            << tokens - table.tokens_routed() << "\n\n";

  // Optimized table path vs sparse-einsum baseline: same output, different
  // cost (S*M*c_e vs S*E*M*c_e).
  std::vector<float> y_opt(x.size()), y_base(x.size());
  Stopwatch sw;
  for (int i = 0; i < 20; ++i) moe::forward_optimized(layer, x, y_opt, tokens);
  const double opt_ms = sw.elapsed_ms() / 20;
  sw.restart();
  for (int i = 0; i < 20; ++i) moe::forward_baseline(layer, x, y_base, tokens);
  const double base_ms = sw.elapsed_ms() / 20;
  std::cout << "Optimized (table routing):   " << Table::num(opt_ms, 2)
            << " ms\n";
  std::cout << "Baseline (sparse einsums):   " << Table::num(base_ms, 2)
            << " ms  (" << Table::num(base_ms / opt_ms, 1)
            << "x slower; max |diff| = "
            << max_abs_diff(y_opt, y_base) << ")\n\n";

  // Expert parallelism: the same layer distributed over 4 virtual devices.
  // Capacity is generous on both sides so no tokens drop and the outputs
  // match the single-device layer exactly.
  const std::int64_t ep = 4;
  std::vector<float> y_full(x.size());
  moe::forward_optimized(layer, x, y_full, tokens,
                         static_cast<double>(experts));
  std::cout << "Expert parallelism over " << ep
            << " virtual devices (all-to-all dispatch/combine):\n";
  std::vector<std::vector<float>> ys(static_cast<std::size_t>(ep));
  parallel::DeviceGroup group(ep);
  group.run([&](std::int64_t rank, comm::Communicator& comm) {
    auto shard = moe::EpShard::from_full(layer, ep, rank);
    auto& y = ys[static_cast<std::size_t>(rank)];
    y.resize(x.size());
    moe::ep_moe_forward(shard, x, y, tokens, static_cast<double>(experts),
                        comm, rank);
  });
  std::cout << "  rank outputs vs single-device: max |diff| = "
            << max_abs_diff(ys[0], y_full)
            << " (identical routing, distributed experts)\n";
  std::cout << "  bytes exchanged through all-to-all: "
            << group.communicator().bytes_communicated() / 1024 << " KiB\n";
  return 0;
}
