// dsinfer CLI — a single binary exercising the whole public surface the way
// a downstream user would: generate / beam / score / checkpoint / plan.
//
//   dsinfer_cli generate --prompt "hello world" --tokens 24 --topk 8
//   dsinfer_cli beam --prompt "hello" --beams 4 --tokens 12
//   dsinfer_cli score --text "some text to score"
//   dsinfer_cli save --path model.dsic && dsinfer_cli load --path model.dsic
//   dsinfer_cli plan --model LM-175B
//
// Run without arguments for a demo of every subcommand.
#include <iostream>
#include <map>
#include <string>

#include "core/beam_search.h"
#include "core/checkpoint.h"
#include "core/eval.h"
#include "core/inference_engine.h"
#include "core/tokenizer.h"
#include "perf/dense_model.h"
#include "util/table.h"

namespace {

using namespace dsinfer;

std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) == 0) key = key.substr(2);
    flags[key] = argv[i + 1];
  }
  return flags;
}

std::string flag(const std::map<std::string, std::string>& f,
                 const std::string& key, const std::string& def) {
  auto it = f.find(key);
  return it == f.end() ? def : it->second;
}

core::InferenceEngine make_engine(std::uint64_t seed) {
  auto cfg = model::tiny_gpt(128, 4, 8);
  core::EngineOptions opts;
  opts.policy = kernels::KernelPolicy::optimized_small_batch();
  opts.max_seq = 128;
  return core::InferenceEngine(cfg, opts, seed);
}

int cmd_generate(const std::map<std::string, std::string>& f) {
  auto engine = make_engine(std::stoull(flag(f, "seed", "2022")));
  const std::string prompt = flag(f, "prompt", "deepspeed inference ");
  const auto tokens = std::stoll(flag(f, "tokens", "24"));
  core::SamplingOptions s;
  const auto topk = std::stoll(flag(f, "topk", "0"));
  if (topk > 0) {
    s.mode = core::SamplingOptions::Mode::kTopK;
    s.top_k = topk;
  }
  std::cout << prompt << std::flush;
  auto r = engine.generate(
      {core::byte_tokenize(prompt)}, tokens, s,
      [](std::int64_t, std::int64_t, std::int32_t tok) {
        std::cout << (tok >= 32 && tok < 127 ? static_cast<char>(tok) : '?')
                  << std::flush;  // stream tokens as they are sampled
      });
  std::cout << "\n[" << r.generated << " tokens in "
            << Table::num(r.seconds * 1e3, 1) << " ms, first token after "
            << Table::num(r.prompt_seconds * 1e3, 1) << " ms]\n";
  return 0;
}

int cmd_beam(const std::map<std::string, std::string>& f) {
  Rng rng(std::stoull(flag(f, "seed", "2022")));
  core::GptWeights w;
  w.init_random(rng, model::tiny_gpt(128, 4, 8));
  core::BeamSearchOptions o;
  o.beams = std::stoll(flag(f, "beams", "4"));
  o.new_tokens = std::stoll(flag(f, "tokens", "12"));
  const std::string prompt = flag(f, "prompt", "deepspeed ");
  auto hyps = core::beam_search(w, core::byte_tokenize(prompt), o);
  for (std::size_t i = 0; i < hyps.size(); ++i) {
    std::cout << "#" << i << "  score " << Table::num(hyps[i].score, 3)
              << "  \"" << core::byte_detokenize(hyps[i].tokens) << "\"\n";
  }
  return 0;
}

int cmd_score(const std::map<std::string, std::string>& f) {
  Rng rng(std::stoull(flag(f, "seed", "2022")));
  core::GptWeights w;
  w.init_random(rng, model::tiny_gpt(128, 4, 8));
  const std::string text = flag(f, "text", "deepspeed inference scores text");
  const auto s = core::score_sequence(w, core::byte_tokenize(text));
  std::cout << "log P = " << Table::num(s.log_prob, 3) << " over "
            << s.scored_tokens
            << " tokens; perplexity = " << Table::num(s.perplexity, 2) << "\n";
  return 0;
}

int cmd_save(const std::map<std::string, std::string>& f) {
  auto engine = make_engine(std::stoull(flag(f, "seed", "2022")));
  core::BpeTokenizer tok;
  tok.train("deepspeed inference deepspeed inference transformer models", 280);
  const std::string path = flag(f, "path", "model.dsic");
  core::save_checkpoint(path, engine.weights(), tok);
  std::cout << "saved " << engine.weights().param_count() << " parameters to "
            << path << "\n";
  return 0;
}

int cmd_load(const std::map<std::string, std::string>& f) {
  const std::string path = flag(f, "path", "model.dsic");
  auto ckpt = core::load_checkpoint(path);
  std::cout << "loaded '" << ckpt.weights.config.name << "' ("
            << ckpt.weights.param_count() << " parameters, tokenizer with "
            << ckpt.tokenizer.num_merges() << " merges) from " << path << "\n";
  return 0;
}

int cmd_plan(const std::map<std::string, std::string>& f) {
  const auto& m = model::dense_model(flag(f, "model", "LM-175B"));
  const auto cluster = hw::dgx_a100_cluster(2);
  const auto e = perf::EngineModelConfig::deepspeed_fp16();
  Table t({"TP", "fits/node?", "latency ms (prompt128+8tok)", "tok/s"});
  for (std::int64_t tp : {1, 2, 4, 8, 16}) {
    if (m.hidden % tp != 0) continue;
    const double gb = m.total_param_gb(model::Dtype::kFP16);
    const bool fits = gb * 1.25 <= 40.0 * static_cast<double>(tp);
    const auto g = perf::dense_generation_time(m, e, cluster, tp, 1, 128, 8);
    t.add_row({std::to_string(tp), fits ? "yes" : "no",
               Table::num(g.total_s * 1e3, 1), Table::num(g.tokens_per_s, 1)});
  }
  std::cout << "Deployment plan for " << m.name << " on A100-40GB nodes:\n\n";
  t.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string cmd = argc > 1 ? argv[1] : "";
  const auto flags = parse_flags(argc, argv, 2);
  try {
    if (cmd == "generate") return cmd_generate(flags);
    if (cmd == "beam") return cmd_beam(flags);
    if (cmd == "score") return cmd_score(flags);
    if (cmd == "save") return cmd_save(flags);
    if (cmd == "load") return cmd_load(flags);
    if (cmd == "plan") return cmd_plan(flags);
    // No/unknown command: run a short demo of everything.
    std::cout << "usage: dsinfer_cli "
                 "{generate|beam|score|save|load|plan} [--flag value]...\n"
                 "Running the demo tour:\n\n== generate ==\n";
    cmd_generate({});
    std::cout << "\n== beam ==\n";
    cmd_beam({{"tokens", "8"}});
    std::cout << "\n== score ==\n";
    cmd_score({});
    std::cout << "\n== plan ==\n";
    cmd_plan({});
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
