// Quickstart: build an InferenceEngine, generate tokens, inspect timings.
//
// The engine is a real CPU transformer (randomly initialized — this
// reproduction ships no trained checkpoints), so the interesting outputs are
// the mechanics: KV-cached two-phase generation, kernel-policy selection,
// and deterministic sampling.
#include <iostream>

#include "core/inference_engine.h"
#include "util/table.h"

int main() {
  using namespace dsinfer;

  // A small GPT so the example runs in well under a second.
  model::DenseModelConfig cfg = model::tiny_gpt(/*hidden=*/128, /*layers=*/4,
                                                /*heads=*/8);
  std::cout << "Model: " << cfg.name << " | hidden " << cfg.hidden
            << ", layers " << cfg.layers << ", heads " << cfg.heads << ", "
            << cfg.total_params() / 1000 << "k parameters\n\n";

  core::EngineOptions opts;
  opts.policy = kernels::KernelPolicy::optimized_small_batch();
  opts.max_batch = 4;
  opts.max_seq = 128;
  core::InferenceEngine engine(cfg, opts, /*seed=*/2022);

  // Byte-level prompts (tiny_gpt's vocab covers all 256 byte values).
  const std::vector<std::vector<std::int32_t>> prompts = {
      core::byte_tokenize("DeepSpeed "),
      core::byte_tokenize("Inference!"),
  };

  // Greedy generation.
  auto result = engine.generate(prompts, /*new_tokens=*/16);
  std::cout << "Greedy generation (" << result.generated << " tokens in "
            << Table::num(result.seconds * 1e3, 1) << " ms, prompt phase "
            << Table::num(result.prompt_seconds * 1e3, 1) << " ms):\n";
  for (const auto& seq : result.tokens) {
    std::cout << "  \"" << core::byte_detokenize(seq) << "\"\n";
  }

  // Top-k sampling — deterministic for a fixed engine seed.
  core::SamplingOptions topk;
  topk.mode = core::SamplingOptions::Mode::kTopK;
  topk.top_k = 8;
  topk.temperature = 0.8f;
  auto sampled = engine.generate(prompts, 16, topk);
  std::cout << "\nTop-8 sampling:\n";
  for (const auto& seq : sampled.tokens) {
    std::cout << "  \"" << core::byte_detokenize(seq) << "\"\n";
  }

  std::cout << "\nThroughput: "
            << Table::num(static_cast<double>(result.generated) /
                              result.seconds,
                          0)
            << " tokens/s on this CPU (policy: Deep-Fusion + SBI-GeMM)\n";
  return 0;
}
