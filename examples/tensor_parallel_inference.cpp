// Tensor-parallel inference across virtual devices (paper Sec. IV-A).
//
// The same model runs at TP = 1, 2, 4 and 8; outputs are identical because
// Megatron-style slicing plus all-reduce is numerically equivalent to the
// single-device layer. The communicator's byte ledger shows the two
// all-reduces per layer that tensor slicing pays.
#include <iostream>

#include "core/inference_engine.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace dsinfer;

  model::DenseModelConfig cfg = model::tiny_gpt(128, 4, 8);
  const std::vector<std::vector<std::int32_t>> prompts = {
      core::byte_tokenize("tensor parallelism "),
  };

  std::cout << "Tensor-parallel inference of " << cfg.total_params() / 1000
            << "k-parameter GPT across virtual devices\n\n";

  std::vector<std::vector<std::int32_t>> reference;
  Table t({"TP", "tokens match TP=1", "wall ms"});
  for (std::int64_t tp : {1, 2, 4, 8}) {
    core::EngineOptions opts;
    opts.policy = kernels::KernelPolicy::optimized_large_batch();
    opts.tensor_parallel = tp;
    opts.max_seq = 128;
    core::InferenceEngine engine(cfg, opts, /*seed=*/7);
    Stopwatch sw;
    auto result = engine.generate(prompts, 24);
    const double ms = sw.elapsed_ms();
    if (tp == 1) reference = result.tokens;
    t.add_row({std::to_string(tp),
               result.tokens == reference ? "yes" : "NO (bug!)",
               Table::num(ms, 1)});
  }
  t.print(std::cout);

  std::cout
      << "\nNote: virtual devices are threads on one machine, so TP > 1 adds "
         "coordination cost here; on real GPUs the same sharding multiplies "
         "aggregate memory bandwidth (see bench/fig6_dense_latency for the "
         "modeled effect).\n";
  return 0;
}
