#include "obs/flight_recorder.h"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

namespace dsinfer::obs {

namespace detail {
std::atomic<bool> g_flight_enabled{false};
}  // namespace detail

namespace {

constexpr std::size_t kWarmup = 32;

void json_escape(std::ostream& os, const std::string& s) {
  for (const char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          static const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(ch >> 4) & 0xF] << hex[ch & 0xF];
        } else {
          os << ch;
        }
    }
  }
}

}  // namespace

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder* rec = new FlightRecorder();
  return *rec;
}

void FlightRecorder::set_enabled(bool on) {
  detail::g_flight_enabled.store(on, std::memory_order_relaxed);
}

void FlightRecorder::configure(std::size_t capacity, std::size_t window) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = std::max<std::size_t>(1, capacity);
  window_ = std::max<std::size_t>(1, window);
  ring_.clear();
  latencies_.clear();
  lat_next_ = 0;
  seen_ = seen_violating_ = kept_violating_ = 0;
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  latencies_.clear();
  lat_next_ = 0;
  seen_ = seen_violating_ = kept_violating_ = 0;
}

double FlightRecorder::rolling_p99_locked() const {
  if (latencies_.size() < kWarmup) return 0.0;
  std::vector<double> w = latencies_;
  const std::size_t k =
      static_cast<std::size_t>(static_cast<double>(w.size() - 1) * 0.99);
  std::nth_element(w.begin(), w.begin() + static_cast<std::ptrdiff_t>(k),
                   w.end());
  return w[k];
}

double FlightRecorder::rolling_p99() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rolling_p99_locked();
}

void FlightRecorder::observe(FlightRecord rec) {
  if (!flight_enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++seen_;
  if (rec.violated) ++seen_violating_;

  // Keep/drop: violations always kept; otherwise only the rolling tail.
  const double p99 = rolling_p99_locked();
  const bool keep =
      rec.violated || (latencies_.size() >= kWarmup && rec.e2e_s() >= p99);

  // The latency feeds the window either way (the threshold must track all
  // traffic, not just the kept tail).
  if (latencies_.size() < window_) {
    latencies_.push_back(rec.e2e_s());
  } else {
    latencies_[lat_next_] = rec.e2e_s();
    lat_next_ = (lat_next_ + 1) % window_;
  }

  if (!keep) return;  // retroactive drop: span chain freed here
  if (rec.violated) ++kept_violating_;
  if (ring_.size() >= capacity_) {
    ring_.erase(ring_.begin());  // evict oldest
  }
  ring_.push_back(std::move(rec));
}

std::size_t FlightRecorder::kept() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::int64_t FlightRecorder::seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seen_;
}

std::int64_t FlightRecorder::seen_violating() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seen_violating_;
}

std::int64_t FlightRecorder::kept_violating() const {
  std::lock_guard<std::mutex> lock(mu_);
  return kept_violating_;
}

std::vector<FlightRecord> FlightRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_;
}

void FlightRecorder::export_chrome_json(std::ostream& os) const {
  const std::vector<FlightRecord> recs = snapshot();
  os << "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](auto&& body) {
    if (!first) os << ',';
    first = false;
    os << '{';
    body();
    os << '}';
  };
  emit([&] {
    os << "\"ph\":\"M\",\"pid\":" << kFlightPid
       << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":"
          "\"flight recorder\"}";
  });
  for (const auto& r : recs) {
    emit([&] {
      os << "\"ph\":\"M\",\"pid\":" << kFlightPid << ",\"tid\":" << r.id
         << ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
      json_escape(os, "req " + std::to_string(r.id));
      os << "\"}";
    });
    for (const auto& sp : r.spans) {
      emit([&] {
        os << "\"ph\":\"X\",\"pid\":" << kFlightPid << ",\"tid\":" << r.id
           << ",\"ts\":" << sp.start_s * 1e6 << ",\"dur\":" << sp.dur_s * 1e6
           << ",\"cat\":\"flight\",\"name\":\"";
        json_escape(os, phase_name(sp.phase));
        os << "\",\"args\":{\"seconds\":" << sp.dur_s << "}";
      });
    }
    emit([&] {
      os << "\"ph\":\"i\",\"pid\":" << kFlightPid << ",\"tid\":" << r.id
         << ",\"ts\":" << r.finish_s * 1e6 << ",\"s\":\"t\",\"cat\":\"flight\""
         << ",\"name\":\"" << (r.violated ? "slo_violation" : "tail_p99")
         << "\",\"args\":{\"served\":" << (r.served ? "true" : "false")
         << ",\"slo\":" << r.slo << ",\"replica\":" << r.replica
         << ",\"e2e_s\":" << r.e2e_s() << "}";
    });
  }
  os << "]}";
}

bool FlightRecorder::export_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  export_chrome_json(out);
  return static_cast<bool>(out);
}

std::vector<FlightSpan> spans_from_breakdown(const PhaseBreakdown& phases,
                                             double arrival_s) {
  // Deterministic layout order: the router-side waits come before replica
  // service, sheds terminate. Interleavings inside the service window
  // (e.g. backoff between decode steps) are flattened into one block per
  // phase; totals are exact, boundaries are the canonical ordering.
  static constexpr Phase kOrder[] = {
      Phase::kRouterQueue,  Phase::kHedgeWait,   Phase::kFailover,
      Phase::kAdmissionWait, Phase::kRetryBackoff, Phase::kPrefill,
      Phase::kDecodeCompute, Phase::kTpAllreduce, Phase::kZeroFetch,
      Phase::kKvSpill,      Phase::kStall,       Phase::kShed,
  };
  std::vector<FlightSpan> out;
  double t = arrival_s;
  for (Phase p : kOrder) {
    const double dur = phases.get(p);
    if (dur <= 0.0) continue;
    out.push_back(FlightSpan{p, t, dur});
    t += dur;
  }
  return out;
}

}  // namespace dsinfer::obs
