// Per-request tail-latency attribution ledger (ISSUE 8 tentpole).
//
// Every layer that can eat a request's deadline — router queueing, hedge
// waits, failover re-serves, admission waits, prefill, decode steps, TP
// all-reduces, ZeRO fetches, KV spills, retry backoff, sheds — charges its
// share of the request's wall (or virtual) time into a fixed-size
// `PhaseBreakdown`. The accounting-totality invariant mirrors PR 6's shed
// taxonomy: for every terminal request, the phase durations must sum to the
// end-to-end latency within epsilon. `check_totality` enforces it in tests
// and in `serving_latency --check`.
//
// Two collection modes coexist:
//  * Virtual-clock paths (fleet replicas, modeled continuous batching)
//    charge phases directly from their deterministic clock advances.
//  * Measured paths (real kernel execution) additionally split a decode
//    step's wall time into sub-phases via the process-global charge
//    accumulators below: comm all-reduces, ZeRO layer fetches, and KV page
//    spills call `attr_charge` from whatever thread they run on (TP rank
//    threads included), and the batcher drains the deltas with a
//    `SubPhaseScope` around each engine invocation.
//
// Cost model matches PR 3: one relaxed atomic branch when disabled, no
// locks, no allocation.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dsinfer::obs {

// Phases a request's end-to-end latency decomposes into. kStall covers
// replica virtual-clock jumps (crash stalls, injector delays, idle
// catch-up) that belong to no other phase — without it the totality
// invariant could not hold by construction.
enum class Phase : std::uint8_t {
  kRouterQueue = 0,  // waiting in the router's SLO lane for dispatch
  kHedgeWait,        // primary dispatch -> hedge fire, when the hedge won
  kFailover,         // copy lost -> re-dispatch (or terminal budget fail)
  kAdmissionWait,    // dispatched/enqueued on a replica -> slot admit
  kPrefill,          // prompt phase compute (own or co-scheduled admits)
  kDecodeCompute,    // per-token decode steps minus attributed sub-phases
  kTpAllreduce,      // tensor-parallel collectives inside a step
  kZeroFetch,        // ZeRO-style streamed weight fetches inside a step
  kKvSpill,          // KV page spill/restore round-trips
  kRetryBackoff,     // exponential backoff after engine/stream/comm faults
  kShed,             // decision instant of a terminal shed
  kStall,            // replica stall/straggle/idle clock jumps
  kDraftCompute,     // speculative draft-lane passes beyond the fused verify
                     // (ISSUE 10: the fused step charges max(verify, draft);
                     // the excess over the verify lane lands here)
  kCount,
};

inline constexpr std::size_t kPhaseCount =
    static_cast<std::size_t>(Phase::kCount);

// Stable snake_case name used in JSON exports and bench rows.
const char* phase_name(Phase p);

// Fixed-size per-request ledger; POD, no allocation.
struct PhaseBreakdown {
  double s[kPhaseCount] = {};

  void add(Phase p, double dt) { s[static_cast<std::size_t>(p)] += dt; }
  double get(Phase p) const { return s[static_cast<std::size_t>(p)]; }
  double total() const {
    double t = 0;
    for (double v : s) t += v;
    return t;
  }
  void merge(const PhaseBreakdown& o) {
    for (std::size_t i = 0; i < kPhaseCount; ++i) s[i] += o.s[i];
  }
  void clear() { *this = PhaseBreakdown{}; }

  // {"router_queue":...,"decode_compute":...} — only nonzero phases.
  void to_json(std::ostream& os) const;
};

// ---------------------------------------------------------------------------
// Enable gate + global sub-phase charge accumulators (measured mode).

namespace detail {
extern std::atomic<bool> g_attr_enabled;
// Nanosecond accumulators, one per phase. Global (not thread_local) on
// purpose: TP rank work runs on ThreadPool threads, so charges from any
// thread must land in one place the batcher can drain. Relaxed is enough —
// the drain happens strictly after the engine invocation returns (the
// thread pool joins), which orders the writes.
extern std::atomic<std::int64_t> g_charge_ns[kPhaseCount];
}  // namespace detail

inline bool attribution_enabled() {
  return detail::g_attr_enabled.load(std::memory_order_relaxed);
}

void set_attribution_enabled(bool on);

// Charges `seconds` of wall time to phase `p` from any thread. No-op (one
// relaxed load) when attribution is disabled.
inline void attr_charge(Phase p, double seconds) {
  if (!attribution_enabled()) return;
  detail::g_charge_ns[static_cast<std::size_t>(p)].fetch_add(
      static_cast<std::int64_t>(seconds * 1e9), std::memory_order_relaxed);
}

// Drains charge-accumulator deltas accumulated since construction (or the
// last take()). Used by the batcher around each measured engine invocation;
// only one measured invocation runs at a time per process, matching the
// event-loop structure of both schedulers.
class SubPhaseScope {
 public:
  SubPhaseScope();
  // Deltas since arm, in seconds, then re-arms at the current totals.
  PhaseBreakdown take();

 private:
  std::int64_t base_ns_[kPhaseCount];
};

// ---------------------------------------------------------------------------
// Totality checking + per-phase summaries.

// One finished request as the checker/summarizer sees it.
struct AttributedRequest {
  std::int64_t id = 0;
  double arrival_s = 0;
  double finish_s = 0;  // terminal instant (finish, shed, or fail time)
  bool violated = false;  // missed its SLO (deadline, shed, or failure)
  PhaseBreakdown phases;

  double e2e_s() const { return finish_s - arrival_s; }
};

// Epsilon for the totality invariant: virtual clocks accumulate the same
// doubles in a different order than finish-arrival, measured clocks add
// nanosecond-quantized sub-phases; 1 us absolute covers both.
inline constexpr double kTotalityEps = 1e-6;

// Returns "" when every request's phase sum matches its end-to-end latency
// within eps; otherwise a description of the first leak (id, sum, e2e).
std::string check_totality(const std::vector<AttributedRequest>& reqs,
                           double eps = kTotalityEps);

// Per-phase quantile row for bench export.
struct PhaseSummary {
  Phase phase = Phase::kCount;
  std::size_t count = 0;  // requests with a nonzero charge for this phase
  double total_s = 0;
  double share = 0;  // total_s / sum of all phases' total_s
  double p50_s = 0;
  double p95_s = 0;
  double p99_s = 0;
};

// Summarizes nonzero phases across `reqs` (quantiles over the requests
// that touched the phase), ordered by descending total_s.
std::vector<PhaseSummary> summarize_phases(
    const std::vector<AttributedRequest>& reqs);

}  // namespace dsinfer::obs
