// End-to-end tracing: per-thread span buffers exported as Chrome trace-event
// JSON (loadable in Perfetto / chrome://tracing).
//
// Design (ISSUE 3):
//   * Recording is gated on a single relaxed atomic flag; with tracing
//     disabled every instrumentation site costs one branch and performs no
//     allocation (tests assert this).
//   * Each thread appends to its own chunked buffer. The writer publishes
//     events with a release store of the buffer's event count; readers
//     (snapshot/export) acquire-load the count and never touch unpublished
//     slots, so recording needs no locks on the hot path and stays clean
//     under ThreadSanitizer.
//   * Spans nest per thread ('B'/'E' pairs, matched stack-wise like Chrome's
//     format requires); DSI_TRACE_SCOPE is the RAII form. Instant events
//     ('i') mark points in time, counter events ('C') plot values.
//   * Clock domains map to trace "processes": kWallPid events are stamped
//     from a shared steady_clock epoch; kServerPid and kSimPid events carry
//     explicit timestamps in virtual time (the batching server's replay
//     clock and the DES simulator's clock), emitted via complete_at /
//     instant_at. Virtual-device threads (TP ranks, pipeline stages) and
//     virtual tracks (requests, simulated resources) are named so the
//     exported trace reads like a timeline, not a pile of numbers.
//
// Typical use:
//   obs::TraceRecorder::instance().set_enabled(true);
//   { DSI_TRACE_SCOPE("engine", "prompt"); ... }
//   obs::TraceRecorder::instance().export_file("run.trace.json");
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dsinfer::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

// The one branch every disabled instrumentation site pays.
inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

// Clock domains, exported as distinct Chrome trace "processes".
inline constexpr std::int32_t kWallPid = 1;    // steady_clock (microseconds)
inline constexpr std::int32_t kServerPid = 2;  // server virtual time
inline constexpr std::int32_t kSimPid = 3;     // DES virtual time

struct TraceEvent {
  char phase = 'i';  // 'B' begin, 'E' end, 'i' instant, 'X' complete, 'C' counter
  std::int32_t pid = kWallPid;
  std::int64_t tid = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;   // 'X' only
  double value = 0.0;    // 'C' only
  const char* cat = "";  // must point at static storage (string literals)
  std::string name;
  std::string args_json;  // pre-rendered JSON object ("{...}"), or empty
};

class TraceRecorder {
 public:
  static TraceRecorder& instance();
  ~TraceRecorder();

  void set_enabled(bool on);
  // Drops all recorded events (buffers are kept). Callers must ensure no
  // thread is concurrently emitting (disable + join instrumented work first).
  void clear();

  // ---- Wall-clock domain, calling thread's track. No-ops when disabled. ----
  void begin(const char* cat, std::string name);
  void end();  // closes the innermost open span on this thread
  void instant(const char* cat, std::string name, std::string args_json = {});
  void counter(const char* cat, std::string name, double value);

  // ---- Explicit-timestamp events for virtual clock domains. ----
  void complete_at(std::int32_t pid, std::int64_t tid, double ts_us,
                   double dur_us, const char* cat, std::string name,
                   std::string args_json = {});
  void instant_at(std::int32_t pid, std::int64_t tid, double ts_us,
                  const char* cat, std::string name,
                  std::string args_json = {});

  // Names the calling thread's wall-domain track / an arbitrary (pid, tid)
  // track in the exported trace. Callers should gate on trace_enabled().
  void set_thread_name(std::string name);
  void set_track_name(std::int32_t pid, std::int64_t tid, std::string name);

  // Wall-domain microseconds since the recorder's epoch.
  double now_us() const;
  // The calling thread's wall-domain track id (registers the thread).
  std::int64_t current_tid();

  std::size_t event_count() const;
  // Copies all published events (per-thread buffers concatenated; events
  // within one thread are in emission order).
  std::vector<TraceEvent> snapshot() const;

  void export_json(std::ostream& os) const;
  bool export_file(const std::string& path) const;

 private:
  struct ThreadLog;

  TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  ThreadLog& local_log();
  ThreadLog* local_log_if_registered() const;
  TraceEvent& writable_slot(ThreadLog& log, std::size_t slot);
  static void publish(ThreadLog& log, std::size_t slot);

  static thread_local ThreadLog* t_log_;  // this thread's buffer (if any)

  mutable std::mutex mu_;  // registry: thread logs + track/process names
  std::vector<std::unique_ptr<ThreadLog>> logs_;
  std::int64_t next_tid_ = 1;
  std::vector<std::pair<std::pair<std::int32_t, std::int64_t>, std::string>>
      track_names_;
  std::chrono::steady_clock::time_point epoch_;
};

// RAII span. The (const char*, const char*) form defers all work past the
// enabled check; for dynamic names build the string behind trace_enabled():
//   obs::TraceScope s("engine", obs::trace_enabled()
//                                   ? "layer " + std::to_string(l)
//                                   : std::string());
class TraceScope {
 public:
  TraceScope(const char* cat, const char* name) {
    if (trace_enabled()) {
      active_ = true;
      TraceRecorder::instance().begin(cat, name);
    }
  }
  TraceScope(const char* cat, std::string name) {
    if (trace_enabled()) {
      active_ = true;
      TraceRecorder::instance().begin(cat, std::move(name));
    }
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
  ~TraceScope() {
    if (active_) TraceRecorder::instance().end();
  }

 private:
  bool active_ = false;
};

// Structural checkers used by tests and the trace_schema_check ctest.
// validate_json: strict JSON grammar check (objects/arrays/strings/numbers/
// literals, escape sequences). validate_chrome_trace additionally requires a
// top-level {"traceEvents": [...]} and that every 'B' has a matching 'E'
// (stack-wise, per (pid, tid) track, in file order).
bool validate_json(const std::string& text, std::string* error);
bool validate_chrome_trace(const std::string& text, std::string* error);

}  // namespace dsinfer::obs

#define DSI_TRACE_CONCAT_IMPL(a, b) a##b
#define DSI_TRACE_CONCAT(a, b) DSI_TRACE_CONCAT_IMPL(a, b)
// Scoped span: DSI_TRACE_SCOPE("engine", "prompt");
#define DSI_TRACE_SCOPE(cat, name)                                      \
  ::dsinfer::obs::TraceScope DSI_TRACE_CONCAT(dsi_trace_scope_, __LINE__)( \
      cat, name)
