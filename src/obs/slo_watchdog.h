// Live SLO watchdog: time-windowed sliding latency histograms and per-class
// error-budget burn rates, with JSON and Prometheus-text exporters
// (ISSUE 8 tentpole).
//
// A WindowedHistogram splits its window into R rotating sub-windows; each
// sample lands in the sub-window owning its timestamp and whole sub-windows
// expire at once as time advances, so the merged snapshot always covers
// (window_s - sub_window) .. window_s of trailing traffic with O(R) rotate
// cost and zero per-sample allocation. Timestamps are whatever clock the
// caller serves on — virtual seconds for the deterministic paths, wall
// seconds for measured ones — they only need to be (weakly) monotone.
//
// Burn rate is the SRE definition: (violation fraction in the window) /
// (error budget), so burn > 1 means the class is consuming budget faster
// than it is allotted and the watchdog alerts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.h"  // HistogramSnapshot

namespace dsinfer::obs {

struct WindowedHistogramOptions {
  double window_s = 1.0;   // total trailing coverage
  int sub_windows = 8;     // rotation granularity (>= 1)
  std::vector<double> bounds;  // empty => registry default latency ladder
};

class WindowedHistogram {
 public:
  explicit WindowedHistogram(WindowedHistogramOptions opts = {});

  // Records `value` at time `now_s`, expiring sub-windows first. Samples
  // older than the current sub-window (time moving backwards) land in the
  // current one — the window only needs weak monotonicity.
  void record(double now_s, double value);
  // Expires sub-windows up to `now_s` without recording.
  void advance(double now_s);

  // Merged snapshot of the live sub-windows at `now_s` (const: expiry is
  // applied by filtering, not mutation). Empty window => count 0 snapshot
  // whose quantile() returns 0.
  HistogramSnapshot snapshot(double now_s) const;
  std::size_t window_count(double now_s) const;

  double window_s() const { return opts_.window_s; }

 private:
  struct SubWindow {
    std::int64_t index = -1;  // absolute sub-window index, -1 = empty
    std::vector<std::int64_t> counts;
    Welford acc;
    double min = 0.0;
    double max = 0.0;
  };

  std::int64_t abs_index(double now_s) const;
  bool live(const SubWindow& w, std::int64_t cur) const;

  WindowedHistogramOptions opts_;
  double sub_s_;
  std::vector<double> bounds_;
  std::vector<SubWindow> ring_;
  std::int64_t cur_ = 0;  // highest absolute sub-window index seen
};

// One SLO class the watchdog tracks. `error_budget` is the allowed
// violation fraction (e.g. 0.05 => 95% of requests must meet the SLO).
struct SloClassConfig {
  std::string name;
  double error_budget = 0.05;
};

class SloWatchdog {
 public:
  SloWatchdog(std::vector<SloClassConfig> classes,
              WindowedHistogramOptions hist_opts = {});

  // Records one terminal request of class `cls` at time `now_s`.
  // `violation` is the caller's SLO verdict (deadline miss, shed, failure).
  void observe(double now_s, std::size_t cls, double latency_s,
               bool violation);

  struct ClassStatus {
    std::string name;
    double error_budget = 0;
    std::size_t window_count = 0;     // requests in the trailing window
    std::size_t window_violations = 0;
    double violation_rate = 0;        // window_violations / window_count
    double burn_rate = 0;             // violation_rate / error_budget
    bool alerting = false;            // burn_rate > 1
    double p50_s = 0;
    double p95_s = 0;
    double p99_s = 0;
    std::int64_t total = 0;           // lifetime observations
    std::int64_t total_violations = 0;
  };

  std::vector<ClassStatus> status(double now_s) const;
  std::size_t class_count() const { return classes_.size(); }

  // {"window_s":...,"classes":[{...}]}
  void export_json(std::ostream& os, double now_s) const;
  // Prometheus text exposition: slo_requests_total / slo_violations_total
  // counters and slo_latency_seconds{quantile=...} / slo_burn_rate gauges,
  // labeled by slo_class.
  void export_prometheus(std::ostream& os, double now_s) const;

 private:
  struct PerClass {
    WindowedHistogram latency;
    WindowedHistogram violations;  // 0/1 samples; window mean = rate
    std::int64_t total = 0;
    std::int64_t total_violations = 0;
  };

  std::vector<SloClassConfig> classes_;
  std::vector<PerClass> per_class_;
};

}  // namespace dsinfer::obs
