#include "obs/slo_watchdog.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace dsinfer::obs {

// ---------------------------------------------------------------------------
// WindowedHistogram
// ---------------------------------------------------------------------------

WindowedHistogram::WindowedHistogram(WindowedHistogramOptions opts)
    : opts_(std::move(opts)) {
  if (!(opts_.window_s > 0)) {
    throw std::invalid_argument("WindowedHistogram: window_s must be > 0");
  }
  opts_.sub_windows = std::max(1, opts_.sub_windows);
  sub_s_ = opts_.window_s / static_cast<double>(opts_.sub_windows);
  bounds_ = opts_.bounds.empty() ? default_latency_bounds()
                                 : opts_.bounds;
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i] > bounds_[i - 1])) {
      throw std::invalid_argument(
          "WindowedHistogram: bounds must be strictly increasing");
    }
  }
  ring_.resize(static_cast<std::size_t>(opts_.sub_windows));
  for (auto& w : ring_) w.counts.assign(bounds_.size() + 1, 0);
}

std::int64_t WindowedHistogram::abs_index(double now_s) const {
  return static_cast<std::int64_t>(std::floor(now_s / sub_s_));
}

bool WindowedHistogram::live(const SubWindow& w, std::int64_t cur) const {
  return w.index >= 0 && w.index > cur - opts_.sub_windows && w.index <= cur;
}

void WindowedHistogram::advance(double now_s) {
  cur_ = std::max(cur_, abs_index(now_s));
}

void WindowedHistogram::record(double now_s, double value) {
  advance(now_s);
  // Late samples (time moving backwards across a sub-window edge) land in
  // the current sub-window: totals stay exact, placement is approximate.
  const std::int64_t idx = std::min(cur_, std::max(abs_index(now_s),
                                                   cur_ - opts_.sub_windows + 1));
  auto& w = ring_[static_cast<std::size_t>(
      ((idx % opts_.sub_windows) + opts_.sub_windows) % opts_.sub_windows)];
  if (w.index != idx) {
    // Rotating into this slot: drop the expired sub-window it held.
    w.index = idx;
    std::fill(w.counts.begin(), w.counts.end(), 0);
    w.acc = Welford{};
    w.min = w.max = 0.0;
  }
  const std::size_t bucket = static_cast<std::size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  ++w.counts[bucket];
  if (w.acc.count() == 0) {
    w.min = w.max = value;
  } else {
    w.min = std::min(w.min, value);
    w.max = std::max(w.max, value);
  }
  w.acc.add(value);
}

HistogramSnapshot WindowedHistogram::snapshot(double now_s) const {
  const std::int64_t cur = std::max(cur_, abs_index(now_s));
  HistogramSnapshot s;
  s.bounds = bounds_;
  s.counts.assign(bounds_.size() + 1, 0);
  Welford acc;
  bool any = false;
  for (const auto& w : ring_) {
    if (!live(w, cur) || w.acc.count() == 0) continue;
    for (std::size_t i = 0; i < s.counts.size(); ++i) s.counts[i] += w.counts[i];
    if (!any) {
      s.min = w.min;
      s.max = w.max;
      any = true;
    } else {
      s.min = std::min(s.min, w.min);
      s.max = std::max(s.max, w.max);
    }
    acc.merge(w.acc);
  }
  s.count = acc.count();
  s.mean = acc.mean();
  s.variance = acc.variance();
  return s;
}

std::size_t WindowedHistogram::window_count(double now_s) const {
  return snapshot(now_s).count;
}

// ---------------------------------------------------------------------------
// SloWatchdog
// ---------------------------------------------------------------------------

SloWatchdog::SloWatchdog(std::vector<SloClassConfig> classes,
                         WindowedHistogramOptions hist_opts)
    : classes_(std::move(classes)) {
  if (classes_.empty()) {
    throw std::invalid_argument("SloWatchdog: at least one SLO class");
  }
  for (const auto& c : classes_) {
    if (!(c.error_budget > 0) || c.error_budget > 1) {
      throw std::invalid_argument(
          "SloWatchdog: error_budget must be in (0, 1]");
    }
  }
  WindowedHistogramOptions vopts = hist_opts;
  vopts.bounds = {0.5};  // 0/1 samples: bucket edge between miss and hit
  per_class_.reserve(classes_.size());
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    per_class_.push_back(PerClass{WindowedHistogram(hist_opts),
                                  WindowedHistogram(vopts), 0, 0});
  }
}

void SloWatchdog::observe(double now_s, std::size_t cls, double latency_s,
                          bool violation) {
  if (cls >= per_class_.size()) {
    throw std::out_of_range("SloWatchdog::observe: bad class index");
  }
  auto& pc = per_class_[cls];
  pc.latency.record(now_s, latency_s);
  pc.violations.record(now_s, violation ? 1.0 : 0.0);
  ++pc.total;
  if (violation) ++pc.total_violations;
}

std::vector<SloWatchdog::ClassStatus> SloWatchdog::status(
    double now_s) const {
  std::vector<ClassStatus> out;
  out.reserve(classes_.size());
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    const auto& pc = per_class_[i];
    ClassStatus st;
    st.name = classes_[i].name;
    st.error_budget = classes_[i].error_budget;
    const HistogramSnapshot lat = pc.latency.snapshot(now_s);
    const HistogramSnapshot vio = pc.violations.snapshot(now_s);
    st.window_count = lat.count;
    // The violations histogram holds 0/1 samples; its windowed mean is the
    // violation rate, mean * count the violation count.
    st.window_violations = static_cast<std::size_t>(
        std::llround(vio.mean * static_cast<double>(vio.count)));
    st.violation_rate =
        lat.count > 0
            ? static_cast<double>(st.window_violations) /
                  static_cast<double>(lat.count)
            : 0.0;
    st.burn_rate = st.violation_rate / classes_[i].error_budget;
    st.alerting = st.burn_rate > 1.0;
    st.p50_s = lat.quantile(0.50);
    st.p95_s = lat.quantile(0.95);
    st.p99_s = lat.quantile(0.99);
    st.total = pc.total;
    st.total_violations = pc.total_violations;
    out.push_back(std::move(st));
  }
  return out;
}

void SloWatchdog::export_json(std::ostream& os, double now_s) const {
  const auto sts = status(now_s);
  os << "{\"window_s\":" << per_class_.front().latency.window_s()
     << ",\"now_s\":" << now_s << ",\"classes\":[";
  for (std::size_t i = 0; i < sts.size(); ++i) {
    const auto& st = sts[i];
    if (i) os << ',';
    os << "{\"name\":\"" << st.name << "\",\"error_budget\":"
       << st.error_budget << ",\"window_count\":" << st.window_count
       << ",\"window_violations\":" << st.window_violations
       << ",\"violation_rate\":" << st.violation_rate
       << ",\"burn_rate\":" << st.burn_rate
       << ",\"alerting\":" << (st.alerting ? "true" : "false")
       << ",\"p50_s\":" << st.p50_s << ",\"p95_s\":" << st.p95_s
       << ",\"p99_s\":" << st.p99_s << ",\"total\":" << st.total
       << ",\"total_violations\":" << st.total_violations << '}';
  }
  os << "]}";
}

void SloWatchdog::export_prometheus(std::ostream& os, double now_s) const {
  const auto sts = status(now_s);
  os << "# TYPE slo_requests_total counter\n";
  for (const auto& st : sts) {
    os << "slo_requests_total{slo_class=\"" << st.name << "\"} " << st.total
       << '\n';
  }
  os << "# TYPE slo_violations_total counter\n";
  for (const auto& st : sts) {
    os << "slo_violations_total{slo_class=\"" << st.name << "\"} "
       << st.total_violations << '\n';
  }
  os << "# TYPE slo_latency_seconds summary\n";
  for (const auto& st : sts) {
    os << "slo_latency_seconds{slo_class=\"" << st.name
       << "\",quantile=\"0.5\"} " << st.p50_s << '\n';
    os << "slo_latency_seconds{slo_class=\"" << st.name
       << "\",quantile=\"0.95\"} " << st.p95_s << '\n';
    os << "slo_latency_seconds{slo_class=\"" << st.name
       << "\",quantile=\"0.99\"} " << st.p99_s << '\n';
  }
  os << "# TYPE slo_burn_rate gauge\n";
  for (const auto& st : sts) {
    os << "slo_burn_rate{slo_class=\"" << st.name << "\"} " << st.burn_rate
       << '\n';
  }
  os << "# TYPE slo_alerting gauge\n";
  for (const auto& st : sts) {
    os << "slo_alerting{slo_class=\"" << st.name << "\"} "
       << (st.alerting ? 1 : 0) << '\n';
  }
}

}  // namespace dsinfer::obs
