#include "obs/trace.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <ostream>

namespace dsinfer::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

// Per-thread event storage: a singly linked list of fixed-size chunks. The
// owning thread is the only writer; it fills a slot completely, then
// publishes it with a release store of `count`. Readers acquire-load `count`
// and walk the chunk list, touching only published slots. Chunk links are
// also published with release stores before the count that covers them, so
// the count acquire is the only synchronization a reader needs.
struct TraceRecorder::ThreadLog {
  static constexpr std::size_t kChunkCap = 512;
  struct Chunk {
    std::array<TraceEvent, kChunkCap> ev;
    std::atomic<Chunk*> next{nullptr};
  };

  explicit ThreadLog(std::int64_t tid_in)
      : tid(tid_in), head(new Chunk), wchunk(head) {}
  ~ThreadLog() {
    for (Chunk* c = head; c != nullptr;) {
      Chunk* n = c->next.load(std::memory_order_relaxed);
      delete c;
      c = n;
    }
  }

  std::int64_t tid;
  Chunk* head;
  std::atomic<std::size_t> count{0};

  // Writer-only state (never touched by readers).
  Chunk* wchunk;          // chunk containing slot `wbase`..`wbase + cap - 1`
  std::size_t wbase = 0;  // first slot index of wchunk
  std::int64_t depth = 0;  // open-span nesting on this thread
  std::string name;        // thread_name metadata (guarded by registry mu_)
};

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}
TraceRecorder::~TraceRecorder() = default;

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::set_enabled(bool on) {
  detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

thread_local TraceRecorder::ThreadLog* TraceRecorder::t_log_ = nullptr;

TraceRecorder::ThreadLog& TraceRecorder::local_log() {
  if (t_log_ == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    logs_.push_back(std::make_unique<ThreadLog>(next_tid_++));
    t_log_ = logs_.back().get();
  }
  return *t_log_;
}

TraceRecorder::ThreadLog* TraceRecorder::local_log_if_registered() const {
  return t_log_;
}

TraceEvent& TraceRecorder::writable_slot(ThreadLog& log, std::size_t slot) {
  if (slot < log.wbase) {  // clear() rewound the count; restart at the head
    log.wchunk = log.head;
    log.wbase = 0;
  }
  while (slot >= log.wbase + ThreadLog::kChunkCap) {
    ThreadLog::Chunk* next =
        log.wchunk->next.load(std::memory_order_relaxed);
    if (next == nullptr) {
      next = new ThreadLog::Chunk;
      log.wchunk->next.store(next, std::memory_order_release);
    }
    log.wchunk = next;
    log.wbase += ThreadLog::kChunkCap;
  }
  return log.wchunk->ev[slot - log.wbase];
}

void TraceRecorder::publish(ThreadLog& log, std::size_t slot) {
  log.count.store(slot + 1, std::memory_order_release);
}

double TraceRecorder::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::int64_t TraceRecorder::current_tid() { return local_log().tid; }

void TraceRecorder::begin(const char* cat, std::string name) {
  if (!trace_enabled()) return;
  ThreadLog& log = local_log();
  const std::size_t slot = log.count.load(std::memory_order_relaxed);
  TraceEvent& e = writable_slot(log, slot);
  e.phase = 'B';
  e.pid = kWallPid;
  e.tid = log.tid;
  e.ts_us = now_us();
  e.dur_us = 0;
  e.value = 0;
  e.cat = cat;
  e.name = std::move(name);
  e.args_json.clear();
  publish(log, slot);
  ++log.depth;
}

void TraceRecorder::end() {
  // Intentionally not gated on trace_enabled(): if tracing was disabled
  // mid-span, the matching 'E' must still be recorded so the trace stays
  // structurally valid. Threads that never began a span have no log.
  ThreadLog* log = local_log_if_registered();
  if (log == nullptr || log->depth <= 0) return;
  --log->depth;
  const std::size_t slot = log->count.load(std::memory_order_relaxed);
  TraceEvent& e = writable_slot(*log, slot);
  e.phase = 'E';
  e.pid = kWallPid;
  e.tid = log->tid;
  e.ts_us = now_us();
  e.dur_us = 0;
  e.value = 0;
  e.cat = "";
  e.name.clear();
  e.args_json.clear();
  publish(*log, slot);
}

void TraceRecorder::instant(const char* cat, std::string name,
                            std::string args_json) {
  if (!trace_enabled()) return;
  ThreadLog& log = local_log();
  instant_at(kWallPid, log.tid, now_us(), cat, std::move(name),
             std::move(args_json));
}

void TraceRecorder::counter(const char* cat, std::string name, double value) {
  if (!trace_enabled()) return;
  ThreadLog& log = local_log();
  const std::size_t slot = log.count.load(std::memory_order_relaxed);
  TraceEvent& e = writable_slot(log, slot);
  e.phase = 'C';
  e.pid = kWallPid;
  e.tid = log.tid;
  e.ts_us = now_us();
  e.dur_us = 0;
  e.value = value;
  e.cat = cat;
  e.name = std::move(name);
  e.args_json.clear();
  publish(log, slot);
}

void TraceRecorder::complete_at(std::int32_t pid, std::int64_t tid,
                                double ts_us, double dur_us, const char* cat,
                                std::string name, std::string args_json) {
  if (!trace_enabled()) return;
  ThreadLog& log = local_log();
  const std::size_t slot = log.count.load(std::memory_order_relaxed);
  TraceEvent& e = writable_slot(log, slot);
  e.phase = 'X';
  e.pid = pid;
  e.tid = tid;
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.value = 0;
  e.cat = cat;
  e.name = std::move(name);
  e.args_json = std::move(args_json);
  publish(log, slot);
}

void TraceRecorder::instant_at(std::int32_t pid, std::int64_t tid,
                               double ts_us, const char* cat, std::string name,
                               std::string args_json) {
  if (!trace_enabled()) return;
  ThreadLog& log = local_log();
  const std::size_t slot = log.count.load(std::memory_order_relaxed);
  TraceEvent& e = writable_slot(log, slot);
  e.phase = 'i';
  e.pid = pid;
  e.tid = tid;
  e.ts_us = ts_us;
  e.dur_us = 0;
  e.value = 0;
  e.cat = cat;
  e.name = std::move(name);
  e.args_json = std::move(args_json);
  publish(log, slot);
}

void TraceRecorder::set_thread_name(std::string name) {
  ThreadLog& log = local_log();
  std::lock_guard<std::mutex> lock(mu_);
  log.name = std::move(name);
}

void TraceRecorder::set_track_name(std::int32_t pid, std::int64_t tid,
                                   std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : track_names_) {
    if (entry.first == std::make_pair(pid, tid)) {
      entry.second = std::move(name);
      return;
    }
  }
  track_names_.push_back({{pid, tid}, std::move(name)});
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& log : logs_) {
    log->count.store(0, std::memory_order_release);
    log->depth = 0;
  }
  track_names_.clear();
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& log : logs_) {
    n += log->count.load(std::memory_order_acquire);
  }
  return n;
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& log : logs_) {
    const std::size_t n = log->count.load(std::memory_order_acquire);
    const ThreadLog::Chunk* c = log->head;
    std::size_t i = 0;
    while (i < n && c != nullptr) {
      const std::size_t in_chunk =
          std::min(n - i, ThreadLog::kChunkCap);
      for (std::size_t j = 0; j < in_chunk; ++j) out.push_back(c->ev[j]);
      i += in_chunk;
      c = c->next.load(std::memory_order_acquire);
    }
  }
  return out;
}

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  for (const char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          os << buf;
        } else {
          os << ch;
        }
    }
  }
}

void write_number(std::ostream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  os << buf;
}

void write_metadata(std::ostream& os, std::int32_t pid, std::int64_t tid,
                    const char* meta, const std::string& value, bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << R"({"ph":"M","pid":)" << pid << R"(,"tid":)" << tid << R"(,"name":")"
     << meta << R"(","args":{"name":")";
  json_escape(os, value);
  os << "\"}}";
}

}  // namespace

void TraceRecorder::export_json(std::ostream& os) const {
  const std::vector<TraceEvent> events = snapshot();
  os << "{\"traceEvents\":[\n";
  bool first = true;
  write_metadata(os, kWallPid, 0, "process_name", "wall clock (steady)",
                 first);
  write_metadata(os, kServerPid, 0, "process_name", "server (virtual time)",
                 first);
  write_metadata(os, kSimPid, 0, "process_name", "simulator (virtual time)",
                 first);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& log : logs_) {
      if (!log->name.empty()) {
        write_metadata(os, kWallPid, log->tid, "thread_name", log->name,
                       first);
      }
    }
    for (const auto& entry : track_names_) {
      write_metadata(os, entry.first.first, entry.first.second, "thread_name",
                     entry.second, first);
    }
  }
  for (const TraceEvent& e : events) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"ph\":\"" << e.phase << "\",\"pid\":" << e.pid
       << ",\"tid\":" << e.tid << ",\"ts\":";
    write_number(os, e.ts_us);
    if (e.phase != 'E') {
      os << ",\"cat\":\"";
      json_escape(os, e.cat);
      os << "\",\"name\":\"";
      json_escape(os, e.name);
      os << "\"";
    }
    if (e.phase == 'X') {
      os << ",\"dur\":";
      write_number(os, e.dur_us);
    }
    if (e.phase == 'i') os << ",\"s\":\"t\"";
    if (e.phase == 'C') {
      os << ",\"args\":{\"value\":";
      write_number(os, e.value);
      os << "}";
    } else if (!e.args_json.empty()) {
      // args_json is caller-supplied pre-rendered JSON. A malformed blob
      // (stray quote, raw control char) used to pass through verbatim and
      // corrupt the whole export; emit it as an escaped string instead so
      // the trace stays loadable and the bad payload stays inspectable
      // (ISSUE 8 satellite).
      std::string err;
      if (validate_json(e.args_json, &err) && e.args_json.front() == '{') {
        os << ",\"args\":" << e.args_json;
      } else {
        os << ",\"args\":{\"invalid_args_json\":\"";
        json_escape(os, e.args_json);
        os << "\"}";
      }
    }
    os << "}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

bool TraceRecorder::export_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  export_json(f);
  f.flush();
  return static_cast<bool>(f);
}

// ---------------------------------------------------------------------------
// Structural validation (tests + trace_schema_check ctest).
// ---------------------------------------------------------------------------

namespace {

// Strict recursive-descent JSON checker. While parsing an element of the
// top-level "traceEvents" array it captures that event's "ph"/"pid"/"tid"
// scalars so the caller can run the B/E stack check without a DOM.
class JsonChecker {
 public:
  struct EventKeys {
    char ph = 0;
    long long pid = 0;
    long long tid = 0;
  };

  JsonChecker(const std::string& text, std::string* error)
      : begin_(text.data()), p_(text.data()),
        end_(text.data() + text.size()), error_(error) {}

  // Grammar-only validation of the whole text.
  bool check_document() {
    skip_ws();
    if (!parse_value(nullptr)) return false;
    skip_ws();
    if (p_ != end_) return fail("trailing characters after document");
    return true;
  }

  // Validates the document AND requires {"traceEvents": [ {..}, .. ]},
  // collecting event keys into `events`.
  bool check_trace(std::vector<EventKeys>* events) {
    events_ = events;
    skip_ws();
    if (p_ == end_ || *p_ != '{') return fail("trace must be a JSON object");
    if (!parse_object(/*is_root=*/true)) return false;
    skip_ws();
    if (p_ != end_) return fail("trailing characters after document");
    if (!saw_trace_events_) return fail("missing traceEvents array");
    return true;
  }

 private:
  bool fail(const std::string& why) {
    if (error_ != nullptr) {
      *error_ = why + " (at byte " + std::to_string(p_ - begin_) + ")";
    }
    return false;
  }

  void skip_ws() {
    while (p_ != end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }

  bool parse_value(EventKeys* ev, const std::string* key = nullptr) {
    skip_ws();
    if (p_ == end_) return fail("unexpected end of input");
    switch (*p_) {
      case '{': {
        // Keys of nested objects (e.g. an event's "args") are not event keys.
        EventKeys* saved = capturing_;
        capturing_ = nullptr;
        const bool ok = parse_object(false);
        capturing_ = saved;
        return ok;
      }
      case '[': {
        EventKeys* saved = capturing_;
        capturing_ = nullptr;
        const bool ok = parse_array(false);
        capturing_ = saved;
        return ok;
      }
      case '"': {
        std::string s;
        if (!parse_string(&s)) return false;
        if (ev != nullptr && key != nullptr && *key == "ph" && s.size() == 1) {
          ev->ph = s[0];
        }
        return true;
      }
      case 't': return parse_literal("true");
      case 'f': return parse_literal("false");
      case 'n': return parse_literal("null");
      default: {
        double num = 0;
        if (!parse_number(&num)) return false;
        if (ev != nullptr && key != nullptr) {
          if (*key == "pid") ev->pid = static_cast<long long>(num);
          if (*key == "tid") ev->tid = static_cast<long long>(num);
        }
        return true;
      }
    }
  }

  bool parse_object(bool is_root) {
    ++p_;  // '{'
    skip_ws();
    if (p_ != end_ && *p_ == '}') {
      ++p_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (p_ == end_ || *p_ != '"' || !parse_string(&key)) {
        return fail("expected object key string");
      }
      skip_ws();
      if (p_ == end_ || *p_ != ':') return fail("expected ':' after key");
      ++p_;
      if (is_root && key == "traceEvents") {
        skip_ws();
        if (p_ == end_ || *p_ != '[') {
          return fail("traceEvents must be an array");
        }
        saw_trace_events_ = true;
        if (!parse_array(/*is_events=*/true)) return false;
      } else if (capturing_ != nullptr) {
        if (!parse_value(capturing_, &key)) return false;
      } else {
        if (!parse_value(nullptr)) return false;
      }
      skip_ws();
      if (p_ != end_ && *p_ == ',') {
        ++p_;
        continue;
      }
      if (p_ != end_ && *p_ == '}') {
        ++p_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(bool is_events) {
    ++p_;  // '['
    skip_ws();
    if (p_ != end_ && *p_ == ']') {
      ++p_;
      return true;
    }
    while (true) {
      if (is_events) {
        skip_ws();
        if (p_ == end_ || *p_ != '{') {
          return fail("traceEvents elements must be objects");
        }
        EventKeys ev;
        capturing_ = &ev;
        const bool ok = parse_object(false);
        capturing_ = nullptr;
        if (!ok) return false;
        if (events_ != nullptr) events_->push_back(ev);
      } else {
        if (!parse_value(nullptr)) return false;
      }
      skip_ws();
      if (p_ != end_ && *p_ == ',') {
        ++p_;
        continue;
      }
      if (p_ != end_ && *p_ == ']') {
        ++p_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string* out) {
    ++p_;  // '"'
    while (p_ != end_) {
      const char c = *p_;
      if (c == '"') {
        ++p_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c == '\\') {
        ++p_;
        if (p_ == end_) return fail("dangling escape");
        const char esc = *p_;
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++p_;
            if (p_ == end_ || !std::isxdigit(static_cast<unsigned char>(*p_))) {
              return fail("bad \\u escape");
            }
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return fail("bad escape character");
        }
        if (out != nullptr && esc == '"') out->push_back('"');
        ++p_;
        continue;
      }
      if (out != nullptr) out->push_back(c);
      ++p_;
    }
    return fail("unterminated string");
  }

  bool parse_number(double* out) {
    const char* start = p_;
    if (p_ != end_ && *p_ == '-') ++p_;
    if (p_ == end_ || !std::isdigit(static_cast<unsigned char>(*p_))) {
      return fail("malformed number");
    }
    while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    if (p_ != end_ && *p_ == '.') {
      ++p_;
      if (p_ == end_ || !std::isdigit(static_cast<unsigned char>(*p_))) {
        return fail("malformed fraction");
      }
      while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    }
    if (p_ != end_ && (*p_ == 'e' || *p_ == 'E')) {
      ++p_;
      if (p_ != end_ && (*p_ == '+' || *p_ == '-')) ++p_;
      if (p_ == end_ || !std::isdigit(static_cast<unsigned char>(*p_))) {
        return fail("malformed exponent");
      }
      while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    }
    *out = std::strtod(std::string(start, p_).c_str(), nullptr);
    return true;
  }

  bool parse_literal(const char* lit) {
    for (const char* q = lit; *q != '\0'; ++q, ++p_) {
      if (p_ == end_ || *p_ != *q) return fail("bad literal");
    }
    return true;
  }

  const char* begin_;
  const char* p_;
  const char* end_;
  std::string* error_;
  std::vector<EventKeys>* events_ = nullptr;
  JsonChecker::EventKeys* capturing_ = nullptr;
  bool saw_trace_events_ = false;
};

}  // namespace

bool validate_json(const std::string& text, std::string* error) {
  return JsonChecker(text, error).check_document();
}

bool validate_chrome_trace(const std::string& text, std::string* error) {
  std::vector<JsonChecker::EventKeys> events;
  if (!JsonChecker(text, error).check_trace(&events)) return false;
  // Stack-match B/E per (pid, tid) track in file order (per-thread emission
  // order, which is chronological within a track).
  std::map<std::pair<long long, long long>, long long> open;
  for (const auto& ev : events) {
    const auto key = std::make_pair(ev.pid, ev.tid);
    if (ev.ph == 'B') {
      ++open[key];
    } else if (ev.ph == 'E') {
      if (--open[key] < 0) {
        if (error != nullptr) {
          *error = "unmatched 'E' event on pid " + std::to_string(ev.pid) +
                   " tid " + std::to_string(ev.tid);
        }
        return false;
      }
    }
  }
  for (const auto& [key, depth] : open) {
    if (depth != 0) {
      if (error != nullptr) {
        *error = "unclosed 'B' event(s) on pid " + std::to_string(key.first) +
                 " tid " + std::to_string(key.second);
      }
      return false;
    }
  }
  return true;
}

}  // namespace dsinfer::obs
