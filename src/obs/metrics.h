// Metrics registry: named counters, gauges, and fixed-bucket histograms
// with snapshot/export-to-JSON (ISSUE 3).
//
// Cost model: every instrument op is gated on one relaxed atomic enable
// flag — disabled metrics cost a single branch, no locks, no allocation.
// Enabled counters/gauges are single relaxed atomic ops; histograms take a
// per-histogram mutex (they feed a Welford accumulator, which cannot be
// updated lock-free) — acceptable for the request/fetch-granularity paths
// they instrument, never placed inside per-element kernel loops.
//
// Handles returned by the registry are stable for the process lifetime
// (reset() zeroes values but never invalidates instruments), so hot call
// sites cache them:
//   static obs::Counter& bytes =
//       obs::MetricsRegistry::instance().counter("comm.bytes");
//   bytes.add(n);
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/stats.h"  // Welford (header-only)

namespace dsinfer::obs {

namespace detail {
extern std::atomic<bool> g_metrics_enabled;
}  // namespace detail

inline bool metrics_enabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

// The default histogram bucket ladder (100 us .. 10 s in a 1/2.5/5
// progression) — shared with the windowed SLO histograms so aggregate and
// sliding views quantize identically.
std::vector<double> default_latency_bounds();

class Counter {
 public:
  void add(std::int64_t delta = 1) {
    if (metrics_enabled()) v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) {
    if (metrics_enabled()) v_.store(v, std::memory_order_relaxed);
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// Snapshot of one histogram; `counts[i]` is the number of samples with
// value <= bounds[i] (and counts.back() the overflow bucket).
struct HistogramSnapshot {
  std::string name;
  std::size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  // sample variance (Welford)
  double min = 0.0;
  double max = 0.0;
  std::vector<double> bounds;
  std::vector<std::int64_t> counts;  // bounds.size() + 1 entries

  // Quantile estimate (q in [0,1]): linear interpolation within the bucket
  // holding the q-th sample; clamped to [min, max].
  double quantile(double q) const;
};

class Histogram {
 public:
  // `bounds` are strictly increasing bucket upper bounds (inclusive); an
  // implicit +inf overflow bucket is appended.
  explicit Histogram(std::vector<double> bounds);

  void record(double x);
  HistogramSnapshot snapshot() const;  // name left empty; registry fills it
  void reset();

 private:
  std::vector<double> bounds_;
  mutable std::mutex mu_;
  std::vector<std::int64_t> counts_;
  Welford acc_;
  double min_ = 0.0;
  double max_ = 0.0;
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  void to_json(std::ostream& os) const;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  void set_enabled(bool on);
  // Zeroes every instrument. Handles stay valid (instruments are never
  // destroyed), so cached references keep working.
  void reset();

  // Get-or-create by name. For histogram(), `bounds` applies only on first
  // creation; later calls return the existing instrument unchanged. An empty
  // `bounds` uses a latency-oriented default ladder (100 us .. 10 s).
  // The name namespace is shared across kinds: registering a name as one
  // kind and later requesting it as another throws std::logic_error — a
  // collision would silently fork the metric between exports (ISSUE 8
  // satellite; the registry table lives in DESIGN "Metric-name registry").
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {});

  MetricsSnapshot snapshot() const;
  void export_json(std::ostream& os) const;
  bool export_file(const std::string& path) const;

 private:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  enum class Kind { kCounter, kGauge, kHistogram };
  // Records `name` as `kind`, throwing std::logic_error if it is already
  // registered as a different kind. Caller holds mu_.
  void claim_name(const std::string& name, Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, Kind> kinds_;
};

}  // namespace dsinfer::obs
