#include "obs/attribution.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

namespace dsinfer::obs {

namespace {

// Same linear-interpolation quantile as util::percentile_sorted, local here
// because dsi_obs sits below dsi_util in the link graph (the base layer
// everything else links against) and so cannot call into it.
double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

namespace detail {
std::atomic<bool> g_attr_enabled{false};
std::atomic<std::int64_t> g_charge_ns[kPhaseCount] = {};
}  // namespace detail

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kRouterQueue: return "router_queue";
    case Phase::kHedgeWait: return "hedge_wait";
    case Phase::kFailover: return "failover";
    case Phase::kAdmissionWait: return "admission_wait";
    case Phase::kPrefill: return "prefill";
    case Phase::kDecodeCompute: return "decode_compute";
    case Phase::kTpAllreduce: return "tp_allreduce";
    case Phase::kZeroFetch: return "zero_fetch";
    case Phase::kKvSpill: return "kv_spill";
    case Phase::kRetryBackoff: return "retry_backoff";
    case Phase::kShed: return "shed";
    case Phase::kStall: return "stall";
    case Phase::kDraftCompute: return "draft_compute";
    case Phase::kCount: break;
  }
  return "unknown";
}

void PhaseBreakdown::to_json(std::ostream& os) const {
  os << '{';
  bool first = true;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    if (s[i] == 0.0) continue;
    if (!first) os << ',';
    first = false;
    os << '"' << phase_name(static_cast<Phase>(i)) << "\":" << s[i];
  }
  os << '}';
}

void set_attribution_enabled(bool on) {
  detail::g_attr_enabled.store(on, std::memory_order_relaxed);
  if (on) {
    // Fresh accounting epoch: stale charges from a previous (possibly
    // abandoned) run must not leak into the first SubPhaseScope delta.
    for (auto& c : detail::g_charge_ns) {
      c.store(0, std::memory_order_relaxed);
    }
  }
}

SubPhaseScope::SubPhaseScope() {
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    base_ns_[i] = detail::g_charge_ns[i].load(std::memory_order_relaxed);
  }
}

PhaseBreakdown SubPhaseScope::take() {
  PhaseBreakdown out;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const std::int64_t now =
        detail::g_charge_ns[i].load(std::memory_order_relaxed);
    out.s[i] = static_cast<double>(now - base_ns_[i]) * 1e-9;
    base_ns_[i] = now;
  }
  return out;
}

std::string check_totality(const std::vector<AttributedRequest>& reqs,
                           double eps) {
  for (const auto& r : reqs) {
    const double sum = r.phases.total();
    const double e2e = r.e2e_s();
    if (std::abs(sum - e2e) > eps || !std::isfinite(sum)) {
      std::ostringstream os;
      os << "attribution leak: request " << r.id << " phase sum " << sum
         << " != e2e " << e2e << " (|diff| " << std::abs(sum - e2e)
         << " > eps " << eps << "; breakdown ";
      r.phases.to_json(os);
      os << ")";
      return os.str();
    }
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      // Tiny negative residues can only come from a bookkeeping bug, not
      // from float reordering: every charge is a nonnegative duration.
      if (r.phases.s[i] < -eps) {
        std::ostringstream os;
        os << "attribution leak: request " << r.id << " negative phase "
           << phase_name(static_cast<Phase>(i)) << " = " << r.phases.s[i];
        return os.str();
      }
    }
  }
  return "";
}

std::vector<PhaseSummary> summarize_phases(
    const std::vector<AttributedRequest>& reqs) {
  std::vector<PhaseSummary> out;
  double grand_total = 0;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const auto p = static_cast<Phase>(i);
    std::vector<double> samples;
    double total = 0;
    for (const auto& r : reqs) {
      const double v = r.phases.s[i];
      if (v <= 0.0) continue;
      samples.push_back(v);
      total += v;
    }
    if (samples.empty()) continue;
    std::sort(samples.begin(), samples.end());
    PhaseSummary ps;
    ps.phase = p;
    ps.count = samples.size();
    ps.total_s = total;
    ps.p50_s = quantile_sorted(samples, 0.50);
    ps.p95_s = quantile_sorted(samples, 0.95);
    ps.p99_s = quantile_sorted(samples, 0.99);
    grand_total += total;
    out.push_back(ps);
  }
  for (auto& ps : out) {
    ps.share = grand_total > 0 ? ps.total_s / grand_total : 0.0;
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.total_s > b.total_s;
  });
  return out;
}

}  // namespace dsinfer::obs
