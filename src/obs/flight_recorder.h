// Tail-sampled flight recorder (ISSUE 8 tentpole).
//
// A bounded ring buffer of finished requests that keeps the full span chain
// only for the requests worth debugging: the ones that violated their SLO,
// or whose end-to-end latency landed at or above a rolling p99 of recent
// traffic. Everything else is retroactively dropped at the keep/drop
// decision point (the request's terminal event), so steady-state healthy
// traffic costs nothing but a latency sample.
//
// Gate discipline matches PR 3's TraceRecorder: recording is off by default
// behind one relaxed atomic flag, and when disabled the instrumented paths
// perform zero allocation — callers must gate span-chain construction on
// flight_enabled() (mirroring trace_enabled()), and observe() itself is a
// single branch.
//
// The dump format is Chrome trace-event JSON (pid kFlightPid, one track per
// retained request) so a kept tail request opens directly in
// chrome://tracing / Perfetto next to the PR 3 traces; trace_schema_check
// validates it structurally.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "obs/attribution.h"

namespace dsinfer::obs {

namespace detail {
extern std::atomic<bool> g_flight_enabled;
}  // namespace detail

inline bool flight_enabled() {
  return detail::g_flight_enabled.load(std::memory_order_relaxed);
}

// Chrome trace "process" for flight-recorder dumps (kWallPid/kServerPid/
// kSimPid are taken by the PR 3 clock domains).
inline constexpr std::int32_t kFlightPid = 4;

// One contiguous attributed interval of a request's life.
struct FlightSpan {
  Phase phase = Phase::kCount;
  double start_s = 0;
  double dur_s = 0;
};

// A finished request with its full span chain.
struct FlightRecord {
  std::int64_t id = 0;
  std::int64_t slo = 0;      // SLO class index
  std::int64_t replica = -1; // serving replica, -1 if never dispatched
  bool violated = false;     // missed deadline / shed / failed
  bool served = false;
  double arrival_s = 0;
  double finish_s = 0;
  PhaseBreakdown phases;
  std::vector<FlightSpan> spans;  // timeline order

  double e2e_s() const { return finish_s - arrival_s; }
};

class FlightRecorder {
 public:
  static FlightRecorder& instance();

  void set_enabled(bool on);
  // `capacity` bounds retained records (oldest evicted first); `window`
  // bounds the rolling-latency ring the p99 threshold is computed over.
  // Resets retained state. Values are clamped to >= 1.
  void configure(std::size_t capacity, std::size_t window);
  void clear();

  // Keep/drop decision for one finished request. Kept iff violated, or the
  // rolling window has warmed up (>= 32 samples) and e2e >= its p99. The
  // record is moved in only when kept; dropped span chains free here —
  // that is the "retroactive drop". Single branch when disabled.
  void observe(FlightRecord rec);

  // Rolling p99 of the latency window (0 until warmed up).
  double rolling_p99() const;

  std::size_t kept() const;
  std::int64_t seen() const;
  std::int64_t seen_violating() const;
  std::int64_t kept_violating() const;  // counts evicted keeps too

  std::vector<FlightRecord> snapshot() const;

  // {"traceEvents":[...]}: per retained request one kFlightPid track named
  // "req <id>", 'X' events per span (phase name, args carry seconds), and
  // an 'i' terminal marker. Validates against validate_chrome_trace.
  void export_chrome_json(std::ostream& os) const;
  bool export_file(const std::string& path) const;

 private:
  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  double rolling_p99_locked() const;

  mutable std::mutex mu_;
  std::size_t capacity_ = 256;
  std::size_t window_ = 512;
  std::vector<FlightRecord> ring_;  // insertion order; front = oldest
  std::vector<double> latencies_;   // rolling window ring
  std::size_t lat_next_ = 0;
  std::int64_t seen_ = 0;
  std::int64_t seen_violating_ = 0;
  std::int64_t kept_violating_ = 0;
};

// Lays a request's phase breakdown out as a deterministic span chain over
// [arrival_s, finish_s]: router-side phases in queue order, then the
// replica-side phases, then the terminal shed. Shared by the fleet router
// and the continuous batcher so dumps look identical across layers.
std::vector<FlightSpan> spans_from_breakdown(const PhaseBreakdown& phases,
                                             double arrival_s);

}  // namespace dsinfer::obs
