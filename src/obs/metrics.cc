#include "obs/metrics.h"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace dsinfer::obs {

namespace detail {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace detail

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

std::vector<double> default_latency_bounds() {
  // 100 us .. 10 s in a 1/2.5/5 ladder — sized for request latencies,
  // queue delays, and fetch backoffs.
  return {1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2,
          5e-2, 1e-1,   0.25, 0.5,  1.0,    2.5,  5.0,  10.0};
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = default_latency_bounds();
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i] > bounds_[i - 1])) {
      throw std::invalid_argument(
          "Histogram: bounds must be strictly increasing");
    }
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::record(double x) {
  if (!metrics_enabled()) return;
  const std::size_t bucket = static_cast<std::size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), x) - bounds_.begin());
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_[bucket];
  if (acc_.count() == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  acc_.add(x);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  std::lock_guard<std::mutex> lock(mu_);
  s.count = acc_.count();
  s.mean = acc_.mean();
  s.variance = acc_.variance();
  s.min = min_;
  s.max = max_;
  s.bounds = bounds_;
  s.counts = counts_;
  return s;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(counts_.begin(), counts_.end(), 0);
  acc_ = Welford{};
  min_ = max_ = 0.0;
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double next = cum + static_cast<double>(counts[i]);
    if (next >= target && counts[i] > 0) {
      // Interpolate inside bucket i; bucket edges clamped to observed range.
      const double lo = i == 0 ? min : std::max(min, bounds[i - 1]);
      const double hi = i >= bounds.size() ? max : std::min(max, bounds[i]);
      const double frac =
          counts[i] > 0
              ? (target - cum) / static_cast<double>(counts[i])
              : 0.0;
      return std::clamp(lo + frac * (hi - lo), min, max);
    }
    cum = next;
  }
  return max;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

void MetricsRegistry::set_enabled(bool on) {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

void MetricsRegistry::claim_name(const std::string& name, Kind kind) {
  const auto [it, inserted] = kinds_.emplace(name, kind);
  if (!inserted && it->second != kind) {
    auto kind_name = [](Kind k) {
      switch (k) {
        case Kind::kCounter: return "counter";
        case Kind::kGauge: return "gauge";
        case Kind::kHistogram: return "histogram";
      }
      return "?";
    };
    throw std::logic_error("MetricsRegistry: metric name '" + name +
                           "' already registered as a " +
                           kind_name(it->second) + ", requested as a " +
                           kind_name(kind));
  }
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  claim_name(name, Kind::kCounter);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  claim_name(name, Kind::kGauge);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  claim_name(name, Kind::kHistogram);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot s;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) s.counters.push_back({name, c->value()});
  for (const auto& [name, g] : gauges_) s.gauges.push_back({name, g->value()});
  for (const auto& [name, h] : histograms_) {
    s.histograms.push_back(h->snapshot());
    s.histograms.back().name = name;
  }
  return s;
}

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  // Control characters must become \uXXXX escapes, not raw bytes — a metric
  // name with an embedded newline/tab previously produced invalid JSON
  // (ISSUE 8 satellite).
  for (const char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          static const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(ch >> 4) & 0xF] << hex[ch & 0xF];
        } else {
          os << ch;
        }
    }
  }
}

}  // namespace

void MetricsSnapshot::to_json(std::ostream& os) const {
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    os << (first ? "\n" : ",\n") << "    \"";
    json_escape(os, name);
    os << "\": " << v;
    first = false;
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    os << (first ? "\n" : ",\n") << "    \"";
    json_escape(os, name);
    os << "\": " << v;
    first = false;
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& h : histograms) {
    os << (first ? "\n" : ",\n") << "    \"";
    json_escape(os, h.name);
    os << "\": {\"count\": " << h.count << ", \"mean\": " << h.mean
       << ", \"variance\": " << h.variance << ", \"min\": " << h.min
       << ", \"max\": " << h.max << ", \"p50\": " << h.quantile(0.5)
       << ", \"p95\": " << h.quantile(0.95) << ", \"buckets\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i != 0) os << ", ";
      os << "{\"le\": ";
      if (i < h.bounds.size()) {
        os << h.bounds[i];
      } else {
        os << "\"inf\"";
      }
      os << ", \"count\": " << h.counts[i] << "}";
    }
    os << "]}";
    first = false;
  }
  os << "\n  }\n}\n";
}

void MetricsRegistry::export_json(std::ostream& os) const {
  snapshot().to_json(os);
}

bool MetricsRegistry::export_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  export_json(f);
  f.flush();
  return static_cast<bool>(f);
}

}  // namespace dsinfer::obs
