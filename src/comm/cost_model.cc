#include "comm/cost_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dsinfer::comm {

namespace {
constexpr double kUs = 1e-6;
constexpr double kGb = 1e9;

void check_n(std::int64_t n) {
  if (n < 1) throw std::invalid_argument("collective: n must be >= 1");
}
}  // namespace

double p2p_time_s(double bytes, const hw::LinkSpec& link) {
  return link.latency_us * kUs + bytes / (link.bw_gbps * kGb);
}

double allreduce_time_s(double bytes, std::int64_t n,
                        const hw::LinkSpec& link) {
  check_n(n);
  if (n == 1) return 0.0;
  const double steps = 2.0 * static_cast<double>(n - 1);
  return steps * link.latency_us * kUs +
         steps * (bytes / static_cast<double>(n)) / (link.bw_gbps * kGb);
}

double allgather_time_s(double bytes_per_rank, std::int64_t n,
                        const hw::LinkSpec& link) {
  check_n(n);
  if (n == 1) return 0.0;
  const double steps = static_cast<double>(n - 1);
  return steps * link.latency_us * kUs +
         steps * bytes_per_rank / (link.bw_gbps * kGb);
}

double reduce_scatter_time_s(double bytes_per_rank, std::int64_t n,
                             const hw::LinkSpec& link) {
  return allgather_time_s(bytes_per_rank, n, link);
}

double alltoall_time_s(double bytes_per_rank, std::int64_t n,
                       const hw::LinkSpec& link) {
  check_n(n);
  if (n == 1) return 0.0;
  const double steps = static_cast<double>(n - 1);
  // Pairwise exchange: each step ships one of the n chunks.
  return steps * link.latency_us * kUs +
         steps * (bytes_per_rank / static_cast<double>(n)) /
             (link.bw_gbps * kGb);
}

double broadcast_time_s(double bytes, std::int64_t n,
                        const hw::LinkSpec& link) {
  check_n(n);
  if (n == 1) return 0.0;
  const double hops = std::ceil(std::log2(static_cast<double>(n)));
  return hops * (link.latency_us * kUs + bytes / (link.bw_gbps * kGb));
}

double hierarchical_allreduce_time_s(double bytes, std::int64_t gpus_per_node,
                                     std::int64_t nodes,
                                     const hw::LinkSpec& intra,
                                     const hw::LinkSpec& inter) {
  check_n(gpus_per_node);
  check_n(nodes);
  if (nodes == 1) return allreduce_time_s(bytes, gpus_per_node, intra);
  const double shard = bytes / static_cast<double>(gpus_per_node);
  return reduce_scatter_time_s(shard, gpus_per_node, intra) +
         allreduce_time_s(shard, nodes, inter) +
         allgather_time_s(shard, gpus_per_node, intra);
}

double hierarchical_alltoall_time_s(double bytes_per_rank,
                                    std::int64_t gpus_per_node,
                                    std::int64_t nodes,
                                    const hw::LinkSpec& intra,
                                    const hw::LinkSpec& inter) {
  check_n(gpus_per_node);
  check_n(nodes);
  if (nodes == 1) return alltoall_time_s(bytes_per_rank, gpus_per_node, intra);
  const double intra_share =
      bytes_per_rank / static_cast<double>(nodes);  // stays within the node
  const double inter_share = bytes_per_rank - intra_share;
  return alltoall_time_s(intra_share, gpus_per_node, intra) +
         alltoall_time_s(inter_share, nodes, inter);
}

double pcc_alltoall_time_s(double bytes_per_rank, std::int64_t p,
                           std::int64_t L, const hw::LinkSpec& link,
                           bool gather_after) {
  check_n(p);
  check_n(L);
  if (p % L != 0) {
    throw std::invalid_argument("pcc_alltoall: L must divide p");
  }
  const std::int64_t group = p / L;  // ranks sharing a tensor-slicing rank
  double t = alltoall_time_s(bytes_per_rank, group, link);
  if (gather_after && L > 1) {
    t += allgather_time_s(bytes_per_rank, L, link);
  }
  return t;
}

}  // namespace dsinfer::comm
