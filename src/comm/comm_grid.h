// Process-grid factorization of a world communicator (paper Fig. 4):
// rank = ep_rank * tp + tp_rank. Tensor-parallel subgroups hold the `tp`
// ranks that share an expert shard (they all-reduce partial activations);
// expert-parallel subgroups hold the `ep` ranks that share a tensor-slicing
// rank (they exchange tokens through the PCC all-to-all, Sec. V.B — the
// whole point being that the a2a never needs to leave this subgroup because
// activations are replicated across tensor ranks).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "comm/collectives.h"

namespace dsinfer::comm {

class CommGrid {
 public:
  // world = tp * ep ranks.
  CommGrid(std::int64_t tp, std::int64_t ep);

  std::int64_t tp() const { return tp_; }
  std::int64_t ep() const { return ep_; }
  std::int64_t world_size() const { return tp_ * ep_; }

  std::int64_t tp_rank(std::int64_t rank) const { return rank % tp_; }
  std::int64_t ep_rank(std::int64_t rank) const { return rank / tp_; }
  std::int64_t rank_of(std::int64_t tp_rank, std::int64_t ep_rank) const {
    return ep_rank * tp_ + tp_rank;
  }

  Communicator& world() { return *world_; }
  // The tp-sized subgroup containing `rank` (ranks with equal ep_rank).
  Communicator& tp_group(std::int64_t rank);
  // The ep-sized subgroup containing `rank` (ranks with equal tp_rank) —
  // the PCC all-to-all group.
  Communicator& ep_group(std::int64_t rank);

 private:
  std::int64_t tp_;
  std::int64_t ep_;
  std::unique_ptr<Communicator> world_;
  std::vector<std::unique_ptr<Communicator>> tp_groups_;  // one per ep_rank
  std::vector<std::unique_ptr<Communicator>> ep_groups_;  // one per tp_rank
};

}  // namespace dsinfer::comm
