#include "comm/collectives.h"

#include <cstring>
#include <stdexcept>

namespace dsinfer::comm {

Communicator::Communicator(std::int64_t n)
    : n_(n), src_(static_cast<std::size_t>(n)), dst_(static_cast<std::size_t>(n)),
      gate_(static_cast<std::ptrdiff_t>(n)) {
  if (n < 1) throw std::invalid_argument("Communicator: n must be >= 1");
}

void Communicator::sync() { gate_.arrive_and_wait(); }

void Communicator::all_reduce_sum(std::int64_t rank, std::span<float> data) {
  if (n_ == 1) return;
  src_[static_cast<std::size_t>(rank)] = data;
  sync();
  // Reduce into a private temp while every rank's published span is stable.
  std::vector<float> tmp(data.size(), 0.0f);
  for (std::int64_t r = 0; r < n_; ++r) {
    const auto peer = src_[static_cast<std::size_t>(r)];
    if (peer.size() != data.size()) {
      throw std::invalid_argument("all_reduce_sum: size mismatch across ranks");
    }
    for (std::size_t i = 0; i < tmp.size(); ++i) tmp[i] += peer[i];
  }
  sync();  // all reads done; safe to overwrite
  std::memcpy(data.data(), tmp.data(), tmp.size() * sizeof(float));
  bytes_.fetch_add(data.size() * sizeof(float) * 2, std::memory_order_relaxed);
  sync();
}

void Communicator::all_gather(std::int64_t rank, std::span<const float> in,
                              std::span<float> out) {
  if (out.size() < in.size() * static_cast<std::size_t>(n_)) {
    throw std::invalid_argument("all_gather: out too small");
  }
  src_[static_cast<std::size_t>(rank)] = in;
  sync();
  for (std::int64_t r = 0; r < n_; ++r) {
    const auto peer = src_[static_cast<std::size_t>(r)];
    if (peer.size() != in.size()) {
      throw std::invalid_argument("all_gather: size mismatch across ranks");
    }
    std::memcpy(out.data() + static_cast<std::size_t>(r) * in.size(),
                peer.data(), in.size() * sizeof(float));
  }
  bytes_.fetch_add(in.size() * sizeof(float) * static_cast<std::size_t>(n_ - 1),
                   std::memory_order_relaxed);
  sync();
}

void Communicator::all_to_all(std::int64_t rank, std::span<const float> in,
                              std::span<float> out) {
  if (in.size() % static_cast<std::size_t>(n_) != 0 || out.size() < in.size()) {
    throw std::invalid_argument("all_to_all: in must be n equal chunks");
  }
  const std::size_t chunk = in.size() / static_cast<std::size_t>(n_);
  src_[static_cast<std::size_t>(rank)] = in;
  sync();
  for (std::int64_t r = 0; r < n_; ++r) {
    const auto peer = src_[static_cast<std::size_t>(r)];
    if (peer.size() != in.size()) {
      throw std::invalid_argument("all_to_all: size mismatch across ranks");
    }
    std::memcpy(out.data() + static_cast<std::size_t>(r) * chunk,
                peer.data() + static_cast<std::size_t>(rank) * chunk,
                chunk * sizeof(float));
  }
  bytes_.fetch_add(chunk * sizeof(float) * static_cast<std::size_t>(n_ - 1),
                   std::memory_order_relaxed);
  sync();
}

void Communicator::broadcast(std::int64_t rank, std::int64_t root,
                             std::span<float> data) {
  if (n_ == 1) return;
  if (rank == root) src_[static_cast<std::size_t>(root)] = data;
  sync();
  if (rank != root) {
    const auto rootspan = src_[static_cast<std::size_t>(root)];
    if (rootspan.size() != data.size()) {
      throw std::invalid_argument("broadcast: size mismatch");
    }
    std::memcpy(data.data(), rootspan.data(), data.size() * sizeof(float));
    bytes_.fetch_add(data.size() * sizeof(float), std::memory_order_relaxed);
  }
  sync();
}

void Communicator::reduce_scatter_sum(std::int64_t rank,
                                      std::span<const float> in,
                                      std::span<float> out) {
  if (in.size() % static_cast<std::size_t>(n_) != 0) {
    throw std::invalid_argument("reduce_scatter_sum: in must be n equal chunks");
  }
  const std::size_t chunk = in.size() / static_cast<std::size_t>(n_);
  if (out.size() < chunk) {
    throw std::invalid_argument("reduce_scatter_sum: out too small");
  }
  src_[static_cast<std::size_t>(rank)] = in;
  sync();
  std::vector<float> tmp(chunk, 0.0f);
  for (std::int64_t r = 0; r < n_; ++r) {
    const auto peer = src_[static_cast<std::size_t>(r)];
    if (peer.size() != in.size()) {
      throw std::invalid_argument("reduce_scatter_sum: size mismatch");
    }
    const float* p = peer.data() + static_cast<std::size_t>(rank) * chunk;
    for (std::size_t i = 0; i < chunk; ++i) tmp[i] += p[i];
  }
  sync();
  std::memcpy(out.data(), tmp.data(), chunk * sizeof(float));
  bytes_.fetch_add(chunk * sizeof(float) * static_cast<std::size_t>(n_ - 1),
                   std::memory_order_relaxed);
  sync();
}

void Communicator::reduce_sum(std::int64_t rank, std::int64_t root,
                              std::span<float> data) {
  if (n_ == 1) return;
  src_[static_cast<std::size_t>(rank)] = data;
  sync();
  std::vector<float> tmp;
  if (rank == root) {
    tmp.assign(data.size(), 0.0f);
    for (std::int64_t r = 0; r < n_; ++r) {
      const auto peer = src_[static_cast<std::size_t>(r)];
      if (peer.size() != data.size()) {
        throw std::invalid_argument("reduce_sum: size mismatch across ranks");
      }
      for (std::size_t i = 0; i < tmp.size(); ++i) tmp[i] += peer[i];
    }
  }
  sync();
  if (rank == root) {
    std::memcpy(data.data(), tmp.data(), tmp.size() * sizeof(float));
    bytes_.fetch_add(data.size() * sizeof(float) *
                         static_cast<std::size_t>(n_ - 1),
                     std::memory_order_relaxed);
  }
  sync();
}

void Communicator::gather(std::int64_t rank, std::int64_t root,
                          std::span<const float> in, std::span<float> out) {
  if (rank == root && out.size() < in.size() * static_cast<std::size_t>(n_)) {
    throw std::invalid_argument("gather: root out too small");
  }
  src_[static_cast<std::size_t>(rank)] = in;
  sync();
  if (rank == root) {
    for (std::int64_t r = 0; r < n_; ++r) {
      const auto peer = src_[static_cast<std::size_t>(r)];
      if (peer.size() != in.size()) {
        throw std::invalid_argument("gather: size mismatch across ranks");
      }
      std::memcpy(out.data() + static_cast<std::size_t>(r) * in.size(),
                  peer.data(), in.size() * sizeof(float));
    }
    bytes_.fetch_add(in.size() * sizeof(float) *
                         static_cast<std::size_t>(n_ - 1),
                     std::memory_order_relaxed);
  }
  sync();
}

void Communicator::scatter(std::int64_t rank, std::int64_t root,
                           std::span<const float> in, std::span<float> out) {
  if (rank == root) {
    if (in.size() % static_cast<std::size_t>(n_) != 0) {
      throw std::invalid_argument("scatter: in must be n equal chunks");
    }
    src_[static_cast<std::size_t>(root)] = in;
  }
  sync();
  const auto rootspan = src_[static_cast<std::size_t>(root)];
  const std::size_t chunk = rootspan.size() / static_cast<std::size_t>(n_);
  if (out.size() < chunk) {
    throw std::invalid_argument("scatter: out too small");
  }
  std::memcpy(out.data(),
              rootspan.data() + static_cast<std::size_t>(rank) * chunk,
              chunk * sizeof(float));
  if (rank != root) {
    bytes_.fetch_add(chunk * sizeof(float), std::memory_order_relaxed);
  }
  sync();
}

void Communicator::barrier(std::int64_t /*rank*/) { sync(); }

}  // namespace dsinfer::comm
