#include "comm/collectives.h"

#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "obs/attribution.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/stats.h"

namespace dsinfer::comm {

namespace {

// ISSUE 8: each collective's wall time feeds the tail-latency attribution
// ledger as kTpAllreduce (serving-path TP communication, barrier skew
// included). Charged in the destructor so faulted attempts are accounted
// too — the batcher's per-attempt SubPhaseScope re-arm discards charges from
// attempts that did not win. A disabled gate costs one relaxed load.
class AttrCommScope {
 public:
  AttrCommScope() : armed_(obs::attribution_enabled()) {}
  ~AttrCommScope() {
    if (armed_) obs::attr_charge(obs::Phase::kTpAllreduce, sw_.elapsed_s());
  }

 private:
  bool armed_;
  Stopwatch sw_;
};

// Payload-byte accounting shared by every collective: the communicator's own
// ledger (tests assert on it) plus the metrics registry for profiling runs.
void account_bytes(std::atomic<std::size_t>& ledger, std::size_t bytes) {
  ledger.fetch_add(bytes, std::memory_order_relaxed);
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("comm.bytes");
  c.add(static_cast<std::int64_t>(bytes));
}

void trace_comm_fault(const char* what, std::int64_t rank) {
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("comm.faults");
  c.add(1);
  if (obs::trace_enabled()) {
    obs::TraceRecorder::instance().instant(
        "chaos", std::string(what) + " rank " + std::to_string(rank));
  }
}

}  // namespace

Communicator::Communicator(std::int64_t n, CommOptions opts)
    : n_(n), opts_(std::move(opts)), src_(static_cast<std::size_t>(n)),
      dst_(static_cast<std::size_t>(n)) {
  if (n < 1) throw std::invalid_argument("Communicator: n must be >= 1");
  if (opts_.timeout_s < 0) {
    throw std::invalid_argument("Communicator: negative timeout");
  }
}

bool Communicator::failed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failed_;
}

void Communicator::poison() {
  std::lock_guard<std::mutex> lock(mu_);
  failed_ = true;
  cv_.notify_all();
}

void Communicator::inject(std::int64_t rank) {
  if (!opts_.injector) return;
  const std::string site = opts_.site_prefix + std::to_string(rank);
  if (opts_.injector->should_fail(site)) {
    poison();  // a dead rank takes the whole group down, like NCCL
    trace_comm_fault("comm injected failure", rank);
    throw CommFault(CommFaultKind::kInjectedFailure, rank,
                    "comm: injected failure on rank " + std::to_string(rank));
  }
  const double d = opts_.injector->delay_s(site);
  if (d <= 0) return;
  if (opts_.timeout_s > 0 && d >= opts_.timeout_s) {
    // The straggler cannot make the barrier; it raises a typed fault while
    // its peers independently trip the timeout detector. The communicator
    // is NOT poisoned here on purpose — the peers must detect the straggler
    // themselves, which is exactly what the timeout path exercises.
    trace_comm_fault("comm injected straggler", rank);
    throw CommFault(CommFaultKind::kInjectedFailure, rank,
                    "comm: injected straggler delay " + std::to_string(d) +
                        "s exceeds timeout on rank " + std::to_string(rank));
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(d));
}

void Communicator::sync(std::int64_t rank) {
  DSI_TRACE_SCOPE("comm", "sync");
  inject(rank);
  std::unique_lock<std::mutex> lock(mu_);
  if (failed_) {
    throw CommFault(CommFaultKind::kPeerFault, rank,
                    "comm: communicator already failed");
  }
  const std::uint64_t gen = generation_;
  if (++arrived_ == n_) {
    arrived_ = 0;
    ++generation_;
    cv_.notify_all();
    return;
  }
  const auto released = [&] { return generation_ != gen || failed_; };
  if (opts_.timeout_s <= 0) {
    cv_.wait(lock, released);
  } else if (!cv_.wait_for(lock, std::chrono::duration<double>(opts_.timeout_s),
                           released)) {
    --arrived_;
    failed_ = true;  // straggler detected: poison so peers fail fast
    cv_.notify_all();
    trace_comm_fault("comm straggler timeout", rank);
    throw CommFault(CommFaultKind::kStragglerTimeout, rank,
                    "comm: rank " + std::to_string(rank) +
                        " timed out waiting for peers (straggler?)");
  }
  if (generation_ == gen) {  // woken by poison, not by barrier release
    --arrived_;
    trace_comm_fault("comm peer fault", rank);
    throw CommFault(CommFaultKind::kPeerFault, rank,
                    "comm: peer rank faulted during synchronization");
  }
}


void Communicator::all_reduce_sum(std::int64_t rank, std::span<float> data) {
  DSI_TRACE_SCOPE("comm", "all_reduce_sum");
  AttrCommScope attr_scope;
  if (n_ == 1) return;
  src_[static_cast<std::size_t>(rank)] = data;
  sync(rank);
  // Reduce into a private temp while every rank's published span is stable.
  std::vector<float> tmp(data.size(), 0.0f);
  for (std::int64_t r = 0; r < n_; ++r) {
    const auto peer = src_[static_cast<std::size_t>(r)];
    if (peer.size() != data.size()) {
      throw std::invalid_argument("all_reduce_sum: size mismatch across ranks");
    }
    for (std::size_t i = 0; i < tmp.size(); ++i) tmp[i] += peer[i];
  }
  sync(rank);  // all reads done; safe to overwrite
  std::memcpy(data.data(), tmp.data(), tmp.size() * sizeof(float));
  account_bytes(bytes_, data.size() * sizeof(float) * 2);
  sync(rank);
}

void Communicator::all_gather(std::int64_t rank, std::span<const float> in,
                              std::span<float> out) {
  DSI_TRACE_SCOPE("comm", "all_gather");
  AttrCommScope attr_scope;
  if (out.size() < in.size() * static_cast<std::size_t>(n_)) {
    throw std::invalid_argument("all_gather: out too small");
  }
  src_[static_cast<std::size_t>(rank)] = in;
  sync(rank);
  for (std::int64_t r = 0; r < n_; ++r) {
    const auto peer = src_[static_cast<std::size_t>(r)];
    if (peer.size() != in.size()) {
      throw std::invalid_argument("all_gather: size mismatch across ranks");
    }
    std::memcpy(out.data() + static_cast<std::size_t>(r) * in.size(),
                peer.data(), in.size() * sizeof(float));
  }
  account_bytes(bytes_, in.size() * sizeof(float) * static_cast<std::size_t>(n_ - 1));
  sync(rank);
}

void Communicator::all_to_all(std::int64_t rank, std::span<const float> in,
                              std::span<float> out) {
  DSI_TRACE_SCOPE("comm", "all_to_all");
  AttrCommScope attr_scope;
  if (in.size() % static_cast<std::size_t>(n_) != 0 || out.size() < in.size()) {
    throw std::invalid_argument("all_to_all: in must be n equal chunks");
  }
  const std::size_t chunk = in.size() / static_cast<std::size_t>(n_);
  src_[static_cast<std::size_t>(rank)] = in;
  sync(rank);
  for (std::int64_t r = 0; r < n_; ++r) {
    const auto peer = src_[static_cast<std::size_t>(r)];
    if (peer.size() != in.size()) {
      throw std::invalid_argument("all_to_all: size mismatch across ranks");
    }
    std::memcpy(out.data() + static_cast<std::size_t>(r) * chunk,
                peer.data() + static_cast<std::size_t>(rank) * chunk,
                chunk * sizeof(float));
  }
  account_bytes(bytes_, chunk * sizeof(float) * static_cast<std::size_t>(n_ - 1));
  sync(rank);
}

void Communicator::broadcast(std::int64_t rank, std::int64_t root,
                             std::span<float> data) {
  DSI_TRACE_SCOPE("comm", "broadcast");
  AttrCommScope attr_scope;
  if (n_ == 1) return;
  if (rank == root) src_[static_cast<std::size_t>(root)] = data;
  sync(rank);
  if (rank != root) {
    const auto rootspan = src_[static_cast<std::size_t>(root)];
    if (rootspan.size() != data.size()) {
      throw std::invalid_argument("broadcast: size mismatch");
    }
    std::memcpy(data.data(), rootspan.data(), data.size() * sizeof(float));
    account_bytes(bytes_, data.size() * sizeof(float));
  }
  sync(rank);
}

void Communicator::reduce_scatter_sum(std::int64_t rank,
                                      std::span<const float> in,
                                      std::span<float> out) {
  DSI_TRACE_SCOPE("comm", "reduce_scatter_sum");
  AttrCommScope attr_scope;
  if (in.size() % static_cast<std::size_t>(n_) != 0) {
    throw std::invalid_argument("reduce_scatter_sum: in must be n equal chunks");
  }
  const std::size_t chunk = in.size() / static_cast<std::size_t>(n_);
  if (out.size() < chunk) {
    throw std::invalid_argument("reduce_scatter_sum: out too small");
  }
  src_[static_cast<std::size_t>(rank)] = in;
  sync(rank);
  std::vector<float> tmp(chunk, 0.0f);
  for (std::int64_t r = 0; r < n_; ++r) {
    const auto peer = src_[static_cast<std::size_t>(r)];
    if (peer.size() != in.size()) {
      throw std::invalid_argument("reduce_scatter_sum: size mismatch");
    }
    const float* p = peer.data() + static_cast<std::size_t>(rank) * chunk;
    for (std::size_t i = 0; i < chunk; ++i) tmp[i] += p[i];
  }
  sync(rank);
  std::memcpy(out.data(), tmp.data(), chunk * sizeof(float));
  account_bytes(bytes_, chunk * sizeof(float) * static_cast<std::size_t>(n_ - 1));
  sync(rank);
}

void Communicator::reduce_sum(std::int64_t rank, std::int64_t root,
                              std::span<float> data) {
  DSI_TRACE_SCOPE("comm", "reduce_sum");
  AttrCommScope attr_scope;
  if (n_ == 1) return;
  src_[static_cast<std::size_t>(rank)] = data;
  sync(rank);
  std::vector<float> tmp;
  if (rank == root) {
    tmp.assign(data.size(), 0.0f);
    for (std::int64_t r = 0; r < n_; ++r) {
      const auto peer = src_[static_cast<std::size_t>(r)];
      if (peer.size() != data.size()) {
        throw std::invalid_argument("reduce_sum: size mismatch across ranks");
      }
      for (std::size_t i = 0; i < tmp.size(); ++i) tmp[i] += peer[i];
    }
  }
  sync(rank);
  if (rank == root) {
    std::memcpy(data.data(), tmp.data(), tmp.size() * sizeof(float));
    account_bytes(bytes_, data.size() * sizeof(float) * static_cast<std::size_t>(n_ - 1));
  }
  sync(rank);
}

void Communicator::gather(std::int64_t rank, std::int64_t root,
                          std::span<const float> in, std::span<float> out) {
  DSI_TRACE_SCOPE("comm", "gather");
  AttrCommScope attr_scope;
  if (rank == root && out.size() < in.size() * static_cast<std::size_t>(n_)) {
    throw std::invalid_argument("gather: root out too small");
  }
  src_[static_cast<std::size_t>(rank)] = in;
  sync(rank);
  if (rank == root) {
    for (std::int64_t r = 0; r < n_; ++r) {
      const auto peer = src_[static_cast<std::size_t>(r)];
      if (peer.size() != in.size()) {
        throw std::invalid_argument("gather: size mismatch across ranks");
      }
      std::memcpy(out.data() + static_cast<std::size_t>(r) * in.size(),
                  peer.data(), in.size() * sizeof(float));
    }
    account_bytes(bytes_, in.size() * sizeof(float) * static_cast<std::size_t>(n_ - 1));
  }
  sync(rank);
}

void Communicator::scatter(std::int64_t rank, std::int64_t root,
                           std::span<const float> in, std::span<float> out) {
  DSI_TRACE_SCOPE("comm", "scatter");
  AttrCommScope attr_scope;
  if (rank == root) {
    if (in.size() % static_cast<std::size_t>(n_) != 0) {
      throw std::invalid_argument("scatter: in must be n equal chunks");
    }
    src_[static_cast<std::size_t>(root)] = in;
  }
  sync(rank);
  const auto rootspan = src_[static_cast<std::size_t>(root)];
  const std::size_t chunk = rootspan.size() / static_cast<std::size_t>(n_);
  if (out.size() < chunk) {
    throw std::invalid_argument("scatter: out too small");
  }
  std::memcpy(out.data(),
              rootspan.data() + static_cast<std::size_t>(rank) * chunk,
              chunk * sizeof(float));
  if (rank != root) {
    account_bytes(bytes_, chunk * sizeof(float));
  }
  sync(rank);
}

void Communicator::barrier(std::int64_t rank) { sync(rank); }

}  // namespace dsinfer::comm
