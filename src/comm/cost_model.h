// Alpha-beta analytic cost models for the collectives DeepSpeed-Inference
// issues (NCCL ring algorithms), plus the paper's PCC optimization
// (Sec. V.B): restricting the MoE all-to-all to the subgroup of ranks that
// share a tensor-slicing rank, turning O(p) latency into O(p/L) + O(L).
#pragma once

#include <cstdint>

#include "hw/topology.h"

namespace dsinfer::comm {

// Point-to-point: alpha + bytes/beta.
double p2p_time_s(double bytes, const hw::LinkSpec& link);

// Ring all-reduce over n ranks: 2(n-1) steps, each moving bytes/n.
double allreduce_time_s(double bytes, std::int64_t n, const hw::LinkSpec& link);

// Ring all-gather: each rank contributes `bytes_per_rank`; (n-1) steps.
double allgather_time_s(double bytes_per_rank, std::int64_t n,
                        const hw::LinkSpec& link);

// Reduce-scatter: mirror of all-gather.
double reduce_scatter_time_s(double bytes_per_rank, std::int64_t n,
                             const hw::LinkSpec& link);

// All-to-all: each rank holds `bytes_per_rank` split into n chunks and
// exchanges pairwise; latency grows linearly in n (the paper's complaint).
double alltoall_time_s(double bytes_per_rank, std::int64_t n,
                       const hw::LinkSpec& link);

// Broadcast (tree): ceil(log2 n) alpha terms, full payload per hop.
double broadcast_time_s(double bytes, std::int64_t n, const hw::LinkSpec& link);

// Hierarchical all-reduce used by tensor parallelism that spills across
// nodes: reduce-scatter + all-reduce across nodes + all-gather.
double hierarchical_allreduce_time_s(double bytes, std::int64_t gpus_per_node,
                                     std::int64_t nodes,
                                     const hw::LinkSpec& intra,
                                     const hw::LinkSpec& inter);

// Hierarchical all-to-all (NCCL-style): ranks exchange intra-node chunks
// over NVLink and aggregate cross-node traffic into one message per node
// pair, so the latency term scales with `nodes`, not total ranks.
double hierarchical_alltoall_time_s(double bytes_per_rank,
                                    std::int64_t gpus_per_node,
                                    std::int64_t nodes,
                                    const hw::LinkSpec& intra,
                                    const hw::LinkSpec& inter);

// Parallelism-coordinated all-to-all. `p` total ranks, `L` tensor-slicing
// degree. The exchange runs only among the p/L ranks sharing a tensor rank;
// when `gather_after` (expert -> tensor-parallel transition) an all-gather
// among the L tensor ranks replicates the result.
double pcc_alltoall_time_s(double bytes_per_rank, std::int64_t p,
                           std::int64_t L, const hw::LinkSpec& link,
                           bool gather_after);

}  // namespace dsinfer::comm
