// Functional in-process collectives for the virtual-device runtime.
//
// Each "device" is a thread; a Communicator of size n provides the NCCL
// surface the engine needs (all-reduce, all-gather, all-to-all, broadcast,
// reduce-scatter, barrier). Semantics match MPI/NCCL; transport is shared
// memory. Every rank must call each collective exactly once and in the same
// order — the same contract NCCL imposes.
#pragma once

#include <atomic>
#include <barrier>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace dsinfer::comm {

class Communicator {
 public:
  explicit Communicator(std::int64_t n);

  std::int64_t size() const { return n_; }

  // In-place sum across all ranks; every rank ends with the same values.
  void all_reduce_sum(std::int64_t rank, std::span<float> data);

  // out = concat(in_0, ..., in_{n-1}); all ins must have equal length and
  // out must hold n * in.size() floats.
  void all_gather(std::int64_t rank, std::span<const float> in,
                  std::span<float> out);

  // in is n equal chunks; out[j-th chunk] = rank j's chunk addressed to us.
  void all_to_all(std::int64_t rank, std::span<const float> in,
                  std::span<float> out);

  // Copies root's data into every rank's span (root's span is the source).
  void broadcast(std::int64_t rank, std::int64_t root, std::span<float> data);

  // out = sum over ranks of their in's `rank`-th chunk (in = n equal chunks).
  void reduce_scatter_sum(std::int64_t rank, std::span<const float> in,
                          std::span<float> out);

  // Sum across ranks delivered to `root` only; non-root data is unchanged.
  void reduce_sum(std::int64_t rank, std::int64_t root, std::span<float> data);

  // Root receives concat of every rank's `in` into `out` (size n * in).
  // Non-root `out` may be empty.
  void gather(std::int64_t rank, std::int64_t root, std::span<const float> in,
              std::span<float> out);

  // Root's `in` (n equal chunks) is distributed; rank r receives chunk r in
  // `out`. Non-root `in` may be empty.
  void scatter(std::int64_t rank, std::int64_t root, std::span<const float> in,
               std::span<float> out);

  void barrier(std::int64_t rank);

  // Total payload bytes moved by this communicator so far (sum over ranks),
  // for tests asserting communication volume.
  std::size_t bytes_communicated() const { return bytes_.load(); }

 private:
  void sync();

  std::int64_t n_;
  std::vector<std::span<const float>> src_;
  std::vector<std::span<float>> dst_;
  std::barrier<> gate_;
  std::atomic<std::size_t> bytes_{0};
};

}  // namespace dsinfer::comm
