// Functional in-process collectives for the virtual-device runtime.
//
// Each "device" is a thread; a Communicator of size n provides the NCCL
// surface the engine needs (all-reduce, all-gather, all-to-all, broadcast,
// reduce-scatter, barrier). Semantics match MPI/NCCL; transport is shared
// memory. Every rank must call each collective exactly once and in the same
// order — the same contract NCCL imposes.
//
// Resilience (ISSUE 1): the internal barrier is timed. A rank that waits
// longer than CommOptions::timeout_s for its peers raises a typed CommFault
// (straggler detection) instead of hanging, and a FaultInjector hook can
// impose per-rank virtual delays or outright rank failures to exercise that
// path deterministically. After any CommFault the communicator is poisoned:
// every subsequent or concurrent synchronization fails fast with kPeerFault.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/fault_injector.h"

namespace dsinfer::comm {

enum class CommFaultKind {
  kStragglerTimeout,  // peers failed to reach the barrier within timeout_s
  kInjectedFailure,   // this rank was killed / delayed past the timeout
  kPeerFault,         // another rank already faulted; failing fast
};

class CommFault : public std::runtime_error {
 public:
  CommFault(CommFaultKind kind, std::int64_t rank, const std::string& what)
      : std::runtime_error(what), kind_(kind), rank_(rank) {}

  CommFaultKind kind() const { return kind_; }
  std::int64_t rank() const { return rank_; }

 private:
  CommFaultKind kind_;
  std::int64_t rank_;
};

struct CommOptions {
  // Max real seconds a rank waits at a synchronization point before raising
  // CommFault{kStragglerTimeout}. 0 preserves the seed behavior: wait
  // forever (correct-by-contract callers, no detector).
  double timeout_s = 0.0;
  // Optional chaos hook. Each rank draws from site "<site_prefix><rank>"
  // once per synchronization point: delay_s() imposes a straggler delay
  // (a delay >= timeout_s means the rank cannot make the barrier and raises
  // kInjectedFailure while its peers time out), should_fail() kills the
  // rank outright and poisons the communicator.
  util::FaultInjector* injector = nullptr;
  std::string site_prefix = "comm.rank";
};

class Communicator {
 public:
  explicit Communicator(std::int64_t n, CommOptions opts = {});

  std::int64_t size() const { return n_; }
  const CommOptions& options() const { return opts_; }

  // In-place sum across all ranks; every rank ends with the same values.
  void all_reduce_sum(std::int64_t rank, std::span<float> data);

  // out = concat(in_0, ..., in_{n-1}); all ins must have equal length and
  // out must hold n * in.size() floats.
  void all_gather(std::int64_t rank, std::span<const float> in,
                  std::span<float> out);

  // in is n equal chunks; out[j-th chunk] = rank j's chunk addressed to us.
  void all_to_all(std::int64_t rank, std::span<const float> in,
                  std::span<float> out);

  // Copies root's data into every rank's span (root's span is the source).
  void broadcast(std::int64_t rank, std::int64_t root, std::span<float> data);

  // out = sum over ranks of their in's `rank`-th chunk (in = n equal chunks).
  void reduce_scatter_sum(std::int64_t rank, std::span<const float> in,
                          std::span<float> out);

  // Sum across ranks delivered to `root` only; non-root data is unchanged.
  void reduce_sum(std::int64_t rank, std::int64_t root, std::span<float> data);

  // Root receives concat of every rank's `in` into `out` (size n * in).
  // Non-root `out` may be empty.
  void gather(std::int64_t rank, std::int64_t root, std::span<const float> in,
              std::span<float> out);

  // Root's `in` (n equal chunks) is distributed; rank r receives chunk r in
  // `out`. Non-root `in` may be empty.
  void scatter(std::int64_t rank, std::int64_t root, std::span<const float> in,
               std::span<float> out);

  void barrier(std::int64_t rank);

  // Total payload bytes moved by this communicator so far (sum over ranks),
  // for tests asserting communication volume.
  std::size_t bytes_communicated() const { return bytes_.load(); }

  // True once any rank faulted; the communicator is unusable afterwards.
  bool failed() const;

 private:
  void sync(std::int64_t rank);
  void inject(std::int64_t rank);  // may sleep or throw CommFault
  void poison();                   // mark failed and wake all waiters

  std::int64_t n_;
  CommOptions opts_;
  std::vector<std::span<const float>> src_;
  std::vector<std::span<float>> dst_;
  std::atomic<std::size_t> bytes_{0};

  // Timed reusable barrier (replaces std::barrier, which cannot time out).
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::int64_t arrived_ = 0;
  std::uint64_t generation_ = 0;
  bool failed_ = false;
};

}  // namespace dsinfer::comm
