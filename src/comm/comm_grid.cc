#include "comm/comm_grid.h"

#include <stdexcept>

namespace dsinfer::comm {

CommGrid::CommGrid(std::int64_t tp, std::int64_t ep) : tp_(tp), ep_(ep) {
  if (tp < 1 || ep < 1) {
    throw std::invalid_argument("CommGrid: tp and ep must be >= 1");
  }
  world_ = std::make_unique<Communicator>(tp * ep);
  tp_groups_.reserve(static_cast<std::size_t>(ep));
  for (std::int64_t e = 0; e < ep; ++e) {
    tp_groups_.push_back(std::make_unique<Communicator>(tp));
  }
  ep_groups_.reserve(static_cast<std::size_t>(tp));
  for (std::int64_t t = 0; t < tp; ++t) {
    ep_groups_.push_back(std::make_unique<Communicator>(ep));
  }
}

Communicator& CommGrid::tp_group(std::int64_t rank) {
  return *tp_groups_.at(static_cast<std::size_t>(ep_rank(rank)));
}

Communicator& CommGrid::ep_group(std::int64_t rank) {
  return *ep_groups_.at(static_cast<std::size_t>(tp_rank(rank)));
}

}  // namespace dsinfer::comm
