#include "kernels/simd.h"

#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>

// The AVX2 path is compiled whenever the toolchain can target x86 AVX2 via
// per-function attributes, independent of the global -march flags; builds
// with DSINFER_SIMD_SCALAR_ONLY (or non-x86 targets) drop it entirely and
// every call resolves to the scalar fallback.
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__)) &&  \
    !defined(DSINFER_SIMD_SCALAR_ONLY)
#define DSINFER_SIMD_X86 1
#include <immintrin.h>
#endif

namespace dsinfer::kernels::simd {

namespace {

std::atomic<KernelIsa> g_override{KernelIsa::kAuto};

bool detect_avx2() {
#if defined(DSINFER_SIMD_X86)
#if defined(__AVX2__) && defined(__FMA__)
  // Compile-time baseline (e.g. -DDSINFER_NATIVE_ARCH=ON on an AVX2 host):
  // the whole binary already assumes the ISA, no cpuid needed.
  return true;
#else
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#endif
#else
  return false;
#endif
}

// ---- scalar fallback ---------------------------------------------------
// These loops are also the numerical definition: the AVX2 versions may
// reassociate sums (tests compare with tolerance) but must agree exactly for
// integer arithmetic.

float dot_scalar(const float* a, const float* b, std::int64_t n) {
  float acc = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void axpy_scalar(float alpha, const float* x, float* y, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scale_add_scalar(const float* x, float alpha, float beta, float* y,
                      std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) y[i] = alpha * x[i] + beta;
}

void add_bias_scalar(const float* x, const float* bias, float* y,
                     std::int64_t n) {
  if (bias == nullptr) {
    std::memcpy(y, x, static_cast<std::size_t>(n) * sizeof(float));
    return;
  }
  for (std::int64_t i = 0; i < n; ++i) y[i] = x[i] + bias[i];
}

void add_bias_residual_scalar(const float* x, const float* bias,
                              const float* residual, float* y,
                              std::int64_t n) {
  if (bias == nullptr) {
    for (std::int64_t i = 0; i < n; ++i) y[i] = x[i] + residual[i];
    return;
  }
  for (std::int64_t i = 0; i < n; ++i) y[i] = x[i] + residual[i] + bias[i];
}

void sum_sumsq_scalar(const float* x, std::int64_t n, double* sum,
                      double* sumsq) {
  double s = 0.0, sq = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    s += x[i];
    sq += static_cast<double>(x[i]) * x[i];
  }
  *sum += s;
  *sumsq += sq;
}

void norm_affine_scalar(const float* x, const float* gamma, const float* beta,
                        float* y, std::int64_t n, float mu, float inv_std) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float g = gamma ? gamma[i] : 1.0f;
    const float b = beta ? beta[i] : 0.0f;
    y[i] = (x[i] - mu) * inv_std * g + b;
  }
}

float reduce_max_scalar(const float* x, std::int64_t n) {
  float m = -std::numeric_limits<float>::infinity();
  for (std::int64_t i = 0; i < n; ++i) m = std::max(m, x[i]);
  return m;
}

float reduce_absmax_scalar(const float* x, std::int64_t n) {
  float m = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) m = std::max(m, std::fabs(x[i]));
  return m;
}

float exp_sum_inplace_scalar(float* x, std::int64_t n, float bias) {
  float sum = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) {
    const float e = std::exp(x[i] - bias);
    x[i] = e;
    sum += e;
  }
  return sum;
}

float gelu_one(float v) {
  constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
  return 0.5f * v * (1.0f + std::tanh(kC * (v + 0.044715f * v * v * v)));
}

void gelu_bias_scalar(const float* x, const float* bias, float* y,
                      std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    y[i] = gelu_one(x[i] + (bias ? bias[i] : 0.0f));
  }
}

void fma_tile8_scalar(const float* x, std::int64_t ldx, std::int64_t m,
                      const float* panel, std::int64_t n, float* acc) {
  for (std::int64_t r = 0; r < m; ++r) {
    const float* xr = x + r * ldx;
    float* ar = acc + r * 8;
    for (std::int64_t i = 0; i < n; ++i) {
      const float xv = xr[i];
      const float* wrow = panel + i * 8;
      for (std::int64_t j = 0; j < 8; ++j) ar[j] += xv * wrow[j];
    }
  }
}

std::int32_t dot_i8_scalar(const std::int8_t* a, const std::int8_t* b,
                           std::int64_t n) {
  std::int32_t acc = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    acc += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  }
  return acc;
}

void quantize_i8_scalar(const float* x, float inv_scale, std::int8_t* q,
                        std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float v = x[i] * inv_scale;
    q[i] = static_cast<std::int8_t>(
        std::lrintf(v < -127.0f ? -127.0f : (v > 127.0f ? 127.0f : v)));
  }
}

#if defined(DSINFER_SIMD_X86)

// ---- AVX2 + FMA path ---------------------------------------------------

#define DSINFER_AVX2 __attribute__((target("avx2,fma")))

DSINFER_AVX2 inline float hsum256(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 1));
  return _mm_cvtss_f32(lo);
}

DSINFER_AVX2 inline double hsum256d(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  __m128d hi = _mm256_extractf128_pd(v, 1);
  lo = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(lo, _mm_unpackhi_pd(lo, lo)));
}

DSINFER_AVX2 inline std::int32_t hsum256i(__m256i v) {
  __m128i lo = _mm256_castsi256_si128(v);
  __m128i hi = _mm256_extracti128_si256(v, 1);
  lo = _mm_add_epi32(lo, hi);
  lo = _mm_add_epi32(lo, _mm_srli_si128(lo, 8));
  lo = _mm_add_epi32(lo, _mm_srli_si128(lo, 4));
  return _mm_cvtsi128_si32(lo);
}

// Cephes-style polynomial exp: max relative error ~2 ULP over the clamped
// range, exact at 0. Shared by softmax, attention, and the tanh in gelu.
DSINFER_AVX2 inline __m256 exp256(__m256 x) {
  x = _mm256_min_ps(_mm256_max_ps(x, _mm256_set1_ps(-87.3365478515625f)),
                    _mm256_set1_ps(88.3762626647950f));
  __m256 fx = _mm256_fmadd_ps(x, _mm256_set1_ps(1.44269504088896341f),
                              _mm256_set1_ps(0.5f));
  fx = _mm256_floor_ps(fx);
  __m256 r = _mm256_fnmadd_ps(fx, _mm256_set1_ps(0.693359375f), x);
  r = _mm256_fnmadd_ps(fx, _mm256_set1_ps(-2.12194440e-4f), r);
  const __m256 r2 = _mm256_mul_ps(r, r);
  __m256 p = _mm256_set1_ps(1.9875691500e-4f);
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.3981999507e-3f));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(8.3334519073e-3f));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(4.1665795894e-2f));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.6666665459e-1f));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(5.0000001201e-1f));
  p = _mm256_fmadd_ps(p, r2, _mm256_add_ps(r, _mm256_set1_ps(1.0f)));
  __m256i n = _mm256_cvtps_epi32(fx);
  n = _mm256_slli_epi32(_mm256_add_epi32(n, _mm256_set1_epi32(127)), 23);
  return _mm256_mul_ps(p, _mm256_castsi256_ps(n));
}

DSINFER_AVX2 float dot_avx2(const float* a, const float* b, std::int64_t n) {
  __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
  __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
  std::int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    a0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), a0);
    a1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8),
                         a1);
    a2 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 16),
                         _mm256_loadu_ps(b + i + 16), a2);
    a3 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 24),
                         _mm256_loadu_ps(b + i + 24), a3);
  }
  for (; i + 8 <= n; i += 8) {
    a0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), a0);
  }
  float acc = hsum256(_mm256_add_ps(_mm256_add_ps(a0, a1),
                                    _mm256_add_ps(a2, a3)));
  for (; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

DSINFER_AVX2 void axpy_avx2(float alpha, const float* x, float* y,
                            std::int64_t n) {
  const __m256 av = _mm256_set1_ps(alpha);
  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm256_storeu_ps(
        y + i, _mm256_fmadd_ps(av, _mm256_loadu_ps(x + i),
                               _mm256_loadu_ps(y + i)));
    _mm256_storeu_ps(
        y + i + 8, _mm256_fmadd_ps(av, _mm256_loadu_ps(x + i + 8),
                                   _mm256_loadu_ps(y + i + 8)));
  }
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_fmadd_ps(av, _mm256_loadu_ps(x + i),
                               _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

DSINFER_AVX2 void scale_add_avx2(const float* x, float alpha, float beta,
                                 float* y, std::int64_t n) {
  const __m256 av = _mm256_set1_ps(alpha);
  const __m256 bv = _mm256_set1_ps(beta);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_fmadd_ps(av, _mm256_loadu_ps(x + i), bv));
  }
  for (; i < n; ++i) y[i] = alpha * x[i] + beta;
}

DSINFER_AVX2 void add_bias_avx2(const float* x, const float* bias, float* y,
                                std::int64_t n) {
  if (bias == nullptr) {
    std::memcpy(y, x, static_cast<std::size_t>(n) * sizeof(float));
    return;
  }
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_add_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(bias + i)));
  }
  for (; i < n; ++i) y[i] = x[i] + bias[i];
}

DSINFER_AVX2 void add_bias_residual_avx2(const float* x, const float* bias,
                                         const float* residual, float* y,
                                         std::int64_t n) {
  std::int64_t i = 0;
  if (bias == nullptr) {
    for (; i + 8 <= n; i += 8) {
      _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(x + i),
                                            _mm256_loadu_ps(residual + i)));
    }
    for (; i < n; ++i) y[i] = x[i] + residual[i];
    return;
  }
  for (; i + 8 <= n; i += 8) {
    const __m256 s = _mm256_add_ps(_mm256_loadu_ps(x + i),
                                   _mm256_loadu_ps(residual + i));
    _mm256_storeu_ps(y + i, _mm256_add_ps(s, _mm256_loadu_ps(bias + i)));
  }
  for (; i < n; ++i) y[i] = x[i] + residual[i] + bias[i];
}

DSINFER_AVX2 void sum_sumsq_avx2(const float* x, std::int64_t n, double* sum,
                                 double* sumsq) {
  __m256d s0 = _mm256_setzero_pd(), s1 = _mm256_setzero_pd();
  __m256d q0 = _mm256_setzero_pd(), q1 = _mm256_setzero_pd();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const __m256d lo = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
    const __m256d hi = _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
    s0 = _mm256_add_pd(s0, lo);
    s1 = _mm256_add_pd(s1, hi);
    q0 = _mm256_fmadd_pd(lo, lo, q0);
    q1 = _mm256_fmadd_pd(hi, hi, q1);
  }
  double s = hsum256d(_mm256_add_pd(s0, s1));
  double sq = hsum256d(_mm256_add_pd(q0, q1));
  for (; i < n; ++i) {
    s += x[i];
    sq += static_cast<double>(x[i]) * x[i];
  }
  *sum += s;
  *sumsq += sq;
}

DSINFER_AVX2 void norm_affine_avx2(const float* x, const float* gamma,
                                   const float* beta, float* y, std::int64_t n,
                                   float mu, float inv_std) {
  const __m256 muv = _mm256_set1_ps(mu);
  const __m256 iv = _mm256_set1_ps(inv_std);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 t = _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(x + i), muv), iv);
    if (gamma) t = _mm256_mul_ps(t, _mm256_loadu_ps(gamma + i));
    if (beta) t = _mm256_add_ps(t, _mm256_loadu_ps(beta + i));
    _mm256_storeu_ps(y + i, t);
  }
  for (; i < n; ++i) {
    const float g = gamma ? gamma[i] : 1.0f;
    const float b = beta ? beta[i] : 0.0f;
    y[i] = (x[i] - mu) * inv_std * g + b;
  }
}

DSINFER_AVX2 float reduce_max_avx2(const float* x, std::int64_t n) {
  float m = -std::numeric_limits<float>::infinity();
  __m256 mv = _mm256_set1_ps(m);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) mv = _mm256_max_ps(mv, _mm256_loadu_ps(x + i));
  __m128 lo = _mm_max_ps(_mm256_castps256_ps128(mv),
                         _mm256_extractf128_ps(mv, 1));
  lo = _mm_max_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_max_ss(lo, _mm_shuffle_ps(lo, lo, 1));
  m = _mm_cvtss_f32(lo);
  for (; i < n; ++i) m = std::max(m, x[i]);
  return m;
}

DSINFER_AVX2 float reduce_absmax_avx2(const float* x, std::int64_t n) {
  const __m256 absmask =
      _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  __m256 mv = _mm256_setzero_ps();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    mv = _mm256_max_ps(mv, _mm256_and_ps(absmask, _mm256_loadu_ps(x + i)));
  }
  __m128 lo = _mm_max_ps(_mm256_castps256_ps128(mv),
                         _mm256_extractf128_ps(mv, 1));
  lo = _mm_max_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_max_ss(lo, _mm_shuffle_ps(lo, lo, 1));
  float m = _mm_cvtss_f32(lo);
  for (; i < n; ++i) m = std::max(m, std::fabs(x[i]));
  return m;
}

DSINFER_AVX2 float exp_sum_inplace_avx2(float* x, std::int64_t n, float bias) {
  const __m256 bv = _mm256_set1_ps(bias);
  __m256 sv = _mm256_setzero_ps();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 e = exp256(_mm256_sub_ps(_mm256_loadu_ps(x + i), bv));
    _mm256_storeu_ps(x + i, e);
    sv = _mm256_add_ps(sv, e);
  }
  float sum = hsum256(sv);
  for (; i < n; ++i) {
    const float e = std::exp(x[i] - bias);
    x[i] = e;
    sum += e;
  }
  return sum;
}

DSINFER_AVX2 void gelu_bias_avx2(const float* x, const float* bias, float* y,
                                 std::int64_t n) {
  const __m256 kC = _mm256_set1_ps(0.7978845608028654f);
  const __m256 kA = _mm256_set1_ps(0.044715f);
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 neg2 = _mm256_set1_ps(-2.0f);
  const __m256 signmask = _mm256_castsi256_ps(_mm256_set1_epi32(0x80000000));
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 v = _mm256_loadu_ps(x + i);
    if (bias) v = _mm256_add_ps(v, _mm256_loadu_ps(bias + i));
    // z = kC * (v + kA * v^3); tanh(z) = sign(z) * (1 - e) / (1 + e) with
    // e = exp(-2|z|) in (0, 1], which never overflows.
    const __m256 v2 = _mm256_mul_ps(v, v);
    const __m256 z =
        _mm256_mul_ps(kC, _mm256_fmadd_ps(_mm256_mul_ps(kA, v2), v, v));
    const __m256 az = _mm256_andnot_ps(signmask, z);
    const __m256 e = exp256(_mm256_mul_ps(neg2, az));
    __m256 t = _mm256_div_ps(_mm256_sub_ps(one, e), _mm256_add_ps(one, e));
    t = _mm256_or_ps(t, _mm256_and_ps(signmask, z));
    _mm256_storeu_ps(y + i, _mm256_mul_ps(half,
                                          _mm256_mul_ps(v, _mm256_add_ps(one, t))));
  }
  for (; i < n; ++i) y[i] = gelu_one(x[i] + (bias ? bias[i] : 0.0f));
}

// m == 1 specialization: a single row cannot fill the FMA pipeline with one
// accumulator chain, so the input dimension is unrolled 4x into independent
// chains (the decode-path workhorse of linear_sbi).
DSINFER_AVX2 void fma_tile8_m1_avx2(const float* x, const float* panel,
                                    std::int64_t n, float* acc) {
  __m256 a0 = _mm256_loadu_ps(acc);
  __m256 a1 = _mm256_setzero_ps(), a2 = _mm256_setzero_ps(),
         a3 = _mm256_setzero_ps();
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a0 = _mm256_fmadd_ps(_mm256_broadcast_ss(x + i),
                         _mm256_loadu_ps(panel + (i + 0) * 8), a0);
    a1 = _mm256_fmadd_ps(_mm256_broadcast_ss(x + i + 1),
                         _mm256_loadu_ps(panel + (i + 1) * 8), a1);
    a2 = _mm256_fmadd_ps(_mm256_broadcast_ss(x + i + 2),
                         _mm256_loadu_ps(panel + (i + 2) * 8), a2);
    a3 = _mm256_fmadd_ps(_mm256_broadcast_ss(x + i + 3),
                         _mm256_loadu_ps(panel + (i + 3) * 8), a3);
  }
  for (; i < n; ++i) {
    a0 = _mm256_fmadd_ps(_mm256_broadcast_ss(x + i),
                         _mm256_loadu_ps(panel + i * 8), a0);
  }
  _mm256_storeu_ps(acc, _mm256_add_ps(_mm256_add_ps(a0, a1),
                                      _mm256_add_ps(a2, a3)));
}

template <int M>
DSINFER_AVX2 void fma_tile8_m_avx2(const float* x, std::int64_t ldx,
                                   const float* panel, std::int64_t n,
                                   float* acc) {
  __m256 a[M];
  for (int r = 0; r < M; ++r) a[r] = _mm256_loadu_ps(acc + r * 8);
  for (std::int64_t i = 0; i < n; ++i) {
    const __m256 wv = _mm256_loadu_ps(panel + i * 8);
    for (int r = 0; r < M; ++r) {
      a[r] = _mm256_fmadd_ps(_mm256_broadcast_ss(x + r * ldx + i), wv, a[r]);
    }
  }
  for (int r = 0; r < M; ++r) _mm256_storeu_ps(acc + r * 8, a[r]);
}

DSINFER_AVX2 void fma_tile8_avx2(const float* x, std::int64_t ldx,
                                 std::int64_t m, const float* panel,
                                 std::int64_t n, float* acc) {
  switch (m) {
    case 1:
      fma_tile8_m1_avx2(x, panel, n, acc);
      break;
    case 2:
      fma_tile8_m_avx2<2>(x, ldx, panel, n, acc);
      break;
    case 3:
      fma_tile8_m_avx2<3>(x, ldx, panel, n, acc);
      break;
    default:
      fma_tile8_m_avx2<4>(x, ldx, panel, n, acc);
      break;
  }
}

DSINFER_AVX2 std::int32_t dot_i8_avx2(const std::int8_t* a,
                                      const std::int8_t* b, std::int64_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i a16 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
    const __m256i b16 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a16, b16));
  }
  std::int32_t s = hsum256i(acc);
  for (; i < n; ++i) {
    s += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  }
  return s;
}

DSINFER_AVX2 void quantize_i8_avx2(const float* x, float inv_scale,
                                   std::int8_t* q, std::int64_t n) {
  const __m256 iv = _mm256_set1_ps(inv_scale);
  const __m256 lo = _mm256_set1_ps(-127.0f);
  const __m256 hi = _mm256_set1_ps(127.0f);
  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 v0 = _mm256_min_ps(
        hi, _mm256_max_ps(lo, _mm256_mul_ps(_mm256_loadu_ps(x + i), iv)));
    const __m256 v1 = _mm256_min_ps(
        hi, _mm256_max_ps(lo, _mm256_mul_ps(_mm256_loadu_ps(x + i + 8), iv)));
    __m256i p16 = _mm256_packs_epi32(_mm256_cvtps_epi32(v0),
                                     _mm256_cvtps_epi32(v1));
    p16 = _mm256_permute4x64_epi64(p16, _MM_SHUFFLE(3, 1, 2, 0));
    const __m128i p8 = _mm_packs_epi16(_mm256_castsi256_si128(p16),
                                       _mm256_extracti128_si256(p16, 1));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(q + i), p8);
  }
  for (; i < n; ++i) {
    const float v = x[i] * inv_scale;
    q[i] = static_cast<std::int8_t>(
        std::lrintf(v < -127.0f ? -127.0f : (v > 127.0f ? 127.0f : v)));
  }
}

#endif  // DSINFER_SIMD_X86

inline bool use_avx2() {
#if defined(DSINFER_SIMD_X86)
  return active_isa() == KernelIsa::kAvx2;
#else
  return false;
#endif
}

}  // namespace

bool cpu_has_avx2() {
  static const bool v = detect_avx2();
  return v;
}

KernelIsa active_isa() {
  const KernelIsa o = g_override.load(std::memory_order_relaxed);
  if (o == KernelIsa::kScalar) return KernelIsa::kScalar;
  return cpu_has_avx2() ? KernelIsa::kAvx2 : KernelIsa::kScalar;
}

void set_isa_override(KernelIsa isa) {
  g_override.store(isa, std::memory_order_relaxed);
}

KernelIsa isa_override() { return g_override.load(std::memory_order_relaxed); }

const char* isa_name(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kAuto:
      return "auto";
    case KernelIsa::kScalar:
      return "scalar";
    case KernelIsa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

float dot(const float* a, const float* b, std::int64_t n) {
#if defined(DSINFER_SIMD_X86)
  if (use_avx2()) return dot_avx2(a, b, n);
#endif
  return dot_scalar(a, b, n);
}

void axpy(float alpha, const float* x, float* y, std::int64_t n) {
#if defined(DSINFER_SIMD_X86)
  if (use_avx2()) return axpy_avx2(alpha, x, y, n);
#endif
  axpy_scalar(alpha, x, y, n);
}

void scale_add(const float* x, float alpha, float beta, float* y,
               std::int64_t n) {
#if defined(DSINFER_SIMD_X86)
  if (use_avx2()) return scale_add_avx2(x, alpha, beta, y, n);
#endif
  scale_add_scalar(x, alpha, beta, y, n);
}

void add_bias(const float* x, const float* bias, float* y, std::int64_t n) {
#if defined(DSINFER_SIMD_X86)
  if (use_avx2()) return add_bias_avx2(x, bias, y, n);
#endif
  add_bias_scalar(x, bias, y, n);
}

void add_bias_residual(const float* x, const float* bias,
                       const float* residual, float* y, std::int64_t n) {
#if defined(DSINFER_SIMD_X86)
  if (use_avx2()) return add_bias_residual_avx2(x, bias, residual, y, n);
#endif
  add_bias_residual_scalar(x, bias, residual, y, n);
}

void sum_sumsq(const float* x, std::int64_t n, double* sum, double* sumsq) {
#if defined(DSINFER_SIMD_X86)
  if (use_avx2()) return sum_sumsq_avx2(x, n, sum, sumsq);
#endif
  sum_sumsq_scalar(x, n, sum, sumsq);
}

void norm_affine(const float* x, const float* gamma, const float* beta,
                 float* y, std::int64_t n, float mu, float inv_std) {
#if defined(DSINFER_SIMD_X86)
  if (use_avx2()) return norm_affine_avx2(x, gamma, beta, y, n, mu, inv_std);
#endif
  norm_affine_scalar(x, gamma, beta, y, n, mu, inv_std);
}

float reduce_max(const float* x, std::int64_t n) {
#if defined(DSINFER_SIMD_X86)
  if (use_avx2()) return reduce_max_avx2(x, n);
#endif
  return reduce_max_scalar(x, n);
}

float reduce_absmax(const float* x, std::int64_t n) {
#if defined(DSINFER_SIMD_X86)
  if (use_avx2()) return reduce_absmax_avx2(x, n);
#endif
  return reduce_absmax_scalar(x, n);
}

float exp_sum_inplace(float* x, std::int64_t n, float bias) {
#if defined(DSINFER_SIMD_X86)
  if (use_avx2()) return exp_sum_inplace_avx2(x, n, bias);
#endif
  return exp_sum_inplace_scalar(x, n, bias);
}

void gelu_bias(const float* x, const float* bias, float* y, std::int64_t n) {
#if defined(DSINFER_SIMD_X86)
  if (use_avx2()) return gelu_bias_avx2(x, bias, y, n);
#endif
  gelu_bias_scalar(x, bias, y, n);
}

void fma_tile8(const float* x, std::int64_t ldx, std::int64_t m,
               const float* panel, std::int64_t n, float* acc) {
#if defined(DSINFER_SIMD_X86)
  if (use_avx2()) return fma_tile8_avx2(x, ldx, m, panel, n, acc);
#endif
  fma_tile8_scalar(x, ldx, m, panel, n, acc);
}

std::int32_t dot_i8(const std::int8_t* a, const std::int8_t* b,
                    std::int64_t n) {
#if defined(DSINFER_SIMD_X86)
  if (use_avx2()) return dot_i8_avx2(a, b, n);
#endif
  return dot_i8_scalar(a, b, n);
}

void quantize_i8(const float* x, float inv_scale, std::int8_t* q,
                 std::int64_t n) {
#if defined(DSINFER_SIMD_X86)
  if (use_avx2()) return quantize_i8_avx2(x, inv_scale, q, n);
#endif
  quantize_i8_scalar(x, inv_scale, q, n);
}

}  // namespace dsinfer::kernels::simd
