// Elementwise / reduction kernels, in fused and unfused flavours.
//
// The "unfused" flavours materialize intermediates into caller-provided
// buffers — one pass per micro-operation — modelling a training framework's
// kernel-per-op dispatch (the paper's PyTorch baseline). The "fused"
// flavours do the whole micro-op chain in a single pass per row, modelling
// Deep-Fusion's tile-resident intermediates (paper Sec. III.B).
#pragma once

#include <cstdint>
#include <span>

namespace dsinfer::kernels {

// -------- LayerNorm --------

// Fused layernorm: one pass computes mean/var (Welford) then normalizes,
// applying gamma/beta in the same sweep. x and y may alias.
void layernorm(std::span<const float> x, std::span<const float> gamma,
               std::span<const float> beta, std::span<float> y,
               std::int64_t rows, std::int64_t cols, float eps = 1e-5f);

// Unfused layernorm: separate mean pass, variance pass, normalize pass,
// scale pass and shift pass, each writing `y` (five memory sweeps — the
// kernel-per-micro-op baseline).
void layernorm_unfused(std::span<const float> x, std::span<const float> gamma,
                       std::span<const float> beta, std::span<float> y,
                       std::int64_t rows, std::int64_t cols,
                       float eps = 1e-5f);

// -------- Softmax --------

// In-place numerically-stable row softmax.
void softmax_rows(std::span<float> x, std::int64_t rows, std::int64_t cols);

// Unfused: max pass, subtract-exp pass, sum pass, divide pass.
void softmax_rows_unfused(std::span<float> x, std::int64_t rows,
                          std::int64_t cols);

// -------- Activations / residuals --------

float gelu(float v);

// y = gelu(x + bias), fused single pass. bias may be empty.
void bias_gelu(std::span<const float> x, std::span<const float> bias,
               std::span<float> y, std::int64_t rows, std::int64_t cols);

// y = x + bias + residual, fused single pass (paper fusion region 4).
void bias_residual(std::span<const float> x, std::span<const float> bias,
                   std::span<const float> residual, std::span<float> y,
                   std::int64_t rows, std::int64_t cols);

// Unfused variants: each micro-op is its own sweep over memory.
void bias_gelu_unfused(std::span<const float> x, std::span<const float> bias,
                       std::span<float> y, std::int64_t rows,
                       std::int64_t cols);
void bias_residual_unfused(std::span<const float> x,
                           std::span<const float> bias,
                           std::span<const float> residual,
                           std::span<float> y, std::int64_t rows,
                           std::int64_t cols);

}  // namespace dsinfer::kernels
