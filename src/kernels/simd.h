// SIMD micro-kernel vocabulary: the register-level primitives every hot loop
// in src/kernels is written against.
//
// Each primitive is implemented twice — a portable scalar loop and an
// AVX2+FMA intrinsics version (compiled with per-function target attributes,
// so no special build flags are needed) — and dispatched per call on the
// active ISA. Detection is compile-time when the TU is built with an AVX2
// baseline (`__AVX2__`) and cpuid-based otherwise; a runtime override keeps
// the scalar path reachable on any host for A/B benchmarking (the
// `kernel_regression` bench and the SIMD parity tests both rely on it).
//
// Primitives take raw pointers + lengths rather than spans: they are inner
// loops, and every call covers a whole contiguous range so the per-call
// dispatch branch amortizes over the range.
#pragma once

#include <cstdint>

namespace dsinfer::kernels::simd {

// Which instruction set the vocabulary executes with.
//  kAuto   — best available (AVX2 when the CPU has avx2+fma, else scalar).
//  kScalar — force the portable fallback.
//  kAvx2   — request AVX2; silently degrades to scalar if unavailable so
//            that policy sweeps stay runnable on any host.
enum class KernelIsa : int { kAuto = 0, kScalar = 1, kAvx2 = 2 };

// True when the host CPU supports AVX2+FMA and the AVX2 path was compiled in
// (x86 with GCC/Clang and not DSINFER_SIMD_SCALAR_ONLY).
bool cpu_has_avx2();

// The ISA the next primitive call will execute with, after resolving the
// override against availability.
KernelIsa active_isa();

// Process-global override; kAuto restores hardware selection.
void set_isa_override(KernelIsa isa);
KernelIsa isa_override();

const char* isa_name(KernelIsa isa);

// RAII override for benchmarks/tests: forces an ISA, restores on scope exit.
class IsaOverrideGuard {
 public:
  explicit IsaOverrideGuard(KernelIsa isa) : prev_(isa_override()) {
    set_isa_override(isa);
  }
  ~IsaOverrideGuard() { set_isa_override(prev_); }
  IsaOverrideGuard(const IsaOverrideGuard&) = delete;
  IsaOverrideGuard& operator=(const IsaOverrideGuard&) = delete;

 private:
  KernelIsa prev_;
};

// ---- FP32 vocabulary ---------------------------------------------------

// sum_i a[i] * b[i]
float dot(const float* a, const float* b, std::int64_t n);

// y[i] += alpha * x[i]
void axpy(float alpha, const float* x, float* y, std::int64_t n);

// y[i] = alpha * x[i] + beta (x == y allowed)
void scale_add(const float* x, float alpha, float beta, float* y,
               std::int64_t n);

// y[i] = x[i] + bias[i]; bias may be nullptr (plain copy).
void add_bias(const float* x, const float* bias, float* y, std::int64_t n);

// y[i] = x[i] + residual[i] + bias[i]; bias may be nullptr.
void add_bias_residual(const float* x, const float* bias,
                       const float* residual, float* y, std::int64_t n);

// *sum += sum_i x[i]; *sumsq += sum_i x[i]^2 (double accumulation, the
// layernorm moment sweep).
void sum_sumsq(const float* x, std::int64_t n, double* sum, double* sumsq);

// y[i] = (x[i] - mu) * inv_std * gamma[i] + beta[i]; gamma/beta may each be
// nullptr (identity scale / zero shift). The layernorm epilogue.
void norm_affine(const float* x, const float* gamma, const float* beta,
                 float* y, std::int64_t n, float mu, float inv_std);

float reduce_max(const float* x, std::int64_t n);
float reduce_absmax(const float* x, std::int64_t n);

// x[i] = exp(x[i] - bias); returns the sum of the exponentials. The softmax
// middle pass (bias is the row max for stability).
float exp_sum_inplace(float* x, std::int64_t n, float bias);

// y[i] = gelu(x[i] + bias[i]) with the tanh approximation; bias may be
// nullptr. The AVX2 path evaluates tanh through a polynomial exp accurate to
// a few ULP, so fused/unfused parity tolerances down to ~1e-6 hold.
void gelu_bias(const float* x, const float* bias, float* y, std::int64_t n);

// ---- Register-blocked tile kernel (SBI-GeMM inner loop) ----------------

// Max rows an fma_tile8 call may cover (accumulators stay in registers:
// 4 rows x 8 lanes = 4 ymm accumulators on AVX2).
inline constexpr std::int64_t kTileRows = 4;

// acc[r*8 + j] += sum_{i<n} x[r*ldx + i] * panel[i*8 + j]  for r < m.
//
// `panel` is an interleaved weight panel: 8 output lanes contiguous per
// input index (one full 32-byte cache-line half per load), exactly the
// PackedWeight layout — each step of the streaming pass is one 8-wide FMA
// per row. Requires 1 <= m <= kTileRows; acc is row-major [m, 8].
void fma_tile8(const float* x, std::int64_t ldx, std::int64_t m,
               const float* panel, std::int64_t n, float* acc);

// ---- INT8 vocabulary ---------------------------------------------------

// sum_i a[i] * b[i] with i32 accumulation. Exact integer arithmetic: the
// AVX2 and scalar paths return bitwise-identical results.
std::int32_t dot_i8(const std::int8_t* a, const std::int8_t* b,
                    std::int64_t n);

// q[i] = clamp(rint(x[i] * inv_scale), -127, 127). Round-to-nearest-even in
// both paths (lrintf / cvtps_epi32 under the default rounding mode).
void quantize_i8(const float* x, float inv_scale, std::int8_t* q,
                 std::int64_t n);

}  // namespace dsinfer::kernels::simd
