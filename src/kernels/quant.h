// INT8 inference path (paper Sec. III.D "Support for Different Data Types").
//
// Weights are quantized once per output channel (symmetric, scale = max|w| /
// 127). Activations are quantized dynamically per row. The GeMM accumulates
// in int32 and the dequantize + bias epilogue is fused into the same loop,
// mirroring the paper's fused quantize-before / dequantize-after design
// (their CUTLASS epilogue fusion).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/aligned_buffer.h"

namespace dsinfer::kernels {

// Per-output-channel symmetrically quantized weight matrix W[out, in].
class QuantizedWeight {
 public:
  QuantizedWeight() = default;
  QuantizedWeight(std::span<const float> w, std::int64_t out, std::int64_t in);

  // Copyable: streamed INT8 layers (ZeRO-Inference) replicate host-resident
  // quantized shards into the device window.
  QuantizedWeight(const QuantizedWeight& other);
  QuantizedWeight& operator=(const QuantizedWeight& other);
  QuantizedWeight(QuantizedWeight&&) noexcept = default;
  QuantizedWeight& operator=(QuantizedWeight&&) noexcept = default;

  // Bytes of the quantized representation (weights + scales).
  std::size_t bytes() const {
    return static_cast<std::size_t>(out_ * in_) + scales_.size() * sizeof(float);
  }

  std::int64_t out() const { return out_; }
  std::int64_t in() const { return in_; }
  bool empty() const { return data_.empty(); }
  const std::int8_t* data() const { return data_.data(); }
  std::span<const float> scales() const { return scales_; }

 private:
  AlignedBuffer<std::int8_t> data_;
  std::vector<float> scales_;  // one per output channel
  std::int64_t out_ = 0;
  std::int64_t in_ = 0;
};

// Quantizes a row of activations to int8 with a single symmetric scale.
// Returns the scale (0 if the row is all-zero, in which case q is zeroed).
float quantize_row(std::span<const float> x, std::span<std::int8_t> q);

// y[m, out] = dequant(int8_gemm(quant(x), Wq)) + bias.
void linear_int8(std::span<const float> x, const QuantizedWeight& w,
                 std::span<const float> bias, std::span<float> y,
                 std::int64_t m);

}  // namespace dsinfer::kernels
