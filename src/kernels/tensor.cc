#include "kernels/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace dsinfer {

void Tensor::reshape(std::vector<std::int64_t> shape) {
  std::int64_t n = 1;
  for (std::int64_t d : shape) {
    if (d < 0) throw std::invalid_argument("negative tensor dim");
    n *= d;
  }
  if (n != numel_ || buf_.empty()) {
    buf_.reset(static_cast<std::size_t>(n));
  }
  shape_ = std::move(shape);
  numel_ = n;
}

Tensor Tensor::clone() const {
  Tensor out(shape_);
  std::memcpy(out.data(), data(), static_cast<std::size_t>(numel_) * sizeof(float));
  return out;
}

void Tensor::fill(float value) {
  std::fill_n(buf_.data(), static_cast<std::size_t>(numel_), value);
}

std::string Tensor::shape_str() const {
  std::ostringstream ss;
  ss << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) ss << ", ";
    ss << shape_[i];
  }
  ss << ']';
  return ss.str();
}

float max_abs_diff(std::span<const float> a, std::span<const float> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("max_abs_diff size mismatch");
  }
  float m = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

}  // namespace dsinfer
