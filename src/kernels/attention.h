// Causal multi-head attention over a KV cache.
//
// Two implementations realize the paper's fusion argument (Sec. III.D,
// fusion region 2 "transposition plus attention"):
//  * attention_fused   — per (sequence, head, query) the score vector lives
//                        in a thread-local scratch line; softmax and the
//                        value reduction happen in the same pass, so the
//                        S×S probability matrix is never materialized.
//  * attention_unfused — materializes the full masked score tensor, runs a
//                        separate softmax kernel, then a separate context
//                        GeMM: three kernel dispatches and two extra
//                        round-trips through memory (the baseline).
#pragma once

#include <cstdint>
#include <span>

#include "kernels/kv_arena.h"
#include "kernels/kv_cache.h"

namespace dsinfer::kernels {

// q: [batch, q_len, heads*head_dim]; `cache` must already contain the keys /
// values for positions [0, past + q_len). Query t sits at global position
// past + t and attends to positions <= past + t when `causal`, or to every
// cached position when not (encoder mode, used by the BERT family).
// out: [batch, q_len, heads*head_dim].
void attention_fused(std::span<const float> q, const KVCache& cache,
                     std::span<float> out, std::int64_t q_len,
                     bool causal = true);

void attention_unfused(std::span<const float> q, const KVCache& cache,
                       std::span<float> out, std::int64_t q_len,
                       bool causal = true);

// Ragged fused attention for continuous batching: row t of q (layout
// [tokens, heads*head_dim]) belongs to arena slot slots[t] at absolute
// position positions[t] and attends causally over that slot's cached
// positions [0, positions[t]] at `layer` — which must already hold row t's
// own key/value (append happens before attention, as with KVCache). K/V are
// gathered through the arena's per-slot block table page by page, with the
// per-(token, head) reduction order identical to attention_fused — so a
// ragged batch reproduces the uniform path bit-for-bit, whether the slot's
// history is one contiguous strip or a paged (possibly prefix-shared) chain.
void attention_fused_ragged(std::span<const float> q, const KVArena& arena,
                            std::int64_t layer,
                            std::span<const std::int32_t> slots,
                            std::span<const std::int32_t> positions,
                            std::span<float> out);

}  // namespace dsinfer::kernels
