#include "kernels/rope.h"

#include <cmath>
#include <stdexcept>

namespace dsinfer::kernels {

void rope_rotate_pair(float x0, float x1, std::int64_t pos, std::int64_t j,
                      std::int64_t head_dim, float theta, float* out0,
                      float* out1) {
  const double freq =
      std::pow(static_cast<double>(theta),
               -2.0 * static_cast<double>(j) / static_cast<double>(head_dim));
  const double angle = static_cast<double>(pos) * freq;
  const float c = static_cast<float>(std::cos(angle));
  const float s = static_cast<float>(std::sin(angle));
  *out0 = x0 * c - x1 * s;
  *out1 = x0 * s + x1 * c;
}

void apply_rope(std::span<float> qk, std::span<const std::int32_t> positions,
                std::int64_t heads, std::int64_t head_dim, float theta) {
  if (head_dim % 2 != 0) {
    throw std::invalid_argument("apply_rope: head_dim must be even");
  }
  const std::int64_t row = heads * head_dim;
  const std::int64_t tokens = static_cast<std::int64_t>(positions.size());
  if (qk.size() < static_cast<std::size_t>(tokens * row)) {
    throw std::invalid_argument("apply_rope: span too small");
  }
  for (std::int64_t t = 0; t < tokens; ++t) {
    const std::int64_t pos = positions[static_cast<std::size_t>(t)];
    float* base = qk.data() + t * row;
    for (std::int64_t h = 0; h < heads; ++h) {
      float* hd = base + h * head_dim;
      for (std::int64_t j = 0; j < head_dim / 2; ++j) {
        rope_rotate_pair(hd[2 * j], hd[2 * j + 1], pos, j, head_dim, theta,
                         &hd[2 * j], &hd[2 * j + 1]);
      }
    }
  }
}

}  // namespace dsinfer::kernels
