#include "kernels/elementwise.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "kernels/simd.h"

namespace dsinfer::kernels {

namespace {

void check_rows_cols(std::size_t xs, std::size_t ys, std::int64_t rows,
                     std::int64_t cols) {
  if (xs < static_cast<std::size_t>(rows * cols) ||
      ys < static_cast<std::size_t>(rows * cols)) {
    throw std::invalid_argument("elementwise: span too small");
  }
}

}  // namespace

void layernorm(std::span<const float> x, std::span<const float> gamma,
               std::span<const float> beta, std::span<float> y,
               std::int64_t rows, std::int64_t cols, float eps) {
  check_rows_cols(x.size(), y.size(), rows, cols);
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xr = x.data() + r * cols;
    float* yr = y.data() + r * cols;
    // Sum and sum-of-squares in one vectorized sweep; normalize + affine in
    // a second cache-hot sweep (double accumulation keeps the E[x^2]-mu^2
    // cancellation benign at transformer widths).
    double sum = 0.0, sumsq = 0.0;
    simd::sum_sumsq(xr, cols, &sum, &sumsq);
    const double mean = sum / static_cast<double>(cols);
    const double var = std::max(0.0, sumsq / static_cast<double>(cols) - mean * mean);
    const float mu = static_cast<float>(mean);
    const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps);
    simd::norm_affine(xr, gamma.empty() ? nullptr : gamma.data(),
                      beta.empty() ? nullptr : beta.data(), yr, cols, mu,
                      inv_std);
  }
}

void layernorm_unfused(std::span<const float> x, std::span<const float> gamma,
                       std::span<const float> beta, std::span<float> y,
                       std::int64_t rows, std::int64_t cols, float eps) {
  check_rows_cols(x.size(), y.size(), rows, cols);
  std::vector<float> mean(static_cast<std::size_t>(rows));
  std::vector<float> var(static_cast<std::size_t>(rows));
  // Pass 1: mean.
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xr = x.data() + r * cols;
    double s = 0.0;
    for (std::int64_t c = 0; c < cols; ++c) s += xr[c];
    mean[static_cast<std::size_t>(r)] = static_cast<float>(s / cols);
  }
  // Pass 2: variance.
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xr = x.data() + r * cols;
    const float mu = mean[static_cast<std::size_t>(r)];
    double s = 0.0;
    for (std::int64_t c = 0; c < cols; ++c) s += (xr[c] - mu) * (xr[c] - mu);
    var[static_cast<std::size_t>(r)] = static_cast<float>(s / cols);
  }
  // Pass 3: normalize.
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xr = x.data() + r * cols;
    float* yr = y.data() + r * cols;
    const float mu = mean[static_cast<std::size_t>(r)];
    const float inv = 1.0f / std::sqrt(var[static_cast<std::size_t>(r)] + eps);
    for (std::int64_t c = 0; c < cols; ++c) yr[c] = (xr[c] - mu) * inv;
  }
  // Pass 4: scale.
  if (!gamma.empty()) {
    for (std::int64_t r = 0; r < rows; ++r) {
      float* yr = y.data() + r * cols;
      for (std::int64_t c = 0; c < cols; ++c) yr[c] *= gamma[c];
    }
  }
  // Pass 5: shift.
  if (!beta.empty()) {
    for (std::int64_t r = 0; r < rows; ++r) {
      float* yr = y.data() + r * cols;
      for (std::int64_t c = 0; c < cols; ++c) yr[c] += beta[c];
    }
  }
}

void softmax_rows(std::span<float> x, std::int64_t rows, std::int64_t cols) {
  check_rows_cols(x.size(), x.size(), rows, cols);
  for (std::int64_t r = 0; r < rows; ++r) {
    float* xr = x.data() + r * cols;
    const float mx = simd::reduce_max(xr, cols);
    const float sum = simd::exp_sum_inplace(xr, cols, mx);
    simd::scale_add(xr, 1.0f / sum, 0.0f, xr, cols);
  }
}

void softmax_rows_unfused(std::span<float> x, std::int64_t rows,
                          std::int64_t cols) {
  check_rows_cols(x.size(), x.size(), rows, cols);
  std::vector<float> mx(static_cast<std::size_t>(rows));
  std::vector<float> sum(static_cast<std::size_t>(rows), 0.0f);
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xr = x.data() + r * cols;
    float m = xr[0];
    for (std::int64_t c = 1; c < cols; ++c) m = std::max(m, xr[c]);
    mx[static_cast<std::size_t>(r)] = m;
  }
  for (std::int64_t r = 0; r < rows; ++r) {
    float* xr = x.data() + r * cols;
    const float m = mx[static_cast<std::size_t>(r)];
    for (std::int64_t c = 0; c < cols; ++c) xr[c] = std::exp(xr[c] - m);
  }
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xr = x.data() + r * cols;
    float s = 0.0f;
    for (std::int64_t c = 0; c < cols; ++c) s += xr[c];
    sum[static_cast<std::size_t>(r)] = s;
  }
  for (std::int64_t r = 0; r < rows; ++r) {
    float* xr = x.data() + r * cols;
    const float inv = 1.0f / sum[static_cast<std::size_t>(r)];
    for (std::int64_t c = 0; c < cols; ++c) xr[c] *= inv;
  }
}

float gelu(float v) {
  // tanh approximation, matching GPT-style models.
  constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
  return 0.5f * v * (1.0f + std::tanh(kC * (v + 0.044715f * v * v * v)));
}

void bias_gelu(std::span<const float> x, std::span<const float> bias,
               std::span<float> y, std::int64_t rows, std::int64_t cols) {
  check_rows_cols(x.size(), y.size(), rows, cols);
  const float* b = bias.empty() ? nullptr : bias.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    simd::gelu_bias(x.data() + r * cols, b, y.data() + r * cols, cols);
  }
}

void bias_gelu_unfused(std::span<const float> x, std::span<const float> bias,
                       std::span<float> y, std::int64_t rows,
                       std::int64_t cols) {
  check_rows_cols(x.size(), y.size(), rows, cols);
  // Pass 1: bias add.
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xr = x.data() + r * cols;
    float* yr = y.data() + r * cols;
    for (std::int64_t c = 0; c < cols; ++c) {
      yr[c] = xr[c] + (bias.empty() ? 0.0f : bias[c]);
    }
  }
  // Pass 2: activation.
  for (std::int64_t r = 0; r < rows; ++r) {
    float* yr = y.data() + r * cols;
    for (std::int64_t c = 0; c < cols; ++c) yr[c] = gelu(yr[c]);
  }
}

void bias_residual(std::span<const float> x, std::span<const float> bias,
                   std::span<const float> residual, std::span<float> y,
                   std::int64_t rows, std::int64_t cols) {
  check_rows_cols(x.size(), y.size(), rows, cols);
  const float* b = bias.empty() ? nullptr : bias.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    simd::add_bias_residual(x.data() + r * cols, b,
                            residual.data() + r * cols, y.data() + r * cols,
                            cols);
  }
}

void bias_residual_unfused(std::span<const float> x,
                           std::span<const float> bias,
                           std::span<const float> residual,
                           std::span<float> y, std::int64_t rows,
                           std::int64_t cols) {
  check_rows_cols(x.size(), y.size(), rows, cols);
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xr = x.data() + r * cols;
    float* yr = y.data() + r * cols;
    for (std::int64_t c = 0; c < cols; ++c) {
      yr[c] = xr[c] + (bias.empty() ? 0.0f : bias[c]);
    }
  }
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* rr = residual.data() + r * cols;
    float* yr = y.data() + r * cols;
    for (std::int64_t c = 0; c < cols; ++c) yr[c] += rr[c];
  }
}

}  // namespace dsinfer::kernels
