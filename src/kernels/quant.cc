#include "kernels/quant.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "kernels/simd.h"
#include "util/thread_pool.h"

namespace dsinfer::kernels {

QuantizedWeight::QuantizedWeight(std::span<const float> w, std::int64_t out,
                                 std::int64_t in)
    : out_(out), in_(in) {
  if (w.size() < static_cast<std::size_t>(out * in)) {
    throw std::invalid_argument("QuantizedWeight: span too small");
  }
  data_.reset(static_cast<std::size_t>(out * in));
  scales_.resize(static_cast<std::size_t>(out));
  for (std::int64_t o = 0; o < out; ++o) {
    const float* row = w.data() + o * in;
    float amax = 0.0f;
    for (std::int64_t i = 0; i < in; ++i) amax = std::max(amax, std::fabs(row[i]));
    const float scale = amax > 0.0f ? amax / 127.0f : 1.0f;
    scales_[static_cast<std::size_t>(o)] = scale;
    std::int8_t* qrow = data_.data() + o * in;
    const float inv = 1.0f / scale;
    for (std::int64_t i = 0; i < in; ++i) {
      qrow[i] = static_cast<std::int8_t>(std::lrintf(
          std::clamp(row[i] * inv, -127.0f, 127.0f)));
    }
  }
}

QuantizedWeight::QuantizedWeight(const QuantizedWeight& other)
    : scales_(other.scales_), out_(other.out_), in_(other.in_) {
  if (other.out_ * other.in_ > 0) {
    data_.reset(static_cast<std::size_t>(out_ * in_));
    std::memcpy(data_.data(), other.data_.data(),
                static_cast<std::size_t>(out_ * in_));
  }
}

QuantizedWeight& QuantizedWeight::operator=(const QuantizedWeight& other) {
  if (this != &other) {
    scales_ = other.scales_;
    out_ = other.out_;
    in_ = other.in_;
    if (out_ * in_ > 0) {
      data_.reset(static_cast<std::size_t>(out_ * in_));
      std::memcpy(data_.data(), other.data_.data(),
                  static_cast<std::size_t>(out_ * in_));
    } else {
      data_.reset(0);
    }
  }
  return *this;
}

float quantize_row(std::span<const float> x, std::span<std::int8_t> q) {
  if (q.size() < x.size()) {
    throw std::invalid_argument("quantize_row: output span too small");
  }
  const float amax =
      simd::reduce_absmax(x.data(), static_cast<std::int64_t>(x.size()));
  if (amax == 0.0f) {
    std::memset(q.data(), 0, x.size());
    return 0.0f;
  }
  const float scale = amax / 127.0f;
  simd::quantize_i8(x.data(), 1.0f / scale, q.data(),
                    static_cast<std::int64_t>(x.size()));
  return scale;
}

void linear_int8(std::span<const float> x, const QuantizedWeight& w,
                 std::span<const float> bias, std::span<float> y,
                 std::int64_t m) {
  const std::int64_t in = w.in();
  const std::int64_t out = w.out();
  if (x.size() < static_cast<std::size_t>(m * in) ||
      y.size() < static_cast<std::size_t>(m * out)) {
    throw std::invalid_argument("linear_int8: span too small");
  }
  AlignedBuffer<std::int8_t> qx(static_cast<std::size_t>(m * in));
  std::vector<float> row_scale(static_cast<std::size_t>(m));
  for (std::int64_t r = 0; r < m; ++r) {
    row_scale[static_cast<std::size_t>(r)] = quantize_row(
        x.subspan(static_cast<std::size_t>(r * in), static_cast<std::size_t>(in)),
        {qx.data() + r * in, static_cast<std::size_t>(in)});
  }

  const std::size_t grain = static_cast<std::size_t>(
      std::max<std::int64_t>(1, (1 << 16) / std::max<std::int64_t>(1, 2 * m * in)));
  ThreadPool::global().parallel_for(
      0, static_cast<std::size_t>(out), grain,
      [&](std::size_t ob, std::size_t oe) {
        for (std::size_t o = ob; o < oe; ++o) {
          const std::int8_t* wr = w.data() + static_cast<std::int64_t>(o) * in;
          const float wscale = w.scales()[o];
          for (std::int64_t r = 0; r < m; ++r) {
            const std::int8_t* xr = qx.data() + r * in;
            // i32-accumulated int8 dot; AVX2 and scalar agree bitwise.
            const std::int32_t acc = simd::dot_i8(xr, wr, in);
            // Fused dequantize + bias epilogue.
            const float deq = static_cast<float>(acc) * wscale *
                              row_scale[static_cast<std::size_t>(r)];
            y[static_cast<std::size_t>(r * out) + o] =
                deq + (bias.empty() ? 0.0f : bias[o]);
          }
        }
      });
}

}  // namespace dsinfer::kernels
