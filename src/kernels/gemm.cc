#include "kernels/gemm.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "kernels/simd.h"
#include "util/thread_pool.h"

namespace dsinfer::kernels {

namespace {

// Minimum FLOPs a parallel_for task should carry before the pool's wakeup
// latency is worth paying; callers translate this into a grain in items.
constexpr std::int64_t kMinTaskFlops = 1 << 16;

std::size_t grain_for(std::int64_t flops_per_item) {
  if (flops_per_item <= 0) return 1;
  return static_cast<std::size_t>(
      std::max<std::int64_t>(1, kMinTaskFlops / flops_per_item));
}

void check_linear_args(std::size_t xs, std::size_t ws, std::size_t bs,
                       std::size_t ys, std::int64_t m, std::int64_t in,
                       std::int64_t out) {
  if (xs < static_cast<std::size_t>(m * in) ||
      ws < static_cast<std::size_t>(out * in) ||
      ys < static_cast<std::size_t>(m * out) ||
      (bs != 0 && bs < static_cast<std::size_t>(out))) {
    throw std::invalid_argument("linear: span too small for given dims");
  }
}

}  // namespace

void linear_ref(std::span<const float> x, std::span<const float> w,
                std::span<const float> bias, std::span<float> y,
                std::int64_t m, std::int64_t in, std::int64_t out) {
  check_linear_args(x.size(), w.size(), bias.size(), y.size(), m, in, out);
  for (std::int64_t r = 0; r < m; ++r) {
    const float* xr = x.data() + r * in;
    float* yr = y.data() + r * out;
    for (std::int64_t o = 0; o < out; ++o) {
      const float* wr = w.data() + o * in;
      yr[o] = (bias.empty() ? 0.0f : bias[o]) + simd::dot(xr, wr, in);
    }
  }
}

void linear_blocked(std::span<const float> x, std::span<const float> w,
                    std::span<const float> bias, std::span<float> y,
                    std::int64_t m, std::int64_t in, std::int64_t out) {
  check_linear_args(x.size(), w.size(), bias.size(), y.size(), m, in, out);
  constexpr std::int64_t kBlockOut = 64;
  constexpr std::int64_t kBlockIn = 256;

  // Initialize with bias, then accumulate block products.
  for (std::int64_t r = 0; r < m; ++r) {
    float* yr = y.data() + r * out;
    if (bias.empty()) {
      std::memset(yr, 0, static_cast<std::size_t>(out) * sizeof(float));
    } else {
      std::memcpy(yr, bias.data(), static_cast<std::size_t>(out) * sizeof(float));
    }
  }

  auto body = [&](std::int64_t o_begin, std::int64_t o_end) {
    for (std::int64_t ib = 0; ib < in; ib += kBlockIn) {
      const std::int64_t ie = std::min(in, ib + kBlockIn);
      for (std::int64_t r = 0; r < m; ++r) {
        const float* xr = x.data() + r * in;
        float* yr = y.data() + r * out;
        for (std::int64_t o = o_begin; o < o_end; ++o) {
          const float* wr = w.data() + o * in;
          yr[o] += simd::dot(xr + ib, wr + ib, ie - ib);
        }
      }
    }
  };

  const std::int64_t tile_flops = 2 * m * kBlockOut * in;
  ThreadPool::global().parallel_for(
      0, static_cast<std::size_t>((out + kBlockOut - 1) / kBlockOut),
      grain_for(tile_flops), [&](std::size_t tb, std::size_t te) {
        for (std::size_t t = tb; t < te; ++t) {
          const std::int64_t o_begin = static_cast<std::int64_t>(t) * kBlockOut;
          const std::int64_t o_end = std::min(out, o_begin + kBlockOut);
          body(o_begin, o_end);
        }
      });
}

PackedWeight::PackedWeight(std::span<const float> w, std::int64_t out,
                           std::int64_t in)
    : out_(out), in_(in) {
  if (w.size() < static_cast<std::size_t>(out * in)) {
    throw std::invalid_argument("PackedWeight: span too small");
  }
  num_panels_ = (out + kPanelOut - 1) / kPanelOut;
  data_.reset(static_cast<std::size_t>(num_panels_ * kPanelOut * in));
  // Interleaved panel layout: for panel p and input index i, the kPanelOut
  // output weights sit contiguously. A linear scan of the panel therefore
  // walks the input dimension once while touching full cache lines.
  for (std::int64_t p = 0; p < num_panels_; ++p) {
    float* panel = data_.data() + p * kPanelOut * in;
    for (std::int64_t i = 0; i < in; ++i) {
      for (std::int64_t j = 0; j < kPanelOut; ++j) {
        const std::int64_t o = p * kPanelOut + j;
        panel[i * kPanelOut + j] = o < out ? w[o * in + i] : 0.0f;
      }
    }
  }
}

std::span<const float> PackedWeight::panel(std::int64_t panel_idx) const {
  return {data_.data() + panel_idx * kPanelOut * in_,
          static_cast<std::size_t>(kPanelOut * in_)};
}

static_assert(PackedWeight::kPanelOut == 8,
              "SBI panels feed simd::fma_tile8: 8 output lanes per panel is "
              "one 32-byte half cache line of FP32");

void linear_sbi(std::span<const float> x, const PackedWeight& w,
                std::span<const float> bias, std::span<float> y,
                std::int64_t m) {
  const std::int64_t in = w.in();
  const std::int64_t out = w.out();
  check_linear_args(x.size(), static_cast<std::size_t>(out * in), bias.size(),
                    y.size(), m, in, out);
  constexpr std::int64_t kP = PackedWeight::kPanelOut;

  auto run_panel = [&](std::int64_t p) {
    const float* panel = w.panel(p).data();
    const std::int64_t o_begin = p * kP;
    const std::int64_t o_count = std::min<std::int64_t>(kP, out - o_begin);
    for (std::int64_t r0 = 0; r0 < m; r0 += simd::kTileRows) {
      const std::int64_t mm = std::min<std::int64_t>(simd::kTileRows, m - r0);
      // One streaming pass over the panel: each step consumes kP contiguous
      // weights against one activation — an 8-wide FMA per register-tile row.
      float acc[simd::kTileRows * kP] = {};
      simd::fma_tile8(x.data() + r0 * in, in, mm, panel, in, acc);
      for (std::int64_t rr = 0; rr < mm; ++rr) {
        float* yr = y.data() + (r0 + rr) * out;
        const float* ar = acc + rr * kP;
        for (std::int64_t j = 0; j < o_count; ++j) {
          yr[o_begin + j] = ar[j] + (bias.empty() ? 0.0f : bias[o_begin + j]);
        }
      }
    }
  };

  // Small output dims cannot create enough parallel tiles; split the input
  // dimension instead (paper's two-kernel reduction) — here realized by
  // letting each worker reduce a half and summing, falling back to a single
  // streaming pass when out is large enough.
  const std::int64_t num_panels = w.num_panels();
  ThreadPool::global().parallel_for(
      0, static_cast<std::size_t>(num_panels), grain_for(2 * m * kP * in),
      [&](std::size_t pb, std::size_t pe) {
        for (std::size_t p = pb; p < pe; ++p) run_panel(static_cast<std::int64_t>(p));
      });
}

void linear_sbi_split(std::span<const float> x, const PackedWeight& w,
                      std::span<const float> bias, std::span<float> y,
                      std::int64_t m, std::int64_t input_splits) {
  const std::int64_t in = w.in();
  const std::int64_t out = w.out();
  check_linear_args(x.size(), static_cast<std::size_t>(out * in), bias.size(),
                    y.size(), m, in, out);
  if (input_splits < 1 || input_splits > in) {
    throw std::invalid_argument("linear_sbi_split: bad input_splits");
  }
  constexpr std::int64_t kP = PackedWeight::kPanelOut;
  const std::int64_t num_panels = w.num_panels();

  // Kernel 1: each (panel, split) pair reduces its input slice into a
  // private partial buffer — (num_panels * input_splits) parallel tiles.
  std::vector<float> partials(
      static_cast<std::size_t>(input_splits * m * num_panels * kP), 0.0f);
  const std::int64_t chunk = (in + input_splits - 1) / input_splits;
  ThreadPool::global().parallel_for(
      0, static_cast<std::size_t>(num_panels * input_splits),
      grain_for(2 * m * kP * chunk), [&](std::size_t tb, std::size_t te) {
        for (std::size_t t = tb; t < te; ++t) {
          const std::int64_t p = static_cast<std::int64_t>(t) / input_splits;
          const std::int64_t s = static_cast<std::int64_t>(t) % input_splits;
          const std::int64_t i_begin = s * chunk;
          const std::int64_t i_end = std::min(in, i_begin + chunk);
          if (i_begin >= i_end) continue;
          const float* panel = w.panel(p).data();
          for (std::int64_t r0 = 0; r0 < m; r0 += simd::kTileRows) {
            const std::int64_t mm =
                std::min<std::int64_t>(simd::kTileRows, m - r0);
            float acc[simd::kTileRows * kP] = {};
            simd::fma_tile8(x.data() + r0 * in + i_begin, in, mm,
                            panel + i_begin * kP, i_end - i_begin, acc);
            for (std::int64_t rr = 0; rr < mm; ++rr) {
              std::memcpy(partials.data() +
                              ((s * m + r0 + rr) * num_panels + p) * kP,
                          acc + rr * kP,
                          static_cast<std::size_t>(kP) * sizeof(float));
            }
          }
        }
      });

  // Kernel 2: reduce the splits and write the output with the bias.
  for (std::int64_t r = 0; r < m; ++r) {
    for (std::int64_t p = 0; p < num_panels; ++p) {
      const std::int64_t o_begin = p * kP;
      const std::int64_t o_count = std::min<std::int64_t>(kP, out - o_begin);
      for (std::int64_t j = 0; j < o_count; ++j) {
        float acc = bias.empty() ? 0.0f : bias[o_begin + j];
        for (std::int64_t s = 0; s < input_splits; ++s) {
          acc += partials[static_cast<std::size_t>(
              ((s * m + r) * num_panels + p) * kP + j)];
        }
        y[static_cast<std::size_t>(r * out + o_begin + j)] = acc;
      }
    }
  }
}

void matmul(std::span<const float> a, std::span<const float> b,
            std::span<float> c, std::int64_t m, std::int64_t k,
            std::int64_t n) {
  if (a.size() < static_cast<std::size_t>(m * k) ||
      b.size() < static_cast<std::size_t>(k * n) ||
      c.size() < static_cast<std::size_t>(m * n)) {
    throw std::invalid_argument("matmul: span too small");
  }
  std::memset(c.data(), 0, static_cast<std::size_t>(m * n) * sizeof(float));
  // Row-parallel: each output row is an independent sum of scaled B rows
  // (axpy over contiguous memory), so rows shard across the pool with no
  // write sharing; the grain keeps tiny products (decode-time attention
  // scores) inline on the calling thread.
  ThreadPool::global().parallel_for(
      0, static_cast<std::size_t>(m), grain_for(2 * k * n),
      [&](std::size_t rb, std::size_t re) {
        for (std::size_t r = rb; r < re; ++r) {
          float* cr = c.data() + r * n;
          const float* ar = a.data() + r * k;
          for (std::int64_t i = 0; i < k; ++i) {
            simd::axpy(ar[i], b.data() + i * n, cr, n);
          }
        }
      });
}

}  // namespace dsinfer::kernels
