#include "kernels/gemm.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "util/thread_pool.h"

namespace dsinfer::kernels {

namespace {

void check_linear_args(std::size_t xs, std::size_t ws, std::size_t bs,
                       std::size_t ys, std::int64_t m, std::int64_t in,
                       std::int64_t out) {
  if (xs < static_cast<std::size_t>(m * in) ||
      ws < static_cast<std::size_t>(out * in) ||
      ys < static_cast<std::size_t>(m * out) ||
      (bs != 0 && bs < static_cast<std::size_t>(out))) {
    throw std::invalid_argument("linear: span too small for given dims");
  }
}

}  // namespace

void linear_ref(std::span<const float> x, std::span<const float> w,
                std::span<const float> bias, std::span<float> y,
                std::int64_t m, std::int64_t in, std::int64_t out) {
  check_linear_args(x.size(), w.size(), bias.size(), y.size(), m, in, out);
  for (std::int64_t r = 0; r < m; ++r) {
    const float* xr = x.data() + r * in;
    float* yr = y.data() + r * out;
    for (std::int64_t o = 0; o < out; ++o) {
      const float* wr = w.data() + o * in;
      float acc = bias.empty() ? 0.0f : bias[o];
      for (std::int64_t i = 0; i < in; ++i) acc += xr[i] * wr[i];
      yr[o] = acc;
    }
  }
}

void linear_blocked(std::span<const float> x, std::span<const float> w,
                    std::span<const float> bias, std::span<float> y,
                    std::int64_t m, std::int64_t in, std::int64_t out) {
  check_linear_args(x.size(), w.size(), bias.size(), y.size(), m, in, out);
  constexpr std::int64_t kBlockOut = 64;
  constexpr std::int64_t kBlockIn = 256;

  // Initialize with bias, then accumulate block products.
  for (std::int64_t r = 0; r < m; ++r) {
    float* yr = y.data() + r * out;
    if (bias.empty()) {
      std::memset(yr, 0, static_cast<std::size_t>(out) * sizeof(float));
    } else {
      std::memcpy(yr, bias.data(), static_cast<std::size_t>(out) * sizeof(float));
    }
  }

  auto body = [&](std::int64_t o_begin, std::int64_t o_end) {
    for (std::int64_t ib = 0; ib < in; ib += kBlockIn) {
      const std::int64_t ie = std::min(in, ib + kBlockIn);
      for (std::int64_t r = 0; r < m; ++r) {
        const float* xr = x.data() + r * in;
        float* yr = y.data() + r * out;
        for (std::int64_t o = o_begin; o < o_end; ++o) {
          const float* wr = w.data() + o * in;
          float acc = 0.0f;
          for (std::int64_t i = ib; i < ie; ++i) acc += xr[i] * wr[i];
          yr[o] += acc;
        }
      }
    }
  };

  ThreadPool::global().parallel_for(
      0, static_cast<std::size_t>((out + kBlockOut - 1) / kBlockOut),
      [&](std::size_t tb, std::size_t te) {
        for (std::size_t t = tb; t < te; ++t) {
          const std::int64_t o_begin = static_cast<std::int64_t>(t) * kBlockOut;
          const std::int64_t o_end = std::min(out, o_begin + kBlockOut);
          body(o_begin, o_end);
        }
      });
}

PackedWeight::PackedWeight(std::span<const float> w, std::int64_t out,
                           std::int64_t in)
    : out_(out), in_(in) {
  if (w.size() < static_cast<std::size_t>(out * in)) {
    throw std::invalid_argument("PackedWeight: span too small");
  }
  num_panels_ = (out + kPanelOut - 1) / kPanelOut;
  data_.reset(static_cast<std::size_t>(num_panels_ * kPanelOut * in));
  // Interleaved panel layout: for panel p and input index i, the kPanelOut
  // output weights sit contiguously. A linear scan of the panel therefore
  // walks the input dimension once while touching full cache lines.
  for (std::int64_t p = 0; p < num_panels_; ++p) {
    float* panel = data_.data() + p * kPanelOut * in;
    for (std::int64_t i = 0; i < in; ++i) {
      for (std::int64_t j = 0; j < kPanelOut; ++j) {
        const std::int64_t o = p * kPanelOut + j;
        panel[i * kPanelOut + j] = o < out ? w[o * in + i] : 0.0f;
      }
    }
  }
}

std::span<const float> PackedWeight::panel(std::int64_t panel_idx) const {
  return {data_.data() + panel_idx * kPanelOut * in_,
          static_cast<std::size_t>(kPanelOut * in_)};
}

void linear_sbi(std::span<const float> x, const PackedWeight& w,
                std::span<const float> bias, std::span<float> y,
                std::int64_t m) {
  const std::int64_t in = w.in();
  const std::int64_t out = w.out();
  check_linear_args(x.size(), static_cast<std::size_t>(out * in), bias.size(),
                    y.size(), m, in, out);
  constexpr std::int64_t kP = PackedWeight::kPanelOut;

  auto run_panel = [&](std::int64_t p) {
    const float* panel = w.panel(p).data();
    const std::int64_t o_begin = p * kP;
    const std::int64_t o_count = std::min<std::int64_t>(kP, out - o_begin);
    for (std::int64_t r = 0; r < m; ++r) {
      const float* xr = x.data() + r * in;
      float acc[kP] = {};
      // One streaming pass over the panel: each step consumes kP contiguous
      // weights (a full cache line at kP==8 FP32) against one activation.
      for (std::int64_t i = 0; i < in; ++i) {
        const float xv = xr[i];
        const float* wrow = panel + i * kP;
        for (std::int64_t j = 0; j < kP; ++j) acc[j] += xv * wrow[j];
      }
      float* yr = y.data() + r * out;
      for (std::int64_t j = 0; j < o_count; ++j) {
        yr[o_begin + j] = acc[j] + (bias.empty() ? 0.0f : bias[o_begin + j]);
      }
    }
  };

  // Small output dims cannot create enough parallel tiles; split the input
  // dimension instead (paper's two-kernel reduction) — here realized by
  // letting each worker reduce a half and summing, falling back to a single
  // streaming pass when out is large enough.
  const std::int64_t num_panels = w.num_panels();
  ThreadPool::global().parallel_for(
      0, static_cast<std::size_t>(num_panels),
      [&](std::size_t pb, std::size_t pe) {
        for (std::size_t p = pb; p < pe; ++p) run_panel(static_cast<std::int64_t>(p));
      });
}

void linear_sbi_split(std::span<const float> x, const PackedWeight& w,
                      std::span<const float> bias, std::span<float> y,
                      std::int64_t m, std::int64_t input_splits) {
  const std::int64_t in = w.in();
  const std::int64_t out = w.out();
  check_linear_args(x.size(), static_cast<std::size_t>(out * in), bias.size(),
                    y.size(), m, in, out);
  if (input_splits < 1 || input_splits > in) {
    throw std::invalid_argument("linear_sbi_split: bad input_splits");
  }
  constexpr std::int64_t kP = PackedWeight::kPanelOut;
  const std::int64_t num_panels = w.num_panels();

  // Kernel 1: each (panel, split) pair reduces its input slice into a
  // private partial buffer — (num_panels * input_splits) parallel tiles.
  std::vector<float> partials(
      static_cast<std::size_t>(input_splits * m * num_panels * kP), 0.0f);
  const std::int64_t chunk = (in + input_splits - 1) / input_splits;
  ThreadPool::global().parallel_for(
      0, static_cast<std::size_t>(num_panels * input_splits),
      [&](std::size_t tb, std::size_t te) {
        for (std::size_t t = tb; t < te; ++t) {
          const std::int64_t p = static_cast<std::int64_t>(t) / input_splits;
          const std::int64_t s = static_cast<std::int64_t>(t) % input_splits;
          const std::int64_t i_begin = s * chunk;
          const std::int64_t i_end = std::min(in, i_begin + chunk);
          const float* panel = w.panel(p).data();
          for (std::int64_t r = 0; r < m; ++r) {
            const float* xr = x.data() + r * in;
            float* acc = partials.data() +
                         ((s * m + r) * num_panels + p) * kP;
            for (std::int64_t i = i_begin; i < i_end; ++i) {
              const float xv = xr[i];
              const float* wrow = panel + i * kP;
              for (std::int64_t j = 0; j < kP; ++j) acc[j] += xv * wrow[j];
            }
          }
        }
      });

  // Kernel 2: reduce the splits and write the output with the bias.
  for (std::int64_t r = 0; r < m; ++r) {
    for (std::int64_t p = 0; p < num_panels; ++p) {
      const std::int64_t o_begin = p * kP;
      const std::int64_t o_count = std::min<std::int64_t>(kP, out - o_begin);
      for (std::int64_t j = 0; j < o_count; ++j) {
        float acc = bias.empty() ? 0.0f : bias[o_begin + j];
        for (std::int64_t s = 0; s < input_splits; ++s) {
          acc += partials[static_cast<std::size_t>(
              ((s * m + r) * num_panels + p) * kP + j)];
        }
        y[static_cast<std::size_t>(r * out + o_begin + j)] = acc;
      }
    }
  }
}

void matmul(std::span<const float> a, std::span<const float> b,
            std::span<float> c, std::int64_t m, std::int64_t k,
            std::int64_t n) {
  if (a.size() < static_cast<std::size_t>(m * k) ||
      b.size() < static_cast<std::size_t>(k * n) ||
      c.size() < static_cast<std::size_t>(m * n)) {
    throw std::invalid_argument("matmul: span too small");
  }
  std::memset(c.data(), 0, static_cast<std::size_t>(m * n) * sizeof(float));
  for (std::int64_t r = 0; r < m; ++r) {
    float* cr = c.data() + r * n;
    for (std::int64_t i = 0; i < k; ++i) {
      const float av = a[r * k + i];
      const float* br = b.data() + i * n;
      for (std::int64_t j = 0; j < n; ++j) cr[j] += av * br[j];
    }
  }
}

}  // namespace dsinfer::kernels
