#include "kernels/attention.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <vector>

#include "kernels/elementwise.h"
#include "kernels/simd.h"
#include "util/thread_pool.h"

namespace dsinfer::kernels {

namespace {

void check_args(std::size_t qs, std::size_t os, const KVCache& cache,
                std::int64_t q_len) {
  const auto need = static_cast<std::size_t>(cache.batch() * q_len *
                                             cache.heads() * cache.head_dim());
  if (qs < need || os < need) {
    throw std::invalid_argument("attention: span too small");
  }
  if (cache.seq_len() < q_len) {
    throw std::invalid_argument("attention: cache shorter than query block");
  }
}

}  // namespace

void attention_fused(std::span<const float> q, const KVCache& cache,
                     std::span<float> out, std::int64_t q_len, bool causal) {
  check_args(q.size(), out.size(), cache, q_len);
  const std::int64_t batch = cache.batch();
  const std::int64_t heads = cache.heads();
  const std::int64_t hd = cache.head_dim();
  const std::int64_t seq = cache.seq_len();
  const std::int64_t past = seq - q_len;
  const float scale = 1.0f / std::sqrt(static_cast<float>(hd));

  // Grain: one (batch, head) item costs ~4 * q_len * seq * hd flops; tiny
  // decode calls run inline instead of waking the pool.
  const std::int64_t bh_flops = 4 * q_len * seq * hd;
  const std::size_t grain = static_cast<std::size_t>(
      std::max<std::int64_t>(1, (1 << 16) / std::max<std::int64_t>(1, bh_flops)));
  ThreadPool::global().parallel_for(
      0, static_cast<std::size_t>(batch * heads), grain,
      [&](std::size_t bh_begin, std::size_t bh_end) {
        std::vector<float> scores(static_cast<std::size_t>(seq));
        for (std::size_t bh = bh_begin; bh < bh_end; ++bh) {
          const std::int64_t b = static_cast<std::int64_t>(bh) / heads;
          const std::int64_t h = static_cast<std::int64_t>(bh) % heads;
          const float* kbase = cache.keys(b, h).data();
          const float* vbase = cache.values(b, h).data();
          for (std::int64_t t = 0; t < q_len; ++t) {
            const std::int64_t kv_len = causal ? past + t + 1 : seq;
            const float* qv =
                q.data() + ((b * q_len + t) * heads + h) * hd;
            // Scores: one QK dot per cached key, then scale + max.
            for (std::int64_t j = 0; j < kv_len; ++j) {
              scores[static_cast<std::size_t>(j)] =
                  simd::dot(qv, kbase + j * hd, hd);
            }
            simd::scale_add(scores.data(), scale, 0.0f, scores.data(), kv_len);
            const float mx = simd::reduce_max(scores.data(), kv_len);
            // Exponentiate in place, then the PV reduction as axpy rows.
            const float denom = simd::exp_sum_inplace(scores.data(), kv_len, mx);
            float* o = out.data() + ((b * q_len + t) * heads + h) * hd;
            std::memset(o, 0, static_cast<std::size_t>(hd) * sizeof(float));
            for (std::int64_t j = 0; j < kv_len; ++j) {
              simd::axpy(scores[static_cast<std::size_t>(j)], vbase + j * hd, o,
                         hd);
            }
            simd::scale_add(o, 1.0f / denom, 0.0f, o, hd);
          }
        }
      });
}

void attention_fused_ragged(std::span<const float> q, const KVArena& arena,
                            std::int64_t layer,
                            std::span<const std::int32_t> slots,
                            std::span<const std::int32_t> positions,
                            std::span<float> out) {
  const std::int64_t tokens = static_cast<std::int64_t>(slots.size());
  if (positions.size() != slots.size()) {
    throw std::invalid_argument("attention ragged: slots/positions mismatch");
  }
  const std::int64_t heads = arena.heads();
  const std::int64_t hd = arena.head_dim();
  const auto need = static_cast<std::size_t>(tokens * heads * hd);
  if (q.size() < need || out.size() < need) {
    throw std::invalid_argument("attention ragged: span too small");
  }
  std::int64_t max_kv = 0;
  for (std::int64_t t = 0; t < tokens; ++t) {
    const std::int64_t pos = positions[static_cast<std::size_t>(t)];
    if (pos < 0 || pos >= arena.seq_len(layer, slots[static_cast<std::size_t>(t)])) {
      throw std::invalid_argument(
          "attention ragged: position outside the slot's cached history");
    }
    max_kv = std::max(max_kv, pos + 1);
  }
  const float scale = 1.0f / std::sqrt(static_cast<float>(hd));

  // Grain as in attention_fused: one (token, head) item costs
  // ~4 * kv_len * hd flops; decode-sized calls stay inline.
  const std::int64_t th_flops = 4 * max_kv * hd;
  const std::size_t grain = static_cast<std::size_t>(std::max<std::int64_t>(
      1, (1 << 16) / std::max<std::int64_t>(1, th_flops)));
  ThreadPool::global().parallel_for(
      0, static_cast<std::size_t>(tokens * heads), grain,
      [&](std::size_t th_begin, std::size_t th_end) {
        std::vector<float> scores(static_cast<std::size_t>(max_kv));
        for (std::size_t th = th_begin; th < th_end; ++th) {
          const std::int64_t t = static_cast<std::int64_t>(th) / heads;
          const std::int64_t h = static_cast<std::int64_t>(th) % heads;
          const std::int64_t slot = slots[static_cast<std::size_t>(t)];
          const std::int64_t kv_len =
              positions[static_cast<std::size_t>(t)] + 1;
          const auto chain = arena.slot_pages(slot);
          const std::int64_t pt = arena.page_tokens();
          const float* qv = q.data() + (t * heads + h) * hd;
          // Gather K through the block table: position j lives in page
          // chain[j / pt] at row j % pt. j stays ascending, so the score
          // vector — and every reduction below — is bit-identical to the
          // contiguous-strip layout (strip mode is just chain.size() == 1).
          for (std::int64_t j = 0; j < kv_len;) {
            const float* kbase =
                arena.page_k_data(layer, chain[static_cast<std::size_t>(j / pt)], h);
            const std::int64_t r0 = j % pt;
            const std::int64_t rows = std::min(pt - r0, kv_len - j);
            for (std::int64_t r = r0; r < r0 + rows; ++r, ++j) {
              scores[static_cast<std::size_t>(j)] =
                  simd::dot(qv, kbase + r * hd, hd);
            }
          }
          simd::scale_add(scores.data(), scale, 0.0f, scores.data(), kv_len);
          const float mx = simd::reduce_max(scores.data(), kv_len);
          const float denom = simd::exp_sum_inplace(scores.data(), kv_len, mx);
          float* o = out.data() + (t * heads + h) * hd;
          std::memset(o, 0, static_cast<std::size_t>(hd) * sizeof(float));
          for (std::int64_t j = 0; j < kv_len;) {
            const float* vbase =
                arena.page_v_data(layer, chain[static_cast<std::size_t>(j / pt)], h);
            const std::int64_t r0 = j % pt;
            const std::int64_t rows = std::min(pt - r0, kv_len - j);
            for (std::int64_t r = r0; r < r0 + rows; ++r, ++j) {
              simd::axpy(scores[static_cast<std::size_t>(j)], vbase + r * hd, o,
                         hd);
            }
          }
          simd::scale_add(o, 1.0f / denom, 0.0f, o, hd);
        }
      });
}

void attention_unfused(std::span<const float> q, const KVCache& cache,
                       std::span<float> out, std::int64_t q_len, bool causal) {
  check_args(q.size(), out.size(), cache, q_len);
  const std::int64_t batch = cache.batch();
  const std::int64_t heads = cache.heads();
  const std::int64_t hd = cache.head_dim();
  const std::int64_t seq = cache.seq_len();
  const std::int64_t past = seq - q_len;
  const float scale = 1.0f / std::sqrt(static_cast<float>(hd));

  // Kernel 1: materialize the full masked score tensor
  // [batch, heads, q_len, seq].
  std::vector<float> scores(
      static_cast<std::size_t>(batch * heads * q_len * seq));
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t h = 0; h < heads; ++h) {
      const float* kbase = cache.keys(b, h).data();
      for (std::int64_t t = 0; t < q_len; ++t) {
        const float* qv = q.data() + ((b * q_len + t) * heads + h) * hd;
        float* srow =
            scores.data() + (((b * heads + h) * q_len + t) * seq);
        const std::int64_t kv_len = causal ? past + t + 1 : seq;
        for (std::int64_t j = 0; j < seq; ++j) {
          if (j < kv_len) {
            const float* kj = kbase + j * hd;
            float dot = 0.0f;
            for (std::int64_t d = 0; d < hd; ++d) dot += qv[d] * kj[d];
            srow[j] = dot * scale;
          } else {
            srow[j] = -1e30f;  // causal mask
          }
        }
      }
    }
  }

  // Kernel 2: separate softmax dispatch over all rows.
  softmax_rows_unfused(scores, batch * heads * q_len, seq);

  // Kernel 3: separate context product (probabilities X values).
  for (std::int64_t b = 0; b < batch; ++b) {
    for (std::int64_t h = 0; h < heads; ++h) {
      const float* vbase = cache.values(b, h).data();
      for (std::int64_t t = 0; t < q_len; ++t) {
        const float* srow =
            scores.data() + (((b * heads + h) * q_len + t) * seq);
        float* o = out.data() + ((b * q_len + t) * heads + h) * hd;
        std::memset(o, 0, static_cast<std::size_t>(hd) * sizeof(float));
        for (std::int64_t j = 0; j < seq; ++j) {
          const float p = srow[j];
          const float* vj = vbase + j * hd;
          for (std::int64_t d = 0; d < hd; ++d) o[d] += p * vj[d];
        }
      }
    }
  }
}

}  // namespace dsinfer::kernels
