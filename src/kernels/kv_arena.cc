#include "kernels/kv_arena.h"

#include <cstring>
#include <stdexcept>

namespace dsinfer::kernels {

KVArena::KVArena(std::int64_t layers, std::int64_t slots, std::int64_t heads,
                 std::int64_t head_dim, std::int64_t max_seq)
    : layers_(layers), slots_(slots), heads_(heads), head_dim_(head_dim),
      max_seq_(max_seq) {
  if (layers < 1 || slots < 1 || heads < 1 || head_dim < 1 || max_seq < 1) {
    throw std::invalid_argument("KVArena: all dimensions must be positive");
  }
  const auto n =
      static_cast<std::size_t>(layers * slots * heads * max_seq * head_dim);
  k_.reset(n);
  v_.reset(n);
  len_.assign(static_cast<std::size_t>(layers * slots), 0);
  used_.assign(static_cast<std::size_t>(slots), 0);
  free_.reserve(static_cast<std::size_t>(slots));
  // LIFO list with slot 0 on top: acquire order is 0, 1, 2, ...
  for (std::int64_t s = slots - 1; s >= 0; --s) free_.push_back(s);
}

std::int64_t KVArena::acquire() {
  if (free_.empty()) return -1;
  const std::int64_t slot = free_.back();
  free_.pop_back();
  used_[static_cast<std::size_t>(slot)] = 1;
  ++total_acquires_;
  return slot;
}

void KVArena::release(std::int64_t slot) {
  if (slot < 0 || slot >= slots_ || !used_[static_cast<std::size_t>(slot)]) {
    throw std::invalid_argument("KVArena::release: slot not in use");
  }
  used_[static_cast<std::size_t>(slot)] = 0;
  for (std::int64_t l = 0; l < layers_; ++l) {
    len_[static_cast<std::size_t>(l * slots_ + slot)] = 0;
  }
  free_.push_back(slot);
}

bool KVArena::in_use(std::int64_t slot) const {
  return slot >= 0 && slot < slots_ && used_[static_cast<std::size_t>(slot)];
}

void KVArena::check_slot(std::int64_t layer, std::int64_t slot) const {
  if (layer < 0 || layer >= layers_) {
    throw std::invalid_argument("KVArena: layer out of range");
  }
  if (!in_use(slot)) {
    throw std::invalid_argument("KVArena: slot not in use");
  }
}

std::int64_t KVArena::seq_len(std::int64_t layer, std::int64_t slot) const {
  check_slot(layer, slot);
  return len_[static_cast<std::size_t>(layer * slots_ + slot)];
}

void KVArena::append(std::int64_t layer, std::int64_t slot,
                     std::span<const float> k, std::span<const float> v,
                     std::int64_t tokens) {
  check_slot(layer, slot);
  const auto need = static_cast<std::size_t>(tokens * heads_ * head_dim_);
  if (tokens < 1 || k.size() < need || v.size() < need) {
    throw std::invalid_argument("KVArena::append: span too small");
  }
  auto& len = len_[static_cast<std::size_t>(layer * slots_ + slot)];
  if (len + tokens > max_seq_) {
    throw std::length_error("KVArena::append: exceeds max_seq");
  }
  for (std::int64_t t = 0; t < tokens; ++t) {
    const float* ksrc = k.data() + t * heads_ * head_dim_;
    const float* vsrc = v.data() + t * heads_ * head_dim_;
    for (std::int64_t h = 0; h < heads_; ++h) {
      const std::int64_t off = strip(layer, slot, h) + (len + t) * head_dim_;
      std::memcpy(k_.data() + off, ksrc + h * head_dim_,
                  static_cast<std::size_t>(head_dim_) * sizeof(float));
      std::memcpy(v_.data() + off, vsrc + h * head_dim_,
                  static_cast<std::size_t>(head_dim_) * sizeof(float));
    }
  }
  len += tokens;
}

void KVArena::rewind(std::int64_t slot, std::int64_t len) {
  check_slot(0, slot);
  if (len < 0) {
    throw std::invalid_argument("KVArena::rewind: negative length");
  }
  for (std::int64_t l = 0; l < layers_; ++l) {
    auto& n = len_[static_cast<std::size_t>(l * slots_ + slot)];
    if (n > len) n = len;
  }
}

std::span<const float> KVArena::keys(std::int64_t layer, std::int64_t slot,
                                     std::int64_t head) const {
  check_slot(layer, slot);
  const auto len = len_[static_cast<std::size_t>(layer * slots_ + slot)];
  return {k_.data() + strip(layer, slot, head),
          static_cast<std::size_t>(len * head_dim_)};
}

std::span<const float> KVArena::values(std::int64_t layer, std::int64_t slot,
                                       std::int64_t head) const {
  check_slot(layer, slot);
  const auto len = len_[static_cast<std::size_t>(layer * slots_ + slot)];
  return {v_.data() + strip(layer, slot, head),
          static_cast<std::size_t>(len * head_dim_)};
}

std::int64_t KVArena::export_slot(std::int64_t slot, std::vector<float>& k,
                                  std::vector<float>& v) const {
  check_slot(0, slot);
  const auto len = len_[static_cast<std::size_t>(slot)];
  for (std::int64_t l = 1; l < layers_; ++l) {
    if (len_[static_cast<std::size_t>(l * slots_ + slot)] != len) {
      throw std::logic_error(
          "KVArena::export_slot: layers disagree (mid-iteration state)");
    }
  }
  const auto row = static_cast<std::size_t>(len * head_dim_);
  k.resize(static_cast<std::size_t>(layers_ * heads_) * row);
  v.resize(k.size());
  std::size_t off = 0;
  for (std::int64_t l = 0; l < layers_; ++l) {
    for (std::int64_t h = 0; h < heads_; ++h) {
      std::memcpy(k.data() + off, k_.data() + strip(l, slot, h),
                  row * sizeof(float));
      std::memcpy(v.data() + off, v_.data() + strip(l, slot, h),
                  row * sizeof(float));
      off += row;
    }
  }
  return len;
}

void KVArena::import_slot(std::int64_t slot, std::span<const float> k,
                          std::span<const float> v, std::int64_t len) {
  check_slot(0, slot);
  if (len < 0 || len > max_seq_) {
    throw std::invalid_argument("KVArena::import_slot: bad length");
  }
  const auto row = static_cast<std::size_t>(len * head_dim_);
  const auto need = static_cast<std::size_t>(layers_ * heads_) * row;
  if (k.size() < need || v.size() < need) {
    throw std::invalid_argument("KVArena::import_slot: span too small");
  }
  std::size_t off = 0;
  for (std::int64_t l = 0; l < layers_; ++l) {
    for (std::int64_t h = 0; h < heads_; ++h) {
      std::memcpy(k_.data() + strip(l, slot, h), k.data() + off,
                  row * sizeof(float));
      std::memcpy(v_.data() + strip(l, slot, h), v.data() + off,
                  row * sizeof(float));
      off += row;
    }
    len_[static_cast<std::size_t>(l * slots_ + slot)] = len;
  }
}

std::size_t KVArena::bytes_in_use() const {
  std::size_t rows = 0;
  for (std::int64_t s = 0; s < slots_; ++s) {
    if (!used_[static_cast<std::size_t>(s)]) continue;
    for (std::int64_t l = 0; l < layers_; ++l) {
      rows += static_cast<std::size_t>(
          len_[static_cast<std::size_t>(l * slots_ + s)]);
    }
  }
  return 2 * rows * static_cast<std::size_t>(heads_ * head_dim_) *
         sizeof(float);
}

}  // namespace dsinfer::kernels
