#include "kernels/kv_arena.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace dsinfer::kernels {

namespace {

constexpr std::uint64_t kFnvBasis = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

// Chain hash: extending the running FNV-1a hash token by token means equal
// keys imply equal full prefixes (token ids from position 0), which is the
// property that makes page sharing bit-identical — K/V at position p depend
// on the entire preceding context, not just the token at p.
std::uint64_t extend_hash(std::uint64_t h, std::span<const std::int32_t> t) {
  for (const std::int32_t tok : t) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(tok));
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t mix(std::uint64_t h, std::uint64_t x) {
  h ^= x;
  h *= kFnvPrime;
  return h;
}

}  // namespace

KVArena::KVArena(std::int64_t layers, std::int64_t slots, std::int64_t heads,
                 std::int64_t head_dim, std::int64_t max_seq)
    : KVArena(layers, slots, heads, head_dim, max_seq,
              /*page_tokens=*/max_seq, /*pages=*/slots,
              /*prefix_cache=*/false) {}

KVArena::KVArena(std::int64_t layers, std::int64_t slots, std::int64_t heads,
                 std::int64_t head_dim, std::int64_t max_seq,
                 std::int64_t page_tokens, std::int64_t pages,
                 bool prefix_cache)
    : layers_(layers), slots_(slots), heads_(heads), head_dim_(head_dim),
      max_seq_(max_seq), page_tokens_(page_tokens), pages_(pages),
      prefix_cache_(prefix_cache) {
  if (layers < 1 || slots < 1 || heads < 1 || head_dim < 1 || max_seq < 1) {
    throw std::invalid_argument("KVArena: all dimensions must be positive");
  }
  if (page_tokens < 1 || page_tokens > max_seq) {
    throw std::invalid_argument("KVArena: page_tokens must be in [1, max_seq]");
  }
  if (pages_ == 0) pages_ = slots_ * pages_needed(max_seq_);
  if (pages_ < 1 || pages_ > std::numeric_limits<std::int32_t>::max()) {
    throw std::invalid_argument("KVArena: bad page count");
  }
  page_floats_ =
      static_cast<std::size_t>(layers_ * heads_ * page_tokens_ * head_dim_);
  k_.reset(static_cast<std::size_t>(pages_) * page_floats_);
  v_.reset(static_cast<std::size_t>(pages_) * page_floats_);
  len_.assign(static_cast<std::size_t>(layers_ * slots_), 0);
  used_.assign(static_cast<std::size_t>(slots_), 0);
  table_.assign(static_cast<std::size_t>(slots_), {});
  page_ref_.assign(static_cast<std::size_t>(pages_), 0);
  page_owner_.assign(static_cast<std::size_t>(pages_), 0);
  free_.reserve(static_cast<std::size_t>(slots_));
  // LIFO lists with id 0 on top: acquire/fault order is 0, 1, 2, ...
  for (std::int64_t s = slots_ - 1; s >= 0; --s) free_.push_back(s);
  page_free_.reserve(static_cast<std::size_t>(pages_));
  for (std::int64_t p = pages_ - 1; p >= 0; --p) {
    page_free_.push_back(static_cast<std::int32_t>(p));
  }
}

std::int64_t KVArena::acquire() {
  if (free_.empty()) return -1;
  const std::int64_t slot = free_.back();
  free_.pop_back();
  used_[static_cast<std::size_t>(slot)] = 1;
  ++total_acquires_;
  return slot;
}

void KVArena::release(std::int64_t slot) {
  if (slot < 0 || slot >= slots_ || !used_[static_cast<std::size_t>(slot)]) {
    throw std::invalid_argument("KVArena::release: slot not in use");
  }
  used_[static_cast<std::size_t>(slot)] = 0;
  for (std::int64_t l = 0; l < layers_; ++l) {
    len_[static_cast<std::size_t>(l * slots_ + slot)] = 0;
  }
  auto& chain = table_[static_cast<std::size_t>(slot)];
  for (const std::int32_t p : chain) unref_page(p);
  chain.clear();
  free_.push_back(slot);
}

bool KVArena::in_use(std::int64_t slot) const {
  return slot >= 0 && slot < slots_ && used_[static_cast<std::size_t>(slot)];
}

void KVArena::check_slot(std::int64_t layer, std::int64_t slot) const {
  if (layer < 0 || layer >= layers_) {
    throw std::invalid_argument("KVArena: layer out of range");
  }
  if (!in_use(slot)) {
    throw std::invalid_argument("KVArena: slot not in use");
  }
}

std::int64_t KVArena::seq_len(std::int64_t layer, std::int64_t slot) const {
  check_slot(layer, slot);
  return len_at(layer, slot);
}

std::int64_t KVArena::common_len(std::int64_t slot) const {
  const auto len = len_at(0, slot);
  for (std::int64_t l = 1; l < layers_; ++l) {
    if (len_at(l, slot) != len) {
      throw std::logic_error("KVArena: layers disagree (mid-iteration state)");
    }
  }
  return len;
}

std::int64_t KVArena::evictable_pages() const {
  std::int64_t n = 0;
  for (const auto& [key, e] : cache_) {
    if (e.page >= 0 && page_ref_[static_cast<std::size_t>(e.page)] == 1) ++n;
  }
  return n;
}

std::span<const std::int32_t> KVArena::slot_pages(std::int64_t slot) const {
  check_slot(0, slot);
  const auto& chain = table_[static_cast<std::size_t>(slot)];
  return {chain.data(), chain.size()};
}

std::int32_t KVArena::page_refcount(std::int32_t page) const {
  if (page < 0 || page >= pages_) {
    throw std::invalid_argument("KVArena: page out of range");
  }
  return page_ref_[static_cast<std::size_t>(page)];
}

std::int32_t KVArena::alloc_page() {
  while (page_free_.empty()) {
    if (!evict_lru()) return -1;
  }
  const std::int32_t p = page_free_.back();
  page_free_.pop_back();
  page_ref_[static_cast<std::size_t>(p)] = 1;
  page_owner_[static_cast<std::size_t>(p)] = 0;
  return p;
}

void KVArena::unref_page(std::int32_t page) {
  auto& ref = page_ref_[static_cast<std::size_t>(page)];
  if (--ref == 0) page_free_.push_back(page);
}

bool KVArena::evict_lru() {
  // Coldest cache-only page wins; (last_use, key) ordering keeps the choice
  // deterministic across TP shards regardless of hash-map iteration order.
  PrefixEntry* victim = nullptr;
  for (auto& [key, e] : cache_) {
    if (e.page < 0 || page_ref_[static_cast<std::size_t>(e.page)] != 1) {
      continue;
    }
    if (!victim || e.last_use < victim->last_use ||
        (e.last_use == victim->last_use && e.key < victim->key)) {
      victim = &e;
    }
  }
  if (!victim) return false;
  const auto p = static_cast<std::size_t>(victim->page);
  victim->host_k.resize(page_floats_);
  victim->host_v.resize(page_floats_);
  std::memcpy(victim->host_k.data(), k_.data() + p * page_floats_,
              page_floats_ * sizeof(float));
  std::memcpy(victim->host_v.data(), v_.data() + p * page_floats_,
              page_floats_ * sizeof(float));
  const std::size_t bytes = 2 * page_floats_ * sizeof(float);
  spill_bytes_out_ += bytes;
  if (spill_sink_) spill_sink_(bytes, 0);
  page_owner_[p] = 0;
  page_ref_[p] = 0;
  page_free_.push_back(victim->page);
  victim->page = -1;
  ++evictions_;
  return true;
}

bool KVArena::ensure_resident(PrefixEntry& e) {
  if (e.page >= 0) return true;
  const std::int32_t p = alloc_page();  // may evict a colder entry, never e
  if (p < 0) return false;
  std::memcpy(k_.data() + static_cast<std::size_t>(p) * page_floats_,
              e.host_k.data(), page_floats_ * sizeof(float));
  std::memcpy(v_.data() + static_cast<std::size_t>(p) * page_floats_,
              e.host_v.data(), page_floats_ * sizeof(float));
  e.host_k.clear();
  e.host_k.shrink_to_fit();
  e.host_v.clear();
  e.host_v.shrink_to_fit();
  const std::size_t bytes = 2 * page_floats_ * sizeof(float);
  spill_bytes_in_ += bytes;
  if (spill_sink_) spill_sink_(0, bytes);
  page_owner_[static_cast<std::size_t>(p)] = e.key;
  e.page = p;
  ++refetches_;
  return true;
}

void KVArena::cow_split(std::int64_t slot, std::size_t chain_idx) {
  auto& chain = table_[static_cast<std::size_t>(slot)];
  const std::int32_t old = chain[chain_idx];
  const std::int32_t np = alloc_page();
  if (np < 0) throw std::length_error("KVArena::append: out of pages");
  // Whole-page copy: a shared page holds complete valid rows for every
  // position it covers, so the split page is correct for any later write.
  std::memcpy(k_.data() + static_cast<std::size_t>(np) * page_floats_,
              k_.data() + static_cast<std::size_t>(old) * page_floats_,
              page_floats_ * sizeof(float));
  std::memcpy(v_.data() + static_cast<std::size_t>(np) * page_floats_,
              v_.data() + static_cast<std::size_t>(old) * page_floats_,
              page_floats_ * sizeof(float));
  unref_page(old);
  chain[chain_idx] = np;
  ++cow_splits_;
}

void KVArena::prepare_rows(std::int64_t slot, std::int64_t len,
                           std::int64_t tokens) {
  auto& chain = table_[static_cast<std::size_t>(slot)];
  const auto first = static_cast<std::size_t>(len / page_tokens_);
  const auto last = static_cast<std::size_t>((len + tokens - 1) / page_tokens_);
  for (std::size_t pi = first; pi <= last; ++pi) {
    if (pi < chain.size()) {
      if (page_ref_[static_cast<std::size_t>(chain[pi])] > 1) {
        cow_split(slot, pi);
      }
    } else {
      const std::int32_t p = alloc_page();
      if (p < 0) throw std::length_error("KVArena::append: out of pages");
      chain.push_back(p);
    }
  }
}

void KVArena::append(std::int64_t layer, std::int64_t slot,
                     std::span<const float> k, std::span<const float> v,
                     std::int64_t tokens) {
  check_slot(layer, slot);
  const auto need = static_cast<std::size_t>(tokens * heads_ * head_dim_);
  if (tokens < 1 || k.size() < need || v.size() < need) {
    throw std::invalid_argument("KVArena::append: span too small");
  }
  auto& len = len_ref(layer, slot);
  if (len + tokens > max_seq_) {
    throw std::length_error("KVArena::append: exceeds max_seq");
  }
  prepare_rows(slot, len, tokens);
  const auto& chain = table_[static_cast<std::size_t>(slot)];
  const auto hd = static_cast<std::size_t>(head_dim_);
  for (std::int64_t t = 0; t < tokens; ++t) {
    const float* ksrc = k.data() + t * heads_ * head_dim_;
    const float* vsrc = v.data() + t * heads_ * head_dim_;
    const std::int64_t row = len + t;
    const auto page = chain[static_cast<std::size_t>(row / page_tokens_)];
    const auto r = static_cast<std::size_t>(row % page_tokens_);
    for (std::int64_t h = 0; h < heads_; ++h) {
      const std::size_t off = page_base(layer, page, h) + r * hd;
      std::memcpy(k_.data() + off, ksrc + h * head_dim_, hd * sizeof(float));
      std::memcpy(v_.data() + off, vsrc + h * head_dim_, hd * sizeof(float));
    }
  }
  len += tokens;
}

void KVArena::rewind(std::int64_t slot, std::int64_t len) {
  check_slot(0, slot);
  if (len < 0) {
    throw std::invalid_argument("KVArena::rewind: negative length");
  }
  std::int64_t keep = 0;
  for (std::int64_t l = 0; l < layers_; ++l) {
    auto& n = len_ref(l, slot);
    if (n > len) n = len;
    keep = std::max(keep, n);
  }
  auto& chain = table_[static_cast<std::size_t>(slot)];
  const auto needed = static_cast<std::size_t>(pages_needed(keep));
  while (chain.size() > needed) {
    unref_page(chain.back());
    chain.pop_back();
  }
}

std::int64_t KVArena::match_prefix(std::int64_t slot,
                                   std::span<const std::int32_t> prompt) {
  check_slot(0, slot);
  if (common_len(slot) != 0) {
    throw std::invalid_argument("KVArena::match_prefix: slot not fresh");
  }
  if (!prefix_cache_) return 0;
  ++prefix_lookups_;
  // Always leave >= 1 prompt token for the caller to prefill: the last row
  // is where admission reads its first logits.
  const auto limit = std::min<std::int64_t>(
      static_cast<std::int64_t>(prompt.size()) - 1, max_seq_);
  if (limit < 1) return 0;
  auto& chain = table_[static_cast<std::size_t>(slot)];
  std::uint64_t h = kFnvBasis;
  std::int64_t matched = 0;
  std::size_t chunk = 0;
  while (static_cast<std::int64_t>(chunk + 1) * page_tokens_ <= limit) {
    const auto ctoks = prompt.subspan(chunk * page_tokens_,
                                      static_cast<std::size_t>(page_tokens_));
    const std::uint64_t h2 = extend_hash(h, ctoks);
    auto it = cache_.find(h2);
    if (it == cache_.end() ||
        !std::equal(it->second.tokens.begin(), it->second.tokens.end(),
                    ctoks.begin(), ctoks.end())) {
      break;  // miss (or an FNV collision — treated as a miss)
    }
    if (!ensure_resident(it->second)) break;  // pool too hot to re-fetch
    chain.push_back(it->second.page);
    ++page_ref_[static_cast<std::size_t>(it->second.page)];
    it->second.last_use = ++tick_;
    matched += page_tokens_;
    h = h2;
    ++chunk;
  }
  // Partial match: the longest shared leading run of one published child
  // page. The slot's first divergent append into that page CoW-splits it.
  if (matched < limit) {
    const auto rest = prompt.subspan(chunk * page_tokens_);
    const auto cap = std::min<std::int64_t>(limit - matched, page_tokens_);
    PrefixEntry* best = nullptr;
    std::int64_t best_m = 0;
    for (auto [b, e] = children_.equal_range(h); b != e; ++b) {
      auto& ent = cache_.at(b->second);
      std::int64_t m = 0;
      const auto n = std::min<std::int64_t>(
          cap, static_cast<std::int64_t>(ent.tokens.size()));
      while (m < n && ent.tokens[static_cast<std::size_t>(m)] ==
                          rest[static_cast<std::size_t>(m)]) {
        ++m;
      }
      if (m > best_m || (m == best_m && m > 0 && best && ent.key < best->key)) {
        best = &ent;
        best_m = m;
      }
    }
    if (best && best_m > 0 && ensure_resident(*best)) {
      chain.push_back(best->page);
      ++page_ref_[static_cast<std::size_t>(best->page)];
      best->last_use = ++tick_;
      matched += best_m;
    }
  }
  for (std::int64_t l = 0; l < layers_; ++l) len_ref(l, slot) = matched;
  if (matched > 0) {
    ++prefix_hits_;
    prefix_hit_tokens_ += matched;
  }
  return matched;
}

std::int64_t KVArena::publish_prefix(std::int64_t slot,
                                     std::span<const std::int32_t> prompt) {
  check_slot(0, slot);
  if (!prefix_cache_) return 0;
  const auto len = common_len(slot);
  const auto nfull =
      std::min(len, static_cast<std::int64_t>(prompt.size())) / page_tokens_;
  const auto& chain = table_[static_cast<std::size_t>(slot)];
  std::uint64_t h = kFnvBasis;
  std::int64_t published = 0;
  for (std::int64_t chunk = 0; chunk < nfull; ++chunk) {
    const auto ctoks =
        prompt.subspan(static_cast<std::size_t>(chunk * page_tokens_),
                       static_cast<std::size_t>(page_tokens_));
    const std::uint64_t h2 = extend_hash(h, ctoks);
    if (auto it = cache_.find(h2); it != cache_.end()) {
      it->second.last_use = ++tick_;  // already published — refresh LRU
      h = h2;
      continue;
    }
    const std::int32_t p = chain[static_cast<std::size_t>(chunk)];
    if (page_owner_[static_cast<std::size_t>(p)] != 0) {
      h = h2;  // page already belongs to another chain hash; don't re-own
      continue;
    }
    PrefixEntry e;
    e.key = h2;
    e.parent = h;
    e.page = p;
    e.tokens.assign(ctoks.begin(), ctoks.end());
    e.last_use = ++tick_;
    cache_.emplace(h2, std::move(e));
    children_.emplace(h, h2);
    ++page_ref_[static_cast<std::size_t>(p)];  // the cache's own reference
    page_owner_[static_cast<std::size_t>(p)] = h2;
    ++published;
    h = h2;
  }
  return published;
}

std::int64_t KVArena::cached_prefix_tokens(
    std::span<const std::int32_t> prompt) const {
  if (!prefix_cache_) return 0;
  const auto limit = std::min<std::int64_t>(
      static_cast<std::int64_t>(prompt.size()) - 1, max_seq_);
  if (limit < 1) return 0;
  std::uint64_t h = kFnvBasis;
  std::int64_t matched = 0;
  std::size_t chunk = 0;
  while (static_cast<std::int64_t>(chunk + 1) * page_tokens_ <= limit) {
    const auto ctoks = prompt.subspan(chunk * page_tokens_,
                                      static_cast<std::size_t>(page_tokens_));
    const std::uint64_t h2 = extend_hash(h, ctoks);
    const auto it = cache_.find(h2);
    if (it == cache_.end() ||
        !std::equal(it->second.tokens.begin(), it->second.tokens.end(),
                    ctoks.begin(), ctoks.end())) {
      break;
    }
    matched += page_tokens_;
    h = h2;
    ++chunk;
  }
  if (matched < limit) {
    const auto rest = prompt.subspan(chunk * page_tokens_);
    const auto cap = std::min<std::int64_t>(limit - matched, page_tokens_);
    std::int64_t best_m = 0;
    for (auto [b, e] = children_.equal_range(h); b != e; ++b) {
      const auto& ent = cache_.at(b->second);
      std::int64_t m = 0;
      const auto n = std::min<std::int64_t>(
          cap, static_cast<std::int64_t>(ent.tokens.size()));
      while (m < n && ent.tokens[static_cast<std::size_t>(m)] ==
                          rest[static_cast<std::size_t>(m)]) {
        ++m;
      }
      best_m = std::max(best_m, m);
    }
    matched += best_m;
  }
  return matched;
}

KVArena::PrefixProbe KVArena::probe_prefix(
    std::span<const std::int32_t> prompt) const {
  PrefixProbe pr;
  if (!prefix_cache_) return pr;
  const auto limit = std::min<std::int64_t>(
      static_cast<std::int64_t>(prompt.size()) - 1, max_seq_);
  if (limit < 1) return pr;
  std::uint64_t h = kFnvBasis;
  std::size_t chunk = 0;
  while (static_cast<std::int64_t>(chunk + 1) * page_tokens_ <= limit) {
    const auto ctoks = prompt.subspan(chunk * page_tokens_,
                                      static_cast<std::size_t>(page_tokens_));
    const std::uint64_t h2 = extend_hash(h, ctoks);
    const auto it = cache_.find(h2);
    // An evicted entry stops the resident walk: a real match would have to
    // fault a page back in, which is pool demand, not a discount.
    if (it == cache_.end() || it->second.page < 0 ||
        !std::equal(it->second.tokens.begin(), it->second.tokens.end(),
                    ctoks.begin(), ctoks.end())) {
      break;
    }
    ++pr.full_pages_resident;
    if (page_ref_[static_cast<std::size_t>(it->second.page)] == 1) {
      ++pr.new_holds;
    }
    pr.tokens += page_tokens_;
    h = h2;
    ++chunk;
  }
  return pr;
}

std::int64_t KVArena::shared_held_pages() const {
  std::int64_t n = 0;
  for (std::int64_t p = 0; p < pages_; ++p) {
    if (page_owner_[static_cast<std::size_t>(p)] != 0 &&
        page_ref_[static_cast<std::size_t>(p)] >= 2) {
      ++n;
    }
  }
  return n;
}

std::span<const float> KVArena::keys(std::int64_t layer, std::int64_t slot,
                                     std::int64_t head) const {
  check_slot(layer, slot);
  const auto len = len_at(layer, slot);
  if (len == 0) return {};
  if (len > page_tokens_) {
    throw std::logic_error(
        "KVArena::keys: multi-page chain (gather via the block table)");
  }
  const auto page = table_[static_cast<std::size_t>(slot)][0];
  return {k_.data() + page_base(layer, page, head),
          static_cast<std::size_t>(len * head_dim_)};
}

std::span<const float> KVArena::values(std::int64_t layer, std::int64_t slot,
                                       std::int64_t head) const {
  check_slot(layer, slot);
  const auto len = len_at(layer, slot);
  if (len == 0) return {};
  if (len > page_tokens_) {
    throw std::logic_error(
        "KVArena::values: multi-page chain (gather via the block table)");
  }
  const auto page = table_[static_cast<std::size_t>(slot)][0];
  return {v_.data() + page_base(layer, page, head),
          static_cast<std::size_t>(len * head_dim_)};
}

std::int64_t KVArena::export_slot(std::int64_t slot, std::vector<float>& k,
                                  std::vector<float>& v) const {
  check_slot(0, slot);
  const auto len = common_len(slot);
  const auto row = static_cast<std::size_t>(len * head_dim_);
  k.resize(static_cast<std::size_t>(layers_ * heads_) * row);
  v.resize(k.size());
  const auto& chain = table_[static_cast<std::size_t>(slot)];
  const auto hd = static_cast<std::size_t>(head_dim_);
  std::size_t off = 0;
  for (std::int64_t l = 0; l < layers_; ++l) {
    for (std::int64_t h = 0; h < heads_; ++h) {
      for (std::int64_t pos = 0; pos < len;) {
        const auto page = chain[static_cast<std::size_t>(pos / page_tokens_)];
        const auto run = std::min(page_tokens_ - pos % page_tokens_, len - pos);
        const std::size_t src =
            page_base(l, page, h) +
            static_cast<std::size_t>(pos % page_tokens_) * hd;
        std::memcpy(k.data() + off, k_.data() + src,
                    static_cast<std::size_t>(run) * hd * sizeof(float));
        std::memcpy(v.data() + off, v_.data() + src,
                    static_cast<std::size_t>(run) * hd * sizeof(float));
        off += static_cast<std::size_t>(run) * hd;
        pos += run;
      }
    }
  }
  return len;
}

void KVArena::import_slot(std::int64_t slot, std::span<const float> k,
                          std::span<const float> v, std::int64_t len) {
  check_slot(0, slot);
  if (len < 0 || len > max_seq_) {
    throw std::invalid_argument("KVArena::import_slot: bad length");
  }
  const auto row = static_cast<std::size_t>(len * head_dim_);
  const auto need = static_cast<std::size_t>(layers_ * heads_) * row;
  if (k.size() < need || v.size() < need) {
    throw std::invalid_argument("KVArena::import_slot: span too small");
  }
  auto& chain = table_[static_cast<std::size_t>(slot)];
  const auto needed = static_cast<std::size_t>(pages_needed(len));
  while (chain.size() > needed) {
    unref_page(chain.back());
    chain.pop_back();
  }
  for (std::size_t pi = 0; pi < needed; ++pi) {
    if (pi < chain.size()) {
      // An import is a divergent write as far as sharing is concerned.
      if (page_ref_[static_cast<std::size_t>(chain[pi])] > 1) {
        cow_split(slot, pi);
      }
    } else {
      const std::int32_t p = alloc_page();
      if (p < 0) throw std::length_error("KVArena::import_slot: out of pages");
      chain.push_back(p);
    }
  }
  const auto hd = static_cast<std::size_t>(head_dim_);
  std::size_t off = 0;
  for (std::int64_t l = 0; l < layers_; ++l) {
    for (std::int64_t h = 0; h < heads_; ++h) {
      for (std::int64_t pos = 0; pos < len;) {
        const auto page = chain[static_cast<std::size_t>(pos / page_tokens_)];
        const auto run = std::min(page_tokens_ - pos % page_tokens_, len - pos);
        const std::size_t dst =
            page_base(l, page, h) +
            static_cast<std::size_t>(pos % page_tokens_) * hd;
        std::memcpy(k_.data() + dst, k.data() + off,
                    static_cast<std::size_t>(run) * hd * sizeof(float));
        std::memcpy(v_.data() + dst, v.data() + off,
                    static_cast<std::size_t>(run) * hd * sizeof(float));
        off += static_cast<std::size_t>(run) * hd;
        pos += run;
      }
    }
    len_ref(l, slot) = len;
  }
}

void KVArena::export_page(std::int32_t page, std::int64_t rows,
                          std::vector<float>& k, std::vector<float>& v) const {
  if (page < 0 || page >= pages_) {
    throw std::invalid_argument("KVArena::export_page: page out of range");
  }
  if (rows < 0 || rows > page_tokens_) {
    throw std::invalid_argument("KVArena::export_page: bad row count");
  }
  const auto hd = static_cast<std::size_t>(head_dim_);
  const auto strip = static_cast<std::size_t>(rows) * hd;
  k.resize(static_cast<std::size_t>(layers_ * heads_) * strip);
  v.resize(k.size());
  std::size_t off = 0;
  for (std::int64_t l = 0; l < layers_; ++l) {
    for (std::int64_t h = 0; h < heads_; ++h) {
      const std::size_t src = page_base(l, page, h);
      std::memcpy(k.data() + off, k_.data() + src, strip * sizeof(float));
      std::memcpy(v.data() + off, v_.data() + src, strip * sizeof(float));
      off += strip;
    }
  }
}

void KVArena::import_page(std::int32_t page, std::int64_t rows,
                          std::span<const float> k, std::span<const float> v) {
  if (page < 0 || page >= pages_) {
    throw std::invalid_argument("KVArena::import_page: page out of range");
  }
  if (rows < 0 || rows > page_tokens_) {
    throw std::invalid_argument("KVArena::import_page: bad row count");
  }
  const auto hd = static_cast<std::size_t>(head_dim_);
  const auto strip = static_cast<std::size_t>(rows) * hd;
  const auto need = static_cast<std::size_t>(layers_ * heads_) * strip;
  if (k.size() < need || v.size() < need) {
    throw std::invalid_argument("KVArena::import_page: span too small");
  }
  std::size_t off = 0;
  for (std::int64_t l = 0; l < layers_; ++l) {
    for (std::int64_t h = 0; h < heads_; ++h) {
      const std::size_t dst = page_base(l, page, h);
      std::memcpy(k_.data() + dst, k.data() + off, strip * sizeof(float));
      std::memcpy(v_.data() + dst, v.data() + off, strip * sizeof(float));
      off += strip;
    }
  }
}

std::size_t KVArena::bytes_in_use() const {
  std::size_t rows = 0;
  for (std::int64_t s = 0; s < slots_; ++s) {
    if (!used_[static_cast<std::size_t>(s)]) continue;
    for (std::int64_t l = 0; l < layers_; ++l) {
      rows += static_cast<std::size_t>(len_at(l, s));
    }
  }
  return 2 * rows * static_cast<std::size_t>(heads_ * head_dim_) *
         sizeof(float);
}

std::uint64_t KVArena::layout_fingerprint() const {
  std::uint64_t h = kFnvBasis;
  for (const auto s : free_) h = mix(h, static_cast<std::uint64_t>(s));
  h = mix(h, 0xf5ee);
  for (const auto p : page_free_) h = mix(h, static_cast<std::uint64_t>(p));
  for (std::int64_t s = 0; s < slots_; ++s) {
    h = mix(h, used_[static_cast<std::size_t>(s)]);
    for (const auto p : table_[static_cast<std::size_t>(s)]) {
      h = mix(h, static_cast<std::uint64_t>(p));
    }
    h = mix(h, 0x51a7);
    for (std::int64_t l = 0; l < layers_; ++l) {
      h = mix(h, static_cast<std::uint64_t>(len_at(l, s)));
    }
  }
  return h;
}

}  // namespace dsinfer::kernels
