#include "kernels/kv_cache.h"

#include <cstring>
#include <stdexcept>

namespace dsinfer::kernels {

KVCache::KVCache(std::int64_t batch, std::int64_t heads, std::int64_t head_dim,
                 std::int64_t max_seq)
    : batch_(batch), heads_(heads), head_dim_(head_dim), max_seq_(max_seq) {
  const auto n = static_cast<std::size_t>(batch * heads * max_seq * head_dim);
  k_.reset(n);
  v_.reset(n);
}

float* KVCache::k_row(std::int64_t b, std::int64_t h, std::int64_t pos) {
  return k_.data() + ((b * heads_ + h) * max_seq_ + pos) * head_dim_;
}

float* KVCache::v_row(std::int64_t b, std::int64_t h, std::int64_t pos) {
  return v_.data() + ((b * heads_ + h) * max_seq_ + pos) * head_dim_;
}

void KVCache::append(std::span<const float> k, std::span<const float> v,
                     std::int64_t tokens) {
  const auto need = static_cast<std::size_t>(batch_ * tokens * heads_ * head_dim_);
  if (k.size() < need || v.size() < need) {
    throw std::invalid_argument("KVCache::append: span too small");
  }
  if (seq_len_ + tokens > max_seq_) {
    throw std::length_error("KVCache::append: exceeds max_seq");
  }
  for (std::int64_t b = 0; b < batch_; ++b) {
    for (std::int64_t t = 0; t < tokens; ++t) {
      const float* ksrc = k.data() + (b * tokens + t) * heads_ * head_dim_;
      const float* vsrc = v.data() + (b * tokens + t) * heads_ * head_dim_;
      for (std::int64_t h = 0; h < heads_; ++h) {
        std::memcpy(k_row(b, h, seq_len_ + t), ksrc + h * head_dim_,
                    static_cast<std::size_t>(head_dim_) * sizeof(float));
        std::memcpy(v_row(b, h, seq_len_ + t), vsrc + h * head_dim_,
                    static_cast<std::size_t>(head_dim_) * sizeof(float));
      }
    }
  }
  seq_len_ += tokens;
}

std::span<const float> KVCache::keys(std::int64_t b, std::int64_t h) const {
  const float* p = k_.data() + ((b * heads_ + h) * max_seq_) * head_dim_;
  return {p, static_cast<std::size_t>(seq_len_ * head_dim_)};
}

std::span<const float> KVCache::values(std::int64_t b, std::int64_t h) const {
  const float* p = v_.data() + ((b * heads_ + h) * max_seq_) * head_dim_;
  return {p, static_cast<std::size_t>(seq_len_ * head_dim_)};
}

void KVCache::export_state(std::span<float> out_k,
                           std::span<float> out_v) const {
  const auto need =
      static_cast<std::size_t>(batch_ * heads_ * seq_len_ * head_dim_);
  if (out_k.size() < need || out_v.size() < need) {
    throw std::invalid_argument("KVCache::export_state: span too small");
  }
  std::size_t off = 0;
  for (std::int64_t b = 0; b < batch_; ++b) {
    for (std::int64_t h = 0; h < heads_; ++h) {
      const auto rows = static_cast<std::size_t>(seq_len_ * head_dim_);
      std::memcpy(out_k.data() + off, keys(b, h).data(), rows * sizeof(float));
      std::memcpy(out_v.data() + off, values(b, h).data(),
                  rows * sizeof(float));
      off += rows;
    }
  }
}

void KVCache::import_state(std::span<const float> k, std::span<const float> v,
                           std::int64_t seq_len) {
  if (seq_len < 0 || seq_len > max_seq_) {
    throw std::invalid_argument("KVCache::import_state: bad seq_len");
  }
  const auto need =
      static_cast<std::size_t>(batch_ * heads_ * seq_len * head_dim_);
  if (k.size() < need || v.size() < need) {
    throw std::invalid_argument("KVCache::import_state: span too small");
  }
  seq_len_ = seq_len;
  std::size_t off = 0;
  for (std::int64_t b = 0; b < batch_; ++b) {
    for (std::int64_t h = 0; h < heads_; ++h) {
      const auto rows = static_cast<std::size_t>(seq_len * head_dim_);
      std::memcpy(k_row(b, h, 0), k.data() + off, rows * sizeof(float));
      std::memcpy(v_row(b, h, 0), v.data() + off, rows * sizeof(float));
      off += rows;
    }
  }
}

std::size_t KVCache::bytes_in_use() const {
  return 2 * static_cast<std::size_t>(batch_ * heads_ * seq_len_ * head_dim_) *
         sizeof(float);
}

}  // namespace dsinfer::kernels
