// GeMM family for linear layers: y[m, out] = x[m, in] * W[out, in]^T + bias.
//
// Three implementations reproduce the paper's Sec. III trade-off:
//  * linear_ref      — triple loop; numerical ground truth for tests.
//  * linear_blocked  — cache-blocked, throughput-oriented (the "cuBLAS"
//                      stand-in: efficient at large m, indifferent to small m).
//  * linear_sbi      — SBI-GeMM analog for skinny activations (small m):
//                      output-dimension tiling so each tile streams a
//                      contiguous pre-packed weight panel exactly once
//                      (Sec. III.C tiling + full-cache-line layout), with an
//                      optional split along the input dimension for small
//                      output dims (the paper's two-kernel reduction variant).
#pragma once

#include <cstdint>
#include <span>

#include "util/aligned_buffer.h"

namespace dsinfer::kernels {

// Reference GeMM. W is row-major [out, in]; bias may be empty.
void linear_ref(std::span<const float> x, std::span<const float> w,
                std::span<const float> bias, std::span<float> y,
                std::int64_t m, std::int64_t in, std::int64_t out);

// Cache-blocked GeMM for large batches. Same signature/semantics as
// linear_ref; results are bitwise different only through FP reassociation.
void linear_blocked(std::span<const float> x, std::span<const float> w,
                    std::span<const float> bias, std::span<float> y,
                    std::int64_t m, std::int64_t in, std::int64_t out);

// Pre-packed weight panels for SBI-GeMM. Packing transposes W into panels of
// kPanelOut output rows whose input columns are interleaved so that a
// streaming read touches full cache lines (paper Fig. 1(b)).
class PackedWeight {
 public:
  static constexpr std::int64_t kPanelOut = 8;

  PackedWeight() = default;
  // Packs row-major W[out, in].
  PackedWeight(std::span<const float> w, std::int64_t out, std::int64_t in);

  std::int64_t out() const { return out_; }
  std::int64_t in() const { return in_; }
  bool empty() const { return data_.empty(); }
  std::span<const float> panel(std::int64_t panel_idx) const;
  std::int64_t num_panels() const { return num_panels_; }

 private:
  AlignedBuffer<float> data_;
  std::int64_t out_ = 0;
  std::int64_t in_ = 0;
  std::int64_t num_panels_ = 0;
};

// SBI-GeMM: optimized for m <= ~8. Uses PackedWeight panels; parallelizes
// across output tiles via the global thread pool; splits the input dimension
// in two reduction passes when `out` is too small to occupy all workers
// (paper Sec. III.C.1, two-kernel variant).
void linear_sbi(std::span<const float> x, const PackedWeight& w,
                std::span<const float> bias, std::span<float> y,
                std::int64_t m);

// The paper's two-kernel variant (Sec. III.C.1): when the output dimension
// is too small to fill the machine with output tiles, the input dimension is
// split into `input_splits` partial reductions computed in parallel and then
// summed (the second "kernel"). Numerically a reassociation of linear_sbi.
void linear_sbi_split(std::span<const float> x, const PackedWeight& w,
                      std::span<const float> bias, std::span<float> y,
                      std::int64_t m, std::int64_t input_splits);

// Dispatcher used by the transformer layer: picks SBI for small m when a
// packed weight is available, blocked otherwise.
enum class GemmKind { kReference, kBlocked, kSbi };

// Plain C[m,n] = A[m,k] * B[k,n] (row-major, no transpose); used by
// attention score/context products and by the sparse-einsum MoE baseline.
void matmul(std::span<const float> a, std::span<const float> b,
            std::span<float> c, std::int64_t m, std::int64_t k,
            std::int64_t n);

}  // namespace dsinfer::kernels
