// Rotary position embeddings (RoPE) — the position encoding GPT-J and
// GPT-NeoX (Table I) use instead of learned position vectors. Rotates each
// consecutive (even, odd) pair of head-dim features by an angle proportional
// to the absolute position, so relative offsets appear as phase differences
// in the attention dot products.
#pragma once

#include <cstdint>
#include <span>

namespace dsinfer::kernels {

// Applies RoPE in place to q and k laid out [tokens, heads * head_dim].
// Token i of the block sits at absolute position `first_pos + i / ... `:
// for batched blocks, positions[i] gives the absolute position of row i.
// head_dim must be even.
void apply_rope(std::span<float> qk, std::span<const std::int32_t> positions,
                std::int64_t heads, std::int64_t head_dim,
                float theta = 10000.0f);

// Reference per-element rotation used by tests: returns the rotated pair
// (x0', x1') of features (2j, 2j+1) at position p.
void rope_rotate_pair(float x0, float x1, std::int64_t pos, std::int64_t j,
                      std::int64_t head_dim, float theta, float* out0,
                      float* out1);

}  // namespace dsinfer::kernels
