#include "kernels/transformer_layer.h"

#include <cmath>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <vector>

#include "kernels/attention.h"
#include "kernels/elementwise.h"
#include "kernels/rope.h"
#include "kernels/simd.h"
#include "util/thread_pool.h"

namespace dsinfer::kernels {

namespace {

Tensor random_tensor(Rng& rng, std::vector<std::int64_t> shape, float stddev) {
  Tensor t(std::move(shape));
  if (stddev > 0.0f) {
    rng.fill_normal(t.span(), 0.0f, stddev);
  } else {
    t.zero();
  }
  return t;
}

// Dispatches a bias-free linear layer through the policy's GeMM/dtype.
void run_linear(std::span<const float> x, const Tensor& w,
                const PackedWeight& packed, const QuantizedWeight& quant,
                std::span<float> y, std::int64_t m, std::int64_t in,
                std::int64_t out, const KernelPolicy& policy) {
  if (policy.dtype == Dtype::kINT8) {
    linear_int8(x, quant, {}, y, m);
    return;
  }
  switch (policy.gemm) {
    case GemmKind::kReference:
      linear_ref(x, w.span(), {}, y, m, in, out);
      break;
    case GemmKind::kBlocked:
      linear_blocked(x, w.span(), {}, y, m, in, out);
      break;
    case GemmKind::kSbi:
      linear_sbi(x, packed, {}, y, m);
      break;
  }
}

// Fusion region 1 plus the QKV split: fills scratch.q/k/v from x. Shared by
// the uniform (KVCache) and ragged (KVArena) entry points; RoPE and the
// cache append differ between them and stay with the callers.
void layer_front(const LayerWeights& w, std::span<const float> x,
                 std::int64_t tokens, const KernelPolicy& policy,
                 LayerScratch& scratch) {
  const std::int64_t H = w.hidden;
  if (policy.fuse_elementwise) {
    layernorm(x, w.ln1_g.span(), w.ln1_b.span(), scratch.normed.span(), tokens,
              H);
  } else {
    layernorm_unfused(x, w.ln1_g.span(), w.ln1_b.span(), scratch.normed.span(),
                      tokens, H);
  }
  run_linear(scratch.normed.span(), w.w_qkv, w.p_qkv, w.q_qkv,
             scratch.qkv.span(), tokens, H, 3 * H, policy);

  // Split QKV + add projection bias (part of the paper's fused region 2
  // "transposition plus attention": in the fused path this is the only data
  // reshuffle before attention; the unfused path pays it as well). Tokens
  // shard across the pool — this sweep sits between two parallel GeMMs and
  // would otherwise serialize a full pass over the QKV tensor.
  const float* bq = w.b_qkv.data();
  const std::size_t split_grain = static_cast<std::size_t>(
      std::max<std::int64_t>(1, (1 << 15) / std::max<std::int64_t>(1, 3 * H)));
  ThreadPool::global().parallel_for(
      0, static_cast<std::size_t>(tokens), split_grain,
      [&](std::size_t tb, std::size_t te) {
        for (std::size_t t = tb; t < te; ++t) {
          const float* src = scratch.qkv.data() + t * 3 * H;
          simd::add_bias(src, bq, scratch.q.data() + t * H, H);
          simd::add_bias(src + H, bq + H, scratch.k.data() + t * H, H);
          simd::add_bias(src + 2 * H, bq + 2 * H, scratch.v.data() + t * H, H);
        }
      });
}

// Fusion regions 3/4: attention output projection + residual, then the FFN.
// Consumes scratch.attn, updates x in place. Shared by both entry points.
void layer_tail(const LayerWeights& w, std::span<float> x, std::int64_t tokens,
                const KernelPolicy& policy, LayerScratch& scratch) {
  const std::int64_t H = w.hidden;
  const std::int64_t F = w.ffn;
  run_linear(scratch.attn.span(), w.w_attn_out, w.p_attn_out, w.q_attn_out,
             scratch.proj.span(), tokens, H, H, policy);
  if (policy.fuse_elementwise) {
    bias_residual(scratch.proj.span(), w.b_attn_out.span(), x, x, tokens, H);
  } else {
    // The pass-per-micro-op baseline cannot alias output and residual: it
    // accumulates into the GeMM output and copies back (one more sweep, as a
    // framework's out-of-place add would incur).
    bias_residual_unfused(scratch.proj.span(), w.b_attn_out.span(), x,
                          scratch.proj.span(), tokens, H);
    std::memcpy(x.data(), scratch.proj.data(),
                static_cast<std::size_t>(tokens * H) * sizeof(float));
  }

  if (policy.fuse_elementwise) {
    layernorm(x, w.ln2_g.span(), w.ln2_b.span(), scratch.normed.span(), tokens,
              H);
  } else {
    layernorm_unfused(x, w.ln2_g.span(), w.ln2_b.span(), scratch.normed.span(),
                      tokens, H);
  }
  run_linear(scratch.normed.span(), w.w_fc1, w.p_fc1, w.q_fc1,
             scratch.ffn1.span(), tokens, H, F, policy);
  if (policy.fuse_elementwise) {
    bias_gelu(scratch.ffn1.span(), w.b_fc1.span(), scratch.act.span(), tokens,
              F);
  } else {
    bias_gelu_unfused(scratch.ffn1.span(), w.b_fc1.span(), scratch.act.span(),
                      tokens, F);
  }

  run_linear(scratch.act.span(), w.w_fc2, w.p_fc2, w.q_fc2,
             scratch.ffn2.span(), tokens, F, H, policy);
  if (policy.fuse_elementwise) {
    bias_residual(scratch.ffn2.span(), w.b_fc2.span(), x, x, tokens, H);
  } else {
    bias_residual_unfused(scratch.ffn2.span(), w.b_fc2.span(), x,
                          scratch.ffn2.span(), tokens, H);
    std::memcpy(x.data(), scratch.ffn2.data(),
                static_cast<std::size_t>(tokens * H) * sizeof(float));
  }
}

}  // namespace

void LayerWeights::init_random(Rng& rng, std::int64_t hidden_dim,
                               std::int64_t num_heads, std::int64_t ffn_dim) {
  if (hidden_dim % num_heads != 0) {
    throw std::invalid_argument("hidden must be divisible by heads");
  }
  hidden = hidden_dim;
  heads = num_heads;
  ffn = ffn_dim;
  const float ws = 0.02f / std::sqrt(static_cast<float>(hidden) / 64.0f);

  ln1_g.reshape({hidden});
  ln1_g.fill(1.0f);
  ln1_b.reshape({hidden});
  ln1_b.zero();
  ln2_g.reshape({hidden});
  ln2_g.fill(1.0f);
  ln2_b.reshape({hidden});
  ln2_b.zero();

  w_qkv = random_tensor(rng, {3 * hidden, hidden}, ws);
  b_qkv = random_tensor(rng, {3 * hidden}, 0.0f);
  w_attn_out = random_tensor(rng, {hidden, hidden}, ws);
  b_attn_out = random_tensor(rng, {hidden}, 0.0f);
  w_fc1 = random_tensor(rng, {ffn, hidden}, ws);
  b_fc1 = random_tensor(rng, {ffn}, 0.01f);
  w_fc2 = random_tensor(rng, {hidden, ffn}, ws);
  b_fc2 = random_tensor(rng, {hidden}, 0.0f);
}

void LayerWeights::prepare(const KernelPolicy& policy) {
  if (policy.dtype == Dtype::kINT8) {
    if (q_qkv.empty()) {
      q_qkv = QuantizedWeight(w_qkv.span(), 3 * hidden, hidden);
      q_attn_out = QuantizedWeight(w_attn_out.span(), hidden, hidden);
      q_fc1 = QuantizedWeight(w_fc1.span(), ffn, hidden);
      q_fc2 = QuantizedWeight(w_fc2.span(), hidden, ffn);
    }
  } else if (policy.gemm == GemmKind::kSbi) {
    if (p_qkv.empty()) {
      p_qkv = PackedWeight(w_qkv.span(), 3 * hidden, hidden);
      p_attn_out = PackedWeight(w_attn_out.span(), hidden, hidden);
      p_fc1 = PackedWeight(w_fc1.span(), ffn, hidden);
      p_fc2 = PackedWeight(w_fc2.span(), hidden, ffn);
    }
  }
}

std::size_t LayerWeights::param_count() const {
  return static_cast<std::size_t>(3 * hidden * hidden + 3 * hidden +  // qkv
                                  hidden * hidden + hidden +          // out
                                  ffn * hidden + ffn +                // fc1
                                  hidden * ffn + hidden +             // fc2
                                  4 * hidden);                        // LN
}

void LayerScratch::ensure(std::int64_t tokens, std::int64_t hidden,
                          std::int64_t ffn) {
  if (normed.numel() >= tokens * hidden && ffn1.numel() >= tokens * ffn) return;
  normed.reshape({tokens, hidden});
  qkv.reshape({tokens, 3 * hidden});
  q.reshape({tokens, hidden});
  k.reshape({tokens, hidden});
  v.reshape({tokens, hidden});
  attn.reshape({tokens, hidden});
  proj.reshape({tokens, hidden});
  ffn1.reshape({tokens, ffn});
  act.reshape({tokens, ffn});
  ffn2.reshape({tokens, hidden});
}

void transformer_layer_forward(const LayerWeights& w, KVCache& cache,
                               std::span<float> x, std::int64_t batch,
                               std::int64_t q_len, const KernelPolicy& policy,
                               LayerScratch& scratch) {
  const std::int64_t tokens = batch * q_len;
  const std::int64_t H = w.hidden;
  const std::int64_t F = w.ffn;
  if (x.size() < static_cast<std::size_t>(tokens * H)) {
    throw std::invalid_argument("layer forward: x span too small");
  }
  scratch.ensure(tokens, H, F);

  // Policy-pinned ISA (scalar/AVX2 A/B runs); kAuto leaves dispatch alone.
  std::optional<simd::IsaOverrideGuard> isa_guard;
  if (policy.isa != simd::KernelIsa::kAuto) isa_guard.emplace(policy.isa);

  layer_front(w, x, tokens, policy, scratch);
  if (policy.use_rope) {
    // Rotate Q and K by their absolute positions before caching; the cached
    // keys then carry their rotation permanently, which is what makes RoPE
    // compatible with incremental decoding.
    const std::int64_t past = cache.seq_len();
    std::vector<std::int32_t> positions(static_cast<std::size_t>(tokens));
    for (std::int64_t b = 0; b < batch; ++b) {
      for (std::int64_t t = 0; t < q_len; ++t) {
        positions[static_cast<std::size_t>(b * q_len + t)] =
            static_cast<std::int32_t>(past + t);
      }
    }
    apply_rope(scratch.q.span(), positions, w.heads, H / w.heads);
    apply_rope(scratch.k.span(), positions, w.heads, H / w.heads);
  }
  cache.append(scratch.k.span(), scratch.v.span(), q_len);

  // ---- Fusion region 2: attention ----
  if (policy.fuse_attention) {
    attention_fused(scratch.q.span(), cache, scratch.attn.span(), q_len,
                    policy.causal);
  } else {
    attention_unfused(scratch.q.span(), cache, scratch.attn.span(), q_len,
                      policy.causal);
  }

  layer_tail(w, x, tokens, policy, scratch);
}

void transformer_layer_forward_ragged(const LayerWeights& w, KVArena& arena,
                                      std::int64_t layer,
                                      std::span<const std::int32_t> slots,
                                      std::span<const std::int32_t> positions,
                                      std::span<float> x,
                                      const KernelPolicy& policy,
                                      LayerScratch& scratch) {
  const std::int64_t tokens = static_cast<std::int64_t>(slots.size());
  const std::int64_t H = w.hidden;
  const std::int64_t F = w.ffn;
  if (tokens < 1 || positions.size() != slots.size()) {
    throw std::invalid_argument("ragged layer forward: bad slots/positions");
  }
  if (x.size() < static_cast<std::size_t>(tokens * H)) {
    throw std::invalid_argument("ragged layer forward: x span too small");
  }
  scratch.ensure(tokens, H, F);

  std::optional<simd::IsaOverrideGuard> isa_guard;
  if (policy.isa != simd::KernelIsa::kAuto) isa_guard.emplace(policy.isa);

  layer_front(w, x, tokens, policy, scratch);
  if (policy.use_rope) {
    apply_rope(scratch.q.span(), positions, w.heads, H / w.heads);
    apply_rope(scratch.k.span(), positions, w.heads, H / w.heads);
  }

  // Append each slot's run of new positions. Rows for one slot must be
  // contiguous, in position order, and land exactly at the slot's current
  // length — the scheduler guarantees this; misuse throws.
  std::int64_t r0 = 0;
  while (r0 < tokens) {
    std::int64_t r1 = r0 + 1;
    while (r1 < tokens &&
           slots[static_cast<std::size_t>(r1)] ==
               slots[static_cast<std::size_t>(r0)]) {
      ++r1;
    }
    const std::int64_t slot = slots[static_cast<std::size_t>(r0)];
    if (positions[static_cast<std::size_t>(r0)] != arena.seq_len(layer, slot)) {
      throw std::invalid_argument(
          "ragged layer forward: positions must extend the slot history");
    }
    const auto off = static_cast<std::size_t>(r0 * H);
    const auto n = static_cast<std::size_t>((r1 - r0) * H);
    arena.append(layer, slot, scratch.k.span().subspan(off, n),
                 scratch.v.span().subspan(off, n), r1 - r0);
    r0 = r1;
  }

  // Fusion region 2, ragged: always the fused form — the unfused variant
  // exists only for the framework-baseline A/B, which serves uniform batches.
  attention_fused_ragged(scratch.q.span(), arena, layer, slots, positions,
                         scratch.attn.span());

  layer_tail(w, x, tokens, policy, scratch);
}

}  // namespace dsinfer::kernels
