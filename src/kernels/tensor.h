// Dense row-major FP32 tensor with aligned storage.
//
// The functional engine deliberately keeps a single storage dtype (FP32) and
// expresses lower-precision paths (INT8 GeMM, simulated FP16 bandwidth) at
// the kernel level, which is where the paper's optimizations live too.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "util/aligned_buffer.h"

namespace dsinfer {

class Tensor {
 public:
  Tensor() = default;

  explicit Tensor(std::vector<std::int64_t> shape) { reshape(std::move(shape)); }

  Tensor(std::initializer_list<std::int64_t> shape)
      : Tensor(std::vector<std::int64_t>(shape)) {}

  Tensor(Tensor&&) noexcept = default;
  Tensor& operator=(Tensor&&) noexcept = default;
  Tensor(const Tensor&) = delete;
  Tensor& operator=(const Tensor&) = delete;

  // Re-allocates when the element count changes; contents become undefined.
  void reshape(std::vector<std::int64_t> shape);

  // Deep copy helper (copy ctor is deleted to make copies explicit).
  Tensor clone() const;

  void fill(float value);
  void zero() { fill(0.0f); }

  const std::vector<std::int64_t>& shape() const { return shape_; }
  std::int64_t dim(std::size_t i) const { return shape_[i]; }
  std::size_t rank() const { return shape_.size(); }
  std::int64_t numel() const { return numel_; }

  float* data() { return buf_.data(); }
  const float* data() const { return buf_.data(); }
  std::span<float> span() { return buf_.span().subspan(0, numel_); }
  std::span<const float> span() const { return buf_.span().subspan(0, numel_); }

  float& at(std::int64_t i) { return buf_[static_cast<std::size_t>(i)]; }
  float at(std::int64_t i) const { return buf_[static_cast<std::size_t>(i)]; }

  // Debug string like "[2, 768]".
  std::string shape_str() const;

 private:
  std::vector<std::int64_t> shape_;
  std::int64_t numel_ = 0;
  AlignedBuffer<float> buf_;
};

// Max |a-b| over two equal-sized spans; used pervasively by equivalence tests.
float max_abs_diff(std::span<const float> a, std::span<const float> b);

}  // namespace dsinfer
