// Per-layer key/value activation cache for autoregressive generation
// (paper Sec. II.d, IV-B). Layout is [batch, heads, max_seq, head_dim] so
// the per-(sequence, head) history is contiguous — attention streams it once
// per generated token, which is exactly the reuse pattern the paper's
// offloading policy (Sec. IV-C.2) exploits.
#pragma once

#include <cstdint>
#include <span>

#include "util/aligned_buffer.h"

namespace dsinfer::kernels {

class KVCache {
 public:
  KVCache() = default;
  KVCache(std::int64_t batch, std::int64_t heads, std::int64_t head_dim,
          std::int64_t max_seq);

  // Appends `tokens` new positions per sequence. k/v are laid out
  // [batch, tokens, heads * head_dim] (projection output order).
  void append(std::span<const float> k, std::span<const float> v,
              std::int64_t tokens);

  // Contiguous [seq_len, head_dim] history for one (sequence, head).
  std::span<const float> keys(std::int64_t b, std::int64_t h) const;
  std::span<const float> values(std::int64_t b, std::int64_t h) const;

  std::int64_t seq_len() const { return seq_len_; }
  std::int64_t batch() const { return batch_; }
  std::int64_t heads() const { return heads_; }
  std::int64_t head_dim() const { return head_dim_; }
  std::int64_t max_seq() const { return max_seq_; }

  // Bytes currently live (both K and V); drives offload decisions.
  std::size_t bytes_in_use() const;

  // Drops all cached positions (cache capacity is retained).
  void reset() { seq_len_ = 0; }

  // Snapshot/restore for host offloading (Sec. IV-C.2): copies the cached
  // positions to/from a compact [batch, heads, seq_len, head_dim] layout.
  // Both spans must hold batch*heads*seq_len*head_dim floats.
  void export_state(std::span<float> out_k, std::span<float> out_v) const;
  void import_state(std::span<const float> k, std::span<const float> v,
                    std::int64_t seq_len);

 private:
  float* k_row(std::int64_t b, std::int64_t h, std::int64_t pos);
  float* v_row(std::int64_t b, std::int64_t h, std::int64_t pos);

  AlignedBuffer<float> k_;
  AlignedBuffer<float> v_;
  std::int64_t batch_ = 0;
  std::int64_t heads_ = 0;
  std::int64_t head_dim_ = 0;
  std::int64_t max_seq_ = 0;
  std::int64_t seq_len_ = 0;
};

}  // namespace dsinfer::kernels
