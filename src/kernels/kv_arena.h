// Paged key/value storage shared by the sequences of a continuous batch
// (ISSUE 4 slots, ISSUE 7 paging). Where KVCache stores one rigid
// [batch, heads, max_seq, head_dim] block, the arena holds `slots`
// independent per-sequence sequences, each backed by a chain of fixed-size
// pages through a per-slot block table:
//
//   slot ──table_[slot]──▶ [page, page, page, ...]        (one chain,
//                             │                            all layers)
//   page ──────────────▶ [layer][head][page_tokens, head_dim]
//
// acquire() reserves nothing but the slot id; append() faults pages in on
// demand, so admission capacity is a function of tokens actually written,
// not worst-case max_seq. Within a page, each (layer, head) owns a
// contiguous [page_tokens, head_dim] strip — the same stream-once-per-token
// pattern attention reads, now gathered page by page.
//
// On top of paging sits a refcounted, hash-consed copy-on-write prefix
// cache: full prompt pages are published under the FNV-1a chain hash of all
// tokens they cover (equal keys imply equal *full* preceding context, hence
// bit-identical K/V), matched by later admissions (including a partial match
// of the leading rows of a published page), CoW-split on the first divergent
// append, and LRU-evicted to a host tier (spill bytes reported through
// set_spill_sink, accounted by zero::ArenaOffloadLedger).
//
// The 5-argument constructor degenerates to the pre-paging behavior exactly
// (page_tokens == max_seq, pages == slots, cache off): one page per slot,
// append never runs out of pages, and keys()/values() stay contiguous.
//
// Determinism: every allocation, match, split, and eviction decision is a
// pure function of token ids and call order — never of addresses — so
// tensor-parallel head-slice shards driven with the same calls keep mirrored
// free lists and block tables by construction (the PR 5 slot argument,
// extended to pages).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "util/aligned_buffer.h"

namespace dsinfer::kernels {

class KVArena {
 public:
  KVArena() = default;
  // Strip-compatible: one max_seq-sized page per slot, prefix cache off.
  KVArena(std::int64_t layers, std::int64_t slots, std::int64_t heads,
          std::int64_t head_dim, std::int64_t max_seq);
  // Paged: `page_tokens` rows per page per (layer, head); `pages` in the
  // pool (0 = enough for every slot at max_seq, i.e. no oversubscription);
  // `prefix_cache` enables cross-slot prompt dedup.
  KVArena(std::int64_t layers, std::int64_t slots, std::int64_t heads,
          std::int64_t head_dim, std::int64_t max_seq,
          std::int64_t page_tokens, std::int64_t pages, bool prefix_cache);

  // Slot lifecycle. acquire() returns -1 when every slot is in use; release
  // drops the slot's page references (shared pages survive for the prefix
  // cache) and makes the slot reusable (LIFO, cache-warm).
  std::int64_t acquire();
  void release(std::int64_t slot);
  bool in_use(std::int64_t slot) const;

  std::int64_t layers() const { return layers_; }
  std::int64_t slots() const { return slots_; }
  std::int64_t heads() const { return heads_; }
  std::int64_t head_dim() const { return head_dim_; }
  std::int64_t max_seq() const { return max_seq_; }
  std::int64_t free_slots() const {
    return static_cast<std::int64_t>(free_.size());
  }
  std::int64_t active_slots() const { return slots_ - free_slots(); }
  // Lifetime acquire count — the slot-churn signal obs exports.
  std::int64_t total_acquires() const { return total_acquires_; }

  // Paging geometry and occupancy.
  bool paged() const { return page_tokens_ < max_seq_; }
  bool prefix_cache_enabled() const { return prefix_cache_; }
  std::int64_t page_tokens() const { return page_tokens_; }
  std::int64_t total_pages() const { return pages_; }
  std::int64_t free_pages() const {
    return static_cast<std::int64_t>(page_free_.size());
  }
  std::int64_t pages_in_use() const { return pages_ - free_pages(); }
  // Pages held only by the prefix cache (refcount 1, resident): reclaimable
  // by LRU eviction, so admission may count them as available.
  std::int64_t evictable_pages() const;
  std::int64_t pages_needed(std::int64_t tokens) const {
    return tokens <= 0 ? 0 : (tokens + page_tokens_ - 1) / page_tokens_;
  }
  // The slot's block table (page ids, chain order) — mirroring checks.
  std::span<const std::int32_t> slot_pages(std::int64_t slot) const;
  std::int32_t page_refcount(std::int32_t page) const;

  // Cached positions of `slot` at `layer`. Layers advance one by one inside
  // an engine iteration; between iterations every layer agrees, and the
  // layer-0 value is that common logical sequence length.
  std::int64_t seq_len(std::int64_t layer, std::int64_t slot) const;
  std::int64_t seq_len(std::int64_t slot) const { return seq_len(0, slot); }

  // Appends `tokens` new positions to `slot` at `layer`. k/v are laid out
  // [tokens, heads * head_dim] (projection output order, matching
  // KVCache::append for batch = 1). Faults missing pages in (LRU-evicting
  // cold prefix pages when the pool is empty) and CoW-splits shared pages
  // before the first divergent write. Throws std::length_error past max_seq
  // ("exceeds max_seq") or when the pool is exhausted ("out of pages").
  void append(std::int64_t layer, std::int64_t slot, std::span<const float> k,
              std::span<const float> v, std::int64_t tokens);

  // Rolls `slot` back to at most `len` cached positions at every layer —
  // restores a consistent cross-layer state after a fault interrupts an
  // iteration mid-stack (layers past the fault simply never advanced).
  // Pages past the surviving length return to the pool.
  void rewind(std::int64_t slot, std::int64_t len);

  // ---- Prefix cache (no-ops returning 0 unless enabled) ----

  // Matches the longest published prefix of `prompt` into fresh `slot`
  // (which must have length 0): shares full published pages, then at most
  // the leading rows of one published child page (the partial match that
  // CoW protects). At least one prompt token is always left for the caller
  // to prefill (the logits row). Sets every layer's length to the matched
  // count and returns it.
  std::int64_t match_prefix(std::int64_t slot,
                            std::span<const std::int32_t> prompt);
  // Publishes `slot`'s fully-written prompt pages (chunks covered by both
  // the slot history and `prompt`) under their chain hashes. Returns how
  // many new pages were published.
  std::int64_t publish_prefix(std::int64_t slot,
                              std::span<const std::int32_t> prompt);
  // Read-only probe: how many leading tokens of `prompt` the cache could
  // serve (resident or evicted-to-host). Fleet routing consults this —
  // cache *contents*, not a hash — without touching LRU state.
  std::int64_t cached_prefix_tokens(std::span<const std::int32_t> prompt) const;

  // Admission-budget probe (read-only, no LRU touch): the *resident* full
  // prefix pages a match_prefix would share, and how many of those are
  // currently unheld (refcount 1 — the match converts an evictable page into
  // a held one). A slot never writes its fully-matched pages (its appends
  // start past them), so its private-page demand is exactly
  // pages_needed(budget) - full_pages_resident; RaggedDecoder::can_admit
  // budgets that plus `new_holds` against the pool.
  struct PrefixProbe {
    std::int64_t tokens = 0;               // resident full-page match length
    std::int64_t full_pages_resident = 0;  // shared pages already in the pool
    std::int64_t new_holds = 0;            // evictable -> held conversions
  };
  PrefixProbe probe_prefix(std::span<const std::int32_t> prompt) const;
  // Pages owned by the cache AND referenced by at least one live chain
  // (refcount >= 2): pinned — not evictable, and excluded from every
  // holder's private-page budget.
  std::int64_t shared_held_pages() const;

  // Host-tier spill accounting: sink(bytes_out, bytes_in) fires on every
  // LRU eviction (out) and re-fetch (in). The arena itself stays
  // obs-agnostic; RaggedDecoder bridges this to metrics and the offload
  // ledger.
  void set_spill_sink(std::function<void(std::size_t, std::size_t)> sink) {
    spill_sink_ = std::move(sink);
  }

  std::int64_t prefix_lookups() const { return prefix_lookups_; }
  std::int64_t prefix_hits() const { return prefix_hits_; }
  std::int64_t prefix_hit_tokens() const { return prefix_hit_tokens_; }
  std::int64_t cow_splits() const { return cow_splits_; }
  std::int64_t evictions() const { return evictions_; }
  std::int64_t refetches() const { return refetches_; }
  std::size_t spill_bytes_out() const { return spill_bytes_out_; }
  std::size_t spill_bytes_in() const { return spill_bytes_in_; }

  // Contiguous [seq_len, head_dim] history for one (layer, slot, head):
  // valid while the chain fits one page (always true in strip mode); throws
  // std::logic_error on a multi-page chain — attention gathers through the
  // block table instead.
  std::span<const float> keys(std::int64_t layer, std::int64_t slot,
                              std::int64_t head) const;
  std::span<const float> values(std::int64_t layer, std::int64_t slot,
                                std::int64_t head) const;

  // Unchecked hot-path page bases for the ragged attention gather:
  // [page_tokens, head_dim] rows of (layer, head) within `page`.
  const float* page_k_data(std::int64_t layer, std::int32_t page,
                           std::int64_t head) const {
    return k_.data() + page_base(layer, page, head);
  }
  const float* page_v_data(std::int64_t layer, std::int32_t page,
                           std::int64_t head) const {
    return v_.data() + page_base(layer, page, head);
  }

  // Bytes currently live (K and V) across in-use slots.
  std::size_t bytes_in_use() const;

  // Host offload round-trip for one in-use slot (ISSUE 5): export_slot packs
  // every layer's cached K/V history into `k`/`v` (resizing them to
  // layers * len * heads * head_dim floats, [layer, head, pos, head_dim]
  // strip order) and returns the common per-layer length; import_slot writes
  // the same packing back (CoW-splitting shared pages first — an import is a
  // divergent write as far as the cache is concerned). Both require every
  // layer of the slot to agree on seq_len (the steady state between engine
  // iterations).
  std::int64_t export_slot(std::int64_t slot, std::vector<float>& k,
                           std::vector<float>& v) const;
  void import_slot(std::int64_t slot, std::span<const float> k,
                   std::span<const float> v, std::int64_t len);

  // Page-granular pack/unpack for the offload ledger: the `rows` leading
  // positions of every (layer, head) strip of `page`, k/v each resized to
  // layers * heads * rows * head_dim floats. import_page restores identical
  // bytes in place (a round-trip, not a divergent write — no CoW), so
  // shared pages transfer once no matter how many chains reference them.
  void export_page(std::int32_t page, std::int64_t rows, std::vector<float>& k,
                   std::vector<float>& v) const;
  void import_page(std::int32_t page, std::int64_t rows,
                   std::span<const float> k, std::span<const float> v);

  // Order-sensitive digest of slot free list, page free list, block tables,
  // and lengths — the TP shard mirroring check.
  std::uint64_t layout_fingerprint() const;

 private:
  struct PrefixEntry {
    std::uint64_t key = 0;     // chain hash of every token through this page
    std::uint64_t parent = 0;  // chain hash before this page (children_ key)
    std::int32_t page = -1;    // resident page, -1 = evicted to host tier
    std::vector<std::int32_t> tokens;   // the tokens this page covers
    std::vector<float> host_k, host_v;  // host tier while evicted
    std::uint64_t last_use = 0;         // LRU clock
  };

  void check_slot(std::int64_t layer, std::int64_t slot) const;
  std::int64_t& len_ref(std::int64_t layer, std::int64_t slot) {
    return len_[static_cast<std::size_t>(layer * slots_ + slot)];
  }
  std::int64_t len_at(std::int64_t layer, std::int64_t slot) const {
    return len_[static_cast<std::size_t>(layer * slots_ + slot)];
  }
  std::int64_t common_len(std::int64_t slot) const;
  std::size_t page_base(std::int64_t layer, std::int32_t page,
                        std::int64_t head) const {
    return static_cast<std::size_t>(page) * page_floats_ +
           static_cast<std::size_t>((layer * heads_ + head) * page_tokens_ *
                                    head_dim_);
  }
  // Pops a free page (LRU-evicting cache-only pages when empty); -1 when
  // truly exhausted. The returned page has refcount 1 and no cache owner.
  std::int32_t alloc_page();
  void unref_page(std::int32_t page);
  bool evict_lru();
  bool ensure_resident(PrefixEntry& e);
  void cow_split(std::int64_t slot, std::size_t chain_idx);
  // Faults in / CoW-protects the pages covering rows [len, len+tokens).
  void prepare_rows(std::int64_t slot, std::int64_t len, std::int64_t tokens);

  std::int64_t layers_ = 0;
  std::int64_t slots_ = 0;
  std::int64_t heads_ = 0;
  std::int64_t head_dim_ = 0;
  std::int64_t max_seq_ = 0;
  std::int64_t page_tokens_ = 0;
  std::int64_t pages_ = 0;
  bool prefix_cache_ = false;
  std::size_t page_floats_ = 0;  // per page, per buffer (K or V)

  AlignedBuffer<float> k_;
  AlignedBuffer<float> v_;
  std::vector<std::int64_t> len_;   // [layers * slots]
  std::vector<std::uint8_t> used_;  // [slots]
  std::vector<std::int64_t> free_;  // slot free list, LIFO
  std::vector<std::vector<std::int32_t>> table_;  // per-slot page chains
  std::vector<std::int32_t> page_ref_;            // [pages]
  std::vector<std::uint64_t> page_owner_;  // cache key holding page (0=none)
  std::vector<std::int32_t> page_free_;    // page free list, LIFO

  std::unordered_map<std::uint64_t, PrefixEntry> cache_;
  // parent hash -> child entry keys, for the partial-page match.
  std::unordered_multimap<std::uint64_t, std::uint64_t> children_;
  std::uint64_t tick_ = 0;

  std::int64_t total_acquires_ = 0;
  std::int64_t prefix_lookups_ = 0;
  std::int64_t prefix_hits_ = 0;
  std::int64_t prefix_hit_tokens_ = 0;
  std::int64_t cow_splits_ = 0;
  std::int64_t evictions_ = 0;
  std::int64_t refetches_ = 0;
  std::size_t spill_bytes_out_ = 0;
  std::size_t spill_bytes_in_ = 0;
  std::function<void(std::size_t, std::size_t)> spill_sink_;
};

}  // namespace dsinfer::kernels
