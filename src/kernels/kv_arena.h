// Slot-granular key/value storage shared by the sequences of a continuous
// batch (ISSUE 4). Where KVCache stores one rigid [batch, heads, max_seq,
// head_dim] block with a single batch-wide length, the arena holds `slots`
// independent per-sequence slots for every layer, each with its own length,
// and recycles slots as sequences retire — so sequences of different ages
// and lengths coexist in one engine iteration (iteration-level scheduling;
// cf. the full-stack inference survey's batching discussion).
//
// Layout per (layer, slot, head) is a contiguous [max_seq, head_dim] strip,
// the same stream-once-per-token pattern attention reads from KVCache.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/aligned_buffer.h"

namespace dsinfer::kernels {

class KVArena {
 public:
  KVArena() = default;
  KVArena(std::int64_t layers, std::int64_t slots, std::int64_t heads,
          std::int64_t head_dim, std::int64_t max_seq);

  // Slot lifecycle. acquire() returns -1 when every slot is in use; release
  // zeroes the slot's lengths and makes it reusable (LIFO, cache-warm).
  std::int64_t acquire();
  void release(std::int64_t slot);
  bool in_use(std::int64_t slot) const;

  std::int64_t layers() const { return layers_; }
  std::int64_t slots() const { return slots_; }
  std::int64_t heads() const { return heads_; }
  std::int64_t head_dim() const { return head_dim_; }
  std::int64_t max_seq() const { return max_seq_; }
  std::int64_t free_slots() const {
    return static_cast<std::int64_t>(free_.size());
  }
  std::int64_t active_slots() const { return slots_ - free_slots(); }
  // Lifetime acquire count — the slot-churn signal obs exports.
  std::int64_t total_acquires() const { return total_acquires_; }

  // Cached positions of `slot` at `layer`. Layers advance one by one inside
  // an engine iteration; between iterations every layer agrees, and the
  // layer-0 value is that common logical sequence length.
  std::int64_t seq_len(std::int64_t layer, std::int64_t slot) const;
  std::int64_t seq_len(std::int64_t slot) const { return seq_len(0, slot); }

  // Appends `tokens` new positions to `slot` at `layer`. k/v are laid out
  // [tokens, heads * head_dim] (projection output order, matching
  // KVCache::append for batch = 1).
  void append(std::int64_t layer, std::int64_t slot, std::span<const float> k,
              std::span<const float> v, std::int64_t tokens);

  // Rolls `slot` back to at most `len` cached positions at every layer —
  // restores a consistent cross-layer state after a fault interrupts an
  // iteration mid-stack (layers past the fault simply never advanced).
  void rewind(std::int64_t slot, std::int64_t len);

  // Contiguous [seq_len, head_dim] history for one (layer, slot, head).
  std::span<const float> keys(std::int64_t layer, std::int64_t slot,
                              std::int64_t head) const;
  std::span<const float> values(std::int64_t layer, std::int64_t slot,
                                std::int64_t head) const;

  // Bytes currently live (K and V) across in-use slots.
  std::size_t bytes_in_use() const;

  // Host offload round-trip for one in-use slot (ISSUE 5): export_slot packs
  // every layer's cached K/V history into `k`/`v` (resizing them to
  // layers * len * heads * head_dim floats, [layer, head, pos, head_dim]
  // strip order) and returns the common per-layer length; import_slot writes
  // the same packing back. Together they model the device->host->device trip
  // the uniform path performs through OffloadableKVCache, for arenas that
  // are sharded per TP rank (each rank round-trips its own head slice).
  // Both require every layer of the slot to agree on seq_len (the steady
  // state between engine iterations).
  std::int64_t export_slot(std::int64_t slot, std::vector<float>& k,
                           std::vector<float>& v) const;
  void import_slot(std::int64_t slot, std::span<const float> k,
                   std::span<const float> v, std::int64_t len);

 private:
  std::int64_t strip(std::int64_t layer, std::int64_t slot,
                     std::int64_t head) const {
    return (((layer * slots_) + slot) * heads_ + head) * max_seq_ * head_dim_;
  }
  void check_slot(std::int64_t layer, std::int64_t slot) const;

  AlignedBuffer<float> k_;
  AlignedBuffer<float> v_;
  std::vector<std::int64_t> len_;    // [layers * slots]
  std::vector<std::uint8_t> used_;   // [slots]
  std::vector<std::int64_t> free_;   // LIFO free list
  std::int64_t layers_ = 0;
  std::int64_t slots_ = 0;
  std::int64_t heads_ = 0;
  std::int64_t head_dim_ = 0;
  std::int64_t max_seq_ = 0;
  std::int64_t total_acquires_ = 0;
};

}  // namespace dsinfer::kernels
