// A full pre-LN GPT transformer layer built from the kernel library, with a
// switchable KernelPolicy that selects between the paper's optimized path
// (Deep-Fusion + SBI-GeMM + optional INT8) and the training-framework
// baseline path (kernel-per-op, generic GeMM). Both paths compute the same
// function; tests assert equivalence, benches measure the gap.
#pragma once

#include <cstdint>
#include <span>

#include "kernels/gemm.h"
#include "kernels/kv_arena.h"
#include "kernels/kv_cache.h"
#include "kernels/quant.h"
#include "kernels/simd.h"
#include "kernels/tensor.h"
#include "util/rng.h"

namespace dsinfer::kernels {

enum class Dtype { kFP32, kFP16, kINT8 };

// FP16 executes FP32 arithmetic in the functional engine (numerics are not
// the point of the dtype switch) but halves parameter bytes in the perf
// model; INT8 runs the real quantized path.
struct KernelPolicy {
  bool fuse_elementwise = true;  // Deep-Fusion regions 1/3/4
  bool fuse_attention = true;    // Deep-Fusion region 2
  GemmKind gemm = GemmKind::kBlocked;
  Dtype dtype = Dtype::kFP32;
  bool causal = true;  // false for encoder models (BERT family, Fig. 12)
  // Rotary position embeddings applied to Q/K inside the layer (GPT-J /
  // GPT-NeoX style); off by default (GPT-2/3 use learned positions).
  bool use_rope = false;
  // ISA the micro-kernels run with for this layer: kAuto follows hardware
  // dispatch, kScalar/kAvx2 pin it (scoped for the forward call) so the
  // scalar baseline stays reachable in policy sweeps and benches.
  simd::KernelIsa isa = simd::KernelIsa::kAuto;

  static KernelPolicy optimized_small_batch() {
    return {true, true, GemmKind::kSbi, Dtype::kFP32, true, false};
  }
  static KernelPolicy optimized_large_batch() {
    return {true, true, GemmKind::kBlocked, Dtype::kFP32, true, false};
  }
  // Kernel-per-micro-op framework baseline (Fig. 10a "PyTorch").
  static KernelPolicy baseline() {
    return {false, false, GemmKind::kBlocked, Dtype::kFP32, true, false};
  }
  // E.T.-style: custom GeMM and fused attention, but per-op elementwise
  // kernels — E.T. fuses fewer operators than Deep-Fusion, which is the gap
  // Fig. 12 measures.
  static KernelPolicy et_like() {
    return {false, true, GemmKind::kSbi, Dtype::kFP32, true, false};
  }
};

// Dense transformer layer parameters. `ffn` is the intermediate dimension
// (4*hidden for GPT). Weights are row-major [out, in].
struct LayerWeights {
  std::int64_t hidden = 0;
  std::int64_t heads = 0;
  std::int64_t ffn = 0;

  Tensor ln1_g, ln1_b, ln2_g, ln2_b;
  Tensor w_qkv, b_qkv;            // [3*hidden, hidden]
  Tensor w_attn_out, b_attn_out;  // [hidden, hidden]
  Tensor w_fc1, b_fc1;            // [ffn, hidden]
  Tensor w_fc2, b_fc2;            // [hidden, ffn]

  // Acceleration structures, built on demand by prepare().
  PackedWeight p_qkv, p_attn_out, p_fc1, p_fc2;
  QuantizedWeight q_qkv, q_attn_out, q_fc1, q_fc2;

  // Small-magnitude random init keeps activations bounded across 100+ layers.
  void init_random(Rng& rng, std::int64_t hidden_dim, std::int64_t num_heads,
                   std::int64_t ffn_dim);

  // Builds the packed (SBI) or quantized (INT8) forms the policy needs.
  void prepare(const KernelPolicy& policy);

  std::size_t param_count() const;
};

// Reusable per-layer scratch to keep the generation loop allocation-free.
struct LayerScratch {
  Tensor normed, qkv, q, k, v, attn, proj, ffn1, act, ffn2;
  void ensure(std::int64_t tokens, std::int64_t hidden, std::int64_t ffn);
};

// Runs one layer in place over x = [batch * q_len, hidden]. Appends this
// block's keys/values to `cache` (which must have room) and attends over the
// full history, so the same entry point serves both the prompt-processing
// and token-generation phases (paper Sec. IV-B).
void transformer_layer_forward(const LayerWeights& w, KVCache& cache,
                               std::span<float> x, std::int64_t batch,
                               std::int64_t q_len, const KernelPolicy& policy,
                               LayerScratch& scratch);

// Ragged variant for continuous batching: row t of x = [tokens, hidden]
// belongs to arena slot slots[t] at absolute position positions[t]. Rows of
// one slot must be contiguous and extend the slot's history in order (the
// prompt block at admission, or one row per live sequence at decode). The
// block's keys/values append to `arena` at `layer` and each token attends
// causally over its own slot history; attention always runs fused.
void transformer_layer_forward_ragged(const LayerWeights& w, KVArena& arena,
                                      std::int64_t layer,
                                      std::span<const std::int32_t> slots,
                                      std::span<const std::int32_t> positions,
                                      std::span<float> x,
                                      const KernelPolicy& policy,
                                      LayerScratch& scratch);

}  // namespace dsinfer::kernels
