#include "moe/moe_layer.h"

#include <stdexcept>
#include <vector>

#include "kernels/elementwise.h"
#include "kernels/gemm.h"

namespace dsinfer::moe {

void ExpertFFN::init_random(Rng& rng, std::int64_t hidden, std::int64_t ffn) {
  const float ws = 0.05f;
  w1.reshape({ffn, hidden});
  rng.fill_normal(w1.span(), 0.0f, ws);
  b1.reshape({ffn});
  rng.fill_normal(b1.span(), 0.0f, 0.01f);
  w2.reshape({hidden, ffn});
  rng.fill_normal(w2.span(), 0.0f, ws);
  b2.reshape({hidden});
  b2.zero();
}

void ExpertFFN::forward(std::span<const float> x, std::span<float> y,
                        std::int64_t rows) const {
  const std::int64_t hidden = w1.shape()[1];
  const std::int64_t ffn = w1.shape()[0];
  std::vector<float> mid(static_cast<std::size_t>(rows * ffn));
  kernels::linear_blocked(x, w1.span(), {}, mid, rows, hidden, ffn);
  kernels::bias_gelu(mid, b1.span(), mid, rows, ffn);
  kernels::linear_blocked(mid, w2.span(), b2.span(), y, rows, ffn, hidden);
}

void MoELayerWeights::init_random(Rng& rng, std::int64_t hidden_dim,
                                  std::int64_t ffn_dim,
                                  std::int64_t experts_count) {
  hidden = hidden_dim;
  ffn = ffn_dim;
  num_experts = experts_count;
  w_gate.reshape({num_experts, hidden});
  rng.fill_normal(w_gate.span(), 0.0f, 0.1f);
  experts.resize(static_cast<std::size_t>(num_experts));
  for (auto& e : experts) e.init_random(rng, hidden, ffn);
}

std::size_t MoELayerWeights::param_count() const {
  const std::size_t per_expert =
      static_cast<std::size_t>(ffn * hidden + ffn + hidden * ffn + hidden);
  return static_cast<std::size_t>(num_experts * hidden) +
         static_cast<std::size_t>(num_experts) * per_expert;
}

namespace {

struct Routed {
  GatingOutput gating;
  RoutingTable table;
};

Routed route(const MoELayerWeights& w, std::span<const float> x,
             std::int64_t tokens, double capacity_factor) {
  std::vector<float> logits(
      static_cast<std::size_t>(tokens * w.num_experts));
  kernels::linear_blocked(x, w.w_gate.span(), {}, logits, tokens, w.hidden,
                          w.num_experts);
  Routed r;
  r.gating = top1_gating(logits, tokens, w.num_experts);
  const std::int64_t cap =
      expert_capacity(tokens, w.num_experts, capacity_factor);
  r.table = build_routing_table(r.gating, w.num_experts, cap);
  return r;
}

void run_experts(const MoELayerWeights& w, std::span<const float> expert_input,
                 std::span<float> expert_output, std::int64_t capacity) {
  for (std::int64_t e = 0; e < w.num_experts; ++e) {
    const auto off = static_cast<std::size_t>(e * capacity * w.hidden);
    w.experts[static_cast<std::size_t>(e)].forward(
        expert_input.subspan(off,
                             static_cast<std::size_t>(capacity * w.hidden)),
        expert_output.subspan(off,
                              static_cast<std::size_t>(capacity * w.hidden)),
        capacity);
  }
}

MoEForwardStats stats_of(const Routed& r, std::int64_t tokens) {
  MoEForwardStats s;
  s.tokens = tokens;
  s.capacity = r.table.capacity;
  s.dropped = tokens - r.table.tokens_routed();
  return s;
}

}  // namespace

MoEForwardStats forward_optimized(const MoELayerWeights& w,
                                  std::span<const float> x, std::span<float> y,
                                  std::int64_t tokens,
                                  double capacity_factor) {
  if (x.size() < static_cast<std::size_t>(tokens * w.hidden) ||
      y.size() < static_cast<std::size_t>(tokens * w.hidden)) {
    throw std::invalid_argument("moe forward: span too small");
  }
  Routed r = route(w, x, tokens, capacity_factor);
  const std::int64_t cap = r.table.capacity;
  std::vector<float> ein(
      static_cast<std::size_t>(w.num_experts * cap * w.hidden));
  std::vector<float> eout(ein.size());
  scatter_to_experts(x, r.table, ein, w.hidden);
  run_experts(w, ein, eout, cap);
  gather_from_experts(eout, r.table, r.gating, y, tokens, w.hidden);
  return stats_of(r, tokens);
}

MoEForwardStats forward_baseline(const MoELayerWeights& w,
                                 std::span<const float> x, std::span<float> y,
                                 std::int64_t tokens, double capacity_factor) {
  if (x.size() < static_cast<std::size_t>(tokens * w.hidden) ||
      y.size() < static_cast<std::size_t>(tokens * w.hidden)) {
    throw std::invalid_argument("moe forward: span too small");
  }
  Routed r = route(w, x, tokens, capacity_factor);
  const std::int64_t cap = r.table.capacity;
  const Tensor mask = build_dispatch_mask(r.table, tokens);
  std::vector<float> ein(
      static_cast<std::size_t>(w.num_experts * cap * w.hidden));
  std::vector<float> eout(ein.size());
  einsum_dispatch(mask, x, ein, tokens, w.num_experts, cap, w.hidden);
  run_experts(w, ein, eout, cap);
  einsum_combine(mask, r.gating, eout, y, tokens, w.num_experts, cap,
                 w.hidden);
  return stats_of(r, tokens);
}

}  // namespace dsinfer::moe
