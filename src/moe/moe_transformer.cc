#include "moe/moe_transformer.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "kernels/attention.h"
#include "kernels/elementwise.h"
#include "kernels/gemm.h"

namespace dsinfer::moe {

void MoeBlockWeights::init_random(Rng& rng, std::int64_t hidden_dim,
                                  std::int64_t num_heads, std::int64_t ffn_dim,
                                  std::int64_t experts, bool moe_block) {
  if (hidden_dim % num_heads != 0) {
    throw std::invalid_argument("hidden must be divisible by heads");
  }
  hidden = hidden_dim;
  heads = num_heads;
  ffn = ffn_dim;
  is_moe = moe_block;
  const float ws = 0.02f;

  auto ones = [&](Tensor& t) {
    t.reshape({hidden});
    t.fill(1.0f);
  };
  auto zeros = [&](Tensor& t) {
    t.reshape({hidden});
    t.zero();
  };
  ones(ln1_g);
  zeros(ln1_b);
  ones(ln2_g);
  zeros(ln2_b);

  w_qkv.reshape({3 * hidden, hidden});
  rng.fill_normal(w_qkv.span(), 0.0f, ws);
  b_qkv.reshape({3 * hidden});
  b_qkv.zero();
  w_attn_out.reshape({hidden, hidden});
  rng.fill_normal(w_attn_out.span(), 0.0f, ws);
  b_attn_out.reshape({hidden});
  b_attn_out.zero();

  if (is_moe) {
    moe.init_random(rng, hidden, ffn, experts);
  } else {
    w_fc1.reshape({ffn, hidden});
    rng.fill_normal(w_fc1.span(), 0.0f, ws);
    b_fc1.reshape({ffn});
    rng.fill_normal(b_fc1.span(), 0.0f, 0.01f);
    w_fc2.reshape({hidden, ffn});
    rng.fill_normal(w_fc2.span(), 0.0f, ws);
    b_fc2.reshape({hidden});
    b_fc2.zero();
  }
}

std::size_t MoeBlockWeights::param_count() const {
  std::size_t n = static_cast<std::size_t>(
      3 * hidden * hidden + 3 * hidden + hidden * hidden + hidden +
      4 * hidden);
  if (is_moe) {
    n += moe.param_count();
  } else {
    n += static_cast<std::size_t>(ffn * hidden + ffn + hidden * ffn + hidden);
  }
  return n;
}

void MoeBlockScratch::ensure(std::int64_t tokens, std::int64_t hidden,
                             std::int64_t ffn) {
  if (normed.numel() >= tokens * hidden && ffn1.numel() >= tokens * ffn) return;
  normed.reshape({tokens, hidden});
  qkv.reshape({tokens, 3 * hidden});
  q.reshape({tokens, hidden});
  k.reshape({tokens, hidden});
  v.reshape({tokens, hidden});
  attn.reshape({tokens, hidden});
  proj.reshape({tokens, hidden});
  ffn1.reshape({tokens, ffn});
  act.reshape({tokens, ffn});
  ffn2.reshape({tokens, hidden});
}

MoEForwardStats moe_block_forward(const MoeBlockWeights& w,
                                  kernels::KVCache& cache, std::span<float> x,
                                  std::int64_t batch, std::int64_t q_len,
                                  MoeRouting routing, double capacity_factor,
                                  MoeBlockScratch& scratch) {
  const std::int64_t tokens = batch * q_len;
  const std::int64_t H = w.hidden;
  const std::int64_t F = w.ffn;
  if (x.size() < static_cast<std::size_t>(tokens * H)) {
    throw std::invalid_argument("moe_block_forward: x span too small");
  }
  scratch.ensure(tokens, H, F);

  // ---- Attention sub-block (identical to the dense layer). ----
  kernels::layernorm(x, w.ln1_g.span(), w.ln1_b.span(), scratch.normed.span(),
                     tokens, H);
  kernels::linear_blocked(scratch.normed.span(), w.w_qkv.span(),
                          w.b_qkv.span(), scratch.qkv.span(), tokens, H,
                          3 * H);
  for (std::int64_t t = 0; t < tokens; ++t) {
    const float* src = scratch.qkv.data() + t * 3 * H;
    std::memcpy(scratch.q.data() + t * H, src,
                static_cast<std::size_t>(H) * sizeof(float));
    std::memcpy(scratch.k.data() + t * H, src + H,
                static_cast<std::size_t>(H) * sizeof(float));
    std::memcpy(scratch.v.data() + t * H, src + 2 * H,
                static_cast<std::size_t>(H) * sizeof(float));
  }
  cache.append(scratch.k.span(), scratch.v.span(), q_len);
  kernels::attention_fused(scratch.q.span(), cache, scratch.attn.span(),
                           q_len);
  kernels::linear_blocked(scratch.attn.span(), w.w_attn_out.span(), {},
                          scratch.proj.span(), tokens, H, H);
  kernels::bias_residual(scratch.proj.span(), w.b_attn_out.span(), x, x,
                         tokens, H);

  // ---- FFN sub-block: dense or sparse. ----
  kernels::layernorm(x, w.ln2_g.span(), w.ln2_b.span(), scratch.normed.span(),
                     tokens, H);
  MoEForwardStats stats;
  if (w.is_moe) {
    stats = routing == MoeRouting::kOptimizedTables
                ? forward_optimized(w.moe, scratch.normed.span(),
                                    scratch.ffn2.span(), tokens,
                                    capacity_factor)
                : forward_baseline(w.moe, scratch.normed.span(),
                                   scratch.ffn2.span(), tokens,
                                   capacity_factor);
    kernels::bias_residual(scratch.ffn2.span(), {}, x, x, tokens, H);
  } else {
    kernels::linear_blocked(scratch.normed.span(), w.w_fc1.span(), {},
                            scratch.ffn1.span(), tokens, H, F);
    kernels::bias_gelu(scratch.ffn1.span(), w.b_fc1.span(),
                       scratch.act.span(), tokens, F);
    kernels::linear_blocked(scratch.act.span(), w.w_fc2.span(), {},
                            scratch.ffn2.span(), tokens, F, H);
    kernels::bias_residual(scratch.ffn2.span(), w.b_fc2.span(), x, x, tokens,
                           H);
    stats.tokens = tokens;
  }
  return stats;
}

MoeGptModel::MoeGptModel(const MoeGptConfig& cfg, std::uint64_t seed)
    : cfg_(cfg) {
  if (cfg.layers < 1 || cfg.moe_every < 1) {
    throw std::invalid_argument("MoeGptConfig: layers/moe_every >= 1");
  }
  Rng rng(seed);
  tok_embed_.reshape({cfg.vocab, cfg.hidden});
  rng.fill_normal(tok_embed_.span(), 0.0f, 0.05f);
  pos_embed_.reshape({cfg.max_seq, cfg.hidden});
  rng.fill_normal(pos_embed_.span(), 0.0f, 0.02f);
  ln_f_g_.reshape({cfg.hidden});
  ln_f_g_.fill(1.0f);
  ln_f_b_.reshape({cfg.hidden});
  ln_f_b_.zero();

  blocks_.resize(static_cast<std::size_t>(cfg.layers));
  for (std::int64_t l = 0; l < cfg.layers; ++l) {
    // Blocks 1, moe_every+1, ... are MoE (the paper alternates dense/MoE).
    const bool is_moe = (l % cfg.moe_every) == cfg.moe_every - 1;
    blocks_[static_cast<std::size_t>(l)].init_random(
        rng, cfg.hidden, cfg.heads, 4 * cfg.hidden, cfg.experts, is_moe);
  }
}

std::int64_t MoeGptModel::moe_blocks() const {
  std::int64_t n = 0;
  for (const auto& b : blocks_) n += b.is_moe;
  return n;
}

std::size_t MoeGptModel::param_count() const {
  std::size_t n = static_cast<std::size_t>(tok_embed_.numel() +
                                           pos_embed_.numel() + 2 * cfg_.hidden);
  for (const auto& b : blocks_) n += b.param_count();
  return n;
}

void MoeGptModel::embed(std::span<const std::int32_t> toks,
                        std::span<const std::int32_t> poss,
                        std::span<float> x) const {
  const std::int64_t H = cfg_.hidden;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const std::int32_t t = toks[i];
    const std::int32_t p = poss[i];
    if (t < 0 || t >= cfg_.vocab || p < 0 || p >= cfg_.max_seq) {
      throw std::out_of_range("MoeGptModel::embed: token/position range");
    }
    const float* te = tok_embed_.data() + static_cast<std::int64_t>(t) * H;
    const float* pe = pos_embed_.data() + static_cast<std::int64_t>(p) * H;
    float* xe = x.data() + static_cast<std::int64_t>(i) * H;
    for (std::int64_t d = 0; d < H; ++d) xe[d] = te[d] + pe[d];
  }
}

MoeGptModel::GenerateResult MoeGptModel::generate(
    const std::vector<std::vector<std::int32_t>>& prompts,
    std::int64_t new_tokens, MoeRouting routing) {
  if (prompts.empty() || new_tokens < 1) {
    throw std::invalid_argument("MoeGptModel::generate: bad arguments");
  }
  const std::int64_t B = static_cast<std::int64_t>(prompts.size());
  const std::int64_t P = static_cast<std::int64_t>(prompts.front().size());
  for (const auto& p : prompts) {
    if (static_cast<std::int64_t>(p.size()) != P || p.empty()) {
      throw std::invalid_argument("MoeGptModel::generate: ragged prompts");
    }
  }
  const std::int64_t total_len = P + new_tokens;
  if (total_len > cfg_.max_seq) {
    throw std::invalid_argument("MoeGptModel::generate: exceeds max_seq");
  }
  const std::int64_t H = cfg_.hidden;
  const std::int64_t V = cfg_.vocab;

  GenerateResult res;
  res.tokens = prompts;

  std::vector<kernels::KVCache> caches;
  caches.reserve(blocks_.size());
  for (std::size_t l = 0; l < blocks_.size(); ++l) {
    caches.emplace_back(B, cfg_.heads, cfg_.hidden / cfg_.heads, total_len);
  }
  MoeBlockScratch scratch;

  auto run_blocks = [&](std::span<float> x, std::int64_t q_len) {
    for (std::size_t l = 0; l < blocks_.size(); ++l) {
      const auto stats =
          moe_block_forward(blocks_[l], caches[l], x, B, q_len, routing,
                            cfg_.capacity_factor, scratch);
      if (blocks_[l].is_moe) res.dropped_tokens += stats.dropped;
    }
  };

  // Prompt phase.
  std::vector<std::int32_t> toks(static_cast<std::size_t>(B * P));
  std::vector<std::int32_t> poss(toks.size());
  for (std::int64_t b = 0; b < B; ++b) {
    for (std::int64_t t = 0; t < P; ++t) {
      toks[static_cast<std::size_t>(b * P + t)] =
          prompts[static_cast<std::size_t>(b)][static_cast<std::size_t>(t)];
      poss[static_cast<std::size_t>(b * P + t)] = static_cast<std::int32_t>(t);
    }
  }
  std::vector<float> x(static_cast<std::size_t>(B * P * H));
  embed(toks, poss, x);
  run_blocks(x, P);

  std::vector<float> last(static_cast<std::size_t>(B * H));
  for (std::int64_t b = 0; b < B; ++b) {
    std::memcpy(last.data() + b * H, x.data() + ((b * P) + P - 1) * H,
                static_cast<std::size_t>(H) * sizeof(float));
  }

  std::vector<float> normed(last.size());
  std::vector<float> logits(static_cast<std::size_t>(B * V));
  std::vector<std::int32_t> new_toks(static_cast<std::size_t>(B));
  std::vector<std::int32_t> new_poss(static_cast<std::size_t>(B));
  for (std::int64_t step = 0; step < new_tokens; ++step) {
    kernels::layernorm(last, ln_f_g_.span(), ln_f_b_.span(), normed, B, H);
    kernels::linear_blocked(normed, tok_embed_.span(), {}, logits, B, H, V);
    for (std::int64_t b = 0; b < B; ++b) {
      const float* row = logits.data() + b * V;
      const std::int32_t tok = static_cast<std::int32_t>(
          std::max_element(row, row + V) - row);
      res.tokens[static_cast<std::size_t>(b)].push_back(tok);
      new_toks[static_cast<std::size_t>(b)] = tok;
      new_poss[static_cast<std::size_t>(b)] =
          static_cast<std::int32_t>(P + step);
    }
    if (step + 1 == new_tokens) break;
    embed(new_toks, new_poss, std::span<float>(last));
    run_blocks(last, 1);
  }
  return res;
}

}  // namespace dsinfer::moe
