// A full sparse (MoE) GPT: the Table II architecture where every
// `moe_every`-th transformer block swaps its dense FFN for a Position-wise
// MoE layer (top-1 gate + E expert FFNs). This is the functional companion
// of the moe_perf_model: it executes the real math end to end — embeddings,
// attention with KV cache, gating, table-based dispatch, expert FFNs,
// combine, residuals, LM head — at miniature scale.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kernels/kv_cache.h"
#include "kernels/tensor.h"
#include "kernels/transformer_layer.h"
#include "moe/moe_layer.h"
#include "util/rng.h"

namespace dsinfer::moe {

// One transformer block: an attention sub-block plus either a dense FFN or
// an MoE FFN.
struct MoeBlockWeights {
  std::int64_t hidden = 0;
  std::int64_t heads = 0;
  std::int64_t ffn = 0;
  bool is_moe = false;

  Tensor ln1_g, ln1_b, ln2_g, ln2_b;
  Tensor w_qkv, b_qkv;            // [3*hidden, hidden]
  Tensor w_attn_out, b_attn_out;  // [hidden, hidden]

  // Dense FFN (is_moe == false).
  Tensor w_fc1, b_fc1, w_fc2, b_fc2;
  // Sparse FFN (is_moe == true).
  MoELayerWeights moe;

  void init_random(Rng& rng, std::int64_t hidden_dim, std::int64_t num_heads,
                   std::int64_t ffn_dim, std::int64_t experts, bool moe_block);
  std::size_t param_count() const;
};

struct MoeBlockScratch {
  Tensor normed, qkv, q, k, v, attn, proj, ffn1, act, ffn2;
  void ensure(std::int64_t tokens, std::int64_t hidden, std::int64_t ffn);
};

// Routing style for the MoE FFN sub-blocks.
enum class MoeRouting { kOptimizedTables, kSparseEinsum };

// Runs one block in place over x = [batch * q_len, hidden]; appends this
// block's K/V to `cache`. Returns per-block MoE stats (zeros for dense
// blocks).
MoEForwardStats moe_block_forward(const MoeBlockWeights& w,
                                  kernels::KVCache& cache, std::span<float> x,
                                  std::int64_t batch, std::int64_t q_len,
                                  MoeRouting routing, double capacity_factor,
                                  MoeBlockScratch& scratch);

// Config for a miniature sparse GPT.
struct MoeGptConfig {
  std::int64_t hidden = 64;
  std::int64_t layers = 4;
  std::int64_t heads = 4;
  std::int64_t experts = 4;
  std::int64_t moe_every = 2;  // blocks 1, 3, 5, ... are MoE
  std::int64_t vocab = 256;
  std::int64_t max_seq = 128;
  double capacity_factor = 2.0;
};

// End-to-end sparse GPT with embeddings and a tied LM head.
class MoeGptModel {
 public:
  MoeGptModel(const MoeGptConfig& cfg, std::uint64_t seed);

  const MoeGptConfig& config() const { return cfg_; }
  std::int64_t moe_blocks() const;
  std::size_t param_count() const;

  struct GenerateResult {
    std::vector<std::vector<std::int32_t>> tokens;
    std::int64_t dropped_tokens = 0;  // total capacity overflows observed
  };

  // Greedy generation (equal-length prompts).
  GenerateResult generate(const std::vector<std::vector<std::int32_t>>& prompts,
                          std::int64_t new_tokens,
                          MoeRouting routing = MoeRouting::kOptimizedTables);

 private:
  void embed(std::span<const std::int32_t> toks,
             std::span<const std::int32_t> poss, std::span<float> x) const;

  MoeGptConfig cfg_;
  Tensor tok_embed_, pos_embed_, ln_f_g_, ln_f_b_;
  std::vector<MoeBlockWeights> blocks_;
};

}  // namespace dsinfer::moe
