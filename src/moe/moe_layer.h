// Position-wise MoE feed-forward layer: a gate GeMM, top-1 routing, and E
// expert FFNs. `forward_optimized` uses the table-based data-layout
// transforms; `forward_baseline` uses the one-hot sparse-einsum path. Both
// compute the identical function (tests assert it); only their cost differs
// — by the S*E*M*c_e vs S*M*c_e factor of paper Sec. V.C.
#pragma once

#include <cstdint>
#include <span>

#include "kernels/tensor.h"
#include "moe/gating.h"
#include "util/rng.h"

namespace dsinfer::moe {

// One expert: a two-layer GELU FFN identical in shape to the dense block.
struct ExpertFFN {
  Tensor w1, b1;  // [ffn, hidden]
  Tensor w2, b2;  // [hidden, ffn]
  void init_random(Rng& rng, std::int64_t hidden, std::int64_t ffn);
  // y[rows, hidden] = W2 gelu(W1 x + b1) + b2 over `rows` token rows.
  void forward(std::span<const float> x, std::span<float> y,
               std::int64_t rows) const;
};

struct MoELayerWeights {
  std::int64_t hidden = 0;
  std::int64_t ffn = 0;
  std::int64_t num_experts = 0;
  Tensor w_gate;  // [experts, hidden]
  std::vector<ExpertFFN> experts;

  void init_random(Rng& rng, std::int64_t hidden_dim, std::int64_t ffn_dim,
                   std::int64_t experts_count);
  std::size_t param_count() const;
};

struct MoEForwardStats {
  std::int64_t tokens = 0;
  std::int64_t dropped = 0;  // capacity overflow
  std::int64_t capacity = 0;
};

// Computes the MoE FFN output y[S, H] for x[S, H] (no residual; the caller
// adds it, matching the dense layer structure).
MoEForwardStats forward_optimized(const MoELayerWeights& w,
                                  std::span<const float> x, std::span<float> y,
                                  std::int64_t tokens,
                                  double capacity_factor = 1.25);

MoEForwardStats forward_baseline(const MoELayerWeights& w,
                                 std::span<const float> x, std::span<float> y,
                                 std::int64_t tokens,
                                 double capacity_factor = 1.25);

}  // namespace dsinfer::moe
