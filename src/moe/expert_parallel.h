// Functional expert parallelism (paper Sec. V.A, Fig. 4): experts are
// partitioned across ranks; tokens travel to their expert's rank through an
// all-to-all, are processed, and travel back (GShard-style). Data
// parallelism is implicit: every rank owns its own token shard.
#pragma once

#include <cstdint>
#include <span>

#include "comm/collectives.h"
#include "moe/moe_layer.h"

namespace dsinfer::moe {

// Rank `rank`'s slice of an MoE layer: experts
// [rank * E/ep, (rank+1) * E/ep) plus the replicated gate.
struct EpShard {
  std::int64_t ep = 1;
  std::int64_t rank = 0;
  std::int64_t experts_total = 0;
  std::int64_t experts_local = 0;
  std::int64_t hidden = 0;
  std::int64_t ffn = 0;
  Tensor w_gate;                   // replicated [E, H]
  std::vector<ExpertFFN> experts;  // the local slice

  static EpShard from_full(const MoELayerWeights& full, std::int64_t ep,
                           std::int64_t rank);
};

// Runs the MoE FFN for this rank's `tokens` token rows. Every rank must call
// with the same `tokens` and `capacity_factor`. The capacity is computed per
// source rank, so with ep ranks each expert processes up to ep * capacity
// rows. Dropped tokens produce zero output (residual passthrough).
MoEForwardStats ep_moe_forward(const EpShard& shard, std::span<const float> x,
                               std::span<float> y, std::int64_t tokens,
                               double capacity_factor,
                               comm::Communicator& comm, std::int64_t rank);

}  // namespace dsinfer::moe
