// Combined tensor + expert parallelism for an MoE layer — the paper's Fig. 4
// orchestration with expert-slicing (Table II "Expert-slicing" column) and
// the PCC all-to-all (Sec. V.B), executed functionally over a CommGrid.
//
// Layout for world = tp x ep ranks:
//  * Tokens: each expert-parallel group has its own token shard (data
//    parallelism across ep groups); within a tp group the tokens are
//    REPLICATED — the invariant PCC exploits.
//  * Experts: partitioned across ep_rank; each expert's FFN is additionally
//    tensor-sliced across tp_rank (w1 row-sharded, w2 column-sharded, with
//    an all-reduce inside the tp group after w2).
//  * Communication: the dispatch/combine all-to-alls run ONLY inside the
//    caller's ep subgroup (size ep instead of tp*ep) — this is the
//    functional counterpart of the O(p) -> O(p/L) latency reduction.
#pragma once

#include <cstdint>
#include <span>

#include "comm/comm_grid.h"
#include "moe/moe_layer.h"

namespace dsinfer::moe {

// Rank (tp_rank, ep_rank)'s slice: experts [ep_rank*E/ep, ...), each sliced
// to ffn/tp rows.
struct TpEpShard {
  std::int64_t tp = 1, ep = 1;
  std::int64_t tp_rank = 0, ep_rank = 0;
  std::int64_t experts_total = 0, experts_local = 0;
  std::int64_t hidden = 0, ffn = 0, ffn_local = 0;

  Tensor w_gate;  // replicated

  struct SlicedExpert {
    Tensor w1, b1;  // [ffn_local, hidden], [ffn_local]
    Tensor w2;      // [hidden, ffn_local]
    Tensor b2;      // [hidden], added once after the tp all-reduce
  };
  std::vector<SlicedExpert> experts;

  static TpEpShard from_full(const MoELayerWeights& full, std::int64_t tp,
                             std::int64_t ep, std::int64_t tp_rank,
                             std::int64_t ep_rank);
};

// Runs the MoE FFN for this rank's ep-group token shard x[tokens, hidden]
// (identical across the tp ranks of the group). All world ranks must call
// collectively with equal `tokens` and `capacity_factor`. On return every
// rank of an ep group holds the identical y.
MoEForwardStats tp_ep_moe_forward(const TpEpShard& shard,
                                  std::span<const float> x,
                                  std::span<float> y, std::int64_t tokens,
                                  double capacity_factor,
                                  comm::CommGrid& grid, std::int64_t rank);

}  // namespace dsinfer::moe
