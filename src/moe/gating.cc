#include "moe/gating.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace dsinfer::moe {

GatingOutput top1_gating(std::span<const float> logits, std::int64_t tokens,
                         std::int64_t experts) {
  if (logits.size() < static_cast<std::size_t>(tokens * experts)) {
    throw std::invalid_argument("top1_gating: logits span too small");
  }
  GatingOutput g;
  g.expert_of_token.resize(static_cast<std::size_t>(tokens));
  g.gate_weight.resize(static_cast<std::size_t>(tokens));
  for (std::int64_t s = 0; s < tokens; ++s) {
    const float* row = logits.data() + s * experts;
    std::int64_t best = 0;
    float mx = row[0];
    for (std::int64_t e = 1; e < experts; ++e) {
      if (row[e] > mx) {
        mx = row[e];
        best = e;
      }
    }
    float denom = 0.0f;
    for (std::int64_t e = 0; e < experts; ++e) denom += std::exp(row[e] - mx);
    g.expert_of_token[static_cast<std::size_t>(s)] =
        static_cast<std::int32_t>(best);
    g.gate_weight[static_cast<std::size_t>(s)] = 1.0f / denom;  // exp(0)/denom
  }
  return g;
}

TopKGating topk_gating(std::span<const float> logits, std::int64_t tokens,
                       std::int64_t experts, std::int64_t k) {
  if (k < 1 || k > experts) {
    throw std::invalid_argument("topk_gating: need 1 <= k <= experts");
  }
  if (logits.size() < static_cast<std::size_t>(tokens * experts)) {
    throw std::invalid_argument("topk_gating: logits span too small");
  }
  TopKGating g;
  g.k = k;
  g.experts.resize(static_cast<std::size_t>(tokens * k));
  g.weights.resize(static_cast<std::size_t>(tokens * k));
  std::vector<std::int32_t> order(static_cast<std::size_t>(experts));
  for (std::int64_t s = 0; s < tokens; ++s) {
    const float* row = logits.data() + s * experts;
    for (std::int64_t e = 0; e < experts; ++e) {
      order[static_cast<std::size_t>(e)] = static_cast<std::int32_t>(e);
    }
    std::partial_sort(order.begin(), order.begin() + k, order.end(),
                      [&](std::int32_t a, std::int32_t b) {
                        return row[a] != row[b] ? row[a] > row[b] : a < b;
                      });
    // Softmax over the selected experts only (renormalized top-k weights,
    // the GShard/Switch convention).
    const float mx = row[order[0]];
    float denom = 0.0f;
    for (std::int64_t i = 0; i < k; ++i) {
      denom += std::exp(row[order[static_cast<std::size_t>(i)]] - mx);
    }
    for (std::int64_t i = 0; i < k; ++i) {
      g.experts[static_cast<std::size_t>(s * k + i)] =
          order[static_cast<std::size_t>(i)];
      g.weights[static_cast<std::size_t>(s * k + i)] =
          std::exp(row[order[static_cast<std::size_t>(i)]] - mx) / denom;
    }
  }
  return g;
}

TopKRoutingTable build_topk_routing_table(const TopKGating& gating,
                                          std::int64_t experts,
                                          std::int64_t capacity) {
  TopKRoutingTable t;
  t.experts = experts;
  t.capacity = capacity;
  t.k = gating.k;
  t.expert_tokens.assign(static_cast<std::size_t>(experts * capacity), -1);
  t.slot_of_choice.assign(gating.experts.size(), -1);
  std::vector<std::int32_t> fill(static_cast<std::size_t>(experts), 0);
  for (std::size_t c = 0; c < gating.experts.size(); ++c) {
    const std::int32_t e = gating.experts[c];
    if (e < 0 || e >= experts) {
      throw std::out_of_range("build_topk_routing_table: expert id range");
    }
    auto& f = fill[static_cast<std::size_t>(e)];
    if (f < capacity) {
      const std::int32_t slot = e * static_cast<std::int32_t>(capacity) + f;
      t.expert_tokens[static_cast<std::size_t>(slot)] =
          static_cast<std::int32_t>(c / static_cast<std::size_t>(gating.k));
      t.slot_of_choice[c] = slot;
      ++f;
    }
  }
  return t;
}

void topk_scatter_to_experts(std::span<const float> x,
                             const TopKRoutingTable& table,
                             std::span<float> expert_input,
                             std::int64_t hidden) {
  const std::size_t slots = table.expert_tokens.size();
  if (expert_input.size() < slots * static_cast<std::size_t>(hidden)) {
    throw std::invalid_argument("topk_scatter: output too small");
  }
  std::memset(expert_input.data(), 0,
              slots * static_cast<std::size_t>(hidden) * sizeof(float));
  for (std::size_t slot = 0; slot < slots; ++slot) {
    const std::int32_t s = table.expert_tokens[slot];
    if (s < 0) continue;
    std::memcpy(expert_input.data() + slot * static_cast<std::size_t>(hidden),
                x.data() + static_cast<std::size_t>(s) *
                               static_cast<std::size_t>(hidden),
                static_cast<std::size_t>(hidden) * sizeof(float));
  }
}

void topk_gather_from_experts(std::span<const float> expert_output,
                              const TopKRoutingTable& table,
                              const TopKGating& gating, std::span<float> y,
                              std::int64_t tokens, std::int64_t hidden) {
  if (y.size() < static_cast<std::size_t>(tokens * hidden)) {
    throw std::invalid_argument("topk_gather: output too small");
  }
  std::memset(y.data(), 0,
              static_cast<std::size_t>(tokens * hidden) * sizeof(float));
  for (std::int64_t s = 0; s < tokens; ++s) {
    float* dst = y.data() + s * hidden;
    for (std::int64_t i = 0; i < table.k; ++i) {
      const std::size_t c = static_cast<std::size_t>(s * table.k + i);
      const std::int32_t slot = table.slot_of_choice[c];
      if (slot < 0) continue;
      const float w = gating.weights[c];
      const float* src = expert_output.data() +
                         static_cast<std::size_t>(slot) *
                             static_cast<std::size_t>(hidden);
      for (std::int64_t m = 0; m < hidden; ++m) dst[m] += w * src[m];
    }
  }
}

std::int64_t expert_capacity(std::int64_t tokens, std::int64_t experts,
                             double capacity_factor) {
  if (tokens < 1 || experts < 1 || capacity_factor <= 0) {
    throw std::invalid_argument("expert_capacity: bad arguments");
  }
  const double ideal =
      static_cast<double>(tokens) / static_cast<double>(experts);
  return std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::ceil(ideal * capacity_factor)));
}

std::int64_t RoutingTable::tokens_routed() const {
  std::int64_t n = 0;
  for (auto t : expert_tokens) n += (t >= 0);
  return n;
}

RoutingTable build_routing_table(const GatingOutput& gating,
                                 std::int64_t experts, std::int64_t capacity) {
  RoutingTable t;
  t.experts = experts;
  t.capacity = capacity;
  t.expert_tokens.assign(static_cast<std::size_t>(experts * capacity), -1);
  t.slot_of_token.assign(gating.expert_of_token.size(), -1);
  std::vector<std::int32_t> fill(static_cast<std::size_t>(experts), 0);
  for (std::size_t s = 0; s < gating.expert_of_token.size(); ++s) {
    const std::int32_t e = gating.expert_of_token[s];
    if (e < 0 || e >= experts) {
      throw std::out_of_range("build_routing_table: expert id out of range");
    }
    auto& f = fill[static_cast<std::size_t>(e)];
    if (f < capacity) {
      const std::int32_t slot = e * static_cast<std::int32_t>(capacity) + f;
      t.expert_tokens[static_cast<std::size_t>(slot)] =
          static_cast<std::int32_t>(s);
      t.slot_of_token[s] = slot;
      ++f;
    }
    // else: capacity overflow, token dropped (residual passthrough).
  }
  return t;
}

void scatter_to_experts(std::span<const float> x, const RoutingTable& table,
                        std::span<float> expert_input, std::int64_t hidden) {
  const std::size_t slots = table.expert_tokens.size();
  if (expert_input.size() < slots * static_cast<std::size_t>(hidden)) {
    throw std::invalid_argument("scatter_to_experts: output too small");
  }
  std::memset(expert_input.data(), 0,
              slots * static_cast<std::size_t>(hidden) * sizeof(float));
  for (std::size_t slot = 0; slot < slots; ++slot) {
    const std::int32_t s = table.expert_tokens[slot];
    if (s < 0) continue;
    std::memcpy(expert_input.data() + slot * static_cast<std::size_t>(hidden),
                x.data() + static_cast<std::size_t>(s) *
                               static_cast<std::size_t>(hidden),
                static_cast<std::size_t>(hidden) * sizeof(float));
  }
}

void gather_from_experts(std::span<const float> expert_output,
                         const RoutingTable& table,
                         const GatingOutput& gating, std::span<float> y,
                         std::int64_t tokens, std::int64_t hidden) {
  if (y.size() < static_cast<std::size_t>(tokens * hidden)) {
    throw std::invalid_argument("gather_from_experts: output too small");
  }
  std::memset(y.data(), 0,
              static_cast<std::size_t>(tokens * hidden) * sizeof(float));
  for (std::int64_t s = 0; s < tokens; ++s) {
    const std::int32_t slot = table.slot_of_token[static_cast<std::size_t>(s)];
    if (slot < 0) continue;  // dropped
    const float w = gating.gate_weight[static_cast<std::size_t>(s)];
    const float* src = expert_output.data() +
                       static_cast<std::size_t>(slot) *
                           static_cast<std::size_t>(hidden);
    float* dst = y.data() + s * hidden;
    for (std::int64_t m = 0; m < hidden; ++m) dst[m] = w * src[m];
  }
}

Tensor build_dispatch_mask(const RoutingTable& table, std::int64_t tokens) {
  Tensor mask({tokens, table.experts, table.capacity});
  mask.zero();
  for (std::int64_t s = 0; s < tokens; ++s) {
    const std::int32_t slot = table.slot_of_token[static_cast<std::size_t>(s)];
    if (slot < 0) continue;
    mask.at(s * table.experts * table.capacity + slot) = 1.0f;
  }
  return mask;
}

void einsum_dispatch(const Tensor& dispatch_mask, std::span<const float> x,
                     std::span<float> expert_input, std::int64_t tokens,
                     std::int64_t experts, std::int64_t capacity,
                     std::int64_t hidden) {
  const std::int64_t slots = experts * capacity;
  if (expert_input.size() < static_cast<std::size_t>(slots * hidden)) {
    throw std::invalid_argument("einsum_dispatch: output too small");
  }
  std::memset(expert_input.data(), 0,
              static_cast<std::size_t>(slots * hidden) * sizeof(float));
  // expert_input[ec, m] += mask[s, ec] * x[s, m] — the full dense product,
  // zeros included (this is the cost the paper eliminates).
  for (std::int64_t s = 0; s < tokens; ++s) {
    const float* mrow = dispatch_mask.data() + s * slots;
    const float* xrow = x.data() + s * hidden;
    for (std::int64_t ec = 0; ec < slots; ++ec) {
      const float mv = mrow[ec];
      float* dst = expert_input.data() + ec * hidden;
      for (std::int64_t m = 0; m < hidden; ++m) dst[m] += mv * xrow[m];
    }
  }
}

void einsum_combine(const Tensor& dispatch_mask, const GatingOutput& gating,
                    std::span<const float> expert_output, std::span<float> y,
                    std::int64_t tokens, std::int64_t experts,
                    std::int64_t capacity, std::int64_t hidden) {
  const std::int64_t slots = experts * capacity;
  if (y.size() < static_cast<std::size_t>(tokens * hidden)) {
    throw std::invalid_argument("einsum_combine: output too small");
  }
  std::memset(y.data(), 0,
              static_cast<std::size_t>(tokens * hidden) * sizeof(float));
  for (std::int64_t s = 0; s < tokens; ++s) {
    const float* mrow = dispatch_mask.data() + s * slots;
    const float gw = gating.gate_weight[static_cast<std::size_t>(s)];
    float* dst = y.data() + s * hidden;
    for (std::int64_t ec = 0; ec < slots; ++ec) {
      const float cv = mrow[ec] * gw;  // combine weight
      const float* src = expert_output.data() + ec * hidden;
      for (std::int64_t m = 0; m < hidden; ++m) dst[m] += cv * src[m];
    }
  }
}

ExpertLoadStats expert_load_stats(const GatingOutput& gating,
                                  std::int64_t experts) {
  ExpertLoadStats s;
  s.tokens_per_expert.assign(static_cast<std::size_t>(experts), 0);
  for (auto e : gating.expert_of_token) {
    if (e < 0 || e >= experts) {
      throw std::out_of_range("expert_load_stats: expert id out of range");
    }
    ++s.tokens_per_expert[static_cast<std::size_t>(e)];
  }
  double mean = 0;
  for (auto n : s.tokens_per_expert) {
    s.busiest = std::max(s.busiest, n);
    s.idle += (n == 0);
    mean += static_cast<double>(n);
  }
  mean /= static_cast<double>(experts);
  if (mean > 0) {
    double var = 0;
    for (auto n : s.tokens_per_expert) {
      const double d = static_cast<double>(n) - mean;
      var += d * d;
    }
    var /= static_cast<double>(experts);
    s.imbalance = std::sqrt(var) / mean;
  }
  return s;
}

}  // namespace dsinfer::moe
