// Performance model for massive-scale sparse (MoE) inference
// (paper Sec. V, Figs. 7 and 11). Per-token latency decomposes into the
// dense transformer part (tensor-parallel), the gating function, the
// expert-parallel all-to-alls, and streaming expert weights.
#pragma once

#include <cstdint>
#include <string>

#include "hw/topology.h"
#include "model/model_config.h"
#include "perf/kernel_model.h"

namespace dsinfer::moe {

struct MoEEngineConfig {
  std::string name;
  bool pcc = true;                // parallelism-coordinated all-to-all
  bool optimized_kernels = true;  // table routing vs sparse one-hot einsums
  bool use_expert_slicing = true; // Table II ES column
  perf::EngineModelConfig dense;  // kernel model for the dense components

  // DeepSpeed-MoE: PCC + table-based MoE kernels + expert slicing.
  static MoEEngineConfig deepspeed();
  // Distributed PyTorch baseline (paper Sec. VII-A.1): sparse-einsum gating,
  // flat all-to-all across all ranks, framework dense kernels.
  static MoEEngineConfig pytorch_baseline();
};

struct MoETokenLatency {
  double dense_s = 0;     // attention + non-expert GeMMs + collectives
  double gate_s = 0;      // gating function (all MoE layers)
  double alltoall_s = 0;  // dispatch + combine collectives
  double expert_s = 0;    // expert FFN weight streaming + compute
  double total_s = 0;
  double tokens_per_s = 0;       // batch tokens per second
  double throughput_per_gpu = 0; // tokens/s/GPU
  // Achieved aggregate HBM bandwidth across all GPUs (Fig. 11's metric).
  double aggregate_bw_tbps = 0;
};

// Latency of generating one token for `batch` sequences with `gpus` GPUs.
// Expert parallelism degree = gpus / tensor_parallel (capped at the expert
// count); kv_len is the attention history length.
MoETokenLatency moe_token_latency(const model::MoEModelConfig& m,
                                  const MoEEngineConfig& e,
                                  const hw::ClusterSpec& cluster,
                                  std::int64_t gpus, std::int64_t batch,
                                  std::int64_t kv_len);

}  // namespace dsinfer::moe
