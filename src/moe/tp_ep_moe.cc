#include "moe/tp_ep_moe.h"

#include <cstring>
#include <stdexcept>
#include <vector>

#include "kernels/elementwise.h"
#include "kernels/gemm.h"

namespace dsinfer::moe {

TpEpShard TpEpShard::from_full(const MoELayerWeights& full, std::int64_t tp,
                               std::int64_t ep, std::int64_t tp_rank,
                               std::int64_t ep_rank) {
  if (tp < 1 || ep < 1 || tp_rank < 0 || tp_rank >= tp || ep_rank < 0 ||
      ep_rank >= ep) {
    throw std::invalid_argument("TpEpShard: bad grid coordinates");
  }
  if (full.num_experts % ep != 0 || full.ffn % tp != 0) {
    throw std::invalid_argument(
        "TpEpShard: experts must divide ep and ffn must divide tp");
  }
  TpEpShard s;
  s.tp = tp;
  s.ep = ep;
  s.tp_rank = tp_rank;
  s.ep_rank = ep_rank;
  s.experts_total = full.num_experts;
  s.experts_local = full.num_experts / ep;
  s.hidden = full.hidden;
  s.ffn = full.ffn;
  s.ffn_local = full.ffn / tp;
  s.w_gate = full.w_gate.clone();

  const std::int64_t H = s.hidden;
  const std::int64_t Fl = s.ffn_local;
  s.experts.reserve(static_cast<std::size_t>(s.experts_local));
  for (std::int64_t e = 0; e < s.experts_local; ++e) {
    const auto& src =
        full.experts[static_cast<std::size_t>(ep_rank * s.experts_local + e)];
    SlicedExpert sl;
    // w1 row-parallel: rows [tp_rank*Fl, (tp_rank+1)*Fl).
    sl.w1.reshape({Fl, H});
    std::memcpy(sl.w1.data(), src.w1.data() + tp_rank * Fl * H,
                static_cast<std::size_t>(Fl * H) * sizeof(float));
    sl.b1.reshape({Fl});
    std::memcpy(sl.b1.data(), src.b1.data() + tp_rank * Fl,
                static_cast<std::size_t>(Fl) * sizeof(float));
    // w2 column-parallel: columns [tp_rank*Fl, (tp_rank+1)*Fl).
    sl.w2.reshape({H, Fl});
    for (std::int64_t r = 0; r < H; ++r) {
      std::memcpy(sl.w2.data() + r * Fl,
                  src.w2.data() + r * s.ffn + tp_rank * Fl,
                  static_cast<std::size_t>(Fl) * sizeof(float));
    }
    sl.b2 = src.b2.clone();
    s.experts.push_back(std::move(sl));
  }
  return s;
}

MoEForwardStats tp_ep_moe_forward(const TpEpShard& shard,
                                  std::span<const float> x,
                                  std::span<float> y, std::int64_t tokens,
                                  double capacity_factor,
                                  comm::CommGrid& grid, std::int64_t rank) {
  const std::int64_t H = shard.hidden;
  const std::int64_t E = shard.experts_total;
  const std::int64_t El = shard.experts_local;
  const std::int64_t Fl = shard.ffn_local;
  const std::int64_t ep = shard.ep;
  if (x.size() < static_cast<std::size_t>(tokens * H) ||
      y.size() < static_cast<std::size_t>(tokens * H)) {
    throw std::invalid_argument("tp_ep_moe_forward: span too small");
  }
  const std::int64_t ep_local = grid.ep_rank(rank);
  comm::Communicator& ep_comm = grid.ep_group(rank);
  comm::Communicator& tp_comm = grid.tp_group(rank);
  const std::int64_t tp_local = grid.tp_rank(rank);

  // Gating is replicated within the tp group (identical tokens + identical
  // gate weights => identical decisions, no communication needed).
  std::vector<float> logits(static_cast<std::size_t>(tokens * E));
  kernels::linear_blocked(x, shard.w_gate.span(), {}, logits, tokens, H, E);
  GatingOutput gating = top1_gating(logits, tokens, E);
  const std::int64_t cap = expert_capacity(tokens, E, capacity_factor);
  RoutingTable table = build_routing_table(gating, E, cap);

  // Dispatch [E, cap, H], then the PCC all-to-all: only the ep subgroup
  // exchanges (Sec. V.B step 2); no traffic crosses tensor ranks because
  // every tp peer holds this very same buffer.
  std::vector<float> dispatch(static_cast<std::size_t>(E * cap * H));
  scatter_to_experts(x, table, dispatch, H);
  std::vector<float> incoming(dispatch.size());
  ep_comm.all_to_all(ep_local, dispatch, incoming);

  // Tensor-sliced expert FFNs over each source's capacity block, with the
  // row/column-parallel all-reduce inside the tp group.
  std::vector<float> processed(incoming.size());
  std::vector<float> mid(static_cast<std::size_t>(cap * Fl));
  std::vector<float> act(mid.size());
  for (std::int64_t src = 0; src < ep; ++src) {
    for (std::int64_t e = 0; e < El; ++e) {
      const auto& ex = shard.experts[static_cast<std::size_t>(e)];
      const auto off = static_cast<std::size_t>((src * El + e) * cap * H);
      auto xin = std::span<const float>(incoming).subspan(
          off, static_cast<std::size_t>(cap * H));
      auto xout = std::span<float>(processed).subspan(
          off, static_cast<std::size_t>(cap * H));
      kernels::linear_blocked(xin, ex.w1.span(), {}, mid, cap, H, Fl);
      kernels::bias_gelu(mid, ex.b1.span(), act, cap, Fl);
      kernels::linear_blocked(act, ex.w2.span(), {}, xout, cap, Fl, H);
    }
  }
  // One fused all-reduce over every expert's partial outputs, then the bias
  // (added once, identically on every rank, after the reduction).
  tp_comm.all_reduce_sum(tp_local, processed);
  for (std::int64_t src = 0; src < ep; ++src) {
    for (std::int64_t e = 0; e < El; ++e) {
      const auto& ex = shard.experts[static_cast<std::size_t>(e)];
      const auto off = static_cast<std::size_t>((src * El + e) * cap * H);
      for (std::int64_t c = 0; c < cap; ++c) {
        float* row = processed.data() + off + static_cast<std::size_t>(c * H);
        for (std::int64_t d = 0; d < H; ++d) row[d] += ex.b2.at(d);
      }
    }
  }

  // PCC step 3/4: all-to-all back within the ep subgroup; the result is
  // already replicated across tensor ranks (each computed the same reduced
  // values), so no extra all-gather is needed in the functional engine.
  std::vector<float> returned(processed.size());
  ep_comm.all_to_all(ep_local, processed, returned);
  gather_from_experts(returned, table, gating, y, tokens, H);

  MoEForwardStats s;
  s.tokens = tokens;
  s.capacity = cap;
  s.dropped = tokens - table.tokens_routed();
  return s;
}

}  // namespace dsinfer::moe
