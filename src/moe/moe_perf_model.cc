#include "moe/moe_perf_model.h"

#include <algorithm>
#include <stdexcept>

#include "comm/cost_model.h"

namespace dsinfer::moe {

using model::Dtype;

MoEEngineConfig MoEEngineConfig::deepspeed() {
  MoEEngineConfig e;
  e.name = "DeepSpeed-MoE";
  e.pcc = true;
  e.optimized_kernels = true;
  e.use_expert_slicing = true;
  e.dense = perf::EngineModelConfig::deepspeed_fp16();
  return e;
}

MoEEngineConfig MoEEngineConfig::pytorch_baseline() {
  MoEEngineConfig e;
  e.name = "PyTorch-MoE";
  e.pcc = false;
  e.optimized_kernels = false;
  e.use_expert_slicing = false;
  e.dense = perf::EngineModelConfig::pytorch();
  return e;
}

MoETokenLatency moe_token_latency(const model::MoEModelConfig& m,
                                  const MoEEngineConfig& e,
                                  const hw::ClusterSpec& cluster,
                                  std::int64_t gpus, std::int64_t batch,
                                  std::int64_t kv_len) {
  if (gpus < 1 || gpus > cluster.total_gpus()) {
    throw std::invalid_argument("moe_token_latency: bad gpu count");
  }
  const hw::GpuSpec& gpu = cluster.node.gpu;
  const std::int64_t tp =
      std::min<std::int64_t>(m.tensor_parallel, gpus);
  const std::int64_t ep = std::min<std::int64_t>(m.experts, gpus / tp);
  if (ep < 1) throw std::invalid_argument("moe_token_latency: gpus < tp");
  const std::int64_t experts_per_gpu =
      std::max<std::int64_t>(1, m.experts / ep);
  const std::int64_t es =
      e.use_expert_slicing ? std::max<std::int64_t>(1, m.expert_slicing) : 1;

  const double S = static_cast<double>(batch);  // one token per sequence
  const double H = static_cast<double>(m.hidden);
  const double act_b = 2.0;  // fp16 activations
  constexpr double kT16 = 1e12;

  // The all-to-all spans nodes once ep exceeds one node.
  const hw::LinkSpec a2a_link = (ep * tp > cluster.node.gpus_per_node &&
                                 cluster.nodes > 1)
                                    ? cluster.ib_per_gpu
                                    : cluster.node.nvlink;

  MoETokenLatency out;

  // ---- Dense part: every layer's attention + QKV/out GeMMs, plus the
  // dense FFN on non-MoE layers, under tp-way slicing. ----
  {
    const std::int64_t rows = batch;
    const std::int64_t hs = m.hidden / tp;
    double per_layer = 0;
    per_layer += perf::gemm_time_s(e.dense, gpu, rows, m.hidden, 3 * hs);
    per_layer += perf::gemm_time_s(e.dense, gpu, rows, hs, m.hidden);
    per_layer += perf::attention_time_s(e.dense, gpu, batch, 1, kv_len, hs);
    per_layer += perf::elementwise_time_s(e.dense, gpu, rows, m.hidden);
    per_layer += e.dense.launches_per_layer * perf::launch_overhead_s(e.dense, gpu);
    if (tp > 1) {
      per_layer += 2.0 * comm::allreduce_time_s(S * H * act_b, tp,
                                                cluster.node.nvlink);
    }
    double ffn_layer = perf::gemm_time_s(e.dense, gpu, rows, m.hidden,
                                         4 * m.hidden / tp) +
                       perf::gemm_time_s(e.dense, gpu, rows,
                                         4 * m.hidden / tp, m.hidden);
    out.dense_s = static_cast<double>(m.layers) * per_layer +
                  static_cast<double>(m.dense_ffn_layers()) * ffn_layer;
  }

  // ---- Gating: per MoE layer. ----
  {
    const double E = static_cast<double>(m.experts);
    const double ce = std::max(1.0, S / E * 1.25);
    double per_layer;
    if (e.optimized_kernels) {
      // Gate GeMM + table scan + two data-layout transforms, fused into a
      // handful of kernels; complexity S*M*ce.
      const double ops = 2.0 * S * H * E + 2.0 * S * H * ce;
      per_layer = ops / (0.2 * gpu.fp16_tflops * kT16) +
                  4.0 * perf::launch_overhead_s(e.dense, gpu);
    } else {
      // One-hot masks + cumsum + two sparse einsums: S*E*M*ce complexity at
      // poor efficiency, ~25 kernel dispatches (paper Sec. V.C).
      const double ops = 2.0 * S * E * H * ce * 2.0 + 2.0 * S * H * E;
      per_layer = ops / (0.05 * gpu.fp16_tflops * kT16) +
                  25.0 * perf::launch_overhead_s(e.dense, gpu);
    }
    out.gate_s = static_cast<double>(m.moe_layers()) * per_layer;
  }

  // ---- All-to-all: dispatch + combine per MoE layer. ----
  {
    const double bytes_per_rank = S * H * act_b;
    const std::int64_t p = ep * tp;
    const std::int64_t gpn = cluster.node.gpus_per_node;
    // Hierarchical (NCCL-grouped) all-to-all over `ranks` devices.
    auto hier = [&](double bytes, std::int64_t ranks) {
      const std::int64_t span_nodes =
          cluster.nodes > 1 ? std::max<std::int64_t>(1, ranks / gpn) : 1;
      return comm::hierarchical_alltoall_time_s(
          bytes, std::min(ranks, gpn), span_nodes, cluster.node.nvlink,
          cluster.ib_per_gpu);
    };
    double one;
    if (e.pcc && tp > 1) {
      // PCC (Sec. V.B): the exchange runs only among the p/L ranks sharing a
      // tensor-slicing rank; the combine direction adds an all-gather over
      // the L tensor ranks (intra-node NVLink).
      const std::int64_t group = p / tp;
      one = 2.0 * hier(bytes_per_rank, group) +
            comm::allgather_time_s(bytes_per_rank, tp, cluster.node.nvlink);
    } else if (e.optimized_kernels) {
      // DeepSpeed without tensor slicing still uses the grouped a2a.
      one = 2.0 * hier(bytes_per_rank, p);
    } else {
      // Framework baseline: naive flat exchange, one message per peer, plus
      // per-call launch/copy overhead.
      const double flat = comm::alltoall_time_s(bytes_per_rank, p, a2a_link);
      one = 2.0 * (flat + 4.0 * perf::launch_overhead_s(e.dense, gpu));
    }
    out.alltoall_s = static_cast<double>(m.moe_layers()) * one;
  }

  // ---- Expert compute: stream the active local experts' weights. ----
  {
    const double expert_bytes =
        static_cast<double>(m.expert_params()) *
        static_cast<double>(model::dtype_bytes(Dtype::kFP16)) /
        static_cast<double>(es);
    // With top-1 and small batch, the straggler GPU runs at least one and at
    // most min(experts_per_gpu, batch) experts per MoE layer.
    const double active = std::min<double>(
        static_cast<double>(experts_per_gpu), std::max(1.0, S / static_cast<double>(ep)));
    const double bw_eff = e.optimized_kernels ? 0.85 : 0.55;
    const double per_layer =
        active * expert_bytes / (gpu.mem_bw_gbps * 1e9 * bw_eff);
    out.expert_s = static_cast<double>(m.moe_layers()) * per_layer;
  }

  out.total_s = out.dense_s + out.gate_s + out.alltoall_s + out.expert_s;
  out.tokens_per_s = S / std::max(out.total_s, 1e-12);
  out.throughput_per_gpu = out.tokens_per_s / static_cast<double>(gpus);

  // Fig. 11 metric: bytes of parameters the fleet streams per token step
  // divided by the step latency.
  const double streamed_bytes =
      static_cast<double>(gpus) *
      (static_cast<double>(m.expert_params()) * 2.0 *
           static_cast<double>(m.moe_layers()) /
           static_cast<double>(std::max<std::int64_t>(1, es)) +
       static_cast<double>(m.base_dense_params()) * 2.0 /
           static_cast<double>(tp * ep));
  out.aggregate_bw_tbps = streamed_bytes / std::max(out.total_s, 1e-12) / 1e12;
  return out;
}

}  // namespace dsinfer::moe
