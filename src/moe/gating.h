// MoE gating and token routing (paper Sec. V.C).
//
// Two routing representations are provided:
//  * RoutingTable — the paper's optimized "table data-structure": a dense
//    token->expert map plus its inverse expert->tokens map built by a single
//    scan, replacing one-hot tensors. Scatter/gather become data-layout
//    transformations of complexity S*M*c_e.
//  * One-hot dispatch/combine masks — the framework baseline: sparse einsum
//    over [S, E, C] masks whose complexity is S*E*M*c_e, with (E-1)/E of the
//    multiply-adds being zeros.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kernels/tensor.h"

namespace dsinfer::moe {

struct GatingOutput {
  std::vector<std::int32_t> expert_of_token;  // top-1 expert per token
  std::vector<float> gate_weight;             // softmax prob of that expert
};

// Computes top-1 gating over logits[S, E] (softmax then argmax).
GatingOutput top1_gating(std::span<const float> logits, std::int64_t tokens,
                         std::int64_t experts);

// General top-k gating (paper Sec. II.b: "a variable number of experts and a
// top-k gating function"). Each token selects its k highest-scoring experts;
// the k softmax probabilities are renormalized to sum to 1.
struct TopKGating {
  std::int64_t k = 1;
  // Row-major [tokens, k]: expert ids (descending score) and their weights.
  std::vector<std::int32_t> experts;
  std::vector<float> weights;
};

TopKGating topk_gating(std::span<const float> logits, std::int64_t tokens,
                       std::int64_t experts, std::int64_t k);

// Routing table for top-k: each (token, choice) pair claims a slot, capacity
// applied per expert first-come-first-served, exactly like the top-1 table.
struct TopKRoutingTable {
  std::int64_t experts = 0;
  std::int64_t capacity = 0;
  std::int64_t k = 1;
  std::vector<std::int32_t> expert_tokens;  // [E * capacity] token ids or -1
  // [tokens * k]: slot of each (token, choice), -1 when dropped.
  std::vector<std::int32_t> slot_of_choice;
};

TopKRoutingTable build_topk_routing_table(const TopKGating& gating,
                                          std::int64_t experts,
                                          std::int64_t capacity);

// Dense dispatch/combine for top-k: each routed (token, choice) is copied to
// its slot; the combine sums the k expert outputs scaled by their gate
// weights (dropped choices contribute nothing).
void topk_scatter_to_experts(std::span<const float> x,
                             const TopKRoutingTable& table,
                             std::span<float> expert_input,
                             std::int64_t hidden);
void topk_gather_from_experts(std::span<const float> expert_output,
                              const TopKRoutingTable& table,
                              const TopKGating& gating, std::span<float> y,
                              std::int64_t tokens, std::int64_t hidden);

// Expert capacity: how many tokens one expert may process.
// ceil(tokens / experts * factor), min 1.
std::int64_t expert_capacity(std::int64_t tokens, std::int64_t experts,
                             double capacity_factor);

// Inverse map from experts to the token ids they process. Tokens beyond an
// expert's capacity are dropped (they contribute nothing; the transformer's
// residual path carries them through, as in GShard/Switch).
struct RoutingTable {
  std::int64_t experts = 0;
  std::int64_t capacity = 0;
  // expert_tokens[e * capacity + c] = token id, or -1 when unused.
  std::vector<std::int32_t> expert_tokens;
  // slot_of_token[s] = e * capacity + c if routed, -1 if dropped.
  std::vector<std::int32_t> slot_of_token;

  std::int64_t tokens_routed() const;
};

// Builds the table by one scan of expert_of_token (the paper's replacement
// for cumsum-over-one-hot).
RoutingTable build_routing_table(const GatingOutput& gating,
                                 std::int64_t experts, std::int64_t capacity);

// ---- Optimized data-layout transforms (dense representation) ----

// Gathers routed tokens into the [E, C, H] expert buffer; unused slots are
// zeroed. Complexity S*M (each routed token copied once).
void scatter_to_experts(std::span<const float> x, const RoutingTable& table,
                        std::span<float> expert_input, std::int64_t hidden);

// Scatters expert outputs back to token order, scaled by the gate weight.
// Dropped tokens produce zeros. Complexity S*M.
void gather_from_experts(std::span<const float> expert_output,
                         const RoutingTable& table,
                         const GatingOutput& gating, std::span<float> y,
                         std::int64_t tokens, std::int64_t hidden);

// ---- Baseline sparse-einsum path (one-hot masks) ----

// dispatch[s, e, c] = 1 if token s occupies slot c of expert e.
// Built from the same routing decisions so both paths agree exactly.
Tensor build_dispatch_mask(const RoutingTable& table, std::int64_t tokens);

// expert_input[e, c, m] = sum_s dispatch[s, e, c] * x[s, m]  (S*E*C*M MACs).
void einsum_dispatch(const Tensor& dispatch_mask, std::span<const float> x,
                     std::span<float> expert_input, std::int64_t tokens,
                     std::int64_t experts, std::int64_t capacity,
                     std::int64_t hidden);

// y[s, m] = sum_{e,c} combine[s, e, c] * expert_output[e, c, m]
// where combine = dispatch * gate_weight (S*E*C*M MACs).
void einsum_combine(const Tensor& dispatch_mask, const GatingOutput& gating,
                    std::span<const float> expert_output, std::span<float> y,
                    std::int64_t tokens, std::int64_t experts,
                    std::int64_t capacity, std::int64_t hidden);

// ---- Load-balance diagnostics (serving observability) ----

struct ExpertLoadStats {
  std::vector<std::int64_t> tokens_per_expert;
  std::int64_t busiest = 0;   // max tokens routed to one expert
  std::int64_t idle = 0;      // experts with zero tokens
  // Coefficient of variation of the per-expert load (0 = perfectly even);
  // the standard imbalance diagnostic for MoE serving.
  double imbalance = 0;
};

ExpertLoadStats expert_load_stats(const GatingOutput& gating,
                                  std::int64_t experts);

}  // namespace dsinfer::moe
