#include "moe/expert_parallel.h"

#include <cstring>
#include <stdexcept>
#include <vector>

#include "kernels/gemm.h"

namespace dsinfer::moe {

EpShard EpShard::from_full(const MoELayerWeights& full, std::int64_t ep,
                           std::int64_t rank) {
  if (ep < 1 || rank < 0 || rank >= ep || full.num_experts % ep != 0) {
    throw std::invalid_argument("EpShard: bad ep/rank or indivisible experts");
  }
  EpShard s;
  s.ep = ep;
  s.rank = rank;
  s.experts_total = full.num_experts;
  s.experts_local = full.num_experts / ep;
  s.hidden = full.hidden;
  s.ffn = full.ffn;
  s.w_gate = full.w_gate.clone();
  s.experts.reserve(static_cast<std::size_t>(s.experts_local));
  for (std::int64_t e = 0; e < s.experts_local; ++e) {
    const auto& src =
        full.experts[static_cast<std::size_t>(rank * s.experts_local + e)];
    ExpertFFN copy;
    copy.w1 = src.w1.clone();
    copy.b1 = src.b1.clone();
    copy.w2 = src.w2.clone();
    copy.b2 = src.b2.clone();
    s.experts.push_back(std::move(copy));
  }
  return s;
}

MoEForwardStats ep_moe_forward(const EpShard& shard, std::span<const float> x,
                               std::span<float> y, std::int64_t tokens,
                               double capacity_factor,
                               comm::Communicator& comm, std::int64_t rank) {
  const std::int64_t H = shard.hidden;
  const std::int64_t E = shard.experts_total;
  const std::int64_t El = shard.experts_local;
  const std::int64_t ep = shard.ep;
  if (x.size() < static_cast<std::size_t>(tokens * H) ||
      y.size() < static_cast<std::size_t>(tokens * H)) {
    throw std::invalid_argument("ep_moe_forward: span too small");
  }

  // Local gating over the replicated gate weights.
  std::vector<float> logits(static_cast<std::size_t>(tokens * E));
  kernels::linear_blocked(x, shard.w_gate.span(), {}, logits, tokens, H, E);
  GatingOutput gating = top1_gating(logits, tokens, E);
  const std::int64_t cap = expert_capacity(tokens, E, capacity_factor);
  RoutingTable table = build_routing_table(gating, E, cap);

  // Dispatch buffer [E, cap, H], expert-major so each destination rank's
  // chunk (its El experts) is contiguous — the all-to-all chunk layout.
  std::vector<float> dispatch(static_cast<std::size_t>(E * cap * H));
  scatter_to_experts(x, table, dispatch, H);

  // All-to-all: receive [ep, El, cap, H] — every source rank's tokens for my
  // experts.
  std::vector<float> incoming(dispatch.size());
  comm.all_to_all(rank, dispatch, incoming);

  // Run local experts over each source rank's capacity block.
  std::vector<float> processed(incoming.size());
  for (std::int64_t src = 0; src < ep; ++src) {
    for (std::int64_t e = 0; e < El; ++e) {
      const auto off = static_cast<std::size_t>((src * El + e) * cap * H);
      shard.experts[static_cast<std::size_t>(e)].forward(
          std::span<const float>(incoming).subspan(
              off, static_cast<std::size_t>(cap * H)),
          std::span<float>(processed).subspan(
              off, static_cast<std::size_t>(cap * H)),
          cap);
    }
  }

  // All-to-all back: each source rank gets its tokens' expert outputs in the
  // original [E, cap, H] layout.
  std::vector<float> returned(processed.size());
  comm.all_to_all(rank, processed, returned);

  gather_from_experts(returned, table, gating, y, tokens, H);

  MoEForwardStats s;
  s.tokens = tokens;
  s.capacity = cap;
  s.dropped = tokens - table.tokens_routed();
  return s;
}

}  // namespace dsinfer::moe
