#include "hw/topology.h"

#include <stdexcept>

namespace dsinfer::hw {

GpuSpec a100_40gb() {
  GpuSpec g;
  g.name = "A100-40GB";
  g.mem_gb = 40.0;
  g.mem_bw_gbps = 1555.0;
  g.fp16_tflops = 312.0;
  g.fp32_tflops = 19.5;
  g.int8_tops = 624.0;
  g.kernel_launch_us = 2.5;
  return g;
}

GpuSpec a6000() {
  GpuSpec g;
  g.name = "A6000-48GB";
  g.mem_gb = 48.0;
  g.mem_bw_gbps = 768.0;
  g.fp16_tflops = 158.4;  // the paper's "theoretical peak" for Fig. 9
  g.fp32_tflops = 38.7;
  g.int8_tops = 316.8;
  g.kernel_launch_us = 2.5;
  return g;
}

GpuSpec v100_32gb() {
  GpuSpec g;
  g.name = "V100-32GB";
  g.mem_gb = 32.0;
  g.mem_bw_gbps = 900.0;
  g.fp16_tflops = 125.0;
  g.fp32_tflops = 15.7;
  g.int8_tops = 0.0;  // no INT8 tensor cores
  g.kernel_launch_us = 2.5;
  return g;
}

ClusterSpec dgx_a100_cluster(std::int64_t nodes) {
  if (nodes < 1 || nodes > 32) {
    throw std::invalid_argument("dgx_a100_cluster: nodes must be in [1, 32]");
  }
  ClusterSpec c;
  c.name = "DGX-A100 x" + std::to_string(nodes);
  c.nodes = nodes;
  c.node.gpu = a100_40gb();
  c.node.gpus_per_node = 8;
  c.node.nvlink = {3.0, 300.0};     // NVSwitch, ~300 GB/s effective per GPU
  c.node.pcie = {5.0, 25.0};        // PCIe gen4 x16, ~25 GB/s effective
  c.node.gpus_per_pcie_link = 2;
  c.node.dram_gb = 1024.0;
  c.node.dram_bw_gbps = 200.0;
  c.node.nvme_gb = 15000.0;
  c.node.nvme_read_gbps = 25.0;
  c.node.cpu_tflops = 3.0;
  c.ib_per_gpu = {8.0, 25.0};       // 8x HDR200 per node / 8 GPUs
  return c;
}

ClusterSpec lambda_a6000() {
  ClusterSpec c;
  c.name = "Lambda-A6000";
  c.nodes = 1;
  c.node.gpu = a6000();
  c.node.gpus_per_node = 2;
  c.node.nvlink = {3.0, 56.0};      // NVLink bridge between the two A6000s
  c.node.pcie = {5.0, 25.0};        // PCIe gen4 x16
  c.node.gpus_per_pcie_link = 1;    // each A6000 has its own link
  c.node.dram_gb = 256.0;
  c.node.dram_bw_gbps = 150.0;
  c.node.nvme_gb = 2000.0;
  c.node.nvme_read_gbps = 3.2;
  c.node.cpu_tflops = 2.0;
  c.ib_per_gpu = {0.0, 0.0};
  return c;
}

ClusterSpec dgx2_v100() {
  ClusterSpec c;
  c.name = "DGX-2 V100";
  c.nodes = 1;
  c.node.gpu = v100_32gb();
  c.node.gpus_per_node = 16;
  c.node.nvlink = {3.0, 150.0};     // NVSwitch gen1
  c.node.pcie = {5.0, 12.0};        // PCIe gen3 x16
  c.node.gpus_per_pcie_link = 2;
  c.node.dram_gb = 1500.0;
  c.node.dram_bw_gbps = 170.0;
  c.node.nvme_gb = 30000.0;
  c.node.nvme_read_gbps = 25.0;     // 8-drive RAID
  c.node.cpu_tflops = 2.5;
  c.ib_per_gpu = {0.0, 0.0};
  return c;
}

}  // namespace dsinfer::hw
