// Hardware substrate: published device and interconnect specifications for
// the paper's three testbeds (Sec. VII-A.4):
//   * a cluster of 8xA100-40GB DGX boxes (up to 256 GPUs),
//   * a Lambda workstation with 2x A6000-48GB, 256 GB DRAM, 2 TB NVMe,
//   * a DGX-2 with 16x V100-32GB, 1.5 TB DRAM, 30 TB NVMe.
// The perf model consumes these specs; nothing here measures real hardware.
#pragma once

#include <cstdint>
#include <string>

namespace dsinfer::hw {

struct GpuSpec {
  std::string name;
  double mem_gb = 0;          // device HBM capacity
  double mem_bw_gbps = 0;     // peak HBM bandwidth, GB/s
  double fp16_tflops = 0;     // dense tensor-core peak
  double fp32_tflops = 0;
  double int8_tops = 0;       // INT8 tensor-core peak (0 if unsupported)
  double kernel_launch_us = 0;  // CPU-side launch overhead per kernel

  double peak_tflops(bool fp16) const { return fp16 ? fp16_tflops : fp32_tflops; }
};

// One directed link: alpha-beta model parameters.
struct LinkSpec {
  double latency_us = 0;  // alpha
  double bw_gbps = 0;     // beta^-1, effective unidirectional GB/s
};

struct NodeSpec {
  GpuSpec gpu;
  std::int64_t gpus_per_node = 0;
  LinkSpec nvlink;           // GPU<->GPU within the node
  LinkSpec pcie;             // GPU<->host, per PCIe link
  std::int64_t gpus_per_pcie_link = 2;  // paper Sec. IV-C.3: two GPUs share one link
  double dram_gb = 0;
  double dram_bw_gbps = 0;   // host memory bandwidth (CPU-side compute bound)
  double nvme_gb = 0;
  double nvme_read_gbps = 0;  // aggregate sustained NVMe read bandwidth
  double cpu_tflops = 0;      // host FP32 peak for the CPU-only baseline
};

struct ClusterSpec {
  std::string name;
  NodeSpec node;
  std::int64_t nodes = 1;
  LinkSpec ib_per_gpu;  // effective per-GPU share of inter-node fabric

  std::int64_t total_gpus() const { return nodes * node.gpus_per_node; }
  double aggregate_hbm_gb() const {
    return static_cast<double>(total_gpus()) * node.gpu.mem_gb;
  }
  double aggregate_mem_bw_gbps() const {
    return static_cast<double>(total_gpus()) * node.gpu.mem_bw_gbps;
  }
};

GpuSpec a100_40gb();
GpuSpec a6000();
GpuSpec v100_32gb();

// 8x A100 DGX boxes joined by HDR InfiniBand; `nodes` in [1, 32].
ClusterSpec dgx_a100_cluster(std::int64_t nodes);
// Lambda workstation: 2x A6000, 256 GB DRAM, 2 TB NVMe.
ClusterSpec lambda_a6000();
// DGX-2: 16x V100 over NVSwitch, 1.5 TB DRAM, 30 TB NVMe.
ClusterSpec dgx2_v100();

}  // namespace dsinfer::hw
