// Fleet-layer configuration (ISSUE 6) — the ServeSpec family extended one
// level up: a FleetSpec wraps the per-replica core::ServeSpec and adds the
// knobs of the layer above one engine — replica count, routing policy,
// per-SLO-class lanes, hedging, failover, health probing, and the circuit
// breaker. Same contract as EngineSpec/ServeSpec: fluent setters build the
// configuration, validate() reports every violated constraint as a typed
// core::ConfigError, and FleetRouter's constructor throws ConfigException on
// the first one.
//
//   core::EngineSpec eng(model::tiny_gpt());
//   core::ServeSpec serve(eng);
//   serve.scheduler(core::Scheduler::kContinuous).virtual_service(vs);
//   fleet::FleetSpec spec(serve);
//   spec.replicas(3).policy(fleet::RoutePolicy::kPowerOfTwo)
//       .hedge(true, 20e-3).failover_budget(2);
//   fleet::FleetRouter router(spec, /*seed=*/7);
//
// The routing vocabulary (RoutePolicy, route_choose, Breaker) lives here so
// the functional router (fleet/router) and the DES twin (fleet/fleet_sim)
// run the *same* policy and breaker logic over their different service
// models — mirroring is by construction, not by parallel reimplementation.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/engine_spec.h"
#include "util/rng.h"

namespace dsinfer::fleet {

// How the router picks a replica for a dispatch.
//  * kLeastOutstanding — argmin of estimated outstanding work (global view).
//  * kPowerOfTwo — two uniform draws, keep the less loaded (O(1) state, near
//    least-outstanding tail behaviour; the classic balls-into-bins result).
//  * kPrefixAffinity — hash of the prompt's leading tokens pins a home
//    replica (KV/prefix locality for hot system prompts), spilling to
//    power-of-two when the home is unhealthy or overloaded.
enum class RoutePolicy { kLeastOutstanding, kPowerOfTwo, kPrefixAffinity };

const char* route_policy_name(RoutePolicy p);

// Per-SLO-class router lane. `queue_limit` bounds in-system (dispatched but
// unfinished) requests of the class — the backpressure valve that turns
// overload into typed sheds instead of unbounded queues. Hedging applies to
// the latency class only.
struct SloLaneOptions {
  std::int64_t queue_limit = 64;
  bool hedging = false;
  double hedge_delay_s = 0.0;
};

struct FleetOptions {
  std::int64_t replicas = 1;
  RoutePolicy policy = RoutePolicy::kLeastOutstanding;
  SloLaneOptions latency;  // core::SloClass::kLatency lane
  SloLaneOptions batch;    // core::SloClass::kBatch lane (no hedging)
  // Re-dispatches a request may absorb (replica crash or engine-retry
  // exhaustion) before it fails with a typed budget error.
  std::int64_t failover_budget = 1;
  // Health probing / per-replica circuit breaker.
  double probe_interval_s = 5e-3;
  std::int64_t breaker_threshold = 2;  // consecutive failures -> open
  double breaker_cooldown_s = 20e-3;   // open -> half-open after this long
  // Prefix-affinity knobs: tokens hashed, and the spill factor (home replica
  // is skipped when its outstanding work exceeds spill x fleet mean).
  std::int64_t affinity_prefix = 8;
  double affinity_spill = 2.0;
  // Per-replica degraded INT8 half-capacity lane for the batch class.
  bool batch_lane = true;
  // Chaos hook: replica r's engine invocations draw from site
  // "fleet.r<r>" of this injector (transient faults, on top of the
  // scheduled ReplicaFault timeline).
  util::FaultInjector* injector = nullptr;
};

// One scheduled replica-level fault in a chaos run. Crash is terminal;
// stall freezes the replica for `duration_s`; straggle multiplies its
// virtual service costs by `factor` for `duration_s` (0 = until the end).
struct ReplicaFault {
  enum class Kind { kCrash, kStall, kStraggle };
  std::int64_t replica = 0;
  double at_s = 0;
  Kind kind = Kind::kCrash;
  double duration_s = 0;
  double factor = 1.0;
};

class FleetSpec {
 public:
  explicit FleetSpec(core::ServeSpec serve);

  FleetSpec& replicas(std::int64_t n);
  FleetSpec& policy(RoutePolicy p);
  FleetSpec& hedge(bool on, double delay_s = 0.0);
  FleetSpec& queue_limits(std::int64_t latency, std::int64_t batch);
  FleetSpec& failover_budget(std::int64_t n);
  FleetSpec& probe(double interval_s, std::int64_t breaker_threshold,
                   double cooldown_s);
  FleetSpec& affinity(std::int64_t prefix_tokens, double spill_factor);
  FleetSpec& batch_lane(bool on);
  FleetSpec& fault_injector(util::FaultInjector* inj);

  const core::ServeSpec& serve() const { return serve_; }
  const FleetOptions& options() const { return opts_; }

  // Per-replica ServeSpec errors first (a fleet is only as valid as its
  // replicas), then every violated fleet-level constraint, in stable order.
  std::vector<core::ConfigError> validate() const;

 private:
  core::ServeSpec serve_;
  FleetOptions opts_;
};

// ---- Routing vocabulary shared by the functional router and the DES twin.

// What the chooser sees of one replica. `dispatchable` means the breaker
// admits traffic (closed); `outstanding_s` is the replica's estimated queued
// + in-flight work in virtual seconds.
struct ReplicaLoadView {
  bool dispatchable = true;
  double outstanding_s = 0.0;
  // ISSUE 7: this replica's KV prefix cache already holds a prefix of the
  // request being routed — actual cache *contents*, not a hash bucket.
  // Prefix-affinity routing prefers a warm replica over the hash home.
  bool prefix_warm = false;
};

// FNV-1a over the leading `prefix_tokens` tokens — the prefix-affinity key.
std::uint64_t prefix_hash(std::span<const std::int32_t> prompt,
                          std::int64_t prefix_tokens);

// Picks a replica per `policy` among dispatchable entries of `views`,
// excluding `exclude` (pass -1 for none; used for hedges and failover).
// Returns -1 when no replica is dispatchable. Deterministic given the RNG
// state; every random draw flows through `rng` so functional and simulated
// routers consume identical streams when stepped identically.
std::int64_t route_choose(RoutePolicy policy, const FleetOptions& opts,
                          std::span<const ReplicaLoadView> views,
                          std::uint64_t affinity_key, std::int64_t exclude,
                          Rng& rng);

// Per-replica circuit breaker: closed (traffic flows) -> open after
// `threshold` consecutive failures (no traffic) -> half-open after the
// cooldown (next probe decides) -> closed on success / reopen on failure.
struct Breaker {
  enum class State { kClosed, kOpen, kHalfOpen };

  State state = State::kClosed;
  std::int64_t consecutive_failures = 0;
  double opened_at_s = 0;
  // Lifetime transition counts (mirrored into FleetCounters).
  std::int64_t opens = 0, half_opens = 0, closes = 0;

  bool dispatchable() const { return state == State::kClosed; }

  // Returns true when this failure opened (or re-opened) the breaker.
  bool on_failure(double now_s, std::int64_t threshold);
  void on_success();
  // Open -> half-open once the cooldown elapses.
  void maybe_half_open(double now_s, double cooldown_s);
};

}  // namespace dsinfer::fleet
