#include "fleet/router.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <queue>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/server.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dsinfer::fleet {

namespace {

using core::RequestStats;
using core::SloClass;
using core::TimedRequest;
using Outcome = core::RequestStats::Outcome;

double to_us(double s) { return s * 1e6; }

constexpr std::int64_t kRouterTrack = 0;

std::size_t cls(SloClass s) { return s == SloClass::kBatch ? 1 : 0; }

// One live copy of a request on some replica (a request has one copy, or two
// while a hedge race is in flight).
struct Copy {
  std::int64_t replica = -1;
  bool is_hedge = false;
};

struct ReqState {
  bool counted = false;   // holds an in-system slot of its class
  bool terminal = false;
  bool hedge_armed = false;
  std::vector<Copy> copies;
  // Attribution frontier (ISSUE 8): everything in [arrival_s, mark_s] is
  // already charged to a phase. Advanced at non-hedge dispatch
  // (router_queue), failover (the lost copy's time collapses into
  // failover), and terminal shed/fail; the winning copy's completion
  // closes [mark_s, finish_s].
  double mark_s = 0;
  double hedge_fire_s = -1;  // when the hedge copy was dispatched
};

// The whole event loop's state for one run_trace call, so the handlers can
// read like the protocol they implement instead of threading a dozen
// parameters around.
struct Run {
  const FleetSpec& spec;
  const FleetOptions& fo;
  std::uint64_t seed;
  const std::vector<TimedRequest>& requests;

  std::vector<std::unique_ptr<Replica>> replicas;
  std::vector<Breaker> breakers;
  Rng rng;
  FleetResult result;
  std::vector<ReqState> st;
  std::deque<std::size_t> pending;  // arrived, waiting for a healthy replica
  std::int64_t in_system[2] = {0, 0};
  std::size_t terminal_count = 0;
  // Hedge timers: (fire time, request index), earliest first.
  std::priority_queue<std::pair<double, std::size_t>,
                      std::vector<std::pair<double, std::size_t>>,
                      std::greater<>>
      hedges;
  bool tracing = false;

  Run(const FleetSpec& s, std::uint64_t sd,
      const std::vector<TimedRequest>& reqs)
      : spec(s), fo(s.options()), seed(sd), requests(reqs),
        rng(sd ^ 0x9e3779b97f4a7c15ull), st(reqs.size()) {
    const auto n_replicas = static_cast<std::size_t>(fo.replicas);
    replicas.reserve(n_replicas);
    for (std::size_t r = 0; r < n_replicas; ++r) {
      // Same engine seed everywhere: identical weights, identical greedy
      // tokens — the failover bit-identity invariant.
      replicas.push_back(std::make_unique<Replica>(
          spec, static_cast<std::int64_t>(r), seed));
    }
    breakers.resize(n_replicas);
    result.stats.resize(reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      auto& fs = result.stats[i];
      fs.base.id = reqs[i].id;
      fs.base.arrival_s = reqs[i].arrival_s;
      fs.base.deadline_s = reqs[i].deadline_s;
      fs.slo = reqs[i].slo;
    }
    result.counters.requests = static_cast<std::int64_t>(reqs.size());
    tracing = obs::trace_enabled();
    if (tracing) {
      auto& rec = obs::TraceRecorder::instance();
      rec.set_track_name(obs::kServerPid, kRouterTrack, "fleet router");
      for (std::size_t r = 0; r < n_replicas; ++r) {
        rec.set_track_name(obs::kServerPid, replica_track(r),
                           "replica " + std::to_string(r));
      }
      for (const auto& rq : reqs) {
        rec.set_track_name(obs::kServerPid, request_track(rq.id),
                           "req " + std::to_string(rq.id));
        rec.instant_at(obs::kServerPid, request_track(rq.id),
                       to_us(rq.arrival_s), "fleet", "arrival");
      }
    }
  }

  std::int64_t replica_track(std::size_t r) const {
    return 1 + static_cast<std::int64_t>(r);
  }
  std::int64_t request_track(std::int64_t id) const {
    return 1 + fo.replicas + id;
  }
  void req_instant(std::size_t i, double now, std::string name) {
    if (tracing) {
      obs::TraceRecorder::instance().instant_at(
          obs::kServerPid, request_track(requests[i].id), to_us(now), "fleet",
          std::move(name));
    }
  }
  void replica_instant(std::size_t r, double now, std::string name) {
    if (tracing) {
      obs::TraceRecorder::instance().instant_at(
          obs::kServerPid, replica_track(r), to_us(now), "fleet",
          std::move(name));
    }
  }

  const SloLaneOptions& lane(SloClass s) const {
    return s == SloClass::kBatch ? fo.batch : fo.latency;
  }

  bool all_crashed() const {
    for (const auto& r : replicas) {
      if (!r->crashed()) return false;
    }
    return true;
  }

  // `rq` (optional) is the request being routed: when present, each view's
  // prefix_warm reflects whether that replica's KV prefix cache actually
  // holds a prefix of it (ISSUE 7 warm routing; false when the prefix cache
  // is disabled, so older configs route exactly as before).
  std::vector<ReplicaLoadView> views(const TimedRequest* rq = nullptr) const {
    std::vector<ReplicaLoadView> v(replicas.size());
    for (std::size_t r = 0; r < replicas.size(); ++r) {
      v[r].dispatchable = breakers[r].dispatchable();
      v[r].outstanding_s = replicas[r]->outstanding_s();
      if (rq) v[r].prefix_warm = replicas[r]->holds_prefix(*rq);
    }
    return v;
  }

  void terminalize(std::size_t i) {
    st[i].terminal = true;
    ++terminal_count;
    if (st[i].counted) {
      --in_system[cls(requests[i].slo)];
      st[i].counted = false;
    }
  }

  void cancel_copies(std::size_t i) {
    for (const Copy& c : st[i].copies) {
      replicas[static_cast<std::size_t>(c.replica)]->cancel(i);
    }
    st[i].copies.clear();
  }

  void shed(std::size_t i, double now, ShedReason reason) {
    cancel_copies(i);
    auto& fs = result.stats[i];
    fs.reason = reason;
    fs.base.outcome = Outcome::kShed;
    fs.base.start_s = fs.base.finish_s = now;
    fs.base.attr.add(obs::Phase::kShed, now - st[i].mark_s);
    st[i].mark_s = now;
    ++result.counters.sheds;
    switch (reason) {
      case ShedReason::kQueueFull: ++result.counters.shed_queue_full; break;
      case ShedReason::kAdmissionDeadline:
        ++result.counters.shed_deadline;
        break;
      case ShedReason::kNoHealthyReplica:
        ++result.counters.shed_no_healthy;
        break;
      case ShedReason::kArenaPages:
        ++result.counters.shed_arena_pages;
        break;
      default: break;
    }
    terminalize(i);
    req_instant(i, now, std::string("shed: ") + shed_reason_name(reason));
  }

  void fail_budget(std::size_t i, double now) {
    cancel_copies(i);
    auto& fs = result.stats[i];
    fs.reason = ShedReason::kFailoverBudget;
    fs.base.outcome = Outcome::kFailed;
    fs.base.start_s = fs.base.finish_s = now;
    fs.base.attr.add(obs::Phase::kFailover, now - st[i].mark_s);
    st[i].mark_s = now;
    ++result.counters.failures;
    terminalize(i);
    req_instant(i, now, "failed: failover budget exhausted");
  }

  // Routes one copy of request i (excluding `exclude`, -1 for none) and
  // enqueues it. Returns the chosen replica, or -1 when none is dispatchable.
  std::int64_t dispatch_copy(std::size_t i, double now, std::int64_t exclude,
                             bool is_hedge) {
    const auto v = views(&requests[i]);
    const std::int64_t r = route_choose(
        fo.policy, fo, v, prefix_hash(requests[i].prompt, fo.affinity_prefix),
        exclude, rng);
    if (r < 0) return -1;
    replicas[static_cast<std::size_t>(r)]->enqueue(i, &requests[i]);
    st[i].copies.push_back(Copy{r, is_hedge});
    if (!is_hedge) {
      // Hedge dispatches don't advance the frontier: the primary is still
      // in flight, and the race is attributed at completion.
      result.stats[i].base.attr.add(obs::Phase::kRouterQueue,
                                    now - st[i].mark_s);
      st[i].mark_s = now;
    }
    ++result.counters.dispatches;
    req_instant(i, now,
                std::string(is_hedge ? "hedge -> r" : "dispatch -> r") +
                    std::to_string(r));
    if (!is_hedge && requests[i].slo == SloClass::kLatency &&
        fo.latency.hedging && !st[i].hedge_armed) {
      hedges.emplace(now + fo.latency.hedge_delay_s, i);
      st[i].hedge_armed = true;
    }
    return r;
  }

  // First dispatch attempt (arrival or pending drain). Applies admission
  // control; parks the request in `pending` when no replica is dispatchable.
  void try_dispatch(std::size_t i, double now) {
    const auto& rq = requests[i];
    // Structural KV-page rejection (ISSUE 7): if the request's worst-case
    // pages can never fit a replica's pool, no amount of waiting helps —
    // shed typed now. Replicas share one spec, so probing any one suffices;
    // this also guarantees every enqueued request is eventually admissible
    // (the replica's page-budget gate never wedges on an impossible head).
    if (!replicas.front()->fits_request(rq)) {
      shed(i, now, ShedReason::kArenaPages);
      return;
    }
    const auto& res = spec.serve().options().resilience;
    if (res.admission_control && rq.deadline_s < core::kNoDeadline) {
      const auto& vs = spec.serve().options().virtual_service;
      const double est =
          vs.prefill_s + vs.per_token_s * static_cast<double>(rq.new_tokens);
      if (now + est > rq.deadline_s) {
        shed(i, now, ShedReason::kAdmissionDeadline);
        return;
      }
    }
    if (dispatch_copy(i, now, -1, false) < 0) {
      if (all_crashed()) {
        shed(i, now, ShedReason::kNoHealthyReplica);
      } else {
        pending.push_back(i);  // a probe tick re-drains once a breaker closes
      }
    }
  }

  void arrival(std::size_t i, double now) {
    const auto& rq = requests[i];
    st[i].mark_s = rq.arrival_s;  // attribution starts at arrival
    if (in_system[cls(rq.slo)] >= lane(rq.slo).queue_limit) {
      shed(i, now, ShedReason::kQueueFull);  // backpressure, typed
      return;
    }
    ++in_system[cls(rq.slo)];
    st[i].counted = true;
    try_dispatch(i, now);
  }

  void fire_hedge(std::size_t i, double now) {
    // Fire only while exactly the primary copy is still in flight.
    if (st[i].terminal || st[i].copies.size() != 1) return;
    const std::int64_t primary = st[i].copies.front().replica;
    if (dispatch_copy(i, now, primary, true) >= 0) {
      ++result.counters.hedges;
      result.stats[i].hedged = true;
      st[i].hedge_fire_s = now;
    }
  }

  // Re-dispatches request i after its only copy was lost (crash drain or
  // engine failure on `exclude`), charging the failover budget.
  void failover(std::size_t i, double now, std::int64_t exclude) {
    if (result.stats[i].failovers >= fo.failover_budget) {
      fail_budget(i, now);
      return;
    }
    // The lost copy's whole life since the frontier (replica queue time,
    // any partial service) collapses into the failover phase: that work
    // bought the request nothing.
    result.stats[i].base.attr.add(obs::Phase::kFailover, now - st[i].mark_s);
    st[i].mark_s = now;
    ++result.stats[i].failovers;
    ++result.counters.failovers;
    req_instant(i, now, "failover from r" + std::to_string(exclude));
    if (dispatch_copy(i, now, exclude, false) < 0) {
      if (all_crashed()) {
        shed(i, now, ShedReason::kNoHealthyReplica);
      } else {
        pending.push_back(i);
      }
    }
  }

  // The breaker opened on replica r: its outstanding copies are lost and
  // must fail over (or be dropped if a hedge twin survives elsewhere).
  void breaker_failure(std::size_t r, double now) {
    if (!breakers[r].on_failure(now, fo.breaker_threshold)) return;
    ++result.counters.breaker_opens;
    replica_instant(r, now, "breaker open");
    for (std::size_t i : replicas[r]->drain()) {
      auto& copies = st[i].copies;
      copies.erase(std::remove_if(copies.begin(), copies.end(),
                                  [&](const Copy& c) {
                                    return c.replica ==
                                           static_cast<std::int64_t>(r);
                                  }),
                   copies.end());
      if (st[i].terminal) continue;
      if (!copies.empty()) {
        ++result.counters.copies_dropped;  // hedge twin still racing
        continue;
      }
      failover(i, now, static_cast<std::int64_t>(r));
    }
  }

  void probe_tick(double now) {
    for (std::size_t r = 0; r < replicas.size(); ++r) {
      ++result.counters.probes;
      const auto was = breakers[r].state;
      breakers[r].maybe_half_open(now, fo.breaker_cooldown_s);
      if (was != breakers[r].state) {
        ++result.counters.breaker_half_opens;
        replica_instant(r, now, "breaker half-open");
      }
      if (replicas[r]->responsive(now)) {
        const bool closing = breakers[r].state == Breaker::State::kHalfOpen;
        breakers[r].on_success();
        if (closing) {
          ++result.counters.breaker_closes;
          replica_instant(r, now, "breaker closed");
        }
      } else {
        ++result.counters.probe_failures;
        breaker_failure(r, now);
      }
    }
    if (all_crashed()) {
      // Nothing will ever serve again: every parked request sheds typed now,
      // and arrivals shed on arrival — the no-hang guarantee.
      while (!pending.empty()) {
        const std::size_t i = pending.front();
        pending.pop_front();
        if (!st[i].terminal) shed(i, now, ShedReason::kNoHealthyReplica);
      }
      return;
    }
    drain_pending(now);
  }

  void drain_pending(double now) {
    std::deque<std::size_t> keep;
    while (!pending.empty()) {
      const std::size_t i = pending.front();
      pending.pop_front();
      if (st[i].terminal) continue;
      const auto& rq = requests[i];
      const auto& res = spec.serve().options().resilience;
      if (res.admission_control && now > rq.deadline_s) {
        shed(i, now, ShedReason::kAdmissionDeadline);
        continue;
      }
      if (dispatch_copy(i, now, -1, false) < 0) keep.push_back(i);
    }
    pending = std::move(keep);
  }

  void apply_fault(const ReplicaFault& f, double now) {
    const auto r = static_cast<std::size_t>(f.replica);
    if (r >= replicas.size()) return;
    switch (f.kind) {
      case ReplicaFault::Kind::kCrash:
        replicas[r]->crash();
        ++result.counters.crashes;
        replica_instant(r, now, "crash");
        break;
      case ReplicaFault::Kind::kStall:
        replicas[r]->stall_until(f.at_s + f.duration_s);
        ++result.counters.stalls;
        replica_instant(r, now, "stall");
        break;
      case ReplicaFault::Kind::kStraggle:
        replicas[r]->straggle(
            f.factor, f.duration_s > 0 ? f.at_s + f.duration_s : kNever);
        ++result.counters.stragglers;
        replica_instant(r, now, "straggle");
        break;
    }
  }

  void handle_completion(std::size_t r, Completion c, double now) {
    const std::size_t i = c.ridx;
    auto& copies = st[i].copies;
    bool winner_is_hedge = false;
    bool found = false;
    for (auto it = copies.begin(); it != copies.end(); ++it) {
      if (it->replica == static_cast<std::int64_t>(r)) {
        winner_is_hedge = it->is_hedge;
        copies.erase(it);
        found = true;
        break;
      }
    }
    // A completion whose copy is gone (drained/cancelled between the action
    // and its delivery) is stale; the request's fate is decided elsewhere.
    if (!found || st[i].terminal) return;
    auto& fs = result.stats[i];
    if (c.failed) {
      // Engine retry budget exhausted on this replica — a health signal for
      // the breaker AND a lost copy for the request.
      if (!copies.empty()) {
        ++result.counters.copies_dropped;
      } else {
        failover(i, std::max(now, c.finish_s), static_cast<std::int64_t>(r));
      }
      breaker_failure(r, now);
      return;
    }
    // First copy to finish wins; any twin is cancelled wherever it is.
    for (const Copy& loser : copies) {
      replicas[static_cast<std::size_t>(loser.replica)]->cancel(i);
      ++result.counters.hedge_cancels;
    }
    copies.clear();
    breakers[r].on_success();
    fs.replica = static_cast<std::int64_t>(r);
    fs.hedge_won = winner_is_hedge;
    // Close the attribution chain: [mark, admit] is the wait for the
    // winning copy (split at the hedge-fire instant when the hedge won),
    // [admit, finish] is the replica's own ledger. A failed-over copy's
    // replica clock can trail the previous copy's fail time, leaving the
    // admit slightly before the frontier; the (bounded) overlap is folded
    // back into the failover phase so the sum stays exact and every phase
    // stays nonnegative.
    if (winner_is_hedge && st[i].hedge_fire_s >= st[i].mark_s) {
      fs.base.attr.add(obs::Phase::kHedgeWait,
                       st[i].hedge_fire_s - st[i].mark_s);
      fs.base.attr.add(obs::Phase::kAdmissionWait,
                       c.admit_s - st[i].hedge_fire_s);
    } else {
      const double wait = c.admit_s - st[i].mark_s;
      fs.base.attr.add(obs::Phase::kAdmissionWait, std::max(0.0, wait));
      if (wait < 0) fs.base.attr.add(obs::Phase::kFailover, wait);
    }
    st[i].mark_s = c.finish_s;
    fs.base.attr.merge(c.phases);
    fs.base.start_s = c.admit_s;
    fs.base.finish_s = c.finish_s;
    fs.base.tokens = std::move(c.tokens);
    fs.base.batch_size = c.occupancy;
    fs.base.retries = c.retries;
    fs.base.degraded = c.batch_lane;
    fs.base.stopped = c.stopped;
    fs.base.outcome = c.finish_s > fs.base.deadline_s
                          ? Outcome::kTimedOut
                          : (c.batch_lane ? Outcome::kDegraded : Outcome::kOk);
    ++result.counters.served;
    if (fs.base.outcome == Outcome::kTimedOut) ++result.counters.timeouts;
    if (c.batch_lane) ++result.counters.degraded;
    if (fs.hedge_won) ++result.counters.hedge_wins;
    terminalize(i);
    if (tracing) {
      auto& rec = obs::TraceRecorder::instance();
      const auto track = request_track(requests[i].id);
      if (c.admit_s > fs.base.arrival_s) {
        rec.complete_at(obs::kServerPid, track, to_us(fs.base.arrival_s),
                        to_us(c.admit_s - fs.base.arrival_s), "fleet",
                        "queued");
      }
      rec.complete_at(obs::kServerPid, track, to_us(c.admit_s),
                      to_us(c.finish_s - c.admit_s), "fleet",
                      "service r" + std::to_string(r));
    }
  }

  void run(const std::vector<std::size_t>& order,
           std::vector<ReplicaFault> faults) {
    std::stable_sort(
        faults.begin(), faults.end(),
        [](const ReplicaFault& a, const ReplicaFault& b) {
          return a.at_s < b.at_s;
        });
    std::size_t ai = 0, fi = 0;
    double next_probe = fo.probe_interval_s;
    double now = 0;
    std::vector<Completion> comps;
    while (terminal_count < requests.size()) {
      // The globally earliest event; next_probe keeps it finite, so the loop
      // can never stall waiting on a time that never comes.
      double t = next_probe;
      if (ai < order.size()) t = std::min(t, requests[order[ai]].arrival_s);
      if (fi < faults.size()) t = std::min(t, faults[fi].at_s);
      if (!hedges.empty()) t = std::min(t, hedges.top().first);
      for (const auto& rep : replicas) t = std::min(t, rep->ready_s());
      now = std::max(now, t);
      while (fi < faults.size() && faults[fi].at_s <= now) {
        apply_fault(faults[fi++], now);
      }
      if (next_probe <= now) {
        probe_tick(now);
        do {
          next_probe += fo.probe_interval_s;
        } while (next_probe <= now);
      }
      while (ai < order.size() && requests[order[ai]].arrival_s <= now) {
        arrival(order[ai++], now);
      }
      while (!hedges.empty() && hedges.top().first <= now) {
        const std::size_t i = hedges.top().second;
        hedges.pop();
        fire_hedge(i, now);
      }
      for (std::size_t r = 0; r < replicas.size(); ++r) {
        if (replicas[r]->ready_s() > now) continue;
        comps.clear();
        replicas[r]->process_one(now, comps);
        for (auto& c : comps) handle_completion(r, std::move(c), now);
      }
    }
    for (const auto& rep : replicas) {
      result.counters.engine_faults += rep->engine_faults();
      result.counters.engine_retries += rep->engine_retries();
    }
  }
};

}  // namespace

const char* shed_reason_name(ShedReason r) {
  switch (r) {
    case ShedReason::kNone: return "none";
    case ShedReason::kQueueFull: return "queue-full";
    case ShedReason::kAdmissionDeadline: return "admission-deadline";
    case ShedReason::kFailoverBudget: return "failover-budget";
    case ShedReason::kNoHealthyReplica: return "no-healthy-replica";
    case ShedReason::kArenaPages: return "arena-pages";
  }
  return "?";
}

FleetSummary summarize_fleet(const std::vector<FleetRequestStats>& stats) {
  std::vector<RequestStats> all, lat, bat;
  all.reserve(stats.size());
  for (const auto& s : stats) {
    all.push_back(s.base);
    (s.slo == SloClass::kBatch ? bat : lat).push_back(s.base);
  }
  FleetSummary out;
  out.all = core::summarize_serving(all);
  out.latency = core::summarize_serving(lat);
  out.batch = core::summarize_serving(bat);
  return out;
}

std::string check_accounting(const FleetResult& result) {
  const auto& c = result.counters;
  std::int64_t served = 0, timeouts = 0, degraded = 0, sheds = 0, failures = 0;
  std::int64_t hedged = 0, hedge_wins = 0;
  for (const auto& s : result.stats) {
    const auto& b = s.base;
    const std::string tag = "request " + std::to_string(b.id) + ": ";
    switch (b.outcome) {
      case Outcome::kOk:
      case Outcome::kDegraded:
      case Outcome::kTimedOut:
        ++served;
        if (b.outcome == Outcome::kTimedOut) ++timeouts;
        if (b.degraded) ++degraded;
        if (b.tokens.empty()) {
          return tag + "served with no tokens (lost or never terminal)";
        }
        if (s.reason != ShedReason::kNone) {
          return tag + "served but carries a shed reason";
        }
        if (b.finish_s > b.deadline_s && b.outcome != Outcome::kTimedOut) {
          return tag + "deadline miss without kTimedOut (accounting leak)";
        }
        if (b.outcome == Outcome::kTimedOut && b.finish_s <= b.deadline_s) {
          return tag + "kTimedOut inside its deadline";
        }
        break;
      case Outcome::kShed:
        ++sheds;
        if (s.reason == ShedReason::kNone ||
            s.reason == ShedReason::kFailoverBudget) {
          return tag + "shed without a typed shed reason";
        }
        break;
      case Outcome::kFailed:
        ++failures;
        if (s.reason != ShedReason::kFailoverBudget) {
          return tag + "failed without the failover-budget reason";
        }
        break;
    }
    if (s.hedged) ++hedged;
    if (s.hedge_won) ++hedge_wins;
  }
  const auto n = static_cast<std::int64_t>(result.stats.size());
  if (c.requests != n) return "counters.requests != stats.size()";
  if (served + sheds + failures != n) {
    return "not every request reached a terminal state (lost requests)";
  }
  if (c.served != served) return "counters.served mismatch";
  if (c.timeouts != timeouts) return "counters.timeouts mismatch";
  if (c.degraded != degraded) return "counters.degraded mismatch";
  if (c.sheds != sheds) return "counters.sheds mismatch";
  if (c.failures != failures) return "counters.failures mismatch";
  if (c.shed_queue_full + c.shed_deadline + c.shed_no_healthy +
          c.shed_arena_pages != sheds) {
    return "typed shed reasons do not sum to counters.sheds";
  }
  if (c.hedges != hedged) return "counters.hedges mismatch";
  if (c.hedge_wins != hedge_wins) return "counters.hedge_wins mismatch";
  if (c.hedge_wins > c.hedges) return "more hedge wins than hedges";
  // ISSUE 8: the phase ledger must account for every request's entire
  // end-to-end latency — served, shed, hedged, and failed-over alike.
  return obs::check_totality(attributed_requests(result));
}

std::vector<obs::AttributedRequest> attributed_requests(
    const FleetResult& result) {
  std::vector<obs::AttributedRequest> out;
  out.reserve(result.stats.size());
  for (const auto& s : result.stats) {
    obs::AttributedRequest a;
    a.id = s.base.id;
    a.arrival_s = s.base.arrival_s;
    a.finish_s = s.base.finish_s;
    a.violated = !s.base.served() || s.base.finish_s > s.base.deadline_s;
    a.phases = s.base.attr;
    out.push_back(a);
  }
  return out;
}

FleetRouter::FleetRouter(FleetSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), seed_(seed),
      watchdog_({{"latency", 0.05}, {"batch", 0.20}},
                obs::WindowedHistogramOptions{0.5, 10, {}}) {
  const auto errs = spec_.validate();
  if (!errs.empty()) throw core::ConfigException(errs.front());
}

FleetResult FleetRouter::run_trace(std::vector<core::TimedRequest> requests,
                                   std::vector<ReplicaFault> faults) {
  using Reason = core::BadRequestError::Reason;
  for (const auto& r : requests) {
    if (r.prompt.empty()) {
      throw core::BadRequestError(Reason::kEmptyPrompt, r.id,
                                  "fleet: empty prompt in request " +
                                      std::to_string(r.id));
    }
    if (r.new_tokens < 1) {
      throw core::BadRequestError(Reason::kNonPositiveNewTokens, r.id,
                                  "fleet: non-positive new_tokens in request " +
                                      std::to_string(r.id));
    }
    if (std::isnan(r.arrival_s) || r.arrival_s < 0) {
      throw core::BadRequestError(Reason::kBadArrival, r.id,
                                  "fleet: NaN/negative arrival in request " +
                                      std::to_string(r.id));
    }
    if (std::isnan(r.deadline_s) || r.deadline_s < r.arrival_s) {
      throw core::BadRequestError(
          Reason::kBadDeadline, r.id,
          "fleet: NaN or pre-arrival deadline in request " +
              std::to_string(r.id));
    }
  }
  std::vector<std::size_t> order(requests.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return requests[a].arrival_s < requests[b].arrival_s;
                   });

  Run run(spec_, seed_, requests);
  run.run(order, std::move(faults));

  // The totality guarantee is load-bearing for the chaos gate: surface any
  // internal leak loudly rather than returning silently wrong accounting.
  if (const std::string leak = check_accounting(run.result); !leak.empty()) {
    throw std::logic_error("FleetRouter accounting leak: " + leak);
  }

  // Terminal requests feed the SLO watchdog and (when enabled) the flight
  // recorder in finish order — the virtual-time equivalent of observing
  // completions live.
  {
    std::vector<std::size_t> by_finish(run.result.stats.size());
    for (std::size_t i = 0; i < by_finish.size(); ++i) by_finish[i] = i;
    std::stable_sort(by_finish.begin(), by_finish.end(),
                     [&](std::size_t a, std::size_t b) {
                       return run.result.stats[a].base.finish_s <
                              run.result.stats[b].base.finish_s;
                     });
    const bool flight = obs::flight_enabled();
    for (std::size_t i : by_finish) {
      const auto& s = run.result.stats[i];
      const bool violated =
          !s.base.served() || s.base.finish_s > s.base.deadline_s;
      watchdog_.observe(s.base.finish_s, cls(s.slo), s.base.latency_s(),
                        violated);
      if (flight) {
        obs::FlightRecord rec;
        rec.id = s.base.id;
        rec.slo = static_cast<std::int64_t>(cls(s.slo));
        rec.replica = s.replica;
        rec.violated = violated;
        rec.served = s.base.served();
        rec.arrival_s = s.base.arrival_s;
        rec.finish_s = s.base.finish_s;
        rec.phases = s.base.attr;
        rec.spans = obs::spans_from_breakdown(s.base.attr, s.base.arrival_s);
        obs::FlightRecorder::instance().observe(std::move(rec));
      }
    }
  }

  if (obs::metrics_enabled()) {
    auto& reg = obs::MetricsRegistry::instance();
    const auto& c = run.result.counters;
    reg.counter("fleet.dispatches").add(c.dispatches);
    reg.counter("fleet.served").add(c.served);
    reg.counter("fleet.sheds").add(c.sheds);
    reg.counter("fleet.failures").add(c.failures);
    reg.counter("fleet.failovers").add(c.failovers);
    reg.counter("fleet.hedges").add(c.hedges);
    reg.counter("fleet.hedge_wins").add(c.hedge_wins);
    reg.counter("fleet.probes").add(c.probes);
    reg.counter("fleet.breaker_opens").add(c.breaker_opens);
    reg.counter("fleet.crashes").add(c.crashes);
    auto& lat_h = reg.histogram("fleet.latency_s.latency");
    auto& bat_h = reg.histogram("fleet.latency_s.batch");
    for (const auto& s : run.result.stats) {
      if (!s.base.served()) continue;
      (s.slo == SloClass::kBatch ? bat_h : lat_h).record(s.base.latency_s());
    }
  }
  return std::move(run.result);
}

}  // namespace dsinfer::fleet
