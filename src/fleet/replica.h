// One fleet replica (ISSUE 6): an independent serving box — its own
// InferenceEngine (plus a lazily built INT8 twin for the batch lane), its
// own KV arenas via two RaggedDecoder lanes, its own virtual clock, and its
// own FaultInjector site ("fleet.r<id>") — made *steppable* so the
// FleetRouter can interleave N replicas, scheduled faults, probes, and
// hedge timers on one fleet-wide virtual timeline.
//
// This is the continuous batcher's lane machinery (admit between decode
// iterations, retire on stop/budget, engine-fault retry with exponential
// virtual backoff) factored into an event-loop shape: process_one() performs
// exactly one scheduling action — admit one queued request, or run one
// decode iteration across the lanes — and advances the replica clock by that
// action's virtual cost. The router always advances the globally earliest
// replica, so replica timelines never run more than one action ahead of the
// fleet clock.
//
// Chaos surface: crash() freezes the replica forever (work is lost and must
// fail over), stall_until() freezes it temporarily (probes fail, work
// resumes), straggle() multiplies its virtual service costs (the slow-
// replica mode hedging exists for). All replicas share the engine seed, so
// greedy token streams are bit-identical across replicas — failover
// re-admission on a survivor reproduces exactly the tokens a fault-free run
// would have produced.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/inference_engine.h"
#include "fleet/fleet_spec.h"
#include "obs/attribution.h"

namespace dsinfer::fleet {

// One terminal event a replica reports back to the router.
struct Completion {
  std::size_t ridx = 0;       // index into the router's request vector
  bool failed = false;        // engine retry budget exhausted (not a crash)
  bool batch_lane = false;    // served on the degraded INT8 lane
  double admit_s = 0;         // when the copy entered a slot
  double finish_s = 0;        // replica-clock completion time
  std::int64_t retries = 0;   // engine-fault retries this copy absorbed
  std::int64_t occupancy = 0; // live sequences at admission (batch_size)
  std::vector<std::int32_t> tokens;  // prompt + generated (never padded)
  bool stopped = false;
  // Phase attribution of [admit_s, finish_s] (ISSUE 8): every replica-clock
  // advance while this copy held a slot, charged by cause. Sums exactly to
  // finish_s - admit_s — the replica's share of the totality invariant.
  obs::PhaseBreakdown phases;
};

class Replica {
 public:
  Replica(const FleetSpec& spec, std::int64_t id, std::uint64_t seed);
  ~Replica();

  std::int64_t id() const { return id_; }

  // Queues a copy of request `ridx` for admission; the SLO class picks the
  // lane (batch -> INT8 half-capacity lane when enabled).
  void enqueue(std::size_t ridx, const core::TimedRequest* rq);

  // Drops the copy of `ridx` (hedge lost / failover): erased from the lane
  // queue, or its slot retired mid-decode. Returns false if no copy exists.
  bool cancel(std::size_t ridx);

  // Cancels everything outstanding (queued + in-slot) and returns the
  // affected request indices — the failover sweep when the breaker opens.
  std::vector<std::size_t> drain();

  // Earliest virtual time this replica can perform its next action:
  // +inf when crashed or idle, max(clock, stall end) otherwise.
  double ready_s() const;
  bool has_work() const;

  // Performs one scheduling action no earlier than `now` (admit one request,
  // else one decode iteration over the lanes) and appends any terminal
  // events to `out`. Precondition: ready_s() <= now, not crashed.
  void process_one(double now, std::vector<Completion>& out);

  // ---- Chaos controls (router applies the ReplicaFault timeline). ----
  void crash();
  void stall_until(double t);
  void straggle(double factor, double until_s);

  bool crashed() const { return crashed_; }
  // What a health probe at `now` observes: alive and not mid-stall.
  bool responsive(double now) const {
    return !crashed_ && now >= stall_until_;
  }

  // ISSUE 7 KV-page probes (primary-lane decoder; the batch lane's pool is
  // at least as permissive for any request that fits the primary).
  // Can this request's worst-case pages ever fit the pool? A false is a
  // structural rejection the router sheds as kArenaPages.
  bool fits_request(const core::TimedRequest& rq) const;
  // Does the KV prefix cache already hold a prefix of `rq`'s prompt? Actual
  // cache contents — the prefix-warm routing signal.
  bool holds_prefix(const core::TimedRequest& rq) const;

  double clock() const { return clock_; }
  // Estimated queued + in-flight work, the router's load signal.
  double outstanding_s() const { return outstanding_s_; }
  std::int64_t active() const;
  std::int64_t queued() const;
  std::int64_t engine_faults() const { return engine_faults_; }
  std::int64_t engine_retries() const { return engine_retries_; }

 private:
  struct Lane;

  Lane& lane_for(const core::TimedRequest& rq);
  double straggle_factor(double t) const {
    return t < straggle_until_ ? straggle_factor_ : 1.0;
  }
  // Estimated full service cost of one request on `degraded` fidelity.
  double estimate_s(const core::TimedRequest& rq, bool degraded) const;
  // Runs `invoke` under the engine-fault retry budget, charging backoff to
  // the replica clock. Returns false when the budget is exhausted.
  bool with_retry(const std::function<void()>& invoke, std::int64_t& tries);
  // Adds `dt` to phase `p` on every in-use slot of both lanes (co-scheduled
  // sequences all experience a shared clock advance).
  void charge_active(double dt, obs::Phase p);
  // The only way the replica clock moves forward: advances by `dt` and
  // charges the same `dt` via charge_active. Keeping every mutation behind
  // this function (plus the exact catch-up in process_one) is what makes
  // per-request totality hold by construction (ISSUE 8).
  void advance(double dt, obs::Phase p);
  void admit_one(Lane& lane, std::vector<Completion>& out);
  void step_lanes(std::vector<Completion>& out);
  void finish_slot(Lane& lane, std::int64_t slot, bool failed,
                   std::int64_t extra_retries, std::vector<Completion>& out);

  std::int64_t id_;
  const FleetSpec& spec_;
  std::string site_;  // injector site "fleet.r<id>"
  std::uint64_t seed_;
  core::InferenceEngine engine_;
  std::unique_ptr<core::InferenceEngine> degraded_engine_;
  std::unique_ptr<Lane> primary_;
  std::unique_ptr<Lane> batch_;  // built on first batch-class enqueue

  double clock_ = 0;
  double outstanding_s_ = 0;
  bool crashed_ = false;
  double stall_until_ = 0;
  double straggle_factor_ = 1.0;
  double straggle_until_ = 0;
  std::int64_t engine_faults_ = 0;
  std::int64_t engine_retries_ = 0;
};

inline constexpr double kNever = std::numeric_limits<double>::infinity();

}  // namespace dsinfer::fleet
