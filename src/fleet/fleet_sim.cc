#include "fleet/fleet_sim.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "core/server.h"
#include "sim/des.h"
#include "util/rng.h"

namespace dsinfer::fleet {

namespace {

using core::SloClass;
using core::TimedRequest;
using Outcome = core::RequestStats::Outcome;

std::size_t cls(SloClass s) { return s == SloClass::kBatch ? 1 : 0; }

struct Copy {
  std::int64_t replica = -1;
  bool is_hedge = false;
};

struct ReqState {
  bool counted = false;
  bool terminal = false;
  bool hedge_armed = false;
  bool hedge_pending = false;  // timer scheduled and not yet fired/cancelled
  sim::Simulator::EventId hedge_event = 0;
  std::vector<Copy> copies;
  // Attribution frontier (ISSUE 8): everything in [mark_s, next event] is
  // still unattributed; each router decision closes the interval behind it.
  // Mirrors the functional router's scheme so the twin satisfies the same
  // totality invariant.
  double mark_s = 0;
  double hedge_fire_s = -1;
};

// A replica modeled as the same one-action-at-a-time machine the functional
// Replica is — admit one request (prefill cost) when a lane has queue + free
// slot, else one decode iteration (per-token cost per active lane) — with
// synthetic remaining-token counters instead of real decoders.
struct SimLane {
  std::int64_t capacity = 1;
  double cost_factor = 1.0;
  bool degraded = false;
  std::deque<std::size_t> queue;
  struct Slot {
    std::size_t ridx;
    std::int64_t remaining;  // decode iterations left after prefill
    double admit_s;
    std::int64_t occ;  // live sequences at admission
    // Chunked-prefill occupancy (ISSUE 9): prompt rows still to prefill
    // after the admit chunk. > 0 means the slot occupies capacity but
    // advances prompt chunks (priced prefill_token_s per row), not decode
    // iterations; decode starts when it reaches 0. Always 0 monolithic.
    std::int64_t prefill_left = 0;
    // Speculative-decode accumulator (ISSUE 10), mirroring the decoder's
    // per-slot Bresenham on the geometric acceptance expectation — same
    // arithmetic, same epsilon, so the DES advance matches the functional
    // replica step for step.
    double accept_acc = 0;
  };
  std::vector<Slot> slots;
};

struct SimReplica {
  SimLane primary, batch;
  // Copy presence + outstanding-work charge, keyed by request index. A copy
  // can be mid-admission (popped from the queue, slot not yet occupied), so
  // neither queue nor slots alone define presence.
  std::unordered_map<std::size_t, double> charge;
  double outstanding_s = 0;
  bool crashed = false;
  double stall_until = 0;
  double straggle_factor = 1.0;
  double straggle_until = 0;
  bool action_scheduled = false;
};

struct SimRun {
  const FleetSpec& spec;
  const FleetOptions& fo;
  const std::vector<TimedRequest>& requests;
  sim::Simulator sim;
  Rng rng;
  FleetResult result;
  std::vector<ReqState> st;
  std::vector<SimReplica> reps;
  std::vector<Breaker> breakers;
  std::deque<std::size_t> pending;
  std::int64_t in_system[2] = {0, 0};
  std::size_t terminal_count = 0;

  SimRun(const FleetSpec& s, const std::vector<TimedRequest>& reqs,
         std::uint64_t seed)
      : spec(s), fo(s.options()), requests(reqs),
        rng(seed ^ 0x9e3779b97f4a7c15ull), st(reqs.size()),
        reps(static_cast<std::size_t>(fo.replicas)),
        breakers(static_cast<std::size_t>(fo.replicas)) {
    const auto& sopts = spec.serve().options();
    for (auto& rep : reps) {
      rep.primary.capacity = sopts.max_batch;
      rep.batch.capacity = std::max<std::int64_t>(1, sopts.max_batch / 2);
      rep.batch.cost_factor = sopts.virtual_service.degraded_factor;
      rep.batch.degraded = true;
    }
    result.stats.resize(reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      auto& fs = result.stats[i];
      fs.base.id = reqs[i].id;
      fs.base.arrival_s = reqs[i].arrival_s;
      fs.base.deadline_s = reqs[i].deadline_s;
      fs.slo = reqs[i].slo;
    }
    result.counters.requests = static_cast<std::int64_t>(reqs.size());
  }

  bool done() const { return terminal_count >= requests.size(); }

  const SloLaneOptions& lane_opts(SloClass s) const {
    return s == SloClass::kBatch ? fo.batch : fo.latency;
  }

  SimLane& lane_of(SimReplica& rep, const TimedRequest& rq) {
    return (rq.slo == SloClass::kBatch && fo.batch_lane) ? rep.batch
                                                         : rep.primary;
  }

  double straggle(const SimReplica& rep, double t) const {
    return t < rep.straggle_until ? rep.straggle_factor : 1.0;
  }

  double estimate_s(const TimedRequest& rq, bool degraded) const {
    // Mirrors Replica::estimate_s, prompt term included (ISSUE 9) and the
    // speculative effective-rate rescale (ISSUE 10).
    const auto& sopts = spec.serve().options();
    const auto& vs = sopts.virtual_service;
    const double spec_scale =
        std::max(1.0, core::RaggedDecoder::spec_draft_cost_factor(
                          sopts.engine, spec.serve().engine().model().layers)) /
        core::RaggedDecoder::spec_step_tokens(sopts.engine);
    return (vs.prefill_s +
            vs.prefill_token_s * static_cast<double>(rq.prompt.size()) +
            vs.per_token_s * spec_scale * static_cast<double>(rq.new_tokens)) *
           (degraded ? vs.degraded_factor : 1.0);
  }

  // Speculative decode (ISSUE 10): modeled advance of one fused verify step
  // for a slot with `remaining` tokens to go — the decoder's per-step
  // Bresenham on the geometric acceptance expectation, bit-for-bit (same
  // truncated k_eff, same epsilon, same floor), so the DES token clock
  // agrees with the batcher replay's. Returns 1 when speculation is off or
  // in measure mode (unknown acceptance models no multi-token advance).
  std::int64_t spec_advance(SimLane::Slot& slot) const {
    const auto& eo = spec.serve().options().engine;
    if (eo.spec_draft_tokens <= 1 || eo.spec_acceptance < 0) return 1;
    const std::int64_t ke =
        std::min<std::int64_t>(eo.spec_draft_tokens, slot.remaining);
    if (ke < 2) return 1;
    double e = 0, p = 1;
    for (std::int64_t j = 1; j < ke; ++j) {
      p *= eo.spec_acceptance;
      e += p;
    }
    slot.accept_acc += e;
    const auto nkeep = std::min<std::int64_t>(
        static_cast<std::int64_t>(std::floor(slot.accept_acc + 1e-12)),
        ke - 1);
    slot.accept_acc -= static_cast<double>(nkeep);
    return nkeep + 1;
  }

  // Chunked prefill (ISSUE 9): prompt rows the admit action runs for a
  // prompt with `left` unprefilled tokens (0 = monolithic: everything runs
  // inside the admit action).
  std::int64_t chunk_rows(std::int64_t left) const {
    const std::int64_t chunk =
        spec.serve().options().engine.prefill_chunk_tokens;
    return (chunk > 0 && chunk < left) ? chunk : left;
  }

  // Per-iteration global prefill budget, mirroring RaggedDecoder::step():
  // mid-prefill slots share prefill_chunk_tokens prompt rows per fused
  // iteration in slot order (unbounded when monolithic — but then
  // prefill_left is always 0 anyway).
  std::int64_t chunk_budget() const {
    const std::int64_t chunk =
        spec.serve().options().engine.prefill_chunk_tokens;
    return chunk > 0 ? chunk : std::numeric_limits<std::int64_t>::max();
  }

  bool has_work(const SimReplica& rep) const {
    return !rep.primary.queue.empty() || !rep.primary.slots.empty() ||
           !rep.batch.queue.empty() || !rep.batch.slots.empty();
  }

  bool all_crashed() const {
    for (const auto& rep : reps) {
      if (!rep.crashed) return false;
    }
    return true;
  }

  std::vector<ReplicaLoadView> views() const {
    std::vector<ReplicaLoadView> v(reps.size());
    for (std::size_t r = 0; r < reps.size(); ++r) {
      v[r].dispatchable = breakers[r].dispatchable();
      v[r].outstanding_s = reps[r].outstanding_s;
    }
    return v;
  }

  void terminalize(std::size_t i) {
    st[i].terminal = true;
    ++terminal_count;
    if (st[i].counted) {
      --in_system[cls(requests[i].slo)];
      st[i].counted = false;
    }
    if (st[i].hedge_pending) {
      sim.cancel(st[i].hedge_event);  // first-wins: dead timers die early
      st[i].hedge_pending = false;
    }
  }

  // Removes request i's copy from replica r wherever it is (queue, slot, or
  // mid-admission) and refunds its outstanding-work charge.
  void remove_copy(std::size_t r, std::size_t i) {
    auto& rep = reps[r];
    auto it = rep.charge.find(i);
    if (it == rep.charge.end()) return;
    rep.outstanding_s = std::max(0.0, rep.outstanding_s - it->second);
    rep.charge.erase(it);
    for (SimLane* lane : {&rep.primary, &rep.batch}) {
      auto q = std::find(lane->queue.begin(), lane->queue.end(), i);
      if (q != lane->queue.end()) {
        lane->queue.erase(q);
        return;
      }
      auto sl = std::find_if(lane->slots.begin(), lane->slots.end(),
                             [&](const SimLane::Slot& s) {
                               return s.ridx == i;
                             });
      if (sl != lane->slots.end()) {
        lane->slots.erase(sl);
        return;
      }
    }
  }

  void cancel_copies(std::size_t i) {
    for (const Copy& c : st[i].copies) {
      remove_copy(static_cast<std::size_t>(c.replica), i);
    }
    st[i].copies.clear();
  }

  void shed(std::size_t i, ShedReason reason) {
    cancel_copies(i);
    auto& fs = result.stats[i];
    fs.reason = reason;
    fs.base.outcome = Outcome::kShed;
    fs.base.start_s = fs.base.finish_s = sim.now();
    fs.base.attr.add(obs::Phase::kShed, sim.now() - st[i].mark_s);
    st[i].mark_s = sim.now();
    ++result.counters.sheds;
    switch (reason) {
      case ShedReason::kQueueFull: ++result.counters.shed_queue_full; break;
      case ShedReason::kAdmissionDeadline:
        ++result.counters.shed_deadline;
        break;
      case ShedReason::kNoHealthyReplica:
        ++result.counters.shed_no_healthy;
        break;
      default: break;
    }
    terminalize(i);
  }

  void fail_budget(std::size_t i) {
    cancel_copies(i);
    auto& fs = result.stats[i];
    fs.reason = ShedReason::kFailoverBudget;
    fs.base.outcome = Outcome::kFailed;
    fs.base.start_s = fs.base.finish_s = sim.now();
    fs.base.attr.add(obs::Phase::kFailover, sim.now() - st[i].mark_s);
    st[i].mark_s = sim.now();
    ++result.counters.failures;
    terminalize(i);
  }

  std::int64_t dispatch_copy(std::size_t i, std::int64_t exclude,
                             bool is_hedge) {
    const auto v = views();
    const std::int64_t r = route_choose(
        fo.policy, fo, v, prefix_hash(requests[i].prompt, fo.affinity_prefix),
        exclude, rng);
    if (r < 0) return -1;
    auto& rep = reps[static_cast<std::size_t>(r)];
    SimLane& lane = lane_of(rep, requests[i]);
    const double est = estimate_s(requests[i], lane.degraded);
    rep.charge.emplace(i, est);
    rep.outstanding_s += est;
    lane.queue.push_back(i);
    st[i].copies.push_back(Copy{r, is_hedge});
    ++result.counters.dispatches;
    if (!is_hedge) {
      // Hedge dispatches never move the frontier: the primary wait keeps
      // accruing and is split at completion (hedge_wait vs admission_wait).
      result.stats[i].base.attr.add(obs::Phase::kRouterQueue,
                                    sim.now() - st[i].mark_s);
      st[i].mark_s = sim.now();
    }
    if (!is_hedge && requests[i].slo == SloClass::kLatency &&
        fo.latency.hedging && !st[i].hedge_armed) {
      st[i].hedge_armed = true;
      st[i].hedge_pending = true;
      st[i].hedge_event = sim.schedule_after(
          fo.latency.hedge_delay_s, [this, i] { fire_hedge(i); });
    }
    ensure_action(static_cast<std::size_t>(r));
    return r;
  }

  void try_dispatch(std::size_t i) {
    const auto& rq = requests[i];
    const auto& res = spec.serve().options().resilience;
    if (res.admission_control && rq.deadline_s < core::kNoDeadline) {
      const auto& vs = spec.serve().options().virtual_service;
      const double est =
          vs.prefill_s +
          vs.prefill_token_s * static_cast<double>(rq.prompt.size()) +
          vs.per_token_s * static_cast<double>(rq.new_tokens);
      if (sim.now() + est > rq.deadline_s) {
        shed(i, ShedReason::kAdmissionDeadline);
        return;
      }
    }
    if (dispatch_copy(i, -1, false) < 0) {
      if (all_crashed()) {
        shed(i, ShedReason::kNoHealthyReplica);
      } else {
        pending.push_back(i);
      }
    }
  }

  void arrival(std::size_t i) {
    const auto& rq = requests[i];
    st[i].mark_s = rq.arrival_s;
    if (in_system[cls(rq.slo)] >= lane_opts(rq.slo).queue_limit) {
      shed(i, ShedReason::kQueueFull);
      return;
    }
    ++in_system[cls(rq.slo)];
    st[i].counted = true;
    try_dispatch(i);
  }

  void fire_hedge(std::size_t i) {
    st[i].hedge_pending = false;
    if (st[i].terminal || st[i].copies.size() != 1) return;
    const std::int64_t primary = st[i].copies.front().replica;
    if (dispatch_copy(i, primary, true) >= 0) {
      ++result.counters.hedges;
      result.stats[i].hedged = true;
      st[i].hedge_fire_s = sim.now();
    }
  }

  void failover(std::size_t i, std::int64_t exclude) {
    if (result.stats[i].failovers >= fo.failover_budget) {
      fail_budget(i);
      return;
    }
    ++result.stats[i].failovers;
    ++result.counters.failovers;
    result.stats[i].base.attr.add(obs::Phase::kFailover,
                                  sim.now() - st[i].mark_s);
    st[i].mark_s = sim.now();
    if (dispatch_copy(i, exclude, false) < 0) {
      if (all_crashed()) {
        shed(i, ShedReason::kNoHealthyReplica);
      } else {
        pending.push_back(i);
      }
    }
  }

  void breaker_failure(std::size_t r) {
    if (!breakers[r].on_failure(sim.now(), fo.breaker_threshold)) return;
    ++result.counters.breaker_opens;
    auto& rep = reps[r];
    std::vector<std::size_t> drained;
    drained.reserve(rep.charge.size());
    for (const auto& [i, est] : rep.charge) drained.push_back(i);
    std::sort(drained.begin(), drained.end());  // deterministic order
    rep.charge.clear();
    rep.outstanding_s = 0;
    for (SimLane* lane : {&rep.primary, &rep.batch}) {
      lane->queue.clear();
      lane->slots.clear();
    }
    for (std::size_t i : drained) {
      auto& copies = st[i].copies;
      copies.erase(std::remove_if(copies.begin(), copies.end(),
                                  [&](const Copy& c) {
                                    return c.replica ==
                                           static_cast<std::int64_t>(r);
                                  }),
                   copies.end());
      if (st[i].terminal) continue;
      if (!copies.empty()) {
        ++result.counters.copies_dropped;
        continue;
      }
      failover(i, static_cast<std::int64_t>(r));
    }
  }

  void drain_pending() {
    std::deque<std::size_t> keep;
    while (!pending.empty()) {
      const std::size_t i = pending.front();
      pending.pop_front();
      if (st[i].terminal) continue;
      const auto& res = spec.serve().options().resilience;
      if (res.admission_control && sim.now() > requests[i].deadline_s) {
        shed(i, ShedReason::kAdmissionDeadline);
        continue;
      }
      if (dispatch_copy(i, -1, false) < 0) keep.push_back(i);
    }
    pending = std::move(keep);
  }

  void probe_tick() {
    if (done()) return;
    const double now = sim.now();
    for (std::size_t r = 0; r < reps.size(); ++r) {
      ++result.counters.probes;
      const auto was = breakers[r].state;
      breakers[r].maybe_half_open(now, fo.breaker_cooldown_s);
      if (was != breakers[r].state) ++result.counters.breaker_half_opens;
      const bool responsive = !reps[r].crashed && now >= reps[r].stall_until;
      if (responsive) {
        const bool closing = breakers[r].state == Breaker::State::kHalfOpen;
        breakers[r].on_success();
        if (closing) ++result.counters.breaker_closes;
      } else {
        ++result.counters.probe_failures;
        breaker_failure(r);
      }
    }
    if (all_crashed()) {
      while (!pending.empty()) {
        const std::size_t i = pending.front();
        pending.pop_front();
        if (!st[i].terminal) shed(i, ShedReason::kNoHealthyReplica);
      }
    } else {
      drain_pending();
    }
    if (!done()) {
      sim.schedule_after(fo.probe_interval_s, [this] { probe_tick(); });
    }
  }

  void ensure_action(std::size_t r) {
    auto& rep = reps[r];
    if (rep.crashed || rep.action_scheduled || !has_work(rep)) return;
    rep.action_scheduled = true;
    sim.schedule_at(std::max(sim.now(), rep.stall_until),
                    [this, r] { action(r); });
  }

  void action(std::size_t r) {
    auto& rep = reps[r];
    rep.action_scheduled = false;
    if (rep.crashed) return;
    if (sim.now() < rep.stall_until) {
      rep.action_scheduled = true;
      sim.schedule_at(rep.stall_until, [this, r] { action(r); });
      return;
    }
    const auto& vs = spec.serve().options().virtual_service;
    const double f = straggle(rep, sim.now());
    for (SimLane* lane : {&rep.primary, &rep.batch}) {
      if (!lane->queue.empty() &&
          static_cast<std::int64_t>(lane->slots.size()) < lane->capacity) {
        const std::size_t i = lane->queue.front();
        lane->queue.pop_front();
        const double start = sim.now();
        const bool degraded = lane->degraded;
        rep.action_scheduled = true;
        // Admit runs only the first prefill chunk (ISSUE 9); the rest of
        // the prompt advances through finish_step iterations below.
        const std::int64_t first = chunk_rows(
            static_cast<std::int64_t>(requests[i].prompt.size()));
        sim.schedule_after(
            (vs.prefill_s + vs.prefill_token_s * static_cast<double>(first)) *
                lane->cost_factor * f,
            [this, r, i, start, degraded] { finish_admit(r, i, start,
                                                         degraded); });
        return;
      }
    }
    // One fused iteration per lane (ISSUE 9): mid-prefill slots advance a
    // prompt chunk (prefill_token_s per row), decode-ready slots share one
    // per_token_s advance — the same split the functional replica charges.
    bool any_slots = false;
    double cost = 0;
    for (const SimLane* lane : {&rep.primary, &rep.batch}) {
      if (lane->slots.empty()) continue;
      any_slots = true;
      std::int64_t budget = chunk_budget();
      std::int64_t prefill_rows = 0;
      bool any_decode = false;
      for (const auto& slot : lane->slots) {
        if (slot.prefill_left > 0) {
          const std::int64_t rows = std::min(slot.prefill_left, budget);
          budget -= rows;
          prefill_rows += rows;
        } else {
          any_decode = true;
        }
      }
      // max(prefill part, decode part) — the same piggyback pricing as the
      // functional replica's fused iteration. The decode part is
      // max(verify, draft) when speculation is on (ISSUE 10): the fused
      // verify step also runs the draft lane's truncated-depth passes.
      const double decode_unit =
          vs.per_token_s *
          std::max(1.0, core::RaggedDecoder::spec_draft_cost_factor(
                            spec.serve().options().engine,
                            spec.serve().engine().model().layers));
      cost += std::max(vs.prefill_token_s * static_cast<double>(prefill_rows),
                       any_decode ? decode_unit : 0.0) *
              lane->cost_factor * f;
    }
    if (!any_slots) return;  // raced with a drain; nothing to do
    rep.action_scheduled = true;
    sim.schedule_after(cost, [this, r] { finish_step(r); });
  }

  void finish_admit(std::size_t r, std::size_t i, double start,
                    bool degraded) {
    auto& rep = reps[r];
    rep.action_scheduled = false;
    if (rep.crashed) return;
    // Stale if the copy was cancelled or drained mid-admission.
    if (!st[i].terminal && rep.charge.count(i) > 0) {
      SimLane& lane = degraded ? rep.batch : rep.primary;
      const std::int64_t occ =
          static_cast<std::int64_t>(rep.primary.slots.size()) +
          static_cast<std::int64_t>(rep.batch.slots.size()) + 1;
      const std::int64_t P =
          static_cast<std::int64_t>(requests[i].prompt.size());
      const std::int64_t prefill_left = P - chunk_rows(P);
      const std::int64_t remaining = requests[i].new_tokens - 1;
      if (prefill_left <= 0 && remaining <= 0) {
        complete(r, i, start, occ, degraded);
      } else {
        lane.slots.push_back(
            SimLane::Slot{i, remaining, start, occ, prefill_left});
      }
    }
    ensure_action(r);
  }

  void finish_step(std::size_t r) {
    auto& rep = reps[r];
    rep.action_scheduled = false;
    if (rep.crashed) return;
    for (SimLane* lane : {&rep.primary, &rep.batch}) {
      std::int64_t budget = chunk_budget();
      for (std::size_t s = 0; s < lane->slots.size();) {
        auto& slot = lane->slots[s];
        if (slot.prefill_left > 0) {
          // Mid-prefill: this iteration advanced a prompt chunk (its share
          // of the lane's global budget, slot order), not a decode token.
          // The first decode token samples on the iteration that completes
          // the prompt (remaining was set at admit).
          const std::int64_t rows = std::min(slot.prefill_left, budget);
          budget -= rows;
          slot.prefill_left -= rows;
          if (slot.prefill_left <= 0 && slot.remaining <= 0) {
            const SimLane::Slot finished = slot;
            lane->slots.erase(lane->slots.begin() +
                              static_cast<std::ptrdiff_t>(s));
            complete(r, finished.ridx, finished.admit_s, finished.occ,
                     lane->degraded);
          } else {
            ++s;
          }
          continue;
        }
        slot.remaining -= spec_advance(slot);
        if (slot.remaining <= 0) {
          const SimLane::Slot finished = slot;
          lane->slots.erase(lane->slots.begin() +
                            static_cast<std::ptrdiff_t>(s));
          complete(r, finished.ridx, finished.admit_s, finished.occ,
                   lane->degraded);
        } else {
          ++s;
        }
      }
    }
    ensure_action(r);
  }

  void complete(std::size_t r, std::size_t i, double admit_s,
                std::int64_t occ, bool degraded) {
    auto& copies = st[i].copies;
    bool winner_is_hedge = false;
    bool found = false;
    for (auto it = copies.begin(); it != copies.end(); ++it) {
      if (it->replica == static_cast<std::int64_t>(r)) {
        winner_is_hedge = it->is_hedge;
        copies.erase(it);
        found = true;
        break;
      }
    }
    remove_copy(r, i);  // refund the outstanding-work charge
    if (!found || st[i].terminal) return;
    for (const Copy& loser : copies) {
      remove_copy(static_cast<std::size_t>(loser.replica), i);
      ++result.counters.hedge_cancels;
    }
    copies.clear();
    breakers[r].on_success();
    auto& fs = result.stats[i];
    fs.replica = static_cast<std::int64_t>(r);
    fs.hedge_won = winner_is_hedge;
    fs.base.start_s = admit_s;
    fs.base.finish_s = sim.now();
    if (winner_is_hedge && st[i].hedge_fire_s >= st[i].mark_s) {
      fs.base.attr.add(obs::Phase::kHedgeWait,
                       st[i].hedge_fire_s - st[i].mark_s);
      fs.base.attr.add(obs::Phase::kAdmissionWait,
                       admit_s - st[i].hedge_fire_s);
    } else {
      const double wait = admit_s - st[i].mark_s;
      fs.base.attr.add(obs::Phase::kAdmissionWait, std::max(0.0, wait));
      if (wait < 0) fs.base.attr.add(obs::Phase::kFailover, wait);
    }
    // The twin has no replica-side ledger: the whole service residency is
    // its coarse service phase (prefill and stall are not modeled apart).
    fs.base.attr.add(obs::Phase::kDecodeCompute, sim.now() - admit_s);
    st[i].mark_s = sim.now();
    // Placeholder of the right LENGTH (no real decode in the twin).
    fs.base.tokens.assign(
        requests[i].prompt.size() +
            static_cast<std::size_t>(requests[i].new_tokens),
        0);
    fs.base.batch_size = occ;
    fs.base.degraded = degraded;
    fs.base.outcome = sim.now() > fs.base.deadline_s
                          ? Outcome::kTimedOut
                          : (degraded ? Outcome::kDegraded : Outcome::kOk);
    ++result.counters.served;
    if (fs.base.outcome == Outcome::kTimedOut) ++result.counters.timeouts;
    if (degraded) ++result.counters.degraded;
    if (fs.hedge_won) ++result.counters.hedge_wins;
    terminalize(i);
  }

  void apply_fault(const ReplicaFault& f) {
    const auto r = static_cast<std::size_t>(f.replica);
    if (r >= reps.size()) return;
    switch (f.kind) {
      case ReplicaFault::Kind::kCrash:
        reps[r].crashed = true;
        ++result.counters.crashes;
        break;
      case ReplicaFault::Kind::kStall:
        reps[r].stall_until =
            std::max(reps[r].stall_until, f.at_s + f.duration_s);
        ++result.counters.stalls;
        break;
      case ReplicaFault::Kind::kStraggle:
        reps[r].straggle_factor = f.factor;
        reps[r].straggle_until =
            f.duration_s > 0 ? f.at_s + f.duration_s : kNever;
        ++result.counters.stragglers;
        break;
    }
  }
};

}  // namespace

FleetResult simulate_fleet(const FleetSpec& spec,
                           const std::vector<core::TimedRequest>& requests,
                           std::vector<ReplicaFault> faults,
                           std::uint64_t seed) {
  if (const auto errs = spec.validate(); !errs.empty()) {
    throw core::ConfigException(errs.front());
  }
  SimRun run(spec, requests, seed);

  std::vector<std::size_t> order(requests.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return requests[a].arrival_s < requests[b].arrival_s;
                   });
  for (std::size_t i : order) {
    run.sim.schedule_at(requests[i].arrival_s,
                        [&run, i] { run.arrival(i); });
  }
  for (const ReplicaFault& f : faults) {
    run.sim.schedule_at(f.at_s, [&run, f] { run.apply_fault(f); });
  }
  if (!requests.empty()) {
    run.sim.schedule_at(spec.options().probe_interval_s,
                        [&run] { run.probe_tick(); });
  }
  run.sim.run();

  if (const std::string leak = check_accounting(run.result); !leak.empty()) {
    throw std::logic_error("simulate_fleet accounting leak: " + leak);
  }
  return std::move(run.result);
}

}  // namespace dsinfer::fleet
