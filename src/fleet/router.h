// FleetRouter (ISSUE 6 tentpole): the layer above one engine. N independent
// steppable replicas (fleet/replica.h) behind one router that owns
// dispatching (least-outstanding-work / power-of-two-choices /
// prefix-affinity), per-SLO-class lanes with bounded in-system queues
// (backpressure -> typed sheds instead of collapse), health probes feeding a
// per-replica circuit breaker (closed/open/half-open), failover that
// re-admits a crashed replica's in-flight requests on survivors under a
// bounded budget, and hedged requests for tail latency with first-wins
// cancellation.
//
// Everything runs on one fleet-wide virtual timeline: run_trace() is an
// event loop over arrivals, scheduled replica faults, probe ticks, hedge
// timers, and replica actions — always advancing the globally earliest
// event, so a whole chaos run (every latency, failover, and shed) is a pure
// function of (spec, trace, fault schedule, seed).
//
// Totality guarantee (the chaos gate): every request in the trace reaches a
// terminal state — served (possibly degraded/late), typed-shed, or
// typed-failed. No hangs, no lost requests; run_trace throws std::logic_error
// if its own accounting ever disagrees.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/workload.h"
#include "fleet/fleet_spec.h"
#include "fleet/replica.h"
#include "obs/attribution.h"
#include "obs/slo_watchdog.h"

namespace dsinfer::fleet {

// Why a request left the system without full service — the typed shed/fail
// vocabulary (ISSUE 6 satellite: typed errors when budgets are exhausted).
enum class ShedReason {
  kNone,               // served
  kQueueFull,          // class queue limit hit at arrival (backpressure)
  kAdmissionDeadline,  // predicted or actual deadline miss before admission
  kFailoverBudget,     // crash/fault re-dispatch budget exhausted -> kFailed
  kNoHealthyReplica,   // every replica crashed
  kArenaPages,         // worst-case KV pages can never fit any replica's
                       // page pool (ISSUE 7 structural rejection)
};

const char* shed_reason_name(ShedReason r);

struct FleetRequestStats {
  core::RequestStats base;  // id, tokens, timing, outcome — server vocabulary
  core::SloClass slo = core::SloClass::kLatency;
  std::int64_t replica = -1;   // replica that served it (-1 = none)
  std::int64_t failovers = 0;  // re-dispatches this request absorbed
  bool hedged = false;         // a hedge copy was issued
  bool hedge_won = false;      // ... and the hedge finished first
  ShedReason reason = ShedReason::kNone;
};

struct FleetCounters {
  std::int64_t requests = 0, dispatches = 0;
  std::int64_t served = 0, degraded = 0, timeouts = 0, sheds = 0, failures = 0;
  std::int64_t shed_queue_full = 0, shed_deadline = 0, shed_no_healthy = 0;
  std::int64_t shed_arena_pages = 0;
  std::int64_t failovers = 0, copies_dropped = 0;
  std::int64_t hedges = 0, hedge_wins = 0, hedge_cancels = 0;
  std::int64_t probes = 0, probe_failures = 0;
  std::int64_t breaker_opens = 0, breaker_half_opens = 0, breaker_closes = 0;
  std::int64_t crashes = 0, stalls = 0, stragglers = 0;
  std::int64_t engine_faults = 0, engine_retries = 0;
};

struct FleetResult {
  std::vector<FleetRequestStats> stats;  // indexed like the input trace
  FleetCounters counters;
};

// Latency/goodput summaries per SLO class plus the whole fleet (reuses the
// serving-summary vocabulary so benches plot one schema).
struct FleetSummary {
  core::ServingSummary all, latency, batch;
};
FleetSummary summarize_fleet(const std::vector<FleetRequestStats>& stats);

// Cross-checks stats against counters: every request terminal, counter sums
// exact, zero deadline-miss-without-shed leaks (a served request past its
// deadline MUST be kTimedOut and counted), and — ISSUE 8 — phase-ledger
// totality: every request's attributed phase durations sum to its
// end-to-end latency within obs::kTotalityEps. Returns "" when clean, else
// a description of the first leak — the fleet_chaos_check gate.
std::string check_accounting(const FleetResult& result);

// Projects a fleet result into the obs attribution vocabulary (one entry
// per request; violated = shed/failed/deadline-missed) for check_totality,
// summarize_phases, and the bench's --attr rows.
std::vector<obs::AttributedRequest> attributed_requests(
    const FleetResult& result);

class FleetRouter {
 public:
  // Validates the spec (throws core::ConfigException on the first typed
  // error). Replicas are built per run_trace call; the router object is
  // reusable and cheap until then.
  explicit FleetRouter(FleetSpec spec, std::uint64_t seed = 0x5eed);

  // Replays `requests` through the fleet under the scheduled replica
  // `faults`. Requests are validated like InferenceServer::run_trace
  // (throws core::BadRequestError). Every replica shares the engine seed,
  // so greedy tokens are bit-identical no matter which replica serves a
  // request — the failover-correctness invariant tests assert.
  FleetResult run_trace(std::vector<core::TimedRequest> requests,
                        std::vector<ReplicaFault> faults = {});

  const FleetSpec& spec() const { return spec_; }

  // Live SLO watchdog (ISSUE 8): run_trace feeds every terminal request
  // (in finish order, on the fleet's virtual clock) into per-class sliding
  // windows; persistent across runs on the same router. Class 0 = latency
  // (5% error budget), class 1 = batch (20%).
  const obs::SloWatchdog& watchdog() const { return watchdog_; }
  obs::SloWatchdog& watchdog() { return watchdog_; }

 private:
  FleetSpec spec_;
  std::uint64_t seed_;
  obs::SloWatchdog watchdog_;
};

}  // namespace dsinfer::fleet
