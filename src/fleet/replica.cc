#include "fleet/replica.h"

#include <algorithm>
#include <utility>

#include "comm/collectives.h"
#include "zero/offload.h"

namespace dsinfer::fleet {

// One decoder lane: the ragged decoder plus per-slot links back to the
// router's request table, mirroring ContinuousBatcher::Lane but with the
// admission queue owned here (the router dispatches, the replica admits).
struct Replica::Lane {
  Lane(core::InferenceEngine& engine, std::int64_t slots,
       const core::SamplingOptions& sampling, std::uint64_t seed,
       bool is_degraded, double factor)
      : decoder(engine, slots, sampling, seed),
        ridx(static_cast<std::size_t>(slots), 0),
        retries(static_cast<std::size_t>(slots), 0),
        est(static_cast<std::size_t>(slots), 0.0),
        admit_s(static_cast<std::size_t>(slots), 0.0),
        occ(static_cast<std::size_t>(slots), 0),
        phases(static_cast<std::size_t>(slots)),
        degraded(is_degraded), cost_factor(factor) {}

  core::RaggedDecoder decoder;
  std::vector<std::size_t> ridx;        // slot -> router request index
  std::vector<std::int64_t> retries;    // engine retries absorbed per slot
  std::vector<double> est;              // outstanding-work charge per slot
  std::vector<double> admit_s;          // service start per slot
  std::vector<std::int64_t> occ;        // occupancy at admission per slot
  std::vector<obs::PhaseBreakdown> phases;  // attribution ledger per slot
  std::deque<std::pair<std::size_t, const core::TimedRequest*>> queue;
  bool degraded = false;
  double cost_factor = 1.0;  // degraded_factor on the batch lane
};

Replica::Replica(const FleetSpec& spec, std::int64_t id, std::uint64_t seed)
    : id_(id), spec_(spec), site_("fleet.r" + std::to_string(id)),
      seed_(seed), engine_(spec.serve().engine(), seed) {
  const auto& sopts = spec_.serve().options();
  primary_ = std::make_unique<Lane>(engine_, sopts.max_batch, sopts.sampling,
                                    seed_, false, 1.0);
}

Replica::~Replica() = default;

Replica::Lane& Replica::lane_for(const core::TimedRequest& rq) {
  const auto& sopts = spec_.serve().options();
  if (rq.slo != core::SloClass::kBatch || !spec_.options().batch_lane) {
    return *primary_;
  }
  if (!batch_) {
    if (!degraded_engine_) {
      // Same seed => identical weights; only the execution fidelity drops —
      // the same INT8 twin the overload path serves on (core/server.cc).
      core::EngineOptions d = sopts.engine;
      if (d.stream_weights) {
        d.stream_int8 = true;
      } else {
        d.policy.dtype = kernels::Dtype::kINT8;
        d.policy.gemm = kernels::GemmKind::kBlocked;
      }
      degraded_engine_ = std::make_unique<core::InferenceEngine>(
          spec_.serve().engine().model(), d, seed_);
    }
    batch_ = std::make_unique<Lane>(
        *degraded_engine_, std::max<std::int64_t>(1, sopts.max_batch / 2),
        sopts.sampling, seed_ + 1, true,
        sopts.virtual_service.degraded_factor);
  }
  return *batch_;
}

double Replica::estimate_s(const core::TimedRequest& rq,
                           bool degraded) const {
  // Prompt-aware (ISSUE 9): long prompts charge prefill_token_s per token.
  // No live prefix-cache discount here, deliberately — this estimate is a
  // refundable ledger entry (enqueue adds it, cancel/failed-admit/finish
  // subtract the same value), and cache contents change between those
  // calls; a cache-dependent value would leak the ledger.
  // Speculative decode (ISSUE 10): same effective-rate rescale as the
  // server's estimator — a fused verify step costs max(verify, draft) and
  // advances spec_step_tokens() tokens.
  const auto& sopts = spec_.serve().options();
  const auto& vs = sopts.virtual_service;
  const double spec_scale =
      std::max(1.0, core::RaggedDecoder::spec_draft_cost_factor(
                        sopts.engine, spec_.serve().engine().model().layers)) /
      core::RaggedDecoder::spec_step_tokens(sopts.engine);
  return (vs.prefill_s +
          vs.prefill_token_s * static_cast<double>(rq.prompt.size()) +
          vs.per_token_s * spec_scale * static_cast<double>(rq.new_tokens)) *
         (degraded ? vs.degraded_factor : 1.0);
}

void Replica::enqueue(std::size_t ridx, const core::TimedRequest* rq) {
  Lane& lane = lane_for(*rq);
  lane.queue.emplace_back(ridx, rq);
  outstanding_s_ += estimate_s(*rq, lane.degraded);
}

bool Replica::cancel(std::size_t ridx) {
  for (Lane* lane : {primary_.get(), batch_.get()}) {
    if (!lane) continue;
    auto it = std::find_if(lane->queue.begin(), lane->queue.end(),
                           [&](const auto& e) { return e.first == ridx; });
    if (it != lane->queue.end()) {
      outstanding_s_ =
          std::max(0.0, outstanding_s_ - estimate_s(*it->second,
                                                    lane->degraded));
      lane->queue.erase(it);
      return true;
    }
    for (std::int64_t s = 0; s < lane->decoder.capacity(); ++s) {
      const auto us = static_cast<std::size_t>(s);
      if (lane->decoder.arena().in_use(s) && lane->ridx[us] == ridx) {
        lane->decoder.retire(s);  // mid-decode cancellation frees the slot
        outstanding_s_ = std::max(0.0, outstanding_s_ - lane->est[us]);
        return true;
      }
    }
  }
  return false;
}

std::vector<std::size_t> Replica::drain() {
  std::vector<std::size_t> out;
  for (Lane* lane : {primary_.get(), batch_.get()}) {
    if (!lane) continue;
    for (const auto& [ridx, rq] : lane->queue) out.push_back(ridx);
    lane->queue.clear();
    for (std::int64_t s = 0; s < lane->decoder.capacity(); ++s) {
      if (lane->decoder.arena().in_use(s)) {
        out.push_back(lane->ridx[static_cast<std::size_t>(s)]);
        lane->decoder.retire(s);
      }
    }
  }
  outstanding_s_ = 0;
  return out;
}

bool Replica::has_work() const {
  for (const Lane* lane : {primary_.get(), batch_.get()}) {
    if (lane && (!lane->queue.empty() || lane->decoder.active() > 0)) {
      return true;
    }
  }
  return false;
}

double Replica::ready_s() const {
  if (crashed_ || !has_work()) return kNever;
  return std::max(clock_, stall_until_);
}

std::int64_t Replica::active() const {
  std::int64_t n = 0;
  for (const Lane* lane : {primary_.get(), batch_.get()}) {
    if (lane) n += lane->decoder.active();
  }
  return n;
}

std::int64_t Replica::queued() const {
  std::int64_t n = 0;
  for (const Lane* lane : {primary_.get(), batch_.get()}) {
    if (lane) n += static_cast<std::int64_t>(lane->queue.size());
  }
  return n;
}

bool Replica::fits_request(const core::TimedRequest& rq) const {
  return primary_->decoder.fits(static_cast<std::int64_t>(rq.prompt.size()),
                                rq.new_tokens);
}

bool Replica::holds_prefix(const core::TimedRequest& rq) const {
  const auto& d = primary_->decoder;
  return d.arena().prefix_cache_enabled() &&
         d.cached_prefix_tokens(rq.prompt) > 0;
}

void Replica::crash() { crashed_ = true; }

void Replica::stall_until(double t) { stall_until_ = std::max(stall_until_, t); }

void Replica::straggle(double factor, double until_s) {
  straggle_factor_ = factor;
  straggle_until_ = until_s;
}

bool Replica::with_retry(const std::function<void()>& invoke,
                         std::int64_t& tries) {
  const auto& res = spec_.serve().options().resilience;
  util::FaultInjector* inj = spec_.options().injector;
  tries = 0;
  for (;;) {
    bool fault = inj && inj->should_fail(site_);
    if (!fault) {
      try {
        invoke();
        return true;
      } catch (const zero::StreamFault&) {
        fault = true;
      } catch (const comm::CommFault&) {
        fault = true;
      }
    }
    ++engine_faults_;
    if (tries >= res.max_retries) return false;
    advance(res.retry_backoff_s * static_cast<double>(1LL << tries),
            obs::Phase::kRetryBackoff);
    ++tries;
    ++engine_retries_;
  }
}

void Replica::charge_active(double dt, obs::Phase p) {
  for (Lane* lane : {primary_.get(), batch_.get()}) {
    if (!lane) continue;
    for (std::int64_t s = 0; s < lane->decoder.capacity(); ++s) {
      if (lane->decoder.arena().in_use(s)) {
        lane->phases[static_cast<std::size_t>(s)].add(p, dt);
      }
    }
  }
}

void Replica::advance(double dt, obs::Phase p) {
  if (dt <= 0) return;
  clock_ += dt;
  charge_active(dt, p);
}

void Replica::finish_slot(Lane& lane, std::int64_t slot, bool failed,
                          std::int64_t extra_retries,
                          std::vector<Completion>& out) {
  const auto us = static_cast<std::size_t>(slot);
  Completion c;
  c.ridx = lane.ridx[us];
  c.failed = failed;
  c.batch_lane = lane.degraded;
  c.admit_s = lane.admit_s[us];
  c.finish_s = clock_;
  c.retries = lane.retries[us] + extra_retries;
  c.occupancy = lane.occ[us];
  c.phases = lane.phases[us];
  if (!failed) {
    c.tokens = lane.decoder.tokens(slot);
    c.stopped = lane.decoder.stopped(slot);
  }
  lane.decoder.retire(slot);
  outstanding_s_ = std::max(0.0, outstanding_s_ - lane.est[us]);
  out.push_back(std::move(c));
}

void Replica::admit_one(Lane& lane, std::vector<Completion>& out) {
  const auto& vs = spec_.serve().options().virtual_service;
  auto [ridx, rq] = lane.queue.front();
  lane.queue.pop_front();
  const double admit_start = clock_;
  std::int64_t slot = -1;
  std::int64_t tries = 0;
  const bool ok =
      with_retry([&] { slot = lane.decoder.admit(rq->prompt, rq->new_tokens); },
                 tries);
  if (!ok) {
    outstanding_s_ =
        std::max(0.0, outstanding_s_ - estimate_s(*rq, lane.degraded));
    Completion c;
    c.ridx = ridx;
    c.failed = true;
    c.batch_lane = lane.degraded;
    c.admit_s = admit_start;
    c.finish_s = clock_;
    c.retries = tries;
    // The copy never held a slot; [admit_s, finish_s] is all backoff.
    c.phases.add(obs::Phase::kRetryBackoff, clock_ - admit_start);
    out.push_back(std::move(c));
    return;
  }
  const auto us = static_cast<std::size_t>(slot);
  lane.ridx[us] = ridx;
  lane.retries[us] = tries;
  lane.est[us] = estimate_s(*rq, lane.degraded);
  lane.admit_s[us] = admit_start;
  // Fresh ledger (slots are reused); the slot was not yet in use during its
  // own admission retries, so the backoff accrued since admit_start is
  // back-charged here to keep [admit_s, finish_s] fully covered.
  lane.phases[us].clear();
  lane.phases[us].add(obs::Phase::kRetryBackoff, clock_ - admit_start);
  // Prefill charged per chunk (ISSUE 9): admit() ran only the first
  // prefill_chunk_tokens prompt rows; the rest ride subsequent step_lanes
  // iterations, each priced as it runs.
  advance((vs.prefill_s +
           vs.prefill_token_s *
               static_cast<double>(lane.decoder.last_step_prefill_rows())) *
              lane.cost_factor * straggle_factor(clock_),
          obs::Phase::kPrefill);
  lane.occ[us] = active();
  if (lane.decoder.finished(slot)) finish_slot(lane, slot, false, 0, out);
}

void Replica::step_lanes(std::vector<Completion>& out) {
  const auto& vs = spec_.serve().options().virtual_service;
  for (Lane* lane : {primary_.get(), batch_.get()}) {
    if (!lane || lane->decoder.active() == 0) continue;
    std::int64_t tries = 0;
    const bool ok = with_retry([&] { lane->decoder.step(); }, tries);
    if (tries > 0) {
      for (std::int64_t s = 0; s < lane->decoder.capacity(); ++s) {
        if (lane->decoder.arena().in_use(s)) {
          lane->retries[static_cast<std::size_t>(s)] += tries;
        }
      }
    }
    if (!ok) {
      // Retry budget exhausted mid-stream: every sequence live on this lane
      // fails (the router decides whether their failover budget re-admits
      // them elsewhere); their slots free immediately.
      for (std::int64_t s = 0; s < lane->decoder.capacity(); ++s) {
        if (lane->decoder.arena().in_use(s)) finish_slot(*lane, s, true, 0, out);
      }
      continue;
    }
    // Mixed prefill+decode iteration (ISSUE 9), priced max(prefill part,
    // decode part) exactly like the continuous batcher: the bounded prompt
    // chunk piggybacks on the memory-bound decode iteration's idle compute,
    // so only the excess over the decode charge lands as prefill. A pure-
    // prefill iteration pays its chunk alone and no per_token_s.
    const std::int64_t prefill_rows = lane->decoder.last_step_prefill_rows();
    const std::int64_t decode_rows = lane->decoder.last_step_decode_rows();
    const double scale = lane->cost_factor * straggle_factor(clock_);
    const double prefill_part =
        vs.prefill_token_s * static_cast<double>(prefill_rows) * scale;
    const double decode_dt = decode_rows > 0 ? vs.per_token_s * scale : 0.0;
    // Speculative decode (ISSUE 10): the fused verify step costs
    // max(verify, draft); the draft lane's excess over the verify charge
    // lands in kDraftCompute, exactly like the continuous batcher, and
    // prefill chunks interleave against the whole fused step.
    const double draft_dt =
        decode_rows > 0
            ? vs.per_token_s *
                  core::RaggedDecoder::spec_draft_cost_factor(
                      spec_.serve().options().engine,
                      spec_.serve().engine().model().layers) *
                  scale
            : 0.0;
    const double draft_excess = std::max(0.0, draft_dt - decode_dt);
    const double fused_dt = decode_dt + draft_excess;
    advance(std::max(prefill_part, fused_dt) - fused_dt,
            obs::Phase::kPrefill);
    if (decode_rows > 0) {
      advance(decode_dt, obs::Phase::kDecodeCompute);
      advance(draft_excess, obs::Phase::kDraftCompute);
    }
    for (std::int64_t s = 0; s < lane->decoder.capacity(); ++s) {
      if (lane->decoder.arena().in_use(s) && lane->decoder.finished(s)) {
        finish_slot(*lane, s, false, 0, out);
      }
    }
  }
}

void Replica::process_one(double now, std::vector<Completion>& out) {
  // Catching up to the fleet clock (stall recovery, idle wakeup) and
  // injected latency spikes are dead time for every sequence in a slot. The
  // clock itself still snaps to `now` exactly (clock_ + (now - clock_) can
  // round differently, and downstream timestamps must stay bit-identical
  // to the pre-attribution event loop).
  if (now > clock_) {
    charge_active(now - clock_, obs::Phase::kStall);
    clock_ = now;
  }
  if (util::FaultInjector* inj = spec_.options().injector) {
    advance(inj->delay_s(site_), obs::Phase::kStall);
  }
  for (Lane* lane : {primary_.get(), batch_.get()}) {
    // Page-budget admission (ISSUE 7): the queue head needs a free slot AND
    // committable pool pages for its actual prompt + max_new tokens. The
    // router only dispatches structurally-fitting requests, so when a lane
    // is idle can_admit reduces to the old free-slot gate — a blocked head
    // always has live sequences ahead of it to step (no stall).
    if (lane && !lane->queue.empty() &&
        lane->decoder.can_admit(lane->queue.front().second->prompt,
                                lane->queue.front().second->new_tokens)) {
      admit_one(*lane, out);
      return;
    }
  }
  step_lanes(out);
}

}  // namespace dsinfer::fleet
