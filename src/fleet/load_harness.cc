#include "fleet/load_harness.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/rng.h"

namespace dsinfer::fleet {

std::vector<core::TimedRequest> generate_fleet_trace(
    const FleetWorkloadSpec& spec) {
  std::vector<core::TimedRequest> out;
  if (spec.base_rate_hz <= 0 || spec.duration_s <= 0) return out;
  Rng rng(spec.seed);
  const double burst = std::max(1.0, spec.burst_factor);
  // Thinning: draw candidate arrivals at the peak rate, keep each with
  // probability rate(t)/peak. rate(t) swings in [base/burst, base*burst].
  const double peak = spec.base_rate_hz * burst;
  const double mid =
      0.5 * (spec.base_rate_hz * burst + spec.base_rate_hz / burst);
  const double amp =
      0.5 * (spec.base_rate_hz * burst - spec.base_rate_hz / burst);
  const double period = spec.burst_period_s > 0 ? spec.burst_period_s
                                                : spec.duration_s;

  // Zipf-ish hot-prefix pool: prefix k drawn with weight 1/(k+1).
  const auto n_hot = std::max<std::int64_t>(1, spec.hot_prefixes);
  const auto plen = std::max<std::int64_t>(1, spec.prefix_len);
  std::vector<std::vector<std::int32_t>> prefixes(
      static_cast<std::size_t>(n_hot));
  for (auto& p : prefixes) {
    p.resize(static_cast<std::size_t>(plen));
    for (auto& tok : p) {
      tok = static_cast<std::int32_t>(rng.integer(0, spec.vocab - 1));
    }
  }
  double zipf_total = 0;
  for (std::int64_t k = 0; k < n_hot; ++k) {
    zipf_total += 1.0 / static_cast<double>(k + 1);
  }

  double t = 0;
  std::int64_t id = 0;
  while (true) {
    t += -std::log(1.0 - static_cast<double>(rng.uniform())) / peak;
    if (t >= spec.duration_s) break;
    const double rate =
        mid + amp * std::sin(2.0 * std::numbers::pi * t / period);
    if (static_cast<double>(rng.uniform()) > rate / peak) continue;  // thinned

    core::TimedRequest rq;
    rq.id = id++;
    rq.arrival_s = t;
    rq.tenant = rng.integer(0, std::max<std::int64_t>(1, spec.tenants) - 1);

    const auto plen_i = static_cast<std::size_t>(
        spec.prompt_lengths[static_cast<std::size_t>(rng.integer(
            0, static_cast<std::int64_t>(spec.prompt_lengths.size()) - 1))]);
    rq.prompt.reserve(plen_i);
    if (static_cast<double>(rng.uniform()) < spec.hot_fraction) {
      double u = static_cast<double>(rng.uniform()) * zipf_total;
      std::size_t k = 0;
      while (k + 1 < prefixes.size() &&
             (u -= 1.0 / static_cast<double>(k + 1)) > 0) {
        ++k;
      }
      const auto& pre = prefixes[k];
      for (std::size_t j = 0; j < std::min(pre.size(), plen_i); ++j) {
        rq.prompt.push_back(pre[j]);
      }
    }
    while (rq.prompt.size() < plen_i) {
      rq.prompt.push_back(
          static_cast<std::int32_t>(rng.integer(0, spec.vocab - 1)));
    }
    rq.new_tokens = rng.integer(spec.min_new_tokens, spec.max_new_tokens);

    if (static_cast<double>(rng.uniform()) < spec.batch_fraction) {
      rq.slo = core::SloClass::kBatch;
    } else {
      rq.slo = core::SloClass::kLatency;
      if (spec.latency_deadline_s > 0) {
        rq.deadline_s = rq.arrival_s + spec.latency_deadline_s;
      }
    }
    out.push_back(std::move(rq));
  }
  return out;
}

std::vector<ReplicaFault> standard_chaos_schedule(std::int64_t replicas,
                                                  double duration_s,
                                                  double crash_at_frac) {
  std::vector<ReplicaFault> out;
  if (replicas < 1 || duration_s <= 0) return out;
  ReplicaFault crash;
  crash.replica = 0;
  crash.at_s = duration_s * std::clamp(crash_at_frac, 0.0, 1.0);
  crash.kind = ReplicaFault::Kind::kCrash;
  out.push_back(crash);
  if (replicas > 1) {
    ReplicaFault straggle;
    straggle.replica = 1;
    straggle.at_s = duration_s / 3.0;
    straggle.kind = ReplicaFault::Kind::kStraggle;
    straggle.duration_s = duration_s / 3.0;
    straggle.factor = 2.0;
    out.push_back(straggle);
  }
  if (replicas > 2) {
    ReplicaFault stall;
    stall.replica = 2;
    stall.at_s = duration_s * 0.4;
    stall.kind = ReplicaFault::Kind::kStall;
    stall.duration_s = duration_s * 0.05;
    out.push_back(stall);
  }
  return out;
}

}  // namespace dsinfer::fleet
