#include "fleet/fleet_spec.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace dsinfer::fleet {

using core::ConfigError;

namespace {

void add(std::vector<ConfigError>& errs, ConfigError::Code code,
         std::string message) {
  errs.push_back(ConfigError{code, std::move(message)});
}

}  // namespace

const char* route_policy_name(RoutePolicy p) {
  switch (p) {
    case RoutePolicy::kLeastOutstanding: return "least-outstanding";
    case RoutePolicy::kPowerOfTwo: return "power-of-two";
    case RoutePolicy::kPrefixAffinity: return "prefix-affinity";
  }
  return "?";
}

FleetSpec::FleetSpec(core::ServeSpec serve) : serve_(std::move(serve)) {}

FleetSpec& FleetSpec::replicas(std::int64_t n) {
  opts_.replicas = n;
  return *this;
}
FleetSpec& FleetSpec::policy(RoutePolicy p) {
  opts_.policy = p;
  return *this;
}
FleetSpec& FleetSpec::hedge(bool on, double delay_s) {
  opts_.latency.hedging = on;
  opts_.latency.hedge_delay_s = delay_s;
  return *this;
}
FleetSpec& FleetSpec::queue_limits(std::int64_t latency, std::int64_t batch) {
  opts_.latency.queue_limit = latency;
  opts_.batch.queue_limit = batch;
  return *this;
}
FleetSpec& FleetSpec::failover_budget(std::int64_t n) {
  opts_.failover_budget = n;
  return *this;
}
FleetSpec& FleetSpec::probe(double interval_s, std::int64_t breaker_threshold,
                            double cooldown_s) {
  opts_.probe_interval_s = interval_s;
  opts_.breaker_threshold = breaker_threshold;
  opts_.breaker_cooldown_s = cooldown_s;
  return *this;
}
FleetSpec& FleetSpec::affinity(std::int64_t prefix_tokens,
                               double spill_factor) {
  opts_.affinity_prefix = prefix_tokens;
  opts_.affinity_spill = spill_factor;
  return *this;
}
FleetSpec& FleetSpec::batch_lane(bool on) {
  opts_.batch_lane = on;
  return *this;
}
FleetSpec& FleetSpec::fault_injector(util::FaultInjector* inj) {
  opts_.injector = inj;
  return *this;
}

std::vector<ConfigError> FleetSpec::validate() const {
  std::vector<ConfigError> errs = serve_.validate();
  if (opts_.replicas < 1 || opts_.replicas > 256) {
    add(errs, ConfigError::Code::kBadReplicaCount,
        "FleetSpec: replicas must be in [1, 256]");
  }
  if (opts_.latency.hedging &&
      !(opts_.latency.hedge_delay_s > 0 &&
        std::isfinite(opts_.latency.hedge_delay_s))) {
    add(errs, ConfigError::Code::kBadHedgeDelay,
        "FleetSpec: hedging requires a positive, finite hedge delay");
  }
  if (opts_.failover_budget < 0) {
    add(errs, ConfigError::Code::kBadFailoverBudget,
        "FleetSpec: failover_budget must be >= 0");
  }
  if (opts_.latency.queue_limit < 1 || opts_.batch.queue_limit < 1) {
    add(errs, ConfigError::Code::kBadSloClass,
        "FleetSpec: per-class queue limits must be >= 1");
  }
  if (opts_.batch.hedging) {
    add(errs, ConfigError::Code::kBadSloClass,
        "FleetSpec: the batch lane does not hedge (latency class only)");
  }
  if (opts_.probe_interval_s <= 0 || opts_.breaker_threshold < 1 ||
      opts_.breaker_cooldown_s < 0) {
    add(errs, ConfigError::Code::kBadProbe,
        "FleetSpec: probe interval must be > 0, breaker threshold >= 1, "
        "breaker cooldown >= 0");
  }
  if (opts_.policy == RoutePolicy::kPrefixAffinity &&
      opts_.affinity_prefix < 1) {
    add(errs, ConfigError::Code::kBadAffinity,
        "FleetSpec: prefix affinity needs affinity_prefix >= 1 tokens");
  }
  const auto& sopts = serve_.options();
  if (sopts.scheduler != core::Scheduler::kContinuous) {
    add(errs, ConfigError::Code::kFleetNeedsContinuous,
        "FleetSpec: fleet replicas run the continuous scheduler "
        "(Scheduler::kContinuous)");
  }
  const auto& vs = sopts.virtual_service;
  if (!vs.enabled || vs.per_token_s <= 0 || vs.prefill_s <= 0) {
    add(errs, ConfigError::Code::kFleetNeedsVirtualService,
        "FleetSpec: fleet replay needs the virtual service clock (enabled, "
        "positive prefill_s and per_token_s)");
  }
  return errs;
}

std::uint64_t prefix_hash(std::span<const std::int32_t> prompt,
                          std::int64_t prefix_tokens) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  const std::size_t n =
      std::min(prompt.size(), static_cast<std::size_t>(
                                  std::max<std::int64_t>(0, prefix_tokens)));
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(prompt[i]));
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

namespace {

// Uniform draw over the dispatchable replicas, excluding `exclude`.
std::int64_t draw_dispatchable(std::span<const ReplicaLoadView> views,
                               std::int64_t exclude, Rng& rng) {
  std::int64_t n = 0;
  for (std::int64_t r = 0; r < static_cast<std::int64_t>(views.size()); ++r) {
    if (views[static_cast<std::size_t>(r)].dispatchable && r != exclude) ++n;
  }
  if (n == 0) return -1;
  std::int64_t k = rng.integer(0, n - 1);
  for (std::int64_t r = 0; r < static_cast<std::int64_t>(views.size()); ++r) {
    if (!views[static_cast<std::size_t>(r)].dispatchable || r == exclude) {
      continue;
    }
    if (k-- == 0) return r;
  }
  return -1;
}

std::int64_t least_outstanding(std::span<const ReplicaLoadView> views,
                               std::int64_t exclude) {
  std::int64_t best = -1;
  for (std::int64_t r = 0; r < static_cast<std::int64_t>(views.size()); ++r) {
    const auto& v = views[static_cast<std::size_t>(r)];
    if (!v.dispatchable || r == exclude) continue;
    if (best < 0 ||
        v.outstanding_s < views[static_cast<std::size_t>(best)].outstanding_s) {
      best = r;  // ties break toward the lowest id (stable, deterministic)
    }
  }
  return best;
}

std::int64_t power_of_two(std::span<const ReplicaLoadView> views,
                          std::int64_t exclude, Rng& rng) {
  const std::int64_t a = draw_dispatchable(views, exclude, rng);
  if (a < 0) return -1;
  std::int64_t b = draw_dispatchable(views, exclude, rng);
  if (b < 0) b = a;
  const auto& va = views[static_cast<std::size_t>(a)];
  const auto& vb = views[static_cast<std::size_t>(b)];
  return vb.outstanding_s < va.outstanding_s ? b : a;
}

}  // namespace

std::int64_t route_choose(RoutePolicy policy, const FleetOptions& opts,
                          std::span<const ReplicaLoadView> views,
                          std::uint64_t affinity_key, std::int64_t exclude,
                          Rng& rng) {
  switch (policy) {
    case RoutePolicy::kLeastOutstanding:
      return least_outstanding(views, exclude);
    case RoutePolicy::kPowerOfTwo:
      return power_of_two(views, exclude, rng);
    case RoutePolicy::kPrefixAffinity: {
      // ISSUE 7: when any replica's KV cache *actually holds* a prefix of
      // this request (prefix_warm — cache contents, not the hash bucket),
      // route to the least-loaded warm replica under the same spill guard:
      // reusing resident shared pages beats the hash home's cold miss.
      {
        double total = 0;
        std::int64_t n = 0;
        for (const auto& v : views) {
          if (!v.dispatchable) continue;
          total += v.outstanding_s;
          ++n;
        }
        const double mean = n > 0 ? total / static_cast<double>(n) : 0.0;
        std::int64_t warm = -1;
        for (std::int64_t r = 0; r < static_cast<std::int64_t>(views.size());
             ++r) {
          const auto& v = views[static_cast<std::size_t>(r)];
          if (!v.dispatchable || r == exclude || !v.prefix_warm) continue;
          if (warm < 0 || v.outstanding_s <
                              views[static_cast<std::size_t>(warm)]
                                  .outstanding_s) {
            warm = r;
          }
        }
        if (warm >= 0 &&
            (mean <= 0 ||
             views[static_cast<std::size_t>(warm)].outstanding_s <=
                 opts.affinity_spill * mean)) {
          return warm;
        }
      }
      const auto home = static_cast<std::int64_t>(
          affinity_key % static_cast<std::uint64_t>(views.size()));
      if (home != exclude &&
          views[static_cast<std::size_t>(home)].dispatchable) {
        // Spill only when the home is clearly hotter than the fleet mean —
        // affinity trades some imbalance for prefix locality.
        double total = 0;
        std::int64_t n = 0;
        for (const auto& v : views) {
          if (!v.dispatchable) continue;
          total += v.outstanding_s;
          ++n;
        }
        const double mean = n > 0 ? total / static_cast<double>(n) : 0.0;
        const auto& hv = views[static_cast<std::size_t>(home)];
        if (mean <= 0 || hv.outstanding_s <= opts.affinity_spill * mean) {
          return home;
        }
        // Overloaded home: spill means *away* — keep the home out of the
        // fallback draw (unless a failover exclusion already claims the
        // slot, which takes priority).
        if (exclude < 0) return power_of_two(views, home, rng);
      }
      return power_of_two(views, exclude, rng);
    }
  }
  return -1;
}

bool Breaker::on_failure(double now_s, std::int64_t threshold) {
  ++consecutive_failures;
  if (state == State::kHalfOpen) {
    // The trial failed: straight back to open, cooldown restarts.
    state = State::kOpen;
    opened_at_s = now_s;
    ++opens;
    return true;
  }
  if (state == State::kClosed && consecutive_failures >= threshold) {
    state = State::kOpen;
    opened_at_s = now_s;
    ++opens;
    return true;
  }
  return false;
}

void Breaker::on_success() {
  consecutive_failures = 0;
  if (state == State::kHalfOpen) {
    state = State::kClosed;
    ++closes;
  }
}

void Breaker::maybe_half_open(double now_s, double cooldown_s) {
  if (state == State::kOpen && now_s >= opened_at_s + cooldown_s) {
    state = State::kHalfOpen;
    ++half_opens;
  }
}

}  // namespace dsinfer::fleet
