// DES twin of the fleet (ISSUE 6 satellite): the same router policies,
// breaker state machine, hedging, failover, and backpressure as
// fleet::FleetRouter — run as events on sim::Simulator over a *synthetic*
// service model instead of real decoders. Mirroring is by construction, not
// reimplementation: route_choose(), Breaker, FleetOptions, and the
// virtual-service cost constants are shared with the functional router, so
// the two goodput/latency curves must agree in shape (the cross-check test
// asserts the saturation knee lands within one rate step).
//
// Differences from the functional fleet, by design:
//   * No engines, no KV, no tokens: a served request's `tokens` is a
//     placeholder of the right LENGTH (prompt + new_tokens zeros) so the
//     shared accounting checker and summaries work; contents are meaningless.
//   * Engine-level fault injection (util::FaultInjector) is not modeled —
//     only the scheduled ReplicaFault timeline (crash/stall/straggle).
//   * Events live on sim::Simulator (obs::kSimPid clock domain); hedge
//     timers use Simulator::cancel for first-wins cancellation.
#pragma once

#include <cstdint>
#include <vector>

#include "fleet/router.h"

namespace dsinfer::fleet {

// Simulates the trace through the fleet twin. Validates the spec like
// FleetRouter (throws core::ConfigException on the first error).
FleetResult simulate_fleet(const FleetSpec& spec,
                           const std::vector<core::TimedRequest>& requests,
                           std::vector<ReplicaFault> faults = {},
                           std::uint64_t seed = 0x5eed);

}  // namespace dsinfer::fleet
