#include "model/model_config.h"

#include <stdexcept>

namespace dsinfer::model {

std::int64_t DenseModelConfig::layer_params() const {
  const std::int64_t h = hidden;
  const std::int64_t f = ffn();
  return 3 * h * h + 3 * h  // QKV
         + h * h + h        // attention output projection
         + f * h + f        // FC1
         + h * f + h        // FC2
         + 4 * h;           // two layernorms (gamma + beta)
}

std::int64_t DenseModelConfig::total_params() const {
  return layers * layer_params() + vocab * hidden  // token embedding
         + max_seq * hidden                        // position embedding
         + 2 * hidden;                             // final layernorm
}

double DenseModelConfig::total_param_gb(Dtype dtype) const {
  return static_cast<double>(total_params()) *
         static_cast<double>(dtype_bytes(dtype)) / 1e9;
}

double DenseModelConfig::layer_flops(std::int64_t tokens,
                                     std::int64_t kv_len) const {
  const double h = static_cast<double>(hidden);
  const double f = static_cast<double>(ffn());
  const double t = static_cast<double>(tokens);
  const double kv = static_cast<double>(kv_len);
  const double gemm = 2.0 * t * (3.0 * h * h + h * h + f * h + h * f);
  // Attention: QK^T and PV, each 2*h FLOPs per (token, kv position).
  const double attn = 4.0 * t * kv * h;
  return gemm + attn;
}

double DenseModelConfig::model_flops(std::int64_t tokens,
                                     std::int64_t kv_len) const {
  return static_cast<double>(layers) * layer_flops(tokens, kv_len) +
         2.0 * static_cast<double>(tokens) * static_cast<double>(vocab) *
             static_cast<double>(hidden);  // LM head
}

double DenseModelConfig::layer_param_bytes(Dtype dtype) const {
  return static_cast<double>(layer_params()) *
         static_cast<double>(dtype_bytes(dtype));
}

double DenseModelConfig::model_param_bytes(Dtype dtype) const {
  return static_cast<double>(total_params()) *
         static_cast<double>(dtype_bytes(dtype));
}

double DenseModelConfig::kv_cache_bytes(std::int64_t batch,
                                        std::int64_t seq) const {
  // K and V, FP16, all layers.
  return 2.0 * 2.0 * static_cast<double>(batch) * static_cast<double>(seq) *
         static_cast<double>(hidden) * static_cast<double>(layers);
}

std::int64_t MoEModelConfig::expert_params() const {
  const std::int64_t h = hidden;
  const std::int64_t f = ffn();
  return f * h + f + h * f + h;  // one expert = one FFN block
}

std::int64_t MoEModelConfig::base_dense_params() const {
  DenseModelConfig d;
  d.hidden = hidden;
  d.layers = layers;
  d.heads = heads;
  d.vocab = vocab;
  d.max_seq = max_seq;
  return d.total_params();
}

std::int64_t MoEModelConfig::total_params() const {
  // The MoE layers swap their single FFN for `experts` FFNs plus a gate.
  const std::int64_t gate = hidden * experts;
  return base_dense_params() +
         moe_layers() * ((experts - 1) * expert_params() + gate);
}

double MoEModelConfig::model_flops_per_token(std::int64_t kv_len) const {
  DenseModelConfig d;
  d.hidden = hidden;
  d.layers = layers;
  d.heads = heads;
  d.vocab = vocab;
  d.max_seq = max_seq;
  // Top-1 gating: active compute equals the dense base plus the gate GeMMs.
  return d.model_flops(1, kv_len) +
         2.0 * static_cast<double>(moe_layers()) * static_cast<double>(hidden) *
             static_cast<double>(experts);
}

double MoEModelConfig::model_param_bytes(Dtype dtype) const {
  return static_cast<double>(total_params()) *
         static_cast<double>(dtype_bytes(dtype));
}

namespace {

DenseModelConfig dense(std::string name, std::int64_t hidden,
                       std::int64_t layers, std::int64_t heads) {
  DenseModelConfig c;
  c.name = std::move(name);
  c.hidden = hidden;
  c.layers = layers;
  c.heads = heads;
  return c;
}

MoEModelConfig moe(std::string name, std::int64_t hidden, std::int64_t layers,
                   std::int64_t heads, std::int64_t mp, std::int64_t es,
                   std::int64_t gpus) {
  MoEModelConfig c;
  c.name = std::move(name);
  c.hidden = hidden;
  c.layers = layers;
  c.heads = heads;
  c.tensor_parallel = mp;
  c.expert_slicing = es;
  c.gpus = gpus;
  return c;
}

}  // namespace

std::vector<DenseModelConfig> dense_model_zoo() {
  // Table I. Head counts follow the published configs; hidden dims are the
  // paper's "hidden dim (K)" column.
  return {
      dense("GPT-2 1.5B", 1600, 48, 25),
      dense("GPT-Neo 2.7B", 2560, 32, 20),
      dense("GPT-J 6B", 4096, 28, 32),
      dense("GPT-13B", 5120, 40, 40),
      dense("GPT-NeoX 20B", 6144, 44, 64),
      dense("GPT-50B", 8192, 62, 64),
      dense("GPT-87B", 12288, 48, 96),
      dense("LM-175B", 12288, 96, 96),
      dense("LM-530B", 20480, 105, 128),
  };
}

const DenseModelConfig& dense_model(const std::string& name) {
  static const std::vector<DenseModelConfig> zoo = dense_model_zoo();
  for (const auto& m : zoo) {
    if (m.name == name) return m;
  }
  throw std::invalid_argument("unknown dense model: " + name);
}

std::vector<MoEModelConfig> moe_model_zoo() {
  // Table II. "MP" is tensor parallelism over the non-expert (and, with
  // expert-slicing, expert) parameters; every config uses EP=128.
  return {
      moe("1.3B+MoE-128", 2048, 24, 16, 1, 1, 128),
      moe("2.4B+MoE-128", 3584, 16, 28, 1, 1, 128),
      // Layer counts chosen so that both the base-model name (12*h^2*L) and
      // the published sparse totals (Table II "Size") are matched within 1%.
      moe("8B+MoE-128", 4096, 40, 32, 4, 1, 128),
      moe("24B+MoE-128", 8192, 30, 64, 8, 2, 256),
      moe("47B+MoE-128", 8192, 58, 64, 8, 2, 256),
  };
}

const MoEModelConfig& moe_model(const std::string& name) {
  static const std::vector<MoEModelConfig> zoo = moe_model_zoo();
  for (const auto& m : zoo) {
    if (m.name == name) return m;
  }
  throw std::invalid_argument("unknown MoE model: " + name);
}

DenseModelConfig bert_base() {
  DenseModelConfig c = dense("BERT-base", 768, 12, 12);
  c.vocab = 30522;
  c.max_seq = 512;
  c.causal = false;
  return c;
}

DenseModelConfig distilbert() {
  DenseModelConfig c = dense("DistilBERT", 768, 6, 12);
  c.vocab = 30522;
  c.max_seq = 512;
  c.causal = false;
  return c;
}

DenseModelConfig tiny_gpt(std::int64_t hidden, std::int64_t layers,
                          std::int64_t heads) {
  DenseModelConfig c = dense("tiny-gpt", hidden, layers, heads);
  c.vocab = 256;
  c.max_seq = 256;
  return c;
}

}  // namespace dsinfer::model
