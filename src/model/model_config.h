// Model architecture descriptions and analytic cost calculators.
//
// The dense configurations reproduce Table I of the paper and the sparse
// (MoE) configurations reproduce Table II. The same structs drive both the
// functional engine (at miniature scale in tests/examples) and the
// performance model (at full scale in the benches).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernels/transformer_layer.h"

namespace dsinfer::model {

using kernels::Dtype;

inline std::size_t dtype_bytes(Dtype d) {
  switch (d) {
    case Dtype::kFP32:
      return 4;
    case Dtype::kFP16:
      return 2;
    case Dtype::kINT8:
      return 1;
  }
  return 4;
}

// GPT-style decoder-only dense transformer (or encoder when `causal=false`,
// used by the BERT/DistilBERT comparison of Fig. 12).
struct DenseModelConfig {
  std::string name;
  std::int64_t hidden = 0;
  std::int64_t layers = 0;
  std::int64_t heads = 0;
  std::int64_t vocab = 51200;
  std::int64_t max_seq = 2048;
  bool causal = true;

  std::int64_t ffn() const { return 4 * hidden; }
  std::int64_t head_dim() const { return hidden / heads; }

  // Parameters of one transformer layer (weights + biases + layernorms).
  std::int64_t layer_params() const;
  // Full model including token/position embeddings and final layernorm.
  std::int64_t total_params() const;
  double total_param_gb(Dtype dtype) const;

  // FLOPs to run one layer over `tokens` new tokens attending to `kv_len`
  // total positions (2 FLOPs per MAC).
  double layer_flops(std::int64_t tokens, std::int64_t kv_len) const;
  // FLOPs for the whole model for a forward over `tokens` new tokens.
  double model_flops(std::int64_t tokens, std::int64_t kv_len) const;

  // Parameter bytes a forward pass must stream per layer / whole model.
  double layer_param_bytes(Dtype dtype) const;
  double model_param_bytes(Dtype dtype) const;

  // KV-cache bytes for `batch` sequences at length `seq` (FP16 cache,
  // matching the paper's deployments).
  double kv_cache_bytes(std::int64_t batch, std::int64_t seq) const;
};

// Mixture-of-Experts transformer: a dense base model where every
// `moe_every`-th FFN is replaced by `experts` parallel expert FFNs behind a
// top-1 gate (the paper's GPT+MoE-128 family, Table II).
struct MoEModelConfig {
  std::string name;
  std::int64_t hidden = 0;
  std::int64_t layers = 0;
  std::int64_t heads = 0;
  std::int64_t experts = 128;
  std::int64_t moe_every = 2;  // every other layer is an MoE layer
  std::int64_t vocab = 51200;
  std::int64_t max_seq = 2048;

  // Paper Table II deployment columns.
  std::int64_t tensor_parallel = 1;   // "MP degree"
  std::int64_t expert_parallel = 128;  // "EP degree"
  std::int64_t expert_slicing = 1;
  std::int64_t gpus = 128;

  std::int64_t ffn() const { return 4 * hidden; }
  std::int64_t moe_layers() const { return layers / moe_every; }
  std::int64_t dense_ffn_layers() const { return layers - moe_layers(); }

  std::int64_t expert_params() const;      // one expert FFN
  std::int64_t total_params() const;       // full sparse model
  std::int64_t base_dense_params() const;  // the "1.3B" part of "1.3B+MoE-128"

  // Per-token *active* FLOPs (top-1 gating: one expert per token).
  double model_flops_per_token(std::int64_t kv_len) const;
  // Parameter bytes touched per forward given expert-parallel execution
  // (each GPU holds experts/EP experts; all are streamed once per batch).
  double model_param_bytes(Dtype dtype) const;
};

// --- Model zoo (Tables I and II, plus the Fig. 12 encoder models) ---

// Dense models of Table I, in ascending size.
std::vector<DenseModelConfig> dense_model_zoo();
// Lookup by name ("GPT-2 1.5B", "LM-175B", ...). Throws if unknown.
const DenseModelConfig& dense_model(const std::string& name);

// Sparse models of Table II.
std::vector<MoEModelConfig> moe_model_zoo();
const MoEModelConfig& moe_model(const std::string& name);

// Encoder models used by the E.T. comparison (Fig. 12).
DenseModelConfig bert_base();
DenseModelConfig distilbert();

// A miniature config for functional tests/examples (runs in milliseconds).
DenseModelConfig tiny_gpt(std::int64_t hidden = 64, std::int64_t layers = 2,
                          std::int64_t heads = 4);

}  // namespace dsinfer::model
