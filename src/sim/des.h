// Minimal discrete-event simulation core.
//
// Drives the pipeline-parallel schedule studies (Figs. 8, 10b, 13): stages
// and links are exclusive FIFO Resources, computation/communication are
// durations, and the schedule logic is plain callbacks. Deterministic: ties
// in time are broken by insertion order.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

namespace dsinfer::sim {

class Simulator {
 public:
  using Callback = std::function<void()>;
  // Handle for a scheduled event; pass to cancel(). Never reused within one
  // Simulator.
  using EventId = std::uint64_t;

  double now() const { return now_; }

  // Schedules `cb` at absolute time `t` (>= now). The returned id can cancel
  // the event before it fires (ISSUE 6: hedged-request first-wins
  // cancellation and probe timers in the fleet DES twin).
  EventId schedule_at(double t, Callback cb);
  EventId schedule_after(double dt, Callback cb) {
    return schedule_at(now_ + dt, std::move(cb));
  }

  // Marks a pending event dead: it is skipped (and its callback destroyed)
  // when its time comes. Cancelling an already-fired or unknown id is a
  // harmless no-op.
  void cancel(EventId id);

  // Runs until the event queue drains; returns the final clock.
  double run();

  std::size_t events_processed() const { return processed_; }
  std::size_t events_cancelled() const { return cancelled_count_; }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Callback cb;
    bool operator>(const Event& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::unordered_set<EventId> cancelled_;  // pending-but-dead event ids
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
  std::size_t cancelled_count_ = 0;
};

// An exclusive FIFO server (a GPU stream, a PCIe link, an NVMe queue).
// Work submitted while busy queues up in submission order.
//
// When tracing is enabled, each Resource becomes a track in the simulator's
// virtual clock domain (obs::kSimPid) and every submit() emits a complete
// event covering [start, start + duration) in virtual seconds.
class Resource {
 public:
  Resource(Simulator& sim, std::string name);

  // Occupies the resource for `duration` starting no earlier than now;
  // `done` fires at completion. Returns the completion time. `label`, if
  // non-empty, names the traced span (defaults to the resource name).
  double submit(double duration, Simulator::Callback done = {},
                const std::string& label = {});

  double busy_until() const { return free_at_; }
  double busy_time() const { return busy_; }
  double utilization(double horizon) const {
    return horizon > 0 ? busy_ / horizon : 0.0;
  }
  const std::string& name() const { return name_; }

 private:
  Simulator& sim_;
  std::string name_;
  double free_at_ = 0.0;
  double busy_ = 0.0;
  std::int64_t trace_tid_ = 0;   // track id in the kSimPid clock domain
  bool track_named_ = false;
};

}  // namespace dsinfer::sim
