#include "sim/des.h"

#include <stdexcept>
#include <utility>

namespace dsinfer::sim {

void Simulator::schedule_at(double t, Callback cb) {
  if (t < now_) throw std::invalid_argument("schedule_at: time in the past");
  queue_.push(Event{t, next_seq_++, std::move(cb)});
}

double Simulator::run() {
  while (!queue_.empty()) {
    // priority_queue::top returns const&; move out via const_cast-free copy
    // of the callback after popping the ordering fields.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++processed_;
    if (ev.cb) ev.cb();
  }
  return now_;
}

Resource::Resource(Simulator& sim, std::string name)
    : sim_(sim), name_(std::move(name)) {}

double Resource::submit(double duration, Simulator::Callback done) {
  if (duration < 0) throw std::invalid_argument("Resource: negative duration");
  const double start = std::max(sim_.now(), free_at_);
  const double end = start + duration;
  free_at_ = end;
  busy_ += duration;
  if (done) sim_.schedule_at(end, std::move(done));
  return end;
}

}  // namespace dsinfer::sim
