#include "sim/des.h"

#include <atomic>
#include <stdexcept>
#include <utility>

#include "obs/trace.h"

namespace dsinfer::sim {

namespace {
// Simulated resources each get a stable track id in the kSimPid domain,
// distinct across every Simulator in the process.
std::int64_t next_sim_tid() {
  static std::atomic<std::int64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

Simulator::EventId Simulator::schedule_at(double t, Callback cb) {
  if (t < now_) throw std::invalid_argument("schedule_at: time in the past");
  const EventId id = next_seq_++;
  queue_.push(Event{t, id, std::move(cb)});
  return id;
}

void Simulator::cancel(EventId id) {
  // Only ids that could still be pending are worth remembering; fired events
  // have seq < every queued seq only in FIFO traces, so just bound by the
  // issued range and let pop-time lookup do the rest.
  if (id < next_seq_) cancelled_.insert(id);
}

double Simulator::run() {
  while (!queue_.empty()) {
    // priority_queue::top returns const&; move out via const_cast-free copy
    // of the callback after popping the ordering fields.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (auto it = cancelled_.find(ev.seq); it != cancelled_.end()) {
      cancelled_.erase(it);
      ++cancelled_count_;
      continue;  // dead event: clock does not advance, callback never runs
    }
    now_ = ev.time;
    ++processed_;
    if (ev.cb) ev.cb();
  }
  return now_;
}

Resource::Resource(Simulator& sim, std::string name)
    : sim_(sim), name_(std::move(name)), trace_tid_(next_sim_tid()) {}

double Resource::submit(double duration, Simulator::Callback done,
                        const std::string& label) {
  if (duration < 0) throw std::invalid_argument("Resource: negative duration");
  const double start = std::max(sim_.now(), free_at_);
  const double end = start + duration;
  free_at_ = end;
  busy_ += duration;
  if (obs::trace_enabled()) {
    auto& rec = obs::TraceRecorder::instance();
    if (!track_named_) {
      track_named_ = true;
      rec.set_track_name(obs::kSimPid, trace_tid_, name_);
    }
    rec.complete_at(obs::kSimPid, trace_tid_, start * 1e6, duration * 1e6,
                    "sim", label.empty() ? name_ : label);
  }
  if (done) sim_.schedule_at(end, std::move(done));
  return end;
}

}  // namespace dsinfer::sim
