// Roofline kernel timing model.
//
// Each GPU kernel is timed as
//     max(bytes / (HBM_bw * bw_eff), flops / (peak * compute_eff)) + launch
// where the efficiency factors depend on which software stack issued the
// kernel. The per-preset constants are the calibration surface of the whole
// simulator: they encode the paper's Sec. III claims (cuBLAS is not tuned
// for skinny GeMMs; Deep-Fusion removes intermediate traffic and launches;
// CUDA-Graph removes launch overhead) without hard-coding any figure.
#pragma once

#include <cstdint>

#include "hw/topology.h"
#include "model/model_config.h"

namespace dsinfer::perf {

using model::Dtype;

// Software-stack model: which optimizations are active and what kernel
// efficiencies the stack achieves.
struct EngineModelConfig {
  std::string name;
  bool deep_fusion = true;   // fuse elementwise/reduction/transpose chains
  bool sbi_gemm = true;      // custom small-batch-inference GeMM
  bool cuda_graph = true;    // replay kernel launches from a captured graph
  Dtype dtype = Dtype::kFP16;

  // Memory-bandwidth utilization of weight streaming in GeMMs, as a function
  // of activation rows; interpolates from `bw_eff_rows1` at 1 row to
  // `bw_eff_large` past ~64 rows.
  double gemm_bw_eff_rows1 = 0.85;
  double gemm_bw_eff_large = 0.90;
  // Fraction of tensor-core peak achieved once compute-bound.
  double gemm_compute_eff = 0.85;
  // Extra weight-stream traffic multiplier (INT8 pays quant/dequant cost).
  double weight_traffic_factor = 1.0;
  // Achieved bandwidth fraction for elementwise / attention kernels.
  double elementwise_bw_eff = 0.80;

  // Traffic multiplier for non-GeMM micro-ops: how many read+write sweeps of
  // the activation the stack performs per transformer layer.
  double elementwise_passes = 8.0;
  // Kernel launches per transformer layer.
  double launches_per_layer = 10.0;

  static EngineModelConfig deepspeed_fp16();
  static EngineModelConfig deepspeed_int8();
  static EngineModelConfig deepspeed_fp32();
  // FasterTransformer: well-fused elementwise, cuBLAS GeMMs, no CUDA graph,
  // no skinny-GeMM specialization (paper Sec. VII-B.1).
  static EngineModelConfig faster_transformer();
  // Framework baseline: kernel-per-micro-op (paper Fig. 10(a) "PyTorch").
  static EngineModelConfig pytorch();
  // E.T.-style stack: custom GeMM and fused attention, but fewer fused
  // regions than Deep-Fusion and no CUDA-graph capture (Fig. 12).
  static EngineModelConfig et_like();
};

// Effective GeMM weight-streaming bandwidth fraction at `rows` rows.
double gemm_bw_efficiency(const EngineModelConfig& e, std::int64_t rows);

// Peak throughput (FLOP/s or OP/s) the GPU offers for this dtype.
double peak_ops(const hw::GpuSpec& gpu, Dtype dtype);

// Time of one linear layer y[rows,out] = x[rows,in] * W^T.
double gemm_time_s(const EngineModelConfig& e, const hw::GpuSpec& gpu,
                   std::int64_t rows, std::int64_t in, std::int64_t out);

// Per-kernel launch overhead given graph capture state.
double launch_overhead_s(const EngineModelConfig& e, const hw::GpuSpec& gpu);

// Attention over the KV cache: batch sequences, q_len new tokens each,
// kv_len total positions, `hidden_shard` = hidden / TP.
double attention_time_s(const EngineModelConfig& e, const hw::GpuSpec& gpu,
                        std::int64_t batch, std::int64_t q_len,
                        std::int64_t kv_len, std::int64_t hidden_shard);

// All non-GeMM elementwise traffic of one layer over `rows` token rows.
double elementwise_time_s(const EngineModelConfig& e, const hw::GpuSpec& gpu,
                          std::int64_t rows, std::int64_t hidden_shard);

}  // namespace dsinfer::perf
