// Dense-transformer latency/throughput model (paper Sec. III-IV, Fig. 6).
//
// Combines the roofline kernel model with tensor-parallel sharding and the
// alpha-beta collective costs to predict end-to-end generation latency of a
// dense GPT model on a given cluster.
#pragma once

#include <cstdint>

#include "hw/topology.h"
#include "model/model_config.h"
#include "perf/kernel_model.h"

namespace dsinfer::perf {

struct LayerTiming {
  double gemm_s = 0;
  double attention_s = 0;
  double elementwise_s = 0;
  double launch_s = 0;
  double comm_s = 0;
  double total() const {
    return gemm_s + attention_s + elementwise_s + launch_s + comm_s;
  }
};

// Time for one transformer layer on one GPU under `tp`-way tensor slicing.
// `batch` sequences each contribute `q_len` new tokens attending to `kv_len`
// positions. TP all-reduces run over NVLink within a node and hierarchically
// across nodes when tp exceeds the node size.
LayerTiming dense_layer_time(const model::DenseModelConfig& m,
                             const EngineModelConfig& e,
                             const hw::ClusterSpec& cluster, std::int64_t tp,
                             std::int64_t batch, std::int64_t q_len,
                             std::int64_t kv_len);

struct GenerationTiming {
  double prompt_s = 0;      // time to first token (prompt processing)
  double per_token_s = 0;   // mean latency of each subsequent token
  double total_s = 0;       // end-to-end for the whole request batch
  double tokens_per_s = 0;  // generated-token throughput of the batch
  double tflops_per_gpu = 0;
};

// End-to-end: process a `prompt_len`-token prompt for `batch` sequences and
// generate `gen_tokens` tokens, tensor-parallel over `tp` GPUs.
GenerationTiming dense_generation_time(const model::DenseModelConfig& m,
                                       const EngineModelConfig& e,
                                       const hw::ClusterSpec& cluster,
                                       std::int64_t tp, std::int64_t batch,
                                       std::int64_t prompt_len,
                                       std::int64_t gen_tokens);

}  // namespace dsinfer::perf
