#include "perf/dense_model.h"

#include <algorithm>
#include <stdexcept>

#include "comm/cost_model.h"

namespace dsinfer::perf {

LayerTiming dense_layer_time(const model::DenseModelConfig& m,
                             const EngineModelConfig& e,
                             const hw::ClusterSpec& cluster, std::int64_t tp,
                             std::int64_t batch, std::int64_t q_len,
                             std::int64_t kv_len) {
  if (tp < 1 || m.hidden % tp != 0) {
    throw std::invalid_argument("dense_layer_time: tp must divide hidden");
  }
  const hw::GpuSpec& gpu = cluster.node.gpu;
  const std::int64_t rows = batch * q_len;
  const std::int64_t h = m.hidden;
  const std::int64_t f = m.ffn();
  const std::int64_t hs = h / tp;  // sharded hidden
  const std::int64_t fs = f / tp;

  LayerTiming t;
  // Megatron-style sharding: QKV/FC1 column-parallel, OUT/FC2 row-parallel.
  t.gemm_s += gemm_time_s(e, gpu, rows, h, 3 * hs);  // QKV
  t.gemm_s += gemm_time_s(e, gpu, rows, hs, h);      // attention out
  t.gemm_s += gemm_time_s(e, gpu, rows, h, fs);      // FC1
  t.gemm_s += gemm_time_s(e, gpu, rows, fs, h);      // FC2

  t.attention_s = attention_time_s(e, gpu, batch, q_len, kv_len, hs);
  t.elementwise_s = elementwise_time_s(e, gpu, rows, h);
  t.launch_s = e.launches_per_layer * launch_overhead_s(e, gpu);

  if (tp > 1) {
    const double act_b = static_cast<double>(rows) * static_cast<double>(h) *
                         (e.dtype == Dtype::kFP32 ? 4.0 : 2.0);
    const std::int64_t per_node = cluster.node.gpus_per_node;
    double ar;
    if (tp <= per_node) {
      ar = comm::allreduce_time_s(act_b, tp, cluster.node.nvlink);
    } else {
      // A single NCCL ring spanning nodes moves every hop's worth of data
      // through the inter-node links, so the whole ring runs at InfiniBand
      // speed — the reason tensor slicing is kept inside a node (Sec. II).
      ar = comm::allreduce_time_s(act_b, tp, cluster.ib_per_gpu);
    }
    t.comm_s = 2.0 * ar;  // one per Megatron block (attention, FFN)
  }
  return t;
}

GenerationTiming dense_generation_time(const model::DenseModelConfig& m,
                                       const EngineModelConfig& e,
                                       const hw::ClusterSpec& cluster,
                                       std::int64_t tp, std::int64_t batch,
                                       std::int64_t prompt_len,
                                       std::int64_t gen_tokens) {
  if (gen_tokens < 1) {
    throw std::invalid_argument("dense_generation_time: gen_tokens >= 1");
  }
  GenerationTiming g;
  const double layers = static_cast<double>(m.layers);

  // Prompt phase: all prompt tokens at once; produces the first token.
  const LayerTiming prompt =
      dense_layer_time(m, e, cluster, tp, batch, prompt_len, prompt_len);
  g.prompt_s = layers * prompt.total();

  // Token phase: one token per sequence per step, KV cache grows.
  double token_total = 0.0;
  for (std::int64_t i = 1; i < gen_tokens; ++i) {
    const LayerTiming step =
        dense_layer_time(m, e, cluster, tp, batch, 1, prompt_len + i);
    token_total += layers * step.total();
  }
  g.per_token_s = gen_tokens > 1
                      ? token_total / static_cast<double>(gen_tokens - 1)
                      : 0.0;
  g.total_s = g.prompt_s + token_total;
  g.tokens_per_s =
      static_cast<double>(batch * gen_tokens) / std::max(g.total_s, 1e-12);
  const double total_flops =
      static_cast<double>(batch) *
      (m.model_flops(prompt_len, prompt_len) +
       static_cast<double>(gen_tokens - 1) *
           m.model_flops(1, prompt_len + gen_tokens / 2));
  g.tflops_per_gpu =
      total_flops / std::max(g.total_s, 1e-12) / static_cast<double>(tp) / 1e12;
  return g;
}

}  // namespace dsinfer::perf
