#include "perf/kernel_model.h"

#include <algorithm>
#include <cmath>

namespace dsinfer::perf {

namespace {
constexpr double kGb = 1e9;
constexpr double kT = 1e12;

// Activation element size: FP16 activations for FP16/INT8 engines (INT8
// engines keep FP16 activations, quantizing on the fly), FP32 otherwise.
double act_bytes(Dtype dtype) { return dtype == Dtype::kFP32 ? 4.0 : 2.0; }
}  // namespace

EngineModelConfig EngineModelConfig::deepspeed_fp16() {
  EngineModelConfig e;
  e.name = "DeepSpeed-FP16";
  e.deep_fusion = true;
  e.sbi_gemm = true;
  e.cuda_graph = true;
  e.dtype = Dtype::kFP16;
  e.gemm_bw_eff_rows1 = 0.82;  // SBI-GeMM: near-peak streaming at batch 1
  e.gemm_bw_eff_large = 0.90;
  e.gemm_compute_eff = 0.80;
  e.elementwise_bw_eff = 0.85;
  e.elementwise_passes = 6.0;   // four fused regions + QKV split + cache append
  e.launches_per_layer = 9.0;
  return e;
}

EngineModelConfig EngineModelConfig::deepspeed_int8() {
  EngineModelConfig e = deepspeed_fp16();
  e.name = "DeepSpeed-INT8";
  e.dtype = Dtype::kINT8;
  e.gemm_compute_eff = 0.75;  // CUTLASS INT8 + fused (de)quant epilogues
  // Dynamic activation quantization, scale tables and the dequant epilogue
  // cost extra traffic on top of the halved weight bytes, so INT8 lands at
  // ~1.25x over FP16 rather than a clean 2x (matching Fig. 6's gap).
  e.weight_traffic_factor = 1.6;
  return e;
}

EngineModelConfig EngineModelConfig::deepspeed_fp32() {
  EngineModelConfig e = deepspeed_fp16();
  e.name = "DeepSpeed-FP32";
  e.dtype = Dtype::kFP32;
  return e;
}

EngineModelConfig EngineModelConfig::faster_transformer() {
  EngineModelConfig e;
  e.name = "FT-FP16";
  e.deep_fusion = false;  // fuses elementwise chains, not reductions/GeMMs
  e.sbi_gemm = false;
  e.cuda_graph = false;
  e.dtype = Dtype::kFP16;
  e.gemm_bw_eff_rows1 = 0.72;  // cuBLAS on skinny GeMMs (paper Sec. III-A)
  e.gemm_bw_eff_large = 0.82;
  e.gemm_compute_eff = 0.85;   // cuBLAS is excellent once compute-bound
  e.elementwise_bw_eff = 0.75;
  e.elementwise_passes = 11.0;
  e.launches_per_layer = 10.0;
  return e;
}

EngineModelConfig EngineModelConfig::pytorch() {
  EngineModelConfig e;
  e.name = "PyTorch";
  e.deep_fusion = false;
  e.sbi_gemm = false;
  e.cuda_graph = false;
  e.dtype = Dtype::kFP16;
  e.gemm_bw_eff_rows1 = 0.50;
  e.gemm_bw_eff_large = 0.80;
  e.gemm_compute_eff = 0.80;
  e.elementwise_bw_eff = 0.65;
  e.elementwise_passes = 24.0;  // kernel per micro-op, materialized masks
  e.launches_per_layer = 32.0;
  return e;
}

EngineModelConfig EngineModelConfig::et_like() {
  EngineModelConfig e = deepspeed_fp16();
  e.name = "E.T.";
  e.deep_fusion = false;  // attention is fused, the rest is not
  e.cuda_graph = false;
  e.elementwise_passes = 8.0;   // fused attention removes the S x S sweeps
  e.launches_per_layer = 6.0;   // E.T. collapses attention into one kernel
  return e;
}

double gemm_bw_efficiency(const EngineModelConfig& e, std::int64_t rows) {
  // Efficiency climbs with rows because more work hides latency; SBI-GeMM
  // starts high already. Saturates at rows >= 64.
  const double t = std::min(1.0, std::log2(static_cast<double>(std::max<std::int64_t>(rows, 1)) + 1.0) / 6.0);
  return e.gemm_bw_eff_rows1 + (e.gemm_bw_eff_large - e.gemm_bw_eff_rows1) * t;
}

double peak_ops(const hw::GpuSpec& gpu, Dtype dtype) {
  switch (dtype) {
    case Dtype::kFP32:
      return gpu.fp32_tflops * kT;
    case Dtype::kFP16:
      return gpu.fp16_tflops * kT;
    case Dtype::kINT8:
      // Fall back to FP16 peak on GPUs without INT8 tensor cores.
      return (gpu.int8_tops > 0 ? gpu.int8_tops : gpu.fp16_tflops) * kT;
  }
  return gpu.fp16_tflops * kT;
}

double launch_overhead_s(const EngineModelConfig& e, const hw::GpuSpec& gpu) {
  // CUDA-Graph replay still costs a fraction of a microsecond per node.
  return (e.cuda_graph ? 0.2 : gpu.kernel_launch_us) * 1e-6;
}

double gemm_time_s(const EngineModelConfig& e, const hw::GpuSpec& gpu,
                   std::int64_t rows, std::int64_t in, std::int64_t out) {
  const double wbytes = static_cast<double>(in) * static_cast<double>(out) *
                        static_cast<double>(model::dtype_bytes(e.dtype)) *
                        e.weight_traffic_factor;
  const double abytes = static_cast<double>(rows) *
                        static_cast<double>(in + out) * act_bytes(e.dtype);
  const double flops = 2.0 * static_cast<double>(rows) *
                       static_cast<double>(in) * static_cast<double>(out);
  const double bw = gpu.mem_bw_gbps * kGb * gemm_bw_efficiency(e, rows);
  const double mem_t = (wbytes + abytes) / bw;
  const double cmp_t = flops / (peak_ops(gpu, e.dtype) * e.gemm_compute_eff);
  return std::max(mem_t, cmp_t);
}

double attention_time_s(const EngineModelConfig& e, const hw::GpuSpec& gpu,
                        std::int64_t batch, std::int64_t q_len,
                        std::int64_t kv_len, std::int64_t hidden_shard) {
  const double ab = act_bytes(e.dtype);
  // KV history read once per sequence (K and V), plus Q/out traffic.
  double bytes = 2.0 * static_cast<double>(batch) *
                     static_cast<double>(kv_len) *
                     static_cast<double>(hidden_shard) * ab +
                 2.0 * static_cast<double>(batch) *
                     static_cast<double>(q_len) *
                     static_cast<double>(hidden_shard) * ab;
  if (!e.deep_fusion) {
    // Unfused attention materializes + re-reads the S x S probability tensor
    // (score write, softmax read/write, context read: ~4 sweeps).
    bytes += 4.0 * static_cast<double>(batch) * static_cast<double>(q_len) *
             static_cast<double>(kv_len) * ab *
             2.0;  // fp16 scores stored per head pair ~ 2 bytes * heads cancels into hidden_shard scaling
  }
  const double flops = 4.0 * static_cast<double>(batch) *
                       static_cast<double>(q_len) *
                       static_cast<double>(kv_len) *
                       static_cast<double>(hidden_shard);
  const double mem_t = bytes / (gpu.mem_bw_gbps * kGb * e.elementwise_bw_eff);
  // Attention GeMMs are batched/small: use FP16 peak with modest efficiency.
  const double cmp_t = flops / (peak_ops(gpu, Dtype::kFP16) * 0.5);
  return std::max(mem_t, cmp_t);
}

double elementwise_time_s(const EngineModelConfig& e, const hw::GpuSpec& gpu,
                          std::int64_t rows, std::int64_t hidden_shard) {
  // One "pass" = read + write of the [rows, hidden] activation block.
  const double bytes = e.elementwise_passes * 2.0 * static_cast<double>(rows) *
                       static_cast<double>(hidden_shard) * act_bytes(e.dtype);
  return bytes / (gpu.mem_bw_gbps * kGb * e.elementwise_bw_eff);
}

}  // namespace dsinfer::perf
