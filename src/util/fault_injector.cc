#include "util/fault_injector.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dsinfer::util {

namespace {

// FNV-1a over the site name; mixed into the injector seed so each site gets
// an independent, reproducible stream.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

// Every injected fault/spike shows up on the timeline as a "chaos" instant,
// so trace viewers can line failures up against the spans they perturbed.
void trace_chaos(obs::Counter& counter, const char* what,
                 const std::string& site) {
  counter.add(1);
  if (obs::trace_enabled()) {
    obs::TraceRecorder::instance().instant(
        "chaos", std::string(what) + " @ " + site);
  }
}

}  // namespace

FaultInjector::Site& FaultInjector::site_for(const std::string& site) {
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    it = sites_.emplace(site, Site{}).first;
    it->second.rng = Rng(seed_ ^ fnv1a(site));
  }
  return it->second;
}

void FaultInjector::configure(const std::string& site, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  Site& s = site_for(site);
  s.spec = spec;
  s.rng = Rng(seed_ ^ fnv1a(site));
  s.stats = FaultSiteStats{};
}

bool FaultInjector::should_fail(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  Site& s = site_for(site);
  if (!s.spec.can_fail()) return false;
  const std::int64_t draw = s.stats.fail_draws++;
  bool fail = false;
  if (draw < s.spec.fail_first_n) {
    fail = true;  // deterministic fail-N-times-then-succeed schedule
  } else if (s.spec.fail_probability > 0.0) {
    fail = s.rng.uniform() < s.spec.fail_probability;
  }
  if (fail) {
    ++s.stats.faults;
    static obs::Counter& c =
        obs::MetricsRegistry::instance().counter("chaos.faults");
    trace_chaos(c, "fault injected", site);
  }
  return fail;
}

double FaultInjector::delay_s(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  Site& s = site_for(site);
  if (!s.spec.can_delay()) return 0.0;
  ++s.stats.delay_draws;
  double d = s.spec.fixed_delay_s;
  if (s.spec.delay_probability > 0.0 && s.spec.delay_mean_s > 0.0 &&
      s.rng.uniform() < s.spec.delay_probability) {
    ++s.stats.spikes;
    static obs::Counter& c =
        obs::MetricsRegistry::instance().counter("chaos.delay_spikes");
    trace_chaos(c, "delay spike", site);
    double spike = s.spec.delay_mean_s;
    if (s.spec.delay_jitter_s > 0.0) {
      spike += s.rng.uniform(-s.spec.delay_jitter_s, s.spec.delay_jitter_s);
    }
    d += std::max(0.0, spike);
  }
  s.stats.delay_s += d;
  return d;
}

FaultSiteStats FaultInjector::stats(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? FaultSiteStats{} : it->second.stats;
}

}  // namespace dsinfer::util
