// Aligned, owning storage for kernel data.
//
// All compute kernels in dsinfer operate on raw float/int8 spans backed by
// 64-byte-aligned allocations so that vectorized loops never straddle cache
// lines and so the "full cache-line" arguments of SBI-GeMM (Sec. III.C of the
// paper) can be reproduced faithfully on the CPU.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <new>
#include <span>
#include <utility>

namespace dsinfer {

inline constexpr std::size_t kCacheLineBytes = 64;

// RAII wrapper over an aligned heap allocation of trivially-copyable T.
template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t count) { reset(count); }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  ~AlignedBuffer() { release(); }

  // Re-allocates to hold `count` elements; contents are uninitialized.
  void reset(std::size_t count) {
    release();
    if (count == 0) return;
    const std::size_t bytes =
        ((count * sizeof(T) + kCacheLineBytes - 1) / kCacheLineBytes) *
        kCacheLineBytes;
    data_ = static_cast<T*>(std::aligned_alloc(kCacheLineBytes, bytes));
    if (data_ == nullptr) throw std::bad_alloc();
    size_ = count;
  }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

  std::span<T> span() noexcept { return {data_, size_}; }
  std::span<const T> span() const noexcept { return {data_, size_}; }

 private:
  void release() noexcept {
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace dsinfer
