// Deterministic RNG helpers. Every stochastic choice in the library
// (weight init, token sampling, workload generation) flows through a seeded
// Rng so that tests and benchmark tables are exactly reproducible.
#pragma once

#include <cstdint>
#include <random>
#include <span>

namespace dsinfer {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : gen_(seed) {}

  float uniform(float lo = 0.0f, float hi = 1.0f) {
    return std::uniform_real_distribution<float>(lo, hi)(gen_);
  }

  float normal(float mean = 0.0f, float stddev = 1.0f) {
    return std::normal_distribution<float>(mean, stddev)(gen_);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t integer(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(gen_);
  }

  void fill_normal(std::span<float> out, float mean = 0.0f,
                   float stddev = 1.0f) {
    std::normal_distribution<float> dist(mean, stddev);
    for (auto& v : out) v = dist(gen_);
  }

  void fill_uniform(std::span<float> out, float lo = -1.0f, float hi = 1.0f) {
    std::uniform_real_distribution<float> dist(lo, hi);
    for (auto& v : out) v = dist(gen_);
  }

  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace dsinfer
