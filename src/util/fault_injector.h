// Deterministic fault injection for chaos testing (ISSUE 1: resilience).
//
// Every unreliable boundary in the system (host->device weight reads, rank
// synchronization, engine invocations) consults a centrally configured
// FaultInjector through a named *site*. Each site owns an independent RNG
// stream seeded from (injector seed, site name), so the fault schedule seen
// at one site is a pure function of the seed and that site's draw sequence —
// never of interleaving with other sites or threads. Identical seeds yield
// identical chaos runs; tests assert this.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "util/rng.h"

namespace dsinfer::util {

// What can go wrong at a site. All fields combine: a draw first serves the
// deterministic fail-N-times-then-succeed schedule, then the probabilistic
// failure, and independently may incur a latency spike.
struct FaultSpec {
  double fail_probability = 0.0;   // chance a draw fails (transient fault)
  std::int64_t fail_first_n = 0;   // the first N draws fail deterministically
  double delay_probability = 0.0;  // chance a draw incurs a latency spike
  double delay_mean_s = 0.0;       // spike magnitude (virtual seconds)
  double delay_jitter_s = 0.0;     // uniform +/- jitter on the spike
  double fixed_delay_s = 0.0;      // unconditional per-draw delay (straggler)

  bool can_fail() const { return fail_probability > 0.0 || fail_first_n > 0; }
  bool can_delay() const {
    return fixed_delay_s > 0.0 ||
           (delay_probability > 0.0 && delay_mean_s > 0.0);
  }
};

// Per-site accounting so tests and the transfer ledger can price chaos.
struct FaultSiteStats {
  std::int64_t fail_draws = 0;   // should_fail() calls
  std::int64_t faults = 0;       // ... that returned true
  std::int64_t delay_draws = 0;  // delay_s() calls
  std::int64_t spikes = 0;       // ... that spiked
  double delay_s = 0.0;          // total injected delay (virtual seconds)
};

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 0xFA17) : seed_(seed) {}

  // Installs (or replaces) the fault model for `site`. Resets the site's
  // RNG stream and counters so reconfiguration restarts its schedule.
  void configure(const std::string& site, FaultSpec spec);

  // Draws from the site's failure schedule. Sites with no configured
  // failure mode return false without consuming randomness, so unrelated
  // sites never perturb each other's streams.
  bool should_fail(const std::string& site);

  // Draws the injected delay (virtual seconds, >= 0) for one operation.
  double delay_s(const std::string& site);

  FaultSiteStats stats(const std::string& site) const;
  std::uint64_t seed() const { return seed_; }

 private:
  struct Site {
    FaultSpec spec;
    Rng rng{0};
    FaultSiteStats stats;
  };

  Site& site_for(const std::string& site);

  std::uint64_t seed_;
  mutable std::mutex mu_;
  std::map<std::string, Site> sites_;
};

}  // namespace dsinfer::util
