// A minimal work-stealing-free thread pool with a blocking parallel_for.
//
// The functional engine uses one long-lived pool for intra-op parallelism
// (analogous to CUDA thread blocks within a kernel) while `VirtualDevice`
// threads in src/parallel provide inter-device parallelism (analogous to
// multiple GPUs). Keeping these separate mirrors the paper's layering.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dsinfer {

class ThreadPool {
 public:
  // `threads == 0` selects hardware concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueue a task; fire and forget. Use parallel_for for joined work.
  void submit(std::function<void()> task);

  // Splits [begin, end) into roughly equal contiguous chunks, runs
  // `body(chunk_begin, chunk_end)` across the pool and the calling thread,
  // and returns when all chunks finished. Safe to call with begin==end.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& body);

  // Grain-aware variant: never creates a chunk smaller than `grain` items,
  // and runs the whole range inline on the calling thread when it fits in
  // one grain. Kernels size the grain so tiny ranges (decode with m=1, few
  // panels) skip the pool's wakeup/join latency entirely.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

  // Process-wide pool sized to the machine; used by kernels by default.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace dsinfer
