#include "util/thread_pool.h"

#include <algorithm>

namespace dsinfer {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body) {
  parallel_for(begin, end, 1, body);
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (grain == 0) grain = 1;
  // Serial fallback: a range that fits in one grain is cheaper to run inline
  // than to pay a worker wakeup + condvar join per layer.
  if (n <= grain) {
    body(begin, end);
    return;
  }
  const std::size_t chunks =
      std::min(workers_.size() + 1, (n + grain - 1) / grain);
  if (chunks <= 1) {
    body(begin, end);
    return;
  }
  // The count, and the notify, both happen under done_mu: the waiter can
  // only observe remaining == 0 after the last worker has released the
  // lock, so these stack locals are never destroyed while a worker still
  // holds (or is about to take) them. Decrementing outside the lock and
  // locking only to notify leaves a window where a spurious wakeup lets
  // parallel_for return and unwind while the last worker is between its
  // decrement and the lock — a use-after-scope that hangs on the dead
  // mutex's futex.
  std::size_t remaining = chunks - 1;
  std::mutex done_mu;
  std::condition_variable done_cv;
  auto finish_one = [&] {
    std::lock_guard<std::mutex> lock(done_mu);
    if (--remaining == 0) done_cv.notify_one();
  };
  const std::size_t step = (n + chunks - 1) / chunks;
  // Chunks 1..chunks-1 run on the pool; chunk 0 runs inline below.
  for (std::size_t c = 1; c < chunks; ++c) {
    const std::size_t lo = begin + c * step;
    const std::size_t hi = std::min(end, lo + step);
    if (lo >= hi) {
      finish_one();
      continue;
    }
    submit([&, lo, hi] {
      body(lo, hi);
      finish_one();
    });
  }
  body(begin, std::min(end, begin + step));
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return remaining == 0; });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace dsinfer
