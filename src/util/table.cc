#include "util/table.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace dsinfer {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table needs >=1 column");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c], '-') << "  ";
  }
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::write_csv(std::ostream& os) const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << quote(cells[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

bool Table::maybe_write_csv_file(const std::string& name) const {
  const char* dir = std::getenv("DSINFER_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return false;
  std::ofstream os(std::string(dir) + "/" + name + ".csv",
                   std::ios::trunc);
  if (!os) return false;
  write_csv(os);
  return os.good();
}

std::string Table::num(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

}  // namespace dsinfer
