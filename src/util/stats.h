// Small statistics + wall-clock timing helpers used by tests and benches.
#pragma once

#include <chrono>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace dsinfer {

struct Summary {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  std::size_t count = 0;
};

// Computes a full summary of `samples`; does not modify the input.
// Empty input yields a fully zeroed Summary (count == 0) — callers never
// need to special-case it.
Summary summarize(std::span<const double> samples);

// Linear-interpolated percentile of a *sorted* sample vector, q in [0, 1]
// (clamped; NaN treated as 0). Empty input returns 0.0.
double percentile_sorted(std::span<const double> sorted, double q);

// Streaming mean/variance accumulator (Welford's algorithm): numerically
// stable, O(1) per sample, no sample storage. Used by the obs metrics
// histograms and anywhere a running summary is needed without keeping the
// samples. Not thread-safe; guard externally for concurrent use.
class Welford {
 public:
  void add(double x) {
    n_ += 1.0;
    const double d = x - mean_;
    mean_ += d / n_;
    m2_ += d * (x - mean_);
  }

  std::size_t count() const { return static_cast<std::size_t>(n_); }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  // Sample variance (n-1 denominator), matching summarize()'s stddev.
  double variance() const { return n_ > 1 ? m2_ / (n_ - 1.0) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }

  // Combines two accumulators (Chan et al. parallel update).
  void merge(const Welford& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double total = n_ + o.n_;
    const double d = o.mean_ - mean_;
    m2_ += o.m2_ + d * d * n_ * o.n_ / total;
    mean_ += d * o.n_ / total;
    n_ = total;
  }

 private:
  double n_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

// Monotonic stopwatch; `elapsed_s()` can be read repeatedly.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}
  void restart() { start_ = clock::now(); }
  double elapsed_s() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double elapsed_ms() const { return elapsed_s() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace dsinfer
