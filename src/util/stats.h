// Small statistics + wall-clock timing helpers used by tests and benches.
#pragma once

#include <chrono>
#include <cstddef>
#include <span>
#include <vector>

namespace dsinfer {

struct Summary {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  std::size_t count = 0;
};

// Computes a full summary of `samples`; does not modify the input.
Summary summarize(std::span<const double> samples);

// Linear-interpolated percentile of a *sorted* sample vector, q in [0, 1].
double percentile_sorted(std::span<const double> sorted, double q);

// Monotonic stopwatch; `elapsed_s()` can be read repeatedly.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}
  void restart() { start_ = clock::now(); }
  double elapsed_s() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double elapsed_ms() const { return elapsed_s() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace dsinfer
