#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace dsinfer {

double percentile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  if (std::isnan(q)) q = 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  double sum = 0.0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(sorted.size());
  double var = 0.0;
  for (double v : sorted) var += (v - s.mean) * (v - s.mean);
  s.stddev = sorted.size() > 1
                 ? std::sqrt(var / static_cast<double>(sorted.size() - 1))
                 : 0.0;
  s.min = sorted.front();
  s.max = sorted.back();
  s.p50 = percentile_sorted(sorted, 0.5);
  s.p90 = percentile_sorted(sorted, 0.9);
  s.p95 = percentile_sorted(sorted, 0.95);
  s.p99 = percentile_sorted(sorted, 0.99);
  return s;
}

}  // namespace dsinfer
