// Bump-pointer workspace arena with high-water tracking — the CPU analog of
// a GPU inference framework's workspace pool: one allocation up front, O(1)
// sub-allocations per kernel, bulk reset between forward passes, and a
// high-water mark that reports the true workspace requirement (what a
// deployment must reserve next to weights and KV cache).
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>

#include "util/aligned_buffer.h"

namespace dsinfer {

class Arena {
 public:
  explicit Arena(std::size_t capacity_bytes)
      : buf_(capacity_bytes), capacity_(capacity_bytes) {}

  // Allocates `count` Ts aligned to the cache line; throws std::bad_alloc
  // beyond capacity. Pointers remain valid until reset().
  template <typename T>
  std::span<T> allocate(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena only holds trivially destructible types");
    const std::size_t bytes =
        ((count * sizeof(T) + kCacheLineBytes - 1) / kCacheLineBytes) *
        kCacheLineBytes;
    if (offset_ + bytes > capacity_) throw std::bad_alloc();
    T* p = reinterpret_cast<T*>(buf_.data() + offset_);
    offset_ += bytes;
    high_water_ = offset_ > high_water_ ? offset_ : high_water_;
    return {p, count};
  }

  // Releases everything allocated since construction or the last reset.
  void reset() { offset_ = 0; }

  std::size_t used() const { return offset_; }
  std::size_t capacity() const { return capacity_; }
  // Largest `used()` ever observed — the workspace requirement.
  std::size_t high_water() const { return high_water_; }

 private:
  AlignedBuffer<std::byte> buf_;
  std::size_t capacity_ = 0;
  std::size_t offset_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace dsinfer
