// Fixed-width console table + CSV emission for benchmark harnesses.
// Every bench binary prints the same rows/series the paper's figure reports,
// and can optionally mirror them to a CSV file for plotting.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace dsinfer {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Appends one row; the cell count must match the header count.
  void add_row(std::vector<std::string> cells);

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return headers_.size(); }

  // Pretty-prints with column alignment and a separator under the header.
  void print(std::ostream& os) const;

  // Writes headers + rows as RFC-4180-ish CSV (fields with commas quoted).
  void write_csv(std::ostream& os) const;

  // Convenience numeric cell formatting.
  static std::string num(double v, int precision = 3);

  // If the environment variable DSINFER_CSV_DIR is set, writes this table to
  // <dir>/<name>.csv and returns true; otherwise does nothing. Lets every
  // bench double as a plot-data generator without extra flags.
  bool maybe_write_csv_file(const std::string& name) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dsinfer
