// Binary checkpoint format for GptWeights (+ optional tokenizer state).
//
// Layout: magic "DSIC", u32 version, the model config fields, then each
// tensor as <u64 numel><float data>. Everything is little-endian native (the
// format is a local cache, not an interchange format; loaders verify magic,
// version and sizes and throw on any mismatch).
#pragma once

#include <string>

#include "core/gpt_model.h"
#include "core/tokenizer.h"

namespace dsinfer::core {

inline constexpr std::uint32_t kCheckpointVersion = 1;

// Writes weights (and tokenizer, possibly empty) to `path`. Overwrites.
void save_checkpoint(const std::string& path, const GptWeights& weights,
                     const BpeTokenizer& tokenizer = {});

struct LoadedCheckpoint {
  GptWeights weights;
  BpeTokenizer tokenizer;
};

// Reads a checkpoint written by save_checkpoint. Throws std::runtime_error
// on missing file, bad magic, version or size mismatch.
LoadedCheckpoint load_checkpoint(const std::string& path);

}  // namespace dsinfer::core
