// Full GPT-style model weights: embeddings, N transformer layers, final
// layernorm, and a weight-tied language-model head.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kernels/transformer_layer.h"
#include "model/model_config.h"
#include "util/rng.h"

namespace dsinfer::core {

struct GptWeights {
  model::DenseModelConfig config;
  Tensor tok_embed;  // [vocab, hidden]; also the (tied) LM head
  Tensor pos_embed;  // [max_seq, hidden]
  std::vector<kernels::LayerWeights> layers;
  Tensor ln_f_g, ln_f_b;

  void init_random(Rng& rng, const model::DenseModelConfig& cfg);

  std::size_t param_count() const;

  // Looks up token + position embeddings into x[tokens, hidden].
  // positions[i] is the absolute position of tokens[i] in its sequence.
  void embed(std::span<const std::int32_t> tokens,
             std::span<const std::int32_t> positions, std::span<float> x) const;

  // Final layernorm + tied LM head: logits[rows, vocab] from x[rows, hidden].
  void lm_head(std::span<const float> x, std::span<float> logits,
               std::int64_t rows) const;
};

// Greedy / top-k sampling over one logits row.
struct SamplingOptions {
  enum class Mode { kGreedy, kTopK };
  Mode mode = Mode::kGreedy;
  std::int64_t top_k = 4;
  float temperature = 1.0f;
  // Sequences that emit this token stop early (-1 = never). The engine keeps
  // the batch shape (finished sequences still flow through the layers) but
  // truncates their outputs at the stop token.
  std::int32_t stop_token = -1;
};

std::int32_t sample_token(std::span<const float> logits,
                          const SamplingOptions& opts, Rng& rng);

}  // namespace dsinfer::core
