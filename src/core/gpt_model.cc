#include "core/gpt_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "kernels/elementwise.h"
#include "kernels/gemm.h"

namespace dsinfer::core {

void GptWeights::init_random(Rng& rng, const model::DenseModelConfig& cfg) {
  config = cfg;
  tok_embed.reshape({cfg.vocab, cfg.hidden});
  rng.fill_normal(tok_embed.span(), 0.0f, 0.05f);
  pos_embed.reshape({cfg.max_seq, cfg.hidden});
  rng.fill_normal(pos_embed.span(), 0.0f, 0.02f);
  layers.resize(static_cast<std::size_t>(cfg.layers));
  for (auto& l : layers) l.init_random(rng, cfg.hidden, cfg.heads, cfg.ffn());
  ln_f_g.reshape({cfg.hidden});
  ln_f_g.fill(1.0f);
  ln_f_b.reshape({cfg.hidden});
  ln_f_b.zero();
}

std::size_t GptWeights::param_count() const {
  std::size_t n = static_cast<std::size_t>(tok_embed.numel() +
                                           pos_embed.numel() + 2 * config.hidden);
  for (const auto& l : layers) n += l.param_count();
  return n;
}

void GptWeights::embed(std::span<const std::int32_t> tokens,
                       std::span<const std::int32_t> positions,
                       std::span<float> x) const {
  const std::int64_t H = config.hidden;
  if (tokens.size() != positions.size() ||
      x.size() < tokens.size() * static_cast<std::size_t>(H)) {
    throw std::invalid_argument("embed: span size mismatch");
  }
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::int32_t t = tokens[i];
    const std::int32_t p = positions[i];
    if (t < 0 || t >= config.vocab || p < 0 || p >= config.max_seq) {
      throw std::out_of_range("embed: token or position out of range");
    }
    const float* te = tok_embed.data() + static_cast<std::int64_t>(t) * H;
    const float* pe = pos_embed.data() + static_cast<std::int64_t>(p) * H;
    float* xe = x.data() + static_cast<std::int64_t>(i) * H;
    for (std::int64_t d = 0; d < H; ++d) xe[d] = te[d] + pe[d];
  }
}

void GptWeights::lm_head(std::span<const float> x, std::span<float> logits,
                         std::int64_t rows) const {
  const std::int64_t H = config.hidden;
  std::vector<float> normed(static_cast<std::size_t>(rows * H));
  kernels::layernorm(x, ln_f_g.span(), ln_f_b.span(), normed, rows, H);
  kernels::linear_blocked(normed, tok_embed.span(), {}, logits, rows, H,
                          config.vocab);
}

std::int32_t sample_token(std::span<const float> logits,
                          const SamplingOptions& opts, Rng& rng) {
  if (logits.empty()) throw std::invalid_argument("sample_token: empty logits");
  if (opts.mode == SamplingOptions::Mode::kGreedy) {
    return static_cast<std::int32_t>(
        std::max_element(logits.begin(), logits.end()) - logits.begin());
  }
  // Top-k with temperature.
  const std::int64_t k =
      std::clamp<std::int64_t>(opts.top_k, 1,
                               static_cast<std::int64_t>(logits.size()));
  std::vector<std::int32_t> idx(logits.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<std::int32_t>(i);
  std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                    [&](std::int32_t a, std::int32_t b) {
                      return logits[static_cast<std::size_t>(a)] >
                             logits[static_cast<std::size_t>(b)];
                    });
  const float temp = std::max(opts.temperature, 1e-4f);
  float mx = logits[static_cast<std::size_t>(idx[0])] / temp;
  std::vector<float> probs(static_cast<std::size_t>(k));
  float sum = 0.0f;
  for (std::int64_t i = 0; i < k; ++i) {
    probs[static_cast<std::size_t>(i)] =
        std::exp(logits[static_cast<std::size_t>(idx[static_cast<std::size_t>(i)])] / temp - mx);
    sum += probs[static_cast<std::size_t>(i)];
  }
  float r = rng.uniform(0.0f, sum);
  for (std::int64_t i = 0; i < k; ++i) {
    r -= probs[static_cast<std::size_t>(i)];
    if (r <= 0.0f) return idx[static_cast<std::size_t>(i)];
  }
  return idx[static_cast<std::size_t>(k - 1)];
}

}  // namespace dsinfer::core
