#include "core/continuous_batcher.h"

#include <algorithm>
#include <string>
#include <utility>

#include "comm/collectives.h"
#include "obs/attribution.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/stats.h"

namespace dsinfer::core {

namespace {

// Same virtual-clock trace convention as the window batcher: track 0 is the
// batcher, track id + 1 is request `id`, timestamps in virtual microseconds.
constexpr std::int64_t kBatcherTrack = 0;

std::int64_t request_track(std::int64_t id) { return id + 1; }

double to_us(double virtual_s) { return virtual_s * 1e6; }

}  // namespace

// A decoder lane: the ragged decoder plus per-slot links back to the trace
// request occupying each slot and the retries its invocations absorbed.
struct ContinuousBatcher::Lane {
  Lane(InferenceEngine& engine, std::int64_t slots,
       const SamplingOptions& sampling, std::uint64_t seed, bool is_degraded)
      : decoder(engine, slots, sampling, seed),
        req(static_cast<std::size_t>(slots), 0),
        retries(static_cast<std::size_t>(slots), 0),
        phases(static_cast<std::size_t>(slots)),
        degraded(is_degraded) {}

  RaggedDecoder decoder;
  std::vector<std::size_t> req;
  std::vector<std::int64_t> retries;
  std::vector<obs::PhaseBreakdown> phases;  // attribution ledger per slot
  bool degraded = false;
};

ContinuousBatcher::ContinuousBatcher(
    InferenceEngine& primary, std::function<InferenceEngine&()> degraded,
    const ServerOptions& opts,
    std::function<double(std::int64_t, std::int64_t, bool, std::int64_t)>
        estimate_s,
    std::uint64_t seed)
    : primary_(primary), degraded_factory_(std::move(degraded)), opts_(opts),
      estimate_s_(std::move(estimate_s)), seed_(seed) {}

ContinuousBatcher::~ContinuousBatcher() = default;

void ContinuousBatcher::run(const std::vector<TimedRequest>& requests,
                            const std::vector<std::size_t>& order,
                            std::vector<RequestStats>& stats,
                            ServingCounters& counters) {
  const auto& res = opts_.resilience;
  const auto& vs = opts_.virtual_service;
  // Constant per configuration: the draft lane's cost per fused verify step
  // in decode-iteration units (0 when speculation is off — see ISSUE 10
  // pricing in step_lane below).
  const double draft_cost_factor = RaggedDecoder::spec_draft_cost_factor(
      opts_.engine, primary_.layer_count());
  const bool tracing = obs::trace_enabled();
  const bool metrics = obs::metrics_enabled();
  auto& rec = obs::TraceRecorder::instance();

  primary_lane_ = std::make_unique<Lane>(primary_, opts_.max_batch,
                                         opts_.sampling, seed_, false);
  degraded_lane_.reset();

  double clock = 0;
  std::size_t qi = 0;  // next unadmitted entry in `order`
  std::int64_t steps = 0;
  std::int64_t slots_released = 0;

  auto active_total = [&]() {
    return primary_lane_->decoder.active() +
           (degraded_lane_ ? degraded_lane_->decoder.active() : 0);
  };

  // Attribution (ISSUE 8): every virtual-clock advance is charged, by cause,
  // to every slot live while it elapses — the single shared clock means all
  // co-scheduled sequences experience the same advance, so each slot's
  // ledger sums exactly to its residency and per-request totality holds by
  // construction.
  auto charge_active = [&](double dt, obs::Phase p) {
    if (dt <= 0) return;
    for (Lane* lane : {primary_lane_.get(), degraded_lane_.get()}) {
      if (!lane) continue;
      for (std::int64_t s = 0; s < lane->decoder.capacity(); ++s) {
        if (lane->decoder.arena().in_use(s)) {
          lane->phases[static_cast<std::size_t>(s)].add(p, dt);
        }
      }
    }
  };

  // Measured-mode split of one invocation: the comm/zero/kv hooks report
  // their wall time through obs::attr_charge; concurrent TP ranks can
  // over-count past the invocation's wall clock, so sub-phases are scaled
  // down to fit and the remainder is compute. Parts sum to `dt` exactly.
  auto charge_split = [&](double dt, const obs::PhaseBreakdown& sub,
                          obs::Phase compute) {
    constexpr obs::Phase kSub[] = {obs::Phase::kTpAllreduce,
                                   obs::Phase::kZeroFetch,
                                   obs::Phase::kKvSpill};
    double sub_total = 0;
    for (obs::Phase p : kSub) sub_total += sub.get(p);
    const double scale = sub_total > dt ? dt / sub_total : 1.0;
    double charged = 0;
    for (obs::Phase p : kSub) {
      const double part = sub.get(p) * scale;
      charge_active(part, p);
      charged += part;
    }
    charge_active(dt - charged, compute);
  };

  // Chaos-aware engine invocation: each attempt draws the injector and
  // catches typed streaming faults; failures cost exponential virtual
  // backoff on the clock. Returns false when the retry budget is exhausted.
  // On success `measured_s` holds the attempt's wall-clock and `sub` the
  // comm/zero/kv sub-phase wall time that attempt reported (re-armed per
  // attempt, so a failed attempt's charges never leak into the winner's).
  auto with_retry = [&](auto&& invoke, std::int64_t& tries, double& measured_s,
                        obs::PhaseBreakdown& sub) {
    tries = 0;
    measured_s = 0;
    for (;;) {
      bool fault = res.injector && res.injector->should_fail(res.engine_site);
      if (!fault) {
        try {
          obs::SubPhaseScope sub_scope;
          Stopwatch sw;
          invoke();
          measured_s = sw.elapsed_s();
          sub = sub_scope.take();
          return true;
        } catch (const zero::StreamFault&) {
          fault = true;
        } catch (const comm::CommFault&) {
          // A rank fault on the TP ragged path (ISSUE 5). The decoder has
          // already rewound every arena shard, and each fused step runs on a
          // fresh DeviceGroup, so the retry starts from a clean
          // communicator.
          fault = true;
        }
      }
      ++counters.engine_faults;
      if (tracing) {
        rec.instant_at(obs::kServerPid, kBatcherTrack, to_us(clock), "server",
                       "engine fault");
      }
      if (tries >= res.max_retries) return false;
      const double backoff =
          res.retry_backoff_s * static_cast<double>(1LL << tries);
      clock += backoff;
      charge_active(backoff, obs::Phase::kRetryBackoff);
      ++tries;
      ++counters.retries;
      if (tracing) {
        rec.instant_at(obs::kServerPid, kBatcherTrack, to_us(clock), "server",
                       "retry " + std::to_string(tries));
      }
    }
  };

  // Retires `slot` and writes its request's terminal stats at time `now`.
  auto finalize = [&](Lane& lane, std::int64_t slot, bool failed, double now) {
    const std::size_t idx = lane.req[static_cast<std::size_t>(slot)];
    const auto& rq = requests[idx];
    auto& st = stats[idx];
    st.finish_s = now;
    st.retries = lane.retries[static_cast<std::size_t>(slot)];
    // [start_s, finish_s] from the slot's ledger; queue wait was attributed
    // at admission. Together they sum to latency_s() (ISSUE 8 totality).
    st.attr.merge(lane.phases[static_cast<std::size_t>(slot)]);
    if (failed) {
      st.outcome = RequestStats::Outcome::kFailed;
      st.tokens = rq.prompt;  // nothing usable was generated
      ++counters.failures;
    } else {
      // Exact per-sequence accounting: the decoder's token list is the
      // prompt plus what was actually generated — truncated at the stop
      // token, never padded (ISSUE 4 satellite).
      st.tokens = lane.decoder.tokens(slot);
      st.stopped = lane.decoder.stopped(slot);
      st.degraded = lane.degraded;
      ++counters.served;
      if (lane.degraded) ++counters.degradations;
      if (now > rq.deadline_s) {
        st.outcome = RequestStats::Outcome::kTimedOut;
        ++counters.timeouts;
      } else {
        st.outcome = lane.degraded ? RequestStats::Outcome::kDegraded
                                   : RequestStats::Outcome::kOk;
      }
    }
    if (tracing) {
      const std::int64_t track = request_track(rq.id);
      if (st.start_s > rq.arrival_s) {
        rec.complete_at(obs::kServerPid, track, to_us(rq.arrival_s),
                        to_us(st.start_s - rq.arrival_s), "server", "queue");
      }
      rec.complete_at(obs::kServerPid, track, to_us(st.start_s),
                      to_us(now - st.start_s), "server", "service",
                      "{\"degraded\":" + std::string(lane.degraded ? "true"
                                                                   : "false") +
                          ",\"retries\":" + std::to_string(st.retries) + "}");
      if (failed) {
        rec.instant_at(obs::kServerPid, track, to_us(now), "server", "failed");
      } else if (now > rq.deadline_s) {
        rec.instant_at(obs::kServerPid, track, to_us(now), "server",
                       "deadline miss");
      } else if (lane.degraded) {
        rec.instant_at(obs::kServerPid, track, to_us(now), "server",
                       "degraded");
      }
    }
    if (metrics) {
      auto& reg = obs::MetricsRegistry::instance();
      reg.histogram("server.queue_delay_s").record(st.start_s - rq.arrival_s);
      reg.histogram("server.latency_s").record(now - rq.arrival_s);
    }
    lane.decoder.retire(slot);
    ++slots_released;
  };

  // Admits queued arrivals (strict FIFO) whose arrival time has passed.
  // Stops at the first request whose target lane has no free slot — it keeps
  // its place at the head of the queue until a retirement frees one.
  auto try_admit = [&]() {
    while (qi < order.size()) {
      const std::size_t idx = order[qi];
      const auto& rq = requests[idx];
      if (rq.arrival_s > clock) break;

      // Overload routing is evaluated at the admission instant — the delay
      // this request has actually accrued, not a stale head-of-window guess.
      // Batch-class requests (ISSUE 6) always ride the degraded INT8
      // half-capacity lane: the SLO class pins the lane the overload path
      // only falls back to.
      const bool overload = rq.slo == SloClass::kBatch ||
                            (res.degrade_under_overload &&
                             (clock - rq.arrival_s) > res.overload_queue_s);

      auto& st = stats[idx];
      st.id = rq.id;
      st.arrival_s = rq.arrival_s;
      st.deadline_s = rq.deadline_s;

      // Prompt-aware admission pricing (ISSUE 9): the estimate carries the
      // prompt length so long prompts price their prefill, discounted by the
      // tokens already resident in the target lane's prefix cache (they are
      // reused, not recomputed). A lane that doesn't exist yet has no cache.
      Lane* target = overload ? degraded_lane_.get() : primary_lane_.get();
      const std::int64_t hit_tokens =
          target ? target->decoder.resident_prefix_tokens(rq.prompt) : 0;
      if (res.admission_control && rq.deadline_s < kNoDeadline &&
          clock + estimate_s_(static_cast<std::int64_t>(rq.prompt.size()),
                              rq.new_tokens, overload, hit_tokens) >
              rq.deadline_s) {
        st.start_s = st.finish_s = clock;  // decision instant; no service
        st.outcome = RequestStats::Outcome::kShed;
        st.attr.add(obs::Phase::kShed, clock - rq.arrival_s);
        ++counters.sheds;
        ++qi;
        if (tracing) {
          rec.instant_at(obs::kServerPid, request_track(rq.id), to_us(clock),
                         "server", "shed");
        }
        continue;
      }

      if (overload && !degraded_lane_) {
        degraded_lane_ = std::make_unique<Lane>(
            degraded_factory_(), std::max<std::int64_t>(1, opts_.max_batch / 2),
            opts_.sampling, seed_ + 1, true);
      }
      Lane& lane = overload ? *degraded_lane_ : *primary_lane_;
      // Structural KV shed (ISSUE 7): a request whose worst-case pages can
      // never fit the lane's pool (or whose tokens exceed max_seq) would
      // block the FIFO head forever — reject it now, reporting the page
      // arithmetic instead of a bare refusal.
      const auto P = static_cast<std::int64_t>(rq.prompt.size());
      if (!lane.decoder.fits(P, rq.new_tokens)) {
        const auto& arena = lane.decoder.arena();
        st.start_s = st.finish_s = clock;
        st.outcome = RequestStats::Outcome::kShed;
        st.shed_reason =
            "kv pages: need " +
            std::to_string(arena.pages_needed(P + rq.new_tokens)) + " of " +
            std::to_string(arena.total_pages()) + " (page_tokens " +
            std::to_string(arena.page_tokens()) + ", max_seq " +
            std::to_string(arena.max_seq()) + ")";
        st.attr.add(obs::Phase::kShed, clock - rq.arrival_s);
        ++counters.sheds;
        ++qi;
        if (tracing) {
          rec.instant_at(obs::kServerPid, request_track(rq.id), to_us(clock),
                         "server", "shed (kv pages)");
        }
        continue;
      }
      // Admission budgets pages on prompt + max_new *actual* tokens, not
      // worst-case max_seq (ISSUE 7): the queue head waits for retirements
      // to free slots AND page budget. Strip mode degenerates to the old
      // free-slot gate.
      if (!lane.decoder.can_admit(rq.prompt, rq.new_tokens)) break;

      st.start_s = clock;
      std::int64_t slot = -1;
      std::int64_t tries = 0;
      double measured_s = 0;
      obs::PhaseBreakdown sub;
      const bool ok = with_retry(
          [&] { slot = lane.decoder.admit(rq.prompt, rq.new_tokens); }, tries,
          measured_s, sub);
      ++qi;
      if (!ok) {
        st.finish_s = clock;
        st.retries = tries;
        st.outcome = RequestStats::Outcome::kFailed;
        st.tokens = rq.prompt;
        st.attr.add(obs::Phase::kAdmissionWait, st.start_s - rq.arrival_s);
        st.attr.add(obs::Phase::kRetryBackoff, clock - st.start_s);
        ++counters.failures;
        if (tracing) {
          rec.instant_at(obs::kServerPid, request_track(rq.id), to_us(clock),
                         "server", "failed");
        }
        continue;
      }
      lane.req[static_cast<std::size_t>(slot)] = idx;
      lane.retries[static_cast<std::size_t>(slot)] = tries;
      // The slot only became chargeable when admit() succeeded, so back-fill
      // the backoff its own admission attempts cost (other live slots were
      // charged as the clock moved; this one was not yet in a slot).
      lane.phases[static_cast<std::size_t>(slot)].clear();
      lane.phases[static_cast<std::size_t>(slot)].add(
          obs::Phase::kRetryBackoff, clock - st.start_s);
      st.attr.add(obs::Phase::kAdmissionWait, st.start_s - rq.arrival_s);
      // Prefill is charged per chunk (ISSUE 9): admit() ran only the first
      // prefill_chunk_tokens prompt rows (all of them when chunking is off);
      // later chunks ride — and are priced inside — subsequent step()s.
      const double prefill_dt =
          vs.enabled
              ? (vs.prefill_s +
                 vs.prefill_token_s *
                     static_cast<double>(
                         lane.decoder.last_step_prefill_rows())) *
                    (lane.degraded ? vs.degraded_factor : 1.0)
              : measured_s;
      if (vs.enabled) {
        charge_active(prefill_dt, obs::Phase::kPrefill);
      } else {
        charge_split(prefill_dt, sub, obs::Phase::kPrefill);
      }
      clock += prefill_dt;
      st.batch_size = active_total();  // step occupancy at admission
      if (tracing) {
        rec.instant_at(obs::kServerPid, request_track(rq.id), to_us(st.start_s),
                       "server", "admit slot " + std::to_string(slot));
      }
      if (lane.decoder.finished(slot)) finalize(lane, slot, false, clock);
    }
  };

  // Inter-decode-step interval probe (ISSUE 9): the bench's stall metric.
  // Marks the clock at every decode-bearing primary-lane iteration; the gap
  // between consecutive marks accumulates whatever ran in between (admit
  // prefill chunks, backoff, the degraded lane) — exactly the stall a
  // monolithic long-prompt admit injects into co-scheduled decodes.
  std::vector<double>* interval_sink = opts_.decode_interval_sink;
  double decode_mark = -1;

  // One decode iteration over a lane: every live sequence advances one
  // token (mid-prefill sequences advance one prompt chunk), finished
  // sequences retire (and free their slots) immediately.
  auto step_lane = [&](Lane* lane) {
    if (!lane || lane->decoder.active() == 0) return;
    std::int64_t tries = 0;
    double measured_s = 0;
    obs::PhaseBreakdown sub;
    const bool ok =
        with_retry([&] { lane->decoder.step(); }, tries, measured_s, sub);
    if (tries > 0) {
      for (std::int64_t s = 0; s < lane->decoder.capacity(); ++s) {
        if (lane->decoder.arena().in_use(s)) {
          lane->retries[static_cast<std::size_t>(s)] += tries;
        }
      }
    }
    if (!ok) {
      // Retry budget exhausted mid-stream: every sequence live on this lane
      // fails; their slots free for the still-queued arrivals.
      for (std::int64_t s = 0; s < lane->decoder.capacity(); ++s) {
        if (lane->decoder.arena().in_use(s)) finalize(*lane, s, true, clock);
      }
      return;
    }
    const std::int64_t prefill_rows = lane->decoder.last_step_prefill_rows();
    const std::int64_t decode_rows = lane->decoder.last_step_decode_rows();
    const double factor = lane->degraded ? vs.degraded_factor : 1.0;
    if (vs.enabled) {
      // Price the fused iteration as max(prefill part, decode part), split
      // by row type for attribution (ISSUE 9): the one-token decode rows
      // are memory-bound, so a bounded prompt chunk rides the iteration's
      // idle compute — the piggyback that makes chunked prefill nearly free
      // is the model, not a special case. Monolithic prefill runs inside
      // admit() with nothing to overlap and pays its full serial price; a
      // pure-prefill iteration (no decode-ready slot) likewise pays its
      // chunk alone.
      //
      // Speculative decode (ISSUE 10): the fused verify iteration costs
      // max(verify lane, draft lane) — k one-token verify rows stay
      // memory-bound like a plain decode row, while the draft lane's k-1
      // truncated-depth passes cost spec_draft_cost_factor() decode
      // iterations. The excess over the verify lane is charged to
      // kDraftCompute (attribution totality keeps holding: the three parts
      // sum to the clock advance), and prefill chunks interleave against
      // the whole fused step.
      const double prefill_part =
          vs.prefill_token_s * static_cast<double>(prefill_rows) * factor;
      const double decode_dt = decode_rows > 0 ? vs.per_token_s * factor : 0.0;
      const double draft_dt =
          decode_rows > 0 ? vs.per_token_s * draft_cost_factor * factor : 0.0;
      const double draft_excess = std::max(0.0, draft_dt - decode_dt);
      const double fused_dt = decode_dt + draft_excess;
      const double prefill_dt = std::max(prefill_part, fused_dt) - fused_dt;
      charge_active(prefill_dt, obs::Phase::kPrefill);
      charge_active(decode_dt, obs::Phase::kDecodeCompute);
      charge_active(draft_excess, obs::Phase::kDraftCompute);
      clock += prefill_dt + fused_dt;
    } else {
      // Measured mode can't separate the fused rows' wall time; attribute
      // the remainder to the dominant row type.
      charge_split(measured_s, sub,
                   decode_rows > 0 ? obs::Phase::kDecodeCompute
                                   : obs::Phase::kPrefill);
      clock += measured_s;
    }
    if (interval_sink && !lane->degraded && decode_rows > 0) {
      if (decode_mark >= 0) interval_sink->push_back(clock - decode_mark);
      decode_mark = clock;
    }
    for (std::int64_t s = 0; s < lane->decoder.capacity(); ++s) {
      if (lane->decoder.arena().in_use(s) && lane->decoder.finished(s)) {
        finalize(*lane, s, false, clock);
      }
    }
  };

  for (;;) {
    try_admit();
    const std::int64_t active = active_total();
    if (active == 0) {
      if (qi >= order.size()) break;
      // Idle: jump the virtual clock to the next arrival.
      clock = std::max(clock, requests[order[qi]].arrival_s);
      continue;
    }
    const double step_begin = clock;
    if (metrics) {
      obs::MetricsRegistry::instance()
          .histogram("server.step_occupancy")
          .record(static_cast<double>(active));
    }
    step_lane(primary_lane_.get());
    step_lane(degraded_lane_.get());
    ++steps;
    if (tracing && clock > step_begin) {
      rec.complete_at(obs::kServerPid, kBatcherTrack, to_us(step_begin),
                      to_us(clock - step_begin), "server",
                      "step x" + std::to_string(active),
                      "{\"occupancy\":" + std::to_string(active) + "}");
    }
  }

  if (metrics) {
    auto& reg = obs::MetricsRegistry::instance();
    reg.counter("server.steps").add(steps);
    reg.counter("server.slots_acquired")
        .add(primary_lane_->decoder.total_admitted() +
             (degraded_lane_ ? degraded_lane_->decoder.total_admitted() : 0));
    reg.counter("server.slots_released").add(slots_released);
  }
}

}  // namespace dsinfer::core
