// Likelihood evaluation: teacher-forced scoring of a token sequence under a
// GptWeights model (sum of per-token log-probabilities and perplexity). Used
// to sanity-check decoding (a model must assign its own greedy continuation
// at least the likelihood of any alternative) and as a minimal accuracy
// harness for downstream users.
#pragma once

#include <cstdint>
#include <vector>

#include "core/gpt_model.h"

namespace dsinfer::core {

struct SequenceScore {
  double log_prob = 0;    // sum over positions 1..n-1 of log P(t_i | t_<i)
  double perplexity = 0;  // exp(-log_prob / (n - 1))
  std::int64_t scored_tokens = 0;
};

// Scores `tokens` (length >= 2) under the model: a single full forward with
// logits at every position. Throws on out-of-range tokens / lengths.
SequenceScore score_sequence(const GptWeights& weights,
                             const std::vector<std::int32_t>& tokens);

}  // namespace dsinfer::core
