// Functional pipeline-parallel generation (paper Sec. IV-B/C, Fig. 2).
//
// The model's layers are partitioned into contiguous stages; each stage runs
// on its own thread (a virtual device) pulling micro-batches from a FIFO
// queue. Token generation follows the paper's inference-optimized schedule:
// a micro-batch's next token step is enqueued at stage 0 the moment its
// previous step leaves the last stage — no global barrier between steps, so
// micro-batches of different steps coexist in the pipe exactly as in
// Fig. 2(b). The last stage owns the LM head and sampling.
//
// This is the correctness companion to parallel::simulate_pipeline (which
// studies the schedules' performance on modeled clusters): outputs are
// identical to the single-device InferenceEngine under greedy decoding.
#pragma once

#include <cstdint>
#include <vector>

#include "core/gpt_model.h"
#include "core/inference_engine.h"
#include "kernels/transformer_layer.h"
#include "model/model_config.h"

namespace dsinfer::core {

struct PipelineOptions {
  std::int64_t stages = 2;
  std::int64_t microbatches = 2;  // batch is split into this many groups
  kernels::KernelPolicy policy = kernels::KernelPolicy::optimized_large_batch();
  std::int64_t max_seq = 128;
};

class PipelineEngine {
 public:
  // Builds the same randomly initialized model as InferenceEngine(cfg, seed),
  // so outputs can be compared across engines.
  PipelineEngine(const model::DenseModelConfig& cfg, PipelineOptions opts,
                 std::uint64_t seed = 0x5eed);

  const model::DenseModelConfig& config() const { return weights_.config; }

  // Generates `new_tokens` greedy tokens for each prompt. Prompts must be
  // equal length; the batch must be >= the micro-batch count.
  GenerationResult generate(
      const std::vector<std::vector<std::int32_t>>& prompts,
      std::int64_t new_tokens, const SamplingOptions& sampling = {});

  // Stage boundaries, exposed for tests.
  const std::vector<std::pair<std::int64_t, std::int64_t>>& stage_ranges()
      const {
    return stage_ranges_;
  }

 private:
  PipelineOptions opts_;
  GptWeights weights_;
  std::uint64_t seed_;
  std::vector<std::pair<std::int64_t, std::int64_t>> stage_ranges_;
};

}  // namespace dsinfer::core
