// Public inference API.
//
// InferenceEngine ties the whole functional stack together: embeddings ->
// N transformer layers (resident, ZeRO-streamed, or tensor-parallel across
// virtual devices) -> LM head -> sampling, with per-layer KV caches driving
// the two-phase (prompt processing / token generation) loop of Sec. IV-B.
//
//   model::DenseModelConfig cfg = model::tiny_gpt();
//   core::EngineOptions opts;
//   core::InferenceEngine engine(cfg, opts, /*seed=*/42);
//   auto result = engine.generate({{10, 11, 12}}, /*new_tokens=*/8);
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/gpt_model.h"
#include "kernels/kv_cache.h"
#include "parallel/tensor_parallel.h"
#include "zero/offload.h"

namespace dsinfer::core {

struct EngineOptions {
  kernels::KernelPolicy policy = kernels::KernelPolicy::optimized_small_batch();
  // >1 shards every layer Megatron-style across virtual devices (threads).
  std::int64_t tensor_parallel = 1;
  // ZeRO-Inference mode: weights live in a host store and stream through a
  // small device window. Mutually exclusive with tensor_parallel > 1.
  bool stream_weights = false;
  std::int64_t stream_window = 2;
  // Stream per-channel INT8 quantized weights instead of FP32 (~4x fewer
  // boundary bytes; the INT8 GeMM consumes the quantized form directly).
  // This is the graceful-degradation fidelity the server falls back to
  // under overload. Requires stream_weights.
  bool stream_int8 = false;
  // Sec. IV-C.2: release every layer's KV cache to host memory between token
  // steps and fetch it back before the next step. Numerically transparent;
  // the transfer ledger (kv_offload_bytes()) exposes the PCIe traffic the
  // perf model prices.
  bool kv_offload = false;
  std::int64_t max_batch = 8;
  std::int64_t max_seq = 128;
  // Chaos hooks (ISSUE 1). When set, streamed weight reads draw from the
  // injector's "zero.stream" site; corrupted reads are retried (with
  // checksum verification) up to stream_max_retries before a StreamFault.
  util::FaultInjector* fault_injector = nullptr;
  std::int64_t stream_max_retries = 3;
};

// Invoked as each token is sampled: (sequence index, step index, token).
// With tensor parallelism the callback fires on rank 0's replica only.
using TokenCallback =
    std::function<void(std::int64_t, std::int64_t, std::int32_t)>;

struct GenerationResult {
  // tokens[i] = prompt i followed by the generated continuation; sequences
  // that emitted the stop token are truncated at it (inclusive).
  std::vector<std::vector<std::int32_t>> tokens;
  std::vector<bool> stopped;   // per sequence: hit the stop token early
  std::int64_t generated = 0;  // total new tokens across the batch
  double seconds = 0;          // wall-clock for the whole call
  double prompt_seconds = 0;   // time to first token (prompt phase)
};

class InferenceEngine {
 public:
  // Builds a randomly initialized model (this reproduction has no trained
  // checkpoints; all evaluation is performance- and correctness-oriented).
  InferenceEngine(const model::DenseModelConfig& cfg, EngineOptions opts,
                  std::uint64_t seed = 0x5eed);

  const model::DenseModelConfig& config() const { return weights_.config; }
  const EngineOptions& options() const { return opts_; }
  const GptWeights& weights() const { return weights_; }

  // Generates `new_tokens` tokens for each prompt (greedy by default).
  // All prompts must be non-empty and equally long (callers pad upstream);
  // batch and total length must respect the engine limits.
  GenerationResult generate(
      const std::vector<std::vector<std::int32_t>>& prompts,
      std::int64_t new_tokens, const SamplingOptions& sampling = {},
      const TokenCallback& on_token = {});

  // Runs a single forward pass over equally long prompts and writes the
  // final-position logits [batch, vocab]. Exposed for tests and perplexity
  // style evaluation.
  void forward_logits(const std::vector<std::vector<std::int32_t>>& prompts,
                      std::span<float> logits);

  // Bytes the streamer moved so far (0 when not streaming).
  std::size_t streamed_bytes() const;
  // Streaming resilience ledger (nullptr when not streaming).
  const zero::LayerStreamer* streamer() const { return streamer_.get(); }
  // Bytes of KV state round-tripped to host memory (0 unless kv_offload).
  std::size_t kv_offload_bytes() const { return kv_offload_bytes_; }

 private:
  struct Plan {
    std::int64_t batch = 0;
    std::int64_t prompt_len = 0;
  };
  Plan validate(const std::vector<std::vector<std::int32_t>>& prompts) const;

  // Runs `q_len` new positions through every layer; x is [batch*q_len, H].
  void run_layers(std::span<float> x, std::int64_t batch, std::int64_t q_len,
                  std::vector<kernels::KVCache>& caches);

  EngineOptions opts_;
  GptWeights weights_;
  Rng sample_rng_;

  // Streaming substrate (stream_weights mode).
  std::unique_ptr<zero::HostWeightStore> store_;
  std::unique_ptr<zero::LayerStreamer> streamer_;

  // Tensor-parallel substrate: shards_[rank][layer].
  std::vector<std::vector<parallel::TpLayerShard>> shards_;

  std::size_t kv_offload_bytes_ = 0;
};

// Byte-level token helpers for the examples (vocab must be >= 256).
std::vector<std::int32_t> byte_tokenize(const std::string& text);
std::string byte_detokenize(std::span<const std::int32_t> tokens);

}  // namespace dsinfer::core
