// Public inference API.
//
// InferenceEngine ties the whole functional stack together: embeddings ->
// N transformer layers (resident, ZeRO-streamed, or tensor-parallel across
// virtual devices) -> LM head -> sampling, with per-layer KV caches driving
// the two-phase (prompt processing / token generation) loop of Sec. IV-B.
//
//   model::DenseModelConfig cfg = model::tiny_gpt();
//   core::EngineOptions opts;
//   core::InferenceEngine engine(cfg, opts, /*seed=*/42);
//   auto result = engine.generate({{10, 11, 12}}, /*new_tokens=*/8);
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/gpt_model.h"
#include "kernels/kv_arena.h"
#include "kernels/kv_cache.h"
#include "parallel/tensor_parallel.h"
#include "zero/offload.h"

namespace dsinfer::core {

struct EngineOptions {
  kernels::KernelPolicy policy = kernels::KernelPolicy::optimized_small_batch();
  // >1 shards every layer Megatron-style across virtual devices (threads).
  std::int64_t tensor_parallel = 1;
  // ZeRO-Inference mode: weights live in a host store and stream through a
  // small device window. Mutually exclusive with tensor_parallel > 1.
  bool stream_weights = false;
  std::int64_t stream_window = 2;
  // Stream per-channel INT8 quantized weights instead of FP32 (~4x fewer
  // boundary bytes; the INT8 GeMM consumes the quantized form directly).
  // This is the graceful-degradation fidelity the server falls back to
  // under overload. Requires stream_weights.
  bool stream_int8 = false;
  // Sec. IV-C.2: release every layer's KV cache to host memory between token
  // steps and fetch it back before the next step. Numerically transparent;
  // the transfer ledger (kv_offload_bytes()) exposes the PCIe traffic the
  // perf model prices.
  bool kv_offload = false;
  std::int64_t max_batch = 8;
  std::int64_t max_seq = 128;
  // Chaos hooks (ISSUE 1). When set, streamed weight reads draw from the
  // injector's "zero.stream" site; corrupted reads are retried (with
  // checksum verification) up to stream_max_retries before a StreamFault.
  util::FaultInjector* fault_injector = nullptr;
  std::int64_t stream_max_retries = 3;
};

// Invoked as each token is sampled: (sequence index, step index, token).
// With tensor parallelism the callback fires on rank 0's replica only.
using TokenCallback =
    std::function<void(std::int64_t, std::int64_t, std::int32_t)>;

struct GenerationResult {
  // tokens[i] = prompt i followed by the generated continuation; sequences
  // that emitted the stop token are truncated at it (inclusive).
  std::vector<std::vector<std::int32_t>> tokens;
  std::vector<bool> stopped;   // per sequence: hit the stop token early
  std::int64_t generated = 0;  // total new tokens across the batch
  double seconds = 0;          // wall-clock for the whole call
  double prompt_seconds = 0;   // time to first token (prompt phase)
};

class InferenceEngine {
 public:
  // Builds a randomly initialized model (this reproduction has no trained
  // checkpoints; all evaluation is performance- and correctness-oriented).
  InferenceEngine(const model::DenseModelConfig& cfg, EngineOptions opts,
                  std::uint64_t seed = 0x5eed);

  const model::DenseModelConfig& config() const { return weights_.config; }
  const EngineOptions& options() const { return opts_; }
  const GptWeights& weights() const { return weights_; }

  // Generates `new_tokens` tokens for each prompt (greedy by default).
  // All prompts must be non-empty and equally long (callers pad upstream);
  // batch and total length must respect the engine limits.
  GenerationResult generate(
      const std::vector<std::vector<std::int32_t>>& prompts,
      std::int64_t new_tokens, const SamplingOptions& sampling = {},
      const TokenCallback& on_token = {});

  // Runs a single forward pass over equally long prompts and writes the
  // final-position logits [batch, vocab]. Exposed for tests and perplexity
  // style evaluation.
  void forward_logits(const std::vector<std::vector<std::int32_t>>& prompts,
                      std::span<float> logits);

  // Bytes the streamer moved so far (0 when not streaming).
  std::size_t streamed_bytes() const;
  // Streaming resilience ledger (nullptr when not streaming).
  const zero::LayerStreamer* streamer() const { return streamer_.get(); }
  // Bytes of KV state round-tripped to host memory (0 unless kv_offload).
  std::size_t kv_offload_bytes() const { return kv_offload_bytes_; }

  // Transformer layer count (resident or streamed).
  std::int64_t layer_count() const;

 private:
  friend class RaggedDecoder;

  struct Plan {
    std::int64_t batch = 0;
    std::int64_t prompt_len = 0;
  };
  Plan validate(const std::vector<std::vector<std::int32_t>>& prompts) const;

  // Runs `q_len` new positions through every layer; x is [batch*q_len, H].
  void run_layers(std::span<float> x, std::int64_t batch, std::int64_t q_len,
                  std::vector<kernels::KVCache>& caches);

  // Ragged block through every layer (continuous batching); x is
  // [tokens, H] with per-token arena slot and absolute position.
  void run_layers_ragged(std::span<float> x,
                         std::span<const std::int32_t> slots,
                         std::span<const std::int32_t> positions,
                         kernels::KVArena& arena);

  EngineOptions opts_;
  GptWeights weights_;
  Rng sample_rng_;

  // Streaming substrate (stream_weights mode).
  std::unique_ptr<zero::HostWeightStore> store_;
  std::unique_ptr<zero::LayerStreamer> streamer_;

  // Tensor-parallel substrate: shards_[rank][layer].
  std::vector<std::vector<parallel::TpLayerShard>> shards_;

  std::size_t kv_offload_bytes_ = 0;
};

// Iteration-level decoding front-end over a shared KV arena (ISSUE 4): the
// substrate of continuous batching. Each sequence occupies one arena slot
// from admit() until retire(); step() advances every live sequence by one
// token, so sequences of different prompt lengths, ages, and budgets decode
// in the same engine iteration and retire the moment they hit their stop
// token or budget — no batch-wide max_new, no padding.
//
// Greedy token streams are bit-identical to InferenceEngine::generate on the
// same weights (the ragged kernels preserve per-token reduction order).
// Supported on the single-device resident and ZeRO-streamed paths; tensor
// parallelism and kv_offload are rejected (per-rank arenas are future work).
class RaggedDecoder {
 public:
  // `slots` bounds concurrent sequences; `max_seq` per slot follows the
  // engine's limits. Sampling applies to every sequence.
  RaggedDecoder(InferenceEngine& engine, std::int64_t slots,
                const SamplingOptions& sampling = {},
                std::uint64_t seed = 0x5eed);

  std::int64_t capacity() const { return slots_; }
  std::int64_t free_slots() const { return arena_.free_slots(); }
  std::int64_t active() const { return arena_.active_slots(); }
  // Lifetime admissions (slot churn).
  std::int64_t total_admitted() const { return arena_.total_acquires(); }

  // Prefill: runs `prompt` through the model and samples the sequence's
  // first token. Returns the slot id, or -1 when no slot is free. The
  // sequence may already be finished on return (max_new == 1 or immediate
  // stop) — check finished() before waiting on step().
  std::int64_t admit(const std::vector<std::int32_t>& prompt,
                     std::int64_t max_new);

  // One decode iteration over every live (active, unfinished) sequence;
  // returns how many sequences advanced (0 = nothing to do).
  std::int64_t step();

  bool finished(std::int64_t slot) const;  // stopped or budget exhausted
  bool stopped(std::int64_t slot) const;   // emitted the stop token
  std::int64_t generated(std::int64_t slot) const;
  // Prompt + generated tokens. Read before retire(); the slot's state is
  // recycled on reuse.
  const std::vector<std::int32_t>& tokens(std::int64_t slot) const;
  void retire(std::int64_t slot);

  const kernels::KVArena& arena() const { return arena_; }

 private:
  struct Seq {
    std::vector<std::int32_t> tokens;
    std::int64_t prompt_len = 0;
    std::int64_t max_new = 0;
    std::int64_t generated = 0;
    std::int32_t next_tok = 0;  // sampled, not yet fed through the layers
    bool stopped = false;
  };
  const Seq& checked(std::int64_t slot) const;
  std::int32_t sample_row(std::span<const float> logits_row);

  InferenceEngine& eng_;
  std::int64_t slots_ = 0;
  SamplingOptions sampling_;
  Rng rng_;
  kernels::KVArena arena_;
  std::vector<Seq> seqs_;
  // Reused per-call buffers: the decode loop is allocation-free at steady
  // state.
  std::vector<float> x_;
  std::vector<float> logits_;
  std::vector<std::int32_t> toks_, poss_, slot_ids_;
};

// Byte-level token helpers for the examples (vocab must be >= 256).
std::vector<std::int32_t> byte_tokenize(const std::string& text);
std::string byte_detokenize(std::span<const std::int32_t> tokens);

}  // namespace dsinfer::core
