// Public inference API.
//
// InferenceEngine ties the whole functional stack together: embeddings ->
// N transformer layers (resident, ZeRO-streamed, or tensor-parallel across
// virtual devices) -> LM head -> sampling, with per-layer KV caches driving
// the two-phase (prompt processing / token generation) loop of Sec. IV-B.
//
//   model::DenseModelConfig cfg = model::tiny_gpt();
//   core::EngineOptions opts;
//   core::InferenceEngine engine(cfg, opts, /*seed=*/42);
//   auto result = engine.generate({{10, 11, 12}}, /*new_tokens=*/8);
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/config_error.h"
#include "core/gpt_model.h"
#include "kernels/kv_arena.h"
#include "kernels/kv_cache.h"
#include "parallel/tensor_parallel.h"
#include "zero/kv_offload.h"
#include "zero/offload.h"

namespace dsinfer::core {

class EngineSpec;  // core/engine_spec.h — the validated configuration API

// Thin view of an engine configuration (ISSUE 5): build one through
// core::EngineSpec (fluent setters + typed validate()) and pass the spec to
// InferenceEngine. Filling the struct by hand and using the legacy
// constructor still works — that path is a deprecated shim that routes
// through EngineSpec::validate() and throws ConfigException (IS-A
// std::invalid_argument) on the first error.
struct EngineOptions {
  kernels::KernelPolicy policy = kernels::KernelPolicy::optimized_small_batch();
  // >1 shards every layer Megatron-style across virtual devices (threads).
  std::int64_t tensor_parallel = 1;
  // ZeRO-Inference mode: weights live in a host store and stream through a
  // small device window. Mutually exclusive with tensor_parallel > 1.
  bool stream_weights = false;
  std::int64_t stream_window = 2;
  // Stream per-channel INT8 quantized weights instead of FP32 (~4x fewer
  // boundary bytes; the INT8 GeMM consumes the quantized form directly).
  // This is the graceful-degradation fidelity the server falls back to
  // under overload. Requires stream_weights.
  bool stream_int8 = false;
  // Sec. IV-C.2: release every layer's KV cache to host memory between token
  // steps and fetch it back before the next step. Numerically transparent;
  // the transfer ledger (kv_offload_bytes()) exposes the PCIe traffic the
  // perf model prices.
  bool kv_offload = false;
  std::int64_t max_batch = 8;
  std::int64_t max_seq = 128;
  // Paged KV virtualization (ISSUE 7). 0 keeps the contiguous strip layout
  // (one max_seq-sized page per slot, no oversubscription). > 0 breaks each
  // slot's KV into kv_page_tokens-row pages behind a per-slot block table:
  // admission budgets pages for prompt + max_new actual tokens, not
  // worst-case max_seq.
  std::int64_t kv_page_tokens = 0;
  // Page-pool size when paging (0 = fully provisioned: every slot can reach
  // max_seq). Smaller pools oversubscribe; admission keeps the pool safe.
  std::int64_t kv_pages = 0;
  // Copy-on-write shared-prefix cache across slots (requires paging):
  // identical prompt prefixes dedup onto refcounted shared page chains,
  // prefill runs only the unmatched suffix.
  bool kv_prefix_cache = false;
  // Chunked prefill (ISSUE 9). 0 runs the whole prompt suffix inside
  // admit() (monolithic — the legacy behavior). > 0 bounds the prompt
  // tokens any single fused iteration may prefill: admit() runs only the
  // first chunk, and each subsequent step() advances at most this many
  // prompt rows TOTAL across all mid-prefill slots (one global budget,
  // slot order, first-come), interleaved with the one-token decode rows of
  // the other live slots in the same ragged step — so the per-iteration
  // prefill work stays bounded no matter how many long prompts are in
  // flight. Greedy token streams stay bit-identical to monolithic prefill
  // (per-row reduction order is independent of co-batched row count).
  std::int64_t prefill_chunk_tokens = 0;
  // Speculative multi-token decode (ISSUE 10, configured through
  // core::SpecDecodeSpec). spec_draft_tokens is the verify window: the query
  // rows each decode-ready slot contributes to one fused ragged step (the
  // sampled-but-unfed token plus spec_draft_tokens - 1 draft proposals).
  // 1 == speculation off, the exact non-speculative path. Exact-match greedy
  // acceptance keeps accepted prefixes bit-identical to the non-speculative
  // stream; rejected-suffix KV rows rewind through the page-granular rewind
  // machinery. Requires resident weights (no stream_weights), the continuous
  // scheduler, and greedy sampling.
  std::int64_t spec_draft_tokens = 1;
  // Layers in the draft lane, sharing the target checkpoint's first N
  // resident layers (0 = half the target's layers, minimum 1). The virtual
  // clock prices the draft lane by this fraction of a target decode pass.
  std::int64_t spec_draft_layers = 0;
  // Run the draft lane on INT8-prepared copies of its layers (half the
  // virtual draft cost, same exact-match safety: a bad proposal just
  // rejects).
  bool spec_draft_int8 = false;
  // Acceptance-rate sim knob for the modeled speedup curves: in [0, 1] the
  // decoder swaps the configured draft for a full-depth oracle twin and
  // deterministically corrupts its proposals so the realized tokens-per-step
  // averages exactly the geometric model 1 + a + ... + a^(k-1) at this
  // per-position rate (the DES twin mirrors the same accumulator), while
  // virtual pricing keeps charging the *configured* draft lane. -1 (default)
  // runs the real configured draft and measures whatever acceptance it
  // earns.
  double spec_acceptance = -1.0;
  // Chaos hooks (ISSUE 1). When set, streamed weight reads draw from the
  // injector's "zero.stream" site; corrupted reads are retried (with
  // checksum verification) up to stream_max_retries before a StreamFault.
  util::FaultInjector* fault_injector = nullptr;
  std::int64_t stream_max_retries = 3;
};

// Invoked as each token is sampled: (sequence index, step index, token).
// With tensor parallelism the callback fires on rank 0's replica only.
using TokenCallback =
    std::function<void(std::int64_t, std::int64_t, std::int32_t)>;

struct GenerationResult {
  // tokens[i] = prompt i followed by the generated continuation; sequences
  // that emitted the stop token are truncated at it (inclusive).
  std::vector<std::vector<std::int32_t>> tokens;
  std::vector<bool> stopped;   // per sequence: hit the stop token early
  std::int64_t generated = 0;  // total new tokens across the batch
  double seconds = 0;          // wall-clock for the whole call
  double prompt_seconds = 0;   // time to first token (prompt phase)
};

class InferenceEngine {
 public:
  // Builds a randomly initialized model (this reproduction has no trained
  // checkpoints; all evaluation is performance- and correctness-oriented)
  // from a validated spec. Throws ConfigException if spec.validate() is
  // non-empty.
  explicit InferenceEngine(const EngineSpec& spec, std::uint64_t seed = 0x5eed);

  // Deprecated shim: prefer InferenceEngine(EngineSpec). Routes through
  // EngineSpec::validate() and throws ConfigException (a
  // std::invalid_argument) on the first violated constraint.
  InferenceEngine(const model::DenseModelConfig& cfg, EngineOptions opts,
                  std::uint64_t seed = 0x5eed);

  const model::DenseModelConfig& config() const { return weights_.config; }
  const EngineOptions& options() const { return opts_; }
  const GptWeights& weights() const { return weights_; }

  // Generates `new_tokens` tokens for each prompt (greedy by default).
  // All prompts must be non-empty and equally long (callers pad upstream);
  // batch and total length must respect the engine limits.
  GenerationResult generate(
      const std::vector<std::vector<std::int32_t>>& prompts,
      std::int64_t new_tokens, const SamplingOptions& sampling = {},
      const TokenCallback& on_token = {});

  // Runs a single forward pass over equally long prompts and writes the
  // final-position logits [batch, vocab]. Exposed for tests and perplexity
  // style evaluation.
  void forward_logits(const std::vector<std::vector<std::int32_t>>& prompts,
                      std::span<float> logits);

  // Bytes the streamer moved so far (0 when not streaming).
  std::size_t streamed_bytes() const;
  // Streaming resilience ledger (nullptr when not streaming).
  const zero::LayerStreamer* streamer() const { return streamer_.get(); }
  // Bytes of KV state round-tripped to host memory (0 unless kv_offload).
  std::size_t kv_offload_bytes() const { return kv_offload_bytes_; }

  // Transformer layer count (resident or streamed).
  std::int64_t layer_count() const;

 private:
  friend class RaggedDecoder;

  // Shared constructor body: builds weights and the execution substrate.
  // Callers have already validated opts_.
  void init(const model::DenseModelConfig& cfg, std::uint64_t seed);

  struct Plan {
    std::int64_t batch = 0;
    std::int64_t prompt_len = 0;
  };
  Plan validate(const std::vector<std::vector<std::int32_t>>& prompts) const;

  // Runs `q_len` new positions through every layer; x is [batch*q_len, H].
  void run_layers(std::span<float> x, std::int64_t batch, std::int64_t q_len,
                  std::vector<kernels::KVCache>& caches);

  // Ragged block through every layer (continuous batching); x is
  // [tokens, H] with per-token arena slot and absolute position.
  void run_layers_ragged(std::span<float> x,
                         std::span<const std::int32_t> slots,
                         std::span<const std::int32_t> positions,
                         kernels::KVArena& arena);

  // Tensor-parallel ragged block (ISSUE 5): one fused step across every
  // rank, with arenas[r] holding rank r's head-slice shard. Spawns a fresh
  // DeviceGroup per call — a Communicator is poisoned forever after a
  // CommFault, so per-call groups are what make retry-after-fault possible.
  // On return x (rank 0's replica) holds the updated activations; xr and
  // scratches are caller-owned per-rank working storage, reused across
  // calls.
  void run_layers_ragged_tp(std::span<float> x,
                            std::span<const std::int32_t> slots,
                            std::span<const std::int32_t> positions,
                            std::vector<kernels::KVArena>& arenas,
                            std::vector<float>& xr,
                            std::vector<parallel::TpScratch>& scratches);

  EngineOptions opts_;
  GptWeights weights_;
  Rng sample_rng_;

  // Streaming substrate (stream_weights mode).
  std::unique_ptr<zero::HostWeightStore> store_;
  std::unique_ptr<zero::LayerStreamer> streamer_;

  // Tensor-parallel substrate: shards_[rank][layer].
  std::vector<std::vector<parallel::TpLayerShard>> shards_;

  std::size_t kv_offload_bytes_ = 0;
};

// Iteration-level decoding front-end over a shared KV arena (ISSUE 4): the
// substrate of continuous batching. Each sequence occupies one arena slot
// from admit() until retire(); step() advances every live sequence by one
// token, so sequences of different prompt lengths, ages, and budgets decode
// in the same engine iteration and retire the moment they hit their stop
// token or budget — no batch-wide max_new, no padding.
//
// Greedy token streams are bit-identical to InferenceEngine::generate on the
// same weights (the ragged kernels preserve per-token reduction order).
// Supported on the single-device resident, ZeRO-streamed, tensor-parallel,
// and kv_offload paths (ISSUE 5): with tensor_parallel > 1 the decoder keeps
// one head-slice arena shard per virtual rank and drives the rank group in
// lockstep — one decode iteration is one fused step across ranks, with slot
// lifecycle (admit/retire/fault-rewind) decided once and applied to every
// shard; with kv_offload each rank round-trips its slots' KV strips through
// the zero::ArenaOffloadLedger between iterations.
class RaggedDecoder {
 public:
  // Feature probe (ISSUE 5 api_redesign): benches and the server ask
  // whether a configuration is serveable on the ragged path instead of
  // catch-and-fallback. ok == false carries the first typed reason.
  struct Capabilities {
    bool ok = true;
    ConfigError reason{};  // meaningful only when !ok
    explicit operator bool() const { return ok; }

    // Probes an already-constructed engine's options at `slots` arena slots.
    static Capabilities supports(const EngineOptions& opts,
                                 std::int64_t slots = 1);
    // Full probe including the sampling mode (ISSUE 10): speculative decode
    // (spec_draft_tokens > 1) is an exact-match greedy identity, so it is
    // gated — not ad-hoc-thrown — against non-greedy sampling here. The
    // 2-arg overload probes with default (greedy) sampling.
    static Capabilities supports(const EngineOptions& opts, std::int64_t slots,
                                 const SamplingOptions& sampling);
    // Probes a spec before any engine exists (defined with EngineSpec in
    // core/engine_spec.cc).
    static Capabilities supports(const EngineSpec& spec,
                                 std::int64_t slots = 1);
  };

  // `slots` bounds concurrent sequences; `max_seq` per slot follows the
  // engine's limits. Sampling applies to every sequence. Throws
  // ConfigException when !Capabilities::supports(engine.options(), slots)
  // (the legacy throw path, preserved through the shim).
  RaggedDecoder(InferenceEngine& engine, std::int64_t slots,
                const SamplingOptions& sampling = {},
                std::uint64_t seed = 0x5eed);

  std::int64_t capacity() const { return slots_; }
  std::int64_t free_slots() const { return arenas_[0].free_slots(); }
  std::int64_t active() const { return arenas_[0].active_slots(); }
  // Lifetime admissions (slot churn).
  std::int64_t total_admitted() const { return arenas_[0].total_acquires(); }

  // Structural fit (ISSUE 7): can this request EVER run here — within
  // max_seq and, when paged, within the whole page pool? A false here is a
  // permanent rejection, not backpressure.
  bool fits(std::int64_t prompt_tokens, std::int64_t max_new) const;
  // Page-budget admission: a free slot exists AND the pool can commit this
  // request's worst-case private-page demand for prompt + max_new *actual*
  // tokens (discounted by resident shared-prefix pages), on top of every
  // live slot's outstanding commitment. Guarantees decode never runs out of
  // pages. Strip mode degenerates to free_slots() > 0.
  bool can_admit(std::span<const std::int32_t> prompt,
                 std::int64_t max_new) const;
  // Outstanding worst-case page commitment across live slots (paged mode).
  std::int64_t committed_pages() const { return committed_pages_; }

  // Prefix-cache signals (rank 0's shard; shards agree by construction).
  std::int64_t prefix_hits() const { return arenas_[0].prefix_hits(); }
  std::int64_t prefix_hit_tokens() const {
    return arenas_[0].prefix_hit_tokens();
  }
  // Lifetime prompt tokens across admissions — the hit-rate denominator.
  std::int64_t prompt_tokens() const { return prompt_tokens_; }
  // Lifetime suffix tokens committed for prefill at admission (the part of
  // each prompt past its prefix-cache match). Counted at the same commit
  // point as prompt_tokens() and the arena's prefix_hit_tokens(), so the
  // accounting identity
  //     prompt_tokens() == prefix_hit_tokens() + suffix_prefill_tokens()
  // holds exactly, including across faulted-and-retried admissions (ISSUE 9
  // metric audit: matched tokens are never charged as prefill work twice).
  std::int64_t suffix_prefill_tokens() const { return suffix_tokens_; }
  // Cache-contents probe for fleet prefix-affinity routing.
  std::int64_t cached_prefix_tokens(
      std::span<const std::int32_t> prompt) const {
    return arenas_[0].cached_prefix_tokens(prompt);
  }
  // Read-only probe of how many of `prompt`'s tokens are covered by resident
  // shared-prefix pages right now — the admission estimator's discount
  // (resident tokens won't be prefilled). 0 when the cache is off.
  std::int64_t resident_prefix_tokens(
      std::span<const std::int32_t> prompt) const {
    return arenas_[0].probe_prefix(prompt).tokens;
  }

  // Chunked-prefill progress (ISSUE 9). prefill_remaining(slot) is the
  // count of prompt tokens not yet run through the layers; > 0 means the
  // slot is mid-prefill (it has no sampled token yet and contributes prompt
  // rows, not a decode row, to the next step()).
  std::int64_t prefill_remaining(std::int64_t slot) const {
    const Seq& s = checked(slot);
    return s.prompt_len - s.prefill_pos;
  }
  // Row counts of the most recent admit()/step() call — the virtual-clock
  // schedulers price prefill per chunk (prefill rows actually run this
  // iteration), not per admission, off these. With speculation decode rows
  // are *verify* rows: each spec-active slot contributes up to
  // spec_draft_tokens of them per step.
  std::int64_t last_step_prefill_rows() const { return last_prefill_rows_; }
  std::int64_t last_step_decode_rows() const { return last_decode_rows_; }

  // Speculative-decode ledger (ISSUE 10). Lifetime counts across steps:
  // draft tokens proposed, proposals accepted by exact-match verification,
  // and KV rows rolled back (rejected proposals plus draft-lane rewinds are
  // *not* counted here — rollback_tokens is the target-lane figure the
  // spec.* metrics publish: verify rows written then rewound).
  std::int64_t spec_proposed_tokens() const { return spec_proposed_; }
  std::int64_t spec_accepted_tokens() const { return spec_accepted_; }
  std::int64_t spec_rollback_tokens() const { return spec_rollback_; }
  // Realized per-position acceptance rate (0 when nothing proposed yet).
  double spec_acceptance_rate() const {
    return spec_proposed_ > 0 ? static_cast<double>(spec_accepted_) /
                                    static_cast<double>(spec_proposed_)
                              : 0.0;
  }
  // Tokens appended by the most recent step() (accepted + bonus per slot;
  // equals the advanced-slot count when speculation is off).
  std::int64_t last_step_spec_tokens() const { return last_spec_tokens_; }

  // Virtual-clock pricing helpers (ISSUE 10) shared by ContinuousBatcher,
  // InferenceServer::estimate_service_s, fleet::Replica, and the fleet_sim
  // DES twin so every model prices speculation identically.
  //
  // spec_draft_cost_factor: the draft lane's cost per fused step in units of
  // one target decode pass — (k-1) proposal passes through
  // eff_draft_layers/layer_count of the stack, halved when the draft is
  // INT8. 0 when speculation is off. The fused step charges
  // max(1, factor) * per_token_s: verify rows ride the bandwidth-bound GeMM
  // for free (the paper's deep-fusion argument applied across time steps),
  // so the step costs whichever lane is longer.
  static double spec_draft_cost_factor(const EngineOptions& opts,
                                       std::int64_t layer_count);
  // Expected tokens retired per fused step at the configured acceptance
  // knob: 1 + a + a^2 + ... + a^(k-1) (the accepted prefix is geometric,
  // plus the always-appended bonus token). 1 when speculation is off or the
  // knob is the -1 "measure" sentinel.
  static double spec_step_tokens(const EngineOptions& opts);

  // Prefill: reserves the slot's full page commitment and runs the prompt
  // suffix through the model — all of it when prefill_chunk_tokens == 0
  // (sampling the first token before returning), otherwise only the first
  // chunk (the slot returns mid-prefill; step() advances the cursor and
  // samples the first token when the final prompt row runs). Returns the
  // slot id, or -1 when no slot is free. The sequence may already be
  // finished on return (max_new == 1 or immediate stop) — check finished()
  // before waiting on step().
  std::int64_t admit(const std::vector<std::int32_t>& prompt,
                     std::int64_t max_new);

  // One fused iteration over every live slot: mid-prefill slots share a
  // global budget of up to prefill_chunk_tokens prompt rows (slot order),
  // every other unfinished slot contributes one decode row, all in the same
  // ragged step. Returns how many sequences advanced (0 = nothing to do).
  std::int64_t step();

  bool finished(std::int64_t slot) const;  // stopped or budget exhausted
  bool stopped(std::int64_t slot) const;   // emitted the stop token
  std::int64_t generated(std::int64_t slot) const;
  // Prompt + generated tokens. Read before retire(); the slot's state is
  // recycled on reuse.
  const std::vector<std::int32_t>& tokens(std::int64_t slot) const;
  void retire(std::int64_t slot);

  // Rank 0's arena shard (the full arena at tensor_parallel == 1). Slot
  // lifecycle and lengths agree across shards by construction.
  const kernels::KVArena& arena() const { return arenas_[0]; }
  // Any rank's shard — mirroring checks (free lists, block tables,
  // fingerprints) at tensor_parallel > 1.
  const kernels::KVArena& arena(std::int64_t rank) const {
    return arenas_[static_cast<std::size_t>(rank)];
  }
  std::int64_t rank_count() const {
    return static_cast<std::int64_t>(arenas_.size());
  }
  // Per-rank PCIe bytes moved by the ragged offload path (kv_offload only).
  std::size_t offload_bytes(std::int64_t rank) const;

 private:
  struct Seq {
    std::vector<std::int32_t> tokens;
    std::int64_t prompt_len = 0;
    std::int64_t max_new = 0;
    std::int64_t generated = 0;
    // Prefill cursor (ISSUE 9): prompt tokens already resident in the KV
    // arena (prefix-cache match + chunks run so far). == prompt_len once
    // prefill is complete; advanced only after a fused step succeeds, so a
    // faulted step rewinds to a consistent cursor for free.
    std::int64_t prefill_pos = 0;
    std::int32_t next_tok = 0;  // sampled, not yet fed through the layers
    bool stopped = false;
  };
  const Seq& checked(std::int64_t slot) const;
  std::int32_t sample_row(std::span<const float> logits_row);
  // Lockstep publish of the slot's completed prompt pages into the shared
  // prefix cache, dropping published pages from the slot's private
  // commitment. Called after every successful prefill chunk — publish_prefix
  // only ever publishes fully written pages, so a chunk boundary landing
  // mid-page defers that page to the chunk that completes it.
  void publish_chunk(std::int64_t slot, std::span<const std::int32_t> prompt);
  // Applies one lifecycle op to every rank's shard (lockstep).
  std::int64_t acquire_all();
  void release_all(std::int64_t slot);
  void rewind_all(std::int64_t slot, std::int64_t len);
  // Runs the live tokens through the layer stack on the configured
  // substrate (single device or the TP rank group).
  void run_ragged(std::span<const std::int32_t> slots,
                  std::span<const std::int32_t> positions);
  // Host round-trip of every live slot's KV strips, per rank (kv_offload).
  void offload_cycle();
  // Bridges arena spill events (prefix-cache LRU eviction / re-fetch) to the
  // offload ledger and obs metrics.
  void on_spill(std::int64_t rank, std::size_t out, std::size_t in);
  // Publishes kv.* gauges/counters (pages in use, prefix hits, CoW splits)
  // after admissions and steps; delta-tracked so multiple decoders share the
  // registry counters.
  void publish_kv_metrics();
  // Speculative draft pass (ISSUE 10): for every slot in spec_slots_, runs
  // the draft lane forward to propose spec_k_eff_[i] - 1 tokens into
  // prop_toks_ (flat, prop_begin_[i] indexing). Stage 1 is one ragged step
  // that also catches the draft KV up to the target (lazy — a slot's draft
  // history is rebuilt from scratch after admission or a deep rewind);
  // stages 2..k-1 chain one row per still-proposing slot. Draft-lane only:
  // never touches the target arenas and never faults (resident, no comm).
  void propose_drafts();
  // Effective verify-window for a decode-ready slot this step: at least 2
  // in the spec path (slots that can only take 1 more token fall back to
  // the plain decode row).
  std::int64_t spec_k_eff(const Seq& s) const;

  InferenceEngine& eng_;
  std::int64_t slots_ = 0;
  SamplingOptions sampling_;
  Rng rng_;
  std::vector<kernels::KVArena> arenas_;  // one shard per virtual TP rank
  std::vector<Seq> seqs_;
  // Page-budget admission state (ISSUE 7): per-slot worst-case private-page
  // commitment and its running sum (see can_admit()).
  std::vector<std::int64_t> commit_;
  std::int64_t committed_pages_ = 0;
  std::int64_t prompt_tokens_ = 0;
  std::int64_t suffix_tokens_ = 0;  // see suffix_prefill_tokens()
  // Prefill/decode row counts of the most recent admit()/step().
  std::int64_t last_prefill_rows_ = 0;
  std::int64_t last_decode_rows_ = 0;
  // Last-published arena counter values (publish_kv_metrics deltas).
  std::int64_t pub_hits_ = 0, pub_hit_tokens_ = 0, pub_cow_ = 0,
               pub_prompt_tokens_ = 0;
  std::unique_ptr<zero::ArenaOffloadLedger> offload_;  // kv_offload only
  // Reused per-call buffers: the decode loop is allocation-free at steady
  // state.
  std::vector<float> x_;
  std::vector<float> xr_;  // ranks >= 1 activation replicas (TP only)
  std::vector<parallel::TpScratch> scratches_;
  std::vector<float> logits_;
  std::vector<std::int32_t> toks_, poss_, slot_ids_;
  // Mixed prefill+decode step() working state (ISSUE 9): participating
  // slots with their pre-step arena lengths (fault rewind is one rewind per
  // slot, not per row), the prefill rows each ran this iteration (0 for
  // decode rows; drives exact cursor advance under the global chunk
  // budget), and the rows whose logits feed sampling (each decode row plus
  // the final prompt row of any slot completing prefill).
  std::vector<std::int32_t> step_slots_, sample_slots_;
  std::vector<std::int64_t> step_pre_len_, step_prefill_rows_, sample_row_idx_;
  std::vector<float> last_;  // gathered sample-row activations

  // ---- Speculative decode lane (ISSUE 10) ----
  std::int64_t spec_k_ = 1;      // opts.spec_draft_tokens (1 = off)
  double spec_acceptance_ = -1;  // opts.spec_acceptance sim knob
  // Draft layers: copies of the target's first N resident layers, re-prepared
  // under draft_policy_ (optionally INT8). In knob mode (spec_acceptance_ in
  // [0,1]) the draft is instead a full-depth FP32 oracle twin — proposals
  // match target greedy exactly, then get deterministically corrupted to hit
  // the knob rate — while pricing keeps charging the configured lane.
  std::vector<kernels::LayerWeights> draft_layers_;
  kernels::KernelPolicy draft_policy_;
  // Single-rank full-width draft KV (strip layout; the draft lane never
  // pages or shards — it is private scratch, not serving state).
  std::unique_ptr<kernels::KVArena> draft_arena_;
  std::vector<std::int64_t> draft_len_;  // draft KV rows resident per slot
  // Per-slot Bresenham accumulator for the acceptance knob: each spec step
  // adds the geometric expected accepted count E = a + a^2 + ... +
  // a^(k_eff-1) and takes the integer part as that step's accepted-prefix
  // length, so the realized advance averages exactly spec_step_tokens() and
  // the fleet_sim DES twin — which runs the identical arithmetic — agrees
  // double-for-double (a per-draw stream would bias the leading proposal of
  // every step toward the stream's reject phase).
  std::vector<double> accept_acc_;
  // This step's knob-decided accepted-prefix length per spec slot
  // (proposals past it get corrupted; recomputed every propose pass).
  std::vector<std::int64_t> spec_keep_;
  // Per-step spec working state (reused; allocation-free at steady state).
  std::vector<std::int32_t> spec_slots_;   // spec-active slots this step
  std::vector<std::int64_t> spec_row0_;    // first verify-row index per slot
  std::vector<std::int64_t> spec_k_eff_;   // verify rows per slot
  std::vector<std::int32_t> prop_toks_;    // flat proposals, k_eff-1 per slot
  std::vector<std::int64_t> prop_begin_;   // per-slot offset into prop_toks_
  std::vector<std::int64_t> step_draft_pre_len_;  // CommFault draft rewind
  std::vector<double> step_acc_pre_;              // CommFault knob rewind
  // Draft-lane reused buffers.
  std::vector<float> dx_, dlast_, dlogits_;
  std::vector<std::int32_t> dtoks_, dposs_, dslot_ids_;
  // Lifetime spec ledger + last-step figure (see accessors).
  std::int64_t spec_proposed_ = 0, spec_accepted_ = 0, spec_rollback_ = 0;
  std::int64_t last_spec_tokens_ = 0;
  // Last-published spec counter values (publish_kv_metrics deltas).
  std::int64_t pub_spec_prop_ = 0, pub_spec_acc_ = 0, pub_spec_rb_ = 0;
};

// Byte-level token helpers for the examples (vocab must be >= 256).
std::vector<std::int32_t> byte_tokenize(const std::string& text);
std::string byte_detokenize(std::span<const std::int32_t> tokens);

}  // namespace dsinfer::core
