// Unified configuration API (ISSUE 5, api_redesign).
//
// The engine/server knobs historically sprawled across EngineOptions,
// ServerOptions, ResilienceOptions and VirtualServiceModel, each constructor
// policing its own slice with ad-hoc std::invalid_argument throws. EngineSpec
// and ServeSpec consolidate them: fluent setters build the configuration, a
// single validate() reports every violated constraint as a typed
// ConfigError, and the legacy option structs become thin views (options())
// consumed by the engine/server internals. The old constructors remain as
// deprecated shims that route through the specs, so existing call sites
// compile unchanged and still see std::invalid_argument on bad input.
//
//   core::EngineSpec spec(model::tiny_gpt());
//   spec.tensor_parallel(2).kv_offload(true).max_batch(8);
//   if (auto errs = spec.validate(); !errs.empty()) { /* typed reasons */ }
//   core::InferenceEngine engine(spec, /*seed=*/42);
//
//   core::ServeSpec serve(spec);
//   serve.scheduler(core::Scheduler::kContinuous).max_batch(4);
//   core::InferenceServer server(serve, /*seed=*/42);
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config_error.h"
#include "core/server.h"

namespace dsinfer::core {

// Speculative multi-token decoding block (ISSUE 10): the one-stop config for
// the draft-lane fast path. Attach to an EngineSpec with
// EngineSpec::spec_decode (or set the fields individually through the
// engine-level fluent setters). Validation (kBadSpecDecode, multi-error
// accumulation) happens in EngineSpec::validate()/ServeSpec::validate().
//
//   core::SpecDecodeSpec sd;
//   sd.draft_tokens(4).draft_layers(1).draft_int8(true);
//   spec.spec_decode(sd);
struct SpecDecodeSpec {
  // Verify rows per slot per fused step; 1 disables speculation. Valid
  // range [1, 8].
  std::int64_t draft_tokens_ = 1;
  // Draft-lane depth in target layers (0 = half the target, minimum 1).
  std::int64_t draft_layers_ = 0;
  // INT8-prepared draft lane (half the virtual draft cost).
  bool draft_int8_ = false;
  // Acceptance-rate sim knob in [0, 1]; -1 measures the real draft. See
  // EngineOptions::spec_acceptance for the oracle-twin contract.
  double acceptance_ = -1.0;

  SpecDecodeSpec& draft_tokens(std::int64_t k) {
    draft_tokens_ = k;
    return *this;
  }
  SpecDecodeSpec& draft_layers(std::int64_t n) {
    draft_layers_ = n;
    return *this;
  }
  SpecDecodeSpec& draft_int8(bool on) {
    draft_int8_ = on;
    return *this;
  }
  SpecDecodeSpec& acceptance(double a) {
    acceptance_ = a;
    return *this;
  }
};

class EngineSpec {
 public:
  explicit EngineSpec(model::DenseModelConfig cfg);

  // Fluent setters (return *this so configurations chain).
  EngineSpec& policy(const kernels::KernelPolicy& p);
  EngineSpec& tensor_parallel(std::int64_t tp);
  EngineSpec& stream_weights(bool on);
  EngineSpec& stream_window(std::int64_t layers);
  EngineSpec& stream_int8(bool on);
  EngineSpec& kv_offload(bool on);
  EngineSpec& max_batch(std::int64_t n);
  EngineSpec& max_seq(std::int64_t n);
  // Paged KV + prefix cache (ISSUE 7): see EngineOptions::kv_page_tokens.
  EngineSpec& kv_page_tokens(std::int64_t n);
  EngineSpec& kv_pages(std::int64_t n);
  EngineSpec& kv_prefix_cache(bool on);
  // Chunked prefill (ISSUE 9): see EngineOptions::prefill_chunk_tokens.
  EngineSpec& prefill_chunk_tokens(std::int64_t n);
  // Speculative decode (ISSUE 10): apply a whole SpecDecodeSpec block, or
  // set the individual knobs. See EngineOptions::spec_draft_tokens et al.
  EngineSpec& spec_decode(const SpecDecodeSpec& sd);
  EngineSpec& spec_draft_tokens(std::int64_t k);
  EngineSpec& spec_draft_layers(std::int64_t n);
  EngineSpec& spec_draft_int8(bool on);
  EngineSpec& spec_acceptance(double a);
  EngineSpec& fault_injector(util::FaultInjector* inj);
  EngineSpec& stream_max_retries(std::int64_t n);

  const model::DenseModelConfig& model() const { return cfg_; }
  // The thin view the engine internals consume.
  const EngineOptions& options() const { return opts_; }

  // Every violated constraint, in a stable order; empty means valid. Covers
  // each rejection the legacy InferenceEngine constructor threw, plus basic
  // limit sanity the old path deferred to first use.
  std::vector<ConfigError> validate() const;

  // Bridges the deprecated constructor shims onto the spec path.
  static EngineSpec from_options(const model::DenseModelConfig& cfg,
                                 const EngineOptions& opts);

 private:
  model::DenseModelConfig cfg_;
  EngineOptions opts_;
};

class ServeSpec {
 public:
  explicit ServeSpec(EngineSpec engine);

  ServeSpec& scheduler(Scheduler s);
  ServeSpec& max_batch(std::int64_t n);
  ServeSpec& batch_window_s(double s);
  ServeSpec& sampling(const SamplingOptions& s);
  ServeSpec& admission_control(bool on);
  ServeSpec& degrade_under_overload(bool on, double overload_queue_s = 0.0);
  ServeSpec& retries(std::int64_t max_retries, double backoff_s = 1e-3);
  ServeSpec& fault_injector(util::FaultInjector* inj,
                            const std::string& engine_site = "server.engine");
  ServeSpec& virtual_service(const VirtualServiceModel& vs);

  const EngineSpec& engine() const { return engine_; }
  const ServerOptions& options() const { return opts_; }

  // Engine errors first (a server is only as valid as its engine), then the
  // server-level constraints the legacy InferenceServer constructor threw,
  // then — for the continuous scheduler — the RaggedDecoder capability probe
  // at this spec's slot count.
  std::vector<ConfigError> validate() const;

  static ServeSpec from_options(const model::DenseModelConfig& cfg,
                                const ServerOptions& opts);

 private:
  EngineSpec engine_;
  ServerOptions opts_;
};

}  // namespace dsinfer::core
