// Unified configuration API (ISSUE 5, api_redesign).
//
// The engine/server knobs historically sprawled across EngineOptions,
// ServerOptions, ResilienceOptions and VirtualServiceModel, each constructor
// policing its own slice with ad-hoc std::invalid_argument throws. EngineSpec
// and ServeSpec consolidate them: fluent setters build the configuration, a
// single validate() reports every violated constraint as a typed
// ConfigError, and the legacy option structs become thin views (options())
// consumed by the engine/server internals. The old constructors remain as
// deprecated shims that route through the specs, so existing call sites
// compile unchanged and still see std::invalid_argument on bad input.
//
//   core::EngineSpec spec(model::tiny_gpt());
//   spec.tensor_parallel(2).kv_offload(true).max_batch(8);
//   if (auto errs = spec.validate(); !errs.empty()) { /* typed reasons */ }
//   core::InferenceEngine engine(spec, /*seed=*/42);
//
//   core::ServeSpec serve(spec);
//   serve.scheduler(core::Scheduler::kContinuous).max_batch(4);
//   core::InferenceServer server(serve, /*seed=*/42);
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config_error.h"
#include "core/server.h"

namespace dsinfer::core {

class EngineSpec {
 public:
  explicit EngineSpec(model::DenseModelConfig cfg);

  // Fluent setters (return *this so configurations chain).
  EngineSpec& policy(const kernels::KernelPolicy& p);
  EngineSpec& tensor_parallel(std::int64_t tp);
  EngineSpec& stream_weights(bool on);
  EngineSpec& stream_window(std::int64_t layers);
  EngineSpec& stream_int8(bool on);
  EngineSpec& kv_offload(bool on);
  EngineSpec& max_batch(std::int64_t n);
  EngineSpec& max_seq(std::int64_t n);
  // Paged KV + prefix cache (ISSUE 7): see EngineOptions::kv_page_tokens.
  EngineSpec& kv_page_tokens(std::int64_t n);
  EngineSpec& kv_pages(std::int64_t n);
  EngineSpec& kv_prefix_cache(bool on);
  // Chunked prefill (ISSUE 9): see EngineOptions::prefill_chunk_tokens.
  EngineSpec& prefill_chunk_tokens(std::int64_t n);
  EngineSpec& fault_injector(util::FaultInjector* inj);
  EngineSpec& stream_max_retries(std::int64_t n);

  const model::DenseModelConfig& model() const { return cfg_; }
  // The thin view the engine internals consume.
  const EngineOptions& options() const { return opts_; }

  // Every violated constraint, in a stable order; empty means valid. Covers
  // each rejection the legacy InferenceEngine constructor threw, plus basic
  // limit sanity the old path deferred to first use.
  std::vector<ConfigError> validate() const;

  // Bridges the deprecated constructor shims onto the spec path.
  static EngineSpec from_options(const model::DenseModelConfig& cfg,
                                 const EngineOptions& opts);

 private:
  model::DenseModelConfig cfg_;
  EngineOptions opts_;
};

class ServeSpec {
 public:
  explicit ServeSpec(EngineSpec engine);

  ServeSpec& scheduler(Scheduler s);
  ServeSpec& max_batch(std::int64_t n);
  ServeSpec& batch_window_s(double s);
  ServeSpec& sampling(const SamplingOptions& s);
  ServeSpec& admission_control(bool on);
  ServeSpec& degrade_under_overload(bool on, double overload_queue_s = 0.0);
  ServeSpec& retries(std::int64_t max_retries, double backoff_s = 1e-3);
  ServeSpec& fault_injector(util::FaultInjector* inj,
                            const std::string& engine_site = "server.engine");
  ServeSpec& virtual_service(const VirtualServiceModel& vs);

  const EngineSpec& engine() const { return engine_; }
  const ServerOptions& options() const { return opts_; }

  // Engine errors first (a server is only as valid as its engine), then the
  // server-level constraints the legacy InferenceServer constructor threw,
  // then — for the continuous scheduler — the RaggedDecoder capability probe
  // at this spec's slot count.
  std::vector<ConfigError> validate() const;

  static ServeSpec from_options(const model::DenseModelConfig& cfg,
                                const ServerOptions& opts);

 private:
  EngineSpec engine_;
  ServerOptions opts_;
};

}  // namespace dsinfer::core
