// Typed configuration diagnostics for the spec API (ISSUE 5).
//
// EngineSpec::validate() / ServeSpec::validate() return ConfigError values —
// one per violated constraint — instead of throwing on the first problem the
// way the legacy option-struct constructors did. The deprecated constructor
// shims translate the first error into a ConfigException, which still IS-A
// std::invalid_argument, so every pre-existing catch/EXPECT_THROW site keeps
// working unchanged.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>

namespace dsinfer::core {

struct ConfigError {
  enum class Code {
    kBadTensorParallel,            // tensor_parallel < 1
    kTpIndivisible,                // tp does not divide heads and ffn
    kStreamInt8NeedsStreaming,     // stream_int8 without stream_weights
    kStreamingWithTensorParallel,  // stream_weights with tp > 1
    kBadStreamWindow,              // stream_window < 1 while streaming
    kBadStreamRetries,             // stream_max_retries < 0
    kBadEngineLimit,               // engine max_batch/max_seq < 1
    kBadKvPaging,                  // kv_page_tokens outside [0, max_seq], or
                                   // kv_pages/kv_prefix_cache without paging
    kBadServeBatch,                // server max_batch outside [1, engine max]
    kNegativeBatchWindow,          // batch_window_s < 0
    kBadResilience,                // negative retries/backoff/overload queue
    kBadSlots,                     // decoder slots < 1
    // Fleet layer (ISSUE 6, fleet::FleetSpec::validate()).
    kBadReplicaCount,          // replicas outside [1, 256]
    kBadHedgeDelay,            // hedging with non-positive/NaN hedge delay
    kBadFailoverBudget,        // failover re-dispatch budget < 0
    kBadSloClass,              // bad per-class lane config (queue limit < 1,
                               // hedging on the batch lane, ...)
    kBadProbe,                 // probe interval <= 0, breaker threshold < 1,
                               // or negative breaker cooldown
    kBadAffinity,              // prefix-affinity policy with prefix < 1 token
    kFleetNeedsContinuous,     // fleet replicas require Scheduler::kContinuous
    kFleetNeedsVirtualService, // fleet replay requires the virtual service
                               // clock (enabled, positive prefill/per-token)
    // Speculative decode (ISSUE 10, SpecDecodeSpec): draft_tokens outside
    // [1, 8], draft_layers outside [0, model layers], acceptance knob outside
    // [0, 1] (or the -1 "measure the real draft" sentinel), speculation on a
    // streamed-weight engine (the draft lane shares the resident target
    // layers), on the window scheduler, or with non-greedy sampling
    // (exact-match acceptance is a greedy-path identity).
    kBadSpecDecode,
  };

  Code code = Code::kBadEngineLimit;
  std::string message;
};

// Thrown by the deprecated constructor shims (and the spec-based
// constructors) when validation fails; carries the first typed error.
class ConfigException : public std::invalid_argument {
 public:
  explicit ConfigException(ConfigError err)
      : std::invalid_argument(err.message), err_(std::move(err)) {}

  const ConfigError& error() const { return err_; }
  ConfigError::Code code() const { return err_.code; }

 private:
  ConfigError err_;
};

}  // namespace dsinfer::core
