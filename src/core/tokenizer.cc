#include "core/tokenizer.h"

#include <cstring>
#include <sstream>
#include <stdexcept>

namespace dsinfer::core {

namespace {

std::vector<std::int32_t> to_bytes(const std::string& text) {
  std::vector<std::int32_t> out;
  out.reserve(text.size());
  for (unsigned char c : text) out.push_back(static_cast<std::int32_t>(c));
  return out;
}

// Applies one merge everywhere in `seq`.
void apply_merge(std::vector<std::int32_t>& seq,
                 std::pair<std::int32_t, std::int32_t> pair,
                 std::int32_t merged) {
  std::size_t w = 0;
  for (std::size_t r = 0; r < seq.size();) {
    if (r + 1 < seq.size() && seq[r] == pair.first &&
        seq[r + 1] == pair.second) {
      seq[w++] = merged;
      r += 2;
    } else {
      seq[w++] = seq[r++];
    }
  }
  seq.resize(w);
}

}  // namespace

void BpeTokenizer::train(const std::string& corpus, std::int64_t vocab_size) {
  if (vocab_size < 256) {
    throw std::invalid_argument("BpeTokenizer: vocab_size must be >= 256");
  }
  merges_.clear();
  merge_ids_.clear();
  std::vector<std::int32_t> seq = to_bytes(corpus);
  const std::int64_t target_merges = vocab_size - 256;
  for (std::int64_t m = 0; m < target_merges; ++m) {
    // Count adjacent pairs.
    std::map<std::pair<std::int32_t, std::int32_t>, std::int64_t> counts;
    for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
      ++counts[{seq[i], seq[i + 1]}];
    }
    std::pair<std::int32_t, std::int32_t> best{-1, -1};
    std::int64_t best_count = 1;  // require a repeated pair
    for (const auto& [pair, count] : counts) {
      if (count > best_count) {
        best_count = count;
        best = pair;
      }
    }
    if (best.first < 0) break;  // nothing repeats; stop early
    const std::int32_t merged = 256 + static_cast<std::int32_t>(merges_.size());
    merges_.push_back(best);
    apply_merge(seq, best, merged);
  }
  rebuild_index();
}

void BpeTokenizer::rebuild_index() {
  merge_ids_.clear();
  for (std::size_t i = 0; i < merges_.size(); ++i) {
    merge_ids_[merges_[i]] = 256 + static_cast<std::int32_t>(i);
  }
}

std::vector<std::int32_t> BpeTokenizer::encode(const std::string& text) const {
  std::vector<std::int32_t> seq = to_bytes(text);
  // Apply merges in learned priority order: repeatedly merge the
  // lowest-ranked applicable pair (standard BPE encode).
  while (seq.size() >= 2) {
    std::int32_t best_rank = -1;
    for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
      auto it = merge_ids_.find({seq[i], seq[i + 1]});
      if (it != merge_ids_.end() &&
          (best_rank < 0 || it->second < best_rank)) {
        best_rank = it->second;
      }
    }
    if (best_rank < 0) break;
    apply_merge(seq, merges_[static_cast<std::size_t>(best_rank - 256)],
                best_rank);
  }
  return seq;
}

std::string BpeTokenizer::decode(const std::vector<std::int32_t>& tokens) const {
  std::string out;
  // Expand each token recursively into bytes.
  std::vector<std::int32_t> stack;
  for (std::int32_t t : tokens) {
    stack.push_back(t);
    while (!stack.empty()) {
      const std::int32_t id = stack.back();
      stack.pop_back();
      if (id < 0 || id >= vocab_size()) {
        throw std::out_of_range("BpeTokenizer::decode: token out of range");
      }
      if (id < 256) {
        out.push_back(static_cast<char>(static_cast<unsigned char>(id)));
      } else {
        const auto& pair = merges_[static_cast<std::size_t>(id - 256)];
        stack.push_back(pair.second);  // reversed: stack pops first first
        stack.push_back(pair.first);
      }
    }
  }
  return out;
}

std::string BpeTokenizer::serialize() const {
  std::ostringstream os;
  os << "bpe1 " << merges_.size();
  for (const auto& [a, b] : merges_) os << ' ' << a << ' ' << b;
  return os.str();
}

BpeTokenizer BpeTokenizer::deserialize(const std::string& blob) {
  std::istringstream is(blob);
  std::string magic;
  std::size_t n = 0;
  if (!(is >> magic >> n) || magic != "bpe1") {
    throw std::invalid_argument("BpeTokenizer: bad serialization header");
  }
  BpeTokenizer t;
  t.merges_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::int32_t a = 0, b = 0;
    if (!(is >> a >> b)) {
      throw std::invalid_argument("BpeTokenizer: truncated serialization");
    }
    t.merges_.emplace_back(a, b);
  }
  t.rebuild_index();
  return t;
}

}  // namespace dsinfer::core
