// Iteration-level (continuous) batching scheduler — the ISSUE 4 tentpole.
//
// Where the window batcher forms rigid same-length batches and holds every
// member until the batch max decodes, ContinuousBatcher runs a RaggedDecoder
// over a shared KV arena and makes scheduling decisions between decode
// iterations: arrivals are admitted into free slots the moment the virtual
// clock passes their arrival, sequences of different prompt lengths and
// budgets advance together, and each retires (freeing its slot) the instant
// it hits its stop token or token budget. No batch-wide max_new, no padding,
// no head-of-line blocking on shape.
//
// The resilience machinery matches the window path: admission-control shed,
// degrade-under-overload (late-queued arrivals route to an INT8 decoder with
// half the slots), and engine-fault retry with exponential virtual backoff.
// Time follows the server convention — virtual arrivals/queueing, service
// priced by VirtualServiceModel when enabled (prefill_s per admission,
// per_token_s per decode iteration) or measured with a stopwatch otherwise.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/inference_engine.h"
#include "core/server.h"

namespace dsinfer::core {

class ContinuousBatcher {
 public:
  // `degraded` lazily supplies the degraded-fidelity engine; it is invoked
  // at most once, the first time an arrival is routed to the overload path.
  // `estimate_s(prompt_tokens, new_tokens, degraded, prefix_hit_tokens)`
  // predicts service time for admission control (the server's EWMA/virtual
  // estimator) — prompt-aware since ISSUE 9, with `prefix_hit_tokens`
  // prompt tokens already resident in the target lane's prefix cache
  // discounted from the prefill term.
  ContinuousBatcher(
      InferenceEngine& primary, std::function<InferenceEngine&()> degraded,
      const ServerOptions& opts,
      std::function<double(std::int64_t, std::int64_t, bool, std::int64_t)>
          estimate_s,
      std::uint64_t seed);
  ~ContinuousBatcher();

  // Replays `requests` on the virtual clock. `order` holds indices into
  // `requests` sorted by arrival (FIFO admission follows it); requests are
  // pre-validated by the caller. Fills stats (indexed like `requests`) and
  // counters.
  void run(const std::vector<TimedRequest>& requests,
           const std::vector<std::size_t>& order,
           std::vector<RequestStats>& stats, ServingCounters& counters);

 private:
  // One decoder lane (primary or degraded) plus the bookkeeping tying arena
  // slots back to trace requests.
  struct Lane;

  InferenceEngine& primary_;
  std::function<InferenceEngine&()> degraded_factory_;
  const ServerOptions& opts_;
  std::function<double(std::int64_t, std::int64_t, bool, std::int64_t)>
      estimate_s_;
  std::uint64_t seed_;
  std::unique_ptr<Lane> primary_lane_;
  std::unique_ptr<Lane> degraded_lane_;  // built on first overload routing
};

}  // namespace dsinfer::core
