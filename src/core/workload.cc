#include "core/workload.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"
#include "util/stats.h"

namespace dsinfer::core {

std::vector<TimedRequest> generate_poisson_trace(const WorkloadSpec& spec) {
  if (spec.arrival_rate_hz <= 0 || spec.duration_s <= 0 ||
      spec.prompt_lengths.empty() || spec.min_new_tokens < 1 ||
      spec.max_new_tokens < spec.min_new_tokens || spec.vocab < 1) {
    throw std::invalid_argument("WorkloadSpec: invalid parameters");
  }
  Rng rng(spec.seed);
  std::vector<TimedRequest> trace;
  double t = 0;
  std::int64_t id = 0;
  for (;;) {
    // Exponential inter-arrival gap.
    const double u = std::max(1e-12f, rng.uniform(0.0f, 1.0f));
    t += -std::log(u) / spec.arrival_rate_hz;
    if (t >= spec.duration_s) break;
    TimedRequest r;
    r.id = id++;
    r.arrival_s = t;
    const auto len = spec.prompt_lengths[static_cast<std::size_t>(rng.integer(
        0, static_cast<std::int64_t>(spec.prompt_lengths.size()) - 1))];
    r.prompt.resize(static_cast<std::size_t>(len));
    for (auto& tok : r.prompt) {
      tok = static_cast<std::int32_t>(rng.integer(0, spec.vocab - 1));
    }
    r.new_tokens = rng.integer(spec.min_new_tokens, spec.max_new_tokens);
    trace.push_back(std::move(r));
  }
  return trace;
}

ServingSummary summarize_serving(const std::vector<RequestStats>& stats) {
  ServingSummary s;
  s.requests = stats.size();
  if (stats.empty()) return s;
  std::vector<double> lat;
  lat.reserve(stats.size());
  double batch_sum = 0;
  double first_arrival = stats.front().arrival_s;
  double last_finish = 0;
  std::int64_t generated = 0;
  for (const auto& r : stats) {
    first_arrival = std::min(first_arrival, r.arrival_s);
    last_finish = std::max(last_finish, r.finish_s);
    if (!r.served()) continue;
    ++s.served;
    lat.push_back(r.latency_s());
    batch_sum += static_cast<double>(r.batch_size);
    generated += static_cast<std::int64_t>(r.tokens.size());
  }
  if (s.served == 0) return s;
  const Summary lsum = summarize(lat);
  s.mean_latency_s = lsum.mean;
  s.p50_latency_s = lsum.p50;
  s.p95_latency_s = lsum.p95;
  s.p99_latency_s = lsum.p99;
  s.mean_batch_size = batch_sum / static_cast<double>(s.served);
  const double makespan = std::max(1e-12, last_finish - first_arrival);
  s.tokens_per_s = static_cast<double>(generated) / makespan;
  s.served_per_s = static_cast<double>(s.served) / makespan;
  return s;
}

}  // namespace dsinfer::core
