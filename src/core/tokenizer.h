// Byte-level BPE tokenizer (the GPT family's input pipeline). Training
// learns greedy pair merges over a corpus; encoding applies them in learned
// order. Self-contained so the examples and the serving layer can run on
// real text without external vocabulary files.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dsinfer::core {

class BpeTokenizer {
 public:
  BpeTokenizer() = default;

  // Learns up to `vocab_size - 256` merges from `corpus` (the first 256 ids
  // are the raw bytes). Stops early if no pair repeats.
  void train(const std::string& corpus, std::int64_t vocab_size);

  std::vector<std::int32_t> encode(const std::string& text) const;
  std::string decode(const std::vector<std::int32_t>& tokens) const;

  std::int64_t vocab_size() const {
    return 256 + static_cast<std::int64_t>(merges_.size());
  }
  std::int64_t num_merges() const {
    return static_cast<std::int64_t>(merges_.size());
  }

  // Serialization (used by checkpoints).
  std::string serialize() const;
  static BpeTokenizer deserialize(const std::string& blob);

 private:
  // merge i combines pair merges_[i] into token id 256 + i.
  std::vector<std::pair<std::int32_t, std::int32_t>> merges_;
  // Learned pair -> merged id, for O(1) lookup during encoding.
  std::map<std::pair<std::int32_t, std::int32_t>, std::int32_t> merge_ids_;

  void rebuild_index();
};

}  // namespace dsinfer::core
