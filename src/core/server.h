// A deterministic batching front-end over InferenceEngine — the production
// framing of the paper's introduction: latency-critical requests arrive on
// their own schedule, and the server trades queueing delay for batch size
// (throughput) under a configurable batching window.
//
// Time is virtual for arrivals/queueing and measured for service: the trace
// replay advances a virtual clock, so latency accounting is reproducible up
// to the machine's actual compute speed. Enabling VirtualServiceModel makes
// service time virtual too, so a whole trace replay (including chaos runs)
// is bit-deterministic.
//
// Resilience (ISSUE 1): requests carry deadlines; the batcher can shed load
// whose predicted completion would miss its deadline (admission control),
// retries engine faults with exponential virtual backoff, and under overload
// degrades gracefully — smaller batches on an INT8 engine — marking the
// affected responses. RequestStats and ServingCounters report timeouts,
// retries, sheds, and degradations so benches can plot goodput/SLA curves.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/inference_engine.h"
#include "obs/attribution.h"

namespace dsinfer::core {

// Typed rejection for malformed trace entries (satellite: hardened
// validation — every malformed field maps to a distinct reason).
class BadRequestError : public std::invalid_argument {
 public:
  enum class Reason {
    kEmptyPrompt,
    kNonPositiveNewTokens,
    kBadArrival,   // NaN or negative
    kBadDeadline,  // NaN, or earlier than the arrival
  };

  BadRequestError(Reason reason, std::int64_t id, const std::string& what)
      : std::invalid_argument(what), reason_(reason), id_(id) {}

  Reason reason() const { return reason_; }
  std::int64_t id() const { return id_; }

 private:
  Reason reason_;
  std::int64_t id_;
};

// Resilient-serving knobs. All time quantities are virtual seconds.
struct ResilienceOptions {
  // Shed a request (never run it) when its predicted finish, using the
  // current service-time estimate, already misses its deadline.
  bool admission_control = false;
  // Under overload (head-of-line queue delay > overload_queue_s), serve the
  // batch on the degraded engine (INT8 kernels, half-size batches) and mark
  // responses kDegraded.
  bool degrade_under_overload = false;
  double overload_queue_s = 0.0;
  // Engine-fault handling: retries per batch with exponential backoff
  // (retry_backoff_s * 2^attempt of virtual latency per retry).
  std::int64_t max_retries = 2;
  double retry_backoff_s = 1e-3;
  // Chaos hook: each engine invocation attempt draws should_fail() from
  // `engine_site`. No injector = no faults.
  util::FaultInjector* injector = nullptr;
  std::string engine_site = "server.engine";
};

// Deterministic stand-in for measured service time: a batch serving
// `new_tokens` decode steps costs base_s + per_token_s * new_tokens,
// scaled by degraded_factor on the degraded path. Makes whole-trace replay
// (latency fields included) bit-reproducible, which chaos tests and the
// resilience sweep rely on.
struct VirtualServiceModel {
  bool enabled = false;
  double base_s = 0.01;
  double per_token_s = 1e-3;
  double degraded_factor = 0.5;  // INT8/small-batch path speedup
  // Continuous scheduler: virtual cost of one prefill (admission). Priced as
  // roughly one decode iteration, not base_s — base_s models the per-
  // invocation overhead of standing a window batch up, which the always-hot
  // continuous engine does not pay per request.
  double prefill_s = 1e-3;
  // Per-prompt-token prefill cost (ISSUE 9). 0 keeps the legacy flat-cost
  // model (prefill priced independent of prompt length). > 0 makes long
  // prompts cost proportionally more: the admission estimators charge it
  // serially on the suffix past any resident prefix-cache hit, and the
  // continuous batcher charges it per chunk actually run. A fused
  // prefill+decode iteration prices at max(prefill part, per_token_s) —
  // the one-token decode rows are memory-bound, so a bounded prompt chunk
  // rides the iteration's idle compute; monolithic prefill runs inside
  // admit() with nothing to overlap and always pays its full serial price.
  double prefill_token_s = 0.0;
};

// Which batch-formation policy run_trace uses (ISSUE 4).
//  * kWindow — classic head-of-line window batching: same-prompt-length
//    requests group behind the head, the whole batch decodes to the batch
//    max and members are truncated to their ask.
//  * kContinuous — iteration-level scheduling over a shared KV arena:
//    arrivals are admitted between decode steps, sequences of any prompt
//    length coexist, and each retires the moment it hits its budget or stop
//    token (RaggedDecoder + ContinuousBatcher).
enum class Scheduler { kWindow, kContinuous };

struct ServerOptions {
  EngineOptions engine;
  Scheduler scheduler = Scheduler::kWindow;
  // kWindow: requests per engine invocation. kContinuous: concurrent KV
  // arena slots. Same knob so the two schedulers compare at equal resources.
  std::int64_t max_batch = 8;
  double batch_window_s = 0.0;  // kWindow: wait this long (virtual) to fill
  // Applied to every request (notably stop_token for early termination).
  SamplingOptions sampling;
  ResilienceOptions resilience;
  VirtualServiceModel virtual_service;
  // Bench/diagnostic hook (ISSUE 9): when set, the continuous batcher
  // appends the clock interval between consecutive decode-bearing
  // iterations of the primary lane. A monolithic long-prompt admit shows up
  // as one giant interval (the decode-tail stall chunked prefill removes);
  // serving_latency gates its p99. Not part of validation; ignored by the
  // window scheduler.
  std::vector<double>* decode_interval_sink = nullptr;
};

inline constexpr double kNoDeadline = std::numeric_limits<double>::infinity();

// Per-tenant service class (ISSUE 6, fleet layer). Latency-sensitive
// requests ride the full-fidelity lane (and are eligible for hedging at the
// fleet router); batch requests ride the degraded INT8 half-capacity lane —
// the same lane the overload path falls back to — trading fidelity and tail
// latency for capacity.
enum class SloClass { kLatency, kBatch };

struct TimedRequest {
  std::int64_t id = 0;
  std::vector<std::int32_t> prompt;
  std::int64_t new_tokens = 1;
  double arrival_s = 0;           // virtual arrival time
  double deadline_s = kNoDeadline;  // absolute virtual SLA bound on finish
  SloClass slo = SloClass::kLatency;
  std::int64_t tenant = 0;  // logical user/tenant id (routing affinity key)
};

struct RequestStats {
  enum class Outcome {
    kOk,        // served at full fidelity, deadline met (or none)
    kDegraded,  // served on the degraded path, deadline met (or none)
    kTimedOut,  // served, but finished past its deadline
    kShed,      // rejected by admission control; never ran
    kFailed,    // engine faults exhausted the retry budget
  };

  std::int64_t id = 0;
  // Prompt + generated tokens. Exactly prompt+new_tokens when the sequence
  // ran its full budget; shorter (truncated at the stop token, inclusive)
  // when it stopped early — never zero-padded (ISSUE 4 satellite).
  std::vector<std::int32_t> tokens;
  double arrival_s = 0;
  double start_s = 0;   // when its batch began service
  double finish_s = 0;  // when its batch completed
  double deadline_s = kNoDeadline;
  std::int64_t batch_size = 0;
  Outcome outcome = Outcome::kOk;
  // Human-readable rejection detail for kShed outcomes (ISSUE 7): the page
  // arithmetic behind a structural KV shed ("kv pages: need N of M"), empty
  // for deadline sheds and served requests.
  std::string shed_reason;
  std::int64_t retries = 0;  // engine-fault retries its batch absorbed
  bool degraded = false;     // served on the degraded path
  bool stopped = false;      // emitted the stop token before its budget
  // Tail-latency attribution ledger (ISSUE 8): phase durations summing to
  // latency_s() within obs::kTotalityEps on both schedulers (and, through
  // FleetRequestStats, on the fleet path).
  obs::PhaseBreakdown attr;

  double queue_delay_s() const { return start_s - arrival_s; }
  double latency_s() const { return finish_s - arrival_s; }
  bool deadline_met() const { return finish_s <= deadline_s; }
  bool served() const {
    return outcome != Outcome::kShed && outcome != Outcome::kFailed;
  }
};

// Aggregate chaos/overload accounting for one run_trace call.
struct ServingCounters {
  std::int64_t served = 0;         // requests that produced tokens
  std::int64_t timeouts = 0;       // served but past deadline
  std::int64_t sheds = 0;          // rejected by admission control
  std::int64_t degradations = 0;   // served on the degraded path
  std::int64_t failures = 0;       // retry budget exhausted
  std::int64_t engine_faults = 0;  // injected faults observed
  std::int64_t retries = 0;        // engine retries performed
};

class ServeSpec;  // core/engine_spec.h — the validated configuration API

class InferenceServer {
 public:
  // Primary: build the configuration through core::ServeSpec (fluent
  // setters + typed validate()). Throws ConfigException if validation fails
  // — engine-level violations surface first (from the engine's own
  // construction), then server-level ones.
  explicit InferenceServer(const ServeSpec& spec, std::uint64_t seed = 0x5eed);

  // Deprecated shim: prefer InferenceServer(ServeSpec). One-line forward
  // through ServeSpec::from_options — all validation lives on the primary
  // constructor (ISSUE 10 retired the shim's duplicated checks).
  InferenceServer(const model::DenseModelConfig& cfg, ServerOptions opts,
                  std::uint64_t seed = 0x5eed);

  // Replays a request trace through the batcher. Requests are served FIFO;
  // a batch groups up-to-max_batch queued requests with the same prompt
  // length whose arrivals fall within the batching window of the head
  // request. Greedy decoding. Results are returned in input order.
  std::vector<RequestStats> run_trace(std::vector<TimedRequest> requests);

  InferenceEngine& engine() { return engine_; }
  // Counters from the most recent run_trace (reset at each call).
  const ServingCounters& counters() const { return counters_; }

  // Predicted service time for a request: a prefill term — per-prompt-token,
  // discounted by `prefix_hit_tokens` prompt tokens already resident in the
  // prefix cache (they will not be prefilled) — plus a per-decode-token term.
  // Virtual mode reads the service model; measured mode blends per-term
  // EWMAs so the estimate scales with the request's ask. Speculative decode
  // (ISSUE 10) rescales the virtual per-token term by
  // max(1, draft cost factor) / modeled tokens-per-step: the fused verify
  // iteration costs the max of the verify and draft lanes but advances
  // multiple tokens, so acceptance-aware admission prices the *effective*
  // per-token rate. Measured mode needs no rescale — the EWMA already
  // observes the sped-up steps. Public so tests can assert the scaling.
  // (The decode-only two-argument form is retired: ISSUE 9 showed pricing
  // that ignores the prompt admits long-prompt requests into certain
  // deadline misses; `tests/deprecation_lint.cmake` keeps it dead.)
  double estimate_service_s(std::int64_t prompt_tokens,
                            std::int64_t new_tokens, bool degraded,
                            std::int64_t prefix_hit_tokens) const;

 private:
  // Lazily built INT8 twin of the primary engine (same seed => same
  // weights); the graceful-degradation path serves on it.
  InferenceEngine& degraded_engine();
  // Folds one measured batch invocation into the EWMA estimator.
  void observe_service(double base_s, double per_token_s,
                       double prefill_token_s);

  std::vector<RequestStats> run_window(
      const std::vector<TimedRequest>& requests,
      const std::vector<std::size_t>& order);
  std::vector<RequestStats> run_continuous(
      const std::vector<TimedRequest>& requests,
      const std::vector<std::size_t>& order);

  model::DenseModelConfig cfg_;
  ServerOptions opts_;
  std::uint64_t seed_;
  InferenceEngine engine_;
  std::unique_ptr<InferenceEngine> degraded_;
  ServingCounters counters_;
  // Measured-mode service estimator: fixed cost per invocation plus cost per
  // decode step, each tracked as its own EWMA (0 until first observation).
  // ISSUE 9 adds a per-prompt-token EWMA so long prompts price their
  // prefill; it leans conservative (the base EWMA already absorbs one
  // observed prompt's prefill), which is the safe direction for admission.
  double ewma_base_s_ = 0;
  double ewma_per_token_s_ = 0;
  double ewma_prefill_token_s_ = 0;
};

}  // namespace dsinfer::core
