// A deterministic batching front-end over InferenceEngine — the production
// framing of the paper's introduction: latency-critical requests arrive on
// their own schedule, and the server trades queueing delay for batch size
// (throughput) under a configurable batching window.
//
// Time is virtual for arrivals/queueing and measured for service: the trace
// replay advances a virtual clock, so latency accounting is reproducible up
// to the machine's actual compute speed.
#pragma once

#include <cstdint>
#include <vector>

#include "core/inference_engine.h"

namespace dsinfer::core {

struct ServerOptions {
  EngineOptions engine;
  std::int64_t max_batch = 8;   // requests per engine invocation
  double batch_window_s = 0.0;  // wait this long (virtual) to fill a batch
};

struct TimedRequest {
  std::int64_t id = 0;
  std::vector<std::int32_t> prompt;
  std::int64_t new_tokens = 1;
  double arrival_s = 0;  // virtual arrival time
};

struct RequestStats {
  std::int64_t id = 0;
  std::vector<std::int32_t> tokens;  // prompt + exactly new_tokens generated
  double arrival_s = 0;
  double start_s = 0;   // when its batch began service
  double finish_s = 0;  // when its batch completed
  std::int64_t batch_size = 0;

  double queue_delay_s() const { return start_s - arrival_s; }
  double latency_s() const { return finish_s - arrival_s; }
};

class InferenceServer {
 public:
  InferenceServer(const model::DenseModelConfig& cfg, ServerOptions opts,
                  std::uint64_t seed = 0x5eed);

  // Replays a request trace through the batcher. Requests are served FIFO;
  // a batch groups up-to-max_batch queued requests with the same prompt
  // length whose arrivals fall within the batching window of the head
  // request. Greedy decoding. Results are returned in input order.
  std::vector<RequestStats> run_trace(std::vector<TimedRequest> requests);

  InferenceEngine& engine() { return engine_; }

 private:
  ServerOptions opts_;
  InferenceEngine engine_;
};

}  // namespace dsinfer::core
