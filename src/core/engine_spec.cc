#include "core/engine_spec.h"

#include <utility>

namespace dsinfer::core {

namespace {

void add(std::vector<ConfigError>& errs, ConfigError::Code code,
         std::string message) {
  errs.push_back(ConfigError{code, std::move(message)});
}

}  // namespace

EngineSpec::EngineSpec(model::DenseModelConfig cfg) : cfg_(std::move(cfg)) {}

EngineSpec& EngineSpec::policy(const kernels::KernelPolicy& p) {
  opts_.policy = p;
  return *this;
}
EngineSpec& EngineSpec::tensor_parallel(std::int64_t tp) {
  opts_.tensor_parallel = tp;
  return *this;
}
EngineSpec& EngineSpec::stream_weights(bool on) {
  opts_.stream_weights = on;
  return *this;
}
EngineSpec& EngineSpec::stream_window(std::int64_t layers) {
  opts_.stream_window = layers;
  return *this;
}
EngineSpec& EngineSpec::stream_int8(bool on) {
  opts_.stream_int8 = on;
  return *this;
}
EngineSpec& EngineSpec::kv_offload(bool on) {
  opts_.kv_offload = on;
  return *this;
}
EngineSpec& EngineSpec::max_batch(std::int64_t n) {
  opts_.max_batch = n;
  return *this;
}
EngineSpec& EngineSpec::max_seq(std::int64_t n) {
  opts_.max_seq = n;
  return *this;
}
EngineSpec& EngineSpec::kv_page_tokens(std::int64_t n) {
  opts_.kv_page_tokens = n;
  return *this;
}
EngineSpec& EngineSpec::kv_pages(std::int64_t n) {
  opts_.kv_pages = n;
  return *this;
}
EngineSpec& EngineSpec::kv_prefix_cache(bool on) {
  opts_.kv_prefix_cache = on;
  return *this;
}
EngineSpec& EngineSpec::prefill_chunk_tokens(std::int64_t n) {
  opts_.prefill_chunk_tokens = n;
  return *this;
}
EngineSpec& EngineSpec::spec_decode(const SpecDecodeSpec& sd) {
  opts_.spec_draft_tokens = sd.draft_tokens_;
  opts_.spec_draft_layers = sd.draft_layers_;
  opts_.spec_draft_int8 = sd.draft_int8_;
  opts_.spec_acceptance = sd.acceptance_;
  return *this;
}
EngineSpec& EngineSpec::spec_draft_tokens(std::int64_t k) {
  opts_.spec_draft_tokens = k;
  return *this;
}
EngineSpec& EngineSpec::spec_draft_layers(std::int64_t n) {
  opts_.spec_draft_layers = n;
  return *this;
}
EngineSpec& EngineSpec::spec_draft_int8(bool on) {
  opts_.spec_draft_int8 = on;
  return *this;
}
EngineSpec& EngineSpec::spec_acceptance(double a) {
  opts_.spec_acceptance = a;
  return *this;
}
EngineSpec& EngineSpec::fault_injector(util::FaultInjector* inj) {
  opts_.fault_injector = inj;
  return *this;
}
EngineSpec& EngineSpec::stream_max_retries(std::int64_t n) {
  opts_.stream_max_retries = n;
  return *this;
}

std::vector<ConfigError> EngineSpec::validate() const {
  std::vector<ConfigError> errs;
  if (opts_.tensor_parallel < 1) {
    add(errs, ConfigError::Code::kBadTensorParallel,
        "EngineSpec: tensor_parallel must be >= 1");
  } else if (opts_.tensor_parallel > 1 &&
             (cfg_.heads % opts_.tensor_parallel != 0 ||
              cfg_.ffn() % opts_.tensor_parallel != 0)) {
    add(errs, ConfigError::Code::kTpIndivisible,
        "EngineSpec: tensor_parallel must divide heads and ffn");
  }
  if (opts_.stream_int8 && !opts_.stream_weights) {
    add(errs, ConfigError::Code::kStreamInt8NeedsStreaming,
        "EngineSpec: stream_int8 requires stream_weights");
  }
  if (opts_.stream_weights && opts_.tensor_parallel > 1) {
    add(errs, ConfigError::Code::kStreamingWithTensorParallel,
        "EngineSpec: weight streaming and tensor parallelism are mutually "
        "exclusive (ZeRO-Inference scales data-parallel; see DESIGN.md)");
  }
  if (opts_.stream_weights && opts_.stream_window < 1) {
    add(errs, ConfigError::Code::kBadStreamWindow,
        "EngineSpec: stream_window must be >= 1 when streaming");
  }
  if (opts_.stream_max_retries < 0) {
    add(errs, ConfigError::Code::kBadStreamRetries,
        "EngineSpec: stream_max_retries must be >= 0");
  }
  if (opts_.max_batch < 1 || opts_.max_seq < 1) {
    add(errs, ConfigError::Code::kBadEngineLimit,
        "EngineSpec: max_batch and max_seq must be >= 1");
  }
  if (opts_.kv_page_tokens < 0 || opts_.kv_pages < 0 ||
      (opts_.max_seq >= 1 && opts_.kv_page_tokens > opts_.max_seq)) {
    add(errs, ConfigError::Code::kBadKvPaging,
        "EngineSpec: kv_page_tokens must be in [0, max_seq] and kv_pages "
        ">= 0");
  } else if ((opts_.kv_pages > 0 || opts_.kv_prefix_cache) &&
             opts_.kv_page_tokens == 0) {
    add(errs, ConfigError::Code::kBadKvPaging,
        "EngineSpec: kv_pages and kv_prefix_cache require paging "
        "(kv_page_tokens > 0)");
  }
  // Chunked prefill (ISSUE 9): 0 = monolithic; a positive chunk bounds the
  // prompt tokens any single fused iteration may prefill. Works on every
  // substrate and KV layout, so the only constraint is the sign.
  if (opts_.prefill_chunk_tokens < 0) {
    add(errs, ConfigError::Code::kBadEngineLimit,
        "EngineSpec: prefill_chunk_tokens must be >= 0 (0 = monolithic)");
  }
  // Speculative decode (ISSUE 10): every violated SpecDecodeSpec constraint
  // accumulates — each is an independently fixable knob.
  if (opts_.spec_draft_tokens < 1 || opts_.spec_draft_tokens > 8) {
    add(errs, ConfigError::Code::kBadSpecDecode,
        "EngineSpec: spec_draft_tokens must be in [1, 8] (1 = off)");
  }
  if (opts_.spec_draft_layers < 0 || opts_.spec_draft_layers > cfg_.layers) {
    add(errs, ConfigError::Code::kBadSpecDecode,
        "EngineSpec: spec_draft_layers must be in [0, model layers] "
        "(0 = half the target)");
  }
  if (opts_.spec_acceptance >= 0 ? opts_.spec_acceptance > 1.0
                                 : opts_.spec_acceptance != -1.0) {
    add(errs, ConfigError::Code::kBadSpecDecode,
        "EngineSpec: spec_acceptance must be in [0, 1] or the -1 \"measure "
        "the real draft\" sentinel");
  }
  if (opts_.spec_draft_tokens > 1 && opts_.stream_weights) {
    add(errs, ConfigError::Code::kBadSpecDecode,
        "EngineSpec: speculative decode requires resident weights (the "
        "draft lane shares the target's resident layers; stream_weights "
        "keeps none)");
  }
  return errs;
}

EngineSpec EngineSpec::from_options(const model::DenseModelConfig& cfg,
                                    const EngineOptions& opts) {
  EngineSpec spec(cfg);
  spec.opts_ = opts;
  return spec;
}

ServeSpec::ServeSpec(EngineSpec engine) : engine_(std::move(engine)) {
  opts_.engine = engine_.options();
}

ServeSpec& ServeSpec::scheduler(Scheduler s) {
  opts_.scheduler = s;
  return *this;
}
ServeSpec& ServeSpec::max_batch(std::int64_t n) {
  opts_.max_batch = n;
  return *this;
}
ServeSpec& ServeSpec::batch_window_s(double s) {
  opts_.batch_window_s = s;
  return *this;
}
ServeSpec& ServeSpec::sampling(const SamplingOptions& s) {
  opts_.sampling = s;
  return *this;
}
ServeSpec& ServeSpec::admission_control(bool on) {
  opts_.resilience.admission_control = on;
  return *this;
}
ServeSpec& ServeSpec::degrade_under_overload(bool on, double overload_queue_s) {
  opts_.resilience.degrade_under_overload = on;
  opts_.resilience.overload_queue_s = overload_queue_s;
  return *this;
}
ServeSpec& ServeSpec::retries(std::int64_t max_retries, double backoff_s) {
  opts_.resilience.max_retries = max_retries;
  opts_.resilience.retry_backoff_s = backoff_s;
  return *this;
}
ServeSpec& ServeSpec::fault_injector(util::FaultInjector* inj,
                                     const std::string& engine_site) {
  opts_.resilience.injector = inj;
  opts_.resilience.engine_site = engine_site;
  return *this;
}
ServeSpec& ServeSpec::virtual_service(const VirtualServiceModel& vs) {
  opts_.virtual_service = vs;
  return *this;
}

std::vector<ConfigError> ServeSpec::validate() const {
  std::vector<ConfigError> errs = engine_.validate();
  if (opts_.max_batch < 1 || opts_.max_batch > opts_.engine.max_batch) {
    add(errs, ConfigError::Code::kBadServeBatch,
        "ServeSpec: max_batch must be in [1, engine.max_batch]");
  }
  if (opts_.batch_window_s < 0) {
    add(errs, ConfigError::Code::kNegativeBatchWindow,
        "ServeSpec: negative batch window");
  }
  if (opts_.resilience.max_retries < 0 ||
      opts_.resilience.retry_backoff_s < 0 ||
      opts_.resilience.overload_queue_s < 0) {
    add(errs, ConfigError::Code::kBadResilience,
        "ServeSpec: bad resilience options");
  }
  // Speculative decode is a ragged-path feature: the window scheduler runs
  // the non-ragged generate() loop, where a spec config would silently do
  // nothing while the virtual clock claimed the speedup (ISSUE 10).
  if (opts_.engine.spec_draft_tokens > 1 &&
      opts_.scheduler != Scheduler::kContinuous) {
    add(errs, ConfigError::Code::kBadSpecDecode,
        "ServeSpec: speculative decode requires Scheduler::kContinuous (the "
        "window path has no ragged verify step)");
  }
  if (errs.empty() && opts_.scheduler == Scheduler::kContinuous) {
    // Probe the continuous substrate at this spec's slot count and sampling
    // mode; since ISSUE 5 the ragged path composes with TP and kv_offload,
    // so this only fires for genuinely unsupported combinations (ISSUE 10
    // adds speculation x non-greedy sampling).
    const auto caps = RaggedDecoder::Capabilities::supports(
        opts_.engine, opts_.max_batch, opts_.sampling);
    if (!caps.ok) errs.push_back(caps.reason);
  }
  return errs;
}

ServeSpec ServeSpec::from_options(const model::DenseModelConfig& cfg,
                                  const ServerOptions& opts) {
  ServeSpec spec(EngineSpec::from_options(cfg, opts.engine));
  spec.opts_ = opts;
  return spec;
}

RaggedDecoder::Capabilities RaggedDecoder::Capabilities::supports(
    const EngineSpec& spec, std::int64_t slots) {
  auto errs = spec.validate();
  if (!errs.empty()) return {false, std::move(errs.front())};
  return supports(spec.options(), slots);
}

}  // namespace dsinfer::core
