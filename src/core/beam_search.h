// Beam-search decoding on top of the KV-cached transformer.
//
// Each beam owns a full per-layer KV cache; when beams are re-ranked after a
// step, caches are forked via KVCache::export_state/import_state — the same
// snapshot machinery ZeRO's KV offloading uses. Length-normalized
// log-probability scoring, deterministic tie-breaking.
#pragma once

#include <cstdint>
#include <vector>

#include "core/gpt_model.h"
#include "kernels/kv_cache.h"
#include "model/model_config.h"

namespace dsinfer::core {

struct BeamSearchOptions {
  std::int64_t beams = 4;
  std::int64_t new_tokens = 8;
  // Score = sum(logprob) / length^length_penalty; 0 = raw log-prob.
  double length_penalty = 0.6;
};

struct BeamHypothesis {
  std::vector<std::int32_t> tokens;  // prompt + continuation
  double log_prob = 0;               // cumulative log P of the continuation
  double score = 0;                  // length-normalized
};

// Decodes a single prompt with beam search over `weights`. Returns
// hypotheses sorted by descending score (best first), one per beam.
std::vector<BeamHypothesis> beam_search(const GptWeights& weights,
                                        const std::vector<std::int32_t>& prompt,
                                        const BeamSearchOptions& opts);

}  // namespace dsinfer::core
