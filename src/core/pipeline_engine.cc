#include "core/pipeline_engine.h"

#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "obs/trace.h"
#include "parallel/pipeline_partition.h"
#include "util/stats.h"

namespace dsinfer::core {

namespace {

// A micro-batch's activations travelling between stages.
struct WorkItem {
  std::int64_t mb = -1;       // micro-batch index; -1 = shutdown sentinel
  std::int64_t step = 0;      // 0 = prompt, k = k-th generated token
  std::int64_t q_len = 0;     // tokens per sequence in this item
  std::vector<float> x;       // [mb_size * q_len, hidden]
};

class WorkQueue {
 public:
  void push(WorkItem item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

  WorkItem pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return !items_.empty(); });
    WorkItem item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

 private:
  std::deque<WorkItem> items_;
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace

PipelineEngine::PipelineEngine(const model::DenseModelConfig& cfg,
                               PipelineOptions opts, std::uint64_t seed)
    : opts_(opts), seed_(seed) {
  if (opts_.stages < 1 || opts_.microbatches < 1) {
    throw std::invalid_argument("PipelineOptions: stages/microbatches >= 1");
  }
  if (cfg.layers < opts_.stages) {
    throw std::invalid_argument("PipelineOptions: more stages than layers");
  }
  Rng rng(seed);
  weights_.init_random(rng, cfg);
  for (auto& l : weights_.layers) l.prepare(opts_.policy);
  stage_ranges_ = parallel::partition_layers(cfg.layers, opts_.stages);
}

GenerationResult PipelineEngine::generate(
    const std::vector<std::vector<std::int32_t>>& prompts,
    std::int64_t new_tokens, const SamplingOptions& sampling) {
  if (prompts.empty()) throw std::invalid_argument("generate: empty batch");
  const std::int64_t B = static_cast<std::int64_t>(prompts.size());
  const std::int64_t M = opts_.microbatches;
  if (B < M) {
    throw std::invalid_argument("generate: batch smaller than microbatches");
  }
  const std::size_t plen = prompts.front().size();
  for (const auto& p : prompts) {
    if (p.size() != plen || p.empty()) {
      throw std::invalid_argument("generate: prompts must be equal, non-empty");
    }
  }
  if (new_tokens < 1) throw std::invalid_argument("generate: new_tokens >= 1");
  const std::int64_t P = static_cast<std::int64_t>(plen);
  const std::int64_t total_len = P + new_tokens;
  if (total_len > opts_.max_seq || total_len > config().max_seq) {
    throw std::invalid_argument("generate: sequence exceeds max_seq");
  }
  const std::int64_t H = config().hidden;
  const std::int64_t V = config().vocab;
  const std::int64_t S = opts_.stages;

  // Micro-batch membership: contiguous slices of the batch.
  std::vector<std::int64_t> mb_begin(static_cast<std::size_t>(M + 1), 0);
  for (std::int64_t i = 0; i < M; ++i) {
    mb_begin[static_cast<std::size_t>(i + 1)] =
        mb_begin[static_cast<std::size_t>(i)] + B / M + (i < B % M ? 1 : 0);
  }
  auto mb_size = [&](std::int64_t mb) {
    return mb_begin[static_cast<std::size_t>(mb + 1)] -
           mb_begin[static_cast<std::size_t>(mb)];
  };

  GenerationResult res;
  res.tokens = prompts;
  Stopwatch sw;

  // Per-stage, per-microbatch, per-local-layer KV caches.
  std::vector<std::vector<std::vector<kernels::KVCache>>> caches(
      static_cast<std::size_t>(S));
  for (std::int64_t s = 0; s < S; ++s) {
    auto& per_stage = caches[static_cast<std::size_t>(s)];
    per_stage.resize(static_cast<std::size_t>(M));
    const auto [lb, le] = stage_ranges_[static_cast<std::size_t>(s)];
    for (std::int64_t mb = 0; mb < M; ++mb) {
      auto& per_mb = per_stage[static_cast<std::size_t>(mb)];
      for (std::int64_t l = lb; l < le; ++l) {
        per_mb.emplace_back(mb_size(mb), config().heads, config().head_dim(),
                            total_len);
      }
    }
  }

  std::vector<WorkQueue> queues(static_cast<std::size_t>(S));
  std::mutex result_mu;
  double prompt_finish = 0;
  std::int64_t prompts_done = 0;

  // Worker threads: stages 0..S-1. The last stage also runs the LM head,
  // samples, and re-enqueues the next token step (the Fig. 2(b) feedback
  // edge). Greedy sampling is order-independent, so per-micro-batch RNGs
  // seeded by (seed, mb) keep top-k runs deterministic too.
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(S));
  for (std::int64_t s = 0; s < S; ++s) {
    workers.emplace_back([&, s] {
      if (obs::trace_enabled()) {
        obs::TraceRecorder::instance().set_thread_name(
            "pipe-stage-" + std::to_string(s));
      }
      kernels::LayerScratch scratch;
      const auto [lb, le] = stage_ranges_[static_cast<std::size_t>(s)];
      Rng rng(seed_ ^ 0xF00DULL);
      while (true) {
        WorkItem item = queues[static_cast<std::size_t>(s)].pop();
        if (item.mb < 0) break;  // sentinel
        obs::TraceScope item_scope(
            "pipeline",
            obs::trace_enabled()
                ? "mb" + std::to_string(item.mb) + " step" +
                      std::to_string(item.step)
                : std::string());
        const std::int64_t rows = mb_size(item.mb) * item.q_len;
        auto& layer_caches =
            caches[static_cast<std::size_t>(s)][static_cast<std::size_t>(item.mb)];
        for (std::int64_t l = lb; l < le; ++l) {
          kernels::transformer_layer_forward(
              weights_.layers[static_cast<std::size_t>(l)],
              layer_caches[static_cast<std::size_t>(l - lb)],
              std::span<float>(item.x.data(),
                               static_cast<std::size_t>(rows * H)),
              mb_size(item.mb), item.q_len, opts_.policy, scratch);
        }
        if (s + 1 < S) {
          queues[static_cast<std::size_t>(s + 1)].push(std::move(item));
          continue;
        }

        // ---- Last stage: head + sampling + feedback. ----
        const std::int64_t bsz = mb_size(item.mb);
        std::vector<float> last(static_cast<std::size_t>(bsz * H));
        for (std::int64_t b = 0; b < bsz; ++b) {
          const float* src =
              item.x.data() + ((b * item.q_len) + item.q_len - 1) * H;
          std::memcpy(last.data() + b * H, src,
                      static_cast<std::size_t>(H) * sizeof(float));
        }
        std::vector<float> logits(static_cast<std::size_t>(bsz * V));
        weights_.lm_head(last, logits, bsz);
        std::vector<std::int32_t> toks(static_cast<std::size_t>(bsz));
        std::vector<std::int32_t> poss(static_cast<std::size_t>(bsz));
        {
          std::lock_guard<std::mutex> lock(result_mu);
          for (std::int64_t b = 0; b < bsz; ++b) {
            const std::int32_t tok = sample_token(
                std::span<const float>(logits).subspan(
                    static_cast<std::size_t>(b * V),
                    static_cast<std::size_t>(V)),
                sampling, rng);
            res.tokens[static_cast<std::size_t>(
                           mb_begin[static_cast<std::size_t>(item.mb)] + b)]
                .push_back(tok);
            toks[static_cast<std::size_t>(b)] = tok;
            poss[static_cast<std::size_t>(b)] =
                static_cast<std::int32_t>(P + item.step);
          }
          if (item.step == 0) {
            ++prompts_done;
            if (prompts_done == M) prompt_finish = sw.elapsed_s();
          }
        }
        if (item.step + 1 >= new_tokens) continue;  // micro-batch finished
        WorkItem next;
        next.mb = item.mb;
        next.step = item.step + 1;
        next.q_len = 1;
        next.x.resize(static_cast<std::size_t>(bsz * H));
        weights_.embed(toks, poss, next.x);
        queues[0].push(std::move(next));
      }
    });
  }

  // Enqueue the prompt phase.
  for (std::int64_t mb = 0; mb < M; ++mb) {
    WorkItem item;
    item.mb = mb;
    item.step = 0;
    item.q_len = P;
    const std::int64_t bsz = mb_size(mb);
    std::vector<std::int32_t> toks(static_cast<std::size_t>(bsz * P));
    std::vector<std::int32_t> poss(toks.size());
    for (std::int64_t b = 0; b < bsz; ++b) {
      for (std::int64_t t = 0; t < P; ++t) {
        toks[static_cast<std::size_t>(b * P + t)] =
            prompts[static_cast<std::size_t>(
                mb_begin[static_cast<std::size_t>(mb)] + b)]
                   [static_cast<std::size_t>(t)];
        poss[static_cast<std::size_t>(b * P + t)] =
            static_cast<std::int32_t>(t);
      }
    }
    item.x.resize(static_cast<std::size_t>(bsz * P * H));
    weights_.embed(toks, poss, item.x);
    queues[0].push(std::move(item));
  }

  // Wait for completion: every sequence must reach P + new_tokens tokens.
  // The workers run autonomously; poll the shared result under the lock.
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(result_mu);
      bool done = true;
      for (const auto& seq : res.tokens) {
        if (static_cast<std::int64_t>(seq.size()) < total_len) {
          done = false;
          break;
        }
      }
      if (done) break;
    }
    std::this_thread::yield();
  }
  for (std::int64_t s = 0; s < S; ++s) {
    WorkItem sentinel;
    sentinel.mb = -1;
    queues[static_cast<std::size_t>(s)].push(std::move(sentinel));
  }
  for (auto& w : workers) w.join();

  res.generated = B * new_tokens;
  res.seconds = sw.elapsed_s();
  res.prompt_seconds = prompt_finish;
  return res;
}

}  // namespace dsinfer::core
