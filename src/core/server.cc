#include "core/server.h"

#include <algorithm>
#include <stdexcept>

#include "util/stats.h"

namespace dsinfer::core {

InferenceServer::InferenceServer(const model::DenseModelConfig& cfg,
                                 ServerOptions opts, std::uint64_t seed)
    : opts_(opts), engine_(cfg, opts.engine, seed) {
  if (opts_.max_batch < 1 || opts_.max_batch > opts_.engine.max_batch) {
    throw std::invalid_argument(
        "ServerOptions: max_batch must be in [1, engine.max_batch]");
  }
  if (opts_.batch_window_s < 0) {
    throw std::invalid_argument("ServerOptions: negative batch window");
  }
}

std::vector<RequestStats> InferenceServer::run_trace(
    std::vector<TimedRequest> requests) {
  for (const auto& r : requests) {
    if (r.prompt.empty() || r.new_tokens < 1) {
      throw std::invalid_argument("run_trace: bad request " +
                                  std::to_string(r.id));
    }
  }
  // Serve in arrival order (stable for ties).
  std::vector<std::size_t> order(requests.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return requests[a].arrival_s < requests[b].arrival_s;
  });

  std::vector<RequestStats> stats(requests.size());
  std::vector<bool> served(requests.size(), false);
  double clock = 0;

  for (std::size_t head_pos = 0; head_pos < order.size(); ++head_pos) {
    const std::size_t head = order[head_pos];
    if (served[head]) continue;
    const auto& hr = requests[head];
    // Service cannot start before the head arrives; the batcher then waits
    // up to the window for same-shape requests.
    double start = std::max(clock, hr.arrival_s);
    const double cutoff = start + opts_.batch_window_s;

    std::vector<std::size_t> batch{head};
    for (std::size_t j = head_pos + 1;
         j < order.size() &&
         static_cast<std::int64_t>(batch.size()) < opts_.max_batch;
         ++j) {
      const std::size_t cand = order[j];
      if (served[cand]) continue;
      const auto& cr = requests[cand];
      if (cr.prompt.size() != hr.prompt.size()) continue;
      if (cr.arrival_s > cutoff) break;  // later arrivals are even later
      batch.push_back(cand);
      start = std::max(start, cr.arrival_s);
    }

    std::vector<std::vector<std::int32_t>> prompts;
    std::int64_t max_new = 0;
    for (std::size_t idx : batch) {
      prompts.push_back(requests[idx].prompt);
      max_new = std::max(max_new, requests[idx].new_tokens);
    }

    Stopwatch sw;
    auto result = engine_.generate(prompts, max_new);
    const double service_s = sw.elapsed_s();
    const double finish = start + service_s;

    for (std::size_t bi = 0; bi < batch.size(); ++bi) {
      const std::size_t idx = batch[bi];
      auto& st = stats[idx];
      st.id = requests[idx].id;
      st.arrival_s = requests[idx].arrival_s;
      st.start_s = start;
      st.finish_s = finish;
      st.batch_size = static_cast<std::int64_t>(batch.size());
      // Truncate over-generated tokens to the request's ask.
      st.tokens = result.tokens[bi];
      st.tokens.resize(requests[idx].prompt.size() +
                       static_cast<std::size_t>(requests[idx].new_tokens));
      served[idx] = true;
    }
    clock = finish;
  }
  return stats;
}

}  // namespace dsinfer::core
