#include "core/server.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "core/continuous_batcher.h"
#include "core/engine_spec.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/stats.h"

namespace dsinfer::core {

namespace {

// The serving timeline lives in the server's virtual clock domain
// (obs::kServerPid): track 0 is the batcher, track id + 1 is request `id`.
constexpr std::int64_t kBatcherTrack = 0;

std::int64_t request_track(std::int64_t id) { return id + 1; }

double to_us(double virtual_s) { return virtual_s * 1e6; }

}  // namespace

InferenceServer::InferenceServer(const ServeSpec& spec, std::uint64_t seed)
    : cfg_(spec.engine().model()), opts_(spec.options()), seed_(seed),
      engine_(spec.engine(), seed) {
  // Engine-level constraints already held (engine_ constructed above throws
  // first on those); validate() re-reports them plus the server-level ones
  // with typed codes, so the first server-level violation surfaces here.
  if (auto errs = spec.validate(); !errs.empty()) {
    throw ConfigException(std::move(errs.front()));
  }
}

// Deprecated shim — the only sanctioned spelling; everything routes through
// the ServeSpec primary above.
InferenceServer::InferenceServer(const model::DenseModelConfig& cfg,
                                 ServerOptions opts, std::uint64_t seed)
    : InferenceServer(ServeSpec::from_options(cfg, opts), seed) {}

InferenceEngine& InferenceServer::degraded_engine() {
  if (!degraded_) {
    // Same seed => identical weights; only the execution fidelity drops
    // (INT8 kernels, or INT8-streamed weights when the primary streams).
    EngineOptions d = opts_.engine;
    if (d.stream_weights) {
      d.stream_int8 = true;
    } else {
      d.policy.dtype = kernels::Dtype::kINT8;
      d.policy.gemm = kernels::GemmKind::kBlocked;
    }
    degraded_ = std::make_unique<InferenceEngine>(cfg_, d, seed_);
  }
  return *degraded_;
}

double InferenceServer::estimate_service_s(
    std::int64_t prompt_tokens, std::int64_t new_tokens, bool degraded,
    std::int64_t prefix_hit_tokens) const {
  // Prefill work is the suffix past the resident prefix-cache hit — matched
  // tokens are reused, not recomputed, so they must not be priced (ISSUE 9:
  // the old estimator ignored the prompt entirely; pricing the full prompt
  // would over-shed cache-warm requests instead).
  const std::int64_t suffix =
      std::max<std::int64_t>(0, prompt_tokens - prefix_hit_tokens);
  const auto& vs = opts_.virtual_service;
  if (vs.enabled) {
    // Speculative decode (ISSUE 10): a fused verify step costs
    // max(verify lane, draft lane) = per_token_s * max(1, draft cost
    // factor), and advances spec_step_tokens() tokens, so the effective
    // per-token rate rescales by their ratio. Identity (1/1) when k == 1;
    // conservatively >= 1 in measure mode (unknown acceptance models no
    // multi-token advance, but the draft lane still costs).
    const double spec_scale =
        std::max(1.0,
                 RaggedDecoder::spec_draft_cost_factor(opts_.engine,
                                                       cfg_.layers)) /
        RaggedDecoder::spec_step_tokens(opts_.engine);
    return (vs.base_s + vs.prefill_token_s * static_cast<double>(suffix) +
            vs.per_token_s * spec_scale * static_cast<double>(new_tokens)) *
           (degraded ? vs.degraded_factor : 1.0);
  }
  // Measured mode: fixed invocation cost plus per-decode-step cost, so a
  // 100-token request predicts ~10x the service of a 10-token one instead
  // of the same number (ISSUE 4 satellite). All terms are 0 until the
  // first observed batch.
  return ewma_base_s_ +
         ewma_prefill_token_s_ * static_cast<double>(suffix) +
         ewma_per_token_s_ * static_cast<double>(new_tokens);
}

void InferenceServer::observe_service(double base_s, double per_token_s,
                                      double prefill_token_s) {
  ewma_base_s_ =
      ewma_base_s_ == 0 ? base_s : 0.7 * ewma_base_s_ + 0.3 * base_s;
  ewma_per_token_s_ = ewma_per_token_s_ == 0
                          ? per_token_s
                          : 0.7 * ewma_per_token_s_ + 0.3 * per_token_s;
  ewma_prefill_token_s_ =
      ewma_prefill_token_s_ == 0
          ? prefill_token_s
          : 0.7 * ewma_prefill_token_s_ + 0.3 * prefill_token_s;
}

std::vector<RequestStats> InferenceServer::run_trace(
    std::vector<TimedRequest> requests) {
  counters_ = ServingCounters{};
  using Reason = BadRequestError::Reason;
  for (const auto& r : requests) {
    if (r.prompt.empty()) {
      throw BadRequestError(Reason::kEmptyPrompt, r.id,
                            "run_trace: empty prompt in request " +
                                std::to_string(r.id));
    }
    if (r.new_tokens < 1) {
      throw BadRequestError(Reason::kNonPositiveNewTokens, r.id,
                            "run_trace: non-positive new_tokens in request " +
                                std::to_string(r.id));
    }
    if (std::isnan(r.arrival_s) || r.arrival_s < 0) {
      throw BadRequestError(Reason::kBadArrival, r.id,
                            "run_trace: NaN/negative arrival in request " +
                                std::to_string(r.id));
    }
    if (std::isnan(r.deadline_s) || r.deadline_s < r.arrival_s) {
      throw BadRequestError(Reason::kBadDeadline, r.id,
                            "run_trace: NaN or pre-arrival deadline in request " +
                                std::to_string(r.id));
    }
  }
  // Serve in arrival order (stable for ties).
  std::vector<std::size_t> order(requests.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return requests[a].arrival_s < requests[b].arrival_s;
  });

  if (obs::trace_enabled()) {
    auto& rec = obs::TraceRecorder::instance();
    rec.set_track_name(obs::kServerPid, kBatcherTrack, "batcher");
    for (const auto& r : requests) {
      rec.set_track_name(obs::kServerPid, request_track(r.id),
                         "req " + std::to_string(r.id));
      rec.instant_at(obs::kServerPid, request_track(r.id), to_us(r.arrival_s),
                     "server", "arrival");
    }
  }

  std::vector<RequestStats> stats =
      opts_.scheduler == Scheduler::kContinuous ? run_continuous(requests, order)
                                                : run_window(requests, order);

  if (obs::metrics_enabled()) {
    auto& reg = obs::MetricsRegistry::instance();
    reg.counter("server.served").add(counters_.served);
    reg.counter("server.sheds").add(counters_.sheds);
    reg.counter("server.timeouts").add(counters_.timeouts);
    reg.counter("server.failures").add(counters_.failures);
    reg.counter("server.retries").add(counters_.retries);
    reg.counter("server.engine_faults").add(counters_.engine_faults);
    reg.counter("server.degradations").add(counters_.degradations);
  }
  return stats;
}

std::vector<RequestStats> InferenceServer::run_continuous(
    const std::vector<TimedRequest>& requests,
    const std::vector<std::size_t>& order) {
  std::vector<RequestStats> stats(requests.size());
  ContinuousBatcher batcher(
      engine_, [this]() -> InferenceEngine& { return degraded_engine(); },
      opts_,
      [this](std::int64_t prompt_tokens, std::int64_t new_tokens,
             bool degraded, std::int64_t prefix_hit_tokens) {
        return estimate_service_s(prompt_tokens, new_tokens, degraded,
                                  prefix_hit_tokens);
      },
      seed_);
  batcher.run(requests, order, stats, counters_);
  return stats;
}

std::vector<RequestStats> InferenceServer::run_window(
    const std::vector<TimedRequest>& requests,
    const std::vector<std::size_t>& order) {
  const auto& res = opts_.resilience;
  const auto& vs = opts_.virtual_service;
  std::vector<RequestStats> stats(requests.size());
  std::vector<bool> served(requests.size(), false);
  double clock = 0;

  const bool tracing = obs::trace_enabled();
  auto& rec = obs::TraceRecorder::instance();

  for (std::size_t head_pos = 0; head_pos < order.size(); ++head_pos) {
    const std::size_t head = order[head_pos];
    if (served[head]) continue;
    const auto& hr = requests[head];
    // Service cannot start before the head arrives; the batcher then waits
    // up to the window for same-shape requests.
    double start = std::max(clock, hr.arrival_s);
    const double cutoff = start + opts_.batch_window_s;

    // Form the batch at full capacity first: joiners inside the window can
    // push the actual start later, and the admission/degradation decisions
    // below must see that final start, not the head's provisional one
    // (ISSUE 4 satellite — the old order made both calls against a stale
    // clock).
    std::vector<std::size_t> batch{head};
    for (std::size_t j = head_pos + 1;
         j < order.size() &&
         static_cast<std::int64_t>(batch.size()) < opts_.max_batch;
         ++j) {
      const std::size_t cand = order[j];
      if (served[cand]) continue;
      const auto& cr = requests[cand];
      if (cr.prompt.size() != hr.prompt.size()) continue;
      if (cr.arrival_s > cutoff) break;  // later arrivals are even later
      batch.push_back(cand);
      start = std::max(start, cr.arrival_s);
    }

    // Admission control, evaluated at the batch's true start: if the head
    // can no longer meet its deadline, shed it (its joiners stay queued and
    // are re-batched behind the next head).
    // Prompt-aware pricing (ISSUE 9): the window engine rebuilds its KV
    // caches per invocation, so there is no resident prefix to discount.
    if (res.admission_control && hr.deadline_s < kNoDeadline &&
        start + estimate_service_s(
                    static_cast<std::int64_t>(hr.prompt.size()),
                    hr.new_tokens, false, 0) >
            hr.deadline_s) {
      auto& st = stats[head];
      st.id = hr.id;
      st.arrival_s = hr.arrival_s;
      st.deadline_s = hr.deadline_s;
      st.start_s = st.finish_s = start;  // decision instant; no service
      st.outcome = RequestStats::Outcome::kShed;
      st.attr.add(obs::Phase::kShed, start - hr.arrival_s);
      served[head] = true;
      ++counters_.sheds;
      if (tracing) {
        rec.instant_at(obs::kServerPid, request_track(hr.id), to_us(start),
                       "server", "shed");
      }
      continue;
    }

    // Graceful degradation: sustained head-of-line queueing — measured at
    // the start the batch will actually get — means we are past capacity;
    // drop to half-size batches on the INT8 engine. The trimmed joiners go
    // back to the queue; the decision itself stands (re-deriving it from
    // the trimmed batch would oscillate).
    const bool degraded = res.degrade_under_overload &&
                          (start - hr.arrival_s) > res.overload_queue_s;
    if (degraded) {
      const auto cap = static_cast<std::size_t>(
          std::max<std::int64_t>(1, opts_.max_batch / 2));
      if (batch.size() > cap) {
        batch.resize(cap);
        start = std::max(clock, hr.arrival_s);
        for (std::size_t idx : batch) {
          start = std::max(start, requests[idx].arrival_s);
        }
      }
    }

    std::vector<std::vector<std::int32_t>> prompts;
    std::int64_t max_new = 0;
    for (std::size_t idx : batch) {
      prompts.push_back(requests[idx].prompt);
      max_new = std::max(max_new, requests[idx].new_tokens);
    }

    // Engine invocation with bounded retry: injected faults and typed
    // streaming faults both cost exponential (virtual) backoff.
    GenerationResult result;
    std::int64_t tries = 0;
    double backoff_s = 0;
    double measured_s = 0;
    bool ok = false;
    auto absorb_fault = [&]() {  // true => retry, false => budget exhausted
      ++counters_.engine_faults;
      if (tracing) {
        rec.instant_at(obs::kServerPid, kBatcherTrack,
                       to_us(start + backoff_s), "server", "engine fault");
      }
      if (tries >= res.max_retries) return false;
      backoff_s += res.retry_backoff_s * static_cast<double>(1LL << tries);
      ++tries;
      ++counters_.retries;
      if (tracing) {
        rec.instant_at(obs::kServerPid, kBatcherTrack,
                       to_us(start + backoff_s), "server",
                       "retry " + std::to_string(tries));
      }
      return true;
    };
    obs::PhaseBreakdown sub;  // comm/zero/kv wall time of the winning attempt
    for (;;) {
      if (res.injector && res.injector->should_fail(res.engine_site)) {
        if (absorb_fault()) continue;
        break;
      }
      try {
        obs::SubPhaseScope sub_scope;
        Stopwatch sw;
        result = (degraded ? degraded_engine() : engine_)
                     .generate(prompts, max_new, opts_.sampling);
        measured_s = sw.elapsed_s();
        sub = sub_scope.take();
        ok = true;
        break;
      } catch (const zero::StreamFault&) {
        if (absorb_fault()) continue;
        break;
      }
    }

    const std::int64_t batch_prompt_len =
        static_cast<std::int64_t>(hr.prompt.size());
    const double service_s =
        !ok ? 0.0
            : vs.enabled
                  ? estimate_service_s(batch_prompt_len, max_new, degraded, 0)
                  : measured_s;
    // Attribution of the batch's service interval (ISSUE 8): shared by every
    // member, it splits into prefill, the comm/zero/kv sub-phases (measured
    // mode; scaled down if concurrent ranks over-counted wall time), and a
    // decode-compute remainder — parts sum to service_s exactly.
    obs::PhaseBreakdown service_attr;
    if (ok) {
      const double factor = degraded ? vs.degraded_factor : 1.0;
      const double prefill_part =
          vs.enabled ? (vs.base_s + vs.prefill_token_s *
                                        static_cast<double>(batch_prompt_len)) *
                           factor
                     : std::min(std::max(result.prompt_seconds, 0.0),
                                service_s);
      double rest = service_s - prefill_part;
      service_attr.add(obs::Phase::kPrefill, prefill_part);
      double sub_total = 0;
      constexpr obs::Phase kSub[] = {obs::Phase::kTpAllreduce,
                                     obs::Phase::kZeroFetch,
                                     obs::Phase::kKvSpill};
      if (!vs.enabled) {
        double reported = 0;
        for (obs::Phase p : kSub) reported += sub.get(p);
        const double scale = reported > rest ? rest / reported : 1.0;
        for (obs::Phase p : kSub) {
          const double part = sub.get(p) * scale;
          service_attr.add(p, part);
          sub_total += part;
        }
      }
      service_attr.add(obs::Phase::kDecodeCompute,
                       std::max(0.0, rest - sub_total));
    }
    if (ok && !vs.enabled) {
      // Split the measurement into its fixed and per-step parts so the
      // estimator scales with a request's ask: the prompt phase stands in
      // for the invocation cost, the decode remainder amortizes over the
      // batch's max_new steps.
      const double decode_s = std::max(0.0, measured_s - result.prompt_seconds);
      observe_service(result.prompt_seconds,
                      decode_s / static_cast<double>(max_new),
                      result.prompt_seconds /
                          static_cast<double>(batch_prompt_len));
    }
    const double finish = start + backoff_s + service_s;

    if (tracing && ok) {
      rec.complete_at(obs::kServerPid, kBatcherTrack, to_us(start + backoff_s),
                      to_us(service_s), "server",
                      "batch x" + std::to_string(batch.size()),
                      "{\"batch\":" + std::to_string(batch.size()) +
                          ",\"degraded\":" + (degraded ? "true" : "false") +
                          "}");
    }

    for (std::size_t bi = 0; bi < batch.size(); ++bi) {
      const std::size_t idx = batch[bi];
      const auto& rq = requests[idx];
      auto& st = stats[idx];
      st.id = rq.id;
      st.arrival_s = rq.arrival_s;
      st.deadline_s = rq.deadline_s;
      st.start_s = start;
      st.finish_s = finish;
      st.batch_size = static_cast<std::int64_t>(batch.size());
      st.retries = tries;
      st.degraded = ok && degraded;
      st.attr.add(obs::Phase::kAdmissionWait, start - rq.arrival_s);
      st.attr.add(obs::Phase::kRetryBackoff, backoff_s);
      st.attr.merge(service_attr);
      if (tracing) {
        const std::int64_t track = request_track(rq.id);
        if (start > rq.arrival_s) {
          rec.complete_at(obs::kServerPid, track, to_us(rq.arrival_s),
                          to_us(start - rq.arrival_s), "server", "queue");
        }
        rec.complete_at(obs::kServerPid, track, to_us(start),
                        to_us(finish - start), "server", "service",
                        "{\"batch\":" + std::to_string(batch.size()) +
                            ",\"degraded\":" + (degraded ? "true" : "false") +
                            ",\"retries\":" + std::to_string(tries) + "}");
        if (!ok) {
          rec.instant_at(obs::kServerPid, track, to_us(finish), "server",
                         "failed");
        } else if (finish > rq.deadline_s) {
          rec.instant_at(obs::kServerPid, track, to_us(finish), "server",
                         "deadline miss");
        } else if (degraded) {
          rec.instant_at(obs::kServerPid, track, to_us(finish), "server",
                         "degraded");
        }
      }
      if (obs::metrics_enabled()) {
        // Handles are fetched per call: registry access is get-or-create,
        // and a function-local static would pin the first process-lifetime
        // registry instance across tests that reset it (ISSUE 4 satellite).
        auto& reg = obs::MetricsRegistry::instance();
        reg.histogram("server.queue_delay_s").record(start - rq.arrival_s);
        reg.histogram("server.latency_s").record(finish - rq.arrival_s);
      }
      if (!ok) {
        st.outcome = RequestStats::Outcome::kFailed;
        st.tokens = rq.prompt;  // nothing was generated
        ++counters_.failures;
      } else {
        // The batch decodes to its max_new; trim over-generation down to
        // this request's ask, but never extend — a sequence that hit the
        // stop token early is genuinely shorter, and padding it with zeros
        // would fabricate tokens (ISSUE 4 satellite).
        const std::size_t want =
            rq.prompt.size() + static_cast<std::size_t>(rq.new_tokens);
        st.tokens = result.tokens[bi];
        st.stopped = result.stopped[bi] && st.tokens.size() <= want;
        if (st.tokens.size() > want) st.tokens.resize(want);
        ++counters_.served;
        if (degraded) ++counters_.degradations;
        if (finish > rq.deadline_s) {
          st.outcome = RequestStats::Outcome::kTimedOut;
          ++counters_.timeouts;
        } else {
          st.outcome = degraded ? RequestStats::Outcome::kDegraded
                                : RequestStats::Outcome::kOk;
        }
      }
      served[idx] = true;
    }
    clock = finish;
  }
  return stats;
}

}  // namespace dsinfer::core
