#include "core/checkpoint.h"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace dsinfer::core {

namespace {

constexpr char kMagic[4] = {'D', 'S', 'I', 'C'};

void write_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void write_i64(std::ostream& os, std::int64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
std::uint32_t read_u32(std::istream& is) {
  std::uint32_t v = 0;
  if (!is.read(reinterpret_cast<char*>(&v), sizeof(v))) {
    throw std::runtime_error("checkpoint: truncated (u32)");
  }
  return v;
}
std::int64_t read_i64(std::istream& is) {
  std::int64_t v = 0;
  if (!is.read(reinterpret_cast<char*>(&v), sizeof(v))) {
    throw std::runtime_error("checkpoint: truncated (i64)");
  }
  return v;
}

void write_tensor(std::ostream& os, const Tensor& t) {
  write_i64(os, t.numel());
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.numel() * sizeof(float)));
}

// Reads a tensor whose shape is already set; validates the element count.
void read_tensor_into(std::istream& is, Tensor& t) {
  const std::int64_t n = read_i64(is);
  if (n != t.numel()) {
    throw std::runtime_error("checkpoint: tensor size mismatch");
  }
  if (!is.read(reinterpret_cast<char*>(t.data()),
               static_cast<std::streamsize>(n * sizeof(float)))) {
    throw std::runtime_error("checkpoint: truncated tensor data");
  }
}

template <typename Fn>
void for_each_tensor(GptWeights& w, Fn&& fn) {
  fn(w.tok_embed);
  fn(w.pos_embed);
  fn(w.ln_f_g);
  fn(w.ln_f_b);
  for (auto& l : w.layers) {
    fn(l.ln1_g);
    fn(l.ln1_b);
    fn(l.ln2_g);
    fn(l.ln2_b);
    fn(l.w_qkv);
    fn(l.b_qkv);
    fn(l.w_attn_out);
    fn(l.b_attn_out);
    fn(l.w_fc1);
    fn(l.b_fc1);
    fn(l.w_fc2);
    fn(l.b_fc2);
  }
}

}  // namespace

void save_checkpoint(const std::string& path, const GptWeights& weights,
                     const BpeTokenizer& tokenizer) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("checkpoint: cannot open " + path);
  os.write(kMagic, sizeof(kMagic));
  write_u32(os, kCheckpointVersion);

  const auto& cfg = weights.config;
  write_i64(os, cfg.hidden);
  write_i64(os, cfg.layers);
  write_i64(os, cfg.heads);
  write_i64(os, cfg.vocab);
  write_i64(os, cfg.max_seq);
  write_u32(os, cfg.causal ? 1 : 0);
  const std::string name = cfg.name;
  write_i64(os, static_cast<std::int64_t>(name.size()));
  os.write(name.data(), static_cast<std::streamsize>(name.size()));

  const std::string tok = tokenizer.serialize();
  write_i64(os, static_cast<std::int64_t>(tok.size()));
  os.write(tok.data(), static_cast<std::streamsize>(tok.size()));

  for_each_tensor(const_cast<GptWeights&>(weights),
                  [&](Tensor& t) { write_tensor(os, t); });
  if (!os) throw std::runtime_error("checkpoint: write failed for " + path);
}

LoadedCheckpoint load_checkpoint(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("checkpoint: cannot open " + path);
  char magic[4] = {};
  if (!is.read(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("checkpoint: bad magic");
  }
  const std::uint32_t version = read_u32(is);
  if (version != kCheckpointVersion) {
    throw std::runtime_error("checkpoint: unsupported version " +
                             std::to_string(version));
  }
  model::DenseModelConfig cfg;
  cfg.hidden = read_i64(is);
  cfg.layers = read_i64(is);
  cfg.heads = read_i64(is);
  cfg.vocab = read_i64(is);
  cfg.max_seq = read_i64(is);
  cfg.causal = read_u32(is) != 0;
  const auto name_len = static_cast<std::size_t>(read_i64(is));
  if (name_len > (1u << 20)) throw std::runtime_error("checkpoint: bad name");
  std::string name(name_len, '\0');
  if (!is.read(name.data(), static_cast<std::streamsize>(name_len))) {
    throw std::runtime_error("checkpoint: truncated name");
  }
  cfg.name = name;

  const auto tok_len = static_cast<std::size_t>(read_i64(is));
  if (tok_len > (1u << 26)) throw std::runtime_error("checkpoint: bad tokenizer");
  std::string tok(tok_len, '\0');
  if (!is.read(tok.data(), static_cast<std::streamsize>(tok_len))) {
    throw std::runtime_error("checkpoint: truncated tokenizer");
  }

  LoadedCheckpoint out;
  // Allocate tensors at the config's shapes, then fill from the stream.
  Rng dummy(0);
  out.weights.init_random(dummy, cfg);
  for_each_tensor(out.weights, [&](Tensor& t) { read_tensor_into(is, t); });
  out.tokenizer = tok.empty() ? BpeTokenizer{} : BpeTokenizer::deserialize(tok);
  return out;
}

}  // namespace dsinfer::core
