#include "core/eval.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "kernels/kv_cache.h"
#include "kernels/transformer_layer.h"

namespace dsinfer::core {

SequenceScore score_sequence(const GptWeights& weights,
                             const std::vector<std::int32_t>& tokens) {
  const auto& cfg = weights.config;
  const std::int64_t T = static_cast<std::int64_t>(tokens.size());
  if (T < 2) throw std::invalid_argument("score_sequence: need >= 2 tokens");
  if (T > cfg.max_seq) {
    throw std::invalid_argument("score_sequence: exceeds max_seq");
  }
  const std::int64_t H = cfg.hidden;
  const std::int64_t V = cfg.vocab;

  std::vector<std::int32_t> poss(tokens.size());
  for (std::size_t i = 0; i < poss.size(); ++i) {
    poss[i] = static_cast<std::int32_t>(i);
  }
  std::vector<float> x(static_cast<std::size_t>(T * H));
  weights.embed(tokens, poss, x);

  std::vector<kernels::KVCache> caches;
  for (std::size_t l = 0; l < weights.layers.size(); ++l) {
    caches.emplace_back(1, cfg.heads, cfg.head_dim(), T);
  }
  kernels::LayerScratch scratch;
  for (std::size_t l = 0; l < weights.layers.size(); ++l) {
    kernels::transformer_layer_forward(
        weights.layers[l], caches[l], x, 1, T,
        kernels::KernelPolicy::optimized_large_batch(), scratch);
  }

  // Logits for every position except the last (its target is unknown).
  std::vector<float> logits(static_cast<std::size_t>((T - 1) * V));
  weights.lm_head(std::span<const float>(x).first(
                      static_cast<std::size_t>((T - 1) * H)),
                  logits, T - 1);

  SequenceScore s;
  s.scored_tokens = T - 1;
  for (std::int64_t i = 0; i < T - 1; ++i) {
    const float* row = logits.data() + i * V;
    const std::int32_t target = tokens[static_cast<std::size_t>(i + 1)];
    float mx = row[0];
    for (std::int64_t v = 1; v < V; ++v) mx = std::max(mx, row[v]);
    double denom = 0;
    for (std::int64_t v = 0; v < V; ++v) {
      denom += std::exp(static_cast<double>(row[v] - mx));
    }
    s.log_prob += static_cast<double>(row[target] - mx) - std::log(denom);
  }
  s.perplexity = std::exp(-s.log_prob / static_cast<double>(T - 1));
  return s;
}

}  // namespace dsinfer::core
