#include "core/inference_engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <stdexcept>

#include "core/engine_spec.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/device_group.h"
#include "util/stats.h"

namespace dsinfer::core {

using kernels::KVCache;

InferenceEngine::InferenceEngine(const EngineSpec& spec, std::uint64_t seed)
    : opts_(spec.options()), sample_rng_(seed) {
  if (auto errs = spec.validate(); !errs.empty()) {
    throw ConfigException(std::move(errs.front()));
  }
  init(spec.model(), seed);
}

InferenceEngine::InferenceEngine(const model::DenseModelConfig& cfg,
                                 EngineOptions opts, std::uint64_t seed)
    : InferenceEngine(EngineSpec::from_options(cfg, opts), seed) {}

void InferenceEngine::init(const model::DenseModelConfig& cfg,
                           std::uint64_t seed) {
  Rng rng(seed);
  weights_.init_random(rng, cfg);

  if (opts_.stream_weights) {
    // Streamed copies are refetched every pass; packed acceleration
    // structures would be rebuilt per fetch, so streaming pins the plain
    // blocked GeMM. FP32 tensors stream as-is; in INT8 mode the host store
    // quantizes once and the quantized shards are what crosses the boundary.
    opts_.policy.gemm = kernels::GemmKind::kBlocked;
    opts_.policy.dtype =
        opts_.stream_int8 ? kernels::Dtype::kINT8 : kernels::Dtype::kFP32;
    store_ = std::make_unique<zero::HostWeightStore>(
        std::move(weights_.layers), zero::Tier::kDram);
    weights_.layers.clear();
    zero::StreamResilience res;
    res.injector = opts_.fault_injector;
    res.max_retries = opts_.stream_max_retries;
    streamer_ = std::make_unique<zero::LayerStreamer>(
        *store_, opts_.stream_window,
        opts_.stream_int8 ? zero::Precision::kInt8 : zero::Precision::kFP32,
        res);
  } else {
    for (auto& l : weights_.layers) l.prepare(opts_.policy);
    if (opts_.tensor_parallel > 1) {
      const std::int64_t tp = opts_.tensor_parallel;
      shards_.resize(static_cast<std::size_t>(tp));
      for (std::int64_t r = 0; r < tp; ++r) {
        auto& per_rank = shards_[static_cast<std::size_t>(r)];
        per_rank.reserve(weights_.layers.size());
        for (const auto& l : weights_.layers) {
          per_rank.push_back(parallel::TpLayerShard::from_full(l, tp, r));
          per_rank.back().prepare(opts_.policy);
        }
      }
    }
  }
}

std::size_t InferenceEngine::streamed_bytes() const {
  return streamer_ ? streamer_->bytes_fetched() : 0;
}

std::int64_t InferenceEngine::layer_count() const {
  return streamer_ ? store_->layers()
                   : static_cast<std::int64_t>(weights_.layers.size());
}

InferenceEngine::Plan InferenceEngine::validate(
    const std::vector<std::vector<std::int32_t>>& prompts) const {
  if (prompts.empty()) throw std::invalid_argument("generate: empty batch");
  if (static_cast<std::int64_t>(prompts.size()) > opts_.max_batch) {
    throw std::invalid_argument("generate: batch exceeds max_batch");
  }
  const std::size_t len = prompts.front().size();
  if (len == 0) throw std::invalid_argument("generate: empty prompt");
  for (const auto& p : prompts) {
    if (p.size() != len) {
      throw std::invalid_argument(
          "generate: prompts must be equal length (pad upstream)");
    }
  }
  Plan plan;
  plan.batch = static_cast<std::int64_t>(prompts.size());
  plan.prompt_len = static_cast<std::int64_t>(len);
  return plan;
}

void InferenceEngine::run_layers(std::span<float> x, std::int64_t batch,
                                 std::int64_t q_len,
                                 std::vector<KVCache>& caches) {
  static thread_local kernels::LayerScratch scratch;
  if (streamer_) {
    for (std::int64_t l = 0; l < store_->layers(); ++l) {
      obs::TraceScope layer_scope(
          "engine", obs::trace_enabled() ? "layer " + std::to_string(l)
                                         : std::string());
      const auto& w = streamer_->acquire(l);
      streamer_->prefetch(l + 1);  // overlap hint: fetch-ahead window
      kernels::transformer_layer_forward(
          w, caches[static_cast<std::size_t>(l)], x, batch, q_len,
          opts_.policy, scratch);
    }
    return;
  }
  for (std::size_t l = 0; l < weights_.layers.size(); ++l) {
    obs::TraceScope layer_scope(
        "engine", obs::trace_enabled() ? "layer " + std::to_string(l)
                                       : std::string());
    kernels::transformer_layer_forward(weights_.layers[l], caches[l], x,
                                       batch, q_len, opts_.policy, scratch);
  }
}

void InferenceEngine::run_layers_ragged(std::span<float> x,
                                        std::span<const std::int32_t> slots,
                                        std::span<const std::int32_t> positions,
                                        kernels::KVArena& arena) {
  static thread_local kernels::LayerScratch scratch;
  if (streamer_) {
    for (std::int64_t l = 0; l < store_->layers(); ++l) {
      obs::TraceScope layer_scope(
          "engine", obs::trace_enabled() ? "layer " + std::to_string(l)
                                         : std::string());
      const auto& w = streamer_->acquire(l);
      streamer_->prefetch(l + 1);
      kernels::transformer_layer_forward_ragged(w, arena, l, slots, positions,
                                                x, opts_.policy, scratch);
    }
    return;
  }
  for (std::size_t l = 0; l < weights_.layers.size(); ++l) {
    obs::TraceScope layer_scope(
        "engine", obs::trace_enabled() ? "layer " + std::to_string(l)
                                       : std::string());
    kernels::transformer_layer_forward_ragged(
        weights_.layers[l], arena, static_cast<std::int64_t>(l), slots,
        positions, x, opts_.policy, scratch);
  }
}

void InferenceEngine::run_layers_ragged_tp(
    std::span<float> x, std::span<const std::int32_t> slots,
    std::span<const std::int32_t> positions,
    std::vector<kernels::KVArena>& arenas, std::vector<float>& xr,
    std::vector<parallel::TpScratch>& scratches) {
  const std::int64_t tp = opts_.tensor_parallel;
  if (tp < 2 || streamer_) {
    throw std::logic_error("run_layers_ragged_tp: needs resident TP shards");
  }
  const std::int64_t tokens = static_cast<std::int64_t>(slots.size());
  const auto n = static_cast<std::size_t>(tokens * config().hidden);
  xr.resize(static_cast<std::size_t>(tp - 1) * n);
  for (std::int64_t r = 0; r + 1 < tp; ++r) {
    std::memcpy(xr.data() + static_cast<std::size_t>(r) * n, x.data(),
                n * sizeof(float));
  }
  // Fresh group per fused step: a Communicator is poisoned forever after a
  // CommFault, so per-call groups let the batcher retry a faulted step on a
  // clean communicator while the injector's schedule advances.
  comm::CommOptions copts;
  copts.injector = opts_.fault_injector;
  parallel::DeviceGroup group(tp, copts);
  group.run([&](std::int64_t rank, comm::Communicator& comm) {
    obs::TraceScope rank_scope(
        "engine", obs::trace_enabled()
                      ? "ragged tp step r" + std::to_string(rank)
                      : std::string());
    std::span<float> xs =
        rank == 0 ? x.subspan(0, n)
                  : std::span<float>(
                        xr.data() + static_cast<std::size_t>(rank - 1) * n, n);
    auto& per_rank = shards_[static_cast<std::size_t>(rank)];
    for (std::size_t l = 0; l < per_rank.size(); ++l) {
      obs::TraceScope layer_scope(
          "engine", obs::trace_enabled() ? "layer " + std::to_string(l)
                                         : std::string());
      parallel::tp_layer_forward_ragged(
          per_rank[l], arenas[static_cast<std::size_t>(rank)],
          static_cast<std::int64_t>(l), slots, positions, xs, opts_.policy,
          scratches[static_cast<std::size_t>(rank)], comm, rank);
    }
  });
}

GenerationResult InferenceEngine::generate(
    const std::vector<std::vector<std::int32_t>>& prompts,
    std::int64_t new_tokens, const SamplingOptions& sampling,
    const TokenCallback& on_token) {
  const Plan plan = validate(prompts);
  if (new_tokens < 1) throw std::invalid_argument("generate: new_tokens >= 1");
  const std::int64_t total_len = plan.prompt_len + new_tokens;
  if (total_len > opts_.max_seq || total_len > config().max_seq) {
    throw std::invalid_argument("generate: sequence exceeds max_seq");
  }
  const std::int64_t H = config().hidden;
  const std::int64_t V = config().vocab;
  const std::int64_t B = plan.batch;
  const std::int64_t P = plan.prompt_len;

  // Same derived seed on every execution path (single, streamed, every TP
  // rank) keeps sampling identical across them.
  const std::uint64_t step_seed = sample_rng_.engine()();

  GenerationResult res;
  res.tokens = prompts;
  res.stopped.assign(static_cast<std::size_t>(B), false);
  DSI_TRACE_SCOPE("engine", "generate");
  Stopwatch sw;

  // The shared generation driver; `layer_fn` hides the execution substrate.
  auto drive = [&](const std::function<void(std::span<float>, std::int64_t)>&
                       layer_fn,
                   std::vector<std::vector<std::int32_t>>& out,
                   double* prompt_s, bool emit_tokens) {
    Rng rng(step_seed);
    // ---- Prompt phase ----
    std::vector<std::int32_t> toks(static_cast<std::size_t>(B * P));
    std::vector<std::int32_t> poss(toks.size());
    for (std::int64_t b = 0; b < B; ++b) {
      for (std::int64_t t = 0; t < P; ++t) {
        toks[static_cast<std::size_t>(b * P + t)] =
            out[static_cast<std::size_t>(b)][static_cast<std::size_t>(t)];
        poss[static_cast<std::size_t>(b * P + t)] =
            static_cast<std::int32_t>(t);
      }
    }
    std::vector<float> x(static_cast<std::size_t>(B * P * H));
    {
      DSI_TRACE_SCOPE("engine", "prompt");
      weights_.embed(toks, poss, x);
      layer_fn(x, P);
    }

    std::vector<float> last(static_cast<std::size_t>(B * H));
    for (std::int64_t b = 0; b < B; ++b) {
      std::memcpy(last.data() + b * H,
                  x.data() + ((b * P) + P - 1) * H,
                  static_cast<std::size_t>(H) * sizeof(float));
    }

    std::vector<float> logits(static_cast<std::size_t>(B * V));
    std::vector<std::int32_t> new_toks(static_cast<std::size_t>(B));
    std::vector<std::int32_t> new_poss(static_cast<std::size_t>(B));
    for (std::int64_t step = 0; step < new_tokens; ++step) {
      obs::TraceScope step_scope(
          "engine", obs::trace_enabled() ? "decode step " + std::to_string(step)
                                         : std::string());
      weights_.lm_head(last, logits, B);
      for (std::int64_t b = 0; b < B; ++b) {
        const std::int32_t tok = sample_token(
            std::span<const float>(logits).subspan(
                static_cast<std::size_t>(b * V), static_cast<std::size_t>(V)),
            sampling, rng);
        out[static_cast<std::size_t>(b)].push_back(tok);
        if (emit_tokens && on_token) on_token(b, step, tok);
        if (emit_tokens && sampling.stop_token >= 0 &&
            tok == sampling.stop_token) {
          res.stopped[static_cast<std::size_t>(b)] = true;
        }
        new_toks[static_cast<std::size_t>(b)] = tok;
        new_poss[static_cast<std::size_t>(b)] =
            static_cast<std::int32_t>(P + step);
      }
      if (step == 0 && prompt_s) *prompt_s = sw.elapsed_s();
      if (step + 1 == new_tokens) break;
      // ---- Token-generation phase: one position per sequence ----
      weights_.embed(new_toks, new_poss, std::span<float>(last));
      layer_fn(last, 1);
      // `last` now holds the final hidden state of each sequence.
    }
  };

  if (opts_.tensor_parallel > 1) {
    const std::int64_t tp = opts_.tensor_parallel;
    std::vector<std::vector<std::vector<std::int32_t>>> outs(
        static_cast<std::size_t>(tp), res.tokens);
    std::vector<double> prompt_times(static_cast<std::size_t>(tp), 0.0);
    // Each rank round-trips its own head slice between steps (kv_offload);
    // summed after the join so the member ledger is updated race-free.
    std::vector<std::size_t> offload_moved(static_cast<std::size_t>(tp), 0);
    parallel::DeviceGroup group(tp);
    group.run([&](std::int64_t rank, comm::Communicator& comm) {
      std::vector<KVCache> caches;
      caches.reserve(weights_.layers.size());
      for (std::size_t l = 0; l < shards_[0].size(); ++l) {
        caches.emplace_back(B, config().heads / tp,
                            config().head_dim(), total_len);
      }
      parallel::TpScratch scratch;
      std::vector<float> host_k, host_v;
      auto offload_cycle = [&]() {
        if (!opts_.kv_offload) return;
        DSI_TRACE_SCOPE("engine", "kv_offload");
        for (auto& c : caches) {
          const auto n = static_cast<std::size_t>(c.batch() * c.heads() *
                                                  c.seq_len() * c.head_dim());
          if (n == 0) continue;
          host_k.resize(n);
          host_v.resize(n);
          const std::int64_t len = c.seq_len();
          c.export_state(host_k, host_v);
          c.reset();
          c.import_state(host_k, host_v, len);
          offload_moved[static_cast<std::size_t>(rank)] +=
              4 * n * sizeof(float);  // out + back, K and V
        }
      };
      auto layer_fn = [&](std::span<float> x, std::int64_t q_len) {
        auto& per_rank = shards_[static_cast<std::size_t>(rank)];
        for (std::size_t l = 0; l < per_rank.size(); ++l) {
          obs::TraceScope layer_scope(
              "engine", obs::trace_enabled() ? "layer " + std::to_string(l)
                                             : std::string());
          parallel::tp_layer_forward(per_rank[l], caches[l], x,
                                     B, q_len, opts_.policy, scratch, comm,
                                     rank);
        }
        offload_cycle();
      };
      drive(layer_fn, outs[static_cast<std::size_t>(rank)],
            &prompt_times[static_cast<std::size_t>(rank)], rank == 0);
    });
    res.tokens = outs[0];
    res.prompt_seconds = prompt_times[0];
    if (opts_.kv_offload) {
      std::size_t moved = 0;
      for (auto m : offload_moved) moved += m;
      kv_offload_bytes_ += moved;
      static obs::Counter& kv_bytes =
          obs::MetricsRegistry::instance().counter("engine.kv_offload.bytes");
      kv_bytes.add(static_cast<std::int64_t>(moved));
    }
  } else {
    std::vector<KVCache> caches;
    const std::int64_t layers =
        streamer_ ? store_->layers()
                  : static_cast<std::int64_t>(weights_.layers.size());
    caches.reserve(static_cast<std::size_t>(layers));
    for (std::int64_t l = 0; l < layers; ++l) {
      caches.emplace_back(B, config().heads, config().head_dim(), total_len);
    }
    // Optional host round-trip of every layer's KV state between steps.
    std::vector<float> host_k, host_v;
    auto offload_cycle = [&]() {
      if (!opts_.kv_offload) return;
      DSI_TRACE_SCOPE("engine", "kv_offload");
      std::size_t moved = 0;
      for (auto& c : caches) {
        const auto n = static_cast<std::size_t>(c.batch() * c.heads() *
                                                c.seq_len() * c.head_dim());
        if (n == 0) continue;
        host_k.resize(n);
        host_v.resize(n);
        const std::int64_t len = c.seq_len();
        c.export_state(host_k, host_v);
        c.reset();
        c.import_state(host_k, host_v, len);
        moved += 4 * n * sizeof(float);  // out + back, K and V
      }
      kv_offload_bytes_ += moved;
      static obs::Counter& kv_bytes =
          obs::MetricsRegistry::instance().counter("engine.kv_offload.bytes");
      kv_bytes.add(static_cast<std::int64_t>(moved));
      if (obs::trace_enabled()) {
        obs::TraceRecorder::instance().counter(
            "engine", "kv_offload_bytes",
            static_cast<double>(kv_offload_bytes_));
      }
    };
    auto layer_fn = [&](std::span<float> x, std::int64_t q_len) {
      run_layers(x, B, q_len, caches);
      offload_cycle();
    };
    drive(layer_fn, res.tokens, &res.prompt_seconds, true);
  }

  // Truncate sequences at their stop token (inclusive) and recount.
  res.generated = 0;
  for (std::int64_t b = 0; b < B; ++b) {
    auto& seq = res.tokens[static_cast<std::size_t>(b)];
    if (sampling.stop_token >= 0) {
      for (std::size_t i = static_cast<std::size_t>(P); i < seq.size(); ++i) {
        if (seq[i] == sampling.stop_token) {
          seq.resize(i + 1);
          break;
        }
      }
    }
    res.generated += static_cast<std::int64_t>(seq.size()) - P;
  }
  res.seconds = sw.elapsed_s();
  if (obs::metrics_enabled()) {
    auto& reg = obs::MetricsRegistry::instance();
    static obs::Counter& tokens = reg.counter("engine.tokens_generated");
    static obs::Counter& calls = reg.counter("engine.generate_calls");
    tokens.add(res.generated);
    calls.add(1);
    reg.histogram("engine.prompt_s").record(res.prompt_seconds);
    reg.histogram("engine.generate_s").record(res.seconds);
  }
  return res;
}

void InferenceEngine::forward_logits(
    const std::vector<std::vector<std::int32_t>>& prompts,
    std::span<float> logits) {
  const Plan plan = validate(prompts);
  const std::int64_t B = plan.batch;
  const std::int64_t P = plan.prompt_len;
  const std::int64_t H = config().hidden;
  const std::int64_t V = config().vocab;
  if (logits.size() < static_cast<std::size_t>(B * V)) {
    throw std::invalid_argument("forward_logits: logits span too small");
  }
  if (opts_.tensor_parallel > 1) {
    throw std::invalid_argument(
        "forward_logits: use generate() with tensor parallelism");
  }
  std::vector<std::int32_t> toks(static_cast<std::size_t>(B * P));
  std::vector<std::int32_t> poss(toks.size());
  for (std::int64_t b = 0; b < B; ++b) {
    for (std::int64_t t = 0; t < P; ++t) {
      toks[static_cast<std::size_t>(b * P + t)] =
          prompts[static_cast<std::size_t>(b)][static_cast<std::size_t>(t)];
      poss[static_cast<std::size_t>(b * P + t)] = static_cast<std::int32_t>(t);
    }
  }
  std::vector<float> x(static_cast<std::size_t>(B * P * H));
  weights_.embed(toks, poss, x);
  std::vector<KVCache> caches;
  const std::int64_t layers =
      streamer_ ? store_->layers()
                : static_cast<std::int64_t>(weights_.layers.size());
  for (std::int64_t l = 0; l < layers; ++l) {
    caches.emplace_back(B, config().heads, config().head_dim(), P);
  }
  run_layers(x, B, P, caches);
  std::vector<float> last(static_cast<std::size_t>(B * H));
  for (std::int64_t b = 0; b < B; ++b) {
    std::memcpy(last.data() + b * H, x.data() + ((b * P) + P - 1) * H,
                static_cast<std::size_t>(H) * sizeof(float));
  }
  weights_.lm_head(last, logits, B);
}

RaggedDecoder::Capabilities RaggedDecoder::Capabilities::supports(
    const EngineOptions& opts, std::int64_t slots) {
  return supports(opts, slots, SamplingOptions{});
}

RaggedDecoder::Capabilities RaggedDecoder::Capabilities::supports(
    const EngineOptions& opts, std::int64_t slots,
    const SamplingOptions& sampling) {
  if (slots < 1) {
    return {false,
            {ConfigError::Code::kBadSlots, "RaggedDecoder: slots must be >= 1"}};
  }
  if (opts.tensor_parallel < 1) {
    return {false,
            {ConfigError::Code::kBadTensorParallel,
             "RaggedDecoder: tensor_parallel must be >= 1"}};
  }
  // Speculative decode (ISSUE 10): feature-gated here — not ad-hoc-thrown —
  // so benches and ServeSpec::validate get the same typed reason.
  if (opts.spec_draft_tokens != 1) {
    if (opts.spec_draft_tokens < 1 || opts.spec_draft_tokens > 8) {
      return {false,
              {ConfigError::Code::kBadSpecDecode,
               "RaggedDecoder: spec_draft_tokens must be in [1, 8]"}};
    }
    if (opts.stream_weights) {
      return {false,
              {ConfigError::Code::kBadSpecDecode,
               "RaggedDecoder: speculative decode requires resident weights "
               "(the draft lane shares the target's resident layers)"}};
    }
    if (sampling.mode != SamplingOptions::Mode::kGreedy) {
      return {false,
              {ConfigError::Code::kBadSpecDecode,
               "RaggedDecoder: speculative decode requires greedy sampling "
               "(exact-match acceptance is a greedy-path identity)"}};
    }
  }
  // Since ISSUE 5 every engine substrate — resident, streamed, tensor-
  // parallel, kv_offload — is serveable on the ragged path.
  return {};
}

RaggedDecoder::RaggedDecoder(InferenceEngine& engine, std::int64_t slots,
                             const SamplingOptions& sampling,
                             std::uint64_t seed)
    : eng_(engine), slots_(slots), sampling_(sampling), rng_(seed) {
  const auto caps = Capabilities::supports(engine.options(), slots, sampling);
  if (!caps.ok) throw ConfigException(caps.reason);
  const auto& opts = engine.options();
  const auto& cfg = engine.config();
  const std::int64_t tp = opts.tensor_parallel;
  const std::int64_t max_seq = std::min(opts.max_seq, cfg.max_seq);
  // Paging geometry (ISSUE 7): kv_page_tokens == 0 keeps the strip layout
  // (page_tokens == max_seq, one page per slot, cache off) — the 8-argument
  // arena constructor degenerates to the legacy behavior exactly.
  const bool paging = opts.kv_page_tokens > 0;
  const std::int64_t pt =
      paging ? std::min(opts.kv_page_tokens, max_seq) : max_seq;
  const std::int64_t pages = paging ? opts.kv_pages : 0;
  const bool prefix = paging && opts.kv_prefix_cache;
  // One head-slice shard per virtual rank; at tp == 1 the single shard is
  // the whole arena. Slot lifecycle — and with paging, every page
  // allocation, prefix match, CoW split, and eviction — is mirrored across
  // shards, so the LIFO free lists and block tables stay identical by
  // construction.
  arenas_.reserve(static_cast<std::size_t>(tp));
  for (std::int64_t r = 0; r < tp; ++r) {
    arenas_.emplace_back(engine.layer_count(), slots, cfg.heads / tp,
                         cfg.head_dim(), max_seq, pt, pages, prefix);
  }
  if (tp > 1) scratches_.resize(static_cast<std::size_t>(tp));
  if (opts.kv_offload) {
    offload_ = std::make_unique<zero::ArenaOffloadLedger>(tp);
  }
  for (std::size_t r = 0; r < arenas_.size(); ++r) {
    arenas_[r].set_spill_sink(
        [this, r](std::size_t out, std::size_t in) {
          on_spill(static_cast<std::int64_t>(r), out, in);
        });
  }
  seqs_.resize(static_cast<std::size_t>(slots));
  commit_.assign(static_cast<std::size_t>(slots), 0);

  // Speculative draft lane (ISSUE 10). The draft shares the target's
  // resident checkpoint: its layers are copies of the first N target layers
  // re-prepared under the draft policy (optionally INT8), plus the target's
  // embeddings, final layernorm, and tied LM head. It always runs
  // single-rank full-width (the layers stay resident even under TP) against
  // a private strip arena — draft KV is scratch, never serving state, so it
  // neither pages nor shards. In knob mode (spec_acceptance in [0, 1]) the
  // lane is instead a full-depth twin under the *target* policy: proposals
  // equal target greedy exactly, then get deterministically corrupted down
  // to the knob rate, while the virtual clock keeps pricing the configured
  // draft — the knob simulates a draft of that cost earning that acceptance.
  spec_k_ = opts.spec_draft_tokens;
  spec_acceptance_ = opts.spec_acceptance;
  if (spec_k_ > 1) {
    const bool oracle = spec_acceptance_ >= 0.0;
    const std::int64_t total_layers = engine.layer_count();
    const std::int64_t nd =
        oracle ? total_layers
               : (opts.spec_draft_layers > 0
                      ? std::min(opts.spec_draft_layers, total_layers)
                      : std::max<std::int64_t>(1, total_layers / 2));
    draft_policy_ = opts.policy;
    if (!oracle && opts.spec_draft_int8) {
      draft_policy_.dtype = kernels::Dtype::kINT8;
      draft_policy_.gemm = kernels::GemmKind::kBlocked;
    }
    draft_layers_.reserve(static_cast<std::size_t>(nd));
    for (std::int64_t l = 0; l < nd; ++l) {
      const auto& src = engine.weights_.layers[static_cast<std::size_t>(l)];
      kernels::LayerWeights d;
      d.hidden = src.hidden;
      d.heads = src.heads;
      d.ffn = src.ffn;
      d.ln1_g = src.ln1_g.clone();
      d.ln1_b = src.ln1_b.clone();
      d.ln2_g = src.ln2_g.clone();
      d.ln2_b = src.ln2_b.clone();
      d.w_qkv = src.w_qkv.clone();
      d.b_qkv = src.b_qkv.clone();
      d.w_attn_out = src.w_attn_out.clone();
      d.b_attn_out = src.b_attn_out.clone();
      d.w_fc1 = src.w_fc1.clone();
      d.b_fc1 = src.b_fc1.clone();
      d.w_fc2 = src.w_fc2.clone();
      d.b_fc2 = src.b_fc2.clone();
      d.prepare(draft_policy_);
      draft_layers_.push_back(std::move(d));
    }
    draft_arena_ = std::make_unique<kernels::KVArena>(
        nd, slots, cfg.heads, cfg.head_dim(), max_seq, max_seq,
        /*pages=*/0, /*prefix=*/false);
    draft_len_.assign(static_cast<std::size_t>(slots), 0);
    accept_acc_.assign(static_cast<std::size_t>(slots), 0.0);
  }
}

std::size_t RaggedDecoder::offload_bytes(std::int64_t rank) const {
  return offload_ ? offload_->bytes(rank) : 0;
}

std::int64_t RaggedDecoder::acquire_all() {
  const std::int64_t slot = arenas_[0].acquire();
  if (slot < 0) return -1;
  for (std::size_t r = 1; r < arenas_.size(); ++r) {
    if (arenas_[r].acquire() != slot) {
      throw std::logic_error("RaggedDecoder: arena shards diverged");
    }
  }
  // The draft arena shares the shard free-list discipline (same LIFO order,
  // same slot ids) so draft state is addressed by the same slot index.
  if (draft_arena_ && draft_arena_->acquire() != slot) {
    throw std::logic_error("RaggedDecoder: draft arena diverged");
  }
  return slot;
}

void RaggedDecoder::release_all(std::int64_t slot) {
  committed_pages_ -= commit_[static_cast<std::size_t>(slot)];
  commit_[static_cast<std::size_t>(slot)] = 0;
  for (auto& a : arenas_) a.release(slot);
  if (draft_arena_) {
    draft_arena_->release(slot);
    draft_len_[static_cast<std::size_t>(slot)] = 0;
    accept_acc_[static_cast<std::size_t>(slot)] = 0.0;
  }
}

bool RaggedDecoder::fits(std::int64_t prompt_tokens,
                         std::int64_t max_new) const {
  if (prompt_tokens < 1 || max_new < 1) return false;
  const auto& a = arenas_[0];
  if (prompt_tokens + max_new > a.max_seq()) return false;
  return a.pages_needed(prompt_tokens + max_new) <= a.total_pages();
}

bool RaggedDecoder::can_admit(std::span<const std::int32_t> prompt,
                              std::int64_t max_new) const {
  const auto& a = arenas_[0];
  const auto P = static_cast<std::int64_t>(prompt.size());
  if (!fits(P, max_new) || a.free_slots() == 0) return false;
  if (!a.paged()) return true;  // strip mode: one page == one slot
  // Worst-case private-page demand for this request: every page it may ever
  // write. Fully-matched resident prefix pages are never written by this
  // slot (appends start past them), so they discount the commitment; the
  // match does pin them (evictable -> held), which `new_holds` charges.
  const auto pr = a.probe_prefix(prompt);
  const std::int64_t commit =
      a.pages_needed(P + max_new) - pr.full_pages_resident;
  return committed_pages_ + a.shared_held_pages() + pr.new_holds + commit <=
         a.total_pages();
}

void RaggedDecoder::rewind_all(std::int64_t slot, std::int64_t len) {
  for (auto& a : arenas_) a.rewind(slot, len);
}

void RaggedDecoder::run_ragged(std::span<const std::int32_t> slots,
                               std::span<const std::int32_t> positions) {
  if (arenas_.size() > 1) {
    eng_.run_layers_ragged_tp(x_, slots, positions, arenas_, xr_, scratches_);
  } else {
    eng_.run_layers_ragged(x_, slots, positions, arenas_[0]);
  }
}

void RaggedDecoder::offload_cycle() {
  if (!offload_) return;
  DSI_TRACE_SCOPE("engine", "kv_offload");
  std::size_t moved = 0;
  for (std::size_t r = 0; r < arenas_.size(); ++r) {
    moved += offload_->round_trip(arenas_[r], static_cast<std::int64_t>(r));
  }
  eng_.kv_offload_bytes_ += moved;
  static obs::Counter& kv_bytes =
      obs::MetricsRegistry::instance().counter("engine.kv_offload.bytes");
  kv_bytes.add(static_cast<std::int64_t>(moved));
}

void RaggedDecoder::on_spill(std::int64_t rank, std::size_t out,
                             std::size_t in) {
  if (offload_) offload_->add_spill(rank, out + in);
  if (obs::metrics_enabled()) {
    static obs::Counter& spill =
        obs::MetricsRegistry::instance().counter("engine.kv_spill.bytes");
    spill.add(static_cast<std::int64_t>(out + in));
  }
}

void RaggedDecoder::publish_kv_metrics() {
  if (!obs::metrics_enabled()) return;
  auto& reg = obs::MetricsRegistry::instance();
  static obs::Gauge& pages = reg.gauge("kv.pages_in_use");
  static obs::Counter& hits = reg.counter("kv.prefix_hits");
  static obs::Counter& hit_toks = reg.counter("kv.prefix_hit_tokens");
  static obs::Counter& cows = reg.counter("kv.cow_splits");
  static obs::Counter& prompt_toks = reg.counter("kv.prompt_tokens");
  const auto& a = arenas_[0];
  pages.set(static_cast<double>(a.pages_in_use()));
  hits.add(a.prefix_hits() - pub_hits_);
  hit_toks.add(a.prefix_hit_tokens() - pub_hit_tokens_);
  cows.add(a.cow_splits() - pub_cow_);
  prompt_toks.add(prompt_tokens_ - pub_prompt_tokens_);
  pub_hits_ = a.prefix_hits();
  pub_hit_tokens_ = a.prefix_hit_tokens();
  pub_cow_ = a.cow_splits();
  pub_prompt_tokens_ = prompt_tokens_;
  if (spec_k_ > 1) {
    static obs::Counter& sp = reg.counter("spec.proposed_tokens");
    static obs::Counter& sa = reg.counter("spec.accepted_tokens");
    static obs::Counter& sr = reg.counter("spec.rollback_tokens");
    static obs::Gauge& rate = reg.gauge("spec.acceptance_rate");
    sp.add(spec_proposed_ - pub_spec_prop_);
    sa.add(spec_accepted_ - pub_spec_acc_);
    sr.add(spec_rollback_ - pub_spec_rb_);
    rate.set(spec_acceptance_rate());
    pub_spec_prop_ = spec_proposed_;
    pub_spec_acc_ = spec_accepted_;
    pub_spec_rb_ = spec_rollback_;
  }
}

double RaggedDecoder::spec_draft_cost_factor(const EngineOptions& opts,
                                             std::int64_t layer_count) {
  if (opts.spec_draft_tokens <= 1 || layer_count <= 0) return 0.0;
  const std::int64_t nd =
      opts.spec_draft_layers > 0
          ? std::min(opts.spec_draft_layers, layer_count)
          : std::max<std::int64_t>(1, layer_count / 2);
  double f = static_cast<double>(opts.spec_draft_tokens - 1) *
             static_cast<double>(nd) / static_cast<double>(layer_count);
  if (opts.spec_draft_int8) f *= 0.5;
  return f;
}

double RaggedDecoder::spec_step_tokens(const EngineOptions& opts) {
  if (opts.spec_draft_tokens <= 1 || opts.spec_acceptance < 0) return 1.0;
  double t = 1.0, p = 1.0;
  for (std::int64_t j = 1; j < opts.spec_draft_tokens; ++j) {
    p *= opts.spec_acceptance;
    t += p;
  }
  return t;
}

std::int64_t RaggedDecoder::spec_k_eff(const Seq& s) const {
  return std::min(spec_k_, s.max_new - s.generated);
}

const RaggedDecoder::Seq& RaggedDecoder::checked(std::int64_t slot) const {
  if (!arenas_[0].in_use(slot)) {
    throw std::invalid_argument("RaggedDecoder: slot not active");
  }
  return seqs_[static_cast<std::size_t>(slot)];
}

std::int32_t RaggedDecoder::sample_row(std::span<const float> logits_row) {
  return sample_token(logits_row, sampling_, rng_);
}

void RaggedDecoder::publish_chunk(std::int64_t slot,
                                  std::span<const std::int32_t> prompt) {
  if (!arenas_[0].prefix_cache_enabled()) return;
  const std::int64_t pub = arenas_[0].publish_prefix(slot, prompt);
  for (std::size_t r = 1; r < arenas_.size(); ++r) {
    if (arenas_[r].publish_prefix(slot, prompt) != pub) {
      throw std::logic_error("RaggedDecoder: arena shards diverged");
    }
  }
  // Published pages moved from this slot's private commitment to the
  // cache's shared-held accounting; drop them so can_admit doesn't count
  // them twice. publish_prefix covers only fully written prompt pages, so a
  // chunk boundary landing mid-page leaves that page private until a later
  // chunk completes it.
  auto& c = commit_[static_cast<std::size_t>(slot)];
  const std::int64_t drop = std::min(pub, c);
  c -= drop;
  committed_pages_ -= drop;
}

void RaggedDecoder::propose_drafts() {
  const std::int64_t H = eng_.config().hidden;
  const std::int64_t V = eng_.config().vocab;
  const bool oracle = spec_acceptance_ >= 0.0;
  static thread_local kernels::LayerScratch dscratch;
  const auto ns = spec_slots_.size();

  auto run_draft = [&](std::span<const std::int32_t> ids,
                       std::span<const std::int32_t> poss, std::span<float> x) {
    DSI_TRACE_SCOPE("engine", "draft");
    for (std::size_t l = 0; l < draft_layers_.size(); ++l) {
      kernels::transformer_layer_forward_ragged(
          draft_layers_[l], *draft_arena_, static_cast<std::int64_t>(l), ids,
          poss, x, draft_policy_, dscratch);
    }
  };
  auto amax = [](std::span<const float> row) {
    return static_cast<std::int32_t>(
        std::max_element(row.begin(), row.end()) - row.begin());
  };
  // Knob mode decides each slot's accepted-prefix length for THIS step up
  // front: one Bresenham draw per slot per step on the geometric expected
  // accepted count E = a + a^2 + ... + a^(k_eff-1), so the realized advance
  // averages exactly spec_step_tokens(). Proposals within the keep prefix
  // stay oracle (== target greedy, so exact-match verify accepts them);
  // proposals past it get corrupted — (tok + 1) % vocab can never equal the
  // oracle token, so verify rejects them. The fleet_sim DES twin runs the
  // identical arithmetic, so the curves agree double-for-double.
  spec_keep_.assign(ns, 0);
  if (oracle) {
    for (std::size_t i = 0; i < ns; ++i) {
      double e = 0.0, p = 1.0;
      for (std::int64_t j = 1; j < spec_k_eff_[i]; ++j) {
        p *= spec_acceptance_;
        e += p;
      }
      double& acc =
          accept_acc_[static_cast<std::size_t>(spec_slots_[i])];
      acc += e;
      const std::int64_t nkeep =
          std::min(static_cast<std::int64_t>(std::floor(acc + 1e-12)),
                   spec_k_eff_[i] - 1);
      acc -= static_cast<double>(nkeep);
      spec_keep_[i] = nkeep;
    }
  }
  auto propose_tok = [&](std::size_t i, std::int64_t j,
                         std::int32_t tok) -> std::int32_t {
    if (!oracle || j <= spec_keep_[i]) return tok;
    return static_cast<std::int32_t>((tok + 1) % V);
  };

  // Per-slot proposal layout: slot i's k_eff - 1 proposals start at
  // prop_begin_[i].
  prop_begin_.resize(ns);
  std::int64_t total = 0;
  for (std::size_t i = 0; i < ns; ++i) {
    prop_begin_[i] = total;
    total += spec_k_eff_[i] - 1;
  }
  prop_toks_.resize(static_cast<std::size_t>(total));

  // Stage 1 — catch-up + first proposal: one ragged draft step feeds every
  // slot's tokens[draft_len .. target_len] (through the sampled-but-unfed
  // next_tok), so a fresh or deep-rewound slot rebuilds its whole draft KV
  // here and a steady-state slot feeds the rows kept after the last verify.
  dtoks_.clear();
  dposs_.clear();
  dslot_ids_.clear();
  for (std::size_t i = 0; i < ns; ++i) {
    const std::int64_t s = spec_slots_[i];
    const auto& seq = seqs_[static_cast<std::size_t>(s)];
    const std::int64_t L = arenas_[0].seq_len(s);
    for (std::int64_t p = draft_len_[static_cast<std::size_t>(s)]; p <= L;
         ++p) {
      dslot_ids_.push_back(static_cast<std::int32_t>(s));
      dtoks_.push_back(seq.tokens[static_cast<std::size_t>(p)]);
      dposs_.push_back(static_cast<std::int32_t>(p));
    }
  }
  const auto rows = static_cast<std::int64_t>(dtoks_.size());
  dx_.resize(static_cast<std::size_t>(rows * H));
  eng_.weights_.embed(dtoks_, dposs_, dx_);
  run_draft(dslot_ids_, dposs_, dx_);
  // Gather each slot's final catch-up row; its logits argmax is d1.
  dlast_.resize(ns * static_cast<std::size_t>(H));
  {
    std::int64_t row = 0;
    for (std::size_t i = 0; i < ns; ++i) {
      const std::int64_t s = spec_slots_[i];
      const std::int64_t took =
          arenas_[0].seq_len(s) + 1 - draft_len_[static_cast<std::size_t>(s)];
      row += took;
      std::memcpy(dlast_.data() + static_cast<std::int64_t>(i) * H,
                  dx_.data() + (row - 1) * H,
                  static_cast<std::size_t>(H) * sizeof(float));
      draft_len_[static_cast<std::size_t>(s)] = arenas_[0].seq_len(s) + 1;
    }
  }
  dlogits_.resize(ns * static_cast<std::size_t>(V));
  eng_.weights_.lm_head(dlast_, dlogits_, static_cast<std::int64_t>(ns));
  for (std::size_t i = 0; i < ns; ++i) {
    prop_toks_[static_cast<std::size_t>(prop_begin_[i])] = propose_tok(
        i, 1,
        amax(std::span<const float>(dlogits_).subspan(
            i * static_cast<std::size_t>(V), static_cast<std::size_t>(V))));
  }

  // Stages 2..k-1 — chain one row per still-proposing slot: feed the
  // previous (post-corruption) proposal, argmax the new logits.
  std::int64_t max_k = 0;
  for (std::size_t i = 0; i < ns; ++i) max_k = std::max(max_k, spec_k_eff_[i]);
  for (std::int64_t j = 2; j < max_k; ++j) {
    dtoks_.clear();
    dposs_.clear();
    dslot_ids_.clear();
    for (std::size_t i = 0; i < ns; ++i) {
      if (spec_k_eff_[i] <= j) continue;
      const std::int64_t s = spec_slots_[i];
      dslot_ids_.push_back(static_cast<std::int32_t>(s));
      dtoks_.push_back(
          prop_toks_[static_cast<std::size_t>(prop_begin_[i] + j - 2)]);
      dposs_.push_back(
          static_cast<std::int32_t>(draft_len_[static_cast<std::size_t>(s)]));
    }
    const auto jn = static_cast<std::int64_t>(dtoks_.size());
    dx_.resize(static_cast<std::size_t>(jn * H));
    eng_.weights_.embed(dtoks_, dposs_, dx_);
    run_draft(dslot_ids_, dposs_, dx_);
    dlogits_.resize(static_cast<std::size_t>(jn * V));
    eng_.weights_.lm_head(dx_, dlogits_, jn);
    std::int64_t row = 0;
    for (std::size_t i = 0; i < ns; ++i) {
      if (spec_k_eff_[i] <= j) continue;
      ++draft_len_[static_cast<std::size_t>(spec_slots_[i])];
      prop_toks_[static_cast<std::size_t>(prop_begin_[i] + j - 1)] =
          propose_tok(i, j,
                      amax(std::span<const float>(dlogits_).subspan(
                          static_cast<std::size_t>(row * V),
                          static_cast<std::size_t>(V))));
      ++row;
    }
  }
}

std::int64_t RaggedDecoder::admit(const std::vector<std::int32_t>& prompt,
                                  std::int64_t max_new) {
  if (prompt.empty()) throw std::invalid_argument("admit: empty prompt");
  if (max_new < 1) throw std::invalid_argument("admit: max_new >= 1");
  const std::int64_t P = static_cast<std::int64_t>(prompt.size());
  if (P + max_new > arenas_[0].max_seq()) {
    throw std::invalid_argument("admit: sequence exceeds max_seq");
  }
  const std::int64_t slot = acquire_all();
  if (slot < 0) return -1;

  DSI_TRACE_SCOPE("engine", "prefill");
  // Prefix-cache match in shard lockstep (ISSUE 7): the match is a pure
  // function of token ids and call order, so every rank shares the same
  // pages of its own head slice and reports the same length. The match
  // always leaves >= 1 prompt token for the suffix prefill (logits row).
  std::int64_t matched = 0;
  if (arenas_[0].prefix_cache_enabled()) {
    matched = arenas_[0].match_prefix(slot, prompt);
    for (std::size_t r = 1; r < arenas_.size(); ++r) {
      if (arenas_[r].match_prefix(slot, prompt) != matched) {
        throw std::logic_error("RaggedDecoder: arena shards diverged");
      }
    }
  }
  // Page-budget commitment: every page this slot may still write (shared
  // full pages excluded — appends start past them). Released with the slot.
  commit_[static_cast<std::size_t>(slot)] =
      arenas_[0].paged()
          ? arenas_[0].pages_needed(P + max_new) -
                matched / arenas_[0].page_tokens()
          : 1;
  committed_pages_ += commit_[static_cast<std::size_t>(slot)];
  prompt_tokens_ += P;
  // Counted at the same commit point as prompt_tokens_ and the arena's hit
  // counter, so prompt_tokens == prefix_hit_tokens + suffix_prefill_tokens
  // holds exactly — including across faulted-and-retried admissions, which
  // re-run the match and re-count all three sides (ISSUE 9 metric audit).
  suffix_tokens_ += P - matched;

  auto& seq = seqs_[static_cast<std::size_t>(slot)];
  seq = Seq{};
  seq.tokens = prompt;
  seq.prompt_len = P;
  seq.max_new = max_new;
  seq.prefill_pos = matched;

  const std::int64_t H = eng_.config().hidden;
  const std::int64_t V = eng_.config().vocab;
  const std::int64_t S = P - matched;  // suffix still to prefill
  // Chunked prefill (ISSUE 9): run only the first chunk here; step() carries
  // the cursor forward interleaved with the other slots' decode rows.
  const std::int64_t chunk = eng_.opts_.prefill_chunk_tokens;
  const std::int64_t rows = (chunk > 0 && chunk < S) ? chunk : S;
  toks_.assign(prompt.begin() + matched, prompt.begin() + matched + rows);
  poss_.resize(static_cast<std::size_t>(rows));
  slot_ids_.assign(static_cast<std::size_t>(rows),
                   static_cast<std::int32_t>(slot));
  for (std::int64_t i = 0; i < rows; ++i) {
    poss_[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(matched + i);
  }
  x_.resize(static_cast<std::size_t>(rows * H));
  eng_.weights_.embed(toks_, poss_, x_);
  try {
    run_ragged(slot_ids_, poss_);
  } catch (...) {
    // A fault mid-stack (zero::StreamFault, comm::CommFault) must not leak
    // the slot: release every shard so the caller can retry the admission
    // cleanly (shared prefix pages survive in the cache for the retry).
    release_all(slot);
    throw;
  }
  seq.prefill_pos = matched + rows;
  last_prefill_rows_ = rows;
  last_decode_rows_ = 0;
  last_spec_tokens_ = 0;
  publish_chunk(slot, prompt);

  if (seq.prefill_pos == P) {
    logits_.resize(static_cast<std::size_t>(V));
    eng_.weights_.lm_head(
        std::span<const float>(x_).subspan(
            static_cast<std::size_t>((rows - 1) * H),
            static_cast<std::size_t>(H)),
        logits_, 1);
    const std::int32_t tok = sample_row(logits_);
    seq.tokens.push_back(tok);
    seq.next_tok = tok;
    seq.generated = 1;
    seq.stopped = sampling_.stop_token >= 0 && tok == sampling_.stop_token;
    last_spec_tokens_ = 1;
  }
  offload_cycle();
  publish_kv_metrics();
  return slot;
}

std::int64_t RaggedDecoder::step() {
  // Live set in ascending slot order: deterministic for a given admission
  // history, independent of retirement order. Mid-prefill slots share one
  // global budget of prefill_chunk_tokens prompt rows per iteration (slot
  // order, first-come) so the iteration's prefill work — and its charge on
  // the virtual clock — stays bounded no matter how many long prompts are
  // in flight; every other unfinished slot contributes one decode row — all
  // in the same fused ragged step (ISSUE 9).
  const std::int64_t chunk = eng_.opts_.prefill_chunk_tokens;
  std::int64_t budget =
      chunk > 0 ? chunk : std::numeric_limits<std::int64_t>::max();
  slot_ids_.clear();
  toks_.clear();
  poss_.clear();
  step_slots_.clear();
  step_pre_len_.clear();
  step_prefill_rows_.clear();
  sample_slots_.clear();
  sample_row_idx_.clear();
  last_prefill_rows_ = 0;
  last_decode_rows_ = 0;
  last_spec_tokens_ = 0;
  // Speculative pass (ISSUE 10): classify the decode-ready spec-active
  // slots and run the draft lane BEFORE the target step — the verify rows
  // embed the proposals, and only the target step can fault (the draft is
  // resident single-rank, no comm), so the CommFault catch below can restore
  // the draft to its recorded pre-step state. A slot whose remaining budget
  // only admits one more token (k_eff < 2) takes the plain decode row.
  spec_slots_.clear();
  spec_k_eff_.clear();
  spec_row0_.clear();
  step_draft_pre_len_.clear();
  step_acc_pre_.clear();
  if (spec_k_ > 1) {
    for (std::int64_t s = 0; s < slots_; ++s) {
      if (!arenas_[0].in_use(s)) continue;
      const auto& seq = seqs_[static_cast<std::size_t>(s)];
      if (seq.prefill_pos < seq.prompt_len || seq.stopped ||
          seq.generated >= seq.max_new) {
        continue;
      }
      const std::int64_t ke = spec_k_eff(seq);
      if (ke < 2) continue;
      spec_slots_.push_back(static_cast<std::int32_t>(s));
      spec_k_eff_.push_back(ke);
      spec_row0_.push_back(0);  // filled when rows are laid out below
      step_draft_pre_len_.push_back(draft_len_[static_cast<std::size_t>(s)]);
      step_acc_pre_.push_back(accept_acc_[static_cast<std::size_t>(s)]);
    }
    if (!spec_slots_.empty()) propose_drafts();
  }
  std::size_t si = 0;  // cursor into spec_slots_ (both walks are slot-ordered)
  for (std::int64_t s = 0; s < slots_; ++s) {
    if (!arenas_[0].in_use(s)) continue;
    auto& seq = seqs_[static_cast<std::size_t>(s)];
    std::int64_t prefill_rows = 0;
    if (seq.prefill_pos < seq.prompt_len) {
      // Mid-prefill: the next chunk of prompt rows, cursor onward, capped
      // by what is left of this iteration's budget. A slot that gets no
      // budget sits the iteration out (it cannot decode yet either).
      const std::int64_t left = seq.prompt_len - seq.prefill_pos;
      const std::int64_t rows = std::min(left, budget);
      if (rows == 0) continue;
      budget -= rows;
      prefill_rows = rows;
      for (std::int64_t i = 0; i < rows; ++i) {
        slot_ids_.push_back(static_cast<std::int32_t>(s));
        toks_.push_back(
            seq.tokens[static_cast<std::size_t>(seq.prefill_pos + i)]);
        poss_.push_back(static_cast<std::int32_t>(seq.prefill_pos + i));
      }
      if (seq.prefill_pos + rows == seq.prompt_len) {
        // This chunk completes the prompt: its final row's logits sample
        // the sequence's first token.
        sample_slots_.push_back(static_cast<std::int32_t>(s));
        sample_row_idx_.push_back(
            static_cast<std::int64_t>(slot_ids_.size()) - 1);
      }
      last_prefill_rows_ += rows;
    } else if (!finished(s)) {
      if (si < spec_slots_.size() && spec_slots_[si] == s) {
        // Speculative verify window: k_eff rows — the sampled-but-unfed
        // next_tok plus the k_eff - 1 draft proposals — all verified in the
        // same fused ragged step (the k-row verify rides the
        // bandwidth-bound GeMM nearly free; ISSUE 10). Sampling for these
        // rows is the exact-match acceptance scan below, not sample_slots_.
        const std::int64_t ke = spec_k_eff_[si];
        const std::int64_t L = arenas_[0].seq_len(s);
        spec_row0_[si] = static_cast<std::int64_t>(slot_ids_.size());
        slot_ids_.push_back(static_cast<std::int32_t>(s));
        toks_.push_back(seq.next_tok);
        poss_.push_back(static_cast<std::int32_t>(L));
        for (std::int64_t j = 1; j < ke; ++j) {
          slot_ids_.push_back(static_cast<std::int32_t>(s));
          toks_.push_back(prop_toks_[static_cast<std::size_t>(
              prop_begin_[si] + j - 1)]);
          poss_.push_back(static_cast<std::int32_t>(L + j));
        }
        last_decode_rows_ += ke;
        ++si;
      } else {
        slot_ids_.push_back(static_cast<std::int32_t>(s));
        toks_.push_back(seq.next_tok);
        poss_.push_back(static_cast<std::int32_t>(arenas_[0].seq_len(s)));
        sample_slots_.push_back(static_cast<std::int32_t>(s));
        sample_row_idx_.push_back(static_cast<std::int64_t>(slot_ids_.size()) -
                                  1);
        ++last_decode_rows_;
      }
    } else {
      continue;
    }
    step_slots_.push_back(static_cast<std::int32_t>(s));
    step_pre_len_.push_back(arenas_[0].seq_len(s));
    step_prefill_rows_.push_back(prefill_rows);
  }
  const std::int64_t n = static_cast<std::int64_t>(slot_ids_.size());
  const std::int64_t advanced = static_cast<std::int64_t>(step_slots_.size());
  if (n == 0) return 0;

  obs::TraceScope step_scope(
      "engine", obs::trace_enabled() ? "ragged step x" + std::to_string(n)
                                     : std::string());
  const std::int64_t H = eng_.config().hidden;
  const std::int64_t V = eng_.config().vocab;
  x_.resize(static_cast<std::size_t>(n * H));
  eng_.weights_.embed(toks_, poss_, x_);
  try {
    run_ragged(slot_ids_, poss_);
  } catch (...) {
    // A fault mid-stack leaves the early layers ahead of the rest; rewind
    // every participating slot on every shard to its pre-step length so a
    // retry sees a consistent arena (the all-reduce barriers keep ranks in
    // lockstep, so every shard appended the same layers before the fault).
    // One rewind per slot — a mid-prefill slot's whole chunk unwinds to the
    // cursor, which only advances after a successful step.
    for (std::size_t i = 0; i < step_slots_.size(); ++i) {
      rewind_all(step_slots_[i], step_pre_len_[i]);
    }
    // Spec slots also unwind the draft lane — KV rows and the acceptance
    // accumulator — to their recorded pre-step state, so the retried step
    // re-proposes the identical draft (ISSUE 10).
    for (std::size_t i = 0; i < spec_slots_.size(); ++i) {
      const auto s = static_cast<std::size_t>(spec_slots_[i]);
      draft_arena_->rewind(spec_slots_[i], step_draft_pre_len_[i]);
      draft_len_[s] = step_draft_pre_len_[i];
      accept_acc_[s] = step_acc_pre_[i];
    }
    throw;
  }
  // Advance prefill cursors by exactly the rows each slot ran and publish
  // completed prompt pages per chunk.
  for (std::size_t i = 0; i < step_slots_.size(); ++i) {
    if (step_prefill_rows_[i] == 0) continue;
    auto& seq = seqs_[static_cast<std::size_t>(step_slots_[i])];
    seq.prefill_pos += step_prefill_rows_[i];
    publish_chunk(step_slots_[i], seq.tokens);
  }
  // Sampling runs over the decode rows, the final prompt row of any slot
  // that just completed prefill, and every spec slot's verify rows, gathered
  // compactly (per-row lm_head results are independent of the gather, so
  // greedy tokens stay bit-identical to monolithic prefill and to the
  // non-speculative path).
  const std::int64_t k = static_cast<std::int64_t>(sample_slots_.size());
  std::int64_t spec_rows = 0;
  for (auto ke : spec_k_eff_) spec_rows += ke;
  const std::int64_t rows = k + spec_rows;
  if (rows > 0) {
    last_.resize(static_cast<std::size_t>(rows * H));
    for (std::int64_t i = 0; i < k; ++i) {
      std::memcpy(last_.data() + i * H,
                  x_.data() + sample_row_idx_[static_cast<std::size_t>(i)] * H,
                  static_cast<std::size_t>(H) * sizeof(float));
    }
    {
      std::int64_t at = k;
      for (std::size_t i = 0; i < spec_slots_.size(); ++i) {
        std::memcpy(last_.data() + at * H, x_.data() + spec_row0_[i] * H,
                    static_cast<std::size_t>(spec_k_eff_[i] * H) *
                        sizeof(float));
        at += spec_k_eff_[i];
      }
    }
    logits_.resize(static_cast<std::size_t>(rows * V));
    eng_.weights_.lm_head(last_, logits_, rows);
    for (std::int64_t i = 0; i < k; ++i) {
      auto& seq =
          seqs_[static_cast<std::size_t>(sample_slots_[static_cast<std::size_t>(i)])];
      const std::int32_t tok =
          sample_row(std::span<const float>(logits_).subspan(
              static_cast<std::size_t>(i * V), static_cast<std::size_t>(V)));
      seq.tokens.push_back(tok);
      seq.next_tok = tok;
      ++seq.generated;
      ++last_spec_tokens_;
      if (sampling_.stop_token >= 0 && tok == sampling_.stop_token) {
        seq.stopped = true;
      }
    }
    // Exact-match acceptance scan (ISSUE 10). Verify row j-1 of a spec slot
    // holds the target's logits for sequence position L+j, so its argmax
    // g_j is exactly the token the non-speculative path would have sampled
    // after feeding the same context. Proposal d_j is accepted iff it equals
    // g_j and every earlier proposal was accepted; the step then appends the
    // accepted prefix plus the bonus token g_{a+1} — every appended token is
    // an argmax the plain path would have produced, so the stream is
    // bit-identical — and rewinds the rejected-suffix KV rows on every
    // shard through the page-granular rewind machinery.
    auto amax = [&](std::int64_t row) {
      const auto r = std::span<const float>(logits_).subspan(
          static_cast<std::size_t>(row * V), static_cast<std::size_t>(V));
      return static_cast<std::int32_t>(
          std::max_element(r.begin(), r.end()) - r.begin());
    };
    std::int64_t base = k;
    for (std::size_t i = 0; i < spec_slots_.size(); ++i) {
      const std::int64_t s = spec_slots_[i];
      const std::int64_t ke = spec_k_eff_[i];
      auto& seq = seqs_[static_cast<std::size_t>(s)];
      const std::int64_t L = arenas_[0].seq_len(s) - ke;  // pre-step length
      std::int64_t a = 0;
      for (std::int64_t j = 1; j < ke; ++j) {
        if (prop_toks_[static_cast<std::size_t>(prop_begin_[i] + j - 1)] !=
            amax(base + j - 1)) {
          break;
        }
        ++a;
      }
      std::int64_t m = 0;
      for (std::int64_t t = 0; t <= a; ++t) {
        const std::int32_t g = amax(base + t);
        seq.tokens.push_back(g);
        ++m;
        if (sampling_.stop_token >= 0 && g == sampling_.stop_token) {
          seq.stopped = true;
          break;
        }
      }
      seq.generated += m;
      seq.next_tok = seq.tokens.back();
      rewind_all(s, L + m);
      // Draft rows past the accepted-and-kept prefix fed tokens that are no
      // longer (or never were) part of the sequence; the next propose()
      // catch-up refeeds from here. Kept rows: the next_tok row plus every
      // fed proposal that both survived acceptance and still exists after
      // stop truncation (at most ke - 2 proposals were fed to the draft).
      const std::int64_t keep = std::min({a, m, ke - 2});
      draft_len_[static_cast<std::size_t>(s)] = L + 1 + keep;
      draft_arena_->rewind(s, L + 1 + keep);
      spec_proposed_ += ke - 1;
      spec_accepted_ += a;
      spec_rollback_ += ke - m;
      last_spec_tokens_ += m;
      base += ke;
    }
  }
  offload_cycle();
  publish_kv_metrics();
  return advanced;
}

bool RaggedDecoder::finished(std::int64_t slot) const {
  const Seq& s = checked(slot);
  return s.stopped || s.generated >= s.max_new;
}

bool RaggedDecoder::stopped(std::int64_t slot) const {
  return checked(slot).stopped;
}

std::int64_t RaggedDecoder::generated(std::int64_t slot) const {
  return checked(slot).generated;
}

const std::vector<std::int32_t>& RaggedDecoder::tokens(
    std::int64_t slot) const {
  return checked(slot).tokens;
}

void RaggedDecoder::retire(std::int64_t slot) {
  checked(slot);  // validates
  release_all(slot);
}

std::vector<std::int32_t> byte_tokenize(const std::string& text) {
  std::vector<std::int32_t> out;
  out.reserve(text.size());
  for (unsigned char c : text) out.push_back(static_cast<std::int32_t>(c));
  return out;
}

std::string byte_detokenize(std::span<const std::int32_t> tokens) {
  std::string out;
  out.reserve(tokens.size());
  for (auto t : tokens) {
    out.push_back(t >= 32 && t < 127 ? static_cast<char>(t) : '?');
  }
  return out;
}

}  // namespace dsinfer::core
