// Synthetic serving workloads: Poisson arrivals with sampled prompt/output
// lengths — the substitute for the production traces the paper's
// latency/throughput scenarios come from (no public trace exists; see
// DESIGN.md). Deterministic per seed.
#pragma once

#include <cstdint>
#include <vector>

#include "core/server.h"

namespace dsinfer::core {

struct WorkloadSpec {
  double arrival_rate_hz = 10.0;  // mean request rate (Poisson process)
  double duration_s = 1.0;        // arrivals occur in [0, duration)
  std::vector<std::int64_t> prompt_lengths = {8, 16};  // sampled uniformly
  std::int64_t min_new_tokens = 2;
  std::int64_t max_new_tokens = 8;
  std::int32_t vocab = 256;  // prompt token ids sampled in [0, vocab)
  std::uint64_t seed = 1;
};

// Generates a request trace; arrival gaps are exponential with the given
// rate, truncated at `duration_s`. Ids are assigned in arrival order.
std::vector<TimedRequest> generate_poisson_trace(const WorkloadSpec& spec);

// Aggregate latency statistics. Latency percentiles cover served requests
// only (shed/failed requests have no end-to-end latency to speak of);
// `requests` counts everything that entered the trace.
struct ServingSummary {
  std::size_t requests = 0;
  std::size_t served = 0;  // produced tokens (kOk/kDegraded/kTimedOut)
  double mean_latency_s = 0;
  double p50_latency_s = 0;
  double p95_latency_s = 0;
  double p99_latency_s = 0;
  double mean_batch_size = 0;
  double tokens_per_s = 0;  // generated tokens / makespan
  double served_per_s = 0;  // served requests / makespan (goodput)
};

ServingSummary summarize_serving(const std::vector<RequestStats>& stats);

}  // namespace dsinfer::core
