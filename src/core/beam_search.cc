#include "core/beam_search.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "kernels/elementwise.h"
#include "kernels/transformer_layer.h"

namespace dsinfer::core {

namespace {

// Log-softmax of one logits row evaluated at every index.
std::vector<double> log_softmax(std::span<const float> logits) {
  float mx = logits[0];
  for (float v : logits) mx = std::max(mx, v);
  double denom = 0;
  for (float v : logits) denom += std::exp(static_cast<double>(v - mx));
  const double log_denom = std::log(denom);
  std::vector<double> out(logits.size());
  for (std::size_t i = 0; i < logits.size(); ++i) {
    out[i] = static_cast<double>(logits[i] - mx) - log_denom;
  }
  return out;
}

struct BeamState {
  std::vector<std::int32_t> tokens;
  double log_prob = 0;
  // Per-layer compact KV snapshots [layers][batch*heads*seq*hd].
  std::vector<std::vector<float>> kv_k, kv_v;
  std::int64_t kv_len = 0;
  std::vector<float> last_hidden;  // [hidden]
};

}  // namespace

std::vector<BeamHypothesis> beam_search(const GptWeights& weights,
                                        const std::vector<std::int32_t>& prompt,
                                        const BeamSearchOptions& opts) {
  if (prompt.empty() || opts.beams < 1 || opts.new_tokens < 1) {
    throw std::invalid_argument("beam_search: bad arguments");
  }
  const auto& cfg = weights.config;
  const std::int64_t H = cfg.hidden;
  const std::int64_t V = cfg.vocab;
  const std::int64_t P = static_cast<std::int64_t>(prompt.size());
  const std::int64_t total_len = P + opts.new_tokens;
  if (total_len > cfg.max_seq) {
    throw std::invalid_argument("beam_search: exceeds max_seq");
  }
  const std::int64_t layers = static_cast<std::int64_t>(weights.layers.size());
  const kernels::KernelPolicy policy =
      kernels::KernelPolicy::optimized_large_batch();

  // --- Prompt pass on a single sequence, snapshotting the caches. ---
  std::vector<kernels::KVCache> caches;
  caches.reserve(static_cast<std::size_t>(layers));
  for (std::int64_t l = 0; l < layers; ++l) {
    caches.emplace_back(1, cfg.heads, cfg.head_dim(), total_len);
  }
  kernels::LayerScratch scratch;

  std::vector<std::int32_t> poss(prompt.size());
  for (std::size_t i = 0; i < poss.size(); ++i) {
    poss[i] = static_cast<std::int32_t>(i);
  }
  std::vector<float> x(static_cast<std::size_t>(P * H));
  weights.embed(prompt, poss, x);
  for (std::int64_t l = 0; l < layers; ++l) {
    kernels::transformer_layer_forward(
        weights.layers[static_cast<std::size_t>(l)],
        caches[static_cast<std::size_t>(l)], x, 1, P, policy, scratch);
  }

  auto snapshot = [&](BeamState& b) {
    b.kv_len = caches[0].seq_len();
    b.kv_k.resize(static_cast<std::size_t>(layers));
    b.kv_v.resize(static_cast<std::size_t>(layers));
    const auto n =
        static_cast<std::size_t>(cfg.heads * b.kv_len * cfg.head_dim());
    for (std::int64_t l = 0; l < layers; ++l) {
      b.kv_k[static_cast<std::size_t>(l)].resize(n);
      b.kv_v[static_cast<std::size_t>(l)].resize(n);
      caches[static_cast<std::size_t>(l)].export_state(
          b.kv_k[static_cast<std::size_t>(l)],
          b.kv_v[static_cast<std::size_t>(l)]);
    }
  };
  auto restore = [&](const BeamState& b) {
    for (std::int64_t l = 0; l < layers; ++l) {
      caches[static_cast<std::size_t>(l)].import_state(
          b.kv_k[static_cast<std::size_t>(l)],
          b.kv_v[static_cast<std::size_t>(l)], b.kv_len);
    }
  };

  BeamState root;
  root.tokens = prompt;
  root.last_hidden.resize(static_cast<std::size_t>(H));
  std::memcpy(root.last_hidden.data(), x.data() + (P - 1) * H,
              static_cast<std::size_t>(H) * sizeof(float));
  snapshot(root);

  std::vector<BeamState> beams{std::move(root)};
  std::vector<float> logits(static_cast<std::size_t>(V));

  for (std::int64_t step = 0; step < opts.new_tokens; ++step) {
    // Expand every live beam by its top `beams` continuations.
    struct Candidate {
      std::size_t parent;
      std::int32_t token;
      double log_prob;
    };
    std::vector<Candidate> cands;
    for (std::size_t bi = 0; bi < beams.size(); ++bi) {
      weights.lm_head(beams[bi].last_hidden, logits, 1);
      const auto lp = log_softmax(logits);
      // Top `opts.beams` tokens of this beam.
      std::vector<std::int32_t> idx(static_cast<std::size_t>(V));
      for (std::size_t i = 0; i < idx.size(); ++i) {
        idx[i] = static_cast<std::int32_t>(i);
      }
      const std::int64_t k = std::min<std::int64_t>(opts.beams, V);
      std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                        [&](std::int32_t a, std::int32_t b) {
                          return lp[static_cast<std::size_t>(a)] !=
                                         lp[static_cast<std::size_t>(b)]
                                     ? lp[static_cast<std::size_t>(a)] >
                                           lp[static_cast<std::size_t>(b)]
                                     : a < b;
                        });
      for (std::int64_t i = 0; i < k; ++i) {
        cands.push_back({bi, idx[static_cast<std::size_t>(i)],
                         beams[bi].log_prob +
                             lp[static_cast<std::size_t>(
                                 idx[static_cast<std::size_t>(i)])]});
      }
    }
    const std::size_t keep =
        std::min<std::size_t>(static_cast<std::size_t>(opts.beams),
                              cands.size());
    std::partial_sort(cands.begin(), cands.begin() + static_cast<std::ptrdiff_t>(keep),
                      cands.end(), [](const Candidate& a, const Candidate& b) {
                        return a.log_prob != b.log_prob
                                   ? a.log_prob > b.log_prob
                                   : (a.parent != b.parent
                                          ? a.parent < b.parent
                                          : a.token < b.token);
                      });

    // Advance the winners: restore parent cache, run one token, re-snapshot.
    std::vector<BeamState> next;
    next.reserve(keep);
    for (std::size_t c = 0; c < keep; ++c) {
      const auto& cand = cands[c];
      const BeamState& parent = beams[cand.parent];
      restore(parent);

      BeamState child;
      child.tokens = parent.tokens;
      child.tokens.push_back(cand.token);
      child.log_prob = cand.log_prob;
      child.last_hidden.resize(static_cast<std::size_t>(H));
      const std::int32_t pos = static_cast<std::int32_t>(
          static_cast<std::int64_t>(parent.tokens.size()));
      weights.embed(std::span<const std::int32_t>(&cand.token, 1),
                    std::span<const std::int32_t>(&pos, 1),
                    child.last_hidden);
      for (std::int64_t l = 0; l < layers; ++l) {
        kernels::transformer_layer_forward(
            weights.layers[static_cast<std::size_t>(l)],
            caches[static_cast<std::size_t>(l)], child.last_hidden, 1, 1,
            policy, scratch);
      }
      snapshot(child);
      next.push_back(std::move(child));
    }
    beams = std::move(next);
  }

  std::vector<BeamHypothesis> out;
  out.reserve(beams.size());
  for (auto& b : beams) {
    BeamHypothesis h;
    h.tokens = std::move(b.tokens);
    h.log_prob = b.log_prob;
    const double len = static_cast<double>(opts.new_tokens);
    h.score = opts.length_penalty > 0
                  ? b.log_prob / std::pow(len, opts.length_penalty)
                  : b.log_prob;
    out.push_back(std::move(h));
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.score != b.score ? a.score > b.score : a.tokens < b.tokens;
  });
  return out;
}

}  // namespace dsinfer::core
