// ZeRO-Inference throughput model (paper Sec. VI, Figs. 9 and 10c).
//
// Weights are pinned in DRAM or NVMe and streamed per layer; GPU memory is
// spent on activations so batch sizes — and thus GeMM efficiency — can be
// far larger than a GPU-only deployment allows. The workload matches the
// paper's resource-constrained metric: maximum batch size, full-prompt
// compute, generating a single token.
#pragma once

#include <cstdint>

#include "hw/topology.h"
#include "model/model_config.h"

namespace dsinfer::zero {

enum class WeightHome { kGpuOnly, kCpuOnly, kZeroDram, kZeroNvme };

struct ZeroConfig {
  WeightHome home = WeightHome::kZeroNvme;
  std::int64_t gpus = 1;
  std::int64_t prefetch_depth = 1;  // layers fetched ahead (0 = no overlap)
  bool partitioned_fetch = true;    // multi-GPU aggregate-PCIe optimization
  std::int64_t prompt_len = 2048;   // tokens per sequence
  // Resilience pricing (ISSUE 1): probability a layer read is corrupted in
  // flight and must be retransferred, and the bounded retry budget the
  // streamer applies. Matches LayerStreamer's ledger semantics.
  double read_fault_rate = 0.0;     // in [0, 1)
  std::int64_t read_max_retries = 3;
};

struct ZeroThroughput {
  bool fits = false;          // can this placement host the model at all?
  std::int64_t max_batch = 0;
  double fetch_s_per_layer = 0;
  double compute_s_per_layer = 0;
  double total_s = 0;           // one single-token generation pass
  double tokens_per_s = 0;      // sequences completed per second
  double tflops_per_gpu = 0;    // the paper's headline metric
  // Expected read attempts per layer fetch and the probability the bounded
  // retry budget suffices (1.0 when read_fault_rate == 0).
  double expected_fetch_attempts = 1.0;
  double fetch_success_prob = 1.0;
};

// Throughput of `m` under `cfg` on `cluster`. `batch` == 0 selects the
// maximum feasible batch.
ZeroThroughput zero_throughput(const model::DenseModelConfig& m,
                               const hw::ClusterSpec& cluster,
                               const ZeroConfig& cfg, std::int64_t batch = 0);

// Largest model of the dense zoo each placement can host (paper Fig. 9b's
// model-scale axis). Returns nullptr when nothing fits.
const model::DenseModelConfig* largest_feasible_model(
    const hw::ClusterSpec& cluster, WeightHome home);

}  // namespace dsinfer::zero
