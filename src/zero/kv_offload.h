// Functional KV-cache offloading (paper Sec. IV-C.2/3).
//
// The cached key/value activations of a sequence "will not be used again
// until generating [its] next token", so between steps they can live in host
// memory. OffloadableKVCache wraps a device-resident KVCache with a host
// backing store: release() snapshots the cache to the host and frees the
// device copy (conceptually); fetch() restores it. A transfer ledger counts
// PCIe bytes, and the odd/even link-scheduling policy of Sec. IV-C.3 is
// expressed as a pluggable contention model used by tests and benches.
#pragma once

#include <cstdint>
#include <vector>

#include "kernels/kv_arena.h"
#include "kernels/kv_cache.h"

namespace dsinfer::zero {

class OffloadableKVCache {
 public:
  OffloadableKVCache(std::int64_t batch, std::int64_t heads,
                     std::int64_t head_dim, std::int64_t max_seq);

  // Device-side view; valid only while resident.
  kernels::KVCache& device();
  const kernels::KVCache& device() const;

  bool resident() const { return resident_; }

  // Moves the cache contents to the host store. Idempotent.
  void release_to_host();
  // Restores the device copy from the host store. Idempotent.
  void fetch_to_device();

  // Bytes moved across the (simulated) PCIe boundary so far.
  std::size_t bytes_offloaded() const { return bytes_off_; }
  std::size_t bytes_fetched() const { return bytes_in_; }

 private:
  kernels::KVCache cache_;
  std::vector<float> host_k_, host_v_;
  std::int64_t host_seq_len_ = 0;
  bool resident_ = true;
  std::size_t bytes_off_ = 0;
  std::size_t bytes_in_ = 0;

  std::int64_t batch_, heads_, head_dim_, max_seq_;
};

// Per-rank transfer ledger for the ragged/continuous path (ISSUE 5). The
// continuous scheduler keeps one KVArena shard per virtual TP rank; between
// engine iterations each live slot's K/V strips take the same host
// round-trip OffloadableKVCache models for the uniform path, and this
// ledger accounts the PCIe bytes per rank (each rank moves only its own
// head slice, so total traffic is independent of the TP degree).
class ArenaOffloadLedger {
 public:
  explicit ArenaOffloadLedger(std::int64_t ranks);

  // Round-trips every in-use slot of `arena` (rank `rank`'s shard) through
  // the host store: export, drop, re-import. Returns the bytes moved this
  // call (out + back, K + V) and adds them to the rank's ledger. On a paged
  // arena (ISSUE 7) the transfer is page-granular: every distinct in-use
  // page moves exactly once with only its filled rows, no matter how many
  // prefix-sharing chains reference it, and the restore is an in-place
  // import (import_page), so sharing survives the cycle.
  std::size_t round_trip(kernels::KVArena& arena, std::int64_t rank);

  // Prefix-cache host-tier spill traffic (LRU evictions + re-fetches),
  // charged to the same per-rank ledger by RaggedDecoder's spill sink.
  void add_spill(std::int64_t rank, std::size_t bytes);

  std::int64_t ranks() const { return static_cast<std::int64_t>(bytes_.size()); }
  std::size_t bytes(std::int64_t rank) const;
  std::size_t total_bytes() const;

 private:
  std::vector<std::size_t> bytes_;  // per rank, out + back
  std::vector<float> host_k_, host_v_;  // reused staging buffers
};

}  // namespace dsinfer::zero
