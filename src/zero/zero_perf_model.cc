#include "zero/zero_perf_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "comm/cost_model.h"

namespace dsinfer::zero {

using model::Dtype;

namespace {

constexpr double kGb = 1e9;

// GeMM efficiency vs. total token rows: the large-batch lever that lets
// ZeRO-Inference reach >50% of peak (paper Sec. VI-A). Saturates at ~0.58
// of peak, crossing ~0.29 at 2k rows.
double compute_efficiency(double rows) {
  const double sat = 0.58;
  return sat * rows / (rows + 2048.0);
}

// Device-memory budget left for activations after reserving the streaming
// window, in bytes.
double activation_budget_bytes(const model::DenseModelConfig& m,
                               const hw::GpuSpec& gpu,
                               const ZeroConfig& cfg) {
  const double window_layers =
      static_cast<double>(std::max<std::int64_t>(2, cfg.prefetch_depth + 1));
  return gpu.mem_gb * 0.92 * kGb -
         window_layers * m.layer_param_bytes(Dtype::kFP16) - 1.5 * kGb;
}

// Per-sequence GPU bytes: working activations (KV cache lives in host
// memory under ZeRO-Inference; on-GPU for the GPU-only baseline).
double per_seq_bytes(const model::DenseModelConfig& m, std::int64_t prompt,
                     bool kv_on_gpu) {
  const double act = 6.0 * static_cast<double>(prompt) *
                     static_cast<double>(m.hidden) * 2.0;
  const double kv = kv_on_gpu ? m.kv_cache_bytes(1, prompt) : 0.0;
  return act + kv;
}

double host_capacity_gb(const hw::ClusterSpec& cluster, WeightHome home) {
  switch (home) {
    case WeightHome::kGpuOnly:
      return cluster.node.gpu.mem_gb;
    case WeightHome::kCpuOnly:
    case WeightHome::kZeroDram:
      // Half the DRAM is reserved for activations/OS (the paper's CPU-only
      // ceiling on the 256 GB workstation is ~50B parameters).
      return cluster.node.dram_gb * 0.5;
    case WeightHome::kZeroNvme:
      return cluster.node.nvme_gb * 0.9;
  }
  return 0;
}

double fetch_bw_bytes_per_s(const hw::ClusterSpec& cluster, WeightHome home) {
  switch (home) {
    case WeightHome::kZeroDram:
      return cluster.node.pcie.bw_gbps * kGb;
    case WeightHome::kZeroNvme:
      return std::min(cluster.node.pcie.bw_gbps,
                      cluster.node.nvme_read_gbps) *
             kGb;
    default:
      return 0;
  }
}

}  // namespace

ZeroThroughput zero_throughput(const model::DenseModelConfig& m,
                               const hw::ClusterSpec& cluster,
                               const ZeroConfig& cfg, std::int64_t batch) {
  if (cfg.gpus < 1 ||
      (cfg.home != WeightHome::kCpuOnly &&
       cfg.gpus > cluster.total_gpus())) {
    throw std::invalid_argument("zero_throughput: bad gpu count");
  }
  if (cfg.read_fault_rate < 0 || cfg.read_fault_rate >= 1.0 ||
      cfg.read_max_retries < 0) {
    throw std::invalid_argument("zero_throughput: bad read fault model");
  }
  const hw::GpuSpec& gpu = cluster.node.gpu;
  ZeroThroughput out;

  const double weights_gb = m.total_param_gb(Dtype::kFP16);
  out.fits = weights_gb <= host_capacity_gb(cluster, cfg.home) *
                              (cfg.home == WeightHome::kGpuOnly
                                   ? static_cast<double>(cfg.gpus)
                                   : 1.0);
  if (!out.fits) return out;

  const std::int64_t prompt = cfg.prompt_len;

  // ---- CPU-only baseline: host GeMMs, bound by CPU flops / DRAM bw. ----
  if (cfg.home == WeightHome::kCpuOnly) {
    const std::int64_t b = batch > 0 ? batch : 8;
    out.max_batch = b;
    const double flops =
        static_cast<double>(b) * m.model_flops(prompt, prompt);
    const double bytes = m.model_param_bytes(Dtype::kFP32);  // host fp32
    const double t = std::max(flops / (cluster.node.cpu_tflops * 1e12 * 0.5),
                              bytes / (cluster.node.dram_bw_gbps * kGb));
    out.total_s = t;
    out.tokens_per_s = static_cast<double>(b) / t;
    out.tflops_per_gpu = flops / t / 1e12;  // per socket
    return out;
  }

  // ---- GPU-resident or streamed GPU execution. ----
  const bool streamed = cfg.home != WeightHome::kGpuOnly;
  double budget;
  if (streamed) {
    budget = activation_budget_bytes(m, gpu, cfg);
  } else {
    budget = gpu.mem_gb * 0.92 * kGb -
             m.total_param_gb(Dtype::kFP16) * kGb /
                 static_cast<double>(cfg.gpus) -
             1.0 * kGb;
  }
  const double seq_bytes = per_seq_bytes(m, prompt, /*kv_on_gpu=*/!streamed);
  const std::int64_t max_b =
      std::max<std::int64_t>(0, static_cast<std::int64_t>(budget / seq_bytes));
  if (max_b == 0) {
    out.fits = false;  // hosts the weights but cannot run even batch 1
    return out;
  }
  const std::int64_t b = batch > 0 ? std::min(batch, max_b) : max_b;
  out.max_batch = max_b;

  const double rows = static_cast<double>(b) * static_cast<double>(prompt);
  const double layer_flops = m.layer_flops(prompt, prompt) *
                             static_cast<double>(b);
  out.compute_s_per_layer =
      layer_flops / (gpu.fp16_tflops * 1e12 * compute_efficiency(rows));

  if (streamed) {
    double bw = fetch_bw_bytes_per_s(cluster, cfg.home);
    double fetch = m.layer_param_bytes(Dtype::kFP16) / bw;
    if (cfg.gpus > 1 && cfg.partitioned_fetch) {
      // Each GPU fetches 1/n of the layer over its own PCIe link, then the
      // shards are all-gathered over NVLink (paper Sec. VI-B).
      fetch = fetch / static_cast<double>(cfg.gpus) +
              comm::allgather_time_s(
                  m.layer_param_bytes(Dtype::kFP16) /
                      static_cast<double>(cfg.gpus),
                  cfg.gpus, cluster.node.nvlink);
    }
    // Transient read faults force retransfers (LayerStreamer's retry path):
    // with fault rate p and retry budget r, a successful fetch costs
    // E[attempts] = sum_{k=0..r} p^k transfers, and the budget suffices with
    // probability 1 - p^{r+1}.
    const double p = cfg.read_fault_rate;
    if (p > 0) {
      double attempts = 0, pk = 1.0;
      for (std::int64_t k = 0; k <= cfg.read_max_retries; ++k) {
        attempts += pk;
        pk *= p;
      }
      out.expected_fetch_attempts = attempts;
      out.fetch_success_prob = 1.0 - pk;
      fetch *= attempts;
    }
    out.fetch_s_per_layer = fetch;
  }

  // Prefetch overlaps fetch with compute; without it the two serialize.
  const double per_layer =
      cfg.prefetch_depth > 0
          ? std::max(out.compute_s_per_layer, out.fetch_s_per_layer)
          : out.compute_s_per_layer + out.fetch_s_per_layer;
  out.total_s = static_cast<double>(m.layers) * per_layer +
                out.fetch_s_per_layer;  // pipeline fill
  // Every GPU runs its own batch (data parallel replicas).
  out.tokens_per_s = static_cast<double>(b * cfg.gpus) / out.total_s;
  out.tflops_per_gpu =
      static_cast<double>(b) * m.model_flops(prompt, prompt) / out.total_s /
      1e12;
  return out;
}

const model::DenseModelConfig* largest_feasible_model(
    const hw::ClusterSpec& cluster, WeightHome home) {
  static const auto zoo = model::dense_model_zoo();
  const model::DenseModelConfig* best = nullptr;
  for (const auto& m : zoo) {
    ZeroConfig cfg;
    cfg.home = home;
    cfg.gpus = 1;
    const auto t = zero_throughput(m, cluster, cfg, home == WeightHome::kCpuOnly ? 1 : 0);
    if (t.fits) best = &m;
  }
  return best;
}

}  // namespace dsinfer::zero
