// Functional ZeRO-Inference weight streaming (paper Sec. VI).
//
// Model weights are pinned in a host-side store (standing in for DRAM or
// NVMe) and streamed layer-by-layer into a small device-side window for
// computation, with configurable prefetch depth. The streamed engine is
// bit-identical to a fully resident engine — tests assert it — while the
// transfer ledger exposes exactly how many bytes crossed the (simulated)
// PCIe boundary, which the perf model prices.
//
// Resilience (ISSUE 1): every fetch is integrity-checked against a per-layer
// host-side checksum, and a FaultInjector hook can corrupt reads in flight.
// Corrupted fetches are retried with exponential (virtual) backoff up to a
// bounded budget; the ledger records retries, verifications, and backoff so
// the perf model can price chaos. A fetch that exhausts its budget raises a
// typed StreamFault instead of silently computing on garbage.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "kernels/transformer_layer.h"
#include "util/fault_injector.h"
#include "util/rng.h"

namespace dsinfer::zero {

enum class Tier { kDevice, kDram, kNvme };

enum class Precision { kFP32, kInt8 };

// Checksum over exactly the bytes a streamed copy of `w` transfers at the
// given precision (FNV-1a). Exposed for tests.
std::uint64_t weights_checksum(const kernels::LayerWeights& w, Precision p);

// A layer read failed `attempts` times in a row (injected corruption that
// bounded retry could not absorb).
class StreamFault : public std::runtime_error {
 public:
  StreamFault(std::int64_t layer, std::int64_t attempts,
              const std::string& what)
      : std::runtime_error(what), layer_(layer), attempts_(attempts) {}

  std::int64_t layer() const { return layer_; }
  std::int64_t attempts() const { return attempts_; }

 private:
  std::int64_t layer_;
  std::int64_t attempts_;
};

// Retry/verification policy for streamed reads.
struct StreamResilience {
  util::FaultInjector* injector = nullptr;  // site drawn once per read attempt
  std::string site = "zero.stream";
  std::int64_t max_retries = 3;    // attempts = 1 + max_retries
  double backoff_base_s = 1e-4;    // virtual backoff: base * 2^retry
  bool verify_checksums = true;    // integrity-check every fetch
};

// Owns the full model's layer weights in host memory.
class HostWeightStore {
 public:
  HostWeightStore(Rng& rng, std::int64_t layers, std::int64_t hidden,
                  std::int64_t heads, std::int64_t ffn, Tier tier);

  // Adopts already-initialized layer weights (e.g. from a resident model
  // being demoted to host memory).
  HostWeightStore(std::vector<kernels::LayerWeights>&& weights, Tier tier);

  std::int64_t layers() const { return static_cast<std::int64_t>(weights_.size()); }
  Tier tier() const { return tier_; }
  const kernels::LayerWeights& layer(std::int64_t i) const;
  std::size_t layer_bytes() const;  // FP32 parameter bytes of one layer
  // Bytes streamed per layer in INT8 form (weights quantized, LN/bias FP32).
  std::size_t layer_bytes_int8() const;
  // Pre-builds the host-side quantized forms (idempotent).
  void quantize_all() const;

  // Reference checksum of `layer`'s streamed bytes, computed once and cached
  // (the host copy is the ground truth streamed reads are verified against).
  std::uint64_t layer_checksum(std::int64_t i, Precision p) const;

 private:
  std::vector<kernels::LayerWeights> weights_;
  Tier tier_;
  // Lazily filled checksum caches, one slot per layer (0 = not computed;
  // disambiguated by the parallel `_set` flags).
  mutable std::vector<std::uint64_t> sum_fp32_, sum_int8_;
  mutable std::vector<char> sum_fp32_set_, sum_int8_set_;
};

// A sliding window of device-resident layer copies.
class LayerStreamer {
 public:
  // Back-compat alias: callers historically wrote LayerStreamer::Precision.
  using Precision = zero::Precision;

  // `window` = number of layers resident at once (>= 1). window >= 2 allows
  // prefetching the next layer while the current one computes.
  // Precision::kInt8 streams per-channel-quantized weights instead of FP32,
  // cutting transfer bytes ~4x (an extension beyond the paper's FP16
  // streaming; the INT8 GeMM path consumes the quantized form directly).
  LayerStreamer(const HostWeightStore& store, std::int64_t window,
                Precision precision = Precision::kFP32,
                StreamResilience resilience = {});

  // Returns device-resident weights for `layer`, fetching on miss.
  const kernels::LayerWeights& acquire(std::int64_t layer);

  // Hints that `layer` will be needed; fetches into the window if absent.
  void prefetch(std::int64_t layer);

  std::size_t bytes_fetched() const { return bytes_fetched_; }
  std::int64_t fetch_count() const { return fetch_count_; }
  std::int64_t hit_count() const { return hit_count_; }
  std::int64_t window() const { return static_cast<std::int64_t>(slots_.size()); }

  // Resilience ledger: retried reads, detected corruptions, verified
  // fetches, and the virtual backoff the retries would have cost.
  std::int64_t retry_count() const { return retry_count_; }
  std::int64_t checksum_failures() const { return checksum_failures_; }
  std::int64_t verified_fetches() const { return verified_fetches_; }
  double backoff_virtual_s() const { return backoff_virtual_s_; }

 private:
  struct Slot {
    std::int64_t layer = -1;
    kernels::LayerWeights weights;
  };

  Slot& fetch_into_window(std::int64_t layer);

  const HostWeightStore& store_;
  Precision precision_;
  StreamResilience res_;
  std::vector<Slot> slots_;
  std::int64_t next_victim_ = 0;  // round-robin eviction
  std::size_t bytes_fetched_ = 0;
  std::int64_t fetch_count_ = 0;
  std::int64_t hit_count_ = 0;
  std::int64_t retry_count_ = 0;
  std::int64_t checksum_failures_ = 0;
  std::int64_t verified_fetches_ = 0;
  double backoff_virtual_s_ = 0.0;
};

}  // namespace dsinfer::zero
