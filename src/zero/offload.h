// Functional ZeRO-Inference weight streaming (paper Sec. VI).
//
// Model weights are pinned in a host-side store (standing in for DRAM or
// NVMe) and streamed layer-by-layer into a small device-side window for
// computation, with configurable prefetch depth. The streamed engine is
// bit-identical to a fully resident engine — tests assert it — while the
// transfer ledger exposes exactly how many bytes crossed the (simulated)
// PCIe boundary, which the perf model prices.
#pragma once

#include <cstdint>
#include <vector>

#include "kernels/transformer_layer.h"
#include "util/rng.h"

namespace dsinfer::zero {

enum class Tier { kDevice, kDram, kNvme };

// Owns the full model's layer weights in host memory.
class HostWeightStore {
 public:
  HostWeightStore(Rng& rng, std::int64_t layers, std::int64_t hidden,
                  std::int64_t heads, std::int64_t ffn, Tier tier);

  // Adopts already-initialized layer weights (e.g. from a resident model
  // being demoted to host memory).
  HostWeightStore(std::vector<kernels::LayerWeights>&& weights, Tier tier);

  std::int64_t layers() const { return static_cast<std::int64_t>(weights_.size()); }
  Tier tier() const { return tier_; }
  const kernels::LayerWeights& layer(std::int64_t i) const;
  std::size_t layer_bytes() const;  // FP32 parameter bytes of one layer
  // Bytes streamed per layer in INT8 form (weights quantized, LN/bias FP32).
  std::size_t layer_bytes_int8() const;
  // Pre-builds the host-side quantized forms (idempotent).
  void quantize_all() const;

 private:
  std::vector<kernels::LayerWeights> weights_;
  Tier tier_;
};

// A sliding window of device-resident layer copies.
class LayerStreamer {
 public:
  enum class Precision { kFP32, kInt8 };

  // `window` = number of layers resident at once (>= 1). window >= 2 allows
  // prefetching the next layer while the current one computes.
  // Precision::kInt8 streams per-channel-quantized weights instead of FP32,
  // cutting transfer bytes ~4x (an extension beyond the paper's FP16
  // streaming; the INT8 GeMM path consumes the quantized form directly).
  LayerStreamer(const HostWeightStore& store, std::int64_t window,
                Precision precision = Precision::kFP32);

  // Returns device-resident weights for `layer`, fetching on miss.
  const kernels::LayerWeights& acquire(std::int64_t layer);

  // Hints that `layer` will be needed; fetches into the window if absent.
  void prefetch(std::int64_t layer);

  std::size_t bytes_fetched() const { return bytes_fetched_; }
  std::int64_t fetch_count() const { return fetch_count_; }
  std::int64_t hit_count() const { return hit_count_; }
  std::int64_t window() const { return static_cast<std::int64_t>(slots_.size()); }

 private:
  struct Slot {
    std::int64_t layer = -1;
    kernels::LayerWeights weights;
  };

  Slot& fetch_into_window(std::int64_t layer);

  const HostWeightStore& store_;
  Precision precision_;
  std::vector<Slot> slots_;
  std::int64_t next_victim_ = 0;  // round-robin eviction
  std::size_t bytes_fetched_ = 0;
  std::int64_t fetch_count_ = 0;
  std::int64_t hit_count_ = 0;
};

}  // namespace dsinfer::zero
