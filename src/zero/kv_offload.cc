#include "zero/kv_offload.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "obs/attribution.h"
#include "util/stats.h"

namespace dsinfer::zero {

namespace {

// ISSUE 8: KV spill/restore wall time feeds the tail-latency attribution
// ledger as kKvSpill; one relaxed load when the gate is off.
class AttrSpillScope {
 public:
  AttrSpillScope() : armed_(obs::attribution_enabled()) {}
  ~AttrSpillScope() {
    if (armed_) obs::attr_charge(obs::Phase::kKvSpill, sw_.elapsed_s());
  }

 private:
  bool armed_;
  Stopwatch sw_;
};

}  // namespace

OffloadableKVCache::OffloadableKVCache(std::int64_t batch, std::int64_t heads,
                                       std::int64_t head_dim,
                                       std::int64_t max_seq)
    : cache_(batch, heads, head_dim, max_seq),
      batch_(batch),
      heads_(heads),
      head_dim_(head_dim),
      max_seq_(max_seq) {}

kernels::KVCache& OffloadableKVCache::device() {
  if (!resident_) {
    throw std::logic_error(
        "OffloadableKVCache: cache is offloaded; call fetch_to_device()");
  }
  return cache_;
}

const kernels::KVCache& OffloadableKVCache::device() const {
  if (!resident_) {
    throw std::logic_error(
        "OffloadableKVCache: cache is offloaded; call fetch_to_device()");
  }
  return cache_;
}

void OffloadableKVCache::release_to_host() {
  if (!resident_) return;
  AttrSpillScope attr_scope;
  host_seq_len_ = cache_.seq_len();
  const auto n =
      static_cast<std::size_t>(batch_ * heads_ * host_seq_len_ * head_dim_);
  host_k_.resize(n);
  host_v_.resize(n);
  cache_.export_state(host_k_, host_v_);
  cache_.reset();  // the device copy is conceptually freed
  bytes_off_ += 2 * n * sizeof(float);
  resident_ = false;
}

void OffloadableKVCache::fetch_to_device() {
  if (resident_) return;
  AttrSpillScope attr_scope;
  cache_.import_state(host_k_, host_v_, host_seq_len_);
  bytes_in_ += 2 * host_k_.size() * sizeof(float);
  resident_ = true;
}

ArenaOffloadLedger::ArenaOffloadLedger(std::int64_t ranks) {
  if (ranks < 1) {
    throw std::invalid_argument("ArenaOffloadLedger: ranks must be >= 1");
  }
  bytes_.assign(static_cast<std::size_t>(ranks), 0);
}

std::size_t ArenaOffloadLedger::round_trip(kernels::KVArena& arena,
                                           std::int64_t rank) {
  if (rank < 0 || rank >= ranks()) {
    throw std::invalid_argument("ArenaOffloadLedger: rank out of range");
  }
  AttrSpillScope attr_scope;
  std::size_t moved = 0;
  if (!arena.paged()) {
    for (std::int64_t slot = 0; slot < arena.slots(); ++slot) {
      if (!arena.in_use(slot)) continue;
      const auto len = arena.export_slot(slot, host_k_, host_v_);
      arena.import_slot(slot, host_k_, host_v_, len);
      // out + back, K + V — the same 4x accounting the uniform engine path
      // applies per offload cycle.
      moved += 4 * host_k_.size() * sizeof(float);
    }
  } else {
    // Page-granular: collect the distinct pages reachable from live chains
    // with the rows actually filled (the last page of a chain is partial),
    // then move each exactly once. std::map keeps the transfer order
    // deterministic across TP shards.
    std::map<std::int32_t, std::int64_t> pages;  // page -> filled rows
    const std::int64_t pt = arena.page_tokens();
    for (std::int64_t slot = 0; slot < arena.slots(); ++slot) {
      if (!arena.in_use(slot)) continue;
      const std::int64_t len = arena.seq_len(slot);
      const auto chain = arena.slot_pages(slot);
      for (std::size_t i = 0; i < chain.size(); ++i) {
        const std::int64_t rows =
            std::min<std::int64_t>(pt, len - static_cast<std::int64_t>(i) * pt);
        if (rows <= 0) break;
        auto& r = pages[chain[i]];
        r = std::max(r, rows);
      }
    }
    for (const auto& [page, rows] : pages) {
      arena.export_page(page, rows, host_k_, host_v_);
      arena.import_page(page, rows, host_k_, host_v_);
      moved += 4 * host_k_.size() * sizeof(float);
    }
  }
  bytes_[static_cast<std::size_t>(rank)] += moved;
  return moved;
}

void ArenaOffloadLedger::add_spill(std::int64_t rank, std::size_t bytes) {
  if (rank < 0 || rank >= ranks()) {
    throw std::invalid_argument("ArenaOffloadLedger: rank out of range");
  }
  bytes_[static_cast<std::size_t>(rank)] += bytes;
}

std::size_t ArenaOffloadLedger::bytes(std::int64_t rank) const {
  if (rank < 0 || rank >= ranks()) {
    throw std::invalid_argument("ArenaOffloadLedger: rank out of range");
  }
  return bytes_[static_cast<std::size_t>(rank)];
}

std::size_t ArenaOffloadLedger::total_bytes() const {
  std::size_t total = 0;
  for (auto b : bytes_) total += b;
  return total;
}

}  // namespace dsinfer::zero
