#include "zero/kv_offload.h"

#include <stdexcept>

namespace dsinfer::zero {

OffloadableKVCache::OffloadableKVCache(std::int64_t batch, std::int64_t heads,
                                       std::int64_t head_dim,
                                       std::int64_t max_seq)
    : cache_(batch, heads, head_dim, max_seq),
      batch_(batch),
      heads_(heads),
      head_dim_(head_dim),
      max_seq_(max_seq) {}

kernels::KVCache& OffloadableKVCache::device() {
  if (!resident_) {
    throw std::logic_error(
        "OffloadableKVCache: cache is offloaded; call fetch_to_device()");
  }
  return cache_;
}

const kernels::KVCache& OffloadableKVCache::device() const {
  if (!resident_) {
    throw std::logic_error(
        "OffloadableKVCache: cache is offloaded; call fetch_to_device()");
  }
  return cache_;
}

void OffloadableKVCache::release_to_host() {
  if (!resident_) return;
  host_seq_len_ = cache_.seq_len();
  const auto n =
      static_cast<std::size_t>(batch_ * heads_ * host_seq_len_ * head_dim_);
  host_k_.resize(n);
  host_v_.resize(n);
  cache_.export_state(host_k_, host_v_);
  cache_.reset();  // the device copy is conceptually freed
  bytes_off_ += 2 * n * sizeof(float);
  resident_ = false;
}

void OffloadableKVCache::fetch_to_device() {
  if (resident_) return;
  cache_.import_state(host_k_, host_v_, host_seq_len_);
  bytes_in_ += 2 * host_k_.size() * sizeof(float);
  resident_ = true;
}

}  // namespace dsinfer::zero
