#include "zero/offload.h"

#include <cstring>
#include <stdexcept>

#include "obs/attribution.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/stats.h"

namespace dsinfer::zero {

namespace {

// ISSUE 8: host->device weight-fetch wall time feeds the tail-latency
// attribution ledger as kZeroFetch. Destructor-charged so faulted/retried
// fetches are accounted; one relaxed load when the gate is off.
class AttrFetchScope {
 public:
  AttrFetchScope() : armed_(obs::attribution_enabled()) {}
  ~AttrFetchScope() {
    if (armed_) obs::attr_charge(obs::Phase::kZeroFetch, sw_.elapsed_s());
  }

 private:
  bool armed_;
  Stopwatch sw_;
};

void copy_tensor(Tensor& dst, const Tensor& src) {
  dst.reshape(src.shape());
  std::memcpy(dst.data(), src.data(),
              static_cast<std::size_t>(src.numel()) * sizeof(float));
}

void copy_weights(kernels::LayerWeights& dst, const kernels::LayerWeights& src) {
  dst.hidden = src.hidden;
  dst.heads = src.heads;
  dst.ffn = src.ffn;
  copy_tensor(dst.ln1_g, src.ln1_g);
  copy_tensor(dst.ln1_b, src.ln1_b);
  copy_tensor(dst.ln2_g, src.ln2_g);
  copy_tensor(dst.ln2_b, src.ln2_b);
  copy_tensor(dst.w_qkv, src.w_qkv);
  copy_tensor(dst.b_qkv, src.b_qkv);
  copy_tensor(dst.w_attn_out, src.w_attn_out);
  copy_tensor(dst.b_attn_out, src.b_attn_out);
  copy_tensor(dst.w_fc1, src.w_fc1);
  copy_tensor(dst.b_fc1, src.b_fc1);
  copy_tensor(dst.w_fc2, src.w_fc2);
  copy_tensor(dst.b_fc2, src.b_fc2);
}

// INT8 streamed copy: quantized GeMM weights + FP32 layernorm/bias vectors;
// the big FP32 matrices never cross the boundary.
void copy_weights_int8(kernels::LayerWeights& dst,
                       const kernels::LayerWeights& src) {
  dst.hidden = src.hidden;
  dst.heads = src.heads;
  dst.ffn = src.ffn;
  copy_tensor(dst.ln1_g, src.ln1_g);
  copy_tensor(dst.ln1_b, src.ln1_b);
  copy_tensor(dst.ln2_g, src.ln2_g);
  copy_tensor(dst.ln2_b, src.ln2_b);
  copy_tensor(dst.b_qkv, src.b_qkv);
  copy_tensor(dst.b_attn_out, src.b_attn_out);
  copy_tensor(dst.b_fc1, src.b_fc1);
  copy_tensor(dst.b_fc2, src.b_fc2);
  dst.q_qkv = src.q_qkv;
  dst.q_attn_out = src.q_attn_out;
  dst.q_fc1 = src.q_fc1;
  dst.q_fc2 = src.q_fc2;
}

std::uint64_t fnv1a_bytes(const void* p, std::size_t n, std::uint64_t h) {
  const auto* b = static_cast<const unsigned char*>(p);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= b[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t hash_tensor(const Tensor& t, std::uint64_t h) {
  return fnv1a_bytes(t.data(),
                     static_cast<std::size_t>(t.numel()) * sizeof(float), h);
}

std::uint64_t hash_quant(const kernels::QuantizedWeight& q, std::uint64_t h) {
  h = fnv1a_bytes(q.data(), static_cast<std::size_t>(q.out() * q.in()), h);
  return fnv1a_bytes(q.scales().data(), q.scales().size() * sizeof(float), h);
}

}  // namespace

std::uint64_t weights_checksum(const kernels::LayerWeights& w, Precision p) {
  std::uint64_t h = 14695981039346656037ULL;
  // LN and bias vectors cross the boundary in both precisions.
  h = hash_tensor(w.ln1_g, h);
  h = hash_tensor(w.ln1_b, h);
  h = hash_tensor(w.ln2_g, h);
  h = hash_tensor(w.ln2_b, h);
  h = hash_tensor(w.b_qkv, h);
  h = hash_tensor(w.b_attn_out, h);
  h = hash_tensor(w.b_fc1, h);
  h = hash_tensor(w.b_fc2, h);
  if (p == Precision::kFP32) {
    h = hash_tensor(w.w_qkv, h);
    h = hash_tensor(w.w_attn_out, h);
    h = hash_tensor(w.w_fc1, h);
    h = hash_tensor(w.w_fc2, h);
  } else {
    h = hash_quant(w.q_qkv, h);
    h = hash_quant(w.q_attn_out, h);
    h = hash_quant(w.q_fc1, h);
    h = hash_quant(w.q_fc2, h);
  }
  return h;
}

HostWeightStore::HostWeightStore(Rng& rng, std::int64_t layers,
                                 std::int64_t hidden, std::int64_t heads,
                                 std::int64_t ffn, Tier tier)
    : tier_(tier) {
  if (layers < 1) throw std::invalid_argument("HostWeightStore: layers >= 1");
  weights_.resize(static_cast<std::size_t>(layers));
  for (auto& w : weights_) w.init_random(rng, hidden, heads, ffn);
}

HostWeightStore::HostWeightStore(std::vector<kernels::LayerWeights>&& weights,
                                 Tier tier)
    : weights_(std::move(weights)), tier_(tier) {
  if (weights_.empty()) {
    throw std::invalid_argument("HostWeightStore: need >= 1 layer");
  }
}

const kernels::LayerWeights& HostWeightStore::layer(std::int64_t i) const {
  return weights_.at(static_cast<std::size_t>(i));
}

std::size_t HostWeightStore::layer_bytes() const {
  return weights_.front().param_count() * sizeof(float);
}

void HostWeightStore::quantize_all() const {
  kernels::KernelPolicy int8;
  int8.dtype = kernels::Dtype::kINT8;
  for (const auto& w : weights_) {
    const_cast<kernels::LayerWeights&>(w).prepare(int8);
  }
}

std::uint64_t HostWeightStore::layer_checksum(std::int64_t i,
                                              Precision p) const {
  const auto idx = static_cast<std::size_t>(i);
  auto& sums = p == Precision::kFP32 ? sum_fp32_ : sum_int8_;
  auto& set = p == Precision::kFP32 ? sum_fp32_set_ : sum_int8_set_;
  if (sums.empty()) {
    sums.assign(weights_.size(), 0);
    set.assign(weights_.size(), 0);
  }
  if (!set.at(idx)) {
    if (p == Precision::kInt8) quantize_all();
    sums[idx] = weights_checksum(weights_[idx], p);
    set[idx] = 1;
  }
  return sums[idx];
}

std::size_t HostWeightStore::layer_bytes_int8() const {
  const auto& w = weights_.front();
  // Quantized GeMM weights (1 byte each + scales) plus FP32 LN/bias vectors.
  std::size_t bytes = 0;
  bytes += w.q_qkv.bytes() + w.q_attn_out.bytes() + w.q_fc1.bytes() +
           w.q_fc2.bytes();
  bytes += static_cast<std::size_t>(3 * w.hidden + w.hidden + w.ffn +
                                    w.hidden + 4 * w.hidden) *
           sizeof(float);
  return bytes;
}

LayerStreamer::LayerStreamer(const HostWeightStore& store, std::int64_t window,
                             Precision precision, StreamResilience resilience)
    : store_(store), precision_(precision), res_(std::move(resilience)) {
  if (window < 1) throw std::invalid_argument("LayerStreamer: window >= 1");
  if (res_.max_retries < 0) {
    throw std::invalid_argument("LayerStreamer: max_retries >= 0");
  }
  slots_.resize(static_cast<std::size_t>(
      std::min<std::int64_t>(window, store.layers())));
  if (precision_ == Precision::kInt8) store.quantize_all();
}

LayerStreamer::Slot& LayerStreamer::fetch_into_window(std::int64_t layer) {
  AttrFetchScope attr_scope;
  obs::TraceScope fetch_scope(
      "zero", obs::trace_enabled() ? "fetch layer " + std::to_string(layer)
                                   : std::string());
  // Round-robin eviction matches the strictly sequential layer access
  // pattern of a forward pass (the oldest resident layer is always the one
  // used furthest in the past).
  Slot& victim = slots_[static_cast<std::size_t>(next_victim_)];
  next_victim_ = (next_victim_ + 1) % static_cast<std::int64_t>(slots_.size());
  victim.layer = -1;  // invalid until a read verifies
  const std::int64_t attempts = 1 + res_.max_retries;
  for (std::int64_t attempt = 0; attempt < attempts; ++attempt) {
    if (precision_ == Precision::kInt8) {
      copy_weights_int8(victim.weights, store_.layer(layer));
      bytes_fetched_ += store_.layer_bytes_int8();
    } else {
      copy_weights(victim.weights, store_.layer(layer));
      bytes_fetched_ += store_.layer_bytes();
    }
    // A transient read fault silently corrupts the in-flight copy; only the
    // checksum pass can tell. Flip one mantissa bit in a vector both
    // precisions stream so the corruption is always detectable.
    if (res_.injector && res_.injector->should_fail(res_.site) &&
        victim.weights.ln1_g.numel() > 0) {
      float* f = victim.weights.ln1_g.data();
      std::uint32_t u;
      std::memcpy(&u, f, sizeof(u));
      u ^= 1u;
      std::memcpy(f, &u, sizeof(u));
    }
    bool ok = true;
    if (res_.verify_checksums) {
      ++verified_fetches_;
      ok = weights_checksum(victim.weights, precision_) ==
           store_.layer_checksum(layer, precision_);
    }
    if (ok) {
      victim.layer = layer;
      ++fetch_count_;
      if (obs::metrics_enabled()) {
        auto& reg = obs::MetricsRegistry::instance();
        static obs::Counter& fetches = reg.counter("zero.stream.fetches");
        static obs::Counter& bytes = reg.counter("zero.stream.bytes");
        fetches.add(1);
        bytes.add(static_cast<std::int64_t>(
            precision_ == Precision::kInt8 ? store_.layer_bytes_int8()
                                           : store_.layer_bytes()));
      }
      return victim;
    }
    ++checksum_failures_;
    {
      static obs::Counter& c =
          obs::MetricsRegistry::instance().counter("zero.stream.checksum_failures");
      c.add(1);
      if (obs::trace_enabled()) {
        obs::TraceRecorder::instance().instant(
            "zero", "checksum fail layer " + std::to_string(layer));
      }
    }
    if (attempt + 1 < attempts) {
      ++retry_count_;
      static obs::Counter& c =
          obs::MetricsRegistry::instance().counter("zero.stream.retries");
      c.add(1);
      if (obs::trace_enabled()) {
        obs::TraceRecorder::instance().instant(
            "zero", "retry layer " + std::to_string(layer) + " attempt " +
                        std::to_string(attempt + 1));
      }
      backoff_virtual_s_ +=
          res_.backoff_base_s * static_cast<double>(1LL << attempt);
    }
  }
  static obs::Counter& c =
      obs::MetricsRegistry::instance().counter("zero.stream.faults");
  c.add(1);
  if (obs::trace_enabled()) {
    obs::TraceRecorder::instance().instant(
        "zero", "StreamFault layer " + std::to_string(layer));
  }
  throw StreamFault(layer, attempts,
                    "zero: layer " + std::to_string(layer) + " failed " +
                        std::to_string(attempts) +
                        " read attempts (corruption beyond retry budget)");
}

const kernels::LayerWeights& LayerStreamer::acquire(std::int64_t layer) {
  if (layer < 0 || layer >= store_.layers()) {
    throw std::out_of_range("LayerStreamer::acquire: bad layer index");
  }
  for (auto& s : slots_) {
    if (s.layer == layer) {
      ++hit_count_;
      return s.weights;
    }
  }
  return fetch_into_window(layer).weights;
}

void LayerStreamer::prefetch(std::int64_t layer) {
  if (layer < 0 || layer >= store_.layers()) return;  // hint; ignore OOB
  for (const auto& s : slots_) {
    if (s.layer == layer) return;
  }
  fetch_into_window(layer);
}

}  // namespace dsinfer::zero
