// Layer-to-stage partitioning for pipeline parallelism, plus the per-stage
// memory accounting that decides feasible batch sizes (paper Sec. IV-B/C:
// inference of large transformers is often memory-capacity limited by the
// KV cache; offloading it to host memory buys batch size).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "hw/topology.h"
#include "model/model_config.h"

namespace dsinfer::parallel {

// Splits `layers` into `stages` contiguous ranges [begin, end), sizes
// differing by at most one (earlier stages take the remainder).
std::vector<std::pair<std::int64_t, std::int64_t>> partition_layers(
    std::int64_t layers, std::int64_t stages);

struct StageMemory {
  double weight_gb = 0;     // parameters resident on one GPU of this stage
  double kv_cache_gb = 0;   // KV cache share for the given batch
  double workspace_gb = 0;  // activations + scratch
  double total_gb() const { return weight_gb + kv_cache_gb + workspace_gb; }
};

// Per-GPU memory for a stage holding `stage_layers` layers with `tp`-way
// tensor slicing at batch `batch` and max sequence `seq`.
StageMemory stage_memory(const model::DenseModelConfig& m,
                         std::int64_t stage_layers, std::int64_t tp,
                         std::int64_t batch, std::int64_t seq,
                         model::Dtype dtype, bool kv_offload);

// Largest batch whose stage memory fits the GPU (0 if even batch 1 does not
// fit). With kv_offload the KV cache lives in host DRAM and does not count.
std::int64_t max_batch_for_memory(const model::DenseModelConfig& m,
                                  const hw::GpuSpec& gpu,
                                  std::int64_t stage_layers, std::int64_t tp,
                                  std::int64_t seq, model::Dtype dtype,
                                  bool kv_offload);

}  // namespace dsinfer::parallel
