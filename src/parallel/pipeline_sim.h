// Discrete-event simulation of pipeline-parallel autoregressive generation
// (paper Sec. IV-B/C, Figs. 2-3). Reproduces the three schedules:
//   * kTrainingStyle      — Fig. 2(a): a global barrier between token steps;
//                           every step pays the full (P-1)-slot fill bubble.
//   * kInferenceOptimized — Fig. 2(b): micro-batches of generated tokens are
//                           re-queued as soon as their dependency resolves,
//                           amortizing the bubble over the whole generation.
//   * kHybrid             — Fig. 3: different micro-batch counts for prompt
//                           processing (many, to hide the bubble) and token
//                           generation (few, to avoid re-reading weights).
#pragma once

#include <cstdint>

#include "hw/topology.h"
#include "model/model_config.h"
#include "perf/kernel_model.h"

namespace dsinfer::parallel {

enum class PipelineSchedule { kTrainingStyle, kInferenceOptimized, kHybrid };

struct PipelineSimConfig {
  std::int64_t stages = 1;
  std::int64_t tensor_parallel = 1;  // within each stage
  std::int64_t batch = 1;            // total sequences
  std::int64_t prompt_len = 512;
  std::int64_t gen_tokens = 50;
  // Micro-batch counts; for kHybrid they differ, otherwise
  // `prompt_microbatches` is used for both phases.
  std::int64_t prompt_microbatches = 1;
  std::int64_t gen_microbatches = 1;
  PipelineSchedule schedule = PipelineSchedule::kInferenceOptimized;
  // Memory optimization (Sec. IV-C.2): KV cache offloaded to host DRAM.
  bool kv_offload = false;
  // Communication optimization (Sec. IV-C.3): odd/even layer offload
  // scheduling removes PCIe contention; with it the offload traffic fully
  // overlaps with compute, without it each token step stalls on PCIe.
  bool odd_even_pcie = false;
};

struct PipelineSimResult {
  double total_s = 0;
  double prompt_s = 0;          // completion time of the prompt phase
  double tokens_per_s = 0;      // generated tokens / total time
  double bubble_fraction = 0;   // stage idle share between first/last event
  double per_gpu_tflops = 0;
  std::int64_t gpus = 0;
};

// Simulates generating `gen_tokens` tokens for `batch` sequences through a
// `stages`-deep pipeline of `m.layers` layers. Stage compute times come from
// the roofline model; inter-stage hops and the last->first feedback edge pay
// the inter-node link cost.
PipelineSimResult simulate_pipeline(const model::DenseModelConfig& m,
                                    const perf::EngineModelConfig& e,
                                    const hw::ClusterSpec& cluster,
                                    const PipelineSimConfig& cfg);

}  // namespace dsinfer::parallel
