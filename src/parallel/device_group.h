// Virtual-device runtime: each "GPU" is a thread, each group shares one
// Communicator. This is the functional substitute for a multi-GPU NCCL
// process group — the engine code written against (rank, Communicator) is
// identical in structure to a CUDA/NCCL rank function.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>

#include "comm/collectives.h"

namespace dsinfer::parallel {

class DeviceGroup {
 public:
  explicit DeviceGroup(std::int64_t num_devices);
  // With fault-injection / timeout options for the shared communicator
  // (sites "comm.rank<r>"). A Communicator is poisoned forever after a
  // fault, so fault-tolerant callers build a fresh group per retried step.
  DeviceGroup(std::int64_t num_devices, const comm::CommOptions& opts);

  std::int64_t size() const { return comm_.size(); }
  comm::Communicator& communicator() { return comm_; }

  // Runs `body(rank, comm)` on `size()` threads and joins. If any rank
  // throws, the first exception is rethrown on the caller after all ranks
  // finish (a rank that throws still participates in no further collectives,
  // so bodies must not interleave throws with collective calls).
  void run(const std::function<void(std::int64_t, comm::Communicator&)>& body);

 private:
  comm::Communicator comm_;
};

}  // namespace dsinfer::parallel
