#include "parallel/pipeline_sim.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "comm/cost_model.h"
#include "parallel/pipeline_partition.h"
#include "perf/dense_model.h"
#include "sim/des.h"

namespace dsinfer::parallel {

namespace {

// Everything one simulation run needs; lives on the stack of
// simulate_pipeline and is captured by reference in DES callbacks.
struct Runner {
  const model::DenseModelConfig& m;
  const perf::EngineModelConfig& e;
  const hw::ClusterSpec& cluster;
  const PipelineSimConfig& cfg;

  sim::Simulator des;
  std::vector<std::unique_ptr<sim::Resource>> stages;
  std::vector<std::int64_t> stage_layers;

  double hop_link_latency_s = 0;
  double hop_link_bw = 0;  // bytes/s

  // Fraction of the KV cache that exceeds device memory and must round-trip
  // over PCIe each token step (0 when everything fits or no offload).
  double kv_excess_fraction = 0;

  std::int64_t prompt_done = 0;
  std::int64_t token_steps_done = 0;
  double prompt_finish_s = 0;

  std::int64_t total_steps() const { return cfg.gen_tokens; }

  double stage_compute_s(std::int64_t s, std::int64_t mb_size,
                         std::int64_t q_len, std::int64_t kv_len) const {
    const auto t = perf::dense_layer_time(m, e, cluster, cfg.tensor_parallel,
                                          mb_size, q_len, kv_len);
    return static_cast<double>(stage_layers[static_cast<std::size_t>(s)]) *
           t.total();
  }

  // PCIe stall for offloaded KV state during token generation.
  double offload_stall_s(std::int64_t s, std::int64_t mb_size,
                         std::int64_t kv_len, double compute_s) const {
    if (!cfg.kv_offload || kv_excess_fraction <= 0) return 0;
    const double bytes =
        kv_excess_fraction * m.kv_cache_bytes(mb_size, kv_len) *
        (static_cast<double>(stage_layers[static_cast<std::size_t>(s)]) /
         static_cast<double>(m.layers)) /
        static_cast<double>(cfg.tensor_parallel);
    const double pcie_bw = cluster.node.pcie.bw_gbps * 1e9;
    // Without odd/even scheduling two GPUs contend for each PCIe link,
    // halving effective bandwidth (paper Sec. IV-C.3); fetches overlap with
    // compute either way, so only the uncovered remainder stalls.
    const double fetch_s =
        cfg.odd_even_pcie ? bytes / pcie_bw : 2.0 * bytes / pcie_bw;
    // A micro-batch's KV round-trips while the other micro-batches occupy
    // the stage, so the overlap window spans the whole pipeline cycle.
    const double window_s =
        compute_s * static_cast<double>(std::max<std::int64_t>(
                        1, cfg.gen_microbatches));
    return std::max(0.0, fetch_s - window_s);
  }

  double hop_s(std::int64_t mb_size, std::int64_t q_len) const {
    const double bytes = static_cast<double>(mb_size) *
                         static_cast<double>(q_len) *
                         static_cast<double>(m.hidden) * 2.0;
    return hop_link_latency_s + bytes / hop_link_bw;
  }

  double feedback_s(std::int64_t mb_size) const {
    // Sampled token ids travel last stage -> first stage.
    return hop_link_latency_s + static_cast<double>(mb_size) * 4.0 / hop_link_bw;
  }
};

}  // namespace

PipelineSimResult simulate_pipeline(const model::DenseModelConfig& m,
                                    const perf::EngineModelConfig& e,
                                    const hw::ClusterSpec& cluster,
                                    const PipelineSimConfig& cfg) {
  if (cfg.stages < 1 || cfg.batch < 1 || cfg.gen_tokens < 1 ||
      cfg.prompt_microbatches < 1 || cfg.gen_microbatches < 1) {
    throw std::invalid_argument("simulate_pipeline: bad config");
  }
  if (cfg.prompt_microbatches > cfg.batch || cfg.gen_microbatches > cfg.batch) {
    throw std::invalid_argument("simulate_pipeline: more micro-batches than sequences");
  }

  Runner r{m, e, cluster, cfg, {}, {}, {}, 0, 0, 0, 0, 0, 0};
  const auto parts = partition_layers(m.layers, cfg.stages);
  for (const auto& [b, en] : parts) r.stage_layers.push_back(en - b);
  for (std::int64_t s = 0; s < cfg.stages; ++s) {
    r.stages.push_back(std::make_unique<sim::Resource>(
        r.des, "stage" + std::to_string(s)));
  }
  const hw::LinkSpec hop =
      cluster.nodes > 1 ? cluster.ib_per_gpu : cluster.node.nvlink;
  r.hop_link_latency_s = hop.latency_us * 1e-6;
  r.hop_link_bw = hop.bw_gbps * 1e9;

  // How much of the KV cache spills past device memory.
  if (cfg.kv_offload) {
    const std::int64_t max_layers =
        *std::max_element(r.stage_layers.begin(), r.stage_layers.end());
    const StageMemory with_kv =
        stage_memory(m, max_layers, cfg.tensor_parallel, cfg.batch,
                     cfg.prompt_len + cfg.gen_tokens, e.dtype, false);
    const double budget = cluster.node.gpu.mem_gb * 0.92;
    const double spill =
        std::max(0.0, with_kv.total_gb() - budget);
    r.kv_excess_fraction =
        with_kv.kv_cache_gb > 0
            ? std::clamp(spill / with_kv.kv_cache_gb, 0.0, 1.0)
            : 0.0;
  }

  const std::int64_t gen_mb = cfg.schedule == PipelineSchedule::kHybrid
                                  ? cfg.gen_microbatches
                                  : cfg.prompt_microbatches;

  // Forward declaration of the chain driver.
  std::function<void(std::int64_t, std::int64_t, std::int64_t, std::int64_t)>
      enter_stage;
  std::function<void(std::int64_t, std::int64_t, std::int64_t)> start_step;
  std::function<void(std::int64_t, std::int64_t, std::int64_t)> finish_step;

  auto microbatch_size = [&](std::int64_t count, std::int64_t idx) {
    const std::int64_t base = cfg.batch / count;
    const std::int64_t extra = cfg.batch % count;
    return base + (idx < extra ? 1 : 0);
  };

  start_step = [&](std::int64_t mb, std::int64_t step, std::int64_t mb_size) {
    enter_stage(0, mb, step, mb_size);
  };

  enter_stage = [&](std::int64_t s, std::int64_t mb, std::int64_t step,
                    std::int64_t mb_size) {
    const std::int64_t q_len = step == 0 ? cfg.prompt_len : 1;
    const std::int64_t kv_len = cfg.prompt_len + step;
    const double compute = r.stage_compute_s(s, mb_size, q_len, kv_len);
    const double stall =
        step == 0 ? 0.0 : r.offload_stall_s(s, mb_size, kv_len, compute);
    r.stages[static_cast<std::size_t>(s)]->submit(
        compute + stall, [&, s, mb, step, mb_size, q_len] {
          if (s + 1 < cfg.stages) {
            r.des.schedule_after(r.hop_s(mb_size, q_len), [&, s, mb, step,
                                                           mb_size] {
              enter_stage(s + 1, mb, step, mb_size);
            });
          } else {
            finish_step(mb, step, mb_size);
          }
        });
  };

  finish_step = [&](std::int64_t mb, std::int64_t step, std::int64_t mb_size) {
    const std::int64_t steps = r.total_steps();
    if (step == 0) {
      ++r.prompt_done;
      r.prompt_finish_s = r.des.now();
      const bool prompt_phase_over =
          r.prompt_done == cfg.prompt_microbatches;
      switch (cfg.schedule) {
        case PipelineSchedule::kTrainingStyle:
          if (prompt_phase_over && steps > 1) {
            for (std::int64_t i = 0; i < cfg.prompt_microbatches; ++i) {
              const std::int64_t sz = microbatch_size(cfg.prompt_microbatches, i);
              r.des.schedule_after(r.feedback_s(sz),
                                   [&, i, sz] { start_step(i, 1, sz); });
            }
          }
          break;
        case PipelineSchedule::kInferenceOptimized:
          if (steps > 1) {
            r.des.schedule_after(r.feedback_s(mb_size), [&, mb, mb_size] {
              start_step(mb, 1, mb_size);
            });
          }
          break;
        case PipelineSchedule::kHybrid:
          // Token phase regroups the batch into gen_microbatches; it starts
          // once every prompt micro-batch has produced its first token.
          if (prompt_phase_over && steps > 1) {
            for (std::int64_t i = 0; i < gen_mb; ++i) {
              const std::int64_t sz = microbatch_size(gen_mb, i);
              r.des.schedule_after(r.feedback_s(sz),
                                   [&, i, sz] { start_step(i, 1, sz); });
            }
          }
          break;
      }
      return;
    }

    // Token step completed.
    ++r.token_steps_done;
    if (step + 1 >= steps) return;
    switch (cfg.schedule) {
      case PipelineSchedule::kTrainingStyle: {
        // Barrier: all micro-batches must finish this step first.
        static_cast<void>(mb);
        if (r.token_steps_done % cfg.prompt_microbatches == 0) {
          for (std::int64_t i = 0; i < cfg.prompt_microbatches; ++i) {
            const std::int64_t sz = microbatch_size(cfg.prompt_microbatches, i);
            r.des.schedule_after(r.feedback_s(sz), [&, i, step, sz] {
              start_step(i, step + 1, sz);
            });
          }
        }
        break;
      }
      case PipelineSchedule::kInferenceOptimized:
      case PipelineSchedule::kHybrid:
        r.des.schedule_after(r.feedback_s(mb_size), [&, mb, step, mb_size] {
          start_step(mb, step + 1, mb_size);
        });
        break;
    }
  };

  // Kick off the prompt phase.
  for (std::int64_t i = 0; i < cfg.prompt_microbatches; ++i) {
    const std::int64_t sz = microbatch_size(cfg.prompt_microbatches, i);
    r.des.schedule_at(0.0, [&, i, sz] { start_step(i, 0, sz); });
  }
  const double total = r.des.run();

  PipelineSimResult res;
  res.total_s = total;
  res.prompt_s = r.prompt_finish_s;
  res.gpus = cfg.stages * cfg.tensor_parallel;
  res.tokens_per_s = static_cast<double>(cfg.batch * cfg.gen_tokens) /
                     std::max(total, 1e-12);
  double busy = 0;
  for (const auto& st : r.stages) busy += st->busy_time();
  res.bubble_fraction =
      1.0 - busy / (static_cast<double>(cfg.stages) * std::max(total, 1e-12));
  const double flops =
      static_cast<double>(cfg.batch) *
      (m.model_flops(cfg.prompt_len, cfg.prompt_len) +
       static_cast<double>(cfg.gen_tokens - 1) *
           m.model_flops(1, cfg.prompt_len + cfg.gen_tokens / 2));
  res.per_gpu_tflops =
      flops / std::max(total, 1e-12) / static_cast<double>(res.gpus) / 1e12;
  return res;
}

}  // namespace dsinfer::parallel
