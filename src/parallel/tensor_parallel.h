// Megatron-style tensor parallelism for one transformer layer (paper
// Sec. IV-A): QKV and FC1 are column-parallel (sharded output features,
// heads stay whole per rank), attention-out and FC2 are row-parallel
// (sharded input features) followed by an all-reduce. Two all-reduces per
// layer, exactly as in the paper's description of Megatron-LM slicing.
#pragma once

#include <cstdint>
#include <span>

#include "comm/collectives.h"
#include "kernels/kv_arena.h"
#include "kernels/kv_cache.h"
#include "kernels/quant.h"
#include "kernels/tensor.h"
#include "kernels/transformer_layer.h"

namespace dsinfer::parallel {

// One rank's shard of a dense transformer layer.
struct TpLayerShard {
  std::int64_t tp = 1;
  std::int64_t rank = 0;
  std::int64_t hidden = 0;
  std::int64_t heads_local = 0;
  std::int64_t hidden_local = 0;
  std::int64_t ffn_local = 0;

  Tensor ln1_g, ln1_b, ln2_g, ln2_b;  // replicated
  Tensor w_qkv, b_qkv;                // [3*hidden_local, hidden]
  Tensor w_attn_out;                  // [hidden, hidden_local]
  Tensor b_attn_out;                  // replicated, added post-reduce
  Tensor w_fc1, b_fc1;                // [ffn_local, hidden]
  Tensor w_fc2;                       // [hidden, ffn_local]
  Tensor b_fc2;                       // replicated, added post-reduce

  kernels::PackedWeight p_qkv, p_attn_out, p_fc1, p_fc2;
  kernels::QuantizedWeight q_qkv, q_attn_out, q_fc1, q_fc2;

  // Cuts rank `rank`'s shard out of a full layer. Requires heads % tp == 0.
  static TpLayerShard from_full(const kernels::LayerWeights& full,
                                std::int64_t tp, std::int64_t rank);

  // Builds SBI packs or INT8 quantized shards when the policy asks.
  void prepare(const kernels::KernelPolicy& policy);
};

struct TpScratch {
  Tensor normed, qkv, q, k, v, attn, partial, ffn1, act;
  void ensure(std::int64_t tokens, std::int64_t hidden,
              std::int64_t hidden_local, std::int64_t ffn_local);
};

// Runs one tensor-parallel layer. `x` is the replicated activation
// [batch * q_len, hidden]; after the call every rank holds the identical
// updated activation (the all-reduces guarantee it). `cache` is this rank's
// KV cache sized for `heads_local` heads.
void tp_layer_forward(const TpLayerShard& w, kernels::KVCache& cache,
                      std::span<float> x, std::int64_t batch,
                      std::int64_t q_len, const kernels::KernelPolicy& policy,
                      TpScratch& scratch, comm::Communicator& comm,
                      std::int64_t rank);

// Ragged-batch variant for the continuous scheduler (ISSUE 5): one row per
// live sequence token, slot-grouped as in transformer_layer_forward_ragged.
// `arena` is this rank's shard of the KV arena, sized for `heads_local`
// heads; slot ids and lifecycle are shared across ranks (the scheduler
// decides admissions/retirements once), so `slots`/`positions` are identical
// on every rank. Same two all-reduce sync points per layer as the uniform
// TP step; after the call every rank holds the identical updated activation.
void tp_layer_forward_ragged(const TpLayerShard& w, kernels::KVArena& arena,
                             std::int64_t layer,
                             std::span<const std::int32_t> slots,
                             std::span<const std::int32_t> positions,
                             std::span<float> x,
                             const kernels::KernelPolicy& policy,
                             TpScratch& scratch, comm::Communicator& comm,
                             std::int64_t rank);

}  // namespace dsinfer::parallel
