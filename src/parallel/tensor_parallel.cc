#include "parallel/tensor_parallel.h"

#include <cstring>
#include <stdexcept>

#include "kernels/attention.h"
#include "kernels/elementwise.h"
#include "kernels/gemm.h"

namespace dsinfer::parallel {

using kernels::GemmKind;
using kernels::KernelPolicy;
using kernels::PackedWeight;


namespace {

Tensor copy_rows(const Tensor& src, std::int64_t row_begin,
                 std::int64_t row_count, std::int64_t cols) {
  Tensor out({row_count, cols});
  std::memcpy(out.data(), src.data() + row_begin * cols,
              static_cast<std::size_t>(row_count * cols) * sizeof(float));
  return out;
}

Tensor copy_cols(const Tensor& src, std::int64_t rows, std::int64_t cols,
                 std::int64_t col_begin, std::int64_t col_count) {
  Tensor out({rows, col_count});
  for (std::int64_t r = 0; r < rows; ++r) {
    std::memcpy(out.data() + r * col_count,
                src.data() + r * cols + col_begin,
                static_cast<std::size_t>(col_count) * sizeof(float));
  }
  return out;
}

Tensor copy_vec(const Tensor& src, std::int64_t begin, std::int64_t count) {
  Tensor out({count});
  std::memcpy(out.data(), src.data() + begin,
              static_cast<std::size_t>(count) * sizeof(float));
  return out;
}

void run_linear(std::span<const float> x, const Tensor& w,
                const PackedWeight& packed, const kernels::QuantizedWeight& quant,
                std::span<const float> bias, std::span<float> y,
                std::int64_t m, std::int64_t in, std::int64_t out,
                const KernelPolicy& policy) {
  if (policy.dtype == kernels::Dtype::kINT8) {
    // INT8 GeMM with the bias folded into the dequant epilogue.
    kernels::linear_int8(x, quant, bias, y, m);
    return;
  }
  switch (policy.gemm) {
    case GemmKind::kReference:
      kernels::linear_ref(x, w.span(), bias, y, m, in, out);
      break;
    case GemmKind::kBlocked:
      kernels::linear_blocked(x, w.span(), bias, y, m, in, out);
      break;
    case GemmKind::kSbi:
      kernels::linear_sbi(x, packed, bias, y, m);
      break;
  }
}

}  // namespace

TpLayerShard TpLayerShard::from_full(const kernels::LayerWeights& full,
                                     std::int64_t tp, std::int64_t rank) {
  if (tp < 1 || rank < 0 || rank >= tp) {
    throw std::invalid_argument("TpLayerShard: bad tp/rank");
  }
  if (full.heads % tp != 0 || full.ffn % tp != 0) {
    throw std::invalid_argument("TpLayerShard: heads and ffn must divide tp");
  }
  TpLayerShard s;
  s.tp = tp;
  s.rank = rank;
  s.hidden = full.hidden;
  s.heads_local = full.heads / tp;
  s.hidden_local = full.hidden / tp;
  s.ffn_local = full.ffn / tp;

  s.ln1_g = full.ln1_g.clone();
  s.ln1_b = full.ln1_b.clone();
  s.ln2_g = full.ln2_g.clone();
  s.ln2_b = full.ln2_b.clone();

  const std::int64_t H = full.hidden;
  const std::int64_t Hl = s.hidden_local;
  const std::int64_t Fl = s.ffn_local;

  // QKV column-parallel: take this rank's head block from each of Q, K, V.
  s.w_qkv.reshape({3 * Hl, H});
  s.b_qkv.reshape({3 * Hl});
  for (std::int64_t part = 0; part < 3; ++part) {
    std::memcpy(s.w_qkv.data() + part * Hl * H,
                full.w_qkv.data() + (part * H + rank * Hl) * H,
                static_cast<std::size_t>(Hl * H) * sizeof(float));
    std::memcpy(s.b_qkv.data() + part * Hl,
                full.b_qkv.data() + part * H + rank * Hl,
                static_cast<std::size_t>(Hl) * sizeof(float));
  }

  // Attention output row-parallel: shard input features.
  s.w_attn_out = copy_cols(full.w_attn_out, H, H, rank * Hl, Hl);
  s.b_attn_out = full.b_attn_out.clone();

  // FC1 column-parallel.
  s.w_fc1 = copy_rows(full.w_fc1, rank * Fl, Fl, H);
  s.b_fc1 = copy_vec(full.b_fc1, rank * Fl, Fl);

  // FC2 row-parallel.
  s.w_fc2 = copy_cols(full.w_fc2, H, full.ffn, rank * Fl, Fl);
  s.b_fc2 = full.b_fc2.clone();
  return s;
}

void TpLayerShard::prepare(const KernelPolicy& policy) {
  if (policy.dtype == kernels::Dtype::kINT8) {
    if (q_qkv.empty()) {
      q_qkv = kernels::QuantizedWeight(w_qkv.span(), 3 * hidden_local, hidden);
      q_attn_out =
          kernels::QuantizedWeight(w_attn_out.span(), hidden, hidden_local);
      q_fc1 = kernels::QuantizedWeight(w_fc1.span(), ffn_local, hidden);
      q_fc2 = kernels::QuantizedWeight(w_fc2.span(), hidden, ffn_local);
    }
  } else if (policy.gemm == GemmKind::kSbi && p_qkv.empty()) {
    p_qkv = PackedWeight(w_qkv.span(), 3 * hidden_local, hidden);
    p_attn_out = PackedWeight(w_attn_out.span(), hidden, hidden_local);
    p_fc1 = PackedWeight(w_fc1.span(), ffn_local, hidden);
    p_fc2 = PackedWeight(w_fc2.span(), hidden, ffn_local);
  }
}

void TpScratch::ensure(std::int64_t tokens, std::int64_t hidden,
                       std::int64_t hidden_local, std::int64_t ffn_local) {
  if (normed.numel() >= tokens * hidden && ffn1.numel() >= tokens * ffn_local) {
    return;
  }
  normed.reshape({tokens, hidden});
  qkv.reshape({tokens, 3 * hidden_local});
  q.reshape({tokens, hidden_local});
  k.reshape({tokens, hidden_local});
  v.reshape({tokens, hidden_local});
  attn.reshape({tokens, hidden_local});
  partial.reshape({tokens, hidden});
  ffn1.reshape({tokens, ffn_local});
  act.reshape({tokens, ffn_local});
}

void tp_layer_forward(const TpLayerShard& w, kernels::KVCache& cache,
                      std::span<float> x, std::int64_t batch,
                      std::int64_t q_len, const KernelPolicy& policy,
                      TpScratch& scratch, comm::Communicator& comm,
                      std::int64_t rank) {
  const std::int64_t tokens = batch * q_len;
  const std::int64_t H = w.hidden;
  const std::int64_t Hl = w.hidden_local;
  const std::int64_t Fl = w.ffn_local;
  if (x.size() < static_cast<std::size_t>(tokens * H)) {
    throw std::invalid_argument("tp_layer_forward: x span too small");
  }
  scratch.ensure(tokens, H, Hl, Fl);

  // Replicated layernorm, local QKV shard.
  kernels::layernorm(x, w.ln1_g.span(), w.ln1_b.span(), scratch.normed.span(),
                     tokens, H);
  run_linear(scratch.normed.span(), w.w_qkv, w.p_qkv, w.q_qkv,
             w.b_qkv.span(), scratch.qkv.span(), tokens, H, 3 * Hl, policy);
  for (std::int64_t t = 0; t < tokens; ++t) {
    const float* src = scratch.qkv.data() + t * 3 * Hl;
    std::memcpy(scratch.q.data() + t * Hl, src,
                static_cast<std::size_t>(Hl) * sizeof(float));
    std::memcpy(scratch.k.data() + t * Hl, src + Hl,
                static_cast<std::size_t>(Hl) * sizeof(float));
    std::memcpy(scratch.v.data() + t * Hl, src + 2 * Hl,
                static_cast<std::size_t>(Hl) * sizeof(float));
  }
  cache.append(scratch.k.span(), scratch.v.span(), q_len);
  kernels::attention_fused(scratch.q.span(), cache, scratch.attn.span(), q_len,
                           policy.causal);

  // Row-parallel projection: partial results summed across ranks.
  run_linear(scratch.attn.span(), w.w_attn_out, w.p_attn_out, w.q_attn_out,
             {}, scratch.partial.span(), tokens, Hl, H, policy);
  comm.all_reduce_sum(rank, scratch.partial.span());
  kernels::bias_residual(scratch.partial.span(), w.b_attn_out.span(), x, x,
                         tokens, H);

  // FFN block.
  kernels::layernorm(x, w.ln2_g.span(), w.ln2_b.span(), scratch.normed.span(),
                     tokens, H);
  run_linear(scratch.normed.span(), w.w_fc1, w.p_fc1, w.q_fc1, /*bias=*/{},
             scratch.ffn1.span(), tokens, H, Fl, policy);
  kernels::bias_gelu(scratch.ffn1.span(), w.b_fc1.span(), scratch.act.span(),
                     tokens, Fl);
  run_linear(scratch.act.span(), w.w_fc2, w.p_fc2, w.q_fc2, {},
             scratch.partial.span(), tokens, Fl, H, policy);
  comm.all_reduce_sum(rank, scratch.partial.span());
  kernels::bias_residual(scratch.partial.span(), w.b_fc2.span(), x, x, tokens,
                         H);
}

void tp_layer_forward_ragged(const TpLayerShard& w, kernels::KVArena& arena,
                             std::int64_t layer,
                             std::span<const std::int32_t> slots,
                             std::span<const std::int32_t> positions,
                             std::span<float> x, const KernelPolicy& policy,
                             TpScratch& scratch, comm::Communicator& comm,
                             std::int64_t rank) {
  const std::int64_t tokens = static_cast<std::int64_t>(slots.size());
  const std::int64_t H = w.hidden;
  const std::int64_t Hl = w.hidden_local;
  const std::int64_t Fl = w.ffn_local;
  if (tokens < 1 || positions.size() != slots.size()) {
    throw std::invalid_argument("tp_layer_forward_ragged: bad slots/positions");
  }
  if (x.size() < static_cast<std::size_t>(tokens * H)) {
    throw std::invalid_argument("tp_layer_forward_ragged: x span too small");
  }
  if (arena.heads() != w.heads_local) {
    throw std::invalid_argument(
        "tp_layer_forward_ragged: arena shard does not match heads_local");
  }
  scratch.ensure(tokens, H, Hl, Fl);

  // Replicated layernorm, local QKV shard (same math as tp_layer_forward).
  kernels::layernorm(x, w.ln1_g.span(), w.ln1_b.span(), scratch.normed.span(),
                     tokens, H);
  run_linear(scratch.normed.span(), w.w_qkv, w.p_qkv, w.q_qkv,
             w.b_qkv.span(), scratch.qkv.span(), tokens, H, 3 * Hl, policy);
  for (std::int64_t t = 0; t < tokens; ++t) {
    const float* src = scratch.qkv.data() + t * 3 * Hl;
    std::memcpy(scratch.q.data() + t * Hl, src,
                static_cast<std::size_t>(Hl) * sizeof(float));
    std::memcpy(scratch.k.data() + t * Hl, src + Hl,
                static_cast<std::size_t>(Hl) * sizeof(float));
    std::memcpy(scratch.v.data() + t * Hl, src + 2 * Hl,
                static_cast<std::size_t>(Hl) * sizeof(float));
  }

  // Append each slot's run of new positions to this rank's shard. Rows for
  // one slot must be contiguous, in position order, and land exactly at the
  // slot's current length — identical to the single-device ragged step.
  std::int64_t r0 = 0;
  while (r0 < tokens) {
    std::int64_t r1 = r0 + 1;
    while (r1 < tokens &&
           slots[static_cast<std::size_t>(r1)] ==
               slots[static_cast<std::size_t>(r0)]) {
      ++r1;
    }
    const std::int64_t slot = slots[static_cast<std::size_t>(r0)];
    if (positions[static_cast<std::size_t>(r0)] != arena.seq_len(layer, slot)) {
      throw std::invalid_argument(
          "tp_layer_forward_ragged: positions must extend the slot history");
    }
    const auto off = static_cast<std::size_t>(r0 * Hl);
    const auto n = static_cast<std::size_t>((r1 - r0) * Hl);
    arena.append(layer, slot, scratch.k.span().subspan(off, n),
                 scratch.v.span().subspan(off, n), r1 - r0);
    r0 = r1;
  }
  kernels::attention_fused_ragged(scratch.q.span(), arena, layer, slots,
                                  positions, scratch.attn.span());

  // Row-parallel projection: partial results summed across ranks.
  run_linear(scratch.attn.span(), w.w_attn_out, w.p_attn_out, w.q_attn_out,
             {}, scratch.partial.span(), tokens, Hl, H, policy);
  comm.all_reduce_sum(rank, scratch.partial.span());
  kernels::bias_residual(scratch.partial.span(), w.b_attn_out.span(), x, x,
                         tokens, H);

  // FFN block.
  kernels::layernorm(x, w.ln2_g.span(), w.ln2_b.span(), scratch.normed.span(),
                     tokens, H);
  run_linear(scratch.normed.span(), w.w_fc1, w.p_fc1, w.q_fc1, /*bias=*/{},
             scratch.ffn1.span(), tokens, H, Fl, policy);
  kernels::bias_gelu(scratch.ffn1.span(), w.b_fc1.span(), scratch.act.span(),
                     tokens, Fl);
  run_linear(scratch.act.span(), w.w_fc2, w.p_fc2, w.q_fc2, {},
             scratch.partial.span(), tokens, Fl, H, policy);
  comm.all_reduce_sum(rank, scratch.partial.span());
  kernels::bias_residual(scratch.partial.span(), w.b_fc2.span(), x, x, tokens,
                         H);
}

}  // namespace dsinfer::parallel
