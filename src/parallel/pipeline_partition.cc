#include "parallel/pipeline_partition.h"

#include <stdexcept>

namespace dsinfer::parallel {

std::vector<std::pair<std::int64_t, std::int64_t>> partition_layers(
    std::int64_t layers, std::int64_t stages) {
  if (stages < 1 || layers < stages) {
    throw std::invalid_argument("partition_layers: need layers >= stages >= 1");
  }
  std::vector<std::pair<std::int64_t, std::int64_t>> parts;
  parts.reserve(static_cast<std::size_t>(stages));
  const std::int64_t base = layers / stages;
  const std::int64_t extra = layers % stages;
  std::int64_t begin = 0;
  for (std::int64_t s = 0; s < stages; ++s) {
    const std::int64_t len = base + (s < extra ? 1 : 0);
    parts.emplace_back(begin, begin + len);
    begin += len;
  }
  return parts;
}

StageMemory stage_memory(const model::DenseModelConfig& m,
                         std::int64_t stage_layers, std::int64_t tp,
                         std::int64_t batch, std::int64_t seq,
                         model::Dtype dtype, bool kv_offload) {
  if (tp < 1) {
    throw std::invalid_argument("stage_memory: tp must be >= 1");
  }
  if (stage_layers < 1 || stage_layers > m.layers) {
    throw std::invalid_argument(
        "stage_memory: stage_layers must be in [1, model layers]");
  }
  StageMemory mem;
  mem.weight_gb = static_cast<double>(stage_layers) * m.layer_param_bytes(dtype) /
                  static_cast<double>(tp) / 1e9;
  if (!kv_offload) {
    // This stage caches only its own layers' K/V; tensor slicing splits the
    // head dimension across the tp GPUs, so each rank holds heads/tp of
    // every cached position (audited under ISSUE 5: the per-rank division
    // applies exactly when kv_offload is off — offloaded caches live in
    // host memory and cost no device bytes regardless of tp).
    mem.kv_cache_gb = m.kv_cache_bytes(batch, seq) *
                      (static_cast<double>(stage_layers) /
                       static_cast<double>(m.layers)) /
                      static_cast<double>(tp) / 1e9;
  }
  // Activations for one micro-batch plus kernel workspace: a few copies of
  // the hidden state and the FFN intermediate.
  const double act_bytes = static_cast<double>(batch) *
                           static_cast<double>(seq) *
                           static_cast<double>(m.hidden) * 2.0;
  mem.workspace_gb = 6.0 * act_bytes / static_cast<double>(tp) / 1e9 + 0.75;
  return mem;
}

std::int64_t max_batch_for_memory(const model::DenseModelConfig& m,
                                  const hw::GpuSpec& gpu,
                                  std::int64_t stage_layers, std::int64_t tp,
                                  std::int64_t seq, model::Dtype dtype,
                                  bool kv_offload) {
  const double budget = gpu.mem_gb * 0.92;  // fragmentation + runtime reserve
  std::int64_t lo = 0, hi = 1;
  // Exponential probe then binary search.
  while (stage_memory(m, stage_layers, tp, hi, seq, dtype, kv_offload)
             .total_gb() <= budget &&
         hi < (1 << 20)) {
    lo = hi;
    hi *= 2;
  }
  while (lo + 1 < hi) {
    const std::int64_t mid = (lo + hi) / 2;
    if (stage_memory(m, stage_layers, tp, mid, seq, dtype, kv_offload)
            .total_gb() <= budget) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace dsinfer::parallel
