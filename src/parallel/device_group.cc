#include "parallel/device_group.h"

#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"

namespace dsinfer::parallel {

DeviceGroup::DeviceGroup(std::int64_t num_devices) : comm_(num_devices) {}

DeviceGroup::DeviceGroup(std::int64_t num_devices,
                         const comm::CommOptions& opts)
    : comm_(num_devices, opts) {}

void DeviceGroup::run(
    const std::function<void(std::int64_t, comm::Communicator&)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size()));
  std::exception_ptr first_error;
  std::mutex err_mu;
  for (std::int64_t r = 0; r < size(); ++r) {
    threads.emplace_back([&, r] {
      try {
        if (obs::trace_enabled()) {
          obs::TraceRecorder::instance().set_thread_name(
              "tp-rank-" + std::to_string(r));
        }
        body(r, comm_);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace dsinfer::parallel
