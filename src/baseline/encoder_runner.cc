#include "baseline/encoder_runner.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "kernels/kv_cache.h"
#include "util/rng.h"
#include "util/stats.h"

namespace dsinfer::baseline {

using kernels::GemmKind;
using kernels::KernelPolicy;

KernelPolicy policy_for(KernelStack stack, bool causal) {
  KernelPolicy p;
  switch (stack) {
    case KernelStack::kDeepSpeed:
      p = KernelPolicy::optimized_small_batch();
      break;
    case KernelStack::kEtLike:
      p = KernelPolicy::et_like();
      break;
    case KernelStack::kPyTorch:
      p = KernelPolicy::baseline();
      break;
  }
  p.causal = causal;
  return p;
}

const char* stack_name(KernelStack stack) {
  switch (stack) {
    case KernelStack::kDeepSpeed:
      return "DeepSpeed";
    case KernelStack::kEtLike:
      return "E.T.-like";
    case KernelStack::kPyTorch:
      return "PyTorch";
  }
  return "?";
}

RunResult run_layer_stack(const model::DenseModelConfig& cfg,
                          KernelStack stack, std::int64_t batch,
                          std::int64_t seq, std::int64_t iterations,
                          std::int64_t scale_layers) {
  return run_layer_stack_policy(cfg, policy_for(stack, cfg.causal), batch,
                                seq, iterations, scale_layers);
}

RunResult run_layer_stack_policy(const model::DenseModelConfig& cfg,
                                 const KernelPolicy& policy,
                                 std::int64_t batch, std::int64_t seq,
                                 std::int64_t iterations,
                                 std::int64_t scale_layers) {
  if (batch < 1 || seq < 1 || iterations < 1) {
    throw std::invalid_argument("run_layer_stack: bad arguments");
  }
  const std::int64_t layers =
      scale_layers > 0 ? std::min(scale_layers, cfg.layers) : cfg.layers;

  Rng rng(0xBEEF);
  std::vector<kernels::LayerWeights> stack_weights(
      static_cast<std::size_t>(layers));
  for (auto& w : stack_weights) {
    w.init_random(rng, cfg.hidden, cfg.heads, cfg.ffn());
    w.prepare(policy);
  }

  std::vector<float> x(static_cast<std::size_t>(batch * seq * cfg.hidden));
  kernels::LayerScratch scratch;
  RunResult res;
  res.iterations = iterations;
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(iterations));
  for (std::int64_t it = 0; it < iterations; ++it) {
    Rng xr(1000 + static_cast<std::uint64_t>(it));
    xr.fill_normal(x);
    Stopwatch sw;
    for (auto& w : stack_weights) {
      kernels::KVCache cache(batch, cfg.heads, cfg.head_dim(), seq);
      kernels::transformer_layer_forward(w, cache, x, batch, seq, policy,
                                         scratch);
    }
    samples.push_back(sw.elapsed_ms());
  }
  const Summary s = summarize(samples);
  res.mean_ms = s.mean;
  res.min_ms = s.min;
  return res;
}

}  // namespace dsinfer::baseline
