// Functional encoder/decoder layer-stack runner used by the kernel
// comparison benches (Figs. 10a and 12). It executes a real model's layer
// stack on the CPU under a given KernelPolicy and reports measured wall
// time, so the fused-vs-partially-fused-vs-unfused comparisons are actual
// measurements of this library's kernels, not simulator output.
#pragma once

#include <cstdint>

#include "kernels/transformer_layer.h"
#include "model/model_config.h"

namespace dsinfer::baseline {

// Named kernel stacks for the comparisons in the paper's Figs. 10a/12.
enum class KernelStack {
  kDeepSpeed,  // Deep-Fusion + SBI-GeMM (small batch)
  kEtLike,     // fused attention only, library GeMMs (E.T.)
  kPyTorch,    // kernel-per-micro-op, library GeMMs
};

kernels::KernelPolicy policy_for(KernelStack stack, bool causal);
const char* stack_name(KernelStack stack);

struct RunResult {
  double mean_ms = 0;
  double min_ms = 0;
  std::int64_t iterations = 0;
};

// Builds a `cfg`-shaped stack of layers (seeded deterministically) and times
// `iterations` forward passes of [batch, seq] over it. The returned timings
// exclude weight initialization. `scale_layers` optionally truncates very
// deep models so the measurement stays tractable on a laptop-class CPU; the
// reported per-layer time is unaffected.
RunResult run_layer_stack(const model::DenseModelConfig& cfg,
                          KernelStack stack, std::int64_t batch,
                          std::int64_t seq, std::int64_t iterations,
                          std::int64_t scale_layers = 0);

// Same, but with an explicit kernel policy (used by the Fig. 10a ablation,
// which needs "Deep-Fusion without SBI-GeMM" as a middle rung).
RunResult run_layer_stack_policy(const model::DenseModelConfig& cfg,
                                 const kernels::KernelPolicy& policy,
                                 std::int64_t batch, std::int64_t seq,
                                 std::int64_t iterations,
                                 std::int64_t scale_layers = 0);

}  // namespace dsinfer::baseline
