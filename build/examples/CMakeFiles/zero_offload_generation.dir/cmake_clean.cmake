file(REMOVE_RECURSE
  "CMakeFiles/zero_offload_generation.dir/zero_offload_generation.cpp.o"
  "CMakeFiles/zero_offload_generation.dir/zero_offload_generation.cpp.o.d"
  "zero_offload_generation"
  "zero_offload_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zero_offload_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
