# Empty compiler generated dependencies file for zero_offload_generation.
# This may be replaced when dependencies are built.
