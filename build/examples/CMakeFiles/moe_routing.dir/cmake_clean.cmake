file(REMOVE_RECURSE
  "CMakeFiles/moe_routing.dir/moe_routing.cpp.o"
  "CMakeFiles/moe_routing.dir/moe_routing.cpp.o.d"
  "moe_routing"
  "moe_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moe_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
