# Empty dependencies file for moe_routing.
# This may be replaced when dependencies are built.
