file(REMOVE_RECURSE
  "CMakeFiles/dsinfer_cli.dir/dsinfer_cli.cpp.o"
  "CMakeFiles/dsinfer_cli.dir/dsinfer_cli.cpp.o.d"
  "dsinfer_cli"
  "dsinfer_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsinfer_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
