# Empty compiler generated dependencies file for dsinfer_cli.
# This may be replaced when dependencies are built.
