file(REMOVE_RECURSE
  "CMakeFiles/tensor_parallel_inference.dir/tensor_parallel_inference.cpp.o"
  "CMakeFiles/tensor_parallel_inference.dir/tensor_parallel_inference.cpp.o.d"
  "tensor_parallel_inference"
  "tensor_parallel_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_parallel_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
