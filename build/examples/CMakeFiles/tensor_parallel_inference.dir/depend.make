# Empty dependencies file for tensor_parallel_inference.
# This may be replaced when dependencies are built.
