file(REMOVE_RECURSE
  "CMakeFiles/moe_text_generation.dir/moe_text_generation.cpp.o"
  "CMakeFiles/moe_text_generation.dir/moe_text_generation.cpp.o.d"
  "moe_text_generation"
  "moe_text_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moe_text_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
