# Empty dependencies file for moe_text_generation.
# This may be replaced when dependencies are built.
