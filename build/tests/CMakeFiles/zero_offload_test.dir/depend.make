# Empty dependencies file for zero_offload_test.
# This may be replaced when dependencies are built.
