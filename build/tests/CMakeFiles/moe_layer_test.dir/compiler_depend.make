# Empty compiler generated dependencies file for moe_layer_test.
# This may be replaced when dependencies are built.
