file(REMOVE_RECURSE
  "CMakeFiles/moe_layer_test.dir/moe_layer_test.cc.o"
  "CMakeFiles/moe_layer_test.dir/moe_layer_test.cc.o.d"
  "moe_layer_test"
  "moe_layer_test.pdb"
  "moe_layer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moe_layer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
