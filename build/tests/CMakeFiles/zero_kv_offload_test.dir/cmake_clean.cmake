file(REMOVE_RECURSE
  "CMakeFiles/zero_kv_offload_test.dir/zero_kv_offload_test.cc.o"
  "CMakeFiles/zero_kv_offload_test.dir/zero_kv_offload_test.cc.o.d"
  "zero_kv_offload_test"
  "zero_kv_offload_test.pdb"
  "zero_kv_offload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zero_kv_offload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
