# Empty compiler generated dependencies file for zero_perf_test.
# This may be replaced when dependencies are built.
