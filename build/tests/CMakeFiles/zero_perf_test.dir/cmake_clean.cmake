file(REMOVE_RECURSE
  "CMakeFiles/zero_perf_test.dir/zero_perf_test.cc.o"
  "CMakeFiles/zero_perf_test.dir/zero_perf_test.cc.o.d"
  "zero_perf_test"
  "zero_perf_test.pdb"
  "zero_perf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zero_perf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
