file(REMOVE_RECURSE
  "CMakeFiles/parallel_tp_test.dir/parallel_tp_test.cc.o"
  "CMakeFiles/parallel_tp_test.dir/parallel_tp_test.cc.o.d"
  "parallel_tp_test"
  "parallel_tp_test.pdb"
  "parallel_tp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_tp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
