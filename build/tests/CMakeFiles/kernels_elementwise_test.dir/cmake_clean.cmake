file(REMOVE_RECURSE
  "CMakeFiles/kernels_elementwise_test.dir/kernels_elementwise_test.cc.o"
  "CMakeFiles/kernels_elementwise_test.dir/kernels_elementwise_test.cc.o.d"
  "kernels_elementwise_test"
  "kernels_elementwise_test.pdb"
  "kernels_elementwise_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_elementwise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
