# Empty compiler generated dependencies file for kernels_elementwise_test.
# This may be replaced when dependencies are built.
