# Empty compiler generated dependencies file for moe_tp_ep_test.
# This may be replaced when dependencies are built.
