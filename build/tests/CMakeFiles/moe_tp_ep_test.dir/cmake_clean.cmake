file(REMOVE_RECURSE
  "CMakeFiles/moe_tp_ep_test.dir/moe_tp_ep_test.cc.o"
  "CMakeFiles/moe_tp_ep_test.dir/moe_tp_ep_test.cc.o.d"
  "moe_tp_ep_test"
  "moe_tp_ep_test.pdb"
  "moe_tp_ep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moe_tp_ep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
