file(REMOVE_RECURSE
  "CMakeFiles/moe_topk_test.dir/moe_topk_test.cc.o"
  "CMakeFiles/moe_topk_test.dir/moe_topk_test.cc.o.d"
  "moe_topk_test"
  "moe_topk_test.pdb"
  "moe_topk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moe_topk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
