# Empty dependencies file for moe_topk_test.
# This may be replaced when dependencies are built.
