# Empty dependencies file for comm_collectives_test.
# This may be replaced when dependencies are built.
