file(REMOVE_RECURSE
  "CMakeFiles/kernels_layer_test.dir/kernels_layer_test.cc.o"
  "CMakeFiles/kernels_layer_test.dir/kernels_layer_test.cc.o.d"
  "kernels_layer_test"
  "kernels_layer_test.pdb"
  "kernels_layer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_layer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
