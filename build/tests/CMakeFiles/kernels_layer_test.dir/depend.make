# Empty dependencies file for kernels_layer_test.
# This may be replaced when dependencies are built.
