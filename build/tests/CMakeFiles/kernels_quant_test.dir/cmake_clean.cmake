file(REMOVE_RECURSE
  "CMakeFiles/kernels_quant_test.dir/kernels_quant_test.cc.o"
  "CMakeFiles/kernels_quant_test.dir/kernels_quant_test.cc.o.d"
  "kernels_quant_test"
  "kernels_quant_test.pdb"
  "kernels_quant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_quant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
