# Empty dependencies file for kernels_quant_test.
# This may be replaced when dependencies are built.
