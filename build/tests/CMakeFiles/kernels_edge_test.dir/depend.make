# Empty dependencies file for kernels_edge_test.
# This may be replaced when dependencies are built.
