file(REMOVE_RECURSE
  "CMakeFiles/kernels_edge_test.dir/kernels_edge_test.cc.o"
  "CMakeFiles/kernels_edge_test.dir/kernels_edge_test.cc.o.d"
  "kernels_edge_test"
  "kernels_edge_test.pdb"
  "kernels_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
