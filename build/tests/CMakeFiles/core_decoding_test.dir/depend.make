# Empty dependencies file for core_decoding_test.
# This may be replaced when dependencies are built.
