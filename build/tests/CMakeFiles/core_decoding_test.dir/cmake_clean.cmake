file(REMOVE_RECURSE
  "CMakeFiles/core_decoding_test.dir/core_decoding_test.cc.o"
  "CMakeFiles/core_decoding_test.dir/core_decoding_test.cc.o.d"
  "core_decoding_test"
  "core_decoding_test.pdb"
  "core_decoding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_decoding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
