file(REMOVE_RECURSE
  "CMakeFiles/kernels_attention_test.dir/kernels_attention_test.cc.o"
  "CMakeFiles/kernels_attention_test.dir/kernels_attention_test.cc.o.d"
  "kernels_attention_test"
  "kernels_attention_test.pdb"
  "kernels_attention_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_attention_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
