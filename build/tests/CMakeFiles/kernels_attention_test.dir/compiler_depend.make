# Empty compiler generated dependencies file for kernels_attention_test.
# This may be replaced when dependencies are built.
