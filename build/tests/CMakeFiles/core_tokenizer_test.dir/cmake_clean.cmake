file(REMOVE_RECURSE
  "CMakeFiles/core_tokenizer_test.dir/core_tokenizer_test.cc.o"
  "CMakeFiles/core_tokenizer_test.dir/core_tokenizer_test.cc.o.d"
  "core_tokenizer_test"
  "core_tokenizer_test.pdb"
  "core_tokenizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tokenizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
