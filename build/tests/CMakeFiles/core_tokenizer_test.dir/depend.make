# Empty dependencies file for core_tokenizer_test.
# This may be replaced when dependencies are built.
