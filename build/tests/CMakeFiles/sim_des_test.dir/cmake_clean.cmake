file(REMOVE_RECURSE
  "CMakeFiles/sim_des_test.dir/sim_des_test.cc.o"
  "CMakeFiles/sim_des_test.dir/sim_des_test.cc.o.d"
  "sim_des_test"
  "sim_des_test.pdb"
  "sim_des_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_des_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
