# Empty dependencies file for moe_perf_test.
# This may be replaced when dependencies are built.
