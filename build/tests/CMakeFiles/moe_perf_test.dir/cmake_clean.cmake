file(REMOVE_RECURSE
  "CMakeFiles/moe_perf_test.dir/moe_perf_test.cc.o"
  "CMakeFiles/moe_perf_test.dir/moe_perf_test.cc.o.d"
  "moe_perf_test"
  "moe_perf_test.pdb"
  "moe_perf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moe_perf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
