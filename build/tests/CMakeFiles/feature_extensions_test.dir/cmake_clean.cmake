file(REMOVE_RECURSE
  "CMakeFiles/feature_extensions_test.dir/feature_extensions_test.cc.o"
  "CMakeFiles/feature_extensions_test.dir/feature_extensions_test.cc.o.d"
  "feature_extensions_test"
  "feature_extensions_test.pdb"
  "feature_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
