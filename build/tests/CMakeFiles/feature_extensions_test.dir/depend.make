# Empty dependencies file for feature_extensions_test.
# This may be replaced when dependencies are built.
