# Empty compiler generated dependencies file for kernels_gemm_test.
# This may be replaced when dependencies are built.
