file(REMOVE_RECURSE
  "CMakeFiles/kernels_gemm_test.dir/kernels_gemm_test.cc.o"
  "CMakeFiles/kernels_gemm_test.dir/kernels_gemm_test.cc.o.d"
  "kernels_gemm_test"
  "kernels_gemm_test.pdb"
  "kernels_gemm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_gemm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
