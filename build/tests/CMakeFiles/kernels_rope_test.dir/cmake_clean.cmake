file(REMOVE_RECURSE
  "CMakeFiles/kernels_rope_test.dir/kernels_rope_test.cc.o"
  "CMakeFiles/kernels_rope_test.dir/kernels_rope_test.cc.o.d"
  "kernels_rope_test"
  "kernels_rope_test.pdb"
  "kernels_rope_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_rope_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
