# Empty compiler generated dependencies file for kernels_rope_test.
# This may be replaced when dependencies are built.
