file(REMOVE_RECURSE
  "CMakeFiles/moe_transformer_test.dir/moe_transformer_test.cc.o"
  "CMakeFiles/moe_transformer_test.dir/moe_transformer_test.cc.o.d"
  "moe_transformer_test"
  "moe_transformer_test.pdb"
  "moe_transformer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moe_transformer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
