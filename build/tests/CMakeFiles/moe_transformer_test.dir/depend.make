# Empty dependencies file for moe_transformer_test.
# This may be replaced when dependencies are built.
