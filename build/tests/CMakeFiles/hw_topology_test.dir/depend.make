# Empty dependencies file for hw_topology_test.
# This may be replaced when dependencies are built.
