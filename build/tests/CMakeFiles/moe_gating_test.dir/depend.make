# Empty dependencies file for moe_gating_test.
# This may be replaced when dependencies are built.
