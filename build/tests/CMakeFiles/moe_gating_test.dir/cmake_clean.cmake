file(REMOVE_RECURSE
  "CMakeFiles/moe_gating_test.dir/moe_gating_test.cc.o"
  "CMakeFiles/moe_gating_test.dir/moe_gating_test.cc.o.d"
  "moe_gating_test"
  "moe_gating_test.pdb"
  "moe_gating_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moe_gating_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
