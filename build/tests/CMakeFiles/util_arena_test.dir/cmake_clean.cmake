file(REMOVE_RECURSE
  "CMakeFiles/util_arena_test.dir/util_arena_test.cc.o"
  "CMakeFiles/util_arena_test.dir/util_arena_test.cc.o.d"
  "util_arena_test"
  "util_arena_test.pdb"
  "util_arena_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_arena_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
