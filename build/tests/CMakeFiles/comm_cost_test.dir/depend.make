# Empty dependencies file for comm_cost_test.
# This may be replaced when dependencies are built.
