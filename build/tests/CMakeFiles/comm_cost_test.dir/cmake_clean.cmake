file(REMOVE_RECURSE
  "CMakeFiles/comm_cost_test.dir/comm_cost_test.cc.o"
  "CMakeFiles/comm_cost_test.dir/comm_cost_test.cc.o.d"
  "comm_cost_test"
  "comm_cost_test.pdb"
  "comm_cost_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
