# Empty compiler generated dependencies file for table1_table2_configs.
# This may be replaced when dependencies are built.
