file(REMOVE_RECURSE
  "CMakeFiles/fig7_moe_latency.dir/fig7_moe_latency.cc.o"
  "CMakeFiles/fig7_moe_latency.dir/fig7_moe_latency.cc.o.d"
  "fig7_moe_latency"
  "fig7_moe_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_moe_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
