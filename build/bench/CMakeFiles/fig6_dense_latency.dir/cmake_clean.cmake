file(REMOVE_RECURSE
  "CMakeFiles/fig6_dense_latency.dir/fig6_dense_latency.cc.o"
  "CMakeFiles/fig6_dense_latency.dir/fig6_dense_latency.cc.o.d"
  "fig6_dense_latency"
  "fig6_dense_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_dense_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
