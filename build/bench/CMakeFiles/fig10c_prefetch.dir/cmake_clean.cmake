file(REMOVE_RECURSE
  "CMakeFiles/fig10c_prefetch.dir/fig10c_prefetch.cc.o"
  "CMakeFiles/fig10c_prefetch.dir/fig10c_prefetch.cc.o.d"
  "fig10c_prefetch"
  "fig10c_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10c_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
