# Empty compiler generated dependencies file for fig10c_prefetch.
# This may be replaced when dependencies are built.
