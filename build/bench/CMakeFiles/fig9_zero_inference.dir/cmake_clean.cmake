file(REMOVE_RECURSE
  "CMakeFiles/fig9_zero_inference.dir/fig9_zero_inference.cc.o"
  "CMakeFiles/fig9_zero_inference.dir/fig9_zero_inference.cc.o.d"
  "fig9_zero_inference"
  "fig9_zero_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_zero_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
