# Empty dependencies file for fig9_zero_inference.
# This may be replaced when dependencies are built.
