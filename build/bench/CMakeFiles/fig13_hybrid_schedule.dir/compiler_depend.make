# Empty compiler generated dependencies file for fig13_hybrid_schedule.
# This may be replaced when dependencies are built.
