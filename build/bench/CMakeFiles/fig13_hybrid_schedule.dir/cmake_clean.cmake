file(REMOVE_RECURSE
  "CMakeFiles/fig13_hybrid_schedule.dir/fig13_hybrid_schedule.cc.o"
  "CMakeFiles/fig13_hybrid_schedule.dir/fig13_hybrid_schedule.cc.o.d"
  "fig13_hybrid_schedule"
  "fig13_hybrid_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_hybrid_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
