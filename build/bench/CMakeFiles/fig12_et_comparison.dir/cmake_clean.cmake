file(REMOVE_RECURSE
  "CMakeFiles/fig12_et_comparison.dir/fig12_et_comparison.cc.o"
  "CMakeFiles/fig12_et_comparison.dir/fig12_et_comparison.cc.o.d"
  "fig12_et_comparison"
  "fig12_et_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_et_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
