file(REMOVE_RECURSE
  "CMakeFiles/ablation_hybrid_microbatch.dir/ablation_hybrid_microbatch.cc.o"
  "CMakeFiles/ablation_hybrid_microbatch.dir/ablation_hybrid_microbatch.cc.o.d"
  "ablation_hybrid_microbatch"
  "ablation_hybrid_microbatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hybrid_microbatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
