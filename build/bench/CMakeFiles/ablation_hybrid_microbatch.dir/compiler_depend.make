# Empty compiler generated dependencies file for ablation_hybrid_microbatch.
# This may be replaced when dependencies are built.
