file(REMOVE_RECURSE
  "CMakeFiles/moe_kernels.dir/moe_kernels.cc.o"
  "CMakeFiles/moe_kernels.dir/moe_kernels.cc.o.d"
  "moe_kernels"
  "moe_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moe_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
