# Empty dependencies file for moe_kernels.
# This may be replaced when dependencies are built.
