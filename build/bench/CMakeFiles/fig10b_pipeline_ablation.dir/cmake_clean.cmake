file(REMOVE_RECURSE
  "CMakeFiles/fig10b_pipeline_ablation.dir/fig10b_pipeline_ablation.cc.o"
  "CMakeFiles/fig10b_pipeline_ablation.dir/fig10b_pipeline_ablation.cc.o.d"
  "fig10b_pipeline_ablation"
  "fig10b_pipeline_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10b_pipeline_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
