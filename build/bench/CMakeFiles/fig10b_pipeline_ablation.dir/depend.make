# Empty dependencies file for fig10b_pipeline_ablation.
# This may be replaced when dependencies are built.
