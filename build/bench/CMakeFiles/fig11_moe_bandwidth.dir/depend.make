# Empty dependencies file for fig11_moe_bandwidth.
# This may be replaced when dependencies are built.
