file(REMOVE_RECURSE
  "CMakeFiles/sla_throughput.dir/sla_throughput.cc.o"
  "CMakeFiles/sla_throughput.dir/sla_throughput.cc.o.d"
  "sla_throughput"
  "sla_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sla_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
