# Empty compiler generated dependencies file for sla_throughput.
# This may be replaced when dependencies are built.
