file(REMOVE_RECURSE
  "CMakeFiles/fig10a_kernel_breakdown.dir/fig10a_kernel_breakdown.cc.o"
  "CMakeFiles/fig10a_kernel_breakdown.dir/fig10a_kernel_breakdown.cc.o.d"
  "fig10a_kernel_breakdown"
  "fig10a_kernel_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10a_kernel_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
