# Empty compiler generated dependencies file for fig10a_kernel_breakdown.
# This may be replaced when dependencies are built.
