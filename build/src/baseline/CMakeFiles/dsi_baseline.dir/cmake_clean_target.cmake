file(REMOVE_RECURSE
  "libdsi_baseline.a"
)
