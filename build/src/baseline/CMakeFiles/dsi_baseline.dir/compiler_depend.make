# Empty compiler generated dependencies file for dsi_baseline.
# This may be replaced when dependencies are built.
