file(REMOVE_RECURSE
  "CMakeFiles/dsi_baseline.dir/encoder_runner.cc.o"
  "CMakeFiles/dsi_baseline.dir/encoder_runner.cc.o.d"
  "libdsi_baseline.a"
  "libdsi_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsi_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
