file(REMOVE_RECURSE
  "CMakeFiles/dsi_sim.dir/des.cc.o"
  "CMakeFiles/dsi_sim.dir/des.cc.o.d"
  "libdsi_sim.a"
  "libdsi_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsi_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
