# Empty dependencies file for dsi_sim.
# This may be replaced when dependencies are built.
