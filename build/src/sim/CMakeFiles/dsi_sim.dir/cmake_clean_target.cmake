file(REMOVE_RECURSE
  "libdsi_sim.a"
)
