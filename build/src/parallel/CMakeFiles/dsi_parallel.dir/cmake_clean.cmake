file(REMOVE_RECURSE
  "CMakeFiles/dsi_parallel.dir/device_group.cc.o"
  "CMakeFiles/dsi_parallel.dir/device_group.cc.o.d"
  "CMakeFiles/dsi_parallel.dir/pipeline_partition.cc.o"
  "CMakeFiles/dsi_parallel.dir/pipeline_partition.cc.o.d"
  "CMakeFiles/dsi_parallel.dir/pipeline_sim.cc.o"
  "CMakeFiles/dsi_parallel.dir/pipeline_sim.cc.o.d"
  "CMakeFiles/dsi_parallel.dir/tensor_parallel.cc.o"
  "CMakeFiles/dsi_parallel.dir/tensor_parallel.cc.o.d"
  "libdsi_parallel.a"
  "libdsi_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsi_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
