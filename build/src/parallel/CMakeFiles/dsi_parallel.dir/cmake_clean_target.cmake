file(REMOVE_RECURSE
  "libdsi_parallel.a"
)
