# Empty compiler generated dependencies file for dsi_parallel.
# This may be replaced when dependencies are built.
