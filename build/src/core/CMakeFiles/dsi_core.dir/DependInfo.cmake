
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/beam_search.cc" "src/core/CMakeFiles/dsi_core.dir/beam_search.cc.o" "gcc" "src/core/CMakeFiles/dsi_core.dir/beam_search.cc.o.d"
  "/root/repo/src/core/checkpoint.cc" "src/core/CMakeFiles/dsi_core.dir/checkpoint.cc.o" "gcc" "src/core/CMakeFiles/dsi_core.dir/checkpoint.cc.o.d"
  "/root/repo/src/core/eval.cc" "src/core/CMakeFiles/dsi_core.dir/eval.cc.o" "gcc" "src/core/CMakeFiles/dsi_core.dir/eval.cc.o.d"
  "/root/repo/src/core/gpt_model.cc" "src/core/CMakeFiles/dsi_core.dir/gpt_model.cc.o" "gcc" "src/core/CMakeFiles/dsi_core.dir/gpt_model.cc.o.d"
  "/root/repo/src/core/inference_engine.cc" "src/core/CMakeFiles/dsi_core.dir/inference_engine.cc.o" "gcc" "src/core/CMakeFiles/dsi_core.dir/inference_engine.cc.o.d"
  "/root/repo/src/core/pipeline_engine.cc" "src/core/CMakeFiles/dsi_core.dir/pipeline_engine.cc.o" "gcc" "src/core/CMakeFiles/dsi_core.dir/pipeline_engine.cc.o.d"
  "/root/repo/src/core/server.cc" "src/core/CMakeFiles/dsi_core.dir/server.cc.o" "gcc" "src/core/CMakeFiles/dsi_core.dir/server.cc.o.d"
  "/root/repo/src/core/tokenizer.cc" "src/core/CMakeFiles/dsi_core.dir/tokenizer.cc.o" "gcc" "src/core/CMakeFiles/dsi_core.dir/tokenizer.cc.o.d"
  "/root/repo/src/core/workload.cc" "src/core/CMakeFiles/dsi_core.dir/workload.cc.o" "gcc" "src/core/CMakeFiles/dsi_core.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dsi_util.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/dsi_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/dsi_model.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/dsi_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/zero/CMakeFiles/dsi_zero.dir/DependInfo.cmake"
  "/root/repo/build/src/moe/CMakeFiles/dsi_moe.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dsi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/dsi_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/dsi_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/dsi_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
