# Empty dependencies file for dsi_core.
# This may be replaced when dependencies are built.
