file(REMOVE_RECURSE
  "libdsi_core.a"
)
