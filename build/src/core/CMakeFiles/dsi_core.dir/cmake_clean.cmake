file(REMOVE_RECURSE
  "CMakeFiles/dsi_core.dir/beam_search.cc.o"
  "CMakeFiles/dsi_core.dir/beam_search.cc.o.d"
  "CMakeFiles/dsi_core.dir/checkpoint.cc.o"
  "CMakeFiles/dsi_core.dir/checkpoint.cc.o.d"
  "CMakeFiles/dsi_core.dir/eval.cc.o"
  "CMakeFiles/dsi_core.dir/eval.cc.o.d"
  "CMakeFiles/dsi_core.dir/gpt_model.cc.o"
  "CMakeFiles/dsi_core.dir/gpt_model.cc.o.d"
  "CMakeFiles/dsi_core.dir/inference_engine.cc.o"
  "CMakeFiles/dsi_core.dir/inference_engine.cc.o.d"
  "CMakeFiles/dsi_core.dir/pipeline_engine.cc.o"
  "CMakeFiles/dsi_core.dir/pipeline_engine.cc.o.d"
  "CMakeFiles/dsi_core.dir/server.cc.o"
  "CMakeFiles/dsi_core.dir/server.cc.o.d"
  "CMakeFiles/dsi_core.dir/tokenizer.cc.o"
  "CMakeFiles/dsi_core.dir/tokenizer.cc.o.d"
  "CMakeFiles/dsi_core.dir/workload.cc.o"
  "CMakeFiles/dsi_core.dir/workload.cc.o.d"
  "libdsi_core.a"
  "libdsi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
