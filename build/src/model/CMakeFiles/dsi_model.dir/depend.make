# Empty dependencies file for dsi_model.
# This may be replaced when dependencies are built.
