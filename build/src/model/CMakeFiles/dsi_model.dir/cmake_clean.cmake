file(REMOVE_RECURSE
  "CMakeFiles/dsi_model.dir/model_config.cc.o"
  "CMakeFiles/dsi_model.dir/model_config.cc.o.d"
  "libdsi_model.a"
  "libdsi_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsi_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
