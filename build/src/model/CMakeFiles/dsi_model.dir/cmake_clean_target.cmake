file(REMOVE_RECURSE
  "libdsi_model.a"
)
