file(REMOVE_RECURSE
  "CMakeFiles/dsi_kernels.dir/attention.cc.o"
  "CMakeFiles/dsi_kernels.dir/attention.cc.o.d"
  "CMakeFiles/dsi_kernels.dir/elementwise.cc.o"
  "CMakeFiles/dsi_kernels.dir/elementwise.cc.o.d"
  "CMakeFiles/dsi_kernels.dir/gemm.cc.o"
  "CMakeFiles/dsi_kernels.dir/gemm.cc.o.d"
  "CMakeFiles/dsi_kernels.dir/kv_cache.cc.o"
  "CMakeFiles/dsi_kernels.dir/kv_cache.cc.o.d"
  "CMakeFiles/dsi_kernels.dir/quant.cc.o"
  "CMakeFiles/dsi_kernels.dir/quant.cc.o.d"
  "CMakeFiles/dsi_kernels.dir/rope.cc.o"
  "CMakeFiles/dsi_kernels.dir/rope.cc.o.d"
  "CMakeFiles/dsi_kernels.dir/tensor.cc.o"
  "CMakeFiles/dsi_kernels.dir/tensor.cc.o.d"
  "CMakeFiles/dsi_kernels.dir/transformer_layer.cc.o"
  "CMakeFiles/dsi_kernels.dir/transformer_layer.cc.o.d"
  "libdsi_kernels.a"
  "libdsi_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsi_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
