
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/attention.cc" "src/kernels/CMakeFiles/dsi_kernels.dir/attention.cc.o" "gcc" "src/kernels/CMakeFiles/dsi_kernels.dir/attention.cc.o.d"
  "/root/repo/src/kernels/elementwise.cc" "src/kernels/CMakeFiles/dsi_kernels.dir/elementwise.cc.o" "gcc" "src/kernels/CMakeFiles/dsi_kernels.dir/elementwise.cc.o.d"
  "/root/repo/src/kernels/gemm.cc" "src/kernels/CMakeFiles/dsi_kernels.dir/gemm.cc.o" "gcc" "src/kernels/CMakeFiles/dsi_kernels.dir/gemm.cc.o.d"
  "/root/repo/src/kernels/kv_cache.cc" "src/kernels/CMakeFiles/dsi_kernels.dir/kv_cache.cc.o" "gcc" "src/kernels/CMakeFiles/dsi_kernels.dir/kv_cache.cc.o.d"
  "/root/repo/src/kernels/quant.cc" "src/kernels/CMakeFiles/dsi_kernels.dir/quant.cc.o" "gcc" "src/kernels/CMakeFiles/dsi_kernels.dir/quant.cc.o.d"
  "/root/repo/src/kernels/rope.cc" "src/kernels/CMakeFiles/dsi_kernels.dir/rope.cc.o" "gcc" "src/kernels/CMakeFiles/dsi_kernels.dir/rope.cc.o.d"
  "/root/repo/src/kernels/tensor.cc" "src/kernels/CMakeFiles/dsi_kernels.dir/tensor.cc.o" "gcc" "src/kernels/CMakeFiles/dsi_kernels.dir/tensor.cc.o.d"
  "/root/repo/src/kernels/transformer_layer.cc" "src/kernels/CMakeFiles/dsi_kernels.dir/transformer_layer.cc.o" "gcc" "src/kernels/CMakeFiles/dsi_kernels.dir/transformer_layer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dsi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
