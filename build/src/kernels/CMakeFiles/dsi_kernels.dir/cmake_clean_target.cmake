file(REMOVE_RECURSE
  "libdsi_kernels.a"
)
