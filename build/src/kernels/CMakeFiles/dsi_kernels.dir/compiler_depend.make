# Empty compiler generated dependencies file for dsi_kernels.
# This may be replaced when dependencies are built.
