file(REMOVE_RECURSE
  "CMakeFiles/dsi_hw.dir/topology.cc.o"
  "CMakeFiles/dsi_hw.dir/topology.cc.o.d"
  "libdsi_hw.a"
  "libdsi_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsi_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
