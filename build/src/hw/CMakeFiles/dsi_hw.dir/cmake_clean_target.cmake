file(REMOVE_RECURSE
  "libdsi_hw.a"
)
