# Empty compiler generated dependencies file for dsi_hw.
# This may be replaced when dependencies are built.
