file(REMOVE_RECURSE
  "libdsi_util.a"
)
