# Empty compiler generated dependencies file for dsi_util.
# This may be replaced when dependencies are built.
