file(REMOVE_RECURSE
  "CMakeFiles/dsi_util.dir/stats.cc.o"
  "CMakeFiles/dsi_util.dir/stats.cc.o.d"
  "CMakeFiles/dsi_util.dir/table.cc.o"
  "CMakeFiles/dsi_util.dir/table.cc.o.d"
  "CMakeFiles/dsi_util.dir/thread_pool.cc.o"
  "CMakeFiles/dsi_util.dir/thread_pool.cc.o.d"
  "libdsi_util.a"
  "libdsi_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsi_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
