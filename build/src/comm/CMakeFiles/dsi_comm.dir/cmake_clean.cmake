file(REMOVE_RECURSE
  "CMakeFiles/dsi_comm.dir/collectives.cc.o"
  "CMakeFiles/dsi_comm.dir/collectives.cc.o.d"
  "CMakeFiles/dsi_comm.dir/comm_grid.cc.o"
  "CMakeFiles/dsi_comm.dir/comm_grid.cc.o.d"
  "CMakeFiles/dsi_comm.dir/cost_model.cc.o"
  "CMakeFiles/dsi_comm.dir/cost_model.cc.o.d"
  "libdsi_comm.a"
  "libdsi_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsi_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
