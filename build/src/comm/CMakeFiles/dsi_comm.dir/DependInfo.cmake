
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/collectives.cc" "src/comm/CMakeFiles/dsi_comm.dir/collectives.cc.o" "gcc" "src/comm/CMakeFiles/dsi_comm.dir/collectives.cc.o.d"
  "/root/repo/src/comm/comm_grid.cc" "src/comm/CMakeFiles/dsi_comm.dir/comm_grid.cc.o" "gcc" "src/comm/CMakeFiles/dsi_comm.dir/comm_grid.cc.o.d"
  "/root/repo/src/comm/cost_model.cc" "src/comm/CMakeFiles/dsi_comm.dir/cost_model.cc.o" "gcc" "src/comm/CMakeFiles/dsi_comm.dir/cost_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dsi_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/dsi_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
