file(REMOVE_RECURSE
  "libdsi_comm.a"
)
