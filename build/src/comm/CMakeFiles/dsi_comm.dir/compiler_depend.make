# Empty compiler generated dependencies file for dsi_comm.
# This may be replaced when dependencies are built.
