file(REMOVE_RECURSE
  "libdsi_zero.a"
)
