# Empty compiler generated dependencies file for dsi_zero.
# This may be replaced when dependencies are built.
