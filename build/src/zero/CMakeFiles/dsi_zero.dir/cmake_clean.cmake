file(REMOVE_RECURSE
  "CMakeFiles/dsi_zero.dir/kv_offload.cc.o"
  "CMakeFiles/dsi_zero.dir/kv_offload.cc.o.d"
  "CMakeFiles/dsi_zero.dir/offload.cc.o"
  "CMakeFiles/dsi_zero.dir/offload.cc.o.d"
  "CMakeFiles/dsi_zero.dir/zero_perf_model.cc.o"
  "CMakeFiles/dsi_zero.dir/zero_perf_model.cc.o.d"
  "libdsi_zero.a"
  "libdsi_zero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsi_zero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
