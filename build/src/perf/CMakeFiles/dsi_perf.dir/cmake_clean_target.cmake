file(REMOVE_RECURSE
  "libdsi_perf.a"
)
