file(REMOVE_RECURSE
  "CMakeFiles/dsi_perf.dir/dense_model.cc.o"
  "CMakeFiles/dsi_perf.dir/dense_model.cc.o.d"
  "CMakeFiles/dsi_perf.dir/kernel_model.cc.o"
  "CMakeFiles/dsi_perf.dir/kernel_model.cc.o.d"
  "libdsi_perf.a"
  "libdsi_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsi_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
