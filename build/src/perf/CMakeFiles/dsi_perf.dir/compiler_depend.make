# Empty compiler generated dependencies file for dsi_perf.
# This may be replaced when dependencies are built.
