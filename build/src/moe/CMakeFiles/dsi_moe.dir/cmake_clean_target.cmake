file(REMOVE_RECURSE
  "libdsi_moe.a"
)
