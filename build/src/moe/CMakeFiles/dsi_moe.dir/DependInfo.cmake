
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/moe/expert_parallel.cc" "src/moe/CMakeFiles/dsi_moe.dir/expert_parallel.cc.o" "gcc" "src/moe/CMakeFiles/dsi_moe.dir/expert_parallel.cc.o.d"
  "/root/repo/src/moe/gating.cc" "src/moe/CMakeFiles/dsi_moe.dir/gating.cc.o" "gcc" "src/moe/CMakeFiles/dsi_moe.dir/gating.cc.o.d"
  "/root/repo/src/moe/moe_layer.cc" "src/moe/CMakeFiles/dsi_moe.dir/moe_layer.cc.o" "gcc" "src/moe/CMakeFiles/dsi_moe.dir/moe_layer.cc.o.d"
  "/root/repo/src/moe/moe_perf_model.cc" "src/moe/CMakeFiles/dsi_moe.dir/moe_perf_model.cc.o" "gcc" "src/moe/CMakeFiles/dsi_moe.dir/moe_perf_model.cc.o.d"
  "/root/repo/src/moe/moe_transformer.cc" "src/moe/CMakeFiles/dsi_moe.dir/moe_transformer.cc.o" "gcc" "src/moe/CMakeFiles/dsi_moe.dir/moe_transformer.cc.o.d"
  "/root/repo/src/moe/tp_ep_moe.cc" "src/moe/CMakeFiles/dsi_moe.dir/tp_ep_moe.cc.o" "gcc" "src/moe/CMakeFiles/dsi_moe.dir/tp_ep_moe.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dsi_util.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/dsi_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/dsi_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/dsi_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/dsi_model.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/dsi_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
