file(REMOVE_RECURSE
  "CMakeFiles/dsi_moe.dir/expert_parallel.cc.o"
  "CMakeFiles/dsi_moe.dir/expert_parallel.cc.o.d"
  "CMakeFiles/dsi_moe.dir/gating.cc.o"
  "CMakeFiles/dsi_moe.dir/gating.cc.o.d"
  "CMakeFiles/dsi_moe.dir/moe_layer.cc.o"
  "CMakeFiles/dsi_moe.dir/moe_layer.cc.o.d"
  "CMakeFiles/dsi_moe.dir/moe_perf_model.cc.o"
  "CMakeFiles/dsi_moe.dir/moe_perf_model.cc.o.d"
  "CMakeFiles/dsi_moe.dir/moe_transformer.cc.o"
  "CMakeFiles/dsi_moe.dir/moe_transformer.cc.o.d"
  "CMakeFiles/dsi_moe.dir/tp_ep_moe.cc.o"
  "CMakeFiles/dsi_moe.dir/tp_ep_moe.cc.o.d"
  "libdsi_moe.a"
  "libdsi_moe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsi_moe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
