# Empty compiler generated dependencies file for dsi_moe.
# This may be replaced when dependencies are built.
