// Figure 12 — Comparison with the E.T. transformer kernels on DistilBERT
// and BERT-base encoders (batch 1, sequence length 128).
//
// Real CPU measurement: the three stacks (fully fused DeepSpeed kernels,
// E.T.-style partial fusion, per-op PyTorch baseline) run identical math;
// the gap is fusion breadth, the paper's stated reason DeepSpeed wins.
#include <iostream>

#include "baseline/encoder_runner.h"
#include "hw/topology.h"
#include "perf/dense_model.h"
#include "util/table.h"

int main() {
  using namespace dsinfer;
  using baseline::KernelStack;
  std::cout << "=== Fig 12: encoder kernel comparison (batch 1, seq 128) "
               "===\n";
  std::cout << "Measured on this machine's CPU (stacks truncated "
               "proportionally: BERT 4 layers, DistilBERT 2, preserving "
               "their 2:1 depth ratio).\n\n";

  Table t({"model", "PyTorch ms", "E.T.-like ms", "DeepSpeed ms",
           "DS vs E.T.", "DS vs PyTorch"});
  for (const auto& cfg : {model::distilbert(), model::bert_base()}) {
    const std::int64_t iters = 2;
    const std::int64_t depth = cfg.layers / 3;  // 4 for BERT, 2 for Distil
    const auto py =
        run_layer_stack(cfg, KernelStack::kPyTorch, 1, 128, iters, depth);
    const auto et =
        run_layer_stack(cfg, KernelStack::kEtLike, 1, 128, iters, depth);
    const auto ds =
        run_layer_stack(cfg, KernelStack::kDeepSpeed, 1, 128, iters, depth);
    t.add_row({cfg.name, Table::num(py.mean_ms, 1), Table::num(et.mean_ms, 1),
               Table::num(ds.mean_ms, 1),
               Table::num(et.mean_ms / ds.mean_ms, 2) + "x",
               Table::num(py.mean_ms / ds.mean_ms, 2) + "x"});
  }
  t.print(std::cout);

  // Companion view: the GPU roofline model, where launch overhead — absent
  // on a CPU — is what separates the stacks (together the two views bracket
  // the paper's measured 1.4-1.7x).
  std::cout << "\n--- GPU roofline model (A100, one encoder forward, batch "
               "1, seq 128) ---\n\n";
  {
    const auto cluster = hw::dgx_a100_cluster(1);
    const auto ds = perf::EngineModelConfig::deepspeed_fp16();
    const auto et = perf::EngineModelConfig::et_like();
    const auto py = perf::EngineModelConfig::pytorch();
    Table t2({"model", "PyTorch ms", "E.T. ms", "DeepSpeed ms", "DS vs E.T.",
              "DS vs PyTorch"});
    for (const auto& cfg : {model::distilbert(), model::bert_base()}) {
      auto total = [&](const perf::EngineModelConfig& e) {
        return static_cast<double>(cfg.layers) *
               perf::dense_layer_time(cfg, e, cluster, 1, 1, 128, 128).total() *
               1e3;
      };
      const double tp = total(py), te = total(et), td = total(ds);
      t2.add_row({cfg.name, Table::num(tp, 3), Table::num(te, 3),
                  Table::num(td, 3), Table::num(te / td, 2) + "x",
                  Table::num(tp / td, 2) + "x"});
    }
    t2.print(std::cout);
  }

  std::cout << "\nPaper reference: DeepSpeed Inference is 1.7x (DistilBERT) "
               "and 1.4x (BERT-base) faster than E.T. at batch 1, seq 128, "
               "because Deep-Fusion fuses more operators.\n";
  return 0;
}
