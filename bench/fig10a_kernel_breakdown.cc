// Figure 10(a) — Dense kernel performance breakdown on a GPT-2-shaped layer
// stack: framework baseline (kernel-per-micro-op) vs +Deep-Fusion vs
// +Deep-Fusion+SBI-GeMM.
//
// Two views are reported:
//  1. A REAL measurement of this library's CPU kernels (identical math on
//     all three stacks; tests assert equivalence). On a CPU there is no
//     kernel-launch overhead, so the measured gains concentrate in the
//     memory-traffic and GeMM-schedule effects.
//  2. The calibrated GPU roofline model, which adds the launch-overhead
//     term the paper's figure includes.
#include <iostream>

#include "baseline/encoder_runner.h"
#include "hw/topology.h"
#include "perf/dense_model.h"
#include "util/table.h"

int main() {
  using namespace dsinfer;
  std::cout << "=== Fig 10(a): kernel breakdown, GPT-2 (hidden 1600, heads "
               "25) ===\n\n";

  auto cfg = model::dense_model("GPT-2 1.5B");
  const std::int64_t kLayers = 2;
  const std::int64_t kSeq = 8;
  const std::int64_t kIters = 2;

  kernels::KernelPolicy pytorch = kernels::KernelPolicy::baseline();
  kernels::KernelPolicy fused = kernels::KernelPolicy::optimized_large_batch();
  kernels::KernelPolicy fused_sbi =
      kernels::KernelPolicy::optimized_small_batch();

  std::cout << "--- (1) Measured on this CPU (2-layer stack, 8-token decode "
               "block) ---\n\n";
  Table t({"batch", "PyTorch ms", "+Deep-Fusion ms", "+SBI-GeMM ms",
           "fusion speedup", "total speedup"});
  for (std::int64_t batch : {1, 2, 4}) {
    const auto base = baseline::run_layer_stack_policy(cfg, pytorch, batch,
                                                       kSeq, kIters, kLayers);
    const auto df = baseline::run_layer_stack_policy(cfg, fused, batch, kSeq,
                                                     kIters, kLayers);
    const auto sbi = baseline::run_layer_stack_policy(cfg, fused_sbi, batch,
                                                      kSeq, kIters, kLayers);
    t.add_row({std::to_string(batch), Table::num(base.mean_ms, 1),
               Table::num(df.mean_ms, 1), Table::num(sbi.mean_ms, 1),
               Table::num(base.mean_ms / df.mean_ms, 2) + "x",
               Table::num(base.mean_ms / sbi.mean_ms, 2) + "x"});
  }
  t.print(std::cout);

  std::cout << "\n--- (2) GPU roofline model (A100, per-token step, "
               "launch overhead included) ---\n\n";
  const auto cluster = hw::dgx_a100_cluster(1);
  auto py_model = perf::EngineModelConfig::pytorch();
  // Deep-Fusion without the custom GeMM: fused traffic/launches but cuBLAS
  // skinny-GeMM efficiency.
  auto df_model = perf::EngineModelConfig::deepspeed_fp16();
  df_model.gemm_bw_eff_rows1 =
      perf::EngineModelConfig::pytorch().gemm_bw_eff_rows1;
  auto full_model = perf::EngineModelConfig::deepspeed_fp16();

  Table t2({"batch", "PyTorch us/layer", "+Deep-Fusion us/layer",
            "+SBI-GeMM us/layer", "fusion speedup", "total speedup"});
  for (std::int64_t batch : {1, 2, 4, 8}) {
    const auto base =
        perf::dense_layer_time(cfg, py_model, cluster, 1, batch, 1, 128);
    const auto df =
        perf::dense_layer_time(cfg, df_model, cluster, 1, batch, 1, 128);
    const auto full =
        perf::dense_layer_time(cfg, full_model, cluster, 1, batch, 1, 128);
    t2.add_row({std::to_string(batch), Table::num(base.total() * 1e6, 1),
                Table::num(df.total() * 1e6, 1),
                Table::num(full.total() * 1e6, 1),
                Table::num(base.total() / df.total(), 2) + "x",
                Table::num(base.total() / full.total(), 2) + "x"});
  }
  t2.print(std::cout);

  std::cout << "\nPaper reference: Deep-Fusion gives a significant latency "
               "reduction over the PyTorch baseline (launch + traffic); the "
               "custom GeMM adds a further gain at small batch sizes.\n";
  return 0;
}
