// Kernel-bench regression harness for the SIMD micro-kernel layer.
//
// Times every vectorized kernel at Fig.-6-representative shapes (GPT-2.7B
// width, decode m<=4 and small-prompt m=16) under both ISAs via the runtime
// override, and emits machine-readable BENCH_kernels.json (GFLOP/s + GB/s
// per kernel per ISA) at the repo root — the repo's bench trajectory entry.
// Emission is deterministic (ISSUE 9 satellite): one JSON array with a
// single ungated "meta" row for host/run metadata and stable-ordered,
// fixed-format result rows that hold their prior on-disk values when the
// fresh timing is within noise — a no-change rerun is a byte-identical
// file.
//
// Modes:
//   kernel_regression               full sweep, verbose table
//   kernel_regression --check      quick sweep + regression gate: every SIMD
//                                  kernel must be no slower than scalar
//                                  within a generous noise margin (ctest
//                                  label `perf`); exit 1 on regression.
//   kernel_regression --json PATH  override the output path.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "kernels/attention.h"
#include "kernels/elementwise.h"
#include "kernels/gemm.h"
#include "kernels/kv_cache.h"
#include "kernels/quant.h"
#include "kernels/simd.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace dsinfer;
using namespace dsinfer::kernels;

struct Entry {
  std::string kernel;
  std::string shape;
  std::string isa;
  double ms = 0.0;
  double gflops = 0.0;
  double gbps = 0.0;
};

struct Case {
  std::string kernel;
  std::string shape;
  double flops;  // per call
  double bytes;  // per call
  std::function<void()> run;
};

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Median-of-3 of adaptive-iteration averages: robust against scheduler noise
// on shared hosts, cheap enough for a ctest gate.
double time_ms(const std::function<void()>& fn, double min_sample_ms) {
  fn();  // warmup / touch pages
  double samples[3];
  for (double& s : samples) {
    int iters = 0;
    const double t0 = now_ms();
    double t1 = t0;
    do {
      fn();
      ++iters;
      t1 = now_ms();
    } while (t1 - t0 < min_sample_ms);
    s = (t1 - t0) / iters;
  }
  std::sort(samples, samples + 3);
  return samples[1];
}

class Fixture {
 public:
  explicit Fixture(bool quick) : quick_(quick) {}

  void add(std::string kernel, std::string shape, double flops, double bytes,
           std::function<void()> run) {
    cases_.push_back({std::move(kernel), std::move(shape), flops, bytes,
                      std::move(run)});
  }

  std::vector<Entry> run_all() {
    std::vector<Entry> out;
    const double min_sample = quick_ ? 30.0 : 150.0;
    std::vector<simd::KernelIsa> isas{simd::KernelIsa::kScalar};
    if (simd::cpu_has_avx2()) isas.push_back(simd::KernelIsa::kAvx2);
    for (const Case& c : cases_) {
      for (simd::KernelIsa isa : isas) {
        simd::IsaOverrideGuard guard(isa);
        Entry e;
        e.kernel = c.kernel;
        e.shape = c.shape;
        e.isa = simd::isa_name(isa);
        e.ms = time_ms(c.run, min_sample);
        e.gflops = c.flops / (e.ms * 1e6);
        e.gbps = c.bytes / (e.ms * 1e6);
        std::printf("  %-18s %-24s %-7s %9.4f ms  %8.2f GFLOP/s  %7.2f GB/s\n",
                    e.kernel.c_str(), e.shape.c_str(), e.isa.c_str(), e.ms,
                    e.gflops, e.gbps);
        std::fflush(stdout);
        out.push_back(std::move(e));
      }
    }
    return out;
  }

 private:
  bool quick_;
  std::vector<Case> cases_;
};

// Prior result rows parsed back from an existing BENCH_kernels.json (our
// own emitter format, line-based — anything unparseable is simply treated
// as no prior).
std::vector<Entry> read_prior(const char* path) {
  std::vector<Entry> out;
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return out;
  char line[512];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    Entry e;
    char kernel[64], shape[64], isa[16];
    if (std::sscanf(line,
                    "  {\"mode\": \"result\", \"kernel\": \"%63[^\"]\", "
                    "\"shape\": \"%63[^\"]\", \"isa\": \"%15[^\"]\", "
                    "\"ms\": %lf, \"gflops\": %lf, \"gbps\": %lf",
                    kernel, shape, isa, &e.ms, &e.gflops, &e.gbps) == 6) {
      e.kernel = kernel;
      e.shape = shape;
      e.isa = isa;
      out.push_back(std::move(e));
    }
  }
  std::fclose(f);
  return out;
}

// Deterministic emission (ISSUE 9 satellite): one JSON array, stable row
// order (case insertion x ISA), stable key order, fixed float formatting.
// Host/run metadata lives in a single ungated "meta" row so trajectory
// gates never diff on thread counts or ISA availability. Result rows are
// rate-limited against the prior file: when a kernel's fresh timing lands
// within the noise band of the value already on disk, the old row is kept
// verbatim — so a no-change rebuild re-emits a byte-identical file and
// only genuine shifts (> 50% relative — real kernel regressions are 2x+) rewrite a row.
void write_json(const char* path, const std::vector<Entry>& entries) {
  const std::vector<Entry> prior = read_prior(path);
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "kernel_regression: cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  std::fprintf(f,
               "  {\"mode\": \"meta\", \"bench\": \"kernel_regression\", "
               "\"avx2_available\": %s, \"threads\": %zu}%s\n",
               simd::cpu_has_avx2() ? "true" : "false",
               ThreadPool::global().size() + 1,
               entries.empty() ? "" : ",");
  std::size_t held = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry* e = &entries[i];
    for (const Entry& p : prior) {
      if (p.kernel == e->kernel && p.shape == e->shape && p.isa == e->isa &&
          p.ms > 0 && std::abs(e->ms - p.ms) / p.ms <= 0.50) {
        e = &p;
        ++held;
        break;
      }
    }
    std::fprintf(f,
                 "  {\"mode\": \"result\", \"kernel\": \"%s\", \"shape\": "
                 "\"%s\", \"isa\": \"%s\", \"ms\": %.6f, \"gflops\": %.3f, "
                 "\"gbps\": %.3f}%s\n",
                 e->kernel.c_str(), e->shape.c_str(), e->isa.c_str(), e->ms,
                 e->gflops, e->gbps, i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s (%zu rows, %zu held at prior values within noise)\n",
              path, entries.size(), held);
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  std::string json_path;
#if defined(DSINFER_REPO_ROOT)
  json_path = std::string(DSINFER_REPO_ROOT) + "/BENCH_kernels.json";
#else
  json_path = "BENCH_kernels.json";
#endif
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) check = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  // GPT-2.7B width (Fig. 6 middle model): hidden 2560, ffn 4x, 32 heads.
  const std::int64_t H = 2560;
  Rng rng(7);
  std::vector<float> x(static_cast<std::size_t>(16) * 3 * H);
  std::vector<float> w(static_cast<std::size_t>(3 * H) * H);
  std::vector<float> bias(static_cast<std::size_t>(3 * H));
  std::vector<float> y(static_cast<std::size_t>(16) * 3 * H);
  rng.fill_normal(x);
  rng.fill_normal(w, 0.0f, 0.02f);
  rng.fill_normal(bias);

  PackedWeight packed_sq({w.data(), static_cast<std::size_t>(H * H)}, H, H);
  PackedWeight packed_qkv(w, 3 * H, H);
  PackedWeight packed_small({w.data(), static_cast<std::size_t>(320 * H)}, 320,
                            H);
  QuantizedWeight quant_sq({w.data(), static_cast<std::size_t>(H * H)}, H, H);

  Fixture fx(check);

  auto add_linear = [&](const char* kernel, std::int64_t m, std::int64_t in,
                        std::int64_t out, std::function<void()> run) {
    char shape[64];
    std::snprintf(shape, sizeof(shape), "m%lld_in%lld_out%lld",
                  static_cast<long long>(m), static_cast<long long>(in),
                  static_cast<long long>(out));
    fx.add(kernel, shape, 2.0 * m * in * out,
           (static_cast<double>(m) * in + static_cast<double>(in) * out +
            static_cast<double>(m) * out) *
               4.0,
           std::move(run));
  };

  // Decode-shape GeMMs (acceptance: SBI >= 2x scalar at m<=4 on AVX2).
  for (std::int64_t m : {std::int64_t{1}, std::int64_t{4}}) {
    add_linear("linear_sbi", m, H, H,
               [&, m] { linear_sbi(x, packed_sq, bias, y, m); });
  }
  add_linear("linear_sbi", 1, H, 3 * H,
             [&] { linear_sbi(x, packed_qkv, bias, y, 1); });
  add_linear("linear_sbi_split", 1, H, 320,
             [&] { linear_sbi_split(x, packed_small, bias, y, 1, 8); });
  add_linear("linear_ref", 1, H, H,
             [&] { linear_ref(x, w, bias, y, 1, H, H); });
  for (std::int64_t m : {std::int64_t{1}, std::int64_t{16}}) {
    add_linear("linear_blocked", m, H, H,
               [&, m] { linear_blocked(x, w, bias, y, m, H, H); });
  }
  add_linear("linear_int8", 1, H, H,
             [&] { linear_int8(x, quant_sq, bias, y, 1); });

  // Attention scores/context product shape: q_len x head_dim x seq.
  const std::int64_t mm = 16, kk = 80, nn = 512;
  std::vector<float> mat_c(static_cast<std::size_t>(mm * nn));
  fx.add("matmul", "m16_k80_n512", 2.0 * mm * kk * nn,
         (static_cast<double>(mm) * kk + static_cast<double>(kk) * nn +
          static_cast<double>(mm) * nn) *
             4.0,
         [&] { matmul(x, w, mat_c, mm, kk, nn); });

  // Fused attention at decode: batch 1, 32 heads of 80, 512 cached tokens.
  const std::int64_t heads = 32, hd = 80, seq = 512;
  KVCache cache(1, heads, hd, seq);
  std::vector<float> kv(static_cast<std::size_t>(seq * heads * hd));
  rng.fill_normal(kv);
  cache.append({kv.data(), static_cast<std::size_t>((seq - 1) * heads * hd)},
               {kv.data(), static_cast<std::size_t>((seq - 1) * heads * hd)},
               seq - 1);
  std::vector<float> qrow(static_cast<std::size_t>(heads * hd));
  std::vector<float> orow(qrow.size());
  rng.fill_normal(qrow);
  cache.append(qrow, qrow, 1);
  fx.add("attention_fused", "b1_h32_hd80_seq512", 4.0 * heads * hd * seq,
         (2.0 * heads * seq * hd + 2.0 * heads * hd) * 4.0,
         [&] { attention_fused(qrow, cache, orow, 1, true); });

  // Fused elementwise at decode-ish token counts.
  const std::int64_t rows = 4;
  std::vector<float> ew(static_cast<std::size_t>(rows) * 4 * H);
  std::vector<float> ew_out(ew.size());
  rng.fill_normal(ew);
  std::vector<float> ln_g(static_cast<std::size_t>(H), 1.0f);
  std::vector<float> ln_b(static_cast<std::size_t>(H), 0.0f);
  fx.add("layernorm", "r4_c2560", 8.0 * rows * H, 8.0 * rows * H, [&] {
    layernorm({ew.data(), static_cast<std::size_t>(rows * H)}, ln_g, ln_b,
              ew_out, rows, H);
  });
  fx.add("bias_gelu", "r4_c10240", 15.0 * rows * 4 * H, 8.0 * rows * 4 * H,
         [&] { bias_gelu(ew, bias, ew_out, rows, 4 * H); });
  fx.add("bias_residual", "r4_c2560", 2.0 * rows * H, 12.0 * rows * H, [&] {
    bias_residual({ew.data(), static_cast<std::size_t>(rows * H)}, bias, x,
                  ew_out, rows, H);
  });
  std::vector<float> sm(static_cast<std::size_t>(32) * 512);
  rng.fill_normal(sm);
  fx.add("softmax_rows", "r32_c512", 4.0 * 32 * 512, 8.0 * 32 * 512,
         [&] { softmax_rows(sm, 32, 512); });

  std::printf("kernel_regression (%s mode, avx2 %savailable)\n",
              check ? "check" : "full", simd::cpu_has_avx2() ? "" : "un");
  std::vector<Entry> entries = fx.run_all();
  write_json(json_path.c_str(), entries);

  if (!simd::cpu_has_avx2()) {
    std::printf("no AVX2 path on this host/build; scalar-only JSON written, "
                "regression gate skipped\n");
    return 0;
  }

  // Regression gate: pair scalar/avx2 entries; SIMD must not lose to scalar
  // beyond a generous noise margin (real speedups are 2x-8x, so 0.85x only
  // trips on genuine regressions, not timer jitter).
  int failures = 0;
  std::printf("\n%-18s %-24s %10s\n", "kernel", "shape", "simd/scalar");
  for (const Entry& s : entries) {
    if (s.isa != "scalar") continue;
    for (const Entry& v : entries) {
      if (v.isa == "avx2" && v.kernel == s.kernel && v.shape == s.shape) {
        const double speedup = s.ms / v.ms;
        const bool ok = speedup >= 0.85;
        std::printf("%-18s %-24s %9.2fx%s\n", s.kernel.c_str(),
                    s.shape.c_str(), speedup, ok ? "" : "  REGRESSION");
        if (!ok) ++failures;
      }
    }
  }
  if (check && failures > 0) {
    std::fprintf(stderr, "kernel_regression: %d SIMD kernel(s) slower than "
                         "scalar beyond noise\n", failures);
    return 1;
  }
  return 0;
}
