// Figure 13 — Prompt-processing latency with hybrid scheduling vs
// FasterTransformer for LM-175B on two 8xA100 nodes at batch 24:
//   * PP + MP configuration (TP=8, PP=2),
//   * MP-only configuration (TP=16 spanning both nodes).
#include <iostream>

#include "parallel/pipeline_sim.h"
#include "perf/dense_model.h"
#include "util/table.h"

int main() {
  using namespace dsinfer;
  std::cout << "=== Fig 13: prompt latency with hybrid scheduling, LM-175B, "
               "batch 24, 16 GPUs ===\n\n";
  const auto cluster = hw::dgx_a100_cluster(2);
  const auto& m = model::dense_model("LM-175B");
  const auto ds_engine = perf::EngineModelConfig::deepspeed_fp16();
  const auto ft_engine = perf::EngineModelConfig::faster_transformer();

  Table t({"config", "engine", "prompt latency (s)", "prompt TFLOPS/GPU",
           "speedup"});

  // --- PP + MP: TP=8 x PP=2, prompt of 512 tokens. ---
  auto run_pp = [&](const perf::EngineModelConfig& e, bool hybrid) {
    parallel::PipelineSimConfig cfg;
    cfg.stages = 2;
    cfg.tensor_parallel = 8;
    cfg.batch = 24;
    cfg.prompt_len = 512;
    cfg.gen_tokens = 1;  // prompt processing only
    cfg.schedule = hybrid ? parallel::PipelineSchedule::kHybrid
                          : parallel::PipelineSchedule::kTrainingStyle;
    cfg.prompt_microbatches = hybrid ? 4 : 2;
    cfg.gen_microbatches = 2;
    return simulate_pipeline(m, e, cluster, cfg);
  };
  const auto ft_pp = run_pp(ft_engine, false);
  const auto ds_pp = run_pp(ds_engine, true);
  const double flops24 =
      24.0 * m.model_flops(512, 512) / 1e12;  // whole prompt batch
  t.add_row({"PP + MP (TP8 x PP2)", "FT-FP16", Table::num(ft_pp.prompt_s, 3),
             Table::num(flops24 / ft_pp.prompt_s / 16.0, 1), "1.00x"});
  t.add_row({"PP + MP (TP8 x PP2)", "DS hybrid", Table::num(ds_pp.prompt_s, 3),
             Table::num(flops24 / ds_pp.prompt_s / 16.0, 1),
             Table::num(ft_pp.prompt_s / ds_pp.prompt_s, 2) + "x"});

  // --- MP-only: TP=16 across both nodes (all-reduce crosses InfiniBand,
  // which is what makes this configuration slow for FT). ---
  const auto ft_mp =
      perf::dense_generation_time(m, ft_engine, cluster, 16, 24, 512, 1);
  t.add_row({"MP-only (TP16, 2 nodes)", "FT-FP16",
             Table::num(ft_mp.prompt_s, 3),
             Table::num(flops24 / ft_mp.prompt_s / 16.0, 1), "1.00x"});
  t.add_row({"MP-only vs DS hybrid PP+MP", "DS hybrid",
             Table::num(ds_pp.prompt_s, 3),
             Table::num(flops24 / ds_pp.prompt_s / 16.0, 1),
             Table::num(ft_mp.prompt_s / ds_pp.prompt_s, 2) + "x"});

  t.print(std::cout);
  std::cout << "\nPaper reference: hybrid scheduling achieves 1.18x prompt "
               "speedup over FT in the PP+MP configuration and 3.06x over "
               "the MP-only configuration.\n";
  return 0;
}
