// Serving-layer bench: window vs continuous batching swept through
// saturation on the same Poisson traces (ISSUE 4 + 6), continuous x tensor
// parallelism (ISSUE 5), and the replica fleet per routing policy x SLO
// class at a post-knee rate (ISSUE 6). Everything replays on the virtual
// service clock, so rows are deterministic and machine-independent; the
// measured section keeps the original latency-vs-window table on this CPU.
//
// The head-to-head sweep deliberately runs past each scheduler's saturation
// knee (the first rate where goodput falls below 90% of offered load) —
// pre-knee rows compare latency, post-knee rows compare how each scheduler
// degrades.
//
// Modes:
//   serving_latency                        full run, all sections
//   serving_latency --scheduler window     head-to-head restricted to one
//   serving_latency --scheduler continuous   scheduler (still one JSON row
//                                            per configuration)
//   serving_latency --tp 2,4               tensor-parallel degrees for the
//                                          continuous x TP section (tp=1 is
//                                          always the baseline)
//   serving_latency --check                gates, exit 1 on any failure
//                                          (ctest label `serving`):
//                                          * window saturates inside the
//                                            sweep and continuous saturates
//                                            at a strictly higher rate;
//                                          * at/past window's knee,
//                                            continuous beats window on both
//                                            goodput and p99;
//                                          * pre-knee, continuous beats
//                                            window on goodput and p95;
//                                          * tp>1 beats tp=1 on the modeled
//                                            Fig-6 step and the sharded
//                                            replay matches tp=1's tokens;
//                                          * fleet chaos: crashing 1 of 3
//                                            replicas mid-run at a post-knee
//                                            rate keeps accounting total and
//                                            surviving goodput >= 60% of the
//                                            fault-free fleet;
//                                          * chunked prefill (ISSUE 9): on
//                                            the mixed long-prompt trace the
//                                            p99 inter-decode-step interval
//                                            with chunking is <= 0.5x the
//                                            monolithic admit path at equal-
//                                            or-better goodput, greedy
//                                            tokens bit-identical across kv
//                                            modes x tp x chunk sizes;
//                                          * speculative decode (ISSUE 10):
//                                            spec outputs stay bit-identical
//                                            to non-spec, modeled tokens/s
//                                            at acceptance 0.7 is >= 1.3x
//                                            non-spec for k in {2,4} at
//                                            batch <= 4, and the batcher and
//                                            DES-twin curves agree within
//                                            15% on every swept point.
//   serving_latency --spec                 speculative-decode section (ISSUE
//                                          10): acceptance x draft-depth x
//                                          batch sweep, batcher replay vs the
//                                          1-replica DES twin, rows with
//                                          mode "spec" + source batcher|des.
//                                          --check implies --spec.
//   serving_latency --trace <out.json>     Chrome trace of the replay
//                                          (https://ui.perfetto.dev).
//   serving_latency --attr                 tail-latency attribution (ISSUE
//                                          8): per-phase p50/p95/p99
//                                          breakdown rows (mode "attr") from
//                                          the fleet chaos run land in
//                                          BENCH_serving.json, the SLO
//                                          watchdog burn rates print as
//                                          Prometheus text, and the flight
//                                          recorder retains tail/violating
//                                          span chains (dumped next to
//                                          --trace output as
//                                          <out>.flight.json). --check
//                                          implies --attr and additionally
//                                          gates totality, breakdown-row
//                                          presence, and >= 95% violator
//                                          retention.
//
// Results land in BENCH_serving.json at the repo root: one JSON array, one
// schema for every row, discriminated by "mode" — "replay" (head-to-head
// sweep), "modeled" (continuous x TP with the Fig-6 step model), "fleet"
// (replica fleet per policy x SLO class).
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/inference_engine.h"
#include "core/workload.h"
#include "fleet/fleet_sim.h"
#include "fleet/fleet_spec.h"
#include "fleet/load_harness.h"
#include "fleet/router.h"
#include "hw/topology.h"
#include "obs/attribution.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/slo_watchdog.h"
#include "obs/trace.h"
#include "perf/dense_model.h"
#include "util/table.h"

namespace {

using namespace dsinfer;

struct Row {
  std::string mode = "replay";  // replay | modeled | fleet | capacity
  double rate_hz = 0;
  std::string scheduler;
  std::int64_t tp = 1;
  std::string policy = "-";     // fleet rows: routing policy
  std::string slo_class = "all";  // fleet rows: latency | batch
  std::int64_t replicas = 1;
  std::string kv_mode = "-";    // capacity rows: strip | paged | paged+prefix
  double prefix_hit_rate = 0;   // capacity rows: hit tokens / prompt tokens
  double offered_hz = 0;  // actual trace arrivals / duration
  double step_s = 0;  // modeled per-decode-step latency at the fig-6 shape
  // Attribution rows (mode "attr", ISSUE 8): which phase, its share of the
  // chaos run's total attributed time, and its summed duration. The
  // per-phase p50/p95/p99 ride the shared latency fields; `requests` counts
  // requests the phase touched.
  std::string phase = "-";
  double phase_share = 0;
  double phase_total_s = 0;
  // Chunked-prefill rows (mode "chunked", ISSUE 9): the per-iteration prompt
  // budget (0 = monolithic admit) and the p99 clock interval between
  // consecutive decode-bearing iterations of the primary lane.
  std::int64_t chunk_tokens = 0;
  double p99_decode_interval_s = 0;
  // Speculative-decode rows (mode "spec", ISSUE 10): draft window size
  // (spec_k 1 = non-speculative baseline), modeled acceptance knob (-1 in
  // baseline rows), and which clock produced the row — the continuous
  // batcher's functional replay or the 1-replica fleet DES twin.
  std::int64_t spec_k = 1;
  double acceptance = -1;
  std::string source = "-";  // spec rows: batcher | des
  std::int64_t batch = 0;    // spec rows: swept slot count (0 = not swept)
  core::ServingSummary s;
};

// One swept speculative-decode configuration with both clocks' throughput —
// the shape the --check gates reason over (vs-baseline speedup, batcher/DES
// agreement) without re-parsing rows.
struct SpecPoint {
  std::int64_t batch = 1;
  std::int64_t k = 1;
  double acc = -1;
  double batcher_tps = 0;
  double des_tps = 0;
};

// Single emission point for BENCH_serving.json (ISSUE 10 satellite): every
// section appends Rows, and exactly one writer renders the one shared
// schema, discriminated by "mode" — adding a field here is the whole change
// when a new section lands. Absent dimensions keep their defaults (tp 1,
// policy "-", slo_class "all", replicas 1, spec_k 1, source "-") so
// consumers can filter on mode alone.
void write_rows_json(const std::string& path, const std::vector<Row>& all) {
  std::ofstream out(path);
  out << "[\n";
  for (std::size_t i = 0; i < all.size(); ++i) {
    const auto& r = all[i];
    out << "  {\"mode\": \"" << r.mode << "\", \"arrival_hz\": " << r.rate_hz
        << ", \"offered_hz\": " << r.offered_hz << ", \"scheduler\": \""
        << r.scheduler << "\", \"tp\": " << r.tp
        << ", \"policy\": \"" << r.policy
        << "\", \"slo_class\": \"" << r.slo_class
        << "\", \"replicas\": " << r.replicas
        << ", \"kv_mode\": \"" << r.kv_mode
        << "\", \"prefix_hit_rate\": " << r.prefix_hit_rate
        << ", \"step_s\": " << r.step_s
        << ", \"chunk_tokens\": " << r.chunk_tokens
        << ", \"p99_decode_interval_s\": " << r.p99_decode_interval_s
        << ", \"spec_k\": " << r.spec_k
        << ", \"acceptance\": " << r.acceptance
        << ", \"batch\": " << r.batch
        << ", \"source\": \"" << r.source
        << "\", \"phase\": \"" << r.phase
        << "\", \"phase_share\": " << r.phase_share
        << ", \"phase_total_s\": " << r.phase_total_s
        << ", \"requests\": " << r.s.requests
        << ", \"served\": " << r.s.served
        << ", \"served_per_s\": " << r.s.served_per_s
        << ", \"p50_latency_s\": " << r.s.p50_latency_s
        << ", \"p95_latency_s\": " << r.s.p95_latency_s
        << ", \"p99_latency_s\": " << r.s.p99_latency_s
        << ", \"tokens_per_s\": " << r.s.tokens_per_s << "}"
        << (i + 1 < all.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

double p99_of(std::vector<double> v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[static_cast<std::size_t>(0.99 * static_cast<double>(v.size() - 1))];
}

// First sweep index whose goodput falls below 90% of offered load — the
// saturation knee. Returns summaries.size() if the scheduler never
// saturates inside the sweep.
std::size_t knee_index(const std::vector<Row>& rows) {
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].s.served_per_s < 0.9 * rows[i].offered_hz) return i;
  }
  return rows.size();
}

// Per-decode-step latency of the continuous scheduler's fused iteration at
// the paper's Fig-6 GPT-NeoX 20B shape (prompt 128, generate 8, DeepSpeed
// FP16 engine on a 2-node A100 cluster), tensor-parallel over `tp` GPUs.
double modeled_step_s(std::int64_t tp, std::int64_t batch) {
  const auto& m = model::dense_model("GPT-NeoX 20B");
  const auto e = perf::EngineModelConfig::deepspeed_fp16();
  const auto cluster = hw::dgx_a100_cluster(2);
  return perf::dense_generation_time(m, e, cluster, tp, batch, 128, 8)
      .per_token_s;
}

core::ServerOptions scheduler_options(core::Scheduler sched) {
  core::ServerOptions opts;
  opts.engine.policy = kernels::KernelPolicy::optimized_large_batch();
  opts.engine.max_batch = 8;
  opts.engine.max_seq = 64;
  opts.scheduler = sched;
  opts.max_batch = 8;
  // The window batcher gets a 5 ms window — its best setting from the
  // measured sweep below; continuous batching has no window to tune.
  opts.batch_window_s = sched == core::Scheduler::kWindow ? 5e-3 : 0.0;
  opts.virtual_service.enabled = true;
  opts.virtual_service.base_s = 0.01;
  opts.virtual_service.per_token_s = 1e-3;
  opts.virtual_service.prefill_s = 1e-3;
  return opts;
}

// Per-replica ServeSpec for the fleet section: the same virtual service
// clock as the head-to-head sweep, continuous scheduler, replica-sized
// batch (the fleet stacks three of these).
core::ServeSpec fleet_serve(const model::DenseModelConfig& cfg) {
  auto opts = scheduler_options(core::Scheduler::kContinuous);
  opts.max_batch = 4;
  return core::ServeSpec::from_options(cfg, opts);
}

// Hot-prefix trace for the paged-KV capacity section (ISSUE 7): every
// request opens with the same `shared`-token system prompt, then diverges
// for `tail` tokens — the workload shape prefix caching exists for.
std::vector<core::TimedRequest> hot_prefix_trace(std::int64_t n,
                                                 std::int64_t shared,
                                                 std::int64_t tail,
                                                 double rate_hz, double sla_s) {
  std::vector<core::TimedRequest> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    core::TimedRequest rq;
    rq.id = i;
    for (std::int64_t t = 0; t < shared; ++t) {
      rq.prompt.push_back(static_cast<std::int32_t>(1 + t % 50));
    }
    for (std::int64_t t = 0; t < tail; ++t) {
      rq.prompt.push_back(static_cast<std::int32_t>(1 + (i * 7 + t) % 60));
    }
    rq.new_tokens = 8;
    rq.arrival_s = static_cast<double>(i) / rate_hz;
    rq.deadline_s = rq.arrival_s + sla_s;
    out.push_back(std::move(rq));
  }
  return out;
}

// The three KV layouts of the capacity head-to-head, all at *equal arena
// bytes* per rank: strip reserves max_seq rows per slot (4 x 64 = 256 rows),
// the paged configs virtualize the same 256 rows as a 32-page x 8-token pool
// shared by 16 slots — admission is bounded by actual token budgets (and, in
// paged+prefix mode, discounted by resident shared prefix pages), not by the
// worst-case strip reservation.
core::ServerOptions capacity_options(const std::string& kv_mode) {
  auto opts = scheduler_options(core::Scheduler::kContinuous);
  opts.resilience.admission_control = true;
  if (kv_mode == "strip") {
    opts.engine.max_batch = 4;
    opts.max_batch = 4;
  } else {
    opts.engine.max_batch = 16;
    opts.max_batch = 16;
    opts.engine.kv_page_tokens = 8;
    opts.engine.kv_pages = 32;  // 32 x 8 rows == strip's 4 x 64 rows
    opts.engine.kv_prefix_cache = kv_mode == "paged+prefix";
  }
  return opts;
}

// Mixed long/short trace for the chunked-prefill section (ISSUE 9): every
// fourth request carries a 48-token prompt, the rest stay short — the shape
// where a monolithic long-prompt admit stalls every in-flight decode for the
// whole prefill. No deadlines: the section compares decode-tail smoothness
// and goodput with all requests served on both paths.
std::vector<core::TimedRequest> long_prompt_trace(std::int64_t n,
                                                  double rate_hz) {
  std::vector<core::TimedRequest> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    core::TimedRequest rq;
    rq.id = i;
    const std::int64_t plen = i % 4 == 1 ? 48 : 4 + i % 5;
    for (std::int64_t t = 0; t < plen; ++t) {
      rq.prompt.push_back(static_cast<std::int32_t>(1 + (i * 13 + t * 3) % 61));
    }
    rq.new_tokens = 8 + i % 5;
    rq.arrival_s = static_cast<double>(i) / rate_hz;
    out.push_back(std::move(rq));
  }
  return out;
}

// Options for the chunked-prefill section: continuous scheduler, per-prompt-
// token virtual prefill (so prompt length is visible on the clock), and the
// requested per-iteration chunk budget, across the three KV layouts at full
// reservation (64 pages x 8 tokens == 8 slots x 64-token strips — no
// structural sheds, so every run serves the whole trace and token parity is
// total).
core::ServerOptions chunk_options(const std::string& kv_mode, std::int64_t tp,
                                  std::int64_t chunk) {
  auto opts = scheduler_options(core::Scheduler::kContinuous);
  opts.virtual_service.prefill_token_s = 2e-4;
  opts.engine.prefill_chunk_tokens = chunk;
  opts.engine.tensor_parallel = tp;
  if (kv_mode != "strip") {
    opts.engine.kv_page_tokens = 8;
    opts.engine.kv_pages = 64;
    opts.engine.kv_prefix_cache = kv_mode == "paged+prefix";
  }
  return opts;
}

std::vector<core::TimedRequest> mixed_trace(double rate_hz) {
  core::WorkloadSpec spec;
  spec.arrival_rate_hz = rate_hz;
  spec.duration_s = 0.5;
  spec.prompt_lengths = {4, 8, 16};  // ragged on purpose
  spec.min_new_tokens = 2;
  spec.max_new_tokens = 12;
  spec.seed = 11;
  return core::generate_poisson_trace(spec);
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string scheduler = "both";
  std::vector<std::int64_t> tp_degrees{1, 2};
  bool check = false;
  bool attr = false;
  bool spec = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--scheduler") == 0 && i + 1 < argc) {
      scheduler = argv[++i];
      if (scheduler != "window" && scheduler != "continuous" &&
          scheduler != "both") {
        std::cerr << "--scheduler must be window|continuous|both\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--tp") == 0 && i + 1 < argc) {
      // Comma-separated degrees for the continuous x TP section, e.g.
      // --tp 2,4. Degree 1 is always included as the comparison baseline.
      tp_degrees = {1};
      std::string arg = argv[++i];
      std::size_t pos = 0;
      while (pos < arg.size()) {
        const auto comma = arg.find(',', pos);
        const auto tok = arg.substr(pos, comma - pos);
        const auto tp = std::strtoll(tok.c_str(), nullptr, 10);
        if (tp < 1) {
          std::cerr << "--tp wants a comma-separated list of degrees >= 1\n";
          return 2;
        }
        if (tp > 1) tp_degrees.push_back(tp);
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--attr") == 0) {
      attr = true;
    } else if (std::strcmp(argv[i], "--spec") == 0) {
      spec = true;
    } else {
      std::cerr << "usage: serving_latency [--scheduler window|continuous|"
                   "both] [--tp 2,4] [--check] [--attr] [--spec] "
                   "[--trace <out.json>]\n";
      return 2;
    }
  }
  // The check gate includes the attribution/flight-recorder invariants, so
  // it needs the same instrumentation --attr turns on; likewise the
  // speculative-decode gates need the --spec sweep's rows.
  if (check) {
    attr = true;
    spec = true;
  }
  if (!trace_path.empty()) {
    obs::TraceRecorder::instance().set_enabled(true);
    obs::MetricsRegistry::instance().set_enabled(true);
  }
  if (attr) {
    obs::set_attribution_enabled(true);
    auto& fr = obs::FlightRecorder::instance();
    fr.configure(256, 512);
    fr.set_enabled(true);
  }

  const auto cfg = model::tiny_gpt(64, 2, 4);

  std::cout << "=== Window vs continuous batching, same Poisson traces, "
               "swept through saturation (virtual service clock) ===\n\n";
  // The sweep straddles both knees: the window batcher folds first, the
  // continuous batcher holds goodput for several more doublings.
  const std::vector<double> sweep_rates = {50, 200, 400, 800, 1600};
  std::vector<Row> rows;
  std::vector<Row> window_rows, cont_rows;  // per-scheduler, sweep order
  Table cmp({"arrival hz", "offered/s", "scheduler", "served", "served/s",
             "p50 ms", "p95 ms", "p99 ms", "tokens/s"});
  for (double rate : sweep_rates) {
    const auto trace = mixed_trace(rate);
    const double offered = static_cast<double>(trace.size()) / 0.5;
    for (auto sched : {core::Scheduler::kWindow, core::Scheduler::kContinuous}) {
      const bool is_window = sched == core::Scheduler::kWindow;
      if (scheduler == "window" && !is_window) continue;
      if (scheduler == "continuous" && is_window) continue;
      core::InferenceServer server(cfg, scheduler_options(sched), 7);
      auto stats = server.run_trace(trace);
      Row row;
      row.rate_hz = rate;
      row.offered_hz = offered;
      row.scheduler = is_window ? "window" : "continuous";
      row.s = core::summarize_serving(stats);
      cmp.add_row({Table::num(rate, 0), Table::num(offered, 0), row.scheduler,
                   std::to_string(row.s.served),
                   Table::num(row.s.served_per_s, 1),
                   Table::num(row.s.p50_latency_s * 1e3, 1),
                   Table::num(row.s.p95_latency_s * 1e3, 1),
                   Table::num(row.s.p99_latency_s * 1e3, 1),
                   Table::num(row.s.tokens_per_s, 0)});
      (is_window ? window_rows : cont_rows).push_back(row);
      rows.push_back(std::move(row));
    }
  }
  cmp.print(std::cout);
  if (!window_rows.empty() && !cont_rows.empty()) {
    const auto wk = knee_index(window_rows);
    const auto ck = knee_index(cont_rows);
    auto knee_str = [&](std::size_t k) {
      return k < sweep_rates.size()
                 ? Table::num(sweep_rates[k], 0) + " hz"
                 : std::string("past the sweep");
    };
    std::cout << "\nSaturation knee (goodput < 90% of offered): window at "
              << knee_str(wk) << ", continuous at " << knee_str(ck) << ".\n";
  }
  std::cout << "\nExpected: continuous batching retires each sequence at its "
               "own budget and backfills freed slots between iterations, so "
               "it serves more requests per virtual second at lower tail "
               "latency pre-knee, and saturates at a strictly higher arrival "
               "rate than the rigid same-length window batches.\n";

  // --- Continuous batching × tensor parallelism (ISSUE 5) ---
  // Functional replay of the same mixed trace with the ragged path sharded
  // over `tp` virtual ranks, plus the modeled per-decode-step latency at the
  // paper's Fig-6 GPT-NeoX 20B shape. The replay proves output parity; the
  // model prices the step the way Fig 6 does.
  std::vector<Row> tp_rows;
  bool tp_tokens_match = true;
  if (scheduler != "window") {
    std::cout << "\n=== Continuous batching x tensor parallelism (same "
                 "trace, sharded KV arenas; step modeled at Fig-6 "
                 "GPT-NeoX 20B shape) ===\n\n";
    const double rate = 200.0;
    const auto trace = mixed_trace(rate);
    Table tpt({"tp", "requests", "served", "served/s", "p95 ms", "tokens/s",
               "modeled step ms"});
    std::vector<core::RequestStats> baseline;
    for (std::int64_t tp : tp_degrees) {
      if (cfg.heads % tp != 0) {
        std::cout << "(skipping tp=" << tp << ": does not divide "
                  << cfg.heads << " heads)\n";
        continue;
      }
      auto opts = scheduler_options(core::Scheduler::kContinuous);
      opts.engine.tensor_parallel = tp;
      core::InferenceServer server(cfg, opts, 7);
      auto stats = server.run_trace(trace);
      if (baseline.empty()) {
        baseline = stats;
      } else {
        for (std::size_t i = 0; i < stats.size(); ++i) {
          tp_tokens_match =
              tp_tokens_match && stats[i].tokens == baseline[i].tokens;
        }
      }
      Row row;
      row.mode = "modeled";
      row.rate_hz = rate;
      row.offered_hz = static_cast<double>(trace.size()) / 0.5;
      row.scheduler = "continuous";
      row.tp = tp;
      row.step_s = modeled_step_s(tp, opts.max_batch);
      row.s = core::summarize_serving(stats);
      tpt.add_row({std::to_string(tp), std::to_string(row.s.requests),
                   std::to_string(row.s.served),
                   Table::num(row.s.served_per_s, 1),
                   Table::num(row.s.p95_latency_s * 1e3, 1),
                   Table::num(row.s.tokens_per_s, 0),
                   Table::num(row.step_s * 1e3, 3)});
      tp_rows.push_back(std::move(row));
    }
    tpt.print(std::cout);
    std::cout << "\nExpected: sharding halves each rank's GeMM and attention "
                 "work while the two per-layer all-reduces stay cheap at "
                 "this scale, so the modeled decode step shrinks with tp; "
                 "greedy outputs are identical at every degree ("
              << (tp_tokens_match ? "verified" : "VIOLATED")
              << " on this replay).\n";
  }

  // --- Replica fleet per routing policy x SLO class (ISSUE 6) ---
  // A 3-replica fleet at a post-knee offered rate: every policy routes the
  // same bursty hot-prefix trace; rows split per SLO class (the batch class
  // rides each replica's degraded INT8 half-capacity lane). The chaos gate
  // below reuses this shape with one replica crashed mid-run.
  std::vector<Row> fleet_rows;
  std::vector<Row> attr_rows;
  fleet::FleetResult fleet_baseline, fleet_chaos;
  bool fleet_accounting_ok = true;
  std::string totality_leak;     // from the chaos run, "" when clean
  std::string watchdog_prom;     // Prometheus text of the chaos watchdog
  if (scheduler != "window") {
    std::cout << "\n=== Replica fleet at a post-knee rate (3 replicas, "
                 "per routing policy x SLO class) ===\n\n";
    fleet::FleetWorkloadSpec w;
    w.base_rate_hz = 900;  // past the single-replica continuous knee
    w.duration_s = 0.4;
    w.seed = 91;
    // Post-knee tail SLA: the chaos run's p99 sits near 180 ms, so a 120 ms
    // latency-class deadline makes the tail genuinely violate — the flight
    // recorder's retention gate needs real SLO misses to measure against.
    // Timeouts still count as served, so the chaos-goodput ratio is
    // insensitive to this bound.
    w.latency_deadline_s = 0.12;
    const auto ftrace = fleet::generate_fleet_trace(w);
    const double offered = static_cast<double>(ftrace.size()) / w.duration_s;
    Table flt({"policy", "slo class", "requests", "served", "served/s",
               "p50 ms", "p99 ms", "sheds", "hedges"});
    const std::pair<fleet::RoutePolicy, const char*> policies[] = {
        {fleet::RoutePolicy::kLeastOutstanding, "least-outstanding"},
        {fleet::RoutePolicy::kPowerOfTwo, "p2c"},
        {fleet::RoutePolicy::kPrefixAffinity, "prefix-affinity"},
    };
    for (const auto& [pol, pname] : policies) {
      fleet::FleetSpec fspec(fleet_serve(cfg));
      fspec.replicas(3).policy(pol).hedge(true, 15e-3).failover_budget(2)
          .queue_limits(256, 128);
      fleet::FleetRouter router(fspec, 101);
      auto res = router.run_trace(ftrace);
      fleet_accounting_ok =
          fleet_accounting_ok && fleet::check_accounting(res).empty();
      const auto sum = fleet::summarize_fleet(res.stats);
      if (pol == fleet::RoutePolicy::kPowerOfTwo) {
        fleet_baseline = res;
        fleet_chaos = router.run_trace(
            ftrace, {fleet::standard_chaos_schedule(3, w.duration_s)[0]});
        fleet_accounting_ok = fleet_accounting_ok &&
                              fleet::check_accounting(fleet_chaos).empty();
        // Attribution section (ISSUE 8): per-phase quantiles over the chaos
        // run, the explicit totality verdict, and the router watchdog's
        // burn-rate view of the same window.
        const auto areqs = fleet::attributed_requests(fleet_chaos);
        totality_leak = obs::check_totality(areqs);
        double last_finish = 0;
        for (const auto& ar : areqs) {
          last_finish = std::max(last_finish, ar.finish_s);
        }
        std::ostringstream wd;
        router.watchdog().export_prometheus(wd, last_finish);
        watchdog_prom = wd.str();
        for (const auto& ps : obs::summarize_phases(areqs)) {
          Row row;
          row.mode = "attr";
          row.rate_hz = w.base_rate_hz;
          row.offered_hz = offered;
          row.scheduler = "continuous";
          row.policy = pname;
          row.replicas = 3;
          row.phase = obs::phase_name(ps.phase);
          row.phase_share = ps.share;
          row.phase_total_s = ps.total_s;
          row.s.requests = static_cast<std::int64_t>(ps.count);
          row.s.p50_latency_s = ps.p50_s;
          row.s.p95_latency_s = ps.p95_s;
          row.s.p99_latency_s = ps.p99_s;
          attr_rows.push_back(std::move(row));
        }
      }
      const std::pair<const char*, const core::ServingSummary*> classes[] = {
          {"latency", &sum.latency}, {"batch", &sum.batch}};
      for (const auto& [cname, cs] : classes) {
        Row row;
        row.mode = "fleet";
        row.rate_hz = w.base_rate_hz;
        row.offered_hz = offered;
        row.scheduler = "continuous";
        row.policy = pname;
        row.slo_class = cname;
        row.replicas = 3;
        row.s = *cs;
        flt.add_row({pname, cname, std::to_string(row.s.requests),
                     std::to_string(row.s.served),
                     Table::num(row.s.served_per_s, 1),
                     Table::num(row.s.p50_latency_s * 1e3, 1),
                     Table::num(row.s.p99_latency_s * 1e3, 1),
                     std::to_string(res.counters.sheds),
                     std::to_string(res.counters.hedges)});
        fleet_rows.push_back(std::move(row));
      }
    }
    flt.print(std::cout);
    std::cout << "\nExpected: all three policies hold fleet goodput near 3x "
                 "a single replica; prefix affinity trades a little balance "
                 "for KV locality on the hot prefixes, and the batch class "
                 "keeps its half-capacity lane without starving the latency "
                 "class. Sheds are typed backpressure, not losses.\n";

    if (attr) {
      std::cout << "\n=== Tail-latency attribution of the chaos run "
                   "(p2c, 1 of 3 replicas crashed mid-run) ===\n\n";
      Table at({"phase", "requests", "share", "total s", "p50 ms", "p95 ms",
                "p99 ms"});
      for (const auto& r : attr_rows) {
        at.add_row({r.phase, std::to_string(r.s.requests),
                    Table::num(r.phase_share, 3),
                    Table::num(r.phase_total_s, 4),
                    Table::num(r.s.p50_latency_s * 1e3, 2),
                    Table::num(r.s.p95_latency_s * 1e3, 2),
                    Table::num(r.s.p99_latency_s * 1e3, 2)});
      }
      at.print(std::cout);
      std::cout << "\nTotality: "
                << (totality_leak.empty() ? "every request's phases sum to "
                                            "its end-to-end latency"
                                          : totality_leak)
                << "\n";
      const auto& fr = obs::FlightRecorder::instance();
      std::cout << "Flight recorder: " << fr.kept() << " span chains retained "
                << "of " << fr.seen() << " requests seen ("
                << fr.kept_violating() << "/" << fr.seen_violating()
                << " SLO-violating kept; rolling p99 "
                << fr.rolling_p99() * 1e3 << " ms)\n\n";
      std::cout << "SLO watchdog (chaos run, sliding 0.5 s window):\n"
                << watchdog_prom;
    }
  }

  // --- Paged KV capacity at equal arena bytes (ISSUE 7) ---
  // Hot shared-prefix workload through three KV layouts of identical arena
  // footprint: strip reservation, paged block tables, and paged + CoW prefix
  // cache. Served counts are the capacity signal (admission control sheds
  // what the KV budget cannot hold by each request's SLA); the hit rate is
  // read back from the kv.* metrics the decoder publishes.
  std::vector<Row> cap_rows;
  bool cap_tokens_match = true;
  if (scheduler != "window") {
    std::cout << "\n=== Paged KV capacity at equal arena bytes (hot shared "
                 "prefix, 24 of 28 prompt tokens common) ===\n\n";
    const double cap_rate = 1000.0;
    const auto ctrace = hot_prefix_trace(160, 24, 4, cap_rate, 0.05);
    const double cap_dur = ctrace.back().arrival_s;
    auto& reg = obs::MetricsRegistry::instance();
    const bool metrics_were_on = obs::metrics_enabled();
    reg.set_enabled(true);
    Table cap({"kv mode", "requests", "served", "served/s", "sheds",
               "p95 ms", "prefix hit rate"});
    std::vector<std::vector<core::RequestStats>> cap_stats;
    for (const std::string kv_mode : {"strip", "paged", "paged+prefix"}) {
      const auto hits0 = reg.counter("kv.prefix_hit_tokens").value();
      const auto prompts0 = reg.counter("kv.prompt_tokens").value();
      core::InferenceServer server(cfg, capacity_options(kv_mode), 7);
      auto stats = server.run_trace(ctrace);
      const auto hits = reg.counter("kv.prefix_hit_tokens").value() - hits0;
      const auto prompts =
          reg.counter("kv.prompt_tokens").value() - prompts0;
      Row row;
      row.mode = "capacity";
      row.rate_hz = cap_rate;
      row.offered_hz = static_cast<double>(ctrace.size()) / cap_dur;
      row.scheduler = "continuous";
      row.kv_mode = kv_mode;
      row.prefix_hit_rate =
          prompts > 0 ? static_cast<double>(hits) / static_cast<double>(prompts)
                      : 0.0;
      row.s = core::summarize_serving(stats);
      std::int64_t sheds = 0;
      for (const auto& st : stats) {
        if (st.outcome == core::RequestStats::Outcome::kShed) ++sheds;
      }
      cap.add_row({kv_mode, std::to_string(row.s.requests),
                   std::to_string(row.s.served),
                   Table::num(row.s.served_per_s, 1), std::to_string(sheds),
                   Table::num(row.s.p95_latency_s * 1e3, 1),
                   Table::num(row.prefix_hit_rate, 3)});
      cap_rows.push_back(std::move(row));
      cap_stats.push_back(std::move(stats));
    }
    if (!metrics_were_on) reg.set_enabled(false);
    cap.print(std::cout);
    // Bit-identity across KV layouts: any request served by several modes
    // must carry identical greedy tokens — paging and prefix sharing are
    // memory layouts, never a numerics change.
    for (std::size_t i = 0; i < ctrace.size(); ++i) {
      const std::vector<std::int32_t>* ref = nullptr;
      for (const auto& stats : cap_stats) {
        if (!stats[i].served()) continue;
        if (ref == nullptr) {
          ref = &stats[i].tokens;
        } else {
          cap_tokens_match = cap_tokens_match && stats[i].tokens == *ref;
        }
      }
    }
    std::cout << "\nExpected: at the same arena bytes, paging admits by "
                 "actual token budgets instead of worst-case strip "
                 "reservations, and the prefix cache dedups the shared "
                 "system prompt into refcounted pages — each step multiplies "
                 "concurrent sequences, so served capacity climbs while "
                 "greedy tokens stay bit-identical ("
              << (cap_tokens_match ? "verified" : "VIOLATED")
              << " on this replay).\n";
  }

  // --- Chunked prefill vs monolithic long-prompt admits (ISSUE 9) ---
  // The same mixed long/short trace through the continuous scheduler with
  // per-prompt-token virtual prefill: monolithic admits run the whole
  // 48-token prefill in one iteration (stalling every in-flight decode for
  // 48 x prefill_token_s), chunking bounds each iteration to 8 prompt tokens
  // interleaved with the one-token decode rows. The decode-interval sink
  // captures the stall directly; parity runs prove chunking never changes
  // greedy tokens.
  std::vector<Row> chunk_rows;
  bool chunk_tokens_match = true;
  if (scheduler != "window") {
    std::cout << "\n=== Chunked prefill: long-prompt admits interleaved with "
                 "decode (48-token prompt every 4th request, per-prompt-token "
                 "virtual prefill) ===\n\n";
    const double chunk_rate = 150.0;
    const auto ltrace = long_prompt_trace(64, chunk_rate);
    const double ldur = ltrace.back().arrival_s;
    Table cht({"prefill", "chunk", "served", "served/s", "p99 ms",
               "decode intervals", "p99 interval ms"});
    for (std::int64_t chunk : {std::int64_t{0}, std::int64_t{8}}) {
      auto opts = chunk_options("strip", 1, chunk);
      std::vector<double> intervals;
      opts.decode_interval_sink = &intervals;
      core::InferenceServer server(cfg, opts, 7);
      auto stats = server.run_trace(ltrace);
      Row row;
      row.mode = "chunked";
      row.rate_hz = chunk_rate;
      row.offered_hz = static_cast<double>(ltrace.size()) / ldur;
      row.scheduler = "continuous";
      row.chunk_tokens = chunk;
      row.p99_decode_interval_s = p99_of(intervals);
      row.s = core::summarize_serving(stats);
      cht.add_row({chunk == 0 ? "monolithic" : "chunked",
                   std::to_string(chunk), std::to_string(row.s.served),
                   Table::num(row.s.served_per_s, 1),
                   Table::num(row.s.p99_latency_s * 1e3, 1),
                   std::to_string(intervals.size()),
                   Table::num(row.p99_decode_interval_s * 1e3, 2)});
      chunk_rows.push_back(std::move(row));
    }
    cht.print(std::cout);
    // Bit-identity: chunking is a scheduling change, never a numerics
    // change — greedy tokens must match the monolithic baseline for every
    // request across KV layouts and TP degrees (chunk 5 exercises chunks
    // that divide neither the prompt lengths nor the 8-token page).
    const auto ptrace = long_prompt_trace(32, chunk_rate);
    std::vector<std::vector<core::RequestStats>> chunk_runs;
    for (const std::string kv_mode : {"strip", "paged", "paged+prefix"}) {
      for (std::int64_t tp : {std::int64_t{1}, std::int64_t{2}}) {
        if (cfg.heads % tp != 0) continue;
        for (std::int64_t chunk :
             {std::int64_t{0}, std::int64_t{5}, std::int64_t{8}}) {
          core::InferenceServer server(cfg, chunk_options(kv_mode, tp, chunk),
                                       7);
          chunk_runs.push_back(server.run_trace(ptrace));
        }
      }
    }
    for (std::size_t i = 0; i < ptrace.size(); ++i) {
      for (const auto& stats : chunk_runs) {
        chunk_tokens_match = chunk_tokens_match && stats[i].served() &&
                             stats[i].tokens == chunk_runs.front()[i].tokens;
      }
    }
    std::cout << "\nExpected: bounding each iteration's prefill to the chunk "
                 "budget keeps one-token decode rows flowing beside long-"
                 "prompt admits, so the p99 inter-decode-step interval "
                 "collapses while goodput holds and greedy tokens stay "
                 "bit-identical ("
              << (chunk_tokens_match ? "verified" : "VIOLATED")
              << " across strip/paged/paged+prefix x tp{1,2} x chunk{0,5,8} "
                 "on this replay).\n";
  }

  // --- Speculative decode: acceptance x draft depth x batch (ISSUE 10) ---
  // Decode-heavy closed-loop trace (4-token prompts, 32 generated tokens,
  // all arrivals at t=0) so per_token_s dominates the clock: the tokens/s
  // ratio vs the k=1 baseline isolates the fused verify step's multi-token
  // advance (1 + a + ... + a^(k-1) modeled tokens per step) against its
  // draft-lane surcharge (the truncated-depth proposal passes, priced
  // max(verify, draft) per fused step). Every configuration runs on both
  // clocks — the continuous batcher's functional replay and the 1-replica
  // fleet DES twin — and the --check gate holds their curves together:
  // speculation's modeled win must survive in *both* models or the pricing
  // drifted somewhere.
  std::vector<Row> spec_rows;
  std::vector<SpecPoint> spec_points;
  bool spec_tokens_match = true;
  if (spec && scheduler != "window") {
    std::cout << "\n=== Speculative decode: draft-propose + fused verify vs "
                 "plain decode (decode-heavy trace, modeled acceptance) "
                 "===\n\n";
    const auto spec_trace = [](std::int64_t n) {
      std::vector<core::TimedRequest> out;
      out.reserve(static_cast<std::size_t>(n));
      for (std::int64_t i = 0; i < n; ++i) {
        core::TimedRequest rq;
        rq.id = i;
        for (std::int64_t t = 0; t < 4; ++t) {
          rq.prompt.push_back(
              static_cast<std::int32_t>(1 + (i * 5 + t * 3) % 61));
        }
        rq.new_tokens = 32;
        rq.arrival_s = 0;
        out.push_back(std::move(rq));
      }
      return out;
    };
    // Draft lane: 1 of the model's 2 layers, fp32 — draft cost factor
    // (k-1)/2, so k=2 drafts ride the verify step free (factor 0.5 < 1)
    // and k=4 pays a 1.5x fused step for up to 4 tokens of advance.
    const auto spec_options = [](std::int64_t batch, std::int64_t k,
                                 double acc) {
      auto opts = scheduler_options(core::Scheduler::kContinuous);
      opts.engine.max_batch = batch;
      opts.max_batch = batch;
      opts.engine.spec_draft_tokens = k;
      opts.engine.spec_draft_layers = k > 1 ? 1 : 0;
      opts.engine.spec_acceptance = acc;
      return opts;
    };
    Table spt({"batch", "k", "acceptance", "batcher tok/s", "des tok/s",
               "x vs k=1", "modeled adv"});
    for (std::int64_t batch : {std::int64_t{1}, std::int64_t{4}}) {
      const auto strace = spec_trace(batch * 2);
      std::vector<core::RequestStats> base_stats;
      double base_tps = 0;
      // k=1 baseline first, then the acceptance x depth grid.
      struct Cfg { std::int64_t k; double acc; };
      std::vector<Cfg> cfgs{{1, -1.0}};
      for (double acc : {0.0, 0.5, 0.7, 0.9}) {
        for (std::int64_t k : {std::int64_t{2}, std::int64_t{4}}) {
          cfgs.push_back({k, acc});
        }
      }
      for (const auto& c : cfgs) {
        const auto opts = spec_options(batch, c.k, c.acc);
        core::InferenceServer server(cfg, opts, 17);
        auto stats = server.run_trace(strace);
        const auto bsum = core::summarize_serving(stats);
        fleet::FleetSpec fspec(core::ServeSpec::from_options(cfg, opts));
        fspec.replicas(1).queue_limits(64, 32);
        const auto dsum =
            fleet::summarize_fleet(fleet::simulate_fleet(fspec, strace).stats)
                .all;
        if (c.k == 1) {
          base_stats = stats;
          base_tps = bsum.tokens_per_s;
        } else {
          // Exact-match verification: speculation may only change *when*
          // tokens land, never *which* tokens — bit-identity per request
          // against this batch's non-speculative baseline.
          for (std::size_t i = 0; i < strace.size(); ++i) {
            spec_tokens_match = spec_tokens_match && stats[i].served() &&
                                stats[i].tokens == base_stats[i].tokens;
          }
        }
        SpecPoint pt;
        pt.batch = batch;
        pt.k = c.k;
        pt.acc = c.acc;
        pt.batcher_tps = bsum.tokens_per_s;
        pt.des_tps = dsum.tokens_per_s;
        spec_points.push_back(pt);
        spt.add_row({std::to_string(batch), std::to_string(c.k),
                     c.k == 1 ? "-" : Table::num(c.acc, 1),
                     Table::num(pt.batcher_tps, 0), Table::num(pt.des_tps, 0),
                     c.k == 1 ? "1.00"
                              : Table::num(pt.batcher_tps / base_tps, 2),
                     Table::num(
                         core::RaggedDecoder::spec_step_tokens(opts.engine),
                         2)});
        for (const char* source : {"batcher", "des"}) {
          Row row;
          row.mode = "spec";
          row.scheduler = "continuous";
          row.spec_k = c.k;
          row.acceptance = c.acc;
          row.batch = batch;
          row.source = source;
          row.s = std::strcmp(source, "batcher") == 0 ? bsum : dsum;
          spec_rows.push_back(std::move(row));
        }
      }
    }
    spt.print(std::cout);
    std::cout << "\nExpected: acceptance buys geometric multi-token advance "
                 "per fused step while the 1-layer draft lane keeps the "
                 "surcharge under 1.5x, so tokens/s climbs with acceptance "
                 "(crossing 1.3x the k=1 baseline by acceptance 0.7), "
                 "adversarial acceptance 0 only costs the draft surcharge, "
                 "greedy tokens stay bit-identical throughout ("
              << (spec_tokens_match ? "verified" : "VIOLATED")
              << " on this replay), and the DES twin's curve tracks the "
                 "batcher's point for point.\n";
  }

  std::string json_path;
#if defined(DSINFER_REPO_ROOT)
  json_path = std::string(DSINFER_REPO_ROOT) + "/BENCH_serving.json";
#else
  json_path = "BENCH_serving.json";
#endif
  {
    std::vector<Row> all = rows;
    all.insert(all.end(), tp_rows.begin(), tp_rows.end());
    all.insert(all.end(), fleet_rows.begin(), fleet_rows.end());
    all.insert(all.end(), cap_rows.begin(), cap_rows.end());
    all.insert(all.end(), chunk_rows.begin(), chunk_rows.end());
    all.insert(all.end(), spec_rows.begin(), spec_rows.end());
    all.insert(all.end(), attr_rows.begin(), attr_rows.end());
    write_rows_json(json_path, all);
    std::cout << "\nWrote " << all.size() << " rows to " << json_path << "\n";
  }

  if (check) {
    if (scheduler != "both") {
      std::cerr << "--check needs --scheduler both (the gate compares them)\n";
      return 2;
    }
    bool pass = true;
    // Saturation gate: window must fold inside the sweep and continuous must
    // hold out strictly longer.
    const auto wk = knee_index(window_rows);
    const auto ck = knee_index(cont_rows);
    {
      const bool ok = wk < sweep_rates.size() && ck > wk;
      std::cout << (ok ? "PASS" : "FAIL")
                << " saturation knees: window at sweep index " << wk
                << ", continuous at " << ck << " (of " << sweep_rates.size()
                << " rates)\n";
      pass = pass && ok;
    }
    // Per-rate gate: pre-knee continuous wins on goodput and p95; at/past
    // the window knee it must also win on p99 — the regime where the rigid
    // window batches pile queueing delay onto every tail request.
    for (std::size_t i = 0; i < window_rows.size(); ++i) {
      const auto& w = window_rows[i];
      const auto& c = cont_rows[i];
      const bool past_knee = i >= wk;
      bool ok = c.s.served_per_s > w.s.served_per_s;
      ok = ok && (past_knee ? c.s.p99_latency_s < w.s.p99_latency_s
                            : c.s.p95_latency_s < w.s.p95_latency_s);
      std::cout << (ok ? "PASS" : "FAIL") << " @" << w.rate_hz
                << " hz" << (past_knee ? " (post-knee)" : "")
                << ": continuous served/s " << c.s.served_per_s << " vs "
                << w.s.served_per_s
                << (past_knee
                        ? ", p99 " + std::to_string(c.s.p99_latency_s) +
                              " vs " + std::to_string(w.s.p99_latency_s)
                        : ", p95 " + std::to_string(c.s.p95_latency_s) +
                              " vs " + std::to_string(w.s.p95_latency_s))
                << "\n";
      pass = pass && ok;
    }
    // TP gate (ISSUE 5): at the Fig-6 model shape, every sharded degree must
    // beat tp=1 on modeled per-decode-step latency, and the functional
    // replay must have produced identical tokens at every degree.
    for (const auto& r : tp_rows) {
      if (r.tp == 1) continue;
      const bool ok = r.step_s < tp_rows.front().step_s;
      std::cout << (ok ? "PASS" : "FAIL") << " tp=" << r.tp
                << ": modeled step " << r.step_s * 1e3 << " ms vs tp=1 "
                << tp_rows.front().step_s * 1e3 << " ms\n";
      pass = pass && ok;
    }
    std::cout << (tp_tokens_match ? "PASS" : "FAIL")
              << " tp replay output parity\n";
    pass = pass && tp_tokens_match;
    // Fleet chaos gate (ISSUE 6): crash 1 of 3 replicas halfway through the
    // post-knee trace — accounting must stay total (every request served or
    // typed-shed) and surviving goodput must hold >= 60% of the fault-free
    // fleet.
    {
      std::cout << (fleet_accounting_ok ? "PASS" : "FAIL")
                << " fleet accounting total (served + typed sheds/failures "
                   "== requests, no deadline-miss leaks)\n";
      pass = pass && fleet_accounting_ok;
      const auto base = fleet::summarize_fleet(fleet_baseline.stats);
      const auto chaos = fleet::summarize_fleet(fleet_chaos.stats);
      const double ratio = base.all.served_per_s > 0
                               ? chaos.all.served_per_s / base.all.served_per_s
                               : 0.0;
      const bool ok = ratio >= 0.60;
      std::cout << (ok ? "PASS" : "FAIL")
                << " fleet chaos: surviving goodput " << chaos.all.served_per_s
                << "/s vs fault-free " << base.all.served_per_s
                << "/s (ratio " << ratio << ", need >= 0.60; "
                << fleet_chaos.counters.failovers << " failovers, "
                << fleet_chaos.counters.sheds << " typed sheds)\n";
      pass = pass && ok;
    }
    // Attribution gate (ISSUE 8): the chaos run's phase ledger must be
    // total for every request (served, shed, hedged, failed-over alike),
    // the per-phase breakdown rows must have landed in BENCH_serving.json,
    // and the flight recorder must have retained >= 95% of SLO violators.
    {
      bool ok = totality_leak.empty();
      std::cout << (ok ? "PASS" : "FAIL")
                << " attribution totality on the chaos run"
                << (ok ? "" : ": " + totality_leak) << "\n";
      pass = pass && ok;
      ok = !attr_rows.empty();
      std::cout << (ok ? "PASS" : "FAIL") << " attribution breakdown rows: "
                << attr_rows.size() << " phase rows in BENCH_serving.json\n";
      pass = pass && ok;
      const auto& fr = obs::FlightRecorder::instance();
      const double retention =
          fr.seen_violating() > 0
              ? static_cast<double>(fr.kept_violating()) /
                    static_cast<double>(fr.seen_violating())
              : 0.0;
      ok = fr.seen_violating() > 0 && retention >= 0.95;
      std::cout << (ok ? "PASS" : "FAIL") << " flight recorder retention: "
                << fr.kept_violating() << "/" << fr.seen_violating()
                << " SLO-violating requests kept (ratio " << retention
                << ", need >= 0.95)\n";
      pass = pass && ok;
    }
    // Paged KV capacity gate (ISSUE 7): at equal arena bytes on the hot-
    // prefix trace, paged + prefix cache must serve >= 1.5x the strip
    // layout, with real prefix hits and bit-identical greedy tokens.
    if (cap_rows.size() == 3) {
      const auto& strip = cap_rows[0];
      const auto& pp = cap_rows[2];
      const double ratio =
          strip.s.served > 0 ? static_cast<double>(pp.s.served) /
                                   static_cast<double>(strip.s.served)
                             : 0.0;
      bool ok = ratio >= 1.5;
      std::cout << (ok ? "PASS" : "FAIL")
                << " kv capacity: paged+prefix served " << pp.s.served
                << " vs strip " << strip.s.served << " at equal arena bytes "
                   "(ratio " << ratio << ", need >= 1.5)\n";
      pass = pass && ok;
      ok = pp.prefix_hit_rate > 0;
      std::cout << (ok ? "PASS" : "FAIL")
                << " kv capacity: prefix hit rate " << pp.prefix_hit_rate
                << " (need > 0)\n";
      pass = pass && ok;
      std::cout << (cap_tokens_match ? "PASS" : "FAIL")
                << " kv capacity output parity across strip/paged/"
                   "paged+prefix\n";
      pass = pass && cap_tokens_match;
    }
    // Chunked-prefill gate (ISSUE 9): with per-prompt-token virtual prefill
    // on the mixed long/short trace, chunking must cut the p99 inter-decode-
    // step interval to <= 0.5x the monolithic admit path at equal-or-better
    // goodput, with bit-identical greedy tokens across KV layouts, TP
    // degrees, and chunk sizes.
    if (chunk_rows.size() == 2) {
      const auto& mono = chunk_rows[0];
      const auto& chk = chunk_rows[1];
      bool ok = mono.p99_decode_interval_s > 0 &&
                chk.p99_decode_interval_s <= 0.5 * mono.p99_decode_interval_s;
      std::cout << (ok ? "PASS" : "FAIL")
                << " chunked prefill p99 decode interval: "
                << chk.p99_decode_interval_s * 1e3 << " ms vs monolithic "
                << mono.p99_decode_interval_s * 1e3 << " ms (need <= 0.5x)\n";
      pass = pass && ok;
      ok = chk.s.served >= mono.s.served &&
           chk.s.served_per_s >= 0.999 * mono.s.served_per_s;
      std::cout << (ok ? "PASS" : "FAIL") << " chunked prefill goodput: served "
                << chk.s.served << " @ " << chk.s.served_per_s
                << "/s vs monolithic " << mono.s.served << " @ "
                << mono.s.served_per_s << "/s (need equal-or-better)\n";
      pass = pass && ok;
      std::cout << (chunk_tokens_match ? "PASS" : "FAIL")
                << " chunked prefill output parity across kv modes x tp x "
                   "chunk sizes\n";
      pass = pass && chunk_tokens_match;
    }
    // Speculative-decode gate (ISSUE 10): exact-match verification keeps
    // greedy tokens bit-identical at every acceptance x depth x batch; at
    // acceptance 0.7 the modeled fused-step advance must beat its draft
    // surcharge by >= 1.3x tokens/s over the k=1 baseline for k in {2,4}
    // at every swept batch; and the batcher replay and the DES twin must
    // agree within 15% on every point — the two service models price the
    // same speculation arithmetic, so divergence means the model drifted.
    if (!spec_points.empty()) {
      std::cout << (spec_tokens_match ? "PASS" : "FAIL")
                << " spec decode output parity vs non-speculative baseline "
                   "across acceptance x k x batch\n";
      pass = pass && spec_tokens_match;
      for (const auto& pt : spec_points) {
        if (pt.k == 1 || pt.acc != 0.7) continue;
        double base_tps = 0;
        for (const auto& b : spec_points) {
          if (b.k == 1 && b.batch == pt.batch) base_tps = b.batcher_tps;
        }
        const double ratio = base_tps > 0 ? pt.batcher_tps / base_tps : 0.0;
        const bool ok = ratio >= 1.3;
        std::cout << (ok ? "PASS" : "FAIL") << " spec speedup batch="
                  << pt.batch << " k=" << pt.k << " acceptance=0.7: "
                  << pt.batcher_tps << " tok/s vs baseline " << base_tps
                  << " (ratio " << ratio << ", need >= 1.3)\n";
        pass = pass && ok;
      }
      bool agree = true;
      double worst = 0;
      for (const auto& pt : spec_points) {
        const double rel = pt.des_tps > 0
                               ? std::abs(pt.batcher_tps - pt.des_tps) /
                                     pt.des_tps
                               : 1.0;
        worst = std::max(worst, rel);
        agree = agree && rel <= 0.15;
      }
      std::cout << (agree ? "PASS" : "FAIL")
                << " spec batcher/DES curve agreement: worst relative "
                   "tokens/s gap "
                << worst << " across " << spec_points.size()
                << " points (need <= 0.15)\n";
      pass = pass && agree;
    }
    if (!pass) return 1;
    std::cout << "serving regression gate: PASS\n";
    if (!trace_path.empty()) {
      obs::TraceRecorder::instance().export_file(trace_path);
      if (attr) {
        obs::FlightRecorder::instance().export_file(trace_path +
                                                    ".flight.json");
      }
    }
    return 0;
  }

  std::cout << "\n=== Measured latency/throughput under Poisson load "
               "(window batcher, tiny GPT on this CPU) ===\n\n";
  Table t({"arrival hz", "batch window ms", "requests", "mean batch",
           "p50 latency ms", "p99 latency ms", "tokens/s"});
  for (double rate : {50.0, 200.0}) {
    for (double window_ms : {0.0, 5.0, 50.0}) {
      core::ServerOptions opts;
      opts.engine.policy = kernels::KernelPolicy::optimized_large_batch();
      opts.engine.max_batch = 8;
      opts.engine.max_seq = 64;
      opts.max_batch = 8;
      opts.batch_window_s = window_ms / 1e3;
      core::InferenceServer server(cfg, opts, 7);

      core::WorkloadSpec spec;
      spec.arrival_rate_hz = rate;
      spec.duration_s = 0.5;
      spec.prompt_lengths = {8};
      spec.min_new_tokens = 4;
      spec.max_new_tokens = 8;
      spec.seed = 11;
      auto trace = core::generate_poisson_trace(spec);
      auto stats = server.run_trace(trace);
      auto s = core::summarize_serving(stats);
      t.add_row({Table::num(rate, 0), Table::num(window_ms, 0),
                 std::to_string(s.requests), Table::num(s.mean_batch_size, 2),
                 Table::num(s.p50_latency_s * 1e3, 1),
                 Table::num(s.p99_latency_s * 1e3, 1),
                 Table::num(s.tokens_per_s, 0)});
    }
  }
  t.print(std::cout);
  std::cout << "\nExpected: wider windows raise mean batch size and "
               "throughput; at high rates batching keeps the queue stable "
               "where window-0 serving falls behind.\n";
  if (!trace_path.empty()) {
    if (!obs::TraceRecorder::instance().export_file(trace_path)) {
      std::cerr << "failed to write trace to " << trace_path << "\n";
      return 1;
    }
    std::cout << "\nWrote "
              << obs::TraceRecorder::instance().event_count()
              << " trace events to " << trace_path
              << " (load in https://ui.perfetto.dev)\n";
    if (attr &&
        obs::FlightRecorder::instance().export_file(trace_path +
                                                    ".flight.json")) {
      std::cout << "Wrote " << obs::FlightRecorder::instance().kept()
                << " retained flight-recorder span chains to " << trace_path
                << ".flight.json\n";
    }
    obs::MetricsRegistry::instance().export_json(std::cout);
    std::cout << "\n";
  }
  return 0;
}
