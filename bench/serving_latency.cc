// Serving-layer bench: the latency-vs-throughput trade the paper's intro
// frames ("latency-critical or throughput-oriented"). A Poisson request
// trace is replayed through the batching server at several arrival rates and
// batching windows; the table shows how a wider window buys batch size (and
// tokens/s) at the cost of p99 latency. Real measurement: every request runs
// through the functional engine on this CPU.
//
// Profiling: `serving_latency --trace serving.trace.json` records every
// engine span plus the request lifecycle on the server's virtual timeline
// and writes a Chrome trace-event file (open it at https://ui.perfetto.dev).
#include <cstring>
#include <iostream>
#include <string>

#include "core/workload.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace dsinfer;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::cerr << "usage: serving_latency [--trace <out.json>]\n";
      return 2;
    }
  }
  if (!trace_path.empty()) {
    obs::TraceRecorder::instance().set_enabled(true);
    obs::MetricsRegistry::instance().set_enabled(true);
  }
  std::cout << "=== Serving latency/throughput under Poisson load "
               "(tiny GPT on this CPU) ===\n\n";

  const auto cfg = model::tiny_gpt(64, 2, 4);
  Table t({"arrival hz", "batch window ms", "requests", "mean batch",
           "p50 latency ms", "p99 latency ms", "tokens/s"});
  for (double rate : {50.0, 200.0}) {
    for (double window_ms : {0.0, 5.0, 50.0}) {
      core::ServerOptions opts;
      opts.engine.policy = kernels::KernelPolicy::optimized_large_batch();
      opts.engine.max_batch = 8;
      opts.engine.max_seq = 64;
      opts.max_batch = 8;
      opts.batch_window_s = window_ms / 1e3;
      core::InferenceServer server(cfg, opts, 7);

      core::WorkloadSpec spec;
      spec.arrival_rate_hz = rate;
      spec.duration_s = 0.5;
      spec.prompt_lengths = {8};
      spec.min_new_tokens = 4;
      spec.max_new_tokens = 8;
      spec.seed = 11;
      auto trace = core::generate_poisson_trace(spec);
      auto stats = server.run_trace(trace);
      auto s = core::summarize_serving(stats);
      t.add_row({Table::num(rate, 0), Table::num(window_ms, 0),
                 std::to_string(s.requests), Table::num(s.mean_batch_size, 2),
                 Table::num(s.p50_latency_s * 1e3, 1),
                 Table::num(s.p99_latency_s * 1e3, 1),
                 Table::num(s.tokens_per_s, 0)});
    }
  }
  t.print(std::cout);
  std::cout << "\nExpected: wider windows raise mean batch size and "
               "throughput; at high rates batching keeps the queue stable "
               "where window-0 serving falls behind.\n";
  if (!trace_path.empty()) {
    if (!obs::TraceRecorder::instance().export_file(trace_path)) {
      std::cerr << "failed to write trace to " << trace_path << "\n";
      return 1;
    }
    std::cout << "\nWrote "
              << obs::TraceRecorder::instance().event_count()
              << " trace events to " << trace_path
              << " (load in https://ui.perfetto.dev)\n";
    obs::MetricsRegistry::instance().export_json(std::cout);
    std::cout << "\n";
  }
  return 0;
}
